package trust_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/trust"
)

func newCluster(seed int64) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Seed: seed, IPNodes: 400, Peers: 60,
		Catalog: []string{"A", "B", "C", "D"},
	})
}

func mgrFor(c *cluster.Cluster, peer int) *trust.Manager {
	return trust.NewManager(c.Peers[peer].Node, c.Peers[peer].DHT, trust.DefaultConfig())
}

func TestNeutralScoreWithoutEvidence(t *testing.T) {
	c := newCluster(80)
	m := mgrFor(c, 0)
	if got := m.Score(5); got != 0.5 {
		t.Fatalf("score without evidence = %v, want 0.5", got)
	}
	if m.Observed(5) {
		t.Fatal("Observed true without evidence")
	}
}

func TestDirectObservationsMoveScore(t *testing.T) {
	c := newCluster(81)
	m := mgrFor(c, 0)
	for i := 0; i < 8; i++ {
		m.RecordSuccess(7)
	}
	if got := m.Score(7); got <= 0.8 {
		t.Fatalf("score after 8 successes = %v", got)
	}
	m2 := mgrFor(c, 1)
	for i := 0; i < 8; i++ {
		m2.RecordFailure(9)
	}
	if got := m2.Score(9); got >= 0.2 {
		t.Fatalf("score after 8 failures = %v", got)
	}
	// Beta mean formula sanity: 3 successes, 1 failure -> 4/6.
	m3 := mgrFor(c, 2)
	m3.RecordSuccess(4)
	m3.RecordSuccess(4)
	m3.RecordSuccess(4)
	m3.RecordFailure(4)
	if got := m3.DirectScore(4); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("beta mean = %v, want 2/3", got)
	}
}

func TestFeedbackSharingThroughDHT(t *testing.T) {
	c := newCluster(82)
	// Peers 1..4 each observe peer 9 failing repeatedly; their reports are
	// published to the DHT (threshold 3).
	for reporter := 1; reporter <= 4; reporter++ {
		m := mgrFor(c, reporter)
		for i := 0; i < 4; i++ {
			m.RecordFailure(9)
		}
	}
	c.Sim.RunUntilIdle()

	// Peer 0 has NO direct experience; after fetching feedback its blended
	// score for 9 must fall well below neutral.
	m0 := mgrFor(c, 0)
	fetched := -1
	m0.FetchFeedback(9, func(n int) { fetched = n })
	c.Sim.RunUntilIdle()
	if fetched < 3 {
		t.Fatalf("fetched %d reports, want >= 3", fetched)
	}
	if got := m0.Score(9); got >= 0.4 {
		t.Fatalf("blended score %v did not reflect shared negative feedback", got)
	}
	if !m0.Observed(9) {
		t.Fatal("Observed false after fetch")
	}
}

func TestLatestReportPerReporterWins(t *testing.T) {
	c := newCluster(83)
	m1 := mgrFor(c, 1)
	// First a bad report...
	for i := 0; i < 3; i++ {
		m1.RecordFailure(9)
	}
	c.Sim.RunUntilIdle()
	// ...then the peer recovers and the reporter publishes good evidence.
	for i := 0; i < 30; i++ {
		m1.RecordSuccess(9)
	}
	c.Sim.RunUntilIdle()

	m0 := mgrFor(c, 0)
	m0.FetchFeedback(9, nil)
	c.Sim.RunUntilIdle()
	if got := m0.Score(9); got <= 0.5 {
		t.Fatalf("latest (positive) report should dominate, score=%v", got)
	}
}

// TestTrustAwareComposition wires the trust manager into BCP: components on
// a peer known to fail sessions stop being selected.
func TestTrustAwareComposition(t *testing.T) {
	c := newCluster(84)
	src := 0
	m := mgrFor(c, src)
	// Next-hop selection is per hop, so every peer's engine consults a
	// trust oracle; here they share the source's manager (in a real
	// deployment each peer runs its own and fetches feedback via the DHT).
	for _, p := range c.Peers {
		p.Engine.Trust = m
		p.Engine.MinTrust = 0.25
	}
	eng := c.Peers[src].Engine

	fns := c.FunctionsByReplicas()
	q := qos.Unbounded()
	q[qos.Delay] = 5000
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	mk := func(id uint64) *service.Request {
		return &service.Request{
			ID: id, FGraph: fgraph.Linear(fns[0], fns[1]), QoSReq: q, Res: res,
			Bandwidth: 10, Source: p2p.NodeID(src), Dest: 1, Budget: 20,
		}
	}
	// Baseline composition: find which peer serves fns[0].
	var first bcp.Result
	eng.Compose(mk(1), func(r bcp.Result) { first = r })
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	if !first.Ok {
		t.Fatal("baseline composition failed")
	}
	eng.Teardown(first.Best)
	badPeer := first.Best.Comps[0].Comp.Peer

	// The source repeatedly observes badPeer failing.
	for i := 0; i < 10; i++ {
		m.RecordFailure(badPeer)
	}
	c.Sim.Run(c.Sim.Now() + 5*time.Second)
	if m.Score(badPeer) >= 0.25 {
		t.Fatalf("score %v not below exclusion threshold", m.Score(badPeer))
	}

	// Re-composition must avoid the distrusted peer entirely.
	var second bcp.Result
	eng.Compose(mk(2), func(r bcp.Result) { second = r })
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	if !second.Ok {
		t.Fatal("trust-aware composition failed (no alternative replicas?)")
	}
	defer eng.Teardown(second.Best)
	if second.Best.ContainsPeer(badPeer) {
		t.Fatal("composition still uses the distrusted peer")
	}
}
