// Package trust implements the decentralized trust management the paper
// names as future work (§8: "we will integrate decentralized trust
// management into the current service composition framework to support
// secure service composition").
//
// Each peer keeps a beta-reputation score per counterpart peer — a
// successes / b failures observed directly from its own sessions — and
// periodically publishes a feedback report into the DHT under the subject
// peer's trust key. When evaluating a peer it has little direct experience
// with, a peer fetches the feedback reports of others and blends them with
// its own observations. BCP consults the blended score during next-hop
// component selection, so components on misbehaving peers stop being
// probed.
package trust

import (
	"fmt"
	"time"

	"repro/internal/dht"
	"repro/internal/p2p"
)

// Report is one peer's published experience with a subject peer.
type Report struct {
	Subject   p2p.NodeID
	Reporter  p2p.NodeID
	Successes float64
	Failures  float64
}

// Config tunes the trust manager.
type Config struct {
	// DirectWeight is the weight of first-hand observations when blending
	// with fetched feedback (the rest is split over reporters).
	DirectWeight float64
	// PublishThreshold is how many new observations accumulate before the
	// manager re-publishes its report for a subject.
	PublishThreshold float64
	// FetchTimeout bounds feedback lookups.
	FetchTimeout time.Duration
}

// DefaultConfig returns the defaults used in tests and examples.
func DefaultConfig() Config {
	return Config{
		DirectWeight:     0.6,
		PublishThreshold: 3,
		FetchTimeout:     2 * time.Second,
	}
}

// Key returns the DHT key feedback about peer p is stored under.
func Key(p p2p.NodeID) dht.ID { return dht.Key(fmt.Sprintf("trust:%d", int(p))) }

type record struct {
	successes float64
	failures  float64
	published float64 // observations included in the last published report
	remote    []Report
	fetched   bool
}

// Manager tracks and publishes trust state for one peer.
type Manager struct {
	host p2p.Node
	node *dht.Node
	cfg  Config

	records map[p2p.NodeID]*record
}

// NewManager creates a trust manager bound to the peer's DHT node.
func NewManager(host p2p.Node, node *dht.Node, cfg Config) *Manager {
	return &Manager{
		host:    host,
		node:    node,
		cfg:     cfg,
		records: make(map[p2p.NodeID]*record),
	}
}

func (m *Manager) rec(p p2p.NodeID) *record {
	r, ok := m.records[p]
	if !ok {
		r = &record{}
		m.records[p] = r
	}
	return r
}

// RecordSuccess adds one positive first-hand observation about p (e.g. a
// session completed over p's component) and republishes if enough evidence
// accumulated.
func (m *Manager) RecordSuccess(p p2p.NodeID) {
	r := m.rec(p)
	r.successes++
	m.maybePublish(p, r)
}

// RecordFailure adds one negative first-hand observation about p (e.g. p
// broke an active session).
func (m *Manager) RecordFailure(p p2p.NodeID) {
	r := m.rec(p)
	r.failures++
	m.maybePublish(p, r)
}

func (m *Manager) maybePublish(p p2p.NodeID, r *record) {
	total := r.successes + r.failures
	if total-r.published < m.cfg.PublishThreshold {
		return
	}
	r.published = total
	m.node.Put(Key(p), Report{
		Subject:   p,
		Reporter:  m.host.ID(),
		Successes: r.successes,
		Failures:  r.failures,
	}, 48)
}

// betaMean is the expected value of the beta reputation: (a+1)/(a+b+2),
// 0.5 for no evidence.
func betaMean(successes, failures float64) float64 {
	return (successes + 1) / (successes + failures + 2)
}

// DirectScore returns the first-hand-only score for p in (0,1).
func (m *Manager) DirectScore(p p2p.NodeID) float64 {
	r, ok := m.records[p]
	if !ok {
		return 0.5
	}
	return betaMean(r.successes, r.failures)
}

// Score returns the blended trust score for p: DirectWeight on first-hand
// evidence, the rest on the average of fetched feedback reports (excluding
// our own). With no evidence at all the score is the neutral 0.5.
func (m *Manager) Score(p p2p.NodeID) float64 {
	r, ok := m.records[p]
	if !ok {
		return 0.5
	}
	direct := betaMean(r.successes, r.failures)
	if len(r.remote) == 0 {
		return direct
	}
	var remote float64
	n := 0
	for _, rep := range r.remote {
		if rep.Reporter == m.host.ID() {
			continue
		}
		remote += betaMean(rep.Successes, rep.Failures)
		n++
	}
	if n == 0 {
		return direct
	}
	remote /= float64(n)
	w := m.cfg.DirectWeight
	return w*direct + (1-w)*remote
}

// FetchFeedback refreshes p's remote feedback from the DHT; cb (optional)
// fires when the lookup completes.
func (m *Manager) FetchFeedback(p p2p.NodeID, cb func(reports int)) {
	m.node.Get(Key(p), m.cfg.FetchTimeout, func(items []any, _ int, ok bool) {
		r := m.rec(p)
		r.fetched = true
		if ok {
			// Keep the latest report per reporter.
			latest := make(map[p2p.NodeID]Report)
			for _, it := range items {
				if rep, isRep := it.(Report); isRep && rep.Subject == p {
					latest[rep.Reporter] = rep
				}
			}
			r.remote = r.remote[:0]
			for _, rep := range latest {
				r.remote = append(r.remote, rep)
			}
		}
		if cb != nil {
			cb(len(r.remote))
		}
	})
}

// Observed reports whether the manager has any evidence (direct or fetched)
// about p.
func (m *Manager) Observed(p p2p.NodeID) bool {
	r, ok := m.records[p]
	return ok && (r.successes+r.failures > 0 || len(r.remote) > 0)
}
