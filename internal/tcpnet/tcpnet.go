// Package tcpnet is SpiderNet's real network transport: peers are separate
// event loops connected by TCP sockets, messages are gob-encoded on the
// wire. It implements the same p2p.Node interface as the simulator and the
// in-process live runtime, so the full protocol stack (DHT, discovery, BCP,
// recovery, streaming) runs over genuine sockets — the closest analogue to
// the paper's networked Java prototype.
//
// The transport uses a static address book (NodeID → host:port), one
// persistent outbound connection per destination with reconnection, and a
// per-node single-threaded event loop for handler/timer serialization.
package tcpnet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/p2p"
	"repro/internal/wire"
)

// RegisterTypes registers every protocol payload type with encoding/gob.
// Call once before creating transports.
func RegisterTypes() {
	wire.RegisterAll()
}

// wireMsg is the on-the-wire envelope.
type wireMsg struct {
	Type    string
	From    p2p.NodeID
	To      p2p.NodeID
	Size    int
	Payload any
}

// Transport is one peer's endpoint: a listener, outbound connections, and
// the node event loop.
type Transport struct {
	self  p2p.NodeID
	addrs map[p2p.NodeID]string
	ln    net.Listener
	node  *tcpNode

	mu    sync.Mutex
	conns map[p2p.NodeID]*outConn

	messages atomic.Int64
	bytes    atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

type outConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// Stats reports transport-level counters.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
}

// New starts a transport for peer self, listening on listenAddr (use
// "127.0.0.1:0" to pick a free port and read it back with Addr). addrs maps
// peers to host:port for outbound connections; the map is retained by
// reference, so entries may be added after construction as long as they are
// in place before traffic to those peers starts.
func New(self p2p.NodeID, listenAddr string, addrs map[p2p.NodeID]string, seed int64) (*Transport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	t := &Transport{
		self:  self,
		addrs: addrs,
		ln:    ln,
		conns: make(map[p2p.NodeID]*outConn),
	}
	t.node = &tcpNode{
		id:       self,
		t:        t,
		inbox:    make(chan any, 4096),
		quit:     make(chan struct{}),
		handlers: make(map[string]p2p.Handler),
		rng:      rand.New(rand.NewSource(seed ^ int64(self)<<13)),
		start:    time.Now(),
	}
	t.node.alive.Store(true)
	t.wg.Add(2)
	go t.acceptLoop()
	go t.node.loop(&t.wg)
	return t, nil
}

// Node returns the p2p.Node protocol stacks bind to.
func (t *Transport) Node() p2p.Node { return t.node }

// Addr returns the listener's actual address (useful with ":0" ports).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Stats returns send counters.
func (t *Transport) Stats() Stats {
	return Stats{MessagesSent: t.messages.Load(), BytesSent: t.bytes.Load()}
}

// Exec runs fn on the node's event loop (for setup and test code).
func (t *Transport) Exec(fn func()) {
	select {
	case t.node.inbox <- fn:
	case <-t.node.quit:
	}
}

// Close stops the listener, connections, and event loop.
func (t *Transport) Close() {
	if t.closed.Swap(true) {
		return
	}
	t.ln.Close()
	close(t.node.quit)
	t.mu.Lock()
	for _, oc := range t.conns {
		if oc.c != nil {
			oc.c.Close()
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.readLoop(c)
	}
}

func (t *Transport) readLoop(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var wm wireMsg
		if err := dec.Decode(&wm); err != nil {
			return
		}
		msg := p2p.Message{Type: wm.Type, From: wm.From, To: wm.To, Size: wm.Size, Payload: wm.Payload}
		select {
		case t.node.inbox <- msg:
		case <-t.node.quit:
			return
		}
	}
}

// send delivers msg to its destination over a persistent connection,
// dialing (or redialing) as needed. Failures drop the message, like a real
// network.
func (t *Transport) send(msg p2p.Message) {
	t.messages.Add(1)
	t.bytes.Add(int64(msg.Size))
	if msg.To == t.self {
		// Loopback without a socket round trip.
		select {
		case t.node.inbox <- msg:
		case <-t.node.quit:
		}
		return
	}
	addr, ok := t.addrs[msg.To]
	if !ok {
		return
	}
	oc := t.conn(msg.To)
	oc.mu.Lock()
	defer oc.mu.Unlock()
	wm := wireMsg{Type: msg.Type, From: msg.From, To: msg.To, Size: msg.Size, Payload: msg.Payload}
	for attempt := 0; attempt < 2; attempt++ {
		if oc.c == nil {
			c, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return // destination unreachable: drop
			}
			oc.c = c
			oc.enc = gob.NewEncoder(c)
		}
		if err := oc.enc.Encode(wm); err == nil {
			return
		}
		// Stale connection: reset and retry once.
		oc.c.Close()
		oc.c, oc.enc = nil, nil
	}
}

func (t *Transport) conn(to p2p.NodeID) *outConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	oc, ok := t.conns[to]
	if !ok {
		oc = &outConn{}
		t.conns[to] = oc
	}
	return oc
}

// tcpNode implements p2p.Node with a single event-loop goroutine.
type tcpNode struct {
	id    p2p.NodeID
	t     *Transport
	inbox chan any
	quit  chan struct{}
	alive atomic.Bool
	epoch atomic.Uint64
	start time.Time

	hmu      sync.Mutex
	handlers map[string]p2p.Handler

	rng *rand.Rand
}

func (n *tcpNode) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case item := <-n.inbox:
			if !n.alive.Load() {
				continue
			}
			switch v := item.(type) {
			case func():
				v()
			case p2p.Message:
				n.hmu.Lock()
				h := n.handlers[v.Type]
				n.hmu.Unlock()
				if h != nil {
					h(n, v)
				}
			}
		}
	}
}

func (n *tcpNode) ID() p2p.NodeID     { return n.id }
func (n *tcpNode) Now() time.Duration { return time.Since(n.start) }
func (n *tcpNode) Rand() *rand.Rand   { return n.rng }
func (n *tcpNode) Alive() bool        { return n.alive.Load() }

func (n *tcpNode) Handle(msgType string, h p2p.Handler) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.handlers[msgType] = h
}

func (n *tcpNode) Send(msg p2p.Message) {
	if !n.alive.Load() {
		return
	}
	msg.From = n.id
	n.t.send(msg)
}

func (n *tcpNode) After(d time.Duration, fn func()) p2p.CancelFunc {
	epoch := n.epoch.Load()
	var cancelled atomic.Bool
	timer := time.AfterFunc(d, func() {
		if cancelled.Load() {
			return
		}
		task := func() {
			if !cancelled.Load() && n.epoch.Load() == epoch {
				fn()
			}
		}
		select {
		case n.inbox <- task:
		case <-n.quit:
		}
	})
	return func() {
		cancelled.Store(true)
		timer.Stop()
	}
}
