package tcpnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/dht"
	"repro/internal/fgraph"
	"repro/internal/media"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/service"
)

// deployment spins up n real TCP peers on localhost with the full protocol
// stack: DHT + registry + BCP engine + media data plane.
type deployment struct {
	transports []*Transport
	engines    []*bcp.Engine
	registries []*registry.Registry
	medias     []*media.Node
	comps      [][]service.Component
}

func deploy(t *testing.T, n int, fns []string) *deployment {
	t.Helper()
	RegisterTypes()
	addrs := make(map[p2p.NodeID]string, n)
	d := &deployment{}

	// Flat oracle: 1ms paths, unconstrained bandwidth — the test exercises
	// the transport, not admission.
	oracle := flatOracle{}
	var dhtNodes []*dht.Node
	for i := 0; i < n; i++ {
		tr, err := New(p2p.NodeID(i), "127.0.0.1:0", addrs, 1)
		if err != nil {
			t.Fatal(err)
		}
		addrs[p2p.NodeID(i)] = tr.Addr()
		d.transports = append(d.transports, tr)
	}
	t.Cleanup(func() {
		for _, tr := range d.transports {
			tr.Close()
		}
	})
	for i := 0; i < n; i++ {
		host := d.transports[i].Node()
		dn := dht.New(host, nil)
		reg := registry.New(dn)
		fn := fns[i%len(fns)]
		comp := service.Component{
			ID:       fmt.Sprintf("p%d/%s", i, fn),
			Function: fn,
			Peer:     p2p.NodeID(i),
		}
		var cap qos.Resources
		cap[qos.CPU] = 10
		cap[qos.Memory] = 100
		eng := bcp.NewEngine(host, qos.NewLedger(cap), reg, oracle, []service.Component{comp}, fastConfig())
		med := media.Attach(host, eng.LocalComponent)
		d.engines = append(d.engines, eng)
		d.registries = append(d.registries, reg)
		d.medias = append(d.medias, med)
		d.comps = append(d.comps, []service.Component{comp})
		dhtNodes = append(dhtNodes, dn)
	}
	// Static DHT build before traffic.
	dht.Build(dhtNodes)
	// Register all components through the real sockets.
	for i, tr := range d.transports {
		i := i
		tr.Exec(func() {
			for _, c := range d.comps[i] {
				d.registries[i].Register(c)
			}
		})
	}
	time.Sleep(300 * time.Millisecond)
	return d
}

func fastConfig() bcp.Config {
	cfg := bcp.DefaultConfig()
	cfg.CollectTimeout = 300 * time.Millisecond
	cfg.CollectPerHop = 50 * time.Millisecond
	cfg.GiveUpTimeout = 5 * time.Second
	return cfg
}

type flatOracle struct{}

func (flatOracle) Path(a, b p2p.NodeID) (float64, float64, bool)     { return 1, 1e9, true }
func (flatOracle) AllocBandwidth(a, b p2p.NodeID, kbps float64) bool { return true }
func (flatOracle) ReleaseBandwidth(a, b p2p.NodeID, kbps float64)    {}

func TestDHTOverRealSockets(t *testing.T) {
	d := deploy(t, 6, []string{"alpha", "beta"})
	got := make(chan int, 1)
	d.transports[5].Exec(func() {
		d.registries[5].Discover("alpha", 2*time.Second, func(comps []service.Component, _ int, ok bool) {
			if !ok {
				got <- -1
				return
			}
			got <- len(comps)
		})
	})
	select {
	case n := <-got:
		if n != 3 { // peers 0, 2, 4 host "alpha"
			t.Fatalf("discovered %d replicas, want 3", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("discovery over TCP timed out")
	}
}

func TestComposeOverRealSockets(t *testing.T) {
	d := deploy(t, 8, []string{"alpha", "beta"})
	q := qos.Unbounded()
	q[qos.Delay] = 10000
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	req := &service.Request{
		ID: 1, FGraph: fgraph.Linear("alpha", "beta"), QoSReq: q, Res: res,
		Bandwidth: 10, Source: 1, Dest: 3, Budget: 8,
	}
	done := make(chan bcp.Result, 1)
	d.transports[1].Exec(func() {
		d.engines[1].Compose(req, func(r bcp.Result) { done <- r })
	})
	select {
	case r := <-done:
		if !r.Ok {
			t.Fatal("composition over TCP failed")
		}
		if len(r.Best.Comps) != 2 {
			t.Fatalf("incomplete graph %v", r.Best)
		}
		// Stream a frame through the composed graph over the sockets.
		delivered := make(chan media.Frame, 1)
		d.transports[3].Exec(func() {
			d.medias[3].OnDeliver(func(f media.Frame) {
				select {
				case delivered <- f:
				default:
				}
			})
		})
		d.transports[1].Exec(func() {
			d.medias[1].SendFrame(r.Best, media.NewFrame(0, 320, 240))
		})
		select {
		case f := <-delivered:
			if len(f.Trace) != 2 {
				t.Fatalf("frame trace %v", f.Trace)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("frame never crossed the sockets")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("composition over TCP timed out")
	}
}

func TestTransportSelfLoopback(t *testing.T) {
	RegisterTypes()
	addrs := make(map[p2p.NodeID]string)
	tr, err := New(0, "127.0.0.1:0", addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	addrs[0] = tr.Addr()
	got := make(chan struct{})
	tr.Node().Handle("self", func(_ p2p.Node, _ p2p.Message) { close(got) })
	tr.Node().Send(p2p.Message{Type: "self", To: 0})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("loopback message lost")
	}
}

func TestSendToUnknownPeerDropsSilently(t *testing.T) {
	RegisterTypes()
	addrs := make(map[p2p.NodeID]string)
	tr, err := New(0, "127.0.0.1:0", addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	addrs[0] = tr.Addr()
	tr.Node().Send(p2p.Message{Type: "x", To: 99}) // no address: dropped
	if tr.Stats().MessagesSent != 1 {
		t.Fatal("send not counted")
	}
}

func TestGobRoundTripOfProtocolPayloads(t *testing.T) {
	// A probe with nested request/pattern survives the wire intact.
	RegisterTypes()
	addrs := make(map[p2p.NodeID]string)
	a, err := New(0, "127.0.0.1:0", addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(1, "127.0.0.1:0", addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs[0], addrs[1] = a.Addr(), b.Addr()

	fg := fgraph.Linear("x", "y")
	req := &service.Request{ID: 7, FGraph: fg, Budget: 3, Source: 0, Dest: 1}
	probe := bcp.Probe{
		ReqID: 7, Req: req, Pattern: fg, Budget: 3, CurFn: 0, CurCompID: "c0",
		Visited: []bcp.Hop{{Fn: 0, Snap: service.Snapshot{Comp: service.Component{ID: "c0", Function: "x"}}}},
	}
	got := make(chan bcp.Probe, 1)
	b.Node().Handle(bcp.MsgProbe, func(_ p2p.Node, msg p2p.Message) {
		got <- msg.Payload.(bcp.Probe)
	})
	a.Node().Send(p2p.Message{Type: bcp.MsgProbe, To: 1, Payload: probe})
	select {
	case p := <-got:
		if p.ReqID != 7 || p.Req.ID != 7 || p.Pattern.NumFunctions() != 2 {
			t.Fatalf("payload mangled: %+v", p)
		}
		if p.Pattern.Function(1) != "y" || len(p.Visited) != 1 || p.Visited[0].Snap.Comp.ID != "c0" {
			t.Fatalf("nested fields mangled: %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe never arrived")
	}
}
