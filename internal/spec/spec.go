// Package spec parses and renders composite service requests in an XML
// dialect inspired by QoSTalk, the XML-based QoS-enabling language the
// paper names as its specification front end (§2.1: "the user can specify
// the function graph using the visual specification environment such as
// QoSTalk"). A document declares the function graph (with dependency and
// commutation links), the QoS and resource requirements, the probing
// budget, and optional alternative variants:
//
//	<composite name="customized-stream">
//	  <function id="down" name="downscale"/>
//	  <function id="tick" name="stock-ticker"/>
//	  <function id="rq"   name="requant"/>
//	  <dependency from="down" to="tick"/>
//	  <dependency from="tick" to="rq"/>
//	  <commutation a="tick" b="rq"/>
//	  <qos delayMs="1500" lossRate="0.01"/>
//	  <resources cpu="1" memoryMB="10" bandwidthKbps="100"/>
//	  <failure bound="0.05"/>
//	  <probing budget="24"/>
//	  <variant>
//	    <function id="down" name="downscale"/>
//	    <function id="rq"   name="requant"/>
//	    <dependency from="down" to="rq"/>
//	  </variant>
//	</composite>
//
// Endpoints (sender/receiver) are deployment bindings, not part of the
// specification; the caller sets Request.Source/Dest/ID after parsing.
package spec

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"repro/internal/fgraph"
	"repro/internal/qos"
	"repro/internal/service"
)

type xmlComposite struct {
	XMLName      xml.Name      `xml:"composite"`
	Name         string        `xml:"name,attr"`
	Functions    []xmlFunction `xml:"function"`
	Dependencies []xmlDep      `xml:"dependency"`
	Commutations []xmlCommute  `xml:"commutation"`
	QoS          *xmlQoS       `xml:"qos"`
	Resources    *xmlResources `xml:"resources"`
	Failure      *xmlFailure   `xml:"failure"`
	Probing      *xmlProbing   `xml:"probing"`
	Variants     []xmlVariant  `xml:"variant"`
}

type xmlFunction struct {
	ID   string `xml:"id,attr"`
	Name string `xml:"name,attr"`
}

type xmlDep struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

type xmlCommute struct {
	A string `xml:"a,attr"`
	B string `xml:"b,attr"`
}

type xmlQoS struct {
	DelayMs  float64 `xml:"delayMs,attr"`
	LossRate float64 `xml:"lossRate,attr"`
	JitterMs float64 `xml:"jitterMs,attr"`
}

type xmlResources struct {
	CPU           float64 `xml:"cpu,attr"`
	MemoryMB      float64 `xml:"memoryMB,attr"`
	BandwidthKbps float64 `xml:"bandwidthKbps,attr"`
}

type xmlFailure struct {
	Bound float64 `xml:"bound,attr"`
}

type xmlProbing struct {
	Budget int `xml:"budget,attr"`
}

type xmlVariant struct {
	Functions    []xmlFunction `xml:"function"`
	Dependencies []xmlDep      `xml:"dependency"`
	Commutations []xmlCommute  `xml:"commutation"`
}

// Parse reads one composite-service specification and returns the request
// it describes. Source, Dest, and ID are left zero for the caller to bind.
func Parse(r io.Reader) (*service.Request, error) {
	var doc xmlComposite
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	fg, err := buildGraph(doc.Functions, doc.Dependencies, doc.Commutations)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", doc.Name, err)
	}
	req := &service.Request{
		FGraph: fg,
		QoSReq: qos.Unbounded(),
		Budget: 16,
	}
	if doc.QoS != nil {
		if doc.QoS.DelayMs > 0 {
			req.QoSReq[qos.Delay] = doc.QoS.DelayMs
		}
		if doc.QoS.LossRate > 0 {
			req.QoSReq[qos.Loss] = qos.LossToAdditive(doc.QoS.LossRate)
		}
		if doc.QoS.JitterMs > 0 {
			req.QoSReq[qos.Jitter] = doc.QoS.JitterMs
		}
	}
	if doc.Resources != nil {
		req.Res[qos.CPU] = doc.Resources.CPU
		req.Res[qos.Memory] = doc.Resources.MemoryMB
		req.Bandwidth = doc.Resources.BandwidthKbps
	}
	if doc.Failure != nil {
		req.FailReq = doc.Failure.Bound
	}
	if doc.Probing != nil && doc.Probing.Budget > 0 {
		req.Budget = doc.Probing.Budget
	}
	for i, v := range doc.Variants {
		vg, err := buildGraph(v.Functions, v.Dependencies, v.Commutations)
		if err != nil {
			return nil, fmt.Errorf("spec %q variant %d: %w", doc.Name, i, err)
		}
		req.Variants = append(req.Variants, vg)
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("spec %q: %w", doc.Name, err)
	}
	return req, nil
}

// ParseFile parses a specification from a file.
func ParseFile(path string) (*service.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

func buildGraph(fns []xmlFunction, deps []xmlDep, commutes []xmlCommute) (*fgraph.Graph, error) {
	if len(fns) == 0 {
		return nil, fmt.Errorf("no functions declared")
	}
	b := fgraph.NewBuilder()
	index := make(map[string]int, len(fns))
	for _, f := range fns {
		if f.ID == "" || f.Name == "" {
			return nil, fmt.Errorf("function needs both id and name")
		}
		if _, dup := index[f.ID]; dup {
			return nil, fmt.Errorf("duplicate function id %q", f.ID)
		}
		index[f.ID] = b.AddFunction(f.Name)
	}
	resolve := func(id string) (int, error) {
		i, ok := index[id]
		if !ok {
			return 0, fmt.Errorf("unknown function id %q", id)
		}
		return i, nil
	}
	for _, d := range deps {
		from, err := resolve(d.From)
		if err != nil {
			return nil, err
		}
		to, err := resolve(d.To)
		if err != nil {
			return nil, err
		}
		b.AddDependency(from, to)
	}
	for _, c := range commutes {
		a, err := resolve(c.A)
		if err != nil {
			return nil, err
		}
		bb, err := resolve(c.B)
		if err != nil {
			return nil, err
		}
		b.AddCommutation(a, bb)
	}
	return b.Build()
}

// Render serializes a request back into the XML dialect (the inverse of
// Parse, modulo endpoint bindings). Function IDs are synthesized as f0, f1,
// ... in node order.
func Render(name string, req *service.Request) ([]byte, error) {
	doc := xmlComposite{Name: name}
	fillGraph := func(g *fgraph.Graph) ([]xmlFunction, []xmlDep, []xmlCommute) {
		var fns []xmlFunction
		var deps []xmlDep
		var coms []xmlCommute
		id := func(i int) string { return fmt.Sprintf("f%d", i) }
		for i := 0; i < g.NumFunctions(); i++ {
			fns = append(fns, xmlFunction{ID: id(i), Name: g.Function(i)})
		}
		for i := 0; i < g.NumFunctions(); i++ {
			for _, s := range g.Successors(i) {
				deps = append(deps, xmlDep{From: id(i), To: id(s)})
			}
		}
		for _, c := range g.Commutations() {
			coms = append(coms, xmlCommute{A: id(c[0]), B: id(c[1])})
		}
		return fns, deps, coms
	}
	doc.Functions, doc.Dependencies, doc.Commutations = fillGraph(req.FGraph)
	doc.QoS = &xmlQoS{
		DelayMs:  finiteOrZero(req.QoSReq[qos.Delay]),
		LossRate: qos.AdditiveToLoss(finiteOrZero(req.QoSReq[qos.Loss])),
		JitterMs: finiteOrZero(req.QoSReq[qos.Jitter]),
	}
	doc.Resources = &xmlResources{
		CPU:           req.Res[qos.CPU],
		MemoryMB:      req.Res[qos.Memory],
		BandwidthKbps: req.Bandwidth,
	}
	doc.Failure = &xmlFailure{Bound: req.FailReq}
	doc.Probing = &xmlProbing{Budget: req.Budget}
	for _, v := range req.Variants {
		fns, deps, coms := fillGraph(v)
		doc.Variants = append(doc.Variants, xmlVariant{
			Functions: fns, Dependencies: deps, Commutations: coms,
		})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

func finiteOrZero(x float64) float64 {
	if x > 1e17 { // Unbounded sentinel
		return 0
	}
	return x
}
