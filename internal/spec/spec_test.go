package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/qos"
)

const sample = `
<composite name="customized-stream">
  <function id="down" name="downscale"/>
  <function id="tick" name="stock-ticker"/>
  <function id="rq"   name="requant"/>
  <dependency from="down" to="tick"/>
  <dependency from="tick" to="rq"/>
  <commutation a="tick" b="rq"/>
  <qos delayMs="1500" lossRate="0.01"/>
  <resources cpu="1" memoryMB="10" bandwidthKbps="100"/>
  <failure bound="0.05"/>
  <probing budget="24"/>
  <variant>
    <function id="down" name="downscale"/>
    <function id="rq"   name="requant"/>
    <dependency from="down" to="rq"/>
  </variant>
</composite>`

func TestParseFull(t *testing.T) {
	req, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if req.FGraph.NumFunctions() != 3 {
		t.Fatalf("functions=%d", req.FGraph.NumFunctions())
	}
	if req.FGraph.Function(0) != "downscale" || req.FGraph.Function(2) != "requant" {
		t.Fatalf("names=%v", req.FGraph.Functions())
	}
	if len(req.FGraph.Commutations()) != 1 {
		t.Fatal("commutation link lost")
	}
	if req.QoSReq[qos.Delay] != 1500 {
		t.Fatalf("delay req=%v", req.QoSReq[qos.Delay])
	}
	if got := qos.AdditiveToLoss(req.QoSReq[qos.Loss]); got < 0.0099 || got > 0.0101 {
		t.Fatalf("loss req=%v", got)
	}
	if req.Res[qos.CPU] != 1 || req.Res[qos.Memory] != 10 || req.Bandwidth != 100 {
		t.Fatalf("resources=%v bw=%v", req.Res, req.Bandwidth)
	}
	if req.FailReq != 0.05 || req.Budget != 24 {
		t.Fatalf("failure=%v budget=%d", req.FailReq, req.Budget)
	}
	if len(req.Variants) != 1 || req.Variants[0].NumFunctions() != 2 {
		t.Fatalf("variants=%v", req.Variants)
	}
}

func TestParseDefaults(t *testing.T) {
	minimal := `<composite name="m"><function id="a" name="x"/></composite>`
	req, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if req.Budget != 16 {
		t.Fatalf("default budget=%d", req.Budget)
	}
	// Unspecified QoS must be unbounded, not zero (which would be
	// unsatisfiable).
	if req.QoSReq[qos.Delay] < 1e17 {
		t.Fatalf("delay default=%v, want unbounded", req.QoSReq[qos.Delay])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<composite name="e"></composite>`,          // no functions
		`<composite><function id="a"/></composite>`, // missing name
		`<composite><function id="a" name="x"/><function id="a" name="y"/><dependency from="a" to="a"/></composite>`,                              // dup id
		`<composite><function id="a" name="x"/><dependency from="a" to="zz"/></composite>`,                                                        // unknown id
		`<composite><function id="a" name="x"/><function id="b" name="y"/><dependency from="a" to="b"/><dependency from="b" to="a"/></composite>`, // cycle
		`not xml at all`,
	}
	for i, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	req, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render("customized-stream", req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if !back.FGraph.Equal(req.FGraph) {
		t.Fatal("function graph changed in round trip")
	}
	if back.Budget != req.Budget || back.Bandwidth != req.Bandwidth || back.FailReq != req.FailReq {
		t.Fatal("scalar fields changed in round trip")
	}
	if len(back.Variants) != len(req.Variants) || !back.Variants[0].Equal(req.Variants[0]) {
		t.Fatal("variants changed in round trip")
	}
	if d := back.QoSReq[qos.Delay] - req.QoSReq[qos.Delay]; d > 1e-9 || d < -1e-9 {
		t.Fatal("delay requirement changed in round trip")
	}
}
