package spec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSpec throws arbitrary documents at the XML request parser. Any
// input may be rejected, but an accepted one must produce a structurally
// valid request whose rendered form parses back to an equivalent request
// (parse∘render is idempotent).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		sample,
		`<composite name="one"><function id="a" name="fn0"/></composite>`,
		`<composite><function id="a" name="fn0"/><function id="b" name="fn1"/>` +
			`<dependency from="a" to="b"/><commutation a="a" b="b"/></composite>`,
		`<composite name="q"><function id="a" name="fn0"/>` +
			`<qos delayMs="100" lossRate="0.5" jitterMs="3"/>` +
			`<resources cpu="2" memoryMB="64" bandwidthKbps="300"/>` +
			`<failure bound="0.01"/><probing budget="4"/></composite>`,
		`<composite name="v"><function id="a" name="fn0"/>` +
			`<variant><function id="b" name="fn1"/></variant></composite>`,
		`<composite name="cycle"><function id="a" name="fn0"/><function id="b" name="fn1"/>` +
			`<dependency from="a" to="b"/><dependency from="b" to="a"/></composite>`,
		`<composite name="dangling"><function id="a" name="fn0"/>` +
			`<dependency from="a" to="ghost"/></composite>`,
		`<composite name="neg"><function id="a" name="fn0"/>` +
			`<resources cpu="-1" memoryMB="-2" bandwidthKbps="-3"/></composite>`,
		`<composite name="nan"><function id="a" name="fn0"/>` +
			`<qos delayMs="NaN"/></composite>`,
		`not xml at all`,
		``,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		req, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		if req == nil || req.FGraph == nil {
			t.Fatalf("accepted spec produced nil request/graph")
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("accepted spec fails validation: %v\ninput: %q", verr, in)
		}
		out, err := Render("fuzz", req)
		if err != nil {
			t.Fatalf("accepted request does not render: %v", err)
		}
		again, err := Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("rendered spec does not re-parse: %v\nrendered: %s", err, out)
		}
		if got, want := again.FGraph.NumFunctions(), req.FGraph.NumFunctions(); got != want {
			t.Fatalf("round-trip changed function count: %d -> %d", want, got)
		}
		if got, want := len(again.Variants), len(req.Variants); got != want {
			t.Fatalf("round-trip changed variant count: %d -> %d", want, got)
		}
		if again.Budget != req.Budget {
			t.Fatalf("round-trip changed budget: %d -> %d", req.Budget, again.Budget)
		}
	})
}
