package livenet

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

func flatLat(n int, ms float64) [][]float64 {
	lat := make([][]float64, n)
	for i := range lat {
		lat[i] = make([]float64, n)
		for j := range lat[i] {
			if i != j {
				lat[i][j] = ms
			}
		}
	}
	return lat
}

func TestSendDeliver(t *testing.T) {
	nw := NewNetwork(flatLat(2, 1), 1)
	defer nw.Close()
	a := nw.AddNode(0, 1)
	b := nw.AddNode(1, 1)
	got := make(chan p2p.Message, 1)
	b.Handle("ping", func(_ p2p.Node, msg p2p.Message) { got <- msg })
	a.Send(p2p.Message{Type: "ping", To: 1, Size: 10, Payload: "x"})
	select {
	case m := <-got:
		if m.From != 0 || m.Payload != "x" {
			t.Fatalf("msg=%+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
	st := nw.Stats()
	if st.MessagesSent != 1 || st.BytesSent != 10 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestFailedNodeDropsTraffic(t *testing.T) {
	nw := NewNetwork(flatLat(2, 1), 1)
	defer nw.Close()
	a := nw.AddNode(0, 1)
	nw.AddNode(1, 1).Handle("ping", func(_ p2p.Node, _ p2p.Message) {
		t.Error("delivered to failed node")
	})
	nw.Fail(1)
	a.Send(p2p.Message{Type: "ping", To: 1})
	time.Sleep(100 * time.Millisecond)
	if nw.Stats().Dropped != 1 {
		t.Fatalf("stats=%+v", nw.Stats())
	}
	if nw.Alive(1) {
		t.Fatal("failed node reported alive")
	}
}

func TestTimerAndCancel(t *testing.T) {
	nw := NewNetwork(flatLat(1, 1), 1)
	defer nw.Close()
	n := nw.AddNode(0, 1)
	var fired, cancelled atomic.Int32
	done := make(chan struct{})
	n.After(20*time.Millisecond, func() {
		fired.Add(1)
		close(done)
	})
	c := n.After(20*time.Millisecond, func() { cancelled.Add(1) })
	c()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	time.Sleep(50 * time.Millisecond)
	if fired.Load() != 1 || cancelled.Load() != 0 {
		t.Fatalf("fired=%d cancelled=%d", fired.Load(), cancelled.Load())
	}
}

func TestTimersDieOnFailure(t *testing.T) {
	nw := NewNetwork(flatLat(1, 1), 1)
	defer nw.Close()
	n := nw.AddNode(0, 1)
	var fired atomic.Int32
	n.After(50*time.Millisecond, func() { fired.Add(1) })
	nw.Fail(0)
	time.Sleep(120 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("timer fired on crashed node")
	}
	// Recovery does not resurrect pre-failure timers.
	nw.Recover(0)
	time.Sleep(60 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("stale timer fired after recovery")
	}
}

func TestSpeedupCompressesLatency(t *testing.T) {
	nw := NewNetwork(flatLat(2, 200), 20) // 200ms latency at 20x -> 10ms
	defer nw.Close()
	a := nw.AddNode(0, 1)
	b := nw.AddNode(1, 1)
	got := make(chan time.Time, 1)
	b.Handle("ping", func(_ p2p.Node, _ p2p.Message) { got <- time.Now() })
	sent := time.Now()
	a.Send(p2p.Message{Type: "ping", To: 1})
	select {
	case at := <-got:
		if el := at.Sub(sent); el > 150*time.Millisecond {
			t.Fatalf("delivery took %v; speedup not applied", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never delivered")
	}
	if nw.Unscale(10*time.Millisecond) != 200*time.Millisecond {
		t.Fatal("Unscale wrong")
	}
}

func TestExecRunsOnNodeLoop(t *testing.T) {
	nw := NewNetwork(flatLat(1, 1), 1)
	defer nw.Close()
	nw.AddNode(0, 1)
	done := make(chan struct{})
	nw.Exec(0, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Exec never ran")
	}
}

func TestTestbedComposeEndToEnd(t *testing.T) {
	tb := NewTestbed(TestbedOptions{Hosts: 40, Seed: 5, Speedup: 50})
	defer tb.Close()

	// Pick three functions that actually have replicas.
	var fns []string
	for _, f := range MediaFunctions {
		if tb.Replicas(f) > 0 {
			fns = append(fns, f)
		}
		if len(fns) == 3 {
			break
		}
	}
	if len(fns) < 3 {
		t.Skip("testbed too small for 3 distinct functions")
	}
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 10000
	req := &service.Request{
		ID: 1, FGraph: fgraph.Linear(fns...), QoSReq: q, Res: res,
		Bandwidth: 50, Source: 0, Dest: 1, Budget: 12,
	}
	r := tb.Compose(req)
	if !r.Ok {
		t.Fatal("live composition failed")
	}
	if len(r.Best.Comps) != 3 {
		t.Fatalf("incomplete graph: %v", r.Best)
	}
	if r.SetupTime <= 0 {
		t.Fatal("no setup time measured")
	}
	// Protocol-time setup spans at least the collect timeout.
	if tb.Net.Unscale(r.SetupTime) < 500*time.Millisecond {
		t.Fatalf("unscaled setup time %v implausibly low", tb.Net.Unscale(r.SetupTime))
	}
}

func TestTestbedConcurrentCompositions(t *testing.T) {
	tb := NewTestbed(TestbedOptions{Hosts: 40, Seed: 6, Speedup: 50})
	defer tb.Close()
	var fns []string
	for _, f := range MediaFunctions {
		if tb.Replicas(f) > 0 {
			fns = append(fns, f)
		}
		if len(fns) == 2 {
			break
		}
	}
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 10000

	const N = 8
	results := make(chan bool, N)
	for i := 0; i < N; i++ {
		i := i
		go func() {
			req := &service.Request{
				ID: uint64(100 + i), FGraph: fgraph.Linear(fns...), QoSReq: q,
				Res: res, Bandwidth: 10,
				Source: p2p.NodeID(i * 2), Dest: p2p.NodeID(i*2 + 1), Budget: 8,
			}
			results <- tb.Compose(req).Ok
		}()
	}
	okCount := 0
	for i := 0; i < N; i++ {
		select {
		case ok := <-results:
			if ok {
				okCount++
			}
		case <-time.After(30 * time.Second):
			t.Fatal("composition timed out")
		}
	}
	if okCount == 0 {
		t.Fatal("all concurrent compositions failed")
	}
}
