// Package livenet is SpiderNet's live runtime: one goroutine per peer,
// real timers, and injected wide-area message latencies. It implements the
// same p2p.Node interface as the discrete-event simulator, so the identical
// protocol stack (DHT, discovery, BCP, recovery) runs unmodified — this is
// the reproduction's stand-in for the paper's multithreaded Java prototype
// deployed on 102 PlanetLab hosts.
package livenet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
)

// Stats counts network-level overhead (atomically updated).
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	Dropped      int64
	Faulted      int64 // killed at send time by injected loss
}

// Network is a set of live peers exchanging messages with injected
// latencies.
type Network struct {
	lat     [][]float64 // one-way ms
	start   time.Time
	speedup float64

	mu    sync.Mutex
	nodes map[p2p.NodeID]*liveNode

	messages atomic.Int64
	bytes    atomic.Int64
	dropped  atomic.Int64
	faulted  atomic.Int64
	closed   atomic.Bool

	lossMu  sync.Mutex
	lossP   float64
	lossRng *rand.Rand

	trace  obs.Tracer
	obsReg *obs.Registry
	met    *obs.Metrics
}

// NewNetwork creates a live network over the n×n latency matrix (one-way
// milliseconds). speedup divides every injected latency and timer — e.g.
// speedup=10 runs a wide-area scenario ten times faster while preserving
// relative timing; use 1 for real time.
func NewNetwork(lat [][]float64, speedup float64) *Network {
	if speedup <= 0 {
		speedup = 1
	}
	return &Network{
		lat:     lat,
		start:   time.Now(),
		speedup: speedup,
		nodes:   make(map[p2p.NodeID]*liveNode),
	}
}

// Stats returns a snapshot of the overhead counters.
func (nw *Network) Stats() Stats {
	return Stats{
		MessagesSent: nw.messages.Load(),
		BytesSent:    nw.bytes.Load(),
		Dropped:      nw.dropped.Load(),
		Faulted:      nw.faulted.Load(),
	}
}

// SetLoss enables uniform message-loss injection: each send is killed with
// probability p, drawn from a dedicated seeded stream. The live runtime's
// goroutine scheduling is nondeterministic, so unlike the simulator the
// seed only fixes the marginal loss rate, not which messages die. p <= 0
// disables injection.
func (nw *Network) SetLoss(p float64, seed int64) {
	nw.lossMu.Lock()
	defer nw.lossMu.Unlock()
	nw.lossP = p
	nw.lossRng = rand.New(rand.NewSource(seed))
}

// loseSend decides (under the loss lock — send runs from many goroutines)
// whether this message is killed by injected loss.
func (nw *Network) loseSend() bool {
	nw.lossMu.Lock()
	defer nw.lossMu.Unlock()
	return nw.lossP > 0 && nw.lossRng.Float64() < nw.lossP
}

// SetObs attaches the observability subsystem: trace (may be nil) receives
// network-level events, reg (may be nil) accumulates per-node message and
// byte counters, met (may be nil) observes wire-level histograms. Call
// before AddNode so nodes cache their counter blocks; counters are atomic,
// so the admin endpoint reads them while traffic flows.
func (nw *Network) SetObs(trace obs.Tracer, reg *obs.Registry, met *obs.Metrics) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.trace = trace
	nw.obsReg = reg
	nw.met = met
	for id, n := range nw.nodes {
		if reg != nil && n.ctr == nil {
			n.ctr = reg.Node(id)
		}
	}
}

// Scale converts a protocol-time duration into wall time under the
// network's speedup. Protocol configs (timeouts, intervals) are expressed in
// protocol time; the runtime divides by speedup internally.
func (nw *Network) Scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) / nw.speedup)
}

// Unscale converts a wall-clock measurement (e.g. a Result's SetupTime,
// taken from Node.Now differences) back into protocol time under the
// network's speedup.
func (nw *Network) Unscale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * nw.speedup)
}

// AddNode registers a live peer and starts its event loop goroutine.
func (nw *Network) AddNode(id p2p.NodeID, seed int64) p2p.Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.nodes[id]; dup {
		panic(fmt.Sprintf("livenet: duplicate node %d", id))
	}
	n := &liveNode{
		id:       id,
		net:      nw,
		inbox:    make(chan any, 1024),
		quit:     make(chan struct{}),
		handlers: make(map[string]p2p.Handler),
		rng:      rand.New(rand.NewSource(seed ^ int64(id)<<17)),
	}
	if nw.obsReg != nil {
		n.ctr = nw.obsReg.Node(id)
	}
	n.alive.Store(true)
	nw.nodes[id] = n
	go n.loop()
	return n
}

// Node returns a previously added node.
func (nw *Network) Node(id p2p.NodeID) p2p.Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.nodes[id]
}

// Exec runs fn on the node's event loop — the safe way for test and
// experiment code to touch protocol state (register services, start
// compositions) after traffic has started.
func (nw *Network) Exec(id p2p.NodeID, fn func()) {
	nw.mu.Lock()
	n := nw.nodes[id]
	nw.mu.Unlock()
	if n == nil || !n.alive.Load() {
		return
	}
	select {
	case n.inbox <- fn:
	case <-n.quit:
	}
}

// Alive reports whether a peer is up.
func (nw *Network) Alive(id p2p.NodeID) bool {
	nw.mu.Lock()
	n := nw.nodes[id]
	nw.mu.Unlock()
	return n != nil && n.alive.Load()
}

// Fail crashes a peer: messages to it are dropped and its timers are
// invalidated. The event loop keeps draining (discarding) so senders never
// block.
func (nw *Network) Fail(id p2p.NodeID) {
	nw.mu.Lock()
	n := nw.nodes[id]
	nw.mu.Unlock()
	if n != nil && n.alive.Load() {
		n.epoch.Add(1)
		n.alive.Store(false)
	}
}

// Recover brings a failed peer back.
func (nw *Network) Recover(id p2p.NodeID) {
	nw.mu.Lock()
	n := nw.nodes[id]
	nw.mu.Unlock()
	if n != nil {
		n.alive.Store(true)
	}
}

// Close stops every node goroutine. The network is unusable afterwards.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, n := range nw.nodes {
		close(n.quit)
	}
}

func (nw *Network) send(msg p2p.Message) {
	nw.messages.Add(1)
	nw.bytes.Add(int64(msg.Size))
	if nw.met != nil {
		nw.met.WireBytes.Observe(float64(msg.Size))
	}
	if nw.loseSend() {
		nw.faulted.Add(1)
		nw.mu.Lock()
		src := nw.nodes[msg.From]
		nw.mu.Unlock()
		if src != nil && src.ctr != nil {
			src.ctr.Faults.Add(1)
		}
		if nw.trace != nil {
			nw.trace.Emit(obs.NetFault(time.Since(nw.start), msg.From, msg.To,
				obs.FaultLoss, msg.Type, msg.Size, msg.UID))
		}
		return
	}
	lat := nw.lat[int(msg.From)][int(msg.To)]
	d := nw.Scale(time.Duration(lat * float64(time.Millisecond)))
	time.AfterFunc(d, func() {
		nw.mu.Lock()
		dst := nw.nodes[msg.To]
		src := nw.nodes[msg.From]
		nw.mu.Unlock()
		if dst == nil || !dst.alive.Load() {
			nw.dropped.Add(1)
			if src != nil && src.ctr != nil {
				src.ctr.MsgsDrop.Add(1)
			}
			if nw.trace != nil {
				nw.trace.Emit(obs.NetDrop(time.Since(nw.start), msg.From, msg.To, msg.Type, msg.Size, msg.UID))
			}
			return
		}
		select {
		case dst.inbox <- msg:
		case <-dst.quit:
		}
	})
}

// liveNode implements p2p.Node with a single event-loop goroutine, so
// handlers and timers never race — the same single-threaded-per-peer
// semantics the simulator provides.
type liveNode struct {
	id    p2p.NodeID
	net   *Network
	inbox chan any // p2p.Message or func()
	quit  chan struct{}
	alive atomic.Bool
	epoch atomic.Uint64

	hmu      sync.Mutex
	handlers map[string]p2p.Handler

	rng *rand.Rand
	ctr *obs.NodeCounters // nil unless a Registry is attached
}

func (n *liveNode) loop() {
	for {
		select {
		case <-n.quit:
			return
		case item := <-n.inbox:
			if !n.alive.Load() {
				continue // crashed: drain and discard
			}
			switch v := item.(type) {
			case func():
				v()
			case p2p.Message:
				if n.ctr != nil {
					n.ctr.MsgsRecv.Add(1)
				}
				n.hmu.Lock()
				h := n.handlers[v.Type]
				n.hmu.Unlock()
				if h != nil {
					h(n, v)
				}
			}
		}
	}
}

func (n *liveNode) ID() p2p.NodeID     { return n.id }
func (n *liveNode) Now() time.Duration { return time.Since(n.net.start) }
func (n *liveNode) Rand() *rand.Rand   { return n.rng }
func (n *liveNode) Alive() bool        { return n.alive.Load() }

func (n *liveNode) Handle(msgType string, h p2p.Handler) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.handlers[msgType] = h
}

func (n *liveNode) Send(msg p2p.Message) {
	if !n.alive.Load() {
		return
	}
	msg.From = n.id
	if n.ctr != nil {
		n.ctr.MsgsSent.Add(1)
		n.ctr.BytesSent.Add(int64(msg.Size))
	}
	n.net.send(msg)
}

func (n *liveNode) After(d time.Duration, fn func()) p2p.CancelFunc {
	epoch := n.epoch.Load()
	var cancelled atomic.Bool
	timer := time.AfterFunc(n.net.Scale(d), func() {
		if cancelled.Load() {
			return
		}
		task := func() {
			if !cancelled.Load() && n.epoch.Load() == epoch {
				fn()
			}
		}
		select {
		case n.inbox <- task:
		case <-n.quit:
		}
	})
	return func() {
		cancelled.Store(true)
		timer.Stop()
	}
}
