package livenet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bcp"
	"repro/internal/dht"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/topology"
)

// MediaFunctions are the six multimedia service functions of the paper's
// prototype (§6.2), one of which is deployed on each testbed host.
var MediaFunctions = []string{
	"weather-ticker", "stock-ticker", "upscale", "downscale",
	"subimage", "requant",
}

// TestbedOptions configures a live wide-area deployment.
type TestbedOptions struct {
	Hosts   int     // default 102, the paper's PlanetLab host count
	Seed    int64   // default 1
	Speedup float64 // latency/timer compression; default 1 (real time)
	Catalog []string
	BCP     bcp.Config
	// Loss, when positive, kills each message send with this probability
	// (seeded by Seed, so a fixed-seed run injects a repeatable loss
	// pattern even though live-runtime timing is not reproducible).
	Loss float64
	// Capacity per host (default cpu=20, mem=200).
	Capacity qos.Resources
	// Trace, when non-nil, receives structured events from every layer.
	// Live-runtime timestamps come from the wall clock, so traces are not
	// byte-reproducible the way simulator traces are.
	Trace obs.Tracer
	// Obs, when non-nil, accumulates per-node counters across all layers.
	Obs *obs.Registry
	// Metrics, when non-nil, observes the online histograms; with Obs it is
	// what the admin endpoint serves during a live run.
	Metrics *obs.Metrics
}

// TestbedPeer is one live host's protocol stack.
type TestbedPeer struct {
	Node       p2p.Node
	Ledger     *qos.Ledger
	DHT        *dht.Node
	Registry   *registry.Registry
	Engine     *bcp.Engine
	Media      *media.Node
	Components []service.Component
}

// Testbed is a live deployment: the PlanetLab stand-in.
type Testbed struct {
	Net   *Network
	Peers []*TestbedPeer
	opts  TestbedOptions
}

// flatOracle is the live data plane: wide-area latencies, effectively
// unconstrained bandwidth (the paper's prototype did not enforce bandwidth
// admission either).
type flatOracle struct {
	lat [][]float64
}

func (o *flatOracle) Path(a, b p2p.NodeID) (float64, float64, bool) {
	return o.lat[int(a)][int(b)], 1e9, true
}
func (o *flatOracle) AllocBandwidth(a, b p2p.NodeID, kbps float64) bool { return true }
func (o *flatOracle) ReleaseBandwidth(a, b p2p.NodeID, kbps float64)    {}

// NewTestbed builds and starts a live deployment: wide-area latencies, one
// goroutine per host, a statically built DHT, and one randomly drawn media
// component per host, registered through the discovery substrate.
func NewTestbed(opts TestbedOptions) *Testbed {
	if opts.Hosts == 0 {
		opts.Hosts = 102
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Speedup == 0 {
		opts.Speedup = 1
	}
	if opts.Catalog == nil {
		opts.Catalog = MediaFunctions
	}
	if opts.BCP == (bcp.Config{}) {
		opts.BCP = bcp.DefaultConfig()
	}
	if opts.Capacity == (qos.Resources{}) {
		opts.Capacity[qos.CPU] = 20
		opts.Capacity[qos.Memory] = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	lat := topology.WideAreaLatencies(opts.Hosts, rng)
	nw := NewNetwork(lat, opts.Speedup)
	if opts.Trace != nil || opts.Obs != nil || opts.Metrics != nil {
		nw.SetObs(opts.Trace, opts.Obs, opts.Metrics)
	}
	if opts.Loss > 0 {
		nw.SetLoss(opts.Loss, opts.Seed)
	}
	oracle := &flatOracle{lat: lat}

	tb := &Testbed{Net: nw, opts: opts}
	dhtNodes := make([]*dht.Node, opts.Hosts)
	for i := 0; i < opts.Hosts; i++ {
		host := nw.AddNode(p2p.NodeID(i), opts.Seed)
		ledger := qos.NewLedger(opts.Capacity)
		dn := dht.New(host, nw.Alive)
		reg := registry.New(dn)
		fn := opts.Catalog[rng.Intn(len(opts.Catalog))]
		var qp qos.Vector
		qp[qos.Delay] = 5 + rng.Float64()*25
		comps := []service.Component{{
			ID:       fmt.Sprintf("p%d/%s", i, fn),
			Function: fn,
			Peer:     p2p.NodeID(i),
			Qp:       qp,
		}}
		eng := bcp.NewEngine(host, ledger, reg, oracle, comps, opts.BCP)
		eng.Trace = opts.Trace
		dn.Trace = opts.Trace
		eng.Met = opts.Metrics
		dn.Met = opts.Metrics
		if opts.Obs != nil {
			eng.Ctr = opts.Obs.Node(host.ID())
			dn.Ctr = eng.Ctr
		}
		med := media.Attach(host, eng.LocalComponent)
		tb.Peers = append(tb.Peers, &TestbedPeer{
			Node: host, Ledger: ledger, DHT: dn, Registry: reg,
			Engine: eng, Media: med, Components: comps,
		})
		dhtNodes[i] = dn
	}
	// Static DHT construction happens before any traffic, so direct calls
	// are safe; registrations then flow as real messages.
	dht.Build(dhtNodes)
	for i, p := range tb.Peers {
		p := p
		nw.Exec(p2p.NodeID(i), func() {
			for _, c := range p.Components {
				p.Registry.Register(c)
			}
		})
	}
	tb.Settle(2 * time.Second)
	return tb
}

// Settle sleeps for d of protocol time (compressed by the speedup), letting
// in-flight traffic drain.
func (tb *Testbed) Settle(d time.Duration) {
	time.Sleep(tb.Net.Scale(d))
}

// Compose runs one composition from req.Source and blocks until the result
// arrives (in wall time; the Result's durations are wall-clock too — apply
// Net.Unscale for protocol time).
func (tb *Testbed) Compose(req *service.Request) bcp.Result {
	ch := make(chan bcp.Result, 1)
	tb.Net.Exec(req.Source, func() {
		tb.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
			ch <- r
		})
	})
	return <-ch
}

// Close stops all host goroutines.
func (tb *Testbed) Close() { tb.Net.Close() }

// Replicas counts live components providing fn.
func (tb *Testbed) Replicas(fn string) int {
	n := 0
	for _, p := range tb.Peers {
		for _, c := range p.Components {
			if c.Function == fn {
				n++
			}
		}
	}
	return n
}
