// Package metrics provides the small statistics toolkit the experiment
// harness uses: ratio counters, sample accumulators, time-bucketed event
// timelines (for failure-frequency plots), and aligned table printing.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Ratio counts successes over trials.
type Ratio struct {
	Success int
	Total   int
}

// Add records one trial.
func (r *Ratio) Add(ok bool) {
	r.Total++
	if ok {
		r.Success++
	}
}

// Value returns successes/total, or 0 for no trials.
func (r Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Success) / float64(r.Total)
}

// Sample accumulates scalar observations.
type Sample struct {
	xs     []float64
	sorted []float64 // cached sorted copy; nil after any Add
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = nil
}

// AddDuration records a duration in milliseconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d) / float64(time.Millisecond)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for empty samples).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p'th percentile (0<=p<=100) using nearest-rank.
// The sorted order is computed once and cached until the next Add, so the
// usual p50/p90/p99 reporting burst sorts the sample once instead of once
// per percentile.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.xs...)
		sort.Float64s(s.sorted)
	}
	xs := s.sorted
	rank := int(math.Ceil(p/100*float64(len(xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(xs) {
		rank = len(xs) - 1
	}
	return xs[rank]
}

// Min returns the smallest observation (+Inf for empty samples).
func (s *Sample) Min() float64 {
	m := math.Inf(1)
	for _, x := range s.xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest observation (-Inf for empty samples).
func (s *Sample) Max() float64 {
	m := math.Inf(-1)
	for _, x := range s.xs {
		m = math.Max(m, x)
	}
	return m
}

// Timeline buckets events by time for frequency-over-time plots
// (Figure 9's failures per time unit).
type Timeline struct {
	bucket time.Duration
	counts []int
}

// NewTimeline creates a timeline with the given bucket width.
func NewTimeline(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		panic("metrics: non-positive bucket")
	}
	return &Timeline{bucket: bucket}
}

// Add records one event at time t.
func (t *Timeline) Add(at time.Duration) {
	i := int(at / t.bucket)
	for len(t.counts) <= i {
		t.counts = append(t.counts, 0)
	}
	t.counts[i]++
}

// Counts returns per-bucket event counts up to horizon (padding zeros).
func (t *Timeline) Counts(horizon time.Duration) []int {
	n := int(horizon / t.bucket)
	out := make([]int, n)
	copy(out, t.counts)
	return out
}

// Total returns the number of recorded events.
func (t *Timeline) Total() int {
	sum := 0
	for _, c := range t.counts {
		sum += c
	}
	return sum
}

// Table renders aligned experiment output: one Row per x-value, one column
// per series, in the spirit of the paper's figures.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v for numbers.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.1fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	var hdr strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&hdr, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(hdr.String(), " "))
	for _, row := range t.rows {
		var b strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), for
// plotting the regenerated figures with external tools.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
