package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	r.Add(true)
	if math.Abs(r.Value()-0.75) > 1e-12 {
		t.Fatalf("Value=%v", r.Value())
	}
	if r.Total != 4 || r.Success != 3 {
		t.Fatalf("counts=%+v", r)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.N() != 0 {
		t.Fatal("empty sample stats wrong")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean=%v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max=%v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50=%v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100=%v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0=%v", got)
	}
}

// TestSamplePercentileCacheInvalidation guards the sorted-slice cache: an
// Add between Percentile calls must invalidate it, and repeated calls on an
// unchanged sample must not disturb the insertion order visible via Add.
func TestSamplePercentileCacheInvalidation(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100=%v", got)
	}
	// A later, larger observation must be seen despite the cached sort.
	s.Add(9)
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("P100 after Add=%v want 9", got)
	}
	// A later, smaller observation shifts the low percentiles too.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("P0 after Add=%v want 0", got)
	}
	// Repeated percentile queries (the p50/p90/p99 reporting burst) agree
	// with each other without re-sorting.
	if s.Percentile(50) != s.Percentile(50) {
		t.Fatal("cached percentile unstable")
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1500 {
		t.Fatalf("Mean=%v ms", s.Mean())
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(time.Minute)
	tl.Add(30 * time.Second)  // bucket 0
	tl.Add(90 * time.Second)  // bucket 1
	tl.Add(100 * time.Second) // bucket 1
	tl.Add(5 * time.Minute)   // bucket 5
	counts := tl.Counts(10 * time.Minute)
	if len(counts) != 10 {
		t.Fatalf("len=%d", len(counts))
	}
	want := []int{1, 2, 0, 0, 0, 1, 0, 0, 0, 0}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if tl.Total() != 4 {
		t.Fatalf("Total=%d", tl.Total())
	}
}

func TestTimelineBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeline(0)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "workload", "optimal", "probing")
	tb.AddRow(50, 0.95, 0.93)
	tb.AddRow(250, 0.52123, 0.5)
	out := tb.String()
	if !strings.Contains(out, "# Figure X") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d", len(lines))
	}
	if !strings.Contains(lines[1], "workload") || !strings.Contains(lines[1], "probing") {
		t.Fatalf("header=%q", lines[1])
	}
	if !strings.Contains(out, "0.521") {
		t.Fatal("float not formatted to 3 decimals")
	}
	// Duration cells render in milliseconds.
	tb2 := NewTable("", "t")
	tb2.AddRow(1500 * time.Millisecond)
	if !strings.Contains(tb2.String(), "1500.0ms") {
		t.Fatalf("duration cell: %q", tb2.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, "has,comma")
	csv := tb.CSV()
	want := "a,b\n1,\"has,comma\"\n"
	if csv != want {
		t.Fatalf("CSV=%q want %q", csv, want)
	}
}
