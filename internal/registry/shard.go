package registry

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/p2p"
)

// ShardPlan partitions an unfederated deployment's peers into S independent
// DHT rings and homes every discovery key on exactly one of them. It
// generalizes the federation per-domain keyspace shards to deployments with
// no administrative boundaries: each ring carries O(peers/S) membership
// state and O(services/S) stored meta-data. (The static ring build is now
// O(n·log n) — dht.Build's sorted-ring construction — so sharding no longer
// carries the build-time savings it was introduced for; it remains the knob
// that bounds per-ring state and localizes maintenance traffic.)
//
// Homing is by key hash, not by registering peer: all duplicates of a
// function land in the same ring (on the same root) no matter who registers
// them, so a single lookup still returns the full duplicate list and shard
// count cannot change lookup results.
type ShardPlan struct {
	NumShards int
	// Members holds each shard's peers as contiguous ID blocks, mirroring
	// federation.DomainPlan. Deterministic given (peers, shards).
	Members [][]p2p.NodeID

	shardOf []int // peer index -> shard
}

// NewShardPlan splits peers 0..n-1 into shards contiguous blocks. shards is
// clamped to [1, n].
func NewShardPlan(n, shards int) *ShardPlan {
	if n < 1 {
		panic(fmt.Sprintf("registry: shard plan over %d peers", n))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	p := &ShardPlan{NumShards: shards, shardOf: make([]int, n)}
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		block := make([]p2p.NodeID, 0, hi-lo)
		for i := lo; i < hi; i++ {
			block = append(block, p2p.NodeID(i))
			p.shardOf[i] = s
		}
		p.Members = append(p.Members, block)
	}
	return p
}

// ShardOfPeer returns the shard the given peer belongs to.
func (p *ShardPlan) ShardOfPeer(id p2p.NodeID) int { return p.shardOf[int(id)] }

// Home returns the shard whose ring stores the given key: an FNV-1a hash of
// the key bytes mod the shard count. Purely a function of (key, NumShards),
// so every peer agrees on a key's home without coordination.
func (p *ShardPlan) Home(key dht.ID) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(p.NumShards))
}

// Entries returns the deterministic entry members of key's home ring, in
// retry order: a foreign peer's put enters through the first, and a lookup
// that times out on the first retries through the second. The pair is spread
// over the ring by the same key hash that homes the key, so entry load
// distributes across members while staying identical across runs and worker
// counts.
func (p *ShardPlan) Entries(key dht.ID) []p2p.NodeID {
	members := p.Members[p.Home(key)]
	h := 0
	for _, b := range key {
		h = h*31 + int(b)
	}
	if h < 0 {
		h = -h
	}
	i := h % len(members)
	if len(members) == 1 {
		return []p2p.NodeID{members[i]}
	}
	return []p2p.NodeID{members[i], members[(i+1)%len(members)]}
}
