package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/simnet"
)

func cluster(t *testing.T, n int) (*simnet.Network, []*Registry) {
	t.Helper()
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), rand.New(rand.NewSource(1)))
	nodes := make([]*dht.Node, n)
	regs := make([]*Registry, n)
	for i := 0; i < n; i++ {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
		regs[i] = New(nodes[i])
	}
	dht.Build(nodes)
	return nw, regs
}

func mkComp(peer int, fn string, idx int) service.Component {
	var res qos.Resources
	res[qos.CPU] = 1
	return service.Component{
		ID:       fmt.Sprintf("p%d/%s.%d", peer, fn, idx),
		Function: fn,
		Peer:     p2p.NodeID(peer),
		Res:      res,
	}
}

func TestRegisterDiscover(t *testing.T) {
	nw, regs := cluster(t, 40)
	// Three duplicated components for "upscale" on different peers.
	for i, p := range []int{3, 17, 29} {
		regs[p].Register(mkComp(p, "upscale", i))
	}
	nw.Sim().RunUntilIdle()

	var got []service.Component
	regs[11].Discover("upscale", time.Second, func(comps []service.Component, hops int, ok bool) {
		if !ok {
			t.Error("discover failed")
		}
		got = comps
	})
	nw.Sim().RunUntilIdle()
	if len(got) != 3 {
		t.Fatalf("discovered %d duplicates, want 3", len(got))
	}
	peers := map[p2p.NodeID]bool{}
	for _, c := range got {
		if c.Function != "upscale" {
			t.Fatalf("wrong function %q", c.Function)
		}
		peers[c.Peer] = true
	}
	if len(peers) != 3 {
		t.Fatal("duplicate list lost a peer")
	}
}

func TestDiscoverUnknownFunctionEmpty(t *testing.T) {
	nw, regs := cluster(t, 20)
	called := false
	regs[0].Discover("nonexistent", time.Second, func(comps []service.Component, _ int, ok bool) {
		called = true
		if !ok || len(comps) != 0 {
			t.Errorf("comps=%v ok=%v", comps, ok)
		}
	})
	nw.Sim().RunUntilIdle()
	if !called {
		t.Fatal("callback never fired")
	}
}

func TestDiscoverDeduplicatesReplicaCopies(t *testing.T) {
	nw, regs := cluster(t, 40)
	c := mkComp(5, "filter", 0)
	regs[5].Register(c)
	regs[5].Register(c) // double registration
	nw.Sim().RunUntilIdle()
	regs[20].Discover("filter", time.Second, func(comps []service.Component, _ int, ok bool) {
		if !ok || len(comps) != 1 {
			t.Errorf("want exactly 1 after dedup, got %d (ok=%v)", len(comps), ok)
		}
	})
	nw.Sim().RunUntilIdle()
}

func TestDiscoverAll(t *testing.T) {
	nw, regs := cluster(t, 50)
	fns := []string{"a", "b", "c"}
	for i, fn := range fns {
		for r := 0; r < 2; r++ {
			p := 1 + i*3 + r
			regs[p].Register(mkComp(p, fn, r))
		}
	}
	nw.Sim().RunUntilIdle()

	var table Table
	start := nw.Sim().Now()
	var elapsed time.Duration
	regs[0].DiscoverAll([]string{"a", "b", "c", "a"}, time.Second, func(tb Table, ok bool) {
		if !ok {
			t.Error("DiscoverAll failed")
		}
		table = tb
		elapsed = nw.Sim().Now() - start
	})
	nw.Sim().RunUntilIdle()
	if table == nil {
		t.Fatal("callback never fired")
	}
	for _, fn := range fns {
		if len(table[fn]) != 2 {
			t.Fatalf("function %q has %d duplicates, want 2", fn, len(table[fn]))
		}
	}
	// Lookups run concurrently: total time must be far below 3 sequential
	// lookups (each several 5ms hops).
	if elapsed > 200*time.Millisecond {
		t.Fatalf("DiscoverAll took %v; lookups appear serialized", elapsed)
	}
}

func TestDiscoverAllEmptyFunctionList(t *testing.T) {
	_, regs := cluster(t, 5)
	called := false
	regs[0].DiscoverAll(nil, time.Second, func(tb Table, ok bool) {
		called = true
		if !ok || len(tb) != 0 {
			t.Errorf("tb=%v ok=%v", tb, ok)
		}
	})
	if !called {
		t.Fatal("empty DiscoverAll must call back synchronously")
	}
}

func TestDiscoverSurvivesRootFailure(t *testing.T) {
	nw, regs := cluster(t, 60)
	regs[7].Register(mkComp(7, "resilient", 0))
	nw.Sim().RunUntilIdle()

	// Kill the root of the key.
	key := FunctionKey("resilient")
	root := -1
	for i, r := range regs {
		if r.DHT().StoredUnder(key) > 0 && (root == -1 || dht.Closer(key, r.DHT().Self(), regs[root].DHT().Self())) {
			root = i
		}
	}
	if root == -1 {
		t.Fatal("no root stored the component")
	}
	nw.Fail(p2p.NodeID(root))

	found := false
	regs[(root+5)%60].Discover("resilient", time.Second, func(comps []service.Component, _ int, ok bool) {
		found = ok && len(comps) == 1
	})
	nw.Sim().RunUntilIdle()
	if !found {
		t.Fatal("discovery did not survive root failure")
	}
}

func TestFunctionKeyStable(t *testing.T) {
	if FunctionKey("x") != FunctionKey("x") {
		t.Fatal("unstable function key")
	}
	if FunctionKey("x") == FunctionKey("y") {
		t.Fatal("distinct functions collide")
	}
	// Function keys and node IDs live in separate namespaces.
	if FunctionKey("node:0") == dht.FromNode(0) {
		t.Fatal("function key collides with node id namespace")
	}
}
