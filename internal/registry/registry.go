// Package registry implements SpiderNet's decentralized service discovery
// (§3): a keyword meta-data layer on top of the DHT. Registering a component
// stores its static meta-data under the secure hash of its function name, so
// all functionally duplicated components land on the same root peer; a
// discovery for that function name retrieves the whole duplicate list in one
// DHT lookup.
package registry

import (
	"time"

	"repro/internal/dht"
	"repro/internal/service"
)

// metaSize approximates the serialized size of one component's meta-data on
// the wire, for overhead accounting.
const metaSize = 96

// Registry is one peer's interface to the discovery substrate.
type Registry struct {
	node  *dht.Node
	plan  *ShardPlan
	shard int // this peer's shard under plan; -1 when unsharded
}

// New wraps a DHT node in the discovery meta-data layer.
func New(node *dht.Node) *Registry { return &Registry{node: node, shard: -1} }

// NewSharded wraps a DHT node whose deployment shards the keyspace across
// independent rings per plan. Keys homed on this peer's own shard route
// normally; foreign keys enter their home ring through the plan's
// deterministic entry members.
func NewSharded(node *dht.Node, plan *ShardPlan) *Registry {
	return &Registry{node: node, plan: plan, shard: plan.ShardOfPeer(node.Addr())}
}

// FunctionKey returns the DHT key a function name maps to.
func FunctionKey(function string) dht.ID { return dht.Key("fn:" + function) }

// Register shares a service component: its meta-data is stored in the DHT
// under its function name's key, in the key's home ring when sharded.
func (r *Registry) Register(c service.Component) {
	key := FunctionKey(c.Function)
	if r.plan != nil && r.plan.Home(key) != r.shard {
		r.node.PutVia(r.plan.Entries(key)[0], key, c, metaSize)
		return
	}
	r.node.Put(key, c, metaSize)
}

// Discover retrieves the meta-data list of all components providing
// function. cb fires exactly once with the duplicate list (possibly empty)
// and the DHT hop count, or ok=false if the lookup timed out.
func (r *Registry) Discover(function string, timeout time.Duration, cb func(comps []service.Component, hops int, ok bool)) {
	r.DiscoverSpan(function, 0, timeout, cb)
}

// DiscoverSpan is Discover with the composition-request ID attached: the
// underlying DHT lookup stamps every hop event with span so trace span trees
// can attribute discovery traffic to the request.
func (r *Registry) DiscoverSpan(function string, span uint64, timeout time.Duration, cb func(comps []service.Component, hops int, ok bool)) {
	key := FunctionKey(function)
	collect := func(items []any, hops int, ok bool) {
		if !ok {
			cb(nil, 0, false)
			return
		}
		comps := make([]service.Component, 0, len(items))
		seen := make(map[string]bool, len(items))
		for _, it := range items {
			if c, isComp := it.(service.Component); isComp && !seen[c.ID] {
				seen[c.ID] = true
				comps = append(comps, c)
			}
		}
		cb(comps, hops, true)
	}
	if r.plan != nil && r.plan.Home(key) != r.shard {
		r.node.GetVia(r.plan.Entries(key), key, span, timeout, collect)
		return
	}
	r.node.GetSpan(key, span, timeout, collect)
}

// Table is the result of resolving every function of a request: function
// name → duplicate component list.
type Table map[string][]service.Component

// DiscoverAll resolves all functions concurrently and fires cb once when
// every lookup has completed. ok is false if any lookup timed out. This is
// the "decentralized service discovery" phase of session setup whose
// duration Figure 10 reports separately.
func (r *Registry) DiscoverAll(functions []string, timeout time.Duration, cb func(t Table, ok bool)) {
	r.DiscoverAllSpan(functions, 0, timeout, cb)
}

// DiscoverAllSpan is DiscoverAll with the composition-request ID threaded
// through every constituent lookup's trace events.
func (r *Registry) DiscoverAllSpan(functions []string, span uint64, timeout time.Duration, cb func(t Table, ok bool)) {
	// Deduplicate function names first.
	uniq := make([]string, 0, len(functions))
	seen := make(map[string]bool, len(functions))
	for _, f := range functions {
		if !seen[f] {
			seen[f] = true
			uniq = append(uniq, f)
		}
	}
	t := make(Table, len(uniq))
	remaining := len(uniq)
	failed := false
	if remaining == 0 {
		cb(t, true)
		return
	}
	for _, f := range uniq {
		f := f
		r.DiscoverSpan(f, span, timeout, func(comps []service.Component, _ int, ok bool) {
			if !ok {
				failed = true
			} else {
				t[f] = comps
			}
			remaining--
			if remaining == 0 {
				cb(t, !failed)
			}
		})
	}
}

// DHT exposes the underlying DHT node (e.g. to read its identifier).
func (r *Registry) DHT() *dht.Node { return r.node }
