package registry

import (
	"fmt"
	"testing"

	"repro/internal/p2p"
)

func TestShardPlanContiguousAndComplete(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{10, 1}, {10, 4}, {64, 16}, {7, 3}, {5, 9}} {
		p := NewShardPlan(tc.n, tc.s)
		wantShards := tc.s
		if wantShards > tc.n {
			wantShards = tc.n
		}
		if p.NumShards != wantShards {
			t.Fatalf("n=%d s=%d: NumShards=%d, want %d", tc.n, tc.s, p.NumShards, wantShards)
		}
		next := 0
		for s, members := range p.Members {
			if len(members) == 0 {
				t.Fatalf("n=%d s=%d: shard %d empty", tc.n, tc.s, s)
			}
			for _, id := range members {
				if int(id) != next {
					t.Fatalf("n=%d s=%d: members not contiguous at %d (got %d)", tc.n, tc.s, next, id)
				}
				if p.ShardOfPeer(id) != s {
					t.Fatalf("ShardOfPeer(%d)=%d, want %d", id, p.ShardOfPeer(id), s)
				}
				next++
			}
		}
		if next != tc.n {
			t.Fatalf("n=%d s=%d: plan covers %d peers", tc.n, tc.s, next)
		}
	}
}

func TestShardPlanHomeDeterministicAndSpread(t *testing.T) {
	p := NewShardPlan(160, 16)
	q := NewShardPlan(160, 16)
	used := make(map[int]bool)
	for i := 0; i < 200; i++ {
		key := FunctionKey(fmt.Sprintf("fn%d", i))
		h := p.Home(key)
		if h < 0 || h >= p.NumShards {
			t.Fatalf("home %d out of range", h)
		}
		if q.Home(key) != h {
			t.Fatal("identical plans disagree on a key's home")
		}
		used[h] = true
		es := p.Entries(key)
		if len(es) != 2 || es[0] == es[1] {
			t.Fatalf("entries for key %d: %v", i, es)
		}
		for _, e := range es {
			if p.ShardOfPeer(e) != h {
				t.Fatalf("entry %d not a member of home shard %d", e, h)
			}
		}
		f := q.Entries(key)
		if es[0] != f[0] || es[1] != f[1] {
			t.Fatal("identical plans disagree on entry members")
		}
	}
	// 200 function keys over 16 shards: every shard should home something.
	if len(used) != p.NumShards {
		t.Fatalf("only %d of %d shards homed any of 200 keys — hash badly skewed", len(used), p.NumShards)
	}
}

func TestShardPlanSingleMemberEntries(t *testing.T) {
	p := NewShardPlan(3, 3)
	for i := 0; i < 20; i++ {
		es := p.Entries(FunctionKey(fmt.Sprintf("fn%d", i)))
		if len(es) != 1 {
			t.Fatalf("single-member shard returned %d entries", len(es))
		}
	}
}

func TestShardPlanOneShardHomesEverythingLocally(t *testing.T) {
	p := NewShardPlan(40, 1)
	for i := 0; i < 50; i++ {
		if p.Home(FunctionKey(fmt.Sprintf("fn%d", i))) != 0 {
			t.Fatal("single-shard plan homed a key off shard 0")
		}
	}
	for i := 0; i < 40; i++ {
		if p.ShardOfPeer(p2p.NodeID(i)) != 0 {
			t.Fatal("single-shard plan put a peer off shard 0")
		}
	}
}
