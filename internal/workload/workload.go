// Package workload generates the composition request streams the
// experiments replay: random function graphs drawn from the catalogue
// (linear chains, diamond DAGs, optional commutation links), QoS/resource
// requirements, and endpoints, with sequential globally unique request IDs.
package workload

import (
	"math/rand"
	"time"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// Config shapes generated requests. Zero fields take the defaults
// documented on each field.
type Config struct {
	Catalog []string // function names to draw from (required)
	Peers   int      // number of peers to draw endpoints from (required)

	MinFuncs int // functions per request, inclusive range (default 2)
	MaxFuncs int // (default 4)

	Budget int // probing budget β (default 16)

	// DelayReqMin/Max bound the sampled end-to-end delay requirement in ms
	// (default 800..3000).
	DelayReqMin, DelayReqMax float64
	// LossReqMax, when positive, samples an end-to-end loss-rate
	// requirement from [LossReqMax/2, LossReqMax). Zero leaves loss
	// unconstrained.
	LossReqMax float64
	// BandwidthMin/Max bound the sampled bandwidth requirement in kbps
	// (default 50..300).
	BandwidthMin, BandwidthMax float64
	// Res is the per-component requirement (default cpu=1, mem=10).
	Res qos.Resources
	// FailReq is the required failure probability (default 0.05).
	FailReq float64

	// DAGProb is the probability a request uses a diamond DAG instead of a
	// linear chain (needs >= 4 functions; default 0).
	DAGProb float64
	// CommuteProb is the probability a linear request carries one
	// commutation link between two adjacent middle functions (default 0).
	CommuteProb float64

	// Popularity, when non-nil, weights function choice per catalogue index
	// (weights need not be normalized; they must be non-negative and one per
	// catalogue entry). Nil samples functions uniformly.
	Popularity []float64
	// Scenario, when non-nil, layers the time-varying stress shaping on top
	// of Popularity: Zipf popularity (which then overrides Popularity) and
	// flash-crowd boosts evaluated at the time passed to NextAt. Diurnal
	// and churn keys are consumed by the experiment harness, not here.
	Scenario *Scenario
}

func (c Config) withDefaults() Config {
	if c.MinFuncs == 0 {
		c.MinFuncs = 2
	}
	if c.MaxFuncs == 0 {
		c.MaxFuncs = 4
	}
	if c.Budget == 0 {
		c.Budget = 16
	}
	if c.DelayReqMax == 0 {
		c.DelayReqMin, c.DelayReqMax = 800, 3000
	}
	if c.BandwidthMax == 0 {
		c.BandwidthMin, c.BandwidthMax = 50, 300
	}
	if c.Res == (qos.Resources{}) {
		c.Res[qos.CPU] = 1
		c.Res[qos.Memory] = 10
	}
	if c.FailReq == 0 {
		c.FailReq = 0.05
	}
	return c
}

// Generator produces a deterministic stream of requests for a given seed.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	nextID uint64
}

// maxID keeps workload request IDs below the recovery package's reattempt
// namespace (IDs >= 2^40 are reserved for re-compositions).
const maxID = uint64(1) << 40

// NewGenerator returns a generator over the given catalogue and peer count.
func NewGenerator(cfg Config, rng *rand.Rand) *Generator {
	return &Generator{cfg: cfg.withDefaults(), rng: rng}
}

// Next returns the next random request. Source and destination are distinct
// random peers; functions are distinct random catalogue entries, weighted by
// the configured popularity distribution (uniform when none). Equivalent to
// NextAt(0); scenario-driven callers should pass the arrival time so flash
// windows shape popularity.
func (g *Generator) Next() *service.Request { return g.NextAt(0) }

// NextAt returns the next random request as of simulated time at: function
// popularity reflects the scenario's state (Zipf curve plus any flash crowd
// active at that instant). With no scenario and no popularity configured it
// is byte-identical to the pre-scenario generator.
func (g *Generator) NextAt(at time.Duration) *service.Request {
	c := g.cfg
	g.nextID++
	if g.nextID >= maxID {
		g.nextID = 1
	}
	nf := c.MinFuncs + g.rng.Intn(c.MaxFuncs-c.MinFuncs+1)
	if nf > len(c.Catalog) {
		nf = len(c.Catalog)
	}
	fns := g.pickFunctions(nf, at)

	var fg *fgraph.Graph
	switch {
	case nf >= 4 && g.rng.Float64() < c.DAGProb:
		fg = g.diamond(fns)
	default:
		fg = g.linear(fns)
	}

	src := p2p.NodeID(g.rng.Intn(c.Peers))
	dst := p2p.NodeID(g.rng.Intn(c.Peers))
	for dst == src {
		dst = p2p.NodeID(g.rng.Intn(c.Peers))
	}

	q := qos.Unbounded()
	q[qos.Delay] = c.DelayReqMin + g.rng.Float64()*(c.DelayReqMax-c.DelayReqMin)
	if c.LossReqMax > 0 {
		p := c.LossReqMax/2 + g.rng.Float64()*c.LossReqMax/2
		q[qos.Loss] = qos.LossToAdditive(p)
	}

	return &service.Request{
		ID:        g.nextID,
		FGraph:    fg,
		QoSReq:    q,
		Res:       c.Res,
		Bandwidth: c.BandwidthMin + g.rng.Float64()*(c.BandwidthMax-c.BandwidthMin),
		FailReq:   c.FailReq,
		Source:    src,
		Dest:      dst,
		Budget:    c.Budget,
	}
}

// pickFunctions draws n distinct catalogue functions as of time at. Every
// function choice routes through the one weighted sampler: the scenario's
// time-varying weights when a scenario is set, the static Popularity
// distribution otherwise, and the uniform draw when neither is configured.
// (An earlier version ignored Popularity entirely and always sampled
// uniformly; the regression test pins the weighted path.)
func (g *Generator) pickFunctions(n int, at time.Duration) []string {
	w := g.cfg.Popularity
	if g.cfg.Scenario != nil {
		if sw := g.cfg.Scenario.WeightsAt(at, g.cfg.Catalog); sw != nil {
			w = sw
		}
	}
	idx := weightedDistinct(g.rng, w, len(g.cfg.Catalog), n)
	out := make([]string, n)
	for i, j := range idx {
		out[i] = g.cfg.Catalog[j]
	}
	return out
}

func (g *Generator) linear(fns []string) *fgraph.Graph {
	b := fgraph.NewBuilder()
	for i, f := range fns {
		b.AddFunction(f)
		if i > 0 {
			b.AddDependency(i-1, i)
		}
	}
	// Optionally one commutation link between adjacent middle functions.
	if len(fns) >= 3 && g.rng.Float64() < g.cfg.CommuteProb {
		i := 1 + g.rng.Intn(len(fns)-2)
		b.AddCommutation(i, i+1)
	}
	fg, err := b.Build()
	if err != nil {
		panic("workload: linear build failed: " + err.Error())
	}
	return fg
}

// diamond builds fns[0] -> {fns[1], fns[2]} -> fns[3] -> ... (remaining
// functions chained after the join).
func (g *Generator) diamond(fns []string) *fgraph.Graph {
	b := fgraph.NewBuilder()
	for _, f := range fns {
		b.AddFunction(f)
	}
	b.AddDependency(0, 1).AddDependency(0, 2).AddDependency(1, 3).AddDependency(2, 3)
	for i := 4; i < len(fns); i++ {
		b.AddDependency(i-1, i)
	}
	fg, err := b.Build()
	if err != nil {
		panic("workload: diamond build failed: " + err.Error())
	}
	return fg
}
