package workload

import (
	"math/rand"
	"testing"

	"repro/internal/qos"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

func TestNextProducesValidRequests(t *testing.T) {
	g := NewGenerator(Config{Catalog: catalog(10), Peers: 50}, rand.New(rand.NewSource(1)))
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		r := g.Next()
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid request: %v", err)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Source == r.Dest {
			t.Fatal("source equals destination")
		}
		if int(r.Source) >= 50 || int(r.Dest) >= 50 {
			t.Fatal("endpoint out of range")
		}
		nf := r.FGraph.NumFunctions()
		if nf < 2 || nf > 4 {
			t.Fatalf("function count %d outside [2,4]", nf)
		}
		// Functions are distinct.
		fns := map[string]bool{}
		for _, f := range r.FGraph.Functions() {
			if fns[f] {
				t.Fatal("duplicate function in request")
			}
			fns[f] = true
		}
		if r.QoSReq[qos.Delay] < 800 || r.QoSReq[qos.Delay] > 3000 {
			t.Fatalf("delay requirement %v out of range", r.QoSReq[qos.Delay])
		}
		if r.Bandwidth < 50 || r.Bandwidth > 300 {
			t.Fatalf("bandwidth %v out of range", r.Bandwidth)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g1 := NewGenerator(Config{Catalog: catalog(8), Peers: 20}, rand.New(rand.NewSource(7)))
	g2 := NewGenerator(Config{Catalog: catalog(8), Peers: 20}, rand.New(rand.NewSource(7)))
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.ID != b.ID || a.Source != b.Source || a.Dest != b.Dest ||
			a.FGraph.String() != b.FGraph.String() || a.Bandwidth != b.Bandwidth {
			t.Fatalf("request %d differs between same-seed generators", i)
		}
	}
}

func TestDAGGeneration(t *testing.T) {
	g := NewGenerator(Config{
		Catalog: catalog(10), Peers: 20,
		MinFuncs: 4, MaxFuncs: 5, DAGProb: 1.0,
	}, rand.New(rand.NewSource(3)))
	sawDiamond := false
	for i := 0; i < 20; i++ {
		r := g.Next()
		if len(r.FGraph.Branches(0)) >= 2 {
			sawDiamond = true
			// Diamond: node 0 fans out to 1 and 2.
			if s := r.FGraph.Successors(0); len(s) != 2 {
				t.Fatalf("fan-out=%v", s)
			}
		}
	}
	if !sawDiamond {
		t.Fatal("DAGProb=1 produced no DAGs")
	}
}

func TestCommutationGeneration(t *testing.T) {
	g := NewGenerator(Config{
		Catalog: catalog(10), Peers: 20,
		MinFuncs: 3, MaxFuncs: 4, CommuteProb: 1.0,
	}, rand.New(rand.NewSource(4)))
	for i := 0; i < 20; i++ {
		r := g.Next()
		if len(r.FGraph.Commutations()) != 1 {
			t.Fatalf("request %d has %d commutation links, want 1", i, len(r.FGraph.Commutations()))
		}
		// Each commutation produces exactly one extra pattern.
		if got := len(r.FGraph.Patterns(0)); got != 2 {
			t.Fatalf("patterns=%d, want 2", got)
		}
	}
}

func TestFunctionCountCappedByCatalog(t *testing.T) {
	g := NewGenerator(Config{
		Catalog: catalog(3), Peers: 10, MinFuncs: 5, MaxFuncs: 8,
	}, rand.New(rand.NewSource(5)))
	r := g.Next()
	if r.FGraph.NumFunctions() != 3 {
		t.Fatalf("functions=%d, want catalogue size 3", r.FGraph.NumFunctions())
	}
}

func TestIDsStayBelowRecoveryNamespace(t *testing.T) {
	g := NewGenerator(Config{Catalog: catalog(5), Peers: 10}, rand.New(rand.NewSource(6)))
	for i := 0; i < 1000; i++ {
		if r := g.Next(); r.ID >= maxID {
			t.Fatalf("ID %d crosses the reattempt namespace", r.ID)
		}
	}
}
