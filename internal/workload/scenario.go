package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Scenario is the declarative stress-workload spec accepted by the
// -scenario flag and the stress experiment:
//
//	zipf=1.2,diurnal=60s@0.5,flash=fn3:10@30s+20s,churn=0.02@30s+20s,seed=3
//
// Keys may appear in any order, each at most once:
//
//   - zipf=s          — Zipf service popularity with exponent s > 0: the
//     i-th catalogue function is drawn with weight (i+1)^-s. 0 (or the key
//     absent) keeps the uniform draw.
//   - diurnal=p@a     — sinusoidal offered-load curve with period p and
//     amplitude a in [0, 1]: the arrival rate at time t is multiplied by
//     1 + a·sin(2πt/p).
//   - flash=fn:m@at+d — flash crowd: starting at <at> and lasting <d>, the
//     named function's popularity weight is multiplied by m (> 1), and the
//     offered load surges by the same factor applied to that function's
//     base traffic share.
//   - churn=r@at+d    — churn storm: during [at, at+d), the fraction r of
//     the peers fails per time unit (failed peers recover after the
//     consumer's downtime window).
//   - seed=n          — isolates the scenario RNG stream (churn victim
//     selection), so changing the scenario seed never perturbs the
//     workload or cluster streams.
//
// String renders the canonical form (fixed key order, zero-valued keys
// omitted); ParseScenario(s.String()) reproduces s for any spec with at
// least one non-zero field.
type Scenario struct {
	Zipf float64 // popularity exponent; 0 = uniform

	DiurnalPeriod time.Duration // offered-load sine period; 0 = flat
	DiurnalAmp    float64       // offered-load sine amplitude in [0, 1]

	FlashFn   string        // flash-crowd function name; "" = no flash
	FlashMult float64       // popularity multiplier during the window
	FlashAt   time.Duration // window start
	FlashDur  time.Duration // window length

	ChurnRate float64       // fraction of peers failing per time unit
	ChurnAt   time.Duration // storm start
	ChurnDur  time.Duration // storm length

	Seed int64 // scenario RNG stream (churn victims)
}

// ParseScenario parses the -scenario grammar. The empty string is an
// error — "no scenario" is expressed by not passing the flag at all.
func ParseScenario(s string) (*Scenario, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty scenario spec (want e.g. %q)",
			"zipf=1.2,flash=fn3:10@30s+20s,churn=0.02@30s+20s")
	}
	scn := &Scenario{}
	seen := make(map[string]bool)
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("scenario field %q: want key=value", field)
		}
		if seen[key] {
			return nil, fmt.Errorf("scenario key %q given twice", key)
		}
		seen[key] = true
		switch key {
		case "zipf":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario zipf=%q: %v", val, err)
			}
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("scenario zipf=%v: exponent must be finite and >= 0", x)
			}
			scn.Zipf = x
		case "diurnal":
			pStr, aStr, hasAmp := strings.Cut(val, "@")
			if !hasAmp {
				return nil, fmt.Errorf("scenario diurnal=%q: want period@amplitude", val)
			}
			p, err := time.ParseDuration(pStr)
			if err != nil {
				return nil, fmt.Errorf("scenario diurnal=%q: bad period: %v", val, err)
			}
			if p <= 0 {
				return nil, fmt.Errorf("scenario diurnal=%q: period must be positive", val)
			}
			a, err := strconv.ParseFloat(aStr, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario diurnal=%q: bad amplitude: %v", val, err)
			}
			if a <= 0 || a > 1 || math.IsNaN(a) {
				return nil, fmt.Errorf("scenario diurnal=%q: amplitude outside (0,1]", val)
			}
			scn.DiurnalPeriod, scn.DiurnalAmp = p, a
		case "flash":
			fn, rest, hasMult := strings.Cut(val, ":")
			if !hasMult || fn == "" {
				return nil, fmt.Errorf("scenario flash=%q: want fn:mult@at+dur", val)
			}
			if strings.ContainsAny(fn, "=@+,") {
				return nil, fmt.Errorf("scenario flash=%q: function name contains reserved characters", val)
			}
			mStr, window, hasAt := strings.Cut(rest, "@")
			if !hasAt {
				return nil, fmt.Errorf("scenario flash=%q: want fn:mult@at+dur", val)
			}
			m, err := strconv.ParseFloat(mStr, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario flash=%q: bad multiplier: %v", val, err)
			}
			if m <= 1 || math.IsNaN(m) || math.IsInf(m, 0) {
				return nil, fmt.Errorf("scenario flash=%q: multiplier must be finite and > 1", val)
			}
			at, dur, err := parseWindow(window)
			if err != nil {
				return nil, fmt.Errorf("scenario flash=%q: %v", val, err)
			}
			scn.FlashFn, scn.FlashMult, scn.FlashAt, scn.FlashDur = fn, m, at, dur
		case "churn":
			rStr, window, hasAt := strings.Cut(val, "@")
			if !hasAt {
				return nil, fmt.Errorf("scenario churn=%q: want rate@at+dur", val)
			}
			r, err := strconv.ParseFloat(rStr, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario churn=%q: bad rate: %v", val, err)
			}
			if r <= 0 || r > 1 || math.IsNaN(r) {
				return nil, fmt.Errorf("scenario churn=%q: rate outside (0,1]", val)
			}
			at, dur, err := parseWindow(window)
			if err != nil {
				return nil, fmt.Errorf("scenario churn=%q: %v", val, err)
			}
			scn.ChurnRate, scn.ChurnAt, scn.ChurnDur = r, at, dur
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario seed=%q: %v", val, err)
			}
			scn.Seed = n
		default:
			return nil, fmt.Errorf("scenario key %q: want zipf, diurnal, flash, churn, or seed", key)
		}
	}
	return scn, nil
}

// parseWindow parses the shared "<at>+<dur>" window suffix.
func parseWindow(s string) (at, dur time.Duration, err error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("bad window %q: want at+dur", s)
	}
	at, err = time.ParseDuration(atStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window start: %v", err)
	}
	if at < 0 {
		return 0, 0, fmt.Errorf("negative window start %v", at)
	}
	dur, err = time.ParseDuration(durStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window length: %v", err)
	}
	if dur <= 0 {
		return 0, 0, fmt.Errorf("window length %v must be positive", dur)
	}
	return at, dur, nil
}

// String renders the canonical spec: fixed key order, zero-valued keys
// omitted.
func (s *Scenario) String() string {
	var parts []string
	if s.Zipf != 0 {
		parts = append(parts, "zipf="+strconv.FormatFloat(s.Zipf, 'g', -1, 64))
	}
	if s.DiurnalPeriod != 0 {
		parts = append(parts, "diurnal="+s.DiurnalPeriod.String()+"@"+
			strconv.FormatFloat(s.DiurnalAmp, 'g', -1, 64))
	}
	if s.FlashFn != "" {
		parts = append(parts, "flash="+s.FlashFn+":"+
			strconv.FormatFloat(s.FlashMult, 'g', -1, 64)+"@"+
			s.FlashAt.String()+"+"+s.FlashDur.String())
	}
	if s.ChurnRate != 0 {
		parts = append(parts, "churn="+strconv.FormatFloat(s.ChurnRate, 'g', -1, 64)+"@"+
			s.ChurnAt.String()+"+"+s.ChurnDur.String())
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// FlashActive reports whether the flash-crowd window covers time t.
func (s *Scenario) FlashActive(t time.Duration) bool {
	return s.FlashFn != "" && t >= s.FlashAt && t < s.FlashAt+s.FlashDur
}

// ChurnActive reports whether the churn-storm window covers time t.
func (s *Scenario) ChurnActive(t time.Duration) bool {
	return s.ChurnRate > 0 && t >= s.ChurnAt && t < s.ChurnAt+s.ChurnDur
}

// ZipfWeights returns the unnormalized Zipf popularity weights over n
// ranks: w[i] = (i+1)^-s, the classic rank-frequency law. s = 0 yields the
// uniform distribution (all weights 1).
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// WeightsAt returns the popularity weights over the catalogue at time t:
// the Zipf base curve with the flash-crowd boost applied inside its window.
// A scenario that is inert at t (uniform popularity, no active flash)
// returns nil, which the generator treats as the legacy uniform draw — so
// an all-defaults scenario reproduces pre-scenario streams byte for byte.
func (s *Scenario) WeightsAt(t time.Duration, catalog []string) []float64 {
	flash := s.FlashActive(t) && indexOf(catalog, s.FlashFn) >= 0
	if s.Zipf == 0 && !flash {
		return nil
	}
	w := ZipfWeights(len(catalog), s.Zipf)
	if flash {
		w[indexOf(catalog, s.FlashFn)] *= s.FlashMult
	}
	return w
}

// RateMult returns the offered-load multiplier at time t: the diurnal sine
// times the flash surge. The flash surge scales total load by the factor
// the flash function's own traffic grew: with base share p and multiplier
// m, the load becomes 1 + (m-1)·p of baseline — the crowd piles onto one
// function, everyone else's traffic is unchanged.
func (s *Scenario) RateMult(t time.Duration, catalog []string) float64 {
	mult := 1.0
	if s.DiurnalPeriod > 0 {
		mult *= 1 + s.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(s.DiurnalPeriod))
	}
	if s.FlashActive(t) {
		if i := indexOf(catalog, s.FlashFn); i >= 0 {
			base := ZipfWeights(len(catalog), s.Zipf)
			var total float64
			for _, w := range base {
				total += w
			}
			share := base[i] / total
			mult *= 1 + (s.FlashMult-1)*share
		}
	}
	if mult < 0 {
		mult = 0
	}
	return mult
}

// MaxRateMult returns the peak of RateMult over all times: the diurnal
// crest times the flash surge. Thinning samplers divide by it to turn the
// rate curve into an acceptance probability.
func (s *Scenario) MaxRateMult(catalog []string) float64 {
	mult := 1.0
	if s.DiurnalPeriod > 0 {
		mult *= 1 + s.DiurnalAmp
	}
	if s.FlashFn != "" {
		if i := indexOf(catalog, s.FlashFn); i >= 0 {
			base := ZipfWeights(len(catalog), s.Zipf)
			var total float64
			for _, w := range base {
				total += w
			}
			mult *= 1 + (s.FlashMult-1)*base[i]/total
		}
	}
	return mult
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// weightedDistinct is the single weighted sampler every function choice
// routes through: it draws k distinct indices from [0, len(w)), each draw
// proportional to its weight among the not-yet-taken indices (successive
// renormalization, O(n) per draw, no rejection loop). A nil weight slice
// is the uniform distribution and reproduces the legacy rng.Perm draw bit
// for bit, so pre-popularity seeds keep their exact streams.
func weightedDistinct(rng *rand.Rand, w []float64, n, k int) []int {
	if w == nil {
		return rng.Perm(n)[:k]
	}
	if len(w) != n {
		panic(fmt.Sprintf("workload: %d popularity weights for %d functions", len(w), n))
	}
	taken := make([]bool, n)
	out := make([]int, 0, k)
	remaining := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic(fmt.Sprintf("workload: invalid popularity weight %v", x))
		}
		remaining += x
	}
	for len(out) < k {
		var idx int
		if remaining <= 0 {
			// All remaining weight is zero: fall back to the first untaken
			// index, keeping the draw total and deterministic.
			for idx = 0; taken[idx]; idx++ {
			}
		} else {
			target := rng.Float64() * remaining
			acc := 0.0
			idx = -1
			for i, x := range w {
				if taken[i] {
					continue
				}
				acc += x
				if target < acc {
					idx = i
					break
				}
			}
			if idx < 0 { // float underflow at the tail: last untaken index
				for i := n - 1; i >= 0; i-- {
					if !taken[i] {
						idx = i
						break
					}
				}
			}
		}
		taken[idx] = true
		remaining -= w[idx]
		out = append(out, idx)
	}
	return out
}
