package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestParseScenarioTable(t *testing.T) {
	cases := []struct {
		in   string
		want Scenario
	}{
		{"zipf=1.2", Scenario{Zipf: 1.2}},
		{"zipf=0", Scenario{}},
		{"diurnal=60s@0.5", Scenario{DiurnalPeriod: time.Minute, DiurnalAmp: 0.5}},
		{"flash=fn3:10@30s+20s", Scenario{FlashFn: "fn3", FlashMult: 10, FlashAt: 30 * time.Second, FlashDur: 20 * time.Second}},
		{"flash=enc:1.5@0s+1h", Scenario{FlashFn: "enc", FlashMult: 1.5, FlashDur: time.Hour}},
		{"churn=0.02@30s+20s", Scenario{ChurnRate: 0.02, ChurnAt: 30 * time.Second, ChurnDur: 20 * time.Second}},
		{"seed=-7", Scenario{Seed: -7}},
		{
			"zipf=1.2,diurnal=60s@0.5,flash=fn3:10@30s+20s,churn=0.02@30s+20s,seed=3",
			Scenario{
				Zipf: 1.2, DiurnalPeriod: time.Minute, DiurnalAmp: 0.5,
				FlashFn: "fn3", FlashMult: 10, FlashAt: 30 * time.Second, FlashDur: 20 * time.Second,
				ChurnRate: 0.02, ChurnAt: 30 * time.Second, ChurnDur: 20 * time.Second,
				Seed: 3,
			},
		},
		{ // keys in any order
			"seed=3,churn=0.02@30s+20s,zipf=1.2",
			Scenario{Zipf: 1.2, ChurnRate: 0.02, ChurnAt: 30 * time.Second, ChurnDur: 20 * time.Second, Seed: 3},
		},
	}
	for _, c := range cases {
		got, err := ParseScenario(c.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", c.in, err)
			continue
		}
		if *got != c.want {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", c.in, *got, c.want)
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		"zipf",
		"zipf=",
		"zipf=-1",
		"zipf=NaN",
		"zipf=1.2,zipf=1.3",
		"bogus=1",
		"diurnal=60s",          // missing amplitude
		"diurnal=60s@0",        // zero amplitude
		"diurnal=60s@1.5",      // amplitude > 1
		"diurnal=0s@0.5",       // zero period
		"flash=fn3",            // missing mult
		"flash=fn3:10",         // missing window
		"flash=fn3:1@30s+20s",  // mult must be > 1
		"flash=fn3:10@30s",     // missing +dur
		"flash=fn3:10@30s+0s",  // zero window length
		"flash=fn3:10@-1s+20s", // negative start
		"flash=:10@30s+20s",    // empty name
		"flash=a@b:10@30s+20s", // reserved char in name
		"churn=0@30s+20s",      // zero rate
		"churn=1.5@30s+20s",    // rate > 1
		"churn=0.02@30s",       // missing +dur
		"seed=xyz",
	} {
		if scn, err := ParseScenario(in); err == nil {
			t.Errorf("ParseScenario(%q) accepted: %+v", in, scn)
		}
	}
}

func TestScenarioStringCanonical(t *testing.T) {
	in := "seed=3,churn=0.02@30s+20s,flash=fn3:10@1m0s+20s,zipf=1.2"
	scn, err := ParseScenario(in)
	if err != nil {
		t.Fatal(err)
	}
	want := "zipf=1.2,flash=fn3:10@1m0s+20s,churn=0.02@30s+20s,seed=3"
	if got := scn.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	back, err := ParseScenario(scn.String())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *scn {
		t.Fatalf("round trip %+v -> %+v", *scn, *back)
	}
}

func TestScenarioWindows(t *testing.T) {
	scn := Scenario{
		FlashFn: "fn1", FlashMult: 10, FlashAt: 10 * time.Second, FlashDur: 5 * time.Second,
		ChurnRate: 0.1, ChurnAt: 20 * time.Second, ChurnDur: 5 * time.Second,
	}
	for _, c := range []struct {
		at          time.Duration
		flash, chrn bool
	}{
		{0, false, false},
		{10 * time.Second, true, false},
		{14 * time.Second, true, false},
		{15 * time.Second, false, false},
		{20 * time.Second, false, true},
		{24 * time.Second, false, true},
		{25 * time.Second, false, false},
	} {
		if got := scn.FlashActive(c.at); got != c.flash {
			t.Errorf("FlashActive(%v) = %v", c.at, got)
		}
		if got := scn.ChurnActive(c.at); got != c.chrn {
			t.Errorf("ChurnActive(%v) = %v", c.at, got)
		}
	}
}

func TestWeightsAt(t *testing.T) {
	cat := catalog(4)
	// Inert scenario: nil weights (the legacy uniform fast path).
	if w := (&Scenario{}).WeightsAt(0, cat); w != nil {
		t.Fatalf("inert scenario weights = %v, want nil", w)
	}
	// Flash on an unknown function is ignored.
	scn := &Scenario{FlashFn: "nope", FlashMult: 10, FlashDur: time.Minute}
	if w := scn.WeightsAt(0, cat); w != nil {
		t.Fatalf("unknown flash fn weights = %v, want nil", w)
	}
	// Zipf alone: strictly decreasing in rank.
	scn = &Scenario{Zipf: 1.0}
	w := scn.WeightsAt(0, cat)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("zipf weights not decreasing: %v", w)
		}
	}
	// Flash boosts exactly the named function inside its window.
	scn = &Scenario{Zipf: 1.0, FlashFn: cat[2], FlashMult: 10, FlashAt: 5 * time.Second, FlashDur: time.Second}
	base := scn.WeightsAt(0, cat)
	during := scn.WeightsAt(5*time.Second, cat)
	for i := range base {
		want := base[i]
		if i == 2 {
			want *= 10
		}
		if math.Abs(during[i]-want) > 1e-12 {
			t.Fatalf("flash weights[%d] = %v, want %v (base %v)", i, during[i], want, base[i])
		}
	}
}

func TestRateMult(t *testing.T) {
	cat := catalog(4)
	if m := (&Scenario{}).RateMult(17*time.Second, cat); m != 1 {
		t.Fatalf("inert RateMult = %v", m)
	}
	// Diurnal peaks at period/4 with 1+amp and troughs at 3*period/4.
	scn := &Scenario{DiurnalPeriod: 40 * time.Second, DiurnalAmp: 0.5}
	if m := scn.RateMult(10*time.Second, cat); math.Abs(m-1.5) > 1e-9 {
		t.Fatalf("diurnal peak = %v, want 1.5", m)
	}
	if m := scn.RateMult(30*time.Second, cat); math.Abs(m-0.5) > 1e-9 {
		t.Fatalf("diurnal trough = %v, want 0.5", m)
	}
	// Flash surge: uniform base share 1/4, mult 9 -> 1 + 8/4 = 3.
	scn = &Scenario{FlashFn: cat[0], FlashMult: 9, FlashAt: 0, FlashDur: time.Second}
	if m := scn.RateMult(0, cat); math.Abs(m-3) > 1e-9 {
		t.Fatalf("flash surge = %v, want 3", m)
	}
	if m := scn.RateMult(2*time.Second, cat); m != 1 {
		t.Fatalf("post-flash mult = %v, want 1", m)
	}
}

// TestZipfSamplerExponent is the Zipf property test: the empirical
// rank-frequency curve of many single draws must recover the configured
// exponent within tolerance (log-log least-squares fit over the head of
// the distribution, where counts are large enough to be stable).
func TestZipfSamplerExponent(t *testing.T) {
	const (
		n     = 50
		draws = 200000
		s     = 1.1
		tol   = 0.1
	)
	w := ZipfWeights(n, s)
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[weightedDistinct(rng, w, n, 1)[0]]++
	}
	// Weighted draws keep rank order: counts must be non-increasing over
	// the head ranks (ties possible in the tail where counts are small).
	for i := 1; i < 10; i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("rank %d drawn more often than rank %d: %v", i, i-1, counts[:10])
		}
	}
	// Fit log(count) = a - s*log(rank) over the 20 head ranks.
	var sx, sy, sxx, sxy float64
	const head = 20
	for i := 0; i < head; i++ {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(counts[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
	if got := -slope; math.Abs(got-s) > tol {
		t.Fatalf("empirical exponent %.3f, want %.2f +/- %.2f (head counts %v)", got, s, tol, counts[:head])
	}
}

// TestZipfSamplerDeterministic pins byte-identical draws for the same seed:
// the stress experiment's worker-count determinism rests on every cell
// seeding its own generator, so the sampler itself must be a pure function
// of (seed, weights).
func TestZipfSamplerDeterministic(t *testing.T) {
	w := ZipfWeights(30, 1.3)
	draw := func() [][]int {
		rng := rand.New(rand.NewSource(42))
		var out [][]int
		for i := 0; i < 500; i++ {
			out = append(out, weightedDistinct(rng, w, 30, 3))
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed draws differ")
	}
}

func TestWeightedDistinctProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := []float64{0, 3, 1, 0, 2}
	for trial := 0; trial < 200; trial++ {
		got := weightedDistinct(rng, w, 5, 5)
		seen := make(map[int]bool)
		for _, i := range got {
			if i < 0 || i >= 5 || seen[i] {
				t.Fatalf("invalid draw %v", got)
			}
			seen[i] = true
		}
		// Zero-weight indices must come out after all positive ones.
		lastPos := -1
		for pos, i := range got {
			if w[i] > 0 {
				lastPos = pos
			}
		}
		if lastPos > 2 {
			t.Fatalf("zero-weight index drawn before positive weights: %v", got)
		}
	}
	// Nil weights: the legacy uniform path must exactly reproduce rng.Perm.
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		got := weightedDistinct(a, nil, 10, 4)
		want := b.Perm(10)[:4]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("uniform path diverged from rng.Perm: %v vs %v", got, want)
		}
	}
}

// TestPickFunctionsHonorsPopularity is the regression test for the uniform-
// sampling bug: with a popularity distribution configured, the generator
// must skew function choice accordingly instead of silently sampling
// uniformly.
func TestPickFunctionsHonorsPopularity(t *testing.T) {
	cat := catalog(10)
	pop := make([]float64, 10)
	pop[3] = 1 // all mass on one function
	g := NewGenerator(Config{Catalog: cat, Peers: 20, MinFuncs: 1, MaxFuncs: 1, Popularity: pop},
		rand.New(rand.NewSource(2)))
	for i := 0; i < 100; i++ {
		r := g.Next()
		if got := r.FGraph.Function(0); got != cat[3] {
			t.Fatalf("request %d picked %q; popularity distribution ignored", i, got)
		}
	}

	// Zipf-shaped popularity: rank 0 must dominate rank 9 by roughly the
	// configured ratio over many requests.
	g = NewGenerator(Config{
		Catalog: cat, Peers: 20, MinFuncs: 1, MaxFuncs: 1,
		Popularity: ZipfWeights(10, 1.5),
	}, rand.New(rand.NewSource(3)))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[g.Next().FGraph.Function(0)]++
	}
	if counts[cat[0]] <= 5*counts[cat[9]] {
		t.Fatalf("zipf popularity barely skews choice: head %d vs tail %d", counts[cat[0]], counts[cat[9]])
	}
}

// TestScenarioShapesGenerator checks the generator consumes the scenario's
// time-varying weights: during the flash window the flash function appears
// in nearly every request, before it only at its base rate.
func TestScenarioShapesGenerator(t *testing.T) {
	cat := catalog(10)
	scn := &Scenario{Zipf: 1.0, FlashFn: cat[7], FlashMult: 1000, FlashAt: 30 * time.Second, FlashDur: 10 * time.Second}
	g := NewGenerator(Config{Catalog: cat, Peers: 20, MinFuncs: 1, MaxFuncs: 1, Scenario: scn},
		rand.New(rand.NewSource(4)))
	before, during := 0, 0
	for i := 0; i < 400; i++ {
		if g.NextAt(0).FGraph.Function(0) == cat[7] {
			before++
		}
		if g.NextAt(31*time.Second).FGraph.Function(0) == cat[7] {
			during++
		}
	}
	if during < 350 {
		t.Fatalf("flash window picked fn only %d/400 times", during)
	}
	if before > 100 {
		t.Fatalf("outside flash window fn picked %d/400 times (zipf rank 8 should be rare)", before)
	}
}

// TestInertScenarioPreservesStream pins the compatibility contract: a
// scenario with uniform popularity and no active flash leaves the request
// stream byte-identical to a generator with no scenario at all.
func TestInertScenarioPreservesStream(t *testing.T) {
	cat := catalog(8)
	plain := NewGenerator(Config{Catalog: cat, Peers: 20}, rand.New(rand.NewSource(7)))
	inert := NewGenerator(Config{Catalog: cat, Peers: 20, Scenario: &Scenario{ChurnRate: 0.5, ChurnDur: time.Minute}},
		rand.New(rand.NewSource(7)))
	for i := 0; i < 100; i++ {
		a, b := plain.Next(), inert.NextAt(time.Duration(i)*time.Second)
		if a.ID != b.ID || a.Source != b.Source || a.Dest != b.Dest ||
			a.FGraph.String() != b.FGraph.String() || a.Bandwidth != b.Bandwidth {
			t.Fatalf("request %d differs under inert scenario", i)
		}
	}
}

// FuzzStressSpec mirrors the FaultSpec fuzz pattern: every accepted spec is
// internally valid and round-trips parse -> String -> parse identically.
func FuzzStressSpec(f *testing.F) {
	for _, seed := range []string{
		"zipf=1.2",
		"zipf=1.2,diurnal=60s@0.5,flash=fn3:10@30s+20s,churn=0.02@30s+20s,seed=3",
		"diurnal=1h2m3s@0.25",
		"flash=enc:1.5@0s+1h",
		"churn=1@0s+1ns",
		"seed=-9223372036854775808",
		"zipf=0.5,zipf=0.7",
		"flash=a@b:2@1s+1s",
		"bogus=1",
		"=,=,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		scn, err := ParseScenario(in)
		if err != nil {
			return
		}
		if scn.Zipf < 0 || math.IsNaN(scn.Zipf) || math.IsInf(scn.Zipf, 0) {
			t.Fatalf("accepted invalid zipf exponent: %+v", scn)
		}
		if scn.DiurnalPeriod < 0 || scn.DiurnalAmp < 0 || scn.DiurnalAmp > 1 {
			t.Fatalf("accepted invalid diurnal curve: %+v", scn)
		}
		if scn.FlashFn != "" && (scn.FlashMult <= 1 || scn.FlashDur <= 0 || scn.FlashAt < 0) {
			t.Fatalf("accepted invalid flash window: %+v", scn)
		}
		if scn.ChurnRate < 0 || scn.ChurnRate > 1 || (scn.ChurnRate > 0 && scn.ChurnDur <= 0) {
			t.Fatalf("accepted invalid churn storm: %+v", scn)
		}
		if *scn == (Scenario{}) {
			return // all-zero spec (e.g. "zipf=0") has no canonical form
		}
		back, err := ParseScenario(scn.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", scn.String(), err)
		}
		if *back != *scn {
			t.Fatalf("round trip %+v -> %q -> %+v", scn, scn.String(), back)
		}
	})
}
