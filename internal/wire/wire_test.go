package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/dht"
	"repro/internal/p2p"
	"repro/internal/service"
)

// envelope mirrors the transports' on-the-wire shape: a concrete header
// carrying an `any` payload, which is exactly what forces gob type
// registration.
type envelope struct {
	From, To p2p.NodeID
	Payload  any
}

func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{From: 1, To: 2, Payload: payload}); err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var out envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	return out.Payload
}

func TestRegisterAllRoundTrip(t *testing.T) {
	RegisterAll()
	RegisterAll() // idempotent

	// DHT routing message with a nested service.Component payload — the
	// combination the discovery layer actually puts on the wire.
	comp := service.Component{ID: "p3/scale.0", Function: "scale", Peer: 3}
	rm := dht.RouteMsg{
		Key:  dht.Key("scale"),
		Hops: 2,
		Put:  &dht.PutPayload{Item: comp, Size: 64},
	}
	got, ok := roundTrip(t, rm).(dht.RouteMsg)
	if !ok {
		t.Fatalf("RouteMsg decoded as %T", roundTrip(t, rm))
	}
	if got.Key != rm.Key || got.Hops != 2 || got.Put == nil {
		t.Fatalf("RouteMsg mangled: %+v", got)
	}
	if c, ok := got.Put.Item.(service.Component); !ok || c.ID != comp.ID || c.Peer != comp.Peer {
		t.Fatalf("nested Component mangled: %#v", got.Put.Item)
	}

	// GetResp carries []any of registered concrete types.
	resp := dht.GetResp{ReqID: 7, Items: []any{comp}, Hops: 4}
	gr, ok := roundTrip(t, resp).(dht.GetResp)
	if !ok || gr.ReqID != 7 || len(gr.Items) != 1 {
		t.Fatalf("GetResp mangled: %#v", gr)
	}
}

func TestRegisterAllBeforeEncode(t *testing.T) {
	// Without registration, gob refuses to encode an interface-typed field
	// holding an unregistered concrete type. RegisterAll ran in the sibling
	// test (package-level once), so this must succeed from a cold buffer.
	RegisterAll()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(envelope{Payload: dht.AnnounceMsg{}})
	if err != nil {
		t.Fatalf("AnnounceMsg not registered: %v", err)
	}
	if err := gob.NewEncoder(&buf).Encode(envelope{Payload: service.Component{}}); err != nil {
		t.Fatalf("service.Component not registered: %v", err)
	}
}
