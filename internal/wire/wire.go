// Package wire consolidates gob wire-format registration for every protocol
// layer. Each layer keeps its own RegisterGob (its payload types are
// unexported), but transports and tools should depend on this one entry
// point so a new layer's types cannot be forgotten at one call site and
// registered at another.
package wire

import (
	"sync"

	"repro/internal/bcp"
	"repro/internal/dht"
	"repro/internal/media"
	"repro/internal/recovery"
)

var once sync.Once

// RegisterAll registers every protocol payload type — DHT routing, BCP
// composition, failure recovery, and the streaming data plane — with
// encoding/gob. Safe to call multiple times; registration runs once.
func RegisterAll() {
	once.Do(func() {
		dht.RegisterGob()
		bcp.RegisterGob()
		recovery.RegisterGob()
		media.RegisterGob()
	})
}
