package baselines_test

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

func testWorld(seed int64) (*cluster.Cluster, baselines.World) {
	c := cluster.New(cluster.Options{Seed: seed, Peers: 50, Catalog: catalog(5)})
	return c, c.World()
}

func mkReq(c *cluster.Cluster, id uint64, nf int) *service.Request {
	fns := c.FunctionsByReplicas()
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 5000
	return &service.Request{
		ID: id, FGraph: fgraph.Linear(fns[:nf]...), QoSReq: q, Res: res,
		Bandwidth: 50, Source: 0, Dest: 1, Budget: 1,
	}
}

func TestOptimalFindsQualified(t *testing.T) {
	c, w := testWorld(40)
	req := mkReq(c, 1, 3)
	res := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
	if res.Best == nil {
		t.Fatal("optimal found nothing")
	}
	if !res.Best.Qualified(req) {
		t.Fatal("optimal best not qualified")
	}
	if res.Examined == 0 {
		t.Fatal("no candidates examined")
	}
	// Examined must equal the product of replica counts.
	want := 1
	for i := 0; i < 3; i++ {
		want *= c.Replicas(req.FGraph.Function(i))
	}
	if res.Examined != want {
		t.Fatalf("examined %d, want %d", res.Examined, want)
	}
	// Best must truly be minimal cost among qualified.
	w0 := service.DefaultWeights()
	for _, g := range res.Qualified {
		if g.Cost(w0, req)+1e-9 < res.Best.Cost(w0, req) {
			t.Fatal("a qualified graph beats the reported best")
		}
	}
}

func TestOptimalMinDelayObjective(t *testing.T) {
	c, w := testWorld(41)
	req := mkReq(c, 2, 3)
	res := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinDelay)
	if res.Best == nil {
		t.Fatal("optimal found nothing")
	}
	for _, g := range res.Qualified {
		if g.QoS[qos.Delay]+1e-9 < res.Best.QoS[qos.Delay] {
			t.Fatal("a qualified graph has lower delay than the best")
		}
	}
}

func TestOptimalSkipsDeadPeers(t *testing.T) {
	c, w := testWorld(42)
	req := mkReq(c, 3, 2)
	before := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
	if before.Best == nil {
		t.Skip("nothing composable")
	}
	// Kill every peer hosting the best graph's components; optimal must
	// avoid them afterwards.
	for _, s := range before.Best.Comps {
		c.Net.Fail(s.Comp.Peer)
	}
	after := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
	for _, g := range after.Qualified {
		for _, s := range g.Comps {
			if !c.Net.Alive(s.Comp.Peer) {
				t.Fatal("optimal used a dead peer")
			}
		}
	}
	if after.Examined >= before.Examined {
		t.Fatal("killing peers did not shrink the search space")
	}
}

func TestRandomIgnoresQoS(t *testing.T) {
	c, w := testWorld(43)
	req := mkReq(c, 4, 3)
	req.QoSReq[qos.Delay] = 0.001 // impossible, but random doesn't care
	g, ok := baselines.Random(w, req, c.Rng.Intn)
	if !ok || g == nil {
		t.Fatal("random failed to assemble a graph")
	}
	if g.Qualified(req) {
		t.Fatal("graph qualified under impossible QoS")
	}
	if len(g.Comps) != 3 {
		t.Fatalf("assignments=%d", len(g.Comps))
	}
}

func TestStaticDeterministic(t *testing.T) {
	c, w := testWorld(44)
	req := mkReq(c, 5, 3)
	g1, ok1 := baselines.Static(w, req)
	g2, ok2 := baselines.Static(w, req)
	if !ok1 || !ok2 {
		t.Fatal("static failed")
	}
	if g1.Key() != g2.Key() {
		t.Fatal("static selection not deterministic")
	}
	// Per function, static picks the lexicographically smallest live ID.
	for i := 0; i < 3; i++ {
		for _, cand := range c.ComponentsFor(req.FGraph.Function(i)) {
			if cand.ID < g1.Comps[i].Comp.ID {
				t.Fatalf("static skipped smaller ID %s", cand.ID)
			}
		}
	}
}

func TestAdmitCommitsAndReleaseRestores(t *testing.T) {
	c, w := testWorld(45)
	req := mkReq(c, 6, 3)
	res := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
	if res.Best == nil {
		t.Fatal("nothing to admit")
	}
	if !baselines.Admit(w, res.Best) {
		t.Fatal("admission failed on an idle cluster")
	}
	committed := 0
	for _, p := range c.Peers {
		if p.Ledger.HardAllocated() != (qos.Resources{}) {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no peer shows a commitment")
	}
	baselines.Release(w, res.Best)
	for i, p := range c.Peers {
		if p.Ledger.HardAllocated() != (qos.Resources{}) {
			t.Fatalf("peer %d still committed after release", i)
		}
	}
}

func TestAdmitRollsBackOnFailure(t *testing.T) {
	var tiny qos.Resources
	tiny[qos.CPU] = 1
	tiny[qos.Memory] = 10
	c := cluster.New(cluster.Options{
		Seed: 46, Peers: 40, Catalog: catalog(4), Capacity: tiny,
	})
	w := c.World()
	req := mkReq(c, 7, 2)
	res := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
	if res.Best == nil {
		t.Skip("nothing composable")
	}
	if !baselines.Admit(w, res.Best) {
		t.Fatal("first admission failed")
	}
	// A second admission of the same graph must fail (capacity exhausted)
	// and leave allocations unchanged.
	snapshot := make([]qos.Resources, len(c.Peers))
	for i, p := range c.Peers {
		snapshot[i] = p.Ledger.HardAllocated()
	}
	if baselines.Admit(w, res.Best) {
		t.Fatal("overcommit admitted")
	}
	for i, p := range c.Peers {
		if p.Ledger.HardAllocated() != snapshot[i] {
			t.Fatalf("failed admission leaked on peer %d", i)
		}
	}
}

func TestOptimalProbeCount(t *testing.T) {
	c, w := testWorld(47)
	req := mkReq(c, 8, 3)
	n := baselines.OptimalProbeCount(w, req)
	want := 1
	for i := 0; i < 3; i++ {
		want *= c.Replicas(req.FGraph.Function(i))
	}
	if n != want {
		t.Fatalf("probe count %d, want %d", n, want)
	}
	req.FGraph = fgraph.Linear("no-such-fn")
	if baselines.OptimalProbeCount(w, req) != 0 {
		t.Fatal("unknown function should yield 0 probes")
	}
}

func TestCentralizedOverheadPerPeriod(t *testing.T) {
	if baselines.CentralizedOverheadPerPeriod(1000) != 1000*999 {
		t.Fatal("global-view overhead must replicate every peer's state to every other peer")
	}
	if baselines.CoordinatorOverheadPerPeriod(1000) != 1000 {
		t.Fatal("coordinator variant must be one update per peer per period")
	}
}

func TestBuildGraphRejectsIncompatibleFormats(t *testing.T) {
	c, w := testWorld(48)
	req := mkReq(c, 9, 2)
	fns := req.FGraph
	a := c.ComponentsFor(fns.Function(0))[0]
	b := c.ComponentsFor(fns.Function(1))[0]
	a.OutFormat = 1
	b.InFormat = 2
	if _, ok := baselines.BuildGraph(w, req, fns, []service.Component{a, b}); ok {
		t.Fatal("incompatible formats accepted")
	}
	b.InFormat = 1
	if _, ok := baselines.BuildGraph(w, req, fns, []service.Component{a, b}); !ok {
		t.Fatal("compatible formats rejected")
	}
}

func TestBuildGraphQoSIsFinite(t *testing.T) {
	c, w := testWorld(49)
	req := mkReq(c, 10, 3)
	g, ok := baselines.Random(w, req, c.Rng.Intn)
	if !ok {
		t.Fatal("random failed")
	}
	if math.IsInf(g.QoS[qos.Delay], 0) || g.QoS[qos.Delay] <= 0 {
		t.Fatalf("delay=%v", g.QoS[qos.Delay])
	}
	_ = p2p.NodeID(0)
}
