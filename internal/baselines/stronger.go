// stronger.go implements the credible competitor baselines the stress
// sweep compares SpiderNet against, beyond the paper's random/static
// strawmen: a greedy nearest-candidate heuristic, a depth-bounded
// backtracking selection in the style of Ngoko et al. (exact on small
// instances, budgeted on large ones), and a community/partition-based
// composition in the style of Cherifi et al. (selection restricted to
// latency communities around the requester, expanding outward on demand).
//
// All three select from the same omniscient World as the paper baselines
// and admit through the same ledgers, so success ratios are directly
// comparable with BCP's.
package baselines

import (
	"math"
	"sort"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// aliveCandidates returns the alive components for pattern function i,
// sorted by component ID for a deterministic exploration order.
func aliveCandidates(w World, fn string) []service.Component {
	var out []service.Component
	for _, c := range w.ComponentsFor(fn) {
		if w.Alive(c.Peer) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// greedySelect assigns each function, in index order, the candidate that
// minimizes the immediate marginal delay: the worst path latency from the
// already-assigned predecessors (the request source for pattern sources)
// plus the candidate's own processing delay. Ties break on component ID.
// No lookahead and no global QoS check — that is what makes it a heuristic.
func greedySelect(w World, req *service.Request, pat *fgraph.Graph, cands [][]service.Component) ([]service.Component, bool) {
	n := pat.NumFunctions()
	assign := make([]service.Component, n)
	for i := 0; i < n; i++ {
		best := -1
		bestScore := math.Inf(1)
		for ci, c := range cands[i] {
			score := c.Qp[qos.Delay]
			worst := 0.0
			ok := true
			preds := pat.Predecessors(i)
			if len(preds) == 0 {
				lat, _, routed := w.Path(req.Source, c.Peer)
				if !routed {
					ok = false
				}
				worst = lat
			}
			for _, p := range preds {
				lat, _, routed := w.Path(assign[p].Peer, c.Peer)
				if !routed {
					ok = false
					break
				}
				if lat > worst {
					worst = lat
				}
			}
			if !ok {
				continue
			}
			score += worst
			if score < bestScore {
				bestScore, best = score, ci
			}
		}
		if best < 0 {
			return nil, false
		}
		assign[i] = cands[i][best]
	}
	return assign, true
}

// Greedy picks, function by function, the alive candidate closest to the
// already-selected upstream hops (path latency plus processing delay). It
// models the obvious production heuristic: locally cheap, globally blind.
// The returned graph may or may not be qualified.
func Greedy(w World, req *service.Request) (*service.Graph, bool) {
	pat := req.FGraph
	cands := make([][]service.Component, pat.NumFunctions())
	for i := range cands {
		if cands[i] = aliveCandidates(w, pat.Function(i)); len(cands[i]) == 0 {
			return nil, false
		}
	}
	assign, ok := greedySelect(w, req, pat, cands)
	if !ok {
		return nil, false
	}
	return BuildGraph(w, req, pat, assign)
}

// BacktrackOptions configures the backtracking selection.
type BacktrackOptions struct {
	// Objective selects the score minimized (MinCost or MinDelay).
	Objective Objective
	// MaxExpand bounds the number of node expansions (candidate placements
	// tried); the search stops, keeping its best-so-far, when the budget is
	// spent. 0 takes DefaultMaxExpand. The search never exceeds this bound.
	MaxExpand int
	// Depth bounds where alternatives are explored: at function depths
	// >= Depth only the heuristically first candidate is tried, turning the
	// tail of the search greedy. 0 means unbounded (alternatives at every
	// depth — exact on small instances).
	Depth int
}

// DefaultMaxExpand is the standard node-expansion budget.
const DefaultMaxExpand = 50000

// BacktrackStats reports the search effort.
type BacktrackStats struct {
	// Expanded counts candidate placements tried (node expansions). It
	// never exceeds the configured MaxExpand.
	Expanded int
	// Truncated reports that the expansion budget ran out before the
	// search completed, so the result may be suboptimal.
	Truncated bool
}

// Backtracking runs a depth-first backtracking selection over every
// composition pattern (Ngoko et al.'s selection-with-backtracking, adapted
// to the QoS model here): functions are assigned in index order, candidates
// per function are explored in a deterministic heuristic order (ascending
// processing delay, then component ID), and two admissible prunes cut the
// tree — a per-branch accumulated-delay lower bound against the delay
// requirement, and a best-so-far bound on the objective (partial cost and
// partial delay only ever grow as the assignment extends). With an
// unbounded depth and budget the result is exactly the exhaustive-search
// optimum; the differential test certifies that on every small instance.
func Backtracking(w World, req *service.Request, weights service.Weights, opt BacktrackOptions) (*service.Graph, BacktrackStats, bool) {
	if opt.MaxExpand <= 0 {
		opt.MaxExpand = DefaultMaxExpand
	}
	maxPat := req.MaxPatterns
	if maxPat <= 0 {
		maxPat = 4
	}
	wn := weights.Normalize()
	var stats BacktrackStats
	var best *service.Graph
	bestScore := math.Inf(1)

	for _, pat := range req.FGraph.Patterns(maxPat) {
		n := pat.NumFunctions()
		cands := make([][]service.Component, n)
		feasible := true
		for i := 0; i < n; i++ {
			cs := aliveCandidates(w, pat.Function(i))
			if len(cs) == 0 {
				feasible = false
				break
			}
			// Heuristic order: fastest component first, ID tie-break. With a
			// depth bound this makes the greedy tail pick the locally fastest
			// candidate, like Greedy does.
			sort.Slice(cs, func(a, b int) bool {
				if cs[a].Qp[qos.Delay] != cs[b].Qp[qos.Delay] {
					return cs[a].Qp[qos.Delay] < cs[b].Qp[qos.Delay]
				}
				return cs[a].ID < cs[b].ID
			})
			cands[i] = cs
		}
		if !feasible {
			continue
		}
		branches := pat.Branches(16)
		assign := make([]service.Component, n)

		// delayLB returns a lower bound on the final worst-branch delay once
		// functions [0, upto) are assigned: per branch, the accumulated link
		// latency and processing delay over the branch's assigned prefix.
		// Remaining hops only add non-negative terms, so pruning on it never
		// cuts a qualified completion.
		delayLB := func(upto int) float64 {
			worst := 0.0
			for _, br := range branches {
				var d float64
				prev := req.Source
				for _, fn := range br {
					if fn >= upto {
						break
					}
					lat, _, routed := w.Path(prev, assign[fn].Peer)
					if !routed {
						return math.Inf(1)
					}
					d += lat
					d += assign[fn].Qp[qos.Delay]
					prev = assign[fn].Peer
				}
				if d > worst {
					worst = d
				}
			}
			return worst
		}
		// costLB returns a lower bound on the final ψ cost: the per-component
		// resource terms of the assigned prefix (bandwidth terms are left
		// out — they only add, keeping the bound admissible).
		costLB := func(upto int) float64 {
			var cost float64
			for i := 0; i < upto; i++ {
				avail := w.Avail(assign[i].Peer)
				for r := range avail {
					if req.Res[r] == 0 {
						continue
					}
					if avail[r] <= 0 {
						return math.Inf(1)
					}
					cost += wn.Res[r] * req.Res[r] / avail[r]
				}
			}
			return cost
		}

		var walk func(i int) bool
		walk = func(i int) bool {
			if i == n {
				if g, ok := BuildGraph(w, req, pat, assign); ok && g.Qualified(req) {
					score := g.Cost(weights, req)
					if opt.Objective == MinDelay {
						score = g.QoS[qos.Delay]
					}
					if score < bestScore {
						bestScore, best = score, g
					}
				}
				return true
			}
			limit := len(cands[i])
			if opt.Depth > 0 && i >= opt.Depth {
				limit = 1 // greedy tail: no alternatives beyond the depth bound
			}
			for ci := 0; ci < limit; ci++ {
				if stats.Expanded >= opt.MaxExpand {
					stats.Truncated = true
					return false
				}
				stats.Expanded++
				assign[i] = cands[i][ci]
				d := delayLB(i + 1)
				if d > req.QoSReq[qos.Delay] {
					continue // no completion can satisfy the delay requirement
				}
				switch opt.Objective {
				case MinDelay:
					if d >= bestScore {
						continue // cannot beat the incumbent
					}
				default:
					if costLB(i+1) >= bestScore {
						continue
					}
				}
				if !walk(i + 1) {
					return false
				}
			}
			return true
		}
		walk(0)
	}
	return best, stats, best != nil
}

// DefaultCommunities is the community count the partition-based baseline
// uses when none is given.
const DefaultCommunities = 4

// Communities partitions the peer set into (at most) k latency communities
// around deterministic landmarks: the landmarks are evenly spaced in sorted
// peer-ID order, and every peer joins the landmark it reaches with the
// lowest path latency (ties and unreachable peers resolve to the lowest
// community index). The partition is a pure function of the world state.
func Communities(w World, k int) [][]p2p.NodeID {
	peers := w.Peers()
	if k < 1 {
		k = 1
	}
	if k > len(peers) {
		k = len(peers)
	}
	if k == 0 {
		return nil
	}
	landmarks := make([]p2p.NodeID, k)
	for i := range landmarks {
		landmarks[i] = peers[i*len(peers)/k]
	}
	out := make([][]p2p.NodeID, k)
	for _, p := range peers {
		best, bestLat := 0, math.Inf(1)
		for li, l := range landmarks {
			lat, _, ok := w.Path(p, l)
			if !ok {
				continue
			}
			if lat < bestLat {
				bestLat, best = lat, li
			}
		}
		out[best] = append(out[best], p)
	}
	return out
}

// Community runs the partition-based composition (Cherifi et al.): the
// peer set is split into latency communities, communities are ranked by
// their landmark's distance from the requester, and the greedy selection
// runs inside a candidate pool that starts at the nearest community and
// expands one community at a time until a qualified composition exists.
// The final expansion is the whole system, so community selection can only
// lose to Greedy by stopping early in a pool that qualifies locally but
// carries a worse global cost — and win by keeping traffic local. k <= 0
// takes DefaultCommunities. The returned graph may or may not be qualified.
func Community(w World, req *service.Request, k int) (*service.Graph, bool) {
	if k <= 0 {
		k = DefaultCommunities
	}
	comms := Communities(w, k)
	if len(comms) == 0 {
		return nil, false
	}
	// Rank communities by the requester's latency to each community's first
	// member (its landmark-side representative); unreachable communities
	// sort last, index tie-break keeps the order deterministic.
	type ranked struct {
		idx int
		lat float64
	}
	order := make([]ranked, 0, len(comms))
	for i, members := range comms {
		if len(members) == 0 {
			continue
		}
		lat, _, ok := w.Path(req.Source, members[0])
		if !ok {
			lat = math.Inf(1)
		}
		order = append(order, ranked{i, lat})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].lat != order[b].lat {
			return order[a].lat < order[b].lat
		}
		return order[a].idx < order[b].idx
	})

	pat := req.FGraph
	n := pat.NumFunctions()
	all := make([][]service.Component, n)
	for i := 0; i < n; i++ {
		if all[i] = aliveCandidates(w, pat.Function(i)); len(all[i]) == 0 {
			return nil, false
		}
	}

	inPool := make(map[p2p.NodeID]bool)
	var lastGraph *service.Graph
	lastOK := false
	for _, r := range order {
		for _, p := range comms[r.idx] {
			inPool[p] = true
		}
		pool := make([][]service.Component, n)
		feasible := true
		for i := 0; i < n; i++ {
			for _, c := range all[i] {
				if inPool[c.Peer] {
					pool[i] = append(pool[i], c)
				}
			}
			if len(pool[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		assign, ok := greedySelect(w, req, pat, pool)
		if !ok {
			continue
		}
		g, ok := BuildGraph(w, req, pat, assign)
		if !ok {
			continue
		}
		lastGraph, lastOK = g, true
		if g.Qualified(req) {
			return g, true
		}
	}
	return lastGraph, lastOK
}
