package baselines_test

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/service"
)

// smallWorld keeps the exhaustive search space tractable for the
// differential oracle: few peers means few replicas per function, so even
// 6-function instances enumerate completely.
func smallWorld(seed int64, nf int) (*cluster.Cluster, baselines.World) {
	c := cluster.New(cluster.Options{Seed: seed, Peers: 12, Catalog: catalog(nf)})
	return c, c.World()
}

func score(g *service.Graph, req *service.Request, obj baselines.Objective) float64 {
	if obj == baselines.MinDelay {
		return g.QoS[qos.Delay]
	}
	return g.Cost(service.DefaultWeights(), req)
}

// TestBacktrackingMatchesOptimal is the differential test the stress gates
// rely on: on every <=6-function instance the backtracking baseline must
// land on exactly the exhaustive-search optimum (same minimal score, and
// nil exactly when the oracle finds nothing qualified), for both
// objectives, under generous and tight delay requirements.
func TestBacktrackingMatchesOptimal(t *testing.T) {
	weights := service.DefaultWeights()
	checked := 0
	for seed := int64(60); seed < 66; seed++ {
		for nf := 2; nf <= 6; nf++ {
			c, w := smallWorld(seed, nf)
			if len(c.FunctionsByReplicas()) < nf {
				continue // a function drew zero replicas on this tiny world
			}
			for _, delayReq := range []float64{5000, 150} {
				req := mkReq(c, uint64(nf), nf)
				req.QoSReq[qos.Delay] = delayReq
				for _, obj := range []baselines.Objective{baselines.MinCost, baselines.MinDelay} {
					oracle := baselines.Optimal(w, req, weights, obj)
					if oracle.Examined >= 2_000_000 {
						t.Fatalf("seed=%d nf=%d: oracle truncated, shrink the world", seed, nf)
					}
					got, stats, ok := baselines.Backtracking(w, req, weights, baselines.BacktrackOptions{
						Objective: obj, MaxExpand: 5_000_000,
					})
					if stats.Truncated {
						t.Fatalf("seed=%d nf=%d: backtracking truncated on a small instance", seed, nf)
					}
					if (oracle.Best == nil) != !ok {
						t.Fatalf("seed=%d nf=%d delay=%v obj=%v: oracle best=%v backtracking ok=%v",
							seed, nf, delayReq, obj, oracle.Best, ok)
					}
					if oracle.Best == nil {
						continue
					}
					want := score(oracle.Best, req, obj)
					have := score(got, req, obj)
					if math.Abs(want-have) > 1e-9 {
						t.Fatalf("seed=%d nf=%d delay=%v obj=%v: backtracking score %v, optimal %v",
							seed, nf, delayReq, obj, have, want)
					}
					if !got.Qualified(req) {
						t.Fatalf("seed=%d nf=%d: backtracking returned unqualified graph", seed, nf)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instance had a qualified composition; the differential test proved nothing")
	}
}

// TestBacktrackingExpansionBound certifies the node-expansion bound is a
// hard ceiling: the search reports Expanded <= MaxExpand no matter the
// instance, and flags truncation when the budget ran out.
func TestBacktrackingExpansionBound(t *testing.T) {
	c, w := testWorld(61)
	req := mkReq(c, 1, 5)
	const budget = 5_000_000
	full, fullStats, ok := baselines.Backtracking(w, req, service.DefaultWeights(), baselines.BacktrackOptions{MaxExpand: budget})
	if !ok || fullStats.Truncated {
		t.Fatalf("search with a %d budget on 50 peers should complete (ok=%v truncated=%v)", budget, ok, fullStats.Truncated)
	}
	if fullStats.Expanded == 0 || fullStats.Expanded > budget {
		t.Fatalf("expanded=%d outside (0, %d]", fullStats.Expanded, budget)
	}
	for _, budget := range []int{1, 3, 10, 100} {
		_, stats, _ := baselines.Backtracking(w, req, service.DefaultWeights(), baselines.BacktrackOptions{
			MaxExpand: budget,
		})
		if stats.Expanded > budget {
			t.Fatalf("budget %d exceeded: expanded=%d", budget, stats.Expanded)
		}
		if budget < fullStats.Expanded && !stats.Truncated {
			t.Fatalf("budget %d < full %d but not flagged truncated", budget, fullStats.Expanded)
		}
	}
	_ = full
}

// TestBacktrackingDepthBound: with Depth=1 only the first function explores
// alternatives, so the search does strictly less work than the full run and
// never beats the true optimum.
func TestBacktrackingDepthBound(t *testing.T) {
	weights := service.DefaultWeights()
	c, w := testWorld(62)
	req := mkReq(c, 2, 4)
	_, fullStats, ok := baselines.Backtracking(w, req, weights, baselines.BacktrackOptions{})
	if !ok {
		t.Skip("nothing composable")
	}
	oracle := baselines.Optimal(w, req, weights, baselines.MinCost)
	shallow, shallowStats, shallowOK := baselines.Backtracking(w, req, weights, baselines.BacktrackOptions{Depth: 1})
	if shallowStats.Expanded >= fullStats.Expanded {
		t.Fatalf("depth bound did not shrink the search: %d vs %d", shallowStats.Expanded, fullStats.Expanded)
	}
	if shallowOK && oracle.Best != nil {
		if score(shallow, req, baselines.MinCost)+1e-9 < score(oracle.Best, req, baselines.MinCost) {
			t.Fatal("depth-bounded search beat the exhaustive optimum")
		}
	}
	// Determinism: identical options, identical selection.
	again, _, againOK := baselines.Backtracking(w, req, weights, baselines.BacktrackOptions{Depth: 1})
	if shallowOK != againOK || (shallowOK && shallow.Key() != again.Key()) {
		t.Fatal("depth-bounded backtracking not deterministic")
	}
}

func TestGreedyDeterministicAndNeverBeatsOptimal(t *testing.T) {
	weights := service.DefaultWeights()
	for seed := int64(70); seed < 75; seed++ {
		c, w := testWorld(seed)
		req := mkReq(c, uint64(seed), 3)
		g1, ok1 := baselines.Greedy(w, req)
		g2, ok2 := baselines.Greedy(w, req)
		if ok1 != ok2 || (ok1 && g1.Key() != g2.Key()) {
			t.Fatalf("seed=%d: greedy not deterministic", seed)
		}
		if !ok1 {
			continue
		}
		if len(g1.Comps) != req.FGraph.NumFunctions() {
			t.Fatalf("seed=%d: greedy assigned %d of %d functions", seed, len(g1.Comps), req.FGraph.NumFunctions())
		}
		oracle := baselines.Optimal(w, req, weights, baselines.MinCost)
		if g1.Qualified(req) {
			if oracle.Best == nil {
				t.Fatalf("seed=%d: greedy qualified where exhaustive search found nothing", seed)
			}
			if score(g1, req, baselines.MinCost)+1e-9 < score(oracle.Best, req, baselines.MinCost) {
				t.Fatalf("seed=%d: greedy beat the exhaustive optimum", seed)
			}
		}
	}
}

func TestCommunitiesPartition(t *testing.T) {
	c, w := testWorld(63)
	comms := baselines.Communities(w, 4)
	if len(comms) != 4 {
		t.Fatalf("got %d communities, want 4", len(comms))
	}
	seen := make(map[int]int)
	for ci, members := range comms {
		for _, p := range members {
			if prev, dup := seen[int(p)]; dup {
				t.Fatalf("peer %d in communities %d and %d", p, prev, ci)
			}
			seen[int(p)] = ci
		}
	}
	if len(seen) != len(c.Peers) {
		t.Fatalf("partition covers %d of %d peers", len(seen), len(c.Peers))
	}
	again := baselines.Communities(w, 4)
	for i := range comms {
		if len(comms[i]) != len(again[i]) {
			t.Fatal("partition not deterministic")
		}
		for j := range comms[i] {
			if comms[i][j] != again[i][j] {
				t.Fatal("partition not deterministic")
			}
		}
	}
	// Degenerate requests must clamp, not crash.
	if one := baselines.Communities(w, 1); len(one) != 1 || len(one[0]) != len(c.Peers) {
		t.Fatal("k=1 must put everyone in one community")
	}
	if huge := baselines.Communities(w, 10_000); len(huge) != len(c.Peers) {
		t.Fatalf("k beyond peer count must clamp to %d, got %d", len(c.Peers), len(huge))
	}
}

// TestCommunityValidAgainstExhaustive validates the partition-based
// baseline against the oracle: whenever it claims a qualified composition
// the exhaustive search must agree one exists and the community choice can
// only be costlier; its graphs are always structurally complete and alive.
func TestCommunityValidAgainstExhaustive(t *testing.T) {
	weights := service.DefaultWeights()
	qualified := 0
	for seed := int64(80); seed < 88; seed++ {
		c, w := testWorld(seed)
		req := mkReq(c, uint64(seed), 3)
		g, ok := baselines.Community(w, req, 4)
		g2, ok2 := baselines.Community(w, req, 4)
		if ok != ok2 || (ok && g.Key() != g2.Key()) {
			t.Fatalf("seed=%d: community not deterministic", seed)
		}
		if !ok {
			continue
		}
		if len(g.Comps) != req.FGraph.NumFunctions() {
			t.Fatalf("seed=%d: community assigned %d of %d functions", seed, len(g.Comps), req.FGraph.NumFunctions())
		}
		for _, s := range g.Comps {
			if !c.Net.Alive(s.Comp.Peer) {
				t.Fatalf("seed=%d: community used a dead peer", seed)
			}
		}
		oracle := baselines.Optimal(w, req, weights, baselines.MinCost)
		if g.Qualified(req) {
			qualified++
			if oracle.Best == nil {
				t.Fatalf("seed=%d: community qualified where exhaustive search found nothing", seed)
			}
			if score(g, req, baselines.MinCost)+1e-9 < score(oracle.Best, req, baselines.MinCost) {
				t.Fatalf("seed=%d: community beat the exhaustive optimum", seed)
			}
		}
	}
	if qualified == 0 {
		t.Fatal("community never qualified on an idle 50-peer cluster; the baseline is broken")
	}
}

// Community selection must keep working when peers die: the partition is
// rebuilt from live state each call, and dead peers never appear in the
// selection even if they remain in a community.
func TestCommunitySkipsDeadPeers(t *testing.T) {
	c, w := testWorld(64)
	req := mkReq(c, 1, 2)
	g, ok := baselines.Community(w, req, 4)
	if !ok {
		t.Skip("nothing composable")
	}
	for _, s := range g.Comps {
		c.Net.Fail(s.Comp.Peer)
	}
	g2, ok2 := baselines.Community(w, req, 4)
	if !ok2 {
		return // acceptable: killing peers can make it infeasible
	}
	for _, s := range g2.Comps {
		if !c.Net.Alive(s.Comp.Peer) {
			t.Fatal("community selected a dead peer")
		}
	}
}
