// Package baselines implements the comparison algorithms of the paper's
// evaluation (§6.1): the optimal algorithm (unbounded flooding / exhaustive
// search), the random algorithm, the static algorithm, and the centralized
// global-state scheme whose maintenance overhead Figure 8's discussion
// compares against BCP.
//
// The baselines select compositions from a global view of the system — that
// is exactly what distinguishes them from SpiderNet — but they admit
// resources through the same ledgers and bandwidth oracle as BCP, so success
// rates are directly comparable.
package baselines

import (
	"math"
	"sort"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// World is the global view a centralized algorithm assumes: every
// component, every peer's availability and liveness, and the data plane.
type World interface {
	// ComponentsFor lists every registered component providing fn.
	ComponentsFor(fn string) []service.Component
	// Alive reports whether a peer is up.
	Alive(p p2p.NodeID) bool
	// Avail returns a peer's uncommitted end-system resources.
	Avail(p p2p.NodeID) qos.Resources
	// Path returns overlay path latency (ms) and available bandwidth (kbps).
	Path(a, b p2p.NodeID) (lat, band float64, ok bool)
	// Commit admits res on peer p, returning success.
	Commit(p p2p.NodeID, res qos.Resources) bool
	// Free releases a previous Commit.
	Free(p p2p.NodeID, res qos.Resources)
	// AllocBandwidth and ReleaseBandwidth admit/release link bandwidth.
	AllocBandwidth(a, b p2p.NodeID, kbps float64) bool
	ReleaseBandwidth(a, b p2p.NodeID, kbps float64)
	// Peers lists every peer in the system, sorted by ID. The
	// community/partition baseline clusters over this universe.
	Peers() []p2p.NodeID
}

// Objective selects what the optimal algorithm minimizes.
type Objective int

const (
	// MinCost minimizes the ψ cost function (load balance), as SpiderNet's
	// destination does.
	MinCost Objective = iota
	// MinDelay minimizes end-to-end delay, the objective of Figure 11.
	MinDelay
)

// SearchResult reports an exhaustive search.
type SearchResult struct {
	Best      *service.Graph
	Qualified []*service.Graph
	// Examined counts every complete candidate service graph the flooding
	// scheme would have probed — the paper's "number of probes required by
	// the optimal algorithm" (17^3 = 4913 in §6.2).
	Examined int
}

// maxExamined bounds the exhaustive enumeration so pathological workloads
// terminate; the experiments stay far below it.
const maxExamined = 2_000_000

// Optimal exhaustively enumerates every candidate service graph (all
// composition patterns × all duplicate choices), keeps the qualified ones,
// and returns the best under obj. It is the unbounded-flooding comparator.
func Optimal(w World, req *service.Request, weights service.Weights, obj Objective) SearchResult {
	var res SearchResult
	maxPat := req.MaxPatterns
	if maxPat <= 0 {
		maxPat = 4
	}
	for _, pat := range req.FGraph.Patterns(maxPat) {
		n := pat.NumFunctions()
		lists := make([][]service.Component, n)
		feasible := true
		for i := 0; i < n; i++ {
			for _, c := range w.ComponentsFor(pat.Function(i)) {
				if w.Alive(c.Peer) {
					lists[i] = append(lists[i], c)
				}
			}
			if len(lists[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		assign := make([]service.Component, n)
		var walk func(i int) bool
		walk = func(i int) bool {
			if res.Examined >= maxExamined {
				return false
			}
			if i == n {
				res.Examined++
				if g, ok := BuildGraph(w, req, pat, assign); ok && g.Qualified(req) {
					res.Qualified = append(res.Qualified, g)
				}
				return true
			}
			for _, c := range lists[i] {
				assign[i] = c
				if !walk(i + 1) {
					return false
				}
			}
			return true
		}
		walk(0)
	}
	if len(res.Qualified) == 0 {
		return res
	}
	score := func(g *service.Graph) float64 {
		if obj == MinDelay {
			return g.QoS[qos.Delay]
		}
		return g.Cost(weights, req)
	}
	sort.SliceStable(res.Qualified, func(i, j int) bool {
		return score(res.Qualified[i]) < score(res.Qualified[j])
	})
	res.Best = res.Qualified[0]
	return res
}

// Random picks a uniformly random functionally qualified duplicate for each
// function, ignoring the user's QoS and resource requirements entirely
// (§6.1). The returned graph may or may not be qualified.
func Random(w World, req *service.Request, intn func(int) int) (*service.Graph, bool) {
	pat := req.FGraph
	n := pat.NumFunctions()
	assign := make([]service.Component, n)
	for i := 0; i < n; i++ {
		var cands []service.Component
		for _, c := range w.ComponentsFor(pat.Function(i)) {
			if w.Alive(c.Peer) {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			return nil, false
		}
		assign[i] = cands[intn(len(cands))]
	}
	return BuildGraph(w, req, pat, assign)
}

// Static picks a pre-defined duplicate per function — deterministically the
// lexicographically smallest component ID — again ignoring QoS and resources
// (§6.1).
func Static(w World, req *service.Request) (*service.Graph, bool) {
	pat := req.FGraph
	n := pat.NumFunctions()
	assign := make([]service.Component, n)
	for i := 0; i < n; i++ {
		var best *service.Component
		for _, c := range w.ComponentsFor(pat.Function(i)) {
			c := c
			if !w.Alive(c.Peer) {
				continue
			}
			if best == nil || c.ID < best.ID {
				best = &c
			}
		}
		if best == nil {
			return nil, false
		}
		assign[i] = *best
	}
	return BuildGraph(w, req, pat, assign)
}

// BuildGraph materializes an assignment into a service graph with fresh
// snapshots, link states, and accumulated QoS (branch-wise max), checking
// format compatibility along every dependency edge. ok=false if the
// assignment is structurally impossible (disconnected peers or incompatible
// formats).
func BuildGraph(w World, req *service.Request, pat *fgraph.Graph, assign []service.Component) (*service.Graph, bool) {
	g := &service.Graph{
		Pattern: pat,
		Comps:   make(map[int]service.Snapshot, len(assign)),
		Req:     req,
	}
	for i, c := range assign {
		g.Comps[i] = service.Snapshot{Comp: c, Avail: w.Avail(c.Peer)}
	}
	// Format compatibility on every dependency edge.
	for i := range assign {
		for _, s := range pat.Successors(i) {
			if !service.Compatible(assign[i], assign[s]) {
				return nil, false
			}
		}
	}
	type lk struct{ from, to int }
	seen := make(map[lk]bool)
	addLink := func(from, to int, a, b p2p.NodeID) bool {
		if seen[lk{from, to}] {
			return true
		}
		lat, band, ok := w.Path(a, b)
		if !ok {
			return false
		}
		seen[lk{from, to}] = true
		g.Links = append(g.Links, service.LinkSnapshot{FromFn: from, ToFn: to, BandAvail: band, Latency: lat})
		return true
	}
	// Accumulate QoS per branch; merge with component-wise max.
	var total qos.Vector
	for _, br := range pat.Branches(16) {
		var q qos.Vector
		prev := req.Source
		prevFn := -1
		okBranch := true
		for _, fn := range br {
			c := assign[fn]
			lat, _, ok := w.Path(prev, c.Peer)
			if !ok || !addLink(prevFn, fn, prev, c.Peer) {
				okBranch = false
				break
			}
			q[qos.Delay] += lat
			q = q.Add(c.Qp)
			prev, prevFn = c.Peer, fn
		}
		if !okBranch {
			return nil, false
		}
		lat, _, ok := w.Path(prev, req.Dest)
		if !ok || !addLink(prevFn, -1, prev, req.Dest) {
			return nil, false
		}
		q[qos.Delay] += lat
		total = total.Max(q)
	}
	g.QoS = total
	sort.Slice(g.Links, func(i, j int) bool {
		if g.Links[i].FromFn != g.Links[j].FromFn {
			return g.Links[i].FromFn < g.Links[j].FromFn
		}
		return g.Links[i].ToFn < g.Links[j].ToFn
	})
	return g, true
}

// Admit commits a graph's resources and bandwidth through the world,
// rolling everything back on failure. A request "succeeds" for the success
// ratio metric iff the graph is qualified AND admission succeeds.
func Admit(w World, g *service.Graph) bool {
	req := g.Req
	var committed []p2p.NodeID
	type pair struct{ a, b p2p.NodeID }
	var allocated []pair
	rollback := func() {
		for _, p := range committed {
			w.Free(p, req.Res)
		}
		for _, l := range allocated {
			w.ReleaseBandwidth(l.a, l.b, req.Bandwidth)
		}
	}
	fns := sortedFns(g)
	for _, fn := range fns {
		if !w.Commit(g.Comps[fn].Comp.Peer, req.Res) {
			rollback()
			return false
		}
		committed = append(committed, g.Comps[fn].Comp.Peer)
	}
	for _, fn := range fns {
		s := g.Comps[fn]
		targets := []p2p.NodeID{}
		succs := g.Pattern.Successors(fn)
		if len(succs) == 0 {
			targets = append(targets, req.Dest)
		}
		for _, sc := range succs {
			targets = append(targets, g.Comps[sc].Comp.Peer)
		}
		for _, to := range targets {
			if !w.AllocBandwidth(s.Comp.Peer, to, req.Bandwidth) {
				rollback()
				return false
			}
			allocated = append(allocated, pair{s.Comp.Peer, to})
		}
	}
	for _, fn := range g.Pattern.Sources() {
		to := g.Comps[fn].Comp.Peer
		if !w.AllocBandwidth(req.Source, to, req.Bandwidth) {
			rollback()
			return false
		}
		allocated = append(allocated, pair{req.Source, to})
	}
	return true
}

// sortedFns returns g's assigned function indices ascending, keeping
// admission order (and its float arithmetic) identical across runs.
func sortedFns(g *service.Graph) []int {
	fns := make([]int, 0, len(g.Comps))
	for fn := range g.Comps {
		fns = append(fns, fn)
	}
	sort.Ints(fns)
	return fns
}

// Release frees everything Admit committed for g.
func Release(w World, g *service.Graph) {
	req := g.Req
	fns := sortedFns(g)
	for _, fn := range fns {
		w.Free(g.Comps[fn].Comp.Peer, req.Res)
	}
	for _, fn := range fns {
		s := g.Comps[fn]
		succs := g.Pattern.Successors(fn)
		if len(succs) == 0 {
			w.ReleaseBandwidth(s.Comp.Peer, req.Dest, req.Bandwidth)
		}
		for _, sc := range succs {
			w.ReleaseBandwidth(s.Comp.Peer, g.Comps[sc].Comp.Peer, req.Bandwidth)
		}
	}
	for _, fn := range g.Pattern.Sources() {
		w.ReleaseBandwidth(req.Source, g.Comps[fn].Comp.Peer, req.Bandwidth)
	}
}

// CentralizedOverheadPerPeriod returns the number of state-update messages
// a global-view scheme sends per refresh period. In a decentralized system
// any peer may initiate composition, so the "global view" must be
// replicated at every peer: each of the N peers pushes its QoS/resource
// state to the other N-1 peers, N·(N-1) messages per period. This recurring
// cost — independent of the request rate — is what BCP's on-demand selective
// state collection eliminates (§6.1's order-of-magnitude claim).
func CentralizedOverheadPerPeriod(peers int) int { return peers * (peers - 1) }

// CoordinatorOverheadPerPeriod returns the per-period cost of the weaker
// single-coordinator variant (every peer updates one central node). It
// breaks the decentralization requirement but is reported for context.
func CoordinatorOverheadPerPeriod(peers int) int { return peers }

// OptimalProbeCount returns the number of probes unbounded flooding needs
// for a linear request: the product of per-function replica counts
// (17³ = 4913 in the paper's prototype experiment).
func OptimalProbeCount(w World, req *service.Request) int {
	n := 1
	for i := 0; i < req.FGraph.NumFunctions(); i++ {
		z := 0
		for _, c := range w.ComponentsFor(req.FGraph.Function(i)) {
			if w.Alive(c.Peer) {
				z++
			}
		}
		if z == 0 {
			return 0
		}
		if n > maxExamined/z {
			return maxExamined
		}
		n *= z
	}
	if math.MaxInt32 < n {
		return math.MaxInt32
	}
	return n
}
