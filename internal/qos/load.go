package qos

import "time"

// LoadModel maps a peer's utilization to a processing delay, the simulated
// cost of executing a service or handling a probe on a busy peer. The shape
// is the M/M/1 sojourn-time inflation: at utilization u the base service
// time is stretched by 1/(1-u), so delay grows gently under light load and
// sharply as the peer saturates. Utilization is clamped to Cap so a fully
// loaded peer yields a large but finite delay, keeping the simulation
// deterministic and live.
type LoadModel struct {
	// Base is the processing time at zero utilization. Zero disables the
	// model entirely (Delay returns 0 for every utilization).
	Base time.Duration
	// Cap clamps utilization before inflation, bounding the worst-case
	// delay at Base/(1-Cap). Zero takes the default 0.95 (20x inflation).
	Cap float64
}

// DefaultLoadModel returns the processing-delay model used by the scale
// experiment: 2ms base service time, utilization capped at 0.95.
func DefaultLoadModel() LoadModel {
	return LoadModel{Base: 2 * time.Millisecond, Cap: 0.95}
}

// Delay returns the processing delay at utilization u: Base/(1-min(u,Cap)).
// The result is deterministic in u, so identically seeded runs that reach
// identical utilization sequences schedule identical delays.
func (m LoadModel) Delay(u float64) time.Duration {
	if m.Base <= 0 {
		return 0
	}
	cap := m.Cap
	if cap <= 0 {
		cap = 0.95
	}
	if u > cap {
		u = cap
	}
	if u < 0 {
		u = 0
	}
	return time.Duration(float64(m.Base) / (1 - u))
}
