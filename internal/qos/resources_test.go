package qos

import (
	"math/rand"
	"testing"
)

func res(cpu, mem float64) Resources {
	var r Resources
	r[CPU] = cpu
	r[Memory] = mem
	return r
}

func TestResourcesFits(t *testing.T) {
	avail := res(10, 100)
	if !res(5, 50).Fits(avail) {
		t.Error("smaller requirement should fit")
	}
	if !res(10, 100).Fits(avail) {
		t.Error("exact requirement should fit")
	}
	if res(11, 50).Fits(avail) {
		t.Error("cpu over capacity should not fit")
	}
	if res(5, 101).Fits(avail) {
		t.Error("memory over capacity should not fit")
	}
}

func TestLedgerReserveCommitFree(t *testing.T) {
	l := NewLedger(res(10, 100))
	req := res(4, 40)

	if !l.Reserve(req) {
		t.Fatal("first reservation should succeed")
	}
	if got := l.Available(); got != res(6, 60) {
		t.Fatalf("Available after reserve = %v", got)
	}
	if got := l.AvailableHard(); got != res(10, 100) {
		t.Fatalf("AvailableHard should ignore soft allocations, got %v", got)
	}

	l.Commit(req)
	if got := l.Available(); got != res(6, 60) {
		t.Fatalf("Available after commit = %v", got)
	}
	if got := l.AvailableHard(); got != res(6, 60) {
		t.Fatalf("AvailableHard after commit = %v", got)
	}
	if got := l.SoftAllocated(); got != (Resources{}) {
		t.Fatalf("soft should be empty after commit, got %v", got)
	}

	l.Free(req)
	if got := l.Available(); got != res(10, 100) {
		t.Fatalf("Available after free = %v", got)
	}
}

func TestLedgerConflictingAdmission(t *testing.T) {
	// Two concurrent probes each wanting 60% of capacity: the soft
	// reservation must reject the second one.
	l := NewLedger(res(10, 100))
	req := res(6, 60)
	if !l.Reserve(req) {
		t.Fatal("first probe should reserve")
	}
	if l.Reserve(req) {
		t.Fatal("second probe must be rejected while first holds a soft reservation")
	}
	l.Release(req)
	if !l.Reserve(req) {
		t.Fatal("after release, reservation should succeed again")
	}
}

func TestLedgerCommitDirect(t *testing.T) {
	l := NewLedger(res(10, 100))
	if !l.CommitDirect(res(10, 100)) {
		t.Fatal("full-capacity direct commit should succeed")
	}
	if l.CommitDirect(res(1, 1)) {
		t.Fatal("overcommit must fail")
	}
	l.Free(res(10, 100))
	if got := l.Available(); got != res(10, 100) {
		t.Fatalf("Available after free = %v", got)
	}
}

func TestLedgerUtilization(t *testing.T) {
	l := NewLedger(res(10, 100))
	if u := l.Utilization(); u != 0 {
		t.Fatalf("empty ledger utilization = %v", u)
	}
	l.CommitDirect(res(5, 80))
	if u := l.Utilization(); u != 0.8 {
		t.Fatalf("utilization = %v, want 0.8 (max over kinds)", u)
	}
}

func TestLedgerOverReleaseClamps(t *testing.T) {
	l := NewLedger(res(10, 100))
	l.Release(res(5, 5)) // release without reserve must not go negative
	if !l.SoftAllocated().NonNegative() {
		t.Fatal("soft allocation went negative")
	}
	l.Free(res(5, 5))
	if !l.HardAllocated().NonNegative() {
		t.Fatal("hard allocation went negative")
	}
	if got := l.Available(); got != res(10, 100) {
		t.Fatalf("Available = %v, want full capacity", got)
	}
}

// Property: under any random sequence of reserve/release/commit/free pairs,
// availability never exceeds capacity and never admits more than capacity.
func TestLedgerInvariantProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		cap := res(float64(1+r.Intn(20)), float64(10+r.Intn(200)))
		l := NewLedger(cap)
		type alloc struct {
			r    Resources
			hard bool
		}
		var live []alloc
		for step := 0; step < 300; step++ {
			switch r.Intn(4) {
			case 0: // reserve
				req := res(r.Float64()*cap[CPU], r.Float64()*cap[Memory])
				if l.Reserve(req) {
					live = append(live, alloc{req, false})
				}
			case 1: // commit a random soft allocation
				for i, a := range live {
					if !a.hard {
						l.Commit(a.r)
						live[i].hard = true
						break
					}
				}
			case 2: // release a random soft allocation
				for i, a := range live {
					if !a.hard {
						l.Release(a.r)
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			case 3: // free a random hard allocation
				for i, a := range live {
					if a.hard {
						l.Free(a.r)
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			if !l.Available().NonNegative() {
				t.Fatalf("trial %d step %d: available went negative: %v", trial, step, l.Available())
			}
			total := l.HardAllocated().Add(l.SoftAllocated())
			if !total.Fits(cap.Add(res(1e-9, 1e-9))) {
				t.Fatalf("trial %d step %d: allocated %v exceeds capacity %v", trial, step, total, cap)
			}
		}
	}
}

func TestResourceKindString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" {
		t.Fatal("unexpected resource names")
	}
	if ResourceKind(9).String() != "resource(9)" {
		t.Fatal("unexpected fallback")
	}
}

func TestResourcesString(t *testing.T) {
	if s := res(1, 2).String(); s != "cpu=1.00 memory=2.00" {
		t.Fatalf("String = %q", s)
	}
}
