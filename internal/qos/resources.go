package qos

import (
	"fmt"
	"math"
	"strings"
)

// ResourceKind identifies one end-system resource dimension.
type ResourceKind int

// End-system resource types tracked per peer. Bandwidth is a link resource
// and is represented separately (see Bandwidth), matching the paper's model
// where the cost function weighs n end-system resources plus bandwidth as
// the (n+1)'th term.
const (
	CPU    ResourceKind = iota // abstract CPU units
	Memory                     // megabytes

	NumResources // number of end-system resource kinds; keep last
)

// String returns the canonical lower-case resource name.
func (k ResourceKind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("resource(%d)", int(k))
	}
}

// Resources is a vector R of end-system resource quantities: either a
// component's requirement or a peer's availability.
type Resources [NumResources]float64

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	var s Resources
	for i := range r {
		s[i] = r[i] + o[i]
	}
	return s
}

// Sub returns the component-wise difference r - o.
func (r Resources) Sub(o Resources) Resources {
	var s Resources
	for i := range r {
		s[i] = r[i] - o[i]
	}
	return s
}

// Fits reports whether a requirement r can be admitted against an
// availability avail, i.e. r[i] <= avail[i] for every resource kind.
func (r Resources) Fits(avail Resources) bool {
	for i := range r {
		if r[i] > avail[i] {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is >= 0. A peer's availability
// must remain non-negative through any sequence of allocations and releases.
func (r Resources) NonNegative() bool {
	for _, x := range r {
		if x < 0 {
			return false
		}
	}
	return true
}

// String renders the vector with resource names.
func (r Resources) String() string {
	var b strings.Builder
	for i, x := range r {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.2f", ResourceKind(i), x)
	}
	return b.String()
}

// Bandwidth is an overlay-link resource in kilobits per second.
type Bandwidth float64

// Ledger tracks a peer's resource availability under soft (probing-time) and
// hard (session-time) allocations. Soft allocations model the paper's
// temporary reservation made while a probe is outstanding (§4.2 step 2.1):
// they are released either by expiry or by being committed into hard
// allocations when the session-setup ACK arrives.
type Ledger struct {
	capacity Resources
	hard     Resources
	soft     Resources
}

// NewLedger returns a ledger for a peer with the given total capacity.
func NewLedger(capacity Resources) *Ledger {
	return &Ledger{capacity: capacity}
}

// Capacity returns the peer's total resource capacity.
func (l *Ledger) Capacity() Resources { return l.capacity }

// Available returns capacity minus all hard and soft allocations.
func (l *Ledger) Available() Resources {
	return l.capacity.Sub(l.hard).Sub(l.soft)
}

// AvailableHard returns capacity minus hard allocations only. This is the
// figure reported in probe state: soft allocations are pessimistically
// counted by Reserve below but are not long-lived.
func (l *Ledger) AvailableHard() Resources {
	return l.capacity.Sub(l.hard)
}

// Reserve attempts a soft allocation of r. It fails (returning false) if r
// does not fit into the currently available resources, which is exactly the
// conflicting-admission case soft reservation exists to prevent.
func (l *Ledger) Reserve(r Resources) bool {
	if !r.Fits(l.Available()) {
		return false
	}
	l.soft = l.soft.Add(r)
	return true
}

// Release cancels a soft allocation previously made with Reserve.
func (l *Ledger) Release(r Resources) {
	l.soft = l.soft.Sub(r)
	l.clampNonNegative(&l.soft)
}

// Commit converts a soft allocation into a hard one when the session is
// confirmed.
func (l *Ledger) Commit(r Resources) {
	l.soft = l.soft.Sub(r)
	l.clampNonNegative(&l.soft)
	l.hard = l.hard.Add(r)
}

// CommitDirect makes a hard allocation without a prior soft reservation
// (used by baselines that skip probing). It reports whether the allocation
// fit.
func (l *Ledger) CommitDirect(r Resources) bool {
	if !r.Fits(l.Available()) {
		return false
	}
	l.hard = l.hard.Add(r)
	return true
}

// Free releases a hard allocation when a session tears down.
func (l *Ledger) Free(r Resources) {
	l.hard = l.hard.Sub(r)
	l.clampNonNegative(&l.hard)
}

// HardAllocated returns the sum of all hard allocations.
func (l *Ledger) HardAllocated() Resources { return l.hard }

// SoftAllocated returns the sum of all outstanding soft allocations.
func (l *Ledger) SoftAllocated() Resources { return l.soft }

// Utilization returns the maximum over resource kinds of
// hard-allocated/capacity, a scalar load figure in [0,1] used for load
// statistics. Kinds with zero capacity are skipped.
func (l *Ledger) Utilization() float64 {
	var u float64
	for i := range l.capacity {
		if l.capacity[i] > 0 {
			u = math.Max(u, l.hard[i]/l.capacity[i])
		}
	}
	return u
}

// CommittedUtilization is Utilization with outstanding soft reservations
// counted alongside hard allocations. Overload shedding keys off this figure:
// a probe that soft-reserved but has not yet been confirmed is load the peer
// has already promised, and ignoring it would let concurrent compositions
// race a nearly-full peer past the shedding threshold.
func (l *Ledger) CommittedUtilization() float64 {
	var u float64
	for i := range l.capacity {
		if l.capacity[i] > 0 {
			u = math.Max(u, (l.hard[i]+l.soft[i])/l.capacity[i])
		}
	}
	return u
}

func (l *Ledger) clampNonNegative(r *Resources) {
	for i := range r {
		if r[i] < 0 {
			r[i] = 0
		}
	}
}
