package qos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vec(d, l, j float64) Vector {
	var v Vector
	v[Delay] = d
	v[Loss] = l
	v[Jitter] = j
	return v
}

func TestVectorAdd(t *testing.T) {
	a := vec(10, 0.1, 2)
	b := vec(5, 0.2, 1)
	got := a.Add(b)
	want := vec(15, 0.3, 3)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Add metric %v: got %v want %v", Metric(i), got[i], want[i])
		}
	}
}

func TestVectorSub(t *testing.T) {
	a := vec(10, 0.3, 2)
	b := vec(4, 0.1, 2)
	got := a.Sub(b)
	want := vec(6, 0.2, 0)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Sub metric %v: got %v want %v", Metric(i), got[i], want[i])
		}
	}
}

func TestVectorMax(t *testing.T) {
	a := vec(10, 0.1, 5)
	b := vec(5, 0.2, 5)
	got := a.Max(b)
	if got[Delay] != 10 || got[Loss] != 0.2 || got[Jitter] != 5 {
		t.Fatalf("Max: got %v", got)
	}
}

func TestSatisfies(t *testing.T) {
	req := vec(100, 1, 10)
	cases := []struct {
		v    Vector
		want bool
	}{
		{vec(50, 0.5, 5), true},
		{vec(100, 1, 10), true}, // boundary is inclusive
		{vec(101, 0.5, 5), false},
		{vec(50, 1.5, 5), false},
		{vec(50, 0.5, 15), false},
		{Vector{}, true}, // zero vector satisfies any non-negative requirement
	}
	for i, c := range cases {
		if got := c.v.Satisfies(req); got != c.want {
			t.Errorf("case %d: Satisfies(%v, %v) = %v, want %v", i, c.v, req, got, c.want)
		}
	}
}

func TestUnbounded(t *testing.T) {
	huge := vec(1e18, 1e18, 1e18)
	if !huge.Satisfies(Unbounded()) {
		t.Fatal("huge vector should satisfy Unbounded requirement")
	}
}

func TestValid(t *testing.T) {
	if !vec(1, 2, 3).Valid() {
		t.Error("finite non-negative vector should be valid")
	}
	if vec(-1, 2, 3).Valid() {
		t.Error("negative component should be invalid")
	}
	if vec(math.NaN(), 2, 3).Valid() {
		t.Error("NaN component should be invalid")
	}
	if vec(math.Inf(1), 2, 3).Valid() {
		t.Error("infinite component should be invalid")
	}
}

func TestRatio(t *testing.T) {
	v := vec(50, 0.5, 5)
	req := vec(100, 1, 10)
	got := v.Ratio(req)
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Ratio = %v, want 1.5", got)
	}
	// Zero and infinite requirement components are skipped.
	req2 := vec(100, 0, math.Inf(1))
	if got := v.Ratio(req2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Ratio with degenerate requirement = %v, want 0.5", got)
	}
}

func TestLossTransformRoundTrip(t *testing.T) {
	for _, p := range []float64{0, 0.001, 0.01, 0.1, 0.5, 0.9, 0.999} {
		a := LossToAdditive(p)
		back := AdditiveToLoss(a)
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("round trip p=%v: additive=%v back=%v", p, a, back)
		}
	}
	if !math.IsInf(LossToAdditive(1), 1) {
		t.Error("LossToAdditive(1) should be +Inf")
	}
	if LossToAdditive(-0.5) != 0 {
		t.Error("negative loss should clamp to 0")
	}
}

// Property: the additive loss form composes correctly, i.e. for independent
// stages the additive forms sum to the additive form of the composed loss.
func TestLossAdditivityProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65536 * 0.99
		p2 := float64(b) / 65536 * 0.99
		composed := 1 - (1-p1)*(1-p2)
		lhs := LossToAdditive(p1) + LossToAdditive(p2)
		rhs := LossToAdditive(composed)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and associative, with the zero vector as
// identity.
func TestVectorMonoidProperties(t *testing.T) {
	gen := func(r *rand.Rand) Vector {
		var v Vector
		for i := range v {
			v[i] = r.Float64() * 1000
		}
		return v
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b, c := gen(r), gen(r), gen(r)
		ab := a.Add(b)
		ba := b.Add(a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-9 {
				t.Fatalf("Add not commutative: %v vs %v", ab, ba)
			}
		}
		l := a.Add(b).Add(c)
		rr := a.Add(b.Add(c))
		for i := range l {
			if math.Abs(l[i]-rr[i]) > 1e-6 {
				t.Fatalf("Add not associative: %v vs %v", l, rr)
			}
		}
		if az := a.Add(Vector{}); az != a {
			t.Fatalf("zero not identity: %v vs %v", az, a)
		}
	}
}

// Property: Satisfies is monotone — if v satisfies req then any vector
// dominated by v also satisfies req.
func TestSatisfiesMonotoneProperty(t *testing.T) {
	f := func(d, l, j, scale uint8) bool {
		v := vec(float64(d), float64(l), float64(j))
		req := vec(200, 200, 200)
		smaller := v
		for i := range smaller {
			smaller[i] *= float64(scale) / 255
		}
		if v.Satisfies(req) && !smaller.Satisfies(req) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricString(t *testing.T) {
	if Delay.String() != "delay" || Loss.String() != "loss" || Jitter.String() != "jitter" {
		t.Fatal("unexpected metric names")
	}
	if Metric(99).String() != "metric(99)" {
		t.Fatal("unexpected fallback name")
	}
}

func TestVectorString(t *testing.T) {
	s := vec(1, 2, 3).String()
	if s != "delay=1.000 loss=2.000 jitter=3.000" {
		t.Fatalf("String = %q", s)
	}
}
