// Package qos implements the quality-of-service and resource algebra used
// throughout SpiderNet.
//
// Following the paper's system model (§2.1), all QoS metrics are treated as
// additive: a multiplicative metric such as data loss rate is transformed
// into an additive one with a logarithmic function. Bandwidth is a resource
// metric, not a QoS metric, and is handled by the resource types in this
// package.
package qos

import (
	"fmt"
	"math"
	"strings"
)

// Metric identifies one additive QoS dimension.
type Metric int

// The QoS metrics carried by every probe and accumulated along a service
// graph. Loss rate is stored in its additive (log-transformed) form; use
// LossToAdditive and AdditiveToLoss to convert.
const (
	Delay  Metric = iota // end-to-end delay, milliseconds
	Loss                 // additive-transformed data loss rate
	Jitter               // delay variation, milliseconds

	NumMetrics // number of QoS metrics; keep last
)

// String returns the canonical lower-case metric name.
func (m Metric) String() string {
	switch m {
	case Delay:
		return "delay"
	case Loss:
		return "loss"
	case Jitter:
		return "jitter"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Vector is an additive QoS vector Q = [q_1 ... q_m]. The zero value is the
// identity element of accumulation (a perfect, cost-free hop).
type Vector [NumMetrics]float64

// Add returns the component-wise sum v + o. Because every metric is additive,
// this is the accumulation step performed at each probed hop.
func (v Vector) Add(o Vector) Vector {
	var r Vector
	for i := range v {
		r[i] = v[i] + o[i]
	}
	return r
}

// Sub returns the component-wise difference v - o.
func (v Vector) Sub(o Vector) Vector {
	var r Vector
	for i := range v {
		r[i] = v[i] - o[i]
	}
	return r
}

// Max returns the component-wise maximum of v and o. It is used when merging
// parallel branches of a DAG service graph: the QoS of the merged graph is
// bounded by the worst branch on each metric.
func (v Vector) Max(o Vector) Vector {
	var r Vector
	for i := range v {
		r[i] = math.Max(v[i], o[i])
	}
	return r
}

// Satisfies reports whether v meets the requirement req on every metric,
// i.e. v[i] <= req[i] for all i. All metrics are accumulated costs, so
// smaller is better.
func (v Vector) Satisfies(req Vector) bool {
	for i := range v {
		if v[i] > req[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every component is finite and non-negative.
func (v Vector) Valid() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return false
		}
	}
	return true
}

// Ratio returns sum_i v[i]/req[i], the normalized QoS utilisation used by the
// backup-count formula (Eq. 2 of the paper). Requirement components that are
// zero or non-finite are skipped to keep the ratio well defined.
func (v Vector) Ratio(req Vector) float64 {
	var s float64
	for i := range v {
		if req[i] > 0 && !math.IsInf(req[i], 1) {
			s += v[i] / req[i]
		}
	}
	return s
}

// String renders the vector with metric names, e.g.
// "delay=120.0 loss=0.010 jitter=4.0".
func (v Vector) String() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3f", Metric(i), x)
	}
	return b.String()
}

// Unbounded returns a requirement vector that any finite QoS vector
// satisfies. It is used by baselines that ignore QoS requirements.
func Unbounded() Vector {
	var v Vector
	for i := range v {
		v[i] = math.Inf(1)
	}
	return v
}

// LossToAdditive converts a loss probability p in [0,1) into its additive
// form -ln(1-p), so that loss rates compose by addition: if two independent
// stages lose fractions p1 and p2, the composed loss 1-(1-p1)(1-p2) has
// additive form equal to the sum of the stages' additive forms.
func LossToAdditive(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p)
}

// AdditiveToLoss inverts LossToAdditive.
func AdditiveToLoss(a float64) float64 {
	if a < 0 {
		a = 0
	}
	return -math.Expm1(-a)
}
