package recovery_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/p2p"
	"repro/internal/recovery"
	"repro/internal/simnet"
)

// blipSource cuts the session source off from every other peer for a window
// long enough to silence one or two maintenance-probe rounds but shorter
// than three.
func blipSource(c *cluster.Cluster, nPeers int) {
	others := make([]p2p.NodeID, 0, nPeers-1)
	for i := 1; i < nPeers; i++ {
		others = append(others, p2p.NodeID(i))
	}
	c.ApplyFaults(simnet.FaultPlan{
		Seed: 1,
		Partitions: []simnet.Partition{{
			Name: "blip", A: []p2p.NodeID{0}, B: others,
			From: 1 * time.Second, Until: 4 * time.Second,
		}},
	})
}

// TestMissedPongsToleratesTransientSilence: with MissedPongs=3, a network
// blip that silences at most two consecutive probe rounds must not be
// declared a failure; with the eager default of 1 the same blip must be.
func TestMissedPongsToleratesTransientSilence(t *testing.T) {
	run := func(missed int) (detected int, alive bool) {
		cfg := recovery.DefaultConfig()
		cfg.MissedPongs = missed
		c := newCluster(33, cfg)
		req := makeReq(c, 4, 3, 60)
		establish(t, c, req)
		blipSource(c, len(c.Peers))
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
		mgr := c.Peers[int(req.Source)].Recovery
		return mgr.Stats().FailuresDetected, mgr.Session(req.ID) != nil
	}

	detected, alive := run(3)
	if detected != 0 {
		t.Errorf("MissedPongs=3: %d failures detected across a 2-round blip, want 0", detected)
	}
	if !alive {
		t.Error("MissedPongs=3: session did not survive the blip")
	}

	detected, _ = run(1)
	if detected == 0 {
		t.Error("MissedPongs=1: the same blip went undetected (hysteresis leaked into the default)")
	}
}

// TestDuplicatedControlTrafficHarmless: duplicating every message on the
// wire (pongs, ping acks, setup replies) must neither break a healthy
// session nor trip spurious failure detection.
func TestDuplicatedControlTrafficHarmless(t *testing.T) {
	c := newCluster(34, recovery.DefaultConfig())
	req := makeReq(c, 5, 3, 60)
	establish(t, c, req)
	c.ApplyFaults(simnet.FaultPlan{Seed: 1, Default: simnet.LinkFaults{Dup: 1}})
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	mgr := c.Peers[int(req.Source)].Recovery
	if st := mgr.Stats(); st.FailuresDetected != 0 {
		t.Errorf("duplicated traffic tripped %d failure detections", st.FailuresDetected)
	}
	if mgr.Session(req.ID) == nil {
		t.Error("session died under duplication-only faults")
	}
}
