package recovery

import (
	"encoding/gob"
	"sync"
)

var gobOnce sync.Once

// RegisterGob registers the recovery protocol's message payload types with
// encoding/gob for real network transports. Safe to call multiple times.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.RegisterName("recovery.probeMsg", probeMsg{})
		gob.RegisterName("recovery.setupMsg", setupMsg{})
		gob.RegisterName("recovery.setupReply", setupReply{})
	})
}
