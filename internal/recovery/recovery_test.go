package recovery_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/service"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

func newCluster(seed int64, rc recovery.Config) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Seed: seed, Peers: 80, Catalog: catalog(5), Recovery: &rc,
	})
}

func makeReq(c *cluster.Cluster, id uint64, nfuncs, budget int) *service.Request {
	fns := c.FunctionsByReplicas()
	fg := fgraph.Linear(fns[:nfuncs]...)
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 5000
	return &service.Request{
		ID: id, FGraph: fg, QoSReq: q, Res: res, Bandwidth: 50,
		FailReq: 0.02,
		Source:  p2p.NodeID(0), Dest: p2p.NodeID(1), Budget: budget,
	}
}

// establish composes and registers a session at the source's manager.
func establish(t *testing.T, c *cluster.Cluster, req *service.Request) *recovery.Session {
	t.Helper()
	var sess *recovery.Session
	src := c.Peers[int(req.Source)]
	src.Engine.Compose(req, func(r bcp.Result) {
		if !r.Ok {
			t.Fatal("composition failed")
		}
		sess = src.Recovery.Establish(req, r)
	})
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	if sess == nil {
		t.Fatal("session not established")
	}
	return sess
}

func TestEstablishMaintainsBackups(t *testing.T) {
	c := newCluster(30, recovery.DefaultConfig())
	sess := establish(t, c, makeReq(c, 1, 3, 60))
	if len(sess.Backups) == 0 {
		t.Fatal("no backups maintained despite generous budget")
	}
	if len(sess.Backups) > recovery.DefaultConfig().MaxBackups {
		t.Fatalf("too many backups: %d", len(sess.Backups))
	}
	for _, b := range sess.Backups {
		if b.Key() == sess.Active.Key() {
			t.Fatal("active graph selected as its own backup")
		}
	}
}

func TestSwitchoverOnPeerFailure(t *testing.T) {
	c := newCluster(31, recovery.DefaultConfig())
	req := makeReq(c, 2, 3, 60)
	sess := establish(t, c, req)
	if len(sess.Backups) == 0 {
		t.Skip("no backups found; cannot exercise switchover")
	}

	// Fail a peer hosting an active component (not source or dest).
	var victim p2p.NodeID = p2p.NoNode
	for _, s := range sess.Active.Comps {
		if s.Comp.Peer != req.Source && s.Comp.Peer != req.Dest {
			victim = s.Comp.Peer
			break
		}
	}
	if victim == p2p.NoNode {
		t.Skip("no failable component peer")
	}
	c.Net.Fail(victim)
	c.Sim.Run(c.Sim.Now() + 60*time.Second)

	mgr := c.Peers[int(req.Source)].Recovery
	st := mgr.Stats()
	if st.FailuresDetected == 0 {
		t.Fatal("failure never detected")
	}
	if st.Switchovers == 0 && st.Reactives == 0 {
		t.Fatalf("failure not recovered: %+v", st)
	}
	s2 := mgr.Session(req.ID)
	if s2 == nil {
		t.Fatal("session died despite recovery options")
	}
	if s2.Active.ContainsPeer(victim) {
		t.Fatal("recovered graph still uses the failed peer")
	}
	// Recovery events carry positive recovery times.
	for _, ev := range mgr.Events() {
		if ev.Kind != recovery.EventDead && ev.RecoveryTime <= 0 {
			t.Fatalf("event %v has no recovery time", ev.Kind)
		}
	}
}

func TestNoRecoveryBaselineDies(t *testing.T) {
	cfg := recovery.DefaultConfig()
	cfg.Proactive = false
	cfg.Reactive = false
	c := newCluster(32, cfg)
	req := makeReq(c, 3, 3, 40)
	sess := establish(t, c, req)

	var victim p2p.NodeID = p2p.NoNode
	for _, s := range sess.Active.Comps {
		if s.Comp.Peer != req.Source && s.Comp.Peer != req.Dest {
			victim = s.Comp.Peer
			break
		}
	}
	c.Net.Fail(victim)
	c.Sim.Run(c.Sim.Now() + 60*time.Second)

	mgr := c.Peers[int(req.Source)].Recovery
	if mgr.Session(req.ID) != nil {
		t.Fatal("session survived with recovery disabled")
	}
	st := mgr.Stats()
	if st.Dead != 1 {
		t.Fatalf("dead=%d, want 1", st.Dead)
	}
}

func TestReactiveRecoveryWhenNoBackups(t *testing.T) {
	cfg := recovery.DefaultConfig()
	cfg.MaxBackups = 0 // proactive on, but no backups may be kept
	c := newCluster(33, cfg)
	req := makeReq(c, 4, 2, 40)
	sess := establish(t, c, req)

	var victim p2p.NodeID = p2p.NoNode
	for _, s := range sess.Active.Comps {
		if s.Comp.Peer != req.Source && s.Comp.Peer != req.Dest {
			victim = s.Comp.Peer
			break
		}
	}
	if victim == p2p.NoNode {
		t.Skip("no failable component peer")
	}
	c.Net.Fail(victim)
	c.Sim.Run(c.Sim.Now() + 120*time.Second)

	mgr := c.Peers[int(req.Source)].Recovery
	st := mgr.Stats()
	if st.Reactives == 0 {
		t.Fatalf("expected reactive recovery: %+v", st)
	}
	if s2 := mgr.Session(req.ID); s2 == nil {
		t.Fatal("session not recovered reactively")
	} else if s2.Active.ContainsPeer(victim) {
		t.Fatal("reactive graph reuses failed peer")
	}
}

func TestBackupFailureTriggersReselection(t *testing.T) {
	c := newCluster(34, recovery.DefaultConfig())
	req := makeReq(c, 5, 3, 60)
	sess := establish(t, c, req)
	if len(sess.Backups) == 0 {
		t.Skip("no backups to fail")
	}
	// Fail a peer used by a backup but NOT by the active graph.
	var victim p2p.NodeID = p2p.NoNode
	var victimKey string
	for _, b := range sess.Backups {
		for _, s := range b.Comps {
			p := s.Comp.Peer
			if p != req.Source && p != req.Dest && !sess.Active.ContainsPeer(p) {
				victim, victimKey = p, b.Key()
				break
			}
		}
		if victim != p2p.NoNode {
			break
		}
	}
	if victim == p2p.NoNode {
		t.Skip("all backups fully overlap the active graph")
	}
	c.Net.Fail(victim)
	c.Sim.Run(c.Sim.Now() + 60*time.Second)

	mgr := c.Peers[int(req.Source)].Recovery
	s2 := mgr.Session(req.ID)
	if s2 == nil {
		t.Fatal("session died from a backup failure")
	}
	for _, b := range s2.Backups {
		if b.Key() == victimKey {
			t.Fatal("failed backup still maintained")
		}
	}
	if st := mgr.Stats(); st.Switchovers != 0 {
		t.Fatalf("backup failure caused a switchover: %+v", st)
	}
}

func TestCloseTearsDown(t *testing.T) {
	c := newCluster(35, recovery.DefaultConfig())
	req := makeReq(c, 6, 3, 40)
	sess := establish(t, c, req)
	mgr := c.Peers[int(req.Source)].Recovery
	mgr.Close(sess.ID)
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	for i, p := range c.Peers {
		if got := p.Ledger.HardAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d still holds %v after Close", i, got)
		}
	}
	if mgr.Sessions() != 0 {
		t.Fatal("session still tracked after Close")
	}
}

// --- BackupCount / SelectBackups unit tests on synthetic graphs ---

func synthGraph(reqID uint64, comps ...service.Component) *service.Graph {
	names := make([]string, len(comps))
	for i, c := range comps {
		names[i] = c.Function
	}
	fg := fgraph.Linear(names...)
	g := &service.Graph{Pattern: fg, Comps: map[int]service.Snapshot{}}
	for i, c := range comps {
		var avail qos.Resources
		avail[qos.CPU] = 10
		avail[qos.Memory] = 100
		g.Comps[i] = service.Snapshot{Comp: c, Avail: avail}
	}
	return g
}

func sc(id string, fn string, peer int, fail float64) service.Component {
	return service.Component{ID: id, Function: fn, Peer: p2p.NodeID(peer), FailProb: fail}
}

func TestSelectBackupsCoversBottleneckFirst(t *testing.T) {
	// Active uses A1 (high fail) and B1 (low fail). Pool offers graphs that
	// avoid A1 and graphs that avoid B1. With γ=1, the selected backup must
	// avoid A1, the bottleneck.
	active := synthGraph(1, sc("A1", "a", 1, 0.5), sc("B1", "b", 2, 0.01))
	avoidA := synthGraph(1, sc("A2", "a", 3, 0.1), sc("B1", "b", 2, 0.01))
	avoidB := synthGraph(1, sc("A1", "a", 1, 0.5), sc("B2", "b", 4, 0.1))
	pool := []*service.Graph{avoidB, avoidA}

	got := recovery.SelectBackups(active, pool, 1, false)
	if len(got) != 1 {
		t.Fatalf("selected %d backups, want 1", len(got))
	}
	if got[0].Contains("A1") {
		t.Fatal("backup does not cover the bottleneck component")
	}
}

func TestSelectBackupsMaximizesOverlap(t *testing.T) {
	active := synthGraph(1, sc("A1", "a", 1, 0.5), sc("B1", "b", 2, 0.1))
	// Both avoid A1, but one shares B1 with the active graph.
	shared := synthGraph(1, sc("A2", "a", 3, 0.1), sc("B1", "b", 2, 0.1))
	disjoint := synthGraph(1, sc("A3", "a", 4, 0.1), sc("B2", "b", 5, 0.1))
	got := recovery.SelectBackups(active, []*service.Graph{disjoint, shared}, 1, false)
	if len(got) != 1 || got[0].Key() != shared.Key() {
		t.Fatal("overlap-maximizing rule violated")
	}
	// Ablation: the disjoint policy picks the non-overlapping one.
	got = recovery.SelectBackups(active, []*service.Graph{disjoint, shared}, 1, true)
	if len(got) != 1 || got[0].Key() != disjoint.Key() {
		t.Fatal("disjoint policy violated")
	}
}

func TestSelectBackupsNoDuplicatesRespectsGamma(t *testing.T) {
	active := synthGraph(1, sc("A1", "a", 1, 0.3), sc("B1", "b", 2, 0.2))
	var pool []*service.Graph
	for i := 0; i < 6; i++ {
		pool = append(pool, synthGraph(1,
			sc(fmt.Sprintf("A%d", i+2), "a", 10+i, 0.1),
			sc(fmt.Sprintf("B%d", i+2), "b", 20+i, 0.1)))
	}
	for gamma := 0; gamma <= 7; gamma++ {
		got := recovery.SelectBackups(active, pool, gamma, false)
		if len(got) > gamma {
			t.Fatalf("γ=%d but %d selected", gamma, len(got))
		}
		seen := map[string]bool{}
		for _, g := range got {
			if seen[g.Key()] {
				t.Fatal("duplicate backup")
			}
			seen[g.Key()] = true
		}
	}
}

func TestBackupCountFormula(t *testing.T) {
	cfg := recovery.DefaultConfig()
	cfg.U = 1.0
	cfg.MaxBackups = 10
	c := newCluster(36, cfg)
	mgr := c.Peers[0].Recovery

	mk := func(qratio, fprob, freq float64, poolSize int) int {
		var qreq, q qos.Vector
		qreq[qos.Delay] = 100
		q[qos.Delay] = qratio * 100
		comp := sc("X1", "x", 5, fprob)
		g := synthGraph(9, comp)
		g.QoS = q
		req := &service.Request{
			ID: 9, FGraph: g.Pattern, QoSReq: qreq, FailReq: freq, Budget: 1,
		}
		var pool []*service.Graph
		for i := 0; i < poolSize; i++ {
			pool = append(pool, synthGraph(9, sc(fmt.Sprintf("X%d", i+2), "x", 30+i, 0.1)))
		}
		res := bcp.Result{Ok: true, Best: g, Backups: pool}
		sess := mgr.Establish(req, res)
		n := mgr.BackupCount(sess)
		mgr.Close(sess.ID)
		return n
	}

	// qratio 0.5, F=0.05, Freq=0.05 → U*(0.5+1)=1.5 → γ=1 (pool allows).
	if got := mk(0.5, 0.05, 0.05, 5); got != 1 {
		t.Fatalf("γ=%d, want 1", got)
	}
	// Tight QoS (ratio ~1) and high relative failure → more backups.
	if got := mk(0.9, 0.2, 0.05, 8); got != 4 {
		t.Fatalf("γ=%d, want 4 (0.9+4=4.9 → 4)", got)
	}
	// Capped by C-1 when the pool is small.
	if got := mk(0.9, 0.2, 0.05, 2); got != 2 {
		t.Fatalf("γ=%d, want 2 (pool cap)", got)
	}
	// Never negative / zero when requirements are loose.
	if got := mk(0.1, 0.0, 0.5, 5); got < 0 {
		t.Fatalf("γ=%d negative", got)
	}
}

func TestAvgBackupsReported(t *testing.T) {
	c := newCluster(37, recovery.DefaultConfig())
	req := makeReq(c, 7, 3, 60)
	establish(t, c, req)
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	st := c.Peers[int(req.Source)].Recovery.Stats()
	if st.BackupSamples == 0 {
		t.Fatal("no backup samples recorded")
	}
	if st.AvgBackups() < 0 || st.AvgBackups() > float64(recovery.DefaultConfig().MaxBackups) {
		t.Fatalf("AvgBackups=%v out of range", st.AvgBackups())
	}
}
