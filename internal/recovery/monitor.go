package recovery

import (
	"sort"
	"time"

	"repro/internal/bcp"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/service"
)

const (
	probeMsgSize = 48 // "low-rate measurement probes" (§5): small on the wire
	setupMsgSize = 96
)

// reattemptShift namespaces the request IDs of reactive re-compositions so
// they never collide with first-attempt IDs (workload generators keep IDs
// below 2^40).
const reattemptShift = 40

// scheduleProbes arms the periodic maintenance timer at the sender.
func (m *Manager) scheduleProbes() {
	m.probeTimer = m.host.After(m.cfg.ProbeInterval, func() {
		m.probeTimer = nil
		m.tick()
		if len(m.sessions) > 0 {
			m.scheduleProbes()
		}
	})
}

// tick sends one low-rate path probe along each session's active graph and
// every maintained backup, and schedules the pong deadline checks.
func (m *Manager) tick() {
	// Deterministic probing order: map iteration would reorder sends (and
	// therefore the whole downstream event schedule) between runs.
	ids := make([]uint64, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := m.sessions[id]
		if !s.alive || s.awaitingFix {
			continue
		}
		m.probeGraph(s, s.Active)
		if m.cfg.Proactive {
			for _, b := range s.Backups {
				m.probeGraph(s, b)
			}
		}
		m.stats.BackupSum += len(s.Backups)
		m.stats.BackupSamples++
	}
}

func (m *Manager) probeGraph(s *Session, g *service.Graph) {
	order := g.Pattern.TopoOrder()
	key := g.Key()
	sentAt := m.host.Now()
	first := g.Comps[order[0]].Comp.Peer
	if m.Trace != nil {
		m.Trace.Emit(obs.RecProbe(sentAt, m.host.ID(), s.ID, first))
	}
	m.host.Send(p2p.Message{
		Type: MsgProbe, To: first, Size: probeMsgSize,
		Payload: probeMsg{
			SessID: s.ID, GraphKey: key, Graph: g, Order: order,
			Origin: m.host.ID(),
		},
	})
	sess := s.ID
	m.host.After(m.cfg.PongTimeout, func() {
		m.checkPong(sess, key, sentAt)
	})
}

// onProbe runs on a component host: confirm the component is still here,
// append a fresh availability snapshot, and forward (or bounce the pong).
func (m *Manager) onProbe(_ p2p.Node, msg p2p.Message) {
	pm := msg.Payload.(probeMsg)
	fn := pm.Order[pm.Pos]
	snap := pm.Graph.Comps[fn]
	comp, hosted := m.eng.LocalComponent(snap.Comp.ID)
	if !hosted {
		return // component gone: probe dies, source times out
	}
	pm.Avail = append(pm.Avail, service.Snapshot{Comp: comp, Avail: m.eng.Ledger().AvailableHard()})
	pm.Pos++
	if pm.Pos < len(pm.Order) {
		next := pm.Graph.Comps[pm.Order[pm.Pos]].Comp.Peer
		m.host.Send(p2p.Message{Type: MsgProbe, To: next, Size: probeMsgSize, Payload: pm})
		return
	}
	m.host.Send(p2p.Message{Type: MsgPong, To: pm.Origin, Size: probeMsgSize, Payload: pm})
}

// onPong refreshes the graph's liveness timestamp and resource snapshots at
// the sender.
func (m *Manager) onPong(_ p2p.Node, msg p2p.Message) {
	pm := msg.Payload.(probeMsg)
	s, ok := m.sessions[pm.SessID]
	if !ok || !s.alive {
		return
	}
	s.lastPong[pm.GraphKey] = m.host.Now()
	delete(s.missed, pm.GraphKey)
	// Fold the fresh availability snapshots back into the graph so backup
	// qualification stays current.
	for i, fn := range pm.Order {
		if i < len(pm.Avail) {
			pm.Graph.Comps[fn] = pm.Avail[i]
		}
	}
}

// checkPong fires PongTimeout after a probe was sent: a missing pong means
// the probed graph is broken.
func (m *Manager) checkPong(sessID uint64, graphKey string, sentAt time.Duration) {
	s, ok := m.sessions[sessID]
	if !ok || !s.alive || s.awaitingFix {
		return
	}
	if last, ok := s.lastPong[graphKey]; ok && last >= sentAt {
		return // pong arrived in time
	}
	// One silent probe is not yet a failure when MissedPongs > 1: on lossy
	// links the probe (or its pong) may simply have been dropped. Count
	// consecutive misses and only declare the graph broken at the threshold;
	// any pong in between resets the count (onPong).
	need := m.cfg.MissedPongs
	if need < 1 {
		need = 1
	}
	s.missed[graphKey]++
	if s.missed[graphKey] < need {
		return
	}
	delete(s.missed, graphKey)
	if s.Active.Key() == graphKey {
		m.activeFailed(s)
		return
	}
	// A backup broke: drop it from the maintained set and the pool, then
	// re-select.
	dropGraph(&s.Backups, graphKey)
	dropGraph(&s.Pool, graphKey)
	if m.cfg.Proactive {
		m.refreshBackups(s)
	}
}

func dropGraph(gs *[]*service.Graph, key string) {
	out := (*gs)[:0]
	for _, g := range *gs {
		if g.Key() != key {
			out = append(out, g)
		}
	}
	*gs = out
}

// activeFailed starts the recovery sequence for a broken session. The path
// probe's silence says the graph is broken but not where, so the sender
// first pings every component peer of the broken graph directly; the peers
// that fail to answer within PingTimeout are the localized failure, and the
// switchover then skips backups that depend on them (the paper leaves the
// failure-detection design open — §5 footnote 4).
func (m *Manager) activeFailed(s *Session) {
	m.stats.FailuresDetected++
	s.awaitingFix = true
	s.brokenAt = m.host.Now()
	if m.Trace != nil {
		m.Trace.Emit(obs.RecFailure(s.brokenAt, m.host.ID(), s.ID))
	}

	peerSet := make(map[p2p.NodeID]bool)
	for _, snap := range s.Active.Comps {
		peerSet[snap.Comp.Peer] = true
	}
	// Ping in sorted order so the failure-localization traffic is identical
	// across identically seeded runs.
	peers := make([]p2p.NodeID, 0, len(peerSet))
	for p := range peerSet {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	alivePeers := make(map[p2p.NodeID]bool, len(peers))
	waiting := len(peers)
	for _, p := range peers {
		p := p
		m.ping(p, func(ok bool) {
			if ok {
				alivePeers[p] = true
			}
			waiting--
			if waiting == 0 {
				dead := make(map[p2p.NodeID]bool)
				for _, q := range peers {
					if !alivePeers[q] {
						dead[q] = true
					}
				}
				m.tryRecovery(s, dead)
			}
		})
	}
}

// ping checks one peer's liveness with a direct round trip; cb fires
// exactly once.
func (m *Manager) ping(p p2p.NodeID, cb func(ok bool)) {
	m.pingSeq++
	id := m.pingSeq
	fired := false
	once := func(ok bool) {
		if !fired {
			fired = true
			delete(m.pingWait, id)
			cb(ok)
		}
	}
	m.pingWait[id] = func() { once(true) }
	m.host.After(m.cfg.PingTimeout, func() { once(false) })
	m.host.Send(p2p.Message{Type: MsgPing, To: p, Size: 16, Payload: pingMsg{ID: id, Origin: m.host.ID()}})
}

type pingMsg struct {
	ID     uint64
	Origin p2p.NodeID
}

func (m *Manager) onPing(_ p2p.Node, msg p2p.Message) {
	pm := msg.Payload.(pingMsg)
	m.host.Send(p2p.Message{Type: MsgPingAck, To: pm.Origin, Size: 16, Payload: pm})
}

func (m *Manager) onPingAck(_ p2p.Node, msg p2p.Message) {
	pm := msg.Payload.(pingMsg)
	if ack, ok := m.pingWait[pm.ID]; ok {
		ack()
	}
}

// tryRecovery attempts switchover to the best live backup that avoids the
// localized dead peers; exhausting the backups triggers reactive
// re-composition (if enabled); exhausting that kills the session.
func (m *Manager) tryRecovery(s *Session, dead map[p2p.NodeID]bool) {
	if m.cfg.Proactive && len(s.Backups) > 0 {
		// Best candidate: avoid localized dead peers first, then largest
		// overlap with the broken graph for the cheapest switchover, then
		// lowest cost.
		usesDead := func(g *service.Graph) bool {
			for p := range dead {
				if g.ContainsPeer(p) {
					return true
				}
			}
			return false
		}
		sort.SliceStable(s.Backups, func(i, j int) bool {
			di, dj := usesDead(s.Backups[i]), usesDead(s.Backups[j])
			if di != dj {
				return !di
			}
			oi, oj := s.Backups[i].Overlap(s.Active), s.Backups[j].Overlap(s.Active)
			if oi != oj {
				return oi > oj
			}
			return s.Backups[i].Cost(m.eng.Weights, s.Req) < s.Backups[j].Cost(m.eng.Weights, s.Req)
		})
		cand := s.Backups[0]
		dropGraph(&s.Backups, cand.Key())
		dropGraph(&s.Pool, cand.Key())
		if usesDead(cand) {
			// Every backup depends on a dead peer: go straight to reactive
			// re-composition rather than paying doomed setup timeouts.
			if m.cfg.Reactive {
				m.reactive(s)
			} else {
				m.kill(s)
			}
			return
		}
		m.attemptSetup(cand, func(ok bool) {
			if !ok {
				m.tryRecovery(s, dead)
				return
			}
			old := s.Active
			s.Active = cand
			s.lastPong[cand.Key()] = m.host.Now()
			delete(s.missed, cand.Key())
			m.stats.ComponentsReplaced += len(old.Comps) - cand.Overlap(old)
			m.allocIngress(s)
			m.reportDropped(old, cand)
			m.eng.TeardownExcept(old, cand)
			s.awaitingFix = false
			m.record(s, EventSwitchover)
			m.refreshBackups(s)
		})
		return
	}
	if m.cfg.Reactive {
		m.reactive(s)
		return
	}
	m.kill(s)
}

// reactive falls back to a full BCP re-composition (§5: "triggered only when
// all backup service graphs become unqualified as well").
func (m *Manager) reactive(s *Session) {
	s.reattempt++
	req := *s.Req
	req.ID = s.Req.ID | (uint64(s.reattempt) << reattemptShift)
	m.stats.Reactives++ // count attempts, successful or not
	m.eng.Compose(&req, func(res bcp.Result) {
		if !s.alive {
			if res.Ok {
				m.eng.Teardown(res.Best)
			}
			return
		}
		if !res.Ok {
			m.kill(s)
			return
		}
		old := s.Active
		s.Active = res.Best
		s.Pool = append([]*service.Graph(nil), res.Backups...)
		s.lastPong = map[string]time.Duration{res.Best.Key(): m.host.Now()}
		s.missed = make(map[string]int)
		m.stats.ComponentsReplaced += len(old.Comps) - res.Best.Overlap(old)
		m.reportDropped(old, res.Best)
		m.eng.TeardownExcept(old, res.Best)
		s.awaitingFix = false
		m.record(s, EventReactive)
		if m.cfg.Proactive {
			m.refreshBackups(s)
		}
	})
}

// reportDropped feeds the trust reporter: peers the recovery had to drop
// (in the broken graph but not the replacement) are negative evidence.
func (m *Manager) reportDropped(old, replacement *service.Graph) {
	if m.Trust == nil {
		return
	}
	for _, comp := range old.Components() {
		if !replacement.ContainsPeer(comp.Peer) {
			m.Trust.RecordFailure(comp.Peer)
		}
	}
}

// allocIngress admits the sender's ingress links to the (new) active
// graph's first components.
func (m *Manager) allocIngress(s *Session) {
	for _, fn := range s.Active.Pattern.Sources() {
		if snap, ok := s.Active.Comps[fn]; ok {
			m.eng.AllocSessionBandwidth(s.Req.ID, snap.Comp.Peer, s.Req.Bandwidth)
		}
	}
}

func (m *Manager) kill(s *Session) {
	s.alive = false
	if m.Met != nil {
		m.Met.ActiveSessions.Add(-1)
	}
	m.record(s, EventDead)
	m.eng.Teardown(s.Active)
	delete(m.sessions, s.ID)
}

func (m *Manager) record(s *Session, kind EventKind) {
	ev := Event{Time: m.host.Now(), Session: s.ID, Kind: kind}
	switch kind {
	case EventSwitchover:
		m.stats.Switchovers++
		ev.RecoveryTime = m.host.Now() - s.brokenAt
		if m.Met != nil {
			m.Met.Switchover.ObserveDuration(ev.RecoveryTime)
		}
	case EventReactive:
		ev.RecoveryTime = m.host.Now() - s.brokenAt
	case EventDead:
		m.stats.Dead++
	}
	m.events = append(m.events, ev)
	if m.Trace != nil {
		var obsKind string
		switch kind {
		case EventSwitchover:
			obsKind = obs.KindRecSwitchover
		case EventReactive:
			obsKind = obs.KindRecReactive
		default:
			obsKind = obs.KindRecDead
		}
		m.Trace.Emit(obs.RecOutcome(ev.Time, m.host.ID(), s.ID, obsKind, ev.RecoveryTime))
	}
}

// attemptSetup commits a backup graph over the reverse path. cb fires
// exactly once with the outcome (a timeout counts as failure).
func (m *Manager) attemptSetup(g *service.Graph, cb func(ok bool)) {
	m.setupSeq++
	id := m.setupSeq
	fired := false
	once := func(ok bool) {
		if !fired {
			fired = true
			delete(m.setupWait, id)
			cb(ok)
		}
	}
	m.setupWait[id] = once
	m.host.After(m.cfg.SetupTimeout, func() { once(false) })

	order := reverseTopoOrder(g)
	m.host.Send(p2p.Message{
		Type: MsgSetup, To: g.Comps[order[0]].Comp.Peer, Size: setupMsgSize,
		Payload: setupMsg{SetupID: id, Graph: g, Order: order, Origin: m.host.ID()},
	})
}

func reverseTopoOrder(g *service.Graph) []int {
	topo := g.Pattern.TopoOrder()
	out := make([]int, len(topo))
	for i, fn := range topo {
		out[len(topo)-1-i] = fn
	}
	return out
}

// onSetup runs on a component host during switchover: admit the component
// and its outgoing links, then forward (or confirm to the origin).
func (m *Manager) onSetup(_ p2p.Node, msg p2p.Message) {
	sm := msg.Payload.(setupMsg)
	fn := sm.Order[sm.Pos]
	snap := sm.Graph.Comps[fn]
	req := sm.Graph.Req

	reply := func(ok bool) {
		typ := MsgSetupOK
		if !ok {
			typ = MsgSetupFail
		}
		m.host.Send(p2p.Message{
			Type: typ, To: sm.Origin, Size: 32,
			Payload: setupReply{SetupID: sm.SetupID, OK: ok},
		})
	}

	if _, hosted := m.eng.LocalComponent(snap.Comp.ID); !hosted {
		reply(false)
		return
	}
	if !m.eng.CommitSession(req.ID, snap.Comp.ID, req.Res) {
		reply(false)
		return
	}
	succs := sm.Graph.Pattern.Successors(fn)
	if len(succs) == 0 {
		if !m.eng.AllocSessionBandwidth(req.ID, req.Dest, req.Bandwidth) {
			reply(false)
			return
		}
	}
	for _, s := range succs {
		next, ok := sm.Graph.Comps[s]
		if !ok || !m.eng.AllocSessionBandwidth(req.ID, next.Comp.Peer, req.Bandwidth) {
			reply(false)
			return
		}
	}
	sm.Pos++
	if sm.Pos < len(sm.Order) {
		m.host.Send(p2p.Message{
			Type: MsgSetup, To: sm.Graph.Comps[sm.Order[sm.Pos]].Comp.Peer,
			Size: setupMsgSize, Payload: sm,
		})
		return
	}
	reply(true)
}

func (m *Manager) onSetupReply(_ p2p.Node, msg p2p.Message) {
	sr := msg.Payload.(setupReply)
	if cb, ok := m.setupWait[sr.SetupID]; ok {
		cb(sr.OK)
	}
}
