// Package recovery implements SpiderNet's proactive failure recovery (§5 of
// the paper). The application sender maintains a small, adaptively sized set
// of backup service graphs per active session, monitors them with low-rate
// path probes, and repairs a broken session by fast switchover to the best
// live backup — falling back to a reactive BCP re-composition only when
// every backup has become unqualified too.
package recovery

import (
	"math"
	"sort"
	"time"

	"repro/internal/bcp"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/service"
)

// Protocol message types.
const (
	MsgProbe     = "rec.probe"     // low-rate path probe along a (backup) graph
	MsgPong      = "rec.pong"      // path probe returning to the source
	MsgPing      = "rec.ping"      // direct per-peer liveness check during recovery
	MsgPingAck   = "rec.pingack"   // liveness confirmation
	MsgSetup     = "rec.setup"     // switchover: commit a backup graph
	MsgSetupOK   = "rec.setupok"   // switchover confirmation
	MsgSetupFail = "rec.setupfail" // switchover rejection
)

// Config tunes the recovery manager.
type Config struct {
	// ProbeInterval is the period of the low-rate maintenance probes.
	ProbeInterval time.Duration
	// PongTimeout is how long the source waits for a path probe to return
	// before declaring the probed graph failed.
	PongTimeout time.Duration
	// SetupTimeout bounds one switchover attempt.
	SetupTimeout time.Duration
	// PingTimeout bounds the per-peer liveness check that localizes a
	// failure before switchover.
	PingTimeout time.Duration
	// MissedPongs is how many consecutive path probes must go unanswered
	// before a graph is declared failed. 1 (the default) reacts to the
	// first silence; lossy networks raise it so a single dropped probe or
	// pong doesn't trigger a spurious switchover. 0 is treated as 1.
	MissedPongs int
	// U is the configurable upper-bound factor of the backup-count formula
	// (Eq. 2).
	U float64
	// MaxBackups is an absolute cap on maintained backups per session.
	MaxBackups int
	// Proactive enables backup maintenance; when false the manager only
	// detects failures (the paper's "without recovery" baseline keeps even
	// reactive recovery off).
	Proactive bool
	// Reactive enables BCP re-composition when all backups are gone.
	Reactive bool
	// DisjointBackups selects fully peer-disjoint backups instead of the
	// paper's overlap-maximizing rule (ablation).
	DisjointBackups bool
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		ProbeInterval: 2 * time.Second,
		PongTimeout:   1500 * time.Millisecond,
		SetupTimeout:  3 * time.Second,
		PingTimeout:   400 * time.Millisecond,
		MissedPongs:   1,
		U:             2.0,
		MaxBackups:    5,
		Proactive:     true,
		Reactive:      true,
	}
}

// EventKind classifies a recovery event.
type EventKind int

const (
	// EventSwitchover is a failure repaired from a maintained backup.
	EventSwitchover EventKind = iota
	// EventReactive is a failure repaired by re-running BCP.
	EventReactive
	// EventDead is an unrecovered failure: the session is lost.
	EventDead
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSwitchover:
		return "switchover"
	case EventReactive:
		return "reactive"
	case EventDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Event records one recovery outcome for the experiment harness.
type Event struct {
	Time    time.Duration
	Session uint64
	Kind    EventKind
	// RecoveryTime is how long the session was broken before repair
	// (zero for EventDead).
	RecoveryTime time.Duration
}

// Stats aggregates a manager's lifetime counters.
type Stats struct {
	FailuresDetected int
	Switchovers      int
	Reactives        int
	Dead             int
	// BackupSum/BackupSamples give the average number of maintained
	// backups per session over time.
	BackupSum     int
	BackupSamples int
	// ComponentsReplaced sums, over all recoveries, how many of the broken
	// graph's components the replacement did NOT reuse — the disruption the
	// overlap-maximizing backup selection minimizes (§5.2).
	ComponentsReplaced int
}

// AvgBackups returns the time-averaged number of maintained backups.
func (s Stats) AvgBackups() float64 {
	if s.BackupSamples == 0 {
		return 0
	}
	return float64(s.BackupSum) / float64(s.BackupSamples)
}

// Session is one active composed service session at its sender.
type Session struct {
	ID      uint64
	Req     *service.Request
	Active  *service.Graph
	Backups []*service.Graph // currently maintained (γ of them)
	Pool    []*service.Graph // remaining qualified graphs, backup candidates

	alive       bool
	lastPong    map[string]time.Duration // graph key -> last pong time
	missed      map[string]int           // graph key -> consecutive missed pongs
	awaitingFix bool
	brokenAt    time.Duration
	reattempt   int
}

// TrustReporter receives first-hand session outcomes per peer; implemented
// by internal/trust.Manager. Optional.
type TrustReporter interface {
	RecordSuccess(p p2p.NodeID)
	RecordFailure(p p2p.NodeID)
}

// Manager runs on every peer: on component hosts it answers maintenance
// probes and switchover setups; on senders it owns the sessions.
type Manager struct {
	eng  *bcp.Engine
	host p2p.Node
	cfg  Config

	// Trust, when set, receives session outcomes: peers dropped during a
	// recovery are reported as failures, peers of a session closed in good
	// standing as successes.
	Trust TrustReporter

	// Trace receives recovery lifecycle events when non-nil.
	Trace obs.Tracer

	// Met, when non-nil, observes the switchover-duration histogram and the
	// active-sessions gauge of the online metrics plane.
	Met *obs.Metrics

	sessions map[uint64]*Session
	stats    Stats
	events   []Event

	probeTimer p2p.CancelFunc
	setupSeq   uint64
	setupWait  map[uint64]func(ok bool)
	pingSeq    uint64
	pingWait   map[uint64]func()
}

// probeMsg walks a graph's components in topological order collecting fresh
// availability, then bounces back to the origin as MsgPong.
type probeMsg struct {
	SessID   uint64
	GraphKey string
	Graph    *service.Graph
	Order    []int
	Pos      int
	Origin   p2p.NodeID
	Avail    []service.Snapshot
}

// setupMsg commits a backup graph hop by hop (reverse topological order),
// like BCP's ACK but with direct admission since probe-time reservations are
// long gone.
type setupMsg struct {
	SetupID uint64
	Graph   *service.Graph
	Order   []int
	Pos     int
	Origin  p2p.NodeID
}

type setupReply struct {
	SetupID uint64
	OK      bool
}

// NewManager wires a recovery manager to a peer's BCP engine.
func NewManager(eng *bcp.Engine, cfg Config) *Manager {
	m := &Manager{
		eng:       eng,
		host:      eng.Host(),
		cfg:       cfg,
		sessions:  make(map[uint64]*Session),
		setupWait: make(map[uint64]func(bool)),
		pingWait:  make(map[uint64]func()),
	}
	m.host.Handle(MsgProbe, m.onProbe)
	m.host.Handle(MsgPong, m.onPong)
	m.host.Handle(MsgPing, m.onPing)
	m.host.Handle(MsgPingAck, m.onPingAck)
	m.host.Handle(MsgSetup, m.onSetup)
	m.host.Handle(MsgSetupOK, m.onSetupReply)
	m.host.Handle(MsgSetupFail, m.onSetupReply)
	return m
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Events returns the recorded recovery events.
func (m *Manager) Events() []Event { return append([]Event(nil), m.events...) }

// Sessions returns the number of live sessions at this sender.
func (m *Manager) Sessions() int {
	n := 0
	for _, s := range m.sessions {
		if s.alive {
			n++
		}
	}
	return n
}

// Session returns a live session by ID, or nil.
func (m *Manager) Session(id uint64) *Session {
	if s, ok := m.sessions[id]; ok && s.alive {
		return s
	}
	return nil
}

// Establish registers a freshly composed session (the output of
// bcp.Compose) and starts proactive maintenance. It computes the backup
// count γ from Eq. 2 and picks backups per §5.2.
func (m *Manager) Establish(req *service.Request, res bcp.Result) *Session {
	s := &Session{
		ID:       req.ID,
		Req:      req,
		Active:   res.Best,
		Pool:     append([]*service.Graph(nil), res.Backups...),
		alive:    true,
		lastPong: make(map[string]time.Duration),
		missed:   make(map[string]int),
	}
	m.sessions[s.ID] = s
	if m.cfg.Proactive {
		m.refreshBackups(s)
	}
	if m.Trace != nil {
		m.Trace.Emit(obs.SessionEstablish(m.host.Now(), m.host.ID(), s.ID, len(s.Backups)))
	}
	if m.Met != nil {
		m.Met.ActiveSessions.Add(1)
	}
	if m.probeTimer == nil {
		m.scheduleProbes()
	}
	return s
}

// Close tears a session down and releases its resources. The hosting peers
// served the session to completion, which counts as positive trust
// evidence.
func (m *Manager) Close(id uint64) {
	s, ok := m.sessions[id]
	if !ok || !s.alive {
		return
	}
	s.alive = false
	if m.Trust != nil {
		for _, comp := range s.Active.Components() {
			m.Trust.RecordSuccess(comp.Peer)
		}
	}
	if m.Met != nil {
		m.Met.ActiveSessions.Add(-1)
	}
	m.eng.Teardown(s.Active)
	delete(m.sessions, id)
}

// BackupCount computes γ per Eq. 2:
//
//	γ = min( ⌊U · (Σ qi_λ/qi_req + F_λ/F_req)⌋ , C−1 )
//
// where C counts all qualified graphs found by the initial composition.
func (m *Manager) BackupCount(s *Session) int {
	qratio := s.Active.QoS.Ratio(s.Req.QoSReq)
	freq := s.Req.FailReq
	if freq <= 0 {
		freq = 0.1 // permissive default when the user gave no bound
	}
	fratio := s.Active.FailProb() / freq
	gamma := int(math.Floor(m.cfg.U * (qratio + fratio)))
	if c := len(s.Pool) + 1; gamma > c-1 {
		gamma = c - 1
	}
	if gamma > m.cfg.MaxBackups {
		gamma = m.cfg.MaxBackups
	}
	if gamma < 0 {
		gamma = 0
	}
	return gamma
}

// refreshBackups re-selects the maintained backup set for s (§5.2): first a
// backup excluding each single component of the active graph — starting from
// the bottleneck components with the largest failure probabilities — then
// backups excluding pairs, and so on, each time preferring the candidate
// with the largest overlap with the active graph for cheap switchover.
func (m *Manager) refreshBackups(s *Session) {
	gamma := m.BackupCount(s)
	s.Backups = SelectBackups(s.Active, s.Pool, gamma, m.cfg.DisjointBackups)
}

// SelectBackups implements the backup selection rule. Exported for the
// ablation benchmarks. pool must not contain the active graph itself.
func SelectBackups(active *service.Graph, pool []*service.Graph, gamma int, disjoint bool) []*service.Graph {
	if gamma <= 0 || len(pool) == 0 {
		return nil
	}
	if disjoint {
		return selectDisjoint(active, pool, gamma)
	}
	// Components of the active graph ordered by failure probability
	// descending: cover bottleneck components first.
	comps := active.Components()
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].FailProb > comps[j].FailProb })

	chosen := make([]*service.Graph, 0, gamma)
	used := make(map[string]bool)
	pick := func(exclude ...string) {
		if len(chosen) >= gamma {
			return
		}
		var best *service.Graph
		bestOverlap := -1
		for _, g := range pool {
			if used[g.Key()] {
				continue
			}
			excluded := false
			for _, id := range exclude {
				if g.Contains(id) {
					excluded = true
					break
				}
			}
			if excluded {
				continue
			}
			if ov := g.Overlap(active); ov > bestOverlap {
				best, bestOverlap = g, ov
			}
		}
		if best != nil {
			used[best.Key()] = true
			chosen = append(chosen, best)
		}
	}
	// Single-component failures, bottleneck first.
	for _, c := range comps {
		pick(c.ID)
	}
	// Pairs of components (largest combined failure probability first, which
	// the comps ordering approximates).
	for i := 0; i < len(comps) && len(chosen) < gamma; i++ {
		for j := i + 1; j < len(comps) && len(chosen) < gamma; j++ {
			pick(comps[i].ID, comps[j].ID)
		}
	}
	// Fill any remaining slots with the largest-overlap unused graphs.
	pick()
	for len(chosen) < gamma {
		before := len(chosen)
		pick()
		if len(chosen) == before {
			break
		}
	}
	return chosen
}

func selectDisjoint(active *service.Graph, pool []*service.Graph, gamma int) []*service.Graph {
	var chosen []*service.Graph
	for _, g := range pool {
		if len(chosen) >= gamma {
			break
		}
		if g.Overlap(active) == 0 {
			chosen = append(chosen, g)
		}
	}
	return chosen
}
