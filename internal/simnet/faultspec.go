package simnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/p2p"
)

// FaultSpec is the compact command-line form of a fault plan, as accepted
// by the -faults flag:
//
//	loss=0.05,dup=0.01,jitter=20ms,partition=10s@30s,seed=3
//
// Keys may appear in any order, each at most once. loss and dup are
// probabilities in [0, 1] applied to every link; jitter is the uniform
// extra-latency bound; partition=<dur>@<at> cuts the peer set in half at
// <at> for <dur> (the "@<at>" part defaults to 0); seed isolates the fault
// RNG stream. String renders the canonical form (fixed key order, defaults
// omitted), and Plan expands the spec into a FaultPlan over a peer set.
type FaultSpec struct {
	Loss    float64
	Dup     float64
	Jitter  time.Duration
	PartDur time.Duration // half/half partition length; 0 = no partition
	PartAt  time.Duration // partition activation time
	Seed    int64
}

// ParseFaultSpec parses the -faults grammar. The empty string is an error —
// "no faults" is expressed by not passing the flag at all.
func ParseFaultSpec(s string) (*FaultSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty fault spec (want e.g. %q)", "loss=0.05,jitter=20ms,partition=10s@30s")
	}
	spec := &FaultSpec{}
	seen := make(map[string]bool)
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("fault spec field %q: want key=value", field)
		}
		if seen[key] {
			return nil, fmt.Errorf("fault spec key %q given twice", key)
		}
		seen[key] = true
		switch key {
		case "loss", "dup":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault spec %s=%q: %v", key, val, err)
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("fault spec %s=%v: probability outside [0,1]", key, p)
			}
			if key == "loss" {
				spec.Loss = p
			} else {
				spec.Dup = p
			}
		case "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("fault spec jitter=%q: %v", val, err)
			}
			if d < 0 {
				return nil, fmt.Errorf("fault spec jitter=%v: negative", d)
			}
			spec.Jitter = d
		case "partition":
			durStr, atStr, hasAt := strings.Cut(val, "@")
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("fault spec partition=%q: bad duration: %v", val, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("fault spec partition=%v: duration must be positive", d)
			}
			spec.PartDur = d
			if hasAt {
				at, err := time.ParseDuration(atStr)
				if err != nil {
					return nil, fmt.Errorf("fault spec partition=%q: bad activation time: %v", val, err)
				}
				if at < 0 {
					return nil, fmt.Errorf("fault spec partition=%q: negative activation time", val)
				}
				spec.PartAt = at
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault spec seed=%q: %v", val, err)
			}
			spec.Seed = n
		default:
			return nil, fmt.Errorf("fault spec key %q: want loss, dup, jitter, partition, or seed", key)
		}
	}
	return spec, nil
}

// String renders the canonical spec: fixed key order, zero-valued keys
// omitted. ParseFaultSpec(s.String()) reproduces s for any spec with at
// least one non-zero field.
func (s *FaultSpec) String() string {
	var parts []string
	if s.Loss != 0 {
		parts = append(parts, "loss="+strconv.FormatFloat(s.Loss, 'g', -1, 64))
	}
	if s.Dup != 0 {
		parts = append(parts, "dup="+strconv.FormatFloat(s.Dup, 'g', -1, 64))
	}
	if s.Jitter != 0 {
		parts = append(parts, "jitter="+s.Jitter.String())
	}
	if s.PartDur != 0 {
		p := "partition=" + s.PartDur.String()
		if s.PartAt != 0 {
			p += "@" + s.PartAt.String()
		}
		parts = append(parts, p)
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// Plan expands the spec into a FaultPlan over peers: loss/dup/jitter become
// the every-link default, and the partition (if any) cuts the first half of
// peers from the second. Partition times are relative to t=0; shift the
// plan (or use Cluster.ApplyFaults) when installing mid-run.
func (s *FaultSpec) Plan(peers []p2p.NodeID) FaultPlan {
	plan := FaultPlan{
		Seed:    s.Seed,
		Default: LinkFaults{Loss: s.Loss, Dup: s.Dup, Jitter: s.Jitter},
	}
	if s.PartDur > 0 && len(peers) >= 2 {
		half := len(peers) / 2
		plan.Partitions = []Partition{{
			Name:  "spec",
			A:     append([]p2p.NodeID(nil), peers[:half]...),
			B:     append([]p2p.NodeID(nil), peers[half:]...),
			From:  s.PartAt,
			Until: s.PartAt + s.PartDur,
		}}
	}
	return plan
}
