package simnet

import (
	"math/rand"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock=%v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.RunUntilIdle()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("clock=%v, want 0", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := NewSim()
	fired := false
	cancel := s.Schedule(time.Millisecond, func() { fired = true })
	cancel()
	s.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	cancel() // double-cancel is a no-op
}

func TestRunHorizon(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.Run(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired=%v", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock=%v", s.Now())
	}
	// Horizon with no events still advances the clock.
	s.Run(10 * time.Second)
	if s.Now() != 10*time.Second || len(fired) != 3 {
		t.Fatalf("clock=%v fired=%v", s.Now(), fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []time.Duration
	s.Schedule(time.Second, func() {
		times = append(times, s.Now())
		s.Schedule(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.RunUntilIdle()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times=%v", times)
	}
}

func TestPending(t *testing.T) {
	s := NewSim()
	c1 := s.Schedule(time.Second, func() {})
	s.Schedule(time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending=%d", s.Pending())
	}
	c1()
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel=%d", s.Pending())
	}
	s.RunUntilIdle()
	if s.Pending() != 0 {
		t.Fatalf("Pending after run=%d", s.Pending())
	}
}

func TestStepReturnsFalseWhenIdle(t *testing.T) {
	s := NewSim()
	if s.Step() {
		t.Fatal("Step on empty sim should return false")
	}
	s.Schedule(0, func() {})
	if !s.Step() {
		t.Fatal("Step with one event should return true")
	}
	if s.Step() {
		t.Fatal("Step after draining should return false")
	}
}

// TestSameTimestampOrderDeterministic runs the same randomized schedule —
// many events piled onto few distinct timestamps, with nested re-scheduling —
// twice from the same seed and requires the dispatch sequences to match
// exactly. This is the property the whole trace-determinism story rests on:
// ties are broken by insertion order, never by heap internals.
func TestSameTimestampOrderDeterministic(t *testing.T) {
	dispatch := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			// Only 5 distinct timestamps => heavy tie-breaking.
			at := time.Duration(rng.Intn(5)) * time.Millisecond
			s.Schedule(at, func() {
				order = append(order, i)
				if i%7 == 0 {
					// Nested event at the current timestamp: must run
					// after everything already queued for this instant.
					s.Schedule(0, func() { order = append(order, 1000+i) })
				}
			})
		}
		s.RunUntilIdle()
		return order
	}
	a, b := dispatch(42), dispatch(42)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// lazyHeap is the reference implementation the indexed heap replaced:
// cancellation only flags the event, and flagged events are skipped when
// their timestamp pops. The property test below checks the indexed heap
// fires the exact same sequence under random schedule/cancel interleavings.
type lazyHeap struct {
	now    time.Duration
	events []*lazyEvent
	seq    uint64
}

type lazyEvent struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

func (l *lazyHeap) schedule(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	e := &lazyEvent{at: l.now + d, seq: l.seq, fn: fn}
	l.seq++
	l.events = append(l.events, e)
	l.up(len(l.events) - 1)
	return func() { e.cancelled = true }
}

func (l *lazyHeap) less(i, j int) bool {
	if l.events[i].at != l.events[j].at {
		return l.events[i].at < l.events[j].at
	}
	return l.events[i].seq < l.events[j].seq
}

func (l *lazyHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !l.less(i, p) {
			break
		}
		l.events[i], l.events[p] = l.events[p], l.events[i]
		i = p
	}
}

func (l *lazyHeap) pop() *lazyEvent {
	e := l.events[0]
	n := len(l.events) - 1
	l.events[0] = l.events[n]
	l.events = l.events[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && l.less(c+1, c) {
			c++
		}
		if l.less(i, c) {
			break
		}
		l.events[i], l.events[c] = l.events[c], l.events[i]
		i = c
	}
	return e
}

func (l *lazyHeap) runUntilIdle() {
	for len(l.events) > 0 {
		e := l.pop()
		if e.cancelled {
			continue
		}
		l.now = e.at
		e.fn()
	}
}

// TestIndexedHeapMatchesLazyHeap drives both implementations through the
// same randomized schedule/cancel interleaving (including cancels issued
// from inside callbacks and nested scheduling) and requires identical firing
// sequences. This is the determinism contract of the rewrite: true removal
// on cancel must never change the (at, seq) dispatch order.
func TestIndexedHeapMatchesLazyHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		run := func(schedule func(time.Duration, func()) func(), drain func()) []int {
			script := rand.New(rand.NewSource(seed))
			rng := rand.New(rand.NewSource(seed + 1000))
			var order []int
			var cancels []func()
			var rec func(depth, id int) func()
			rec = func(depth, id int) func() {
				return func() {
					order = append(order, id)
					if depth < 2 && rng.Intn(3) == 0 {
						c := schedule(time.Duration(rng.Intn(4))*time.Millisecond, rec(depth+1, id+10000))
						cancels = append(cancels, c)
					}
					if len(cancels) > 0 && rng.Intn(3) == 0 {
						cancels[rng.Intn(len(cancels))]()
					}
				}
			}
			for i := 0; i < 300; i++ {
				c := schedule(time.Duration(script.Intn(10))*time.Millisecond, rec(0, i))
				cancels = append(cancels, c)
				if script.Intn(4) == 0 {
					cancels[script.Intn(len(cancels))]()
				}
			}
			drain()
			return order
		}
		s := NewSim()
		got := run(s.Schedule, s.RunUntilIdle)
		l := &lazyHeap{}
		want := run(l.schedule, l.runUntilIdle)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch diverges at %d: %d vs %d", seed, i, got[i], want[i])
			}
		}
	}
}

// TestStaleCancelAfterReuse holds a cancel closure across its event firing
// and a freelist reuse of the event struct: the stale cancel must not kill
// the new incarnation.
func TestStaleCancelAfterReuse(t *testing.T) {
	s := NewSim()
	stale := s.Schedule(time.Millisecond, func() {})
	s.RunUntilIdle() // fires; the event struct goes to the freelist

	fired := false
	s.Schedule(time.Millisecond, func() { fired = true }) // reuses the struct
	stale()                                               // must be a no-op
	if s.Pending() != 1 {
		t.Fatalf("stale cancel removed a live event: Pending=%d", s.Pending())
	}
	s.RunUntilIdle()
	if !fired {
		t.Fatal("event reusing a recycled struct did not fire")
	}
}

// TestCancelRemovesImmediately verifies cancellation truly removes the event
// rather than leaving a tombstone: the queue length drops at cancel time.
func TestCancelRemovesImmediately(t *testing.T) {
	s := NewSim()
	var cancels []func()
	for i := 0; i < 100; i++ {
		cancels = append(cancels, s.Schedule(time.Hour, func() {}))
	}
	for i, c := range cancels {
		c()
		if got, want := s.Pending(), 100-i-1; got != want {
			t.Fatalf("after %d cancels Pending=%d, want %d", i+1, got, want)
		}
	}
}

// TestScheduleFireAllocs pins the steady-state Schedule→fire allocation
// budget: with the freelist warm, one Schedule+Step cycle allocates only the
// returned cancel closure.
func TestScheduleFireAllocs(t *testing.T) {
	s := NewSim()
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the freelist and the heap's backing array
		s.Schedule(0, fn)
	}
	s.RunUntilIdle()
	avg := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Microsecond, fn)
		s.Step()
	})
	if avg > 1.1 {
		t.Fatalf("Schedule→fire allocates %.2f objects/op, want <= 1 (the cancel closure)", avg)
	}
}

// TestCancelDuringDispatch cancels a same-timestamp event from inside an
// earlier callback: the cancelled callback must never fire even though it
// was already in the heap when its timestamp arrived.
func TestCancelDuringDispatch(t *testing.T) {
	s := NewSim()
	fired := false
	var cancel func()
	s.Schedule(time.Millisecond, func() { cancel() })
	cancel = s.Schedule(time.Millisecond, func() { fired = true })
	s.RunUntilIdle()
	if fired {
		t.Fatal("event cancelled during dispatch of its own timestamp still fired")
	}

	// Cancelling from a callback scheduled earlier in *time* (not just
	// sequence) must also hold across Run horizons.
	s2 := NewSim()
	fired2 := false
	c2 := s2.Schedule(2*time.Millisecond, func() { fired2 = true })
	s2.Schedule(time.Millisecond, func() { c2() })
	s2.Run(5 * time.Millisecond)
	if fired2 {
		t.Fatal("event cancelled one tick earlier still fired")
	}
	if s2.Now() != 5*time.Millisecond {
		t.Fatalf("clock=%v, want 5ms", s2.Now())
	}
}
