package simnet

import (
	"math/rand"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock=%v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.RunUntilIdle()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("clock=%v, want 0", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := NewSim()
	fired := false
	cancel := s.Schedule(time.Millisecond, func() { fired = true })
	cancel()
	s.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	cancel() // double-cancel is a no-op
}

func TestRunHorizon(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.Run(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired=%v", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock=%v", s.Now())
	}
	// Horizon with no events still advances the clock.
	s.Run(10 * time.Second)
	if s.Now() != 10*time.Second || len(fired) != 3 {
		t.Fatalf("clock=%v fired=%v", s.Now(), fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []time.Duration
	s.Schedule(time.Second, func() {
		times = append(times, s.Now())
		s.Schedule(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.RunUntilIdle()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times=%v", times)
	}
}

func TestPending(t *testing.T) {
	s := NewSim()
	c1 := s.Schedule(time.Second, func() {})
	s.Schedule(time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending=%d", s.Pending())
	}
	c1()
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel=%d", s.Pending())
	}
	s.RunUntilIdle()
	if s.Pending() != 0 {
		t.Fatalf("Pending after run=%d", s.Pending())
	}
}

func TestStepReturnsFalseWhenIdle(t *testing.T) {
	s := NewSim()
	if s.Step() {
		t.Fatal("Step on empty sim should return false")
	}
	s.Schedule(0, func() {})
	if !s.Step() {
		t.Fatal("Step with one event should return true")
	}
	if s.Step() {
		t.Fatal("Step after draining should return false")
	}
}

// TestSameTimestampOrderDeterministic runs the same randomized schedule —
// many events piled onto few distinct timestamps, with nested re-scheduling —
// twice from the same seed and requires the dispatch sequences to match
// exactly. This is the property the whole trace-determinism story rests on:
// ties are broken by insertion order, never by heap internals.
func TestSameTimestampOrderDeterministic(t *testing.T) {
	dispatch := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			// Only 5 distinct timestamps => heavy tie-breaking.
			at := time.Duration(rng.Intn(5)) * time.Millisecond
			s.Schedule(at, func() {
				order = append(order, i)
				if i%7 == 0 {
					// Nested event at the current timestamp: must run
					// after everything already queued for this instant.
					s.Schedule(0, func() { order = append(order, 1000+i) })
				}
			})
		}
		s.RunUntilIdle()
		return order
	}
	a, b := dispatch(42), dispatch(42)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestCancelDuringDispatch cancels a same-timestamp event from inside an
// earlier callback: the cancelled callback must never fire even though it
// was already in the heap when its timestamp arrived.
func TestCancelDuringDispatch(t *testing.T) {
	s := NewSim()
	fired := false
	var cancel func()
	s.Schedule(time.Millisecond, func() { cancel() })
	cancel = s.Schedule(time.Millisecond, func() { fired = true })
	s.RunUntilIdle()
	if fired {
		t.Fatal("event cancelled during dispatch of its own timestamp still fired")
	}

	// Cancelling from a callback scheduled earlier in *time* (not just
	// sequence) must also hold across Run horizons.
	s2 := NewSim()
	fired2 := false
	c2 := s2.Schedule(2*time.Millisecond, func() { fired2 = true })
	s2.Schedule(time.Millisecond, func() { c2() })
	s2.Run(5 * time.Millisecond)
	if fired2 {
		t.Fatal("event cancelled one tick earlier still fired")
	}
	if s2.Now() != 5*time.Millisecond {
		t.Fatalf("clock=%v, want 5ms", s2.Now())
	}
}
