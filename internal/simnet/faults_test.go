package simnet

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
)

func TestLossDropsEverythingAtRateOne(t *testing.T) {
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{Seed: 1, Default: LinkFaults{Loss: 1}})
	delivered := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { delivered++ })
	for i := 0; i < 10; i++ {
		ns[0].Send(p2p.Message{Type: "ping", To: 1})
	}
	nw.Sim().RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("delivered=%d, want 0 under loss=1", delivered)
	}
	st := nw.Stats()
	if st.Faulted != 10 {
		t.Fatalf("Faulted=%d, want 10", st.Faulted)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped=%d: fault kills must not count as dead-node drops", st.Dropped)
	}
}

func TestLossZeroRateDrawsNothing(t *testing.T) {
	// A plan with all-zero rates must behave exactly like no plan at all.
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{Seed: 99, Default: LinkFaults{}})
	if nw.faults != nil {
		t.Fatal("empty plan should not install fault state")
	}
	got := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { got++ })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if got != 1 {
		t.Fatalf("got=%d", got)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{Seed: 1, Default: LinkFaults{Dup: 1}})
	count := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { count++ })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if count != 2 {
		t.Fatalf("count=%d, want 2 under dup=1", count)
	}
	if st := nw.Stats(); st.Duplicated != 1 {
		t.Fatalf("Duplicated=%d, want 1", st.Duplicated)
	}
}

func TestJitterDelaysWithinBound(t *testing.T) {
	nw, ns := newTestNet(2)
	const jitter = 5 * time.Millisecond
	nw.SetFaults(FaultPlan{Seed: 7, Default: LinkFaults{Jitter: jitter}})
	var at time.Duration
	count := 0
	ns[1].Handle("ping", func(n p2p.Node, _ p2p.Message) { at = n.Now(); count++ })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if count != 1 {
		t.Fatalf("count=%d", count)
	}
	base := 10 * time.Millisecond
	if at < base || at > base+jitter {
		t.Fatalf("delivered at %v, want within [%v, %v]", at, base, base+jitter)
	}
}

func TestJitterReorders(t *testing.T) {
	// With jitter comparable to the spacing between sends, some pair of
	// back-to-back messages must arrive out of order.
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{Seed: 3, Default: LinkFaults{Jitter: 20 * time.Millisecond}})
	var order []int
	ns[1].Handle("seq", func(_ p2p.Node, msg p2p.Message) {
		order = append(order, msg.Payload.(int))
	})
	for i := 0; i < 20; i++ {
		i := i
		nw.Sim().Schedule(time.Duration(i)*time.Millisecond, func() {
			ns[0].Send(p2p.Message{Type: "seq", To: 1, Payload: i})
		})
	}
	nw.Sim().RunUntilIdle()
	if len(order) != 20 {
		t.Fatalf("delivered %d of 20", len(order))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatalf("no reordering observed: %v", order)
	}
}

func TestPartitionWindowCutsBothDirectionsThenHeals(t *testing.T) {
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{
		Seed: 1,
		Partitions: []Partition{{
			Name: "test", A: []p2p.NodeID{0}, B: []p2p.NodeID{1},
			From: 5 * time.Millisecond, Until: 15 * time.Millisecond,
		}},
	})
	var got []string
	ns[0].Handle("m", func(_ p2p.Node, msg p2p.Message) { got = append(got, msg.Payload.(string)) })
	ns[1].Handle("m", func(_ p2p.Node, msg p2p.Message) { got = append(got, msg.Payload.(string)) })
	sendAt := func(at time.Duration, from, to int, tag string) {
		nw.Sim().Schedule(at, func() {
			ns[from].Send(p2p.Message{Type: "m", To: p2p.NodeID(to), Payload: tag})
		})
	}
	sendAt(0, 0, 1, "before")              // sent before the window: delivers
	sendAt(6*time.Millisecond, 0, 1, "in") // inside: cut
	sendAt(7*time.Millisecond, 1, 0, "in-rev")
	sendAt(15*time.Millisecond, 0, 1, "after") // at Until: healed
	nw.Sim().RunUntilIdle()
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("got=%v, want [before after]", got)
	}
	if st := nw.Stats(); st.Faulted != 2 {
		t.Fatalf("Faulted=%d, want 2 partitioned sends", st.Faulted)
	}
}

func TestPartitionSparesUninvolvedNodes(t *testing.T) {
	nw, ns := newTestNet(3)
	nw.SetFaults(FaultPlan{
		Seed:       1,
		Partitions: []Partition{{Name: "ab", A: []p2p.NodeID{0}, B: []p2p.NodeID{1}}},
	})
	got := 0
	ns[2].Handle("m", func(p2p.Node, p2p.Message) { got++ })
	ns[0].Send(p2p.Message{Type: "m", To: 2})
	ns[1].Send(p2p.Message{Type: "m", To: 2})
	nw.Sim().RunUntilIdle()
	if got != 2 {
		t.Fatalf("got=%d, want 2: node 2 is on neither side", got)
	}
}

func TestExactLinkOverrideWinsOverDefault(t *testing.T) {
	nw, ns := newTestNet(3)
	nw.SetFaults(FaultPlan{
		Seed:    1,
		Default: LinkFaults{Loss: 1},
		// The 0->1 link is explicitly clean: the override replaces the
		// default entirely rather than merging with it.
		Links: map[[2]p2p.NodeID]LinkFaults{{0, 1}: {}},
	})
	got := map[p2p.NodeID]int{}
	for _, n := range ns[1:] {
		n := n
		n.Handle("m", func(p2p.Node, p2p.Message) { got[n.ID()]++ })
	}
	ns[0].Send(p2p.Message{Type: "m", To: 1})
	ns[0].Send(p2p.Message{Type: "m", To: 2})
	nw.Sim().RunUntilIdle()
	if got[1] != 1 || got[2] != 0 {
		t.Fatalf("got=%v, want link 0->1 clean and 0->2 lossy", got)
	}
}

func TestNodeFaultsMergeMax(t *testing.T) {
	fs := newFaultState(FaultPlan{
		Seed:    1,
		Default: LinkFaults{Loss: 0.1},
		Nodes: map[p2p.NodeID]LinkFaults{
			3: {Loss: 0.5, Jitter: 2 * time.Millisecond},
			4: {Dup: 0.2},
		},
	})
	lf := fs.link(3, 4)
	want := LinkFaults{Loss: 0.5, Dup: 0.2, Jitter: 2 * time.Millisecond}
	if lf != want {
		t.Fatalf("link(3,4)=%+v, want %+v", lf, want)
	}
	if lf := fs.link(1, 2); lf != (LinkFaults{Loss: 0.1}) {
		t.Fatalf("link(1,2)=%+v, want default only", lf)
	}
}

func TestFaultPlanShift(t *testing.T) {
	p := FaultPlan{Partitions: []Partition{
		{From: 10 * time.Second, Until: 20 * time.Second},
		{From: 5 * time.Second}, // Until==0 means "never heals": must stay 0
	}}
	s := p.Shift(3 * time.Second)
	if s.Partitions[0].From != 13*time.Second || s.Partitions[0].Until != 23*time.Second {
		t.Fatalf("shifted[0]=%+v", s.Partitions[0])
	}
	if s.Partitions[1].From != 8*time.Second || s.Partitions[1].Until != 0 {
		t.Fatalf("shifted[1]=%+v", s.Partitions[1])
	}
	if p.Partitions[0].From != 10*time.Second {
		t.Fatal("Shift mutated the original plan")
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() []time.Duration {
		sim := NewSim()
		nw := NewNetwork(sim, ConstantLatency(10*time.Millisecond), rand.New(rand.NewSource(1)))
		a := nw.AddNode(0)
		b := nw.AddNode(1)
		var times []time.Duration
		b.Handle("m", func(n p2p.Node, _ p2p.Message) { times = append(times, n.Now()) })
		nw.SetFaults(FaultPlan{Seed: 42, Default: LinkFaults{Loss: 0.3, Dup: 0.2, Jitter: 8 * time.Millisecond}})
		for i := 0; i < 50; i++ {
			i := i
			sim.Schedule(time.Duration(i)*time.Millisecond, func() {
				a.Send(p2p.Message{Type: "m", To: 1})
			})
		}
		sim.RunUntilIdle()
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("runs delivered %d vs %d messages", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, t1[i], t2[i])
		}
	}
	if len(t1) == 0 || len(t1) == 100 {
		t.Fatalf("degenerate run: %d deliveries", len(t1))
	}
}

// Regression pin: a message (or fault-plane duplicate) that was in flight
// when its destination crashed must NOT be delivered after the destination
// recovers. Recovery bumps the node's epoch; deliveries stamped with the old
// epoch die as drops.
func TestInFlightMessageNotResurrectedByRecover(t *testing.T) {
	nw, ns := newTestNet(2)
	delivered := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { delivered++ })
	ns[0].Send(p2p.Message{Type: "ping", To: 1}) // arrives at t=10ms
	nw.Sim().Schedule(2*time.Millisecond, func() { nw.Fail(1) })
	nw.Sim().Schedule(4*time.Millisecond, func() { nw.Recover(1) })
	nw.Sim().RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("delivered=%d: pre-crash in-flight message resurrected by Recover", delivered)
	}
	if st := nw.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped=%d, want 1 (the stale-epoch copy must be accounted)", st.Dropped)
	}
	// Post-recovery traffic flows normally.
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered=%d after recovery, want 1", delivered)
	}
}

func TestDuplicatedCopyNotResurrectedByRecover(t *testing.T) {
	nw, ns := newTestNet(2)
	nw.SetFaults(FaultPlan{Seed: 1, Default: LinkFaults{Dup: 1, Jitter: 30 * time.Millisecond}})
	delivered := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { delivered++ })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	// Crash+recover while both copies (base delay 10ms, plus jitter) can
	// still be in flight.
	nw.Sim().Schedule(1*time.Millisecond, func() { nw.Fail(1) })
	nw.Sim().Schedule(2*time.Millisecond, func() { nw.Recover(1) })
	nw.Sim().RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("delivered=%d: duplicated pre-crash copy resurrected by Recover", delivered)
	}
	if st := nw.Stats(); st.Dropped != 2 {
		t.Fatalf("Dropped=%d, want both stale copies dropped", st.Dropped)
	}
}
