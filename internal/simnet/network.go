package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
)

// LatencyFunc models one-way message latency between two peers.
type LatencyFunc func(from, to p2p.NodeID) time.Duration

// ProcDelayFunc models receiver-side processing delay: the extra time a
// message of the given type spends queued at the destination before its
// handler runs. The overload control plane backs it with a utilization-driven
// M/M/1 model (qos.LoadModel); nil means processing is free, today's
// behavior. The function must be deterministic in the simulation state for
// traces to stay byte-identical per seed.
type ProcDelayFunc func(to p2p.NodeID, msgType string) time.Duration

// Stats accumulates network-level overhead counters. The experiments use
// these to compare SpiderNet's probing overhead with the baselines'
// flooding / global-state-update overhead.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	Delivered    int64
	Dropped      int64 // destination dead, unknown, or crashed since send
	Unhandled    int64 // delivered but no handler registered
	Faulted      int64 // killed at send time by injected loss or partition
	Duplicated   int64 // extra copies injected by duplication faults
	ByType       map[string]int64
}

// Network is the simulated message-passing layer connecting simNodes. All
// operation happens on the owning Sim's event loop.
//
// The node table is split into a dense slice (indexed directly by NodeID, the
// common case: experiments assign small sequential IDs) and a sparse map
// fallback for outliers, so lookups on the send/deliver hot path cost an
// array index instead of a map probe, and a million registered peers cost one
// flat pointer slice.
type Network struct {
	sim     *Sim
	rng     *rand.Rand
	latency LatencyFunc
	dense   []*simNode              // nodes with IDs in [0, len); nil = unregistered
	sparse  map[p2p.NodeID]*simNode // negative or far-out-of-range IDs
	count   int
	stats   Stats
	trace   obs.Tracer
	obsReg  *obs.Registry
	met     *obs.Metrics
	faults  *faultState   // nil unless SetFaults installed a plan
	proc    ProcDelayFunc // nil unless SetProcDelay installed a load model

	// Delivery records are pooled and dispatched through one long-lived
	// ScheduleCall function, so a message in flight costs no allocation
	// beyond its (recycled) record — the difference between an idle large
	// network and a garbage-collector workout.
	delPool []*delivery
	delFn   func(any)
}

// delivery is the pooled in-flight message record: the payload of one
// scheduled deliver call.
type delivery struct {
	msg   p2p.Message
	epoch uint64
	known bool
}

// denseSlack bounds how far past the current dense-table end an ID may land
// while still growing the slice instead of falling back to the sparse map,
// so scattered-but-small ID spaces (shard bases, cluster offsets) stay on
// the fast path without a pathological ID exploding memory.
const denseSlack = 1024

// NewNetwork creates a network whose message delays come from latency and
// whose randomness comes from rng (shared by all nodes; determinism follows
// from the single-threaded event loop).
func NewNetwork(sim *Sim, latency LatencyFunc, rng *rand.Rand) *Network {
	nw := &Network{
		sim:     sim,
		rng:     rng,
		latency: latency,
		stats:   Stats{ByType: make(map[string]int64)},
	}
	nw.delFn = func(arg any) {
		rec := arg.(*delivery)
		msg, epoch, known := rec.msg, rec.epoch, rec.known
		rec.msg = p2p.Message{} // drop payload references before pooling
		nw.delPool = append(nw.delPool, rec)
		nw.deliver(msg, epoch, known)
	}
	return nw
}

// node looks up a registered node, nil if unknown.
func (nw *Network) node(id p2p.NodeID) *simNode {
	if id >= 0 && int(id) < len(nw.dense) {
		return nw.dense[id]
	}
	return nw.sparse[id]
}

// scheduleDelivery queues msg for delivery after d using a pooled record.
func (nw *Network) scheduleDelivery(d time.Duration, msg p2p.Message, epoch uint64, known bool) {
	var rec *delivery
	if n := len(nw.delPool); n > 0 {
		rec = nw.delPool[n-1]
		nw.delPool[n-1] = nil
		nw.delPool = nw.delPool[:n-1]
	} else {
		rec = &delivery{}
	}
	rec.msg, rec.epoch, rec.known = msg, epoch, known
	nw.sim.ScheduleCall(d, nw.delFn, rec)
}

// ConstantLatency returns a LatencyFunc with a fixed one-way delay,
// convenient in tests.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(_, _ p2p.NodeID) time.Duration { return d }
}

// Sim returns the scheduler driving this network.
func (nw *Network) Sim() *Sim { return nw.sim }

// SetObs attaches the observability subsystem: trace (may be nil) receives
// network-level events, reg (may be nil) accumulates per-node message and
// byte counters, met (may be nil) observes wire-level histograms. Call
// before AddNode so nodes cache their counter blocks.
func (nw *Network) SetObs(trace obs.Tracer, reg *obs.Registry, met *obs.Metrics) {
	nw.trace = trace
	nw.obsReg = reg
	nw.met = met
	if reg == nil {
		return
	}
	for _, n := range nw.dense {
		if n != nil && n.ctr == nil {
			n.ctr = reg.Node(n.id)
		}
	}
	for id, n := range nw.sparse {
		if n.ctr == nil {
			n.ctr = reg.Node(id)
		}
	}
}

// SetProcDelay installs a receiver-side processing-delay model (nil removes
// it). The delay is computed at send time from the destination's current
// state and added to the link latency, so a loaded peer serves probes and
// session traffic more slowly — the overload regime the scale experiment
// drives.
func (nw *Network) SetProcDelay(f ProcDelayFunc) { nw.proc = f }

// Stats returns a snapshot of the overhead counters.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.ByType = make(map[string]int64, len(nw.stats.ByType))
	for k, v := range nw.stats.ByType {
		s.ByType[k] = v
	}
	return s
}

// ResetStats zeroes the overhead counters.
func (nw *Network) ResetStats() {
	nw.stats = Stats{ByType: make(map[string]int64)}
}

// AddNode creates and registers a live node with the given ID.
func (nw *Network) AddNode(id p2p.NodeID) p2p.Node {
	if nw.node(id) != nil {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	n := &simNode{id: id, net: nw, alive: true}
	if nw.obsReg != nil {
		n.ctr = nw.obsReg.Node(id)
	}
	switch {
	case id >= 0 && int(id) < len(nw.dense):
		nw.dense[id] = n
	case id >= 0 && int(id) < len(nw.dense)+denseSlack:
		grown := make([]*simNode, int(id)+1)
		copy(grown, nw.dense)
		nw.dense = grown
		nw.dense[id] = n
	default:
		if nw.sparse == nil {
			nw.sparse = make(map[p2p.NodeID]*simNode)
		}
		nw.sparse[id] = n
	}
	nw.count++
	return n
}

// Node returns the node with the given ID, or nil.
func (nw *Network) Node(id p2p.NodeID) p2p.Node {
	n := nw.node(id)
	if n == nil {
		return nil
	}
	return n
}

// NumNodes returns the number of registered nodes (alive or failed).
func (nw *Network) NumNodes() int { return nw.count }

// Fail marks a node as crashed: in-flight and future messages to it are
// dropped and its pending timers never fire. Handlers stay registered so the
// node can be recovered later.
func (nw *Network) Fail(id p2p.NodeID) {
	if n := nw.node(id); n != nil && n.alive {
		n.alive = false
		n.epoch++
		if nw.trace != nil {
			nw.trace.Emit(obs.NodeDown(nw.sim.Now(), id))
		}
	}
}

// Recover brings a failed node back up. Protocol state on the node is
// whatever the protocol structs still hold; SpiderNet assumes stateless or
// soft-state components (§5), so this matches the paper's model.
func (nw *Network) Recover(id p2p.NodeID) {
	if n := nw.node(id); n != nil && !n.alive {
		n.alive = true
		if nw.trace != nil {
			nw.trace.Emit(obs.NodeUp(nw.sim.Now(), id))
		}
	}
}

// Alive reports whether the node exists and is up.
func (nw *Network) Alive(id p2p.NodeID) bool {
	n := nw.node(id)
	return n != nil && n.alive
}

func (nw *Network) send(msg p2p.Message) {
	nw.stats.MessagesSent++
	nw.stats.BytesSent += int64(msg.Size)
	nw.stats.ByType[msg.Type]++
	if nw.met != nil {
		nw.met.WireBytes.Observe(float64(msg.Size))
	}
	// Capture the destination's epoch now: a message in flight when its
	// destination crashes must not surface after a later Recover (Fail
	// promises in-flight messages are dropped).
	epoch, known := uint64(0), false
	if dst := nw.node(msg.To); dst != nil {
		epoch, known = dst.epoch, true
	}
	d := nw.latency(msg.From, msg.To)
	if nw.proc != nil {
		// Receiver-side processing delay, evaluated at send time from the
		// destination's current load. Duplicated fault copies below reuse d,
		// so they ride the same queueing delay as the original.
		d += nw.proc(msg.To, msg.Type)
	}
	if fs := nw.faults; fs != nil {
		// Fixed evaluation order — partition, loss, jitter, dup — with a
		// draw consumed only when the matching rate is non-zero, so plans
		// that differ in one knob replay the rest of the stream unchanged.
		if fs.partitioned(msg.From, msg.To, nw.sim.Now()) {
			nw.stats.Faulted++
			nw.fault(msg, obs.FaultPartition)
			return
		}
		lf := fs.link(msg.From, msg.To)
		if lf.Loss > 0 && fs.frng.Float64() < lf.Loss {
			nw.stats.Faulted++
			nw.fault(msg, obs.FaultLoss)
			return
		}
		if lf.Jitter > 0 {
			if extra := time.Duration(fs.frng.Int63n(int64(lf.Jitter) + 1)); extra > 0 {
				d += extra
				nw.fault(msg, obs.FaultJitter)
			}
		}
		if lf.Dup > 0 && fs.frng.Float64() < lf.Dup {
			// The copy rides the already-drawn base delay (never the main
			// RNG) plus its own jitter, and shares the captured epoch.
			dd := d
			if lf.Jitter > 0 {
				dd += time.Duration(fs.frng.Int63n(int64(lf.Jitter) + 1))
			}
			nw.stats.Duplicated++
			nw.fault(msg, obs.FaultDup)
			nw.scheduleDelivery(dd, msg, epoch, known)
		}
	}
	nw.scheduleDelivery(d, msg, epoch, known)
}

// fault records one injected fault against msg's sender and the trace.
func (nw *Network) fault(msg p2p.Message, kind string) {
	if src := nw.node(msg.From); src != nil && src.ctr != nil {
		src.ctr.Faults.Add(1)
	}
	if nw.trace != nil {
		nw.trace.Emit(obs.NetFault(nw.sim.Now(), msg.From, msg.To, kind, msg.Type, msg.Size, msg.UID))
	}
}

func (nw *Network) deliver(msg p2p.Message, epoch uint64, known bool) {
	dst := nw.node(msg.To)
	if dst == nil || !dst.alive || (known && dst.epoch != epoch) {
		nw.stats.Dropped++
		if src := nw.node(msg.From); src != nil && src.ctr != nil {
			src.ctr.MsgsDrop.Add(1)
		}
		if nw.trace != nil {
			nw.trace.Emit(obs.NetDrop(nw.sim.Now(), msg.From, msg.To, msg.Type, msg.Size, msg.UID))
		}
		return
	}
	h := dst.handler(msg.Type)
	if h == nil {
		nw.stats.Unhandled++
		return
	}
	nw.stats.Delivered++
	if dst.ctr != nil {
		dst.ctr.MsgsRecv.Add(1)
	}
	h(dst, msg)
}

// simNode implements p2p.Node on the event loop. Handlers live in a small
// slice scanned linearly: protocols register a handful of message types, so
// the scan beats a per-node map in both space (a map with a few entries costs
// several hundred bytes before its buckets) and lookup time, and an idle node
// carries no map header at all.
type simNode struct {
	id       p2p.NodeID
	net      *Network
	alive    bool
	epoch    uint64 // bumped on failure; stale timers check it
	handlers []handlerReg
	ctr      *obs.NodeCounters // nil unless a Registry is attached
}

type handlerReg struct {
	typ string
	h   p2p.Handler
}

// handler returns the registered handler for msgType, nil if none.
func (n *simNode) handler(msgType string) p2p.Handler {
	for i := range n.handlers {
		if n.handlers[i].typ == msgType {
			return n.handlers[i].h
		}
	}
	return nil
}

func (n *simNode) ID() p2p.NodeID     { return n.id }
func (n *simNode) Now() time.Duration { return n.net.sim.Now() }
func (n *simNode) Rand() *rand.Rand   { return n.net.rng }
func (n *simNode) Alive() bool        { return n.alive }

func (n *simNode) Handle(msgType string, h p2p.Handler) {
	for i := range n.handlers {
		if n.handlers[i].typ == msgType {
			n.handlers[i].h = h
			return
		}
	}
	n.handlers = append(n.handlers, handlerReg{typ: msgType, h: h})
}

func (n *simNode) Send(msg p2p.Message) {
	if !n.alive {
		return // a crashed peer sends nothing
	}
	msg.From = n.id
	if n.ctr != nil {
		n.ctr.MsgsSent.Add(1)
		n.ctr.BytesSent.Add(int64(msg.Size))
	}
	n.net.send(msg)
}

func (n *simNode) After(d time.Duration, fn func()) p2p.CancelFunc {
	epoch := n.epoch
	cancel := n.net.sim.Schedule(d, func() {
		if n.alive && n.epoch == epoch {
			fn()
		}
	})
	return p2p.CancelFunc(cancel)
}
