package simnet

import (
	"math/rand"
	"time"

	"repro/internal/p2p"
)

// LinkFaults configures fault injection on one directed link: loss and
// duplication probabilities evaluated per message at send time, and a
// uniform latency jitter bound that reorders deliveries.
type LinkFaults struct {
	Loss   float64       // probability the message dies on the wire
	Dup    float64       // probability a second copy is delivered
	Jitter time.Duration // extra one-way latency, uniform in [0, Jitter]
}

func (lf LinkFaults) zero() bool { return lf.Loss == 0 && lf.Dup == 0 && lf.Jitter == 0 }

// merge takes the per-field maximum of two fault configurations — the
// pessimistic union used when a default and per-node entries overlap.
func (lf LinkFaults) merge(o LinkFaults) LinkFaults {
	if o.Loss > lf.Loss {
		lf.Loss = o.Loss
	}
	if o.Dup > lf.Dup {
		lf.Dup = o.Dup
	}
	if o.Jitter > lf.Jitter {
		lf.Jitter = o.Jitter
	}
	return lf
}

// Partition is a named bidirectional cut between two node sets over a time
// window. It activates at From and heals at Until (Until == 0 means the
// partition never heals). Messages crossing the cut while it is active are
// killed at send time.
type Partition struct {
	Name  string
	A, B  []p2p.NodeID
	From  time.Duration // activation (absolute sim time)
	Until time.Duration // heal time; 0 = never
}

// FaultPlan is a deterministic description of every fault the network will
// inject. All randomness comes from a dedicated stream seeded with Seed, so
// fault draws never perturb the simulation's main RNG: the same plan on the
// same workload reproduces byte-identical traces, and changing only Seed
// reshuffles which messages are hit without touching anything else.
//
// Per-link resolution: an exact Links[{from,to}] entry overrides everything
// for that directed link; otherwise the effective faults are the per-field
// maximum of Default, Nodes[from], and Nodes[to].
type FaultPlan struct {
	Seed       int64
	Default    LinkFaults
	Links      map[[2]p2p.NodeID]LinkFaults // directed-link override, wins entirely
	Nodes      map[p2p.NodeID]LinkFaults    // applies to either endpoint
	Partitions []Partition
}

// Empty reports whether the plan injects nothing at all.
func (p FaultPlan) Empty() bool {
	return p.Default.zero() && len(p.Links) == 0 && len(p.Nodes) == 0 && len(p.Partitions) == 0
}

// Shift returns a copy of the plan with every partition's activation and
// heal time offset by d. Plans are usually written relative to t=0; callers
// installing one mid-run shift by the current sim time.
func (p FaultPlan) Shift(d time.Duration) FaultPlan {
	out := p
	out.Partitions = make([]Partition, len(p.Partitions))
	for i, pt := range p.Partitions {
		pt.From += d
		if pt.Until != 0 {
			pt.Until += d
		}
		out.Partitions[i] = pt
	}
	return out
}

// faultState is the installed, runtime form of a FaultPlan: the dedicated
// fault RNG plus per-partition membership sets for O(1) cut checks.
type faultState struct {
	plan  FaultPlan
	frng  *rand.Rand
	parts []partState
}

type partState struct {
	p   Partition
	inA map[p2p.NodeID]bool
	inB map[p2p.NodeID]bool
}

func newFaultState(plan FaultPlan) *faultState {
	fs := &faultState{plan: plan, frng: rand.New(rand.NewSource(plan.Seed))}
	for _, pt := range plan.Partitions {
		ps := partState{p: pt,
			inA: make(map[p2p.NodeID]bool, len(pt.A)),
			inB: make(map[p2p.NodeID]bool, len(pt.B))}
		for _, id := range pt.A {
			ps.inA[id] = true
		}
		for _, id := range pt.B {
			ps.inB[id] = true
		}
		fs.parts = append(fs.parts, ps)
	}
	return fs
}

// link resolves the effective fault configuration for one directed link.
func (fs *faultState) link(from, to p2p.NodeID) LinkFaults {
	if lf, ok := fs.plan.Links[[2]p2p.NodeID{from, to}]; ok {
		return lf
	}
	lf := fs.plan.Default
	lf = lf.merge(fs.plan.Nodes[from])
	lf = lf.merge(fs.plan.Nodes[to])
	return lf
}

// partitioned reports whether an active partition cuts from->to at now.
func (fs *faultState) partitioned(from, to p2p.NodeID, now time.Duration) bool {
	for i := range fs.parts {
		ps := &fs.parts[i]
		if now < ps.p.From || (ps.p.Until != 0 && now >= ps.p.Until) {
			continue
		}
		if (ps.inA[from] && ps.inB[to]) || (ps.inB[from] && ps.inA[to]) {
			return true
		}
	}
	return false
}

// SetFaults installs plan on the network, replacing any previous plan (an
// empty plan clears injection). The fault RNG restarts from plan.Seed, so
// installing the same plan at the same point in two runs keeps them
// byte-identical.
func (nw *Network) SetFaults(plan FaultPlan) {
	if plan.Empty() {
		nw.faults = nil
		return
	}
	nw.faults = newFaultState(plan)
}
