package simnet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/p2p"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want FaultSpec
	}{
		{"loss=0.05", FaultSpec{Loss: 0.05}},
		{"dup=1", FaultSpec{Dup: 1}},
		{"jitter=20ms", FaultSpec{Jitter: 20 * time.Millisecond}},
		{"partition=10s", FaultSpec{PartDur: 10 * time.Second}},
		{"partition=10s@30s", FaultSpec{PartDur: 10 * time.Second, PartAt: 30 * time.Second}},
		{"seed=-3", FaultSpec{Seed: -3}},
		{
			"loss=0.05,dup=0.01,jitter=20ms,partition=10s@30s,seed=3",
			FaultSpec{
				Loss: 0.05, Dup: 0.01, Jitter: 20 * time.Millisecond,
				PartDur: 10 * time.Second, PartAt: 30 * time.Second, Seed: 3,
			},
		},
		// Whitespace around fields and reordered keys are accepted.
		{" jitter=1ms , loss=0.2 ", FaultSpec{Loss: 0.2, Jitter: time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseFaultSpec(c.in)
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", c.in, err)
			continue
		}
		if *got != c.want {
			t.Errorf("ParseFaultSpec(%q)=%+v, want %+v", c.in, *got, c.want)
		}
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string // the message must mention this
	}{
		{"", "empty fault spec"},
		{"   ", "empty fault spec"},
		{"loss", "want key=value"},
		{"loss=", "want key=value"},
		{"=0.5", "want key=value"},
		{"loss=0.1,loss=0.2", "given twice"},
		{"loss=abc", "loss"},
		{"loss=1.5", "outside [0,1]"},
		{"dup=-0.1", "outside [0,1]"},
		{"jitter=5", "jitter"}, // bare number: not a duration
		{"jitter=-5ms", "negative"},
		{"partition=bogus", "bad duration"},
		{"partition=0s", "must be positive"},
		{"partition=10s@nope", "bad activation time"},
		{"partition=10s@-1s", "negative activation time"},
		{"seed=1.5", "seed"},
		{"latency=5ms", "want loss, dup, jitter, partition, or seed"},
	}
	for _, c := range cases {
		_, err := ParseFaultSpec(c.in)
		if err == nil {
			t.Errorf("ParseFaultSpec(%q): want error, got nil", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("ParseFaultSpec(%q) error %q: want mention of %q", c.in, err, c.errPart)
		}
	}
}

func TestFaultSpecStringRoundTrip(t *testing.T) {
	specs := []FaultSpec{
		{Loss: 0.05},
		{Loss: 0.2, Dup: 0.01, Jitter: 20 * time.Millisecond},
		{PartDur: 10 * time.Second, PartAt: 30 * time.Second, Seed: 7},
		{Loss: 0.5, Dup: 1, Jitter: time.Second, PartDur: time.Minute, PartAt: time.Millisecond, Seed: -12},
	}
	for _, s := range specs {
		s := s
		str := s.String()
		back, err := ParseFaultSpec(str)
		if err != nil {
			t.Errorf("Parse(String()=%q): %v", str, err)
			continue
		}
		if *back != s {
			t.Errorf("round trip %+v -> %q -> %+v", s, str, *back)
		}
	}
}

func TestFaultSpecPlan(t *testing.T) {
	spec := FaultSpec{
		Loss: 0.1, Dup: 0.2, Jitter: 3 * time.Millisecond,
		PartDur: 10 * time.Second, PartAt: 30 * time.Second, Seed: 5,
	}
	peers := []p2p.NodeID{0, 1, 2, 3, 4}
	plan := spec.Plan(peers)
	if plan.Seed != 5 {
		t.Fatalf("Seed=%d", plan.Seed)
	}
	want := LinkFaults{Loss: 0.1, Dup: 0.2, Jitter: 3 * time.Millisecond}
	if plan.Default != want {
		t.Fatalf("Default=%+v, want %+v", plan.Default, want)
	}
	if len(plan.Partitions) != 1 {
		t.Fatalf("Partitions=%v", plan.Partitions)
	}
	p := plan.Partitions[0]
	if len(p.A) != 2 || len(p.B) != 3 {
		t.Fatalf("partition sides %v | %v, want 2|3 split", p.A, p.B)
	}
	if p.From != 30*time.Second || p.Until != 40*time.Second {
		t.Fatalf("window [%v, %v)", p.From, p.Until)
	}

	// Without a partition duration — or with too few peers to split — no
	// partition is emitted.
	if got := (&FaultSpec{Loss: 0.1}).Plan(peers); len(got.Partitions) != 0 {
		t.Fatalf("unexpected partition: %v", got.Partitions)
	}
	if got := spec.Plan(peers[:1]); len(got.Partitions) != 0 {
		t.Fatalf("partition over one peer: %v", got.Partitions)
	}
}

func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"loss=0.05",
		"loss=0.05,dup=0.01,jitter=20ms,partition=10s@30s,seed=3",
		"partition=10s@30s",
		"jitter=1h2m3s",
		"seed=-9223372036854775808",
		"loss=0.1,loss=0.2",
		"bogus=1",
		"=,=,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseFaultSpec(in)
		if err != nil {
			return
		}
		// Every accepted spec is internally valid and round-trips through
		// its canonical String form.
		if spec.Loss < 0 || spec.Loss > 1 || spec.Dup < 0 || spec.Dup > 1 {
			t.Fatalf("accepted out-of-range probability: %+v", spec)
		}
		if spec.Jitter < 0 || spec.PartDur < 0 || spec.PartAt < 0 {
			t.Fatalf("accepted negative duration: %+v", spec)
		}
		if *spec == (FaultSpec{}) {
			return // all-zero spec (e.g. "loss=0") has no canonical form
		}
		back, err := ParseFaultSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", spec.String(), err)
		}
		if *back != *spec {
			t.Fatalf("round trip %+v -> %q -> %+v", spec, spec.String(), back)
		}
	})
}
