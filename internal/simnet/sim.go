// Package simnet is SpiderNet's deterministic discrete-event simulation
// runtime: a virtual clock with an event heap, and a message-passing network
// of peers implementing the p2p.Node interface. It replaces the paper's C++
// event-driven P2P overlay simulator.
package simnet

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event scheduler over a virtual clock. It is not safe for
// concurrent use: everything runs in the single simulation goroutine, which
// is what makes runs bit-for-bit reproducible.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

type event struct {
	at        time.Duration
	seq       uint64 // FIFO tie-break for simultaneous events
	fn        func()
	cancelled bool
}

// NewSim returns a simulator with the clock at zero and no pending events.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Schedule runs fn after delay d of virtual time. Negative delays are
// clamped to zero. The returned function cancels the event if it has not yet
// fired.
func (s *Sim) Schedule(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	e := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return func() { e.cancelled = true }
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run executes all events with timestamps <= until, then advances the clock
// to until.
func (s *Sim) Run(until time.Duration) {
	for s.events.Len() > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		if e.cancelled {
			continue
		}
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle executes events until none remain. Protocols with periodic
// timers never go idle; use Run with a horizon for those.
func (s *Sim) RunUntilIdle() {
	for s.Step() {
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
