// Package simnet is SpiderNet's deterministic discrete-event simulation
// runtime: a virtual clock with an event heap, and a message-passing network
// of peers implementing the p2p.Node interface. It replaces the paper's C++
// event-driven P2P overlay simulator.
package simnet

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event scheduler over a virtual clock. It is not safe for
// concurrent use: everything runs in the single simulation goroutine, which
// is what makes runs bit-for-bit reproducible.
//
// The event queue is an index-tracked binary heap: every queued event knows
// its own heap slot, so cancellation removes the event immediately (no
// tombstones accumulate across a long soak) and Pending is the heap length.
// Fired and cancelled events return to a freelist and are reused by later
// Schedule calls, so the steady-state Schedule→fire path allocates only the
// returned cancel closure — and the ScheduleCall path not even that.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	free   []*event
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
	// call/arg is the allocation-free alternative to fn used by
	// ScheduleCall: a long-lived function value applied to a per-event
	// argument, so the hot send→deliver path creates no closure. Exactly
	// one of fn and call is set.
	call func(any)
	arg  any
	idx  int    // heap slot; -1 once fired or cancelled
	gen  uint64 // incremented on recycle so stale cancel closures are no-ops
}

// NewSim returns a simulator with the clock at zero and no pending events.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending returns the number of scheduled events. Cancelled events are
// removed from the queue at cancel time, so this is the live count, O(1).
func (s *Sim) Pending() int { return len(s.events) }

// Schedule runs fn after delay d of virtual time. Negative delays are
// clamped to zero. The returned function cancels the event if it has not yet
// fired; calling it after the event fired (or twice) is a no-op.
func (s *Sim) Schedule(d time.Duration, fn func()) func() {
	e := s.enqueue(d)
	e.fn = fn
	gen := e.gen
	return func() { s.cancel(e, gen) }
}

// ScheduleCall runs call(arg) after delay d of virtual time. It is the
// non-cancellable, allocation-free flavor of Schedule for high-volume event
// sources (message delivery): the caller supplies one long-lived call
// function and a per-event argument, so no closure and no cancel func are
// allocated. Ordering is shared with Schedule — one clock, one sequence
// counter, one heap.
func (s *Sim) ScheduleCall(d time.Duration, call func(any), arg any) {
	e := s.enqueue(d)
	e.call = call
	e.arg = arg
}

// enqueue takes an event off the freelist (or allocates one), stamps it, and
// pushes it on the heap. The caller fills in the payload.
func (s *Sim) enqueue(d time.Duration) *event {
	if d < 0 {
		d = 0
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = s.now + d
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// cancel removes e from the queue if it is still the incarnation the cancel
// closure was minted for. The generation check makes stale closures (held
// across the event firing and its struct being reused) harmless.
func (s *Sim) cancel(e *event, gen uint64) {
	if e.gen != gen || e.idx < 0 {
		return
	}
	heap.Remove(&s.events, e.idx)
	s.recycle(e)
}

// recycle retires a fired or cancelled event onto the freelist.
func (s *Sim) recycle(e *event) {
	e.fn = nil
	e.call = nil
	e.arg = nil
	e.idx = -1
	e.gen++
	s.free = append(s.free, e)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	fn, call, arg := e.fn, e.call, e.arg
	s.recycle(e)
	if fn != nil {
		fn()
	} else {
		call(arg)
	}
	return true
}

// Run executes all events with timestamps <= until, then advances the clock
// to until.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		fn, call, arg := e.fn, e.call, e.arg
		s.recycle(e)
		if fn != nil {
			fn()
		} else {
			call(arg)
		}
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle executes events until none remain. Protocols with periodic
// timers never go idle; use Run with a horizon for those.
func (s *Sim) RunUntilIdle() {
	for s.Step() {
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
