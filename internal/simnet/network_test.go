package simnet

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
)

func newTestNet(nodes int) (*Network, []p2p.Node) {
	sim := NewSim()
	nw := NewNetwork(sim, ConstantLatency(10*time.Millisecond), rand.New(rand.NewSource(1)))
	ns := make([]p2p.Node, nodes)
	for i := range ns {
		ns[i] = nw.AddNode(p2p.NodeID(i))
	}
	return nw, ns
}

func TestSendDeliversWithLatency(t *testing.T) {
	nw, ns := newTestNet(2)
	var gotAt time.Duration
	var got p2p.Message
	ns[1].Handle("ping", func(n p2p.Node, msg p2p.Message) {
		gotAt = n.Now()
		got = msg
	})
	ns[0].Send(p2p.Message{Type: "ping", To: 1, Size: 100, Payload: "hello"})
	nw.Sim().RunUntilIdle()
	if gotAt != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", gotAt)
	}
	if got.From != 0 || got.To != 1 || got.Payload != "hello" {
		t.Fatalf("msg=%+v", got)
	}
	st := nw.Stats()
	if st.MessagesSent != 1 || st.Delivered != 1 || st.BytesSent != 100 {
		t.Fatalf("stats=%+v", st)
	}
	if st.ByType["ping"] != 1 {
		t.Fatalf("ByType=%v", st.ByType)
	}
}

func TestSendToFailedNodeDropped(t *testing.T) {
	nw, ns := newTestNet(2)
	delivered := false
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { delivered = true })
	nw.Fail(1)
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if delivered {
		t.Fatal("message delivered to failed node")
	}
	if nw.Stats().Dropped != 1 {
		t.Fatalf("stats=%+v", nw.Stats())
	}
}

func TestInFlightMessageToFailingNodeDropped(t *testing.T) {
	nw, ns := newTestNet(2)
	delivered := false
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { delivered = true })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	// Fail the destination while the message is in flight.
	nw.Sim().Schedule(5*time.Millisecond, func() { nw.Fail(1) })
	nw.Sim().RunUntilIdle()
	if delivered {
		t.Fatal("in-flight message delivered to node that failed before arrival")
	}
}

func TestFailedNodeSendsNothing(t *testing.T) {
	nw, ns := newTestNet(2)
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) {})
	nw.Fail(0)
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if nw.Stats().MessagesSent != 0 {
		t.Fatal("failed node transmitted a message")
	}
}

func TestRecoverRestoresDelivery(t *testing.T) {
	nw, ns := newTestNet(2)
	count := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { count++ })
	nw.Fail(1)
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	nw.Recover(1)
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if count != 1 {
		t.Fatalf("count=%d, want 1 (only post-recovery message)", count)
	}
}

func TestTimersDieWithNode(t *testing.T) {
	nw, ns := newTestNet(1)
	fired := false
	ns[0].After(20*time.Millisecond, func() { fired = true })
	nw.Sim().Schedule(5*time.Millisecond, func() { nw.Fail(0) })
	nw.Sim().RunUntilIdle()
	if fired {
		t.Fatal("timer fired on failed node")
	}
}

func TestTimersFromBeforeFailureStayDeadAfterRecovery(t *testing.T) {
	nw, ns := newTestNet(1)
	fired := false
	ns[0].After(30*time.Millisecond, func() { fired = true })
	nw.Sim().Schedule(5*time.Millisecond, func() { nw.Fail(0) })
	nw.Sim().Schedule(10*time.Millisecond, func() { nw.Recover(0) })
	nw.Sim().RunUntilIdle()
	if fired {
		t.Fatal("pre-failure timer fired after recovery (stale epoch)")
	}
}

func TestTimerCancel(t *testing.T) {
	nw, ns := newTestNet(1)
	fired := false
	cancel := ns[0].After(10*time.Millisecond, func() { fired = true })
	cancel()
	nw.Sim().RunUntilIdle()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestUnhandledMessageCounted(t *testing.T) {
	nw, ns := newTestNet(2)
	ns[0].Send(p2p.Message{Type: "mystery", To: 1})
	nw.Sim().RunUntilIdle()
	if nw.Stats().Unhandled != 1 {
		t.Fatalf("stats=%+v", nw.Stats())
	}
}

func TestHandlerReplacement(t *testing.T) {
	nw, ns := newTestNet(2)
	which := 0
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { which = 1 })
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) { which = 2 })
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	if which != 2 {
		t.Fatalf("which=%d, want replacement handler", which)
	}
}

func TestResetStats(t *testing.T) {
	nw, ns := newTestNet(2)
	ns[1].Handle("ping", func(p2p.Node, p2p.Message) {})
	ns[0].Send(p2p.Message{Type: "ping", To: 1})
	nw.Sim().RunUntilIdle()
	nw.ResetStats()
	st := nw.Stats()
	if st.MessagesSent != 0 || st.Delivered != 0 || len(st.ByType) != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestRequestReplyRoundTrip(t *testing.T) {
	nw, ns := newTestNet(2)
	var replyAt time.Duration
	ns[1].Handle("req", func(n p2p.Node, msg p2p.Message) {
		n.Send(p2p.Message{Type: "resp", To: msg.From})
	})
	ns[0].Handle("resp", func(n p2p.Node, msg p2p.Message) { replyAt = n.Now() })
	ns[0].Send(p2p.Message{Type: "req", To: 1})
	nw.Sim().RunUntilIdle()
	if replyAt != 20*time.Millisecond {
		t.Fatalf("round trip completed at %v, want 20ms", replyAt)
	}
}

func TestAliveAndNumNodes(t *testing.T) {
	nw, _ := newTestNet(3)
	if nw.NumNodes() != 3 {
		t.Fatalf("NumNodes=%d", nw.NumNodes())
	}
	if !nw.Alive(0) || nw.Alive(99) {
		t.Fatal("Alive misreported")
	}
	nw.Fail(0)
	if nw.Alive(0) {
		t.Fatal("failed node reported alive")
	}
	if nw.Node(0) == nil || nw.Node(99) != nil {
		t.Fatal("Node lookup misbehaved")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	nw, _ := newTestNet(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	nw.AddNode(0)
}
