package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// cacheOverlay builds the same mesh overlay deterministically with a given
// route-cache bound, so tests can compare behavior across bounds.
func cacheOverlay(t testing.TB, peers, cacheSize int) *Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := GeneratePowerLaw(600, 2, 2, 30, rng)
	return BuildOverlay(g, OverlayConfig{
		NumPeers:       peers,
		Kind:           Mesh,
		Degree:         4,
		CapMin:         1000,
		CapMax:         5000,
		RouteCacheSize: cacheSize,
	}, rng)
}

// pathString renders a path for byte-exact comparison.
func pathString(p Path, ok bool) string {
	return fmt.Sprintf("ok=%v peers=%v links=%v lat=%.9f", ok, p.Peers, p.Links, p.Latency)
}

// TestRouteCacheEvictionDeterministic drives the identical route sequence
// through a K=2 cache (evicting on nearly every source change) and an
// unbounded one, and requires byte-identical paths: the bound may change
// memory and recomputation, never results.
func TestRouteCacheEvictionDeterministic(t *testing.T) {
	tight := cacheOverlay(t, 80, 2)
	unbounded := cacheOverlay(t, 80, -1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 600; i++ {
		a, b := rng.Intn(80), rng.Intn(80)
		pt, okt := tight.Route(a, b)
		pu, oku := unbounded.Route(a, b)
		if got, want := pathString(pt, okt), pathString(pu, oku); got != want {
			t.Fatalf("route %d→%d diverges at K=2:\n  K=2: %s\n  K=∞: %s", a, b, got, want)
		}
	}
	if len(tight.routeCache) > 2 {
		t.Fatalf("K=2 cache holds %d tables", len(tight.routeCache))
	}
}

// TestRouteCacheMissCorrect compares every route served after the cache is
// full — truncated fast path and evict-and-recompute alike — against an
// uncached full Dijkstra oracle.
func TestRouteCacheMissCorrect(t *testing.T) {
	o := cacheOverlay(t, 80, 3)
	// Fill the cache from three sources, then route from every other source:
	// each of these is a cache miss on first touch.
	for src := 0; src < 3; src++ {
		o.Route(src, 40)
	}
	for a := 3; a < 80; a++ {
		for _, b := range []int{0, a % 7, 79 - a%13, 40} {
			if a == b {
				continue
			}
			got, gok := o.Route(a, b)
			oracle := o.dijkstra(a) // fresh full table, bypassing the cache
			want, wok := o.pathFrom(oracle, a, b)
			if pathString(got, gok) != pathString(want, wok) {
				t.Fatalf("route %d→%d: cache-miss path %s != oracle %s",
					a, b, pathString(got, gok), pathString(want, wok))
			}
		}
	}
}

// TestRouteCacheBounded checks the LRU never exceeds its bound no matter how
// many distinct sources probe, and that the default bound applies when the
// config leaves the size zero.
func TestRouteCacheBounded(t *testing.T) {
	o := cacheOverlay(t, 80, 5)
	for a := 0; a < 80; a++ {
		for b := 0; b < 80; b += 11 {
			o.Route(a, b)
		}
	}
	if len(o.routeCache) > 5 {
		t.Fatalf("cache holds %d tables, bound is 5", len(o.routeCache))
	}
	def := cacheOverlay(t, 10, 0)
	if def.routeCap != DefaultRouteCacheSize {
		t.Fatalf("zero RouteCacheSize → routeCap %d, want %d", def.routeCap, DefaultRouteCacheSize)
	}
}

// TestRouteCacheInvalidatedByAddPeer verifies AddPeer drops every cached
// table: post-arrival routes must see the newcomer and match a fresh oracle.
func TestRouteCacheInvalidatedByAddPeer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GeneratePowerLaw(600, 2, 2, 30, rng)
	o := BuildOverlay(g, OverlayConfig{
		NumPeers: 60, Kind: Mesh, Degree: 4,
		CapMin: 1000, CapMax: 5000, RouteCacheSize: 4,
	}, rng)
	// Warm the cache.
	for a := 0; a < 8; a++ {
		o.Route(a, 30)
	}
	// Pick an unused IP node for the newcomer.
	used := make(map[int]bool)
	for p := 0; p < o.N(); p++ {
		used[o.PeerIP(p)] = true
	}
	ip := -1
	for v := 0; v < g.N(); v++ {
		if !used[v] {
			ip = v
			break
		}
	}
	np := o.AddPeer(g, ip, 4, rng)
	if len(o.routeCache) != 0 {
		t.Fatalf("AddPeer left %d cached tables", len(o.routeCache))
	}
	// Every cached-before source must now route to the new peer, and all
	// routes must match a fresh oracle over the grown overlay.
	for a := 0; a < 8; a++ {
		got, gok := o.Route(a, np)
		oracle := o.dijkstra(a)
		want, wok := o.pathFrom(oracle, a, np)
		if !gok {
			t.Fatalf("no route %d→new peer %d after AddPeer", a, np)
		}
		if pathString(got, gok) != pathString(want, wok) {
			t.Fatalf("stale route %d→%d after AddPeer: %s != oracle %s",
				a, np, pathString(got, gok), pathString(want, wok))
		}
	}
}

// TestRouteNearUnreachableVerdict exercises the truncated search's
// drained-component verdict: with the cache full, a route between different
// components must return ok=false without a full-table fallback changing the
// answer.
func TestRouteCacheDisconnectedComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GeneratePowerLaw(300, 2, 2, 30, rng)
	o := BuildOverlay(g, OverlayConfig{
		NumPeers: 40, Kind: RandomOverlay, Degree: 2,
		CapMin: 1000, CapMax: 5000, RouteCacheSize: 1,
	}, rng)
	// Sever peer 0 from everything by clearing its adjacency, then refreeze.
	for _, idx := range o.adj[0] {
		l := &o.links[idx]
		other := l.u
		if other == 0 {
			other = l.v
		}
		keep := o.adj[other][:0]
		for _, li := range o.adj[other] {
			if li != idx {
				keep = append(keep, li)
			}
		}
		o.adj[other] = keep
	}
	o.adj[0] = nil
	o.cacheReset()
	o.loff = nil
	o.Route(1, 2) // fill the single-slot cache from another source
	for a := 3; a < 10; a++ {
		if _, ok := o.Route(a, 0); ok {
			t.Fatalf("route %d→0 should not exist after severing peer 0", a)
		}
		if _, ok := o.Route(0, a); ok {
			t.Fatalf("route 0→%d should not exist after severing peer 0", a)
		}
	}
}
