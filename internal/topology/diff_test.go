package topology

// Differential harness for the CSR rewrite: a frozen copy of the legacy
// slice-of-slices representation lives here as the reference implementation,
// and randomized graphs built edge-for-edge in both representations must
// agree exactly — degree histograms, PairDistances to the last bit, Route
// paths tie-broken identically. "Exactly" is the point: the CSR arrays pack
// half-edges in adjacency insertion order precisely so that relaxation order,
// float folds, and heap behavior are unchanged, and this harness is what
// certifies that claim instead of vibes.

import (
	"math"
	"math/rand"
	"testing"
)

// legacyGraph is the pre-CSR Graph: per-node []Edge adjacency plus a
// pair-keyed edge-set index. Kept verbatim (modulo lowercased names) as the
// differential reference.
type legacyGraph struct {
	n     int
	m     int
	adj   [][]Edge
	edges map[uint64]struct{}
}

func newLegacyGraph(n int) *legacyGraph {
	return &legacyGraph{n: n, adj: make([][]Edge, n), edges: make(map[uint64]struct{})}
}

func (g *legacyGraph) addEdge(u, v int, latency float64) {
	if u == v {
		return
	}
	key := pairKey(u, v)
	if _, dup := g.edges[key]; dup {
		return
	}
	g.edges[key] = struct{}{}
	g.adj[u] = append(g.adj[u], Edge{To: v, Latency: latency})
	g.adj[v] = append(g.adj[v], Edge{To: u, Latency: latency})
	g.m++
}

func (g *legacyGraph) degree(u int) int { return len(g.adj[u]) }

func (g *legacyGraph) dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	var h nodeHeap
	h.init(g.n)
	h.update(dist, int32(src))
	for len(h.nodes) > 0 {
		u := h.pop(dist)
		du := dist[u]
		for _, e := range g.adj[u] {
			if nd := du + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				h.update(dist, int32(e.To))
			}
		}
	}
	return dist
}

func (g *legacyGraph) pairDistances(nodes []int) [][]float64 {
	out := make([][]float64, len(nodes))
	for i, src := range nodes {
		dist := g.dijkstra(src)
		row := make([]float64, len(nodes))
		for j, dst := range nodes {
			row[j] = dist[dst]
		}
		out[i] = row
	}
	return out
}

func (g *legacyGraph) degreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.degree(u)]++
	}
	return h
}

// legacyRoute recomputes an overlay route with the pre-CSR algorithm: distPQ
// Dijkstra over the mutable o.adj link-index lists (which the frozen overlay
// retains), then the same backward prev-chain walk. Reading unexported fields
// is deliberate — the reference implementation must see exactly the links the
// CSR was packed from.
func legacyRoute(o *Overlay, a, b int) (Path, bool) {
	if a == b {
		return Path{Peers: []int{a}, Latency: 0}, true
	}
	n := o.N()
	dist := make([]float64, n)
	prevPeer := make([]int, n)
	prevLink := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevPeer[i] = -1
		prevLink[i] = -1
	}
	dist[a] = 0
	var pq distPQ
	pq.push(distItem{node: a, dist: 0})
	for pq.len() > 0 {
		it := pq.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, idx := range o.adj[it.node] {
			l := o.links[idx]
			to := l.u
			if to == it.node {
				to = l.v
			}
			if nd := it.dist + l.latency; nd < dist[to] {
				dist[to] = nd
				prevPeer[to] = it.node
				prevLink[to] = idx
				pq.push(distItem{node: to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return Path{}, false
	}
	var peers, links []int
	for at := b; at != a; at = prevPeer[at] {
		peers = append(peers, at)
		links = append(links, prevLink[at])
	}
	peers = append(peers, a)
	for i, j := 0, len(peers)-1; i < j; i, j = i+1, j-1 {
		peers[i], peers[j] = peers[j], peers[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return Path{Peers: peers, Links: links, Latency: dist[b]}, true
}

// buildBoth replays one deterministic edge script into both representations.
// Duplicate and self-loop attempts are part of the script on purpose: the
// dedup behavior must match too.
func buildBoth(rng *rand.Rand, n, attempts int) (*Graph, *legacyGraph) {
	g := NewGraph(n)
	lg := newLegacyGraph(n)
	// Chain backbone so most of the graph is connected (mirrors GenerateRandom).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		l := 1 + rng.Float64()*20
		g.AddEdge(perm[i-1], perm[i], l)
		lg.addEdge(perm[i-1], perm[i], l)
	}
	for i := 0; i < attempts; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		l := 1 + rng.Float64()*20
		g.AddEdge(u, v, l)
		lg.addEdge(u, v, l)
	}
	g.Freeze()
	return g, lg
}

func diffCheck(t *testing.T, g *Graph, lg *legacyGraph, rng *rand.Rand) {
	t.Helper()
	if g.M() != lg.m {
		t.Fatalf("edge counts differ: CSR %d, legacy %d", g.M(), lg.m)
	}

	// Degree histograms: the legacy map and the CSR sorted slice must hold
	// the same distribution.
	lh := lg.degreeHistogram()
	ch := g.DegreeHistogram()
	if len(ch) != len(lh) {
		t.Fatalf("histogram sizes differ: CSR %d rows, legacy %d", len(ch), len(lh))
	}
	for _, row := range ch {
		if lh[row.Degree] != row.Count {
			t.Fatalf("degree %d: CSR count %d, legacy %d", row.Degree, row.Count, lh[row.Degree])
		}
	}

	// PairDistances: bit-exact, +Inf included.
	k := g.N() / 4
	if k < 2 {
		k = 2
	}
	if k > 40 {
		k = 40
	}
	nodes := rng.Perm(g.N())[:k]
	got := g.PairDistances(nodes)
	want := lg.pairDistances(nodes)
	for i := range nodes {
		for j := range nodes {
			if got[i][j] != want[i][j] && !(math.IsInf(got[i][j], 1) && math.IsInf(want[i][j], 1)) {
				t.Fatalf("PairDistances[%d][%d]: CSR %v, legacy %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	// Neighbors must come back in identical order: insertion order is the
	// contract the whole byte-identical claim rests on.
	for u := 0; u < g.N(); u++ {
		ge, le := g.Neighbors(u), lg.adj[u]
		if len(ge) != len(le) {
			t.Fatalf("node %d: CSR degree %d, legacy %d", u, len(ge), len(le))
		}
		for i := range ge {
			if ge[i] != le[i] {
				t.Fatalf("node %d half-edge %d: CSR %+v, legacy %+v", u, i, ge[i], le[i])
			}
		}
	}
}

func TestDiffGraphAgainstLegacy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		g, lg := buildBoth(rng, n, n*3)
		diffCheck(t, g, lg, rng)
	}
}

// TestDiffGeneratedGraphs replays the generators' output into the legacy
// representation edge-for-edge (via Neighbors, which preserves insertion
// order within each node but not globally) and checks the order-insensitive
// agreements; the order-sensitive ones are covered by buildBoth scripts.
func TestDiffGeneratedGraphs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := GeneratePowerLaw(150+int(seed)*50, 2, 2, 30, rng)
		lg := newLegacyGraph(g.N())
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				lg.addEdge(u, e.To, e.Latency)
			}
		}
		if lg.m != g.M() {
			t.Fatalf("seed %d: replay lost edges: %d vs %d", seed, lg.m, g.M())
		}
		lh := lg.degreeHistogram()
		for _, row := range g.DegreeHistogram() {
			if lh[row.Degree] != row.Count {
				t.Fatalf("seed %d degree %d: CSR %d, legacy %d", seed, row.Degree, row.Count, lh[row.Degree])
			}
		}
	}
}

// TestDiffRoutePaths: the frozen link-CSR router must return the identical
// Path — peers, link indices, latency — as the legacy slice-walking router,
// for every source/destination pair, on every overlay kind.
func TestDiffRoutePaths(t *testing.T) {
	for _, kind := range []OverlayKind{Mesh, PowerLawOverlay, RandomOverlay} {
		rng := rand.New(rand.NewSource(42))
		g := GeneratePowerLaw(400, 2, 2, 30, rng)
		o := BuildOverlay(g, OverlayConfig{NumPeers: 60, Kind: kind, Degree: 3}, rng)
		for a := 0; a < o.N(); a++ {
			for b := 0; b < o.N(); b++ {
				got, gok := o.Route(a, b)
				want, wok := legacyRoute(o, a, b)
				if gok != wok {
					t.Fatalf("%v route %d->%d: CSR ok=%v, legacy ok=%v", kind, a, b, gok, wok)
				}
				if !gok {
					continue
				}
				if got.Latency != want.Latency || len(got.Peers) != len(want.Peers) {
					t.Fatalf("%v route %d->%d: CSR %+v, legacy %+v", kind, a, b, got, want)
				}
				for i := range got.Peers {
					if got.Peers[i] != want.Peers[i] {
						t.Fatalf("%v route %d->%d peer %d: CSR %v, legacy %v", kind, a, b, i, got.Peers, want.Peers)
					}
				}
				for i := range got.Links {
					if got.Links[i] != want.Links[i] {
						t.Fatalf("%v route %d->%d link %d: CSR %v, legacy %v", kind, a, b, i, got.Links, want.Links)
					}
				}
			}
		}
	}
}

// TestDiffCompactMesh: with identical seeds the compact (matrix-free) mesh
// builder must produce the same peers, the same links in the same order with
// the same capacities, and the same routes as the full-matrix builder —
// the truncated per-peer Dijkstra consumes no RNG and settles the same
// k-nearest sets the full sort finds.
func TestDiffCompactMesh(t *testing.T) {
	const seed = 99
	rngG := rand.New(rand.NewSource(seed))
	g := GeneratePowerLaw(2000, 2, 2, 30, rngG)

	full := BuildOverlay(g, OverlayConfig{NumPeers: 200, Kind: Mesh, Degree: 4}, rand.New(rand.NewSource(7)))
	comp := BuildOverlay(g, OverlayConfig{NumPeers: 200, Kind: Mesh, Degree: 4, Compact: true}, rand.New(rand.NewSource(7)))

	if comp.Compact() == false || full.Compact() == true {
		t.Fatal("Compact() flags wrong")
	}
	for p := 0; p < full.N(); p++ {
		if full.PeerIP(p) != comp.PeerIP(p) {
			t.Fatalf("peer %d hosts differ: %d vs %d", p, full.PeerIP(p), comp.PeerIP(p))
		}
	}
	if len(full.links) != len(comp.links) {
		t.Fatalf("link counts differ: full %d, compact %d", len(full.links), len(comp.links))
	}
	for i := range full.links {
		if full.links[i] != comp.links[i] {
			t.Fatalf("link %d differs: full %+v, compact %+v", i, full.links[i], comp.links[i])
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(full.N()), rng.Intn(full.N())
		fp, fok := full.Route(a, b)
		cp, cok := comp.Route(a, b)
		if fok != cok || (fok && fp.Latency != cp.Latency) {
			t.Fatalf("route %d->%d: full (%v,%v), compact (%v,%v)", a, b, fp, fok, cp, cok)
		}
		// Linked pairs: the direct link carries the IP-shortest latency, and
		// by the triangle inequality no overlay detour beats it — so the
		// compact Latency fallback must match the full-matrix answer, modulo
		// a ULP: a detour folds different addends, and float addition is not
		// associative, so Route can come in one bit under the direct link.
		if fl, cl := full.Latency(a, b), comp.Latency(a, b); full.hasLink(a, b) &&
			math.Abs(fl-cl) > 1e-12*fl {
			t.Fatalf("linked latency %d-%d: full %v, compact %v", a, b, fl, cl)
		}
	}
}

// FuzzDiffGraph drives the same differential through the fuzzer: arbitrary
// seeds generate edge scripts replayed into both representations.
func FuzzDiffGraph(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(424242))
	f.Add(int64(-99))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		g, lg := buildBoth(rng, n, n*2)
		diffCheck(t, g, lg, rng)
	})
}
