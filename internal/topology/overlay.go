package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// OverlayKind selects how overlay links between peers are constructed.
type OverlayKind int

const (
	// Mesh connects each peer to its k latency-nearest peers
	// (a topologically-aware overlay mesh).
	Mesh OverlayKind = iota
	// PowerLawOverlay grows a preferential-attachment overlay over the peers.
	PowerLawOverlay
	// RandomOverlay connects peers with a random connected graph.
	RandomOverlay
)

// String names the overlay kind.
func (k OverlayKind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case PowerLawOverlay:
		return "power-law"
	case RandomOverlay:
		return "random"
	default:
		return fmt.Sprintf("overlaykind(%d)", int(k))
	}
}

type overlayLink struct {
	u, v     int
	latency  float64 // ms, from IP-layer shortest path between u and v
	capacity float64 // kbps
	avail    float64 // kbps still unallocated
}

// Path is an overlay-layer route between two peers: the peer sequence, the
// indices of the traversed overlay links, and the total latency.
type Path struct {
	Peers   []int
	Links   []int
	Latency float64
}

// Overlay is the P2P service overlay: a set of peers (each mapped to an IP
// node), overlay links with bandwidth capacities, and latency/routing
// oracles. Overlay links model the application-level connections data
// streams travel on; control messages between any two peers use the direct
// IP-layer latency.
//
// Like Graph, the link set has a mutable build phase and a frozen CSR form:
// routing consumes packed per-peer (neighbor, link, latency) arrays built
// lazily on the first Route and invalidated by AddPeer.
type Overlay struct {
	peerIP  []int
	lat     [][]float64 // pairwise peer latency over IP shortest paths; nil in compact mode
	links   []overlayLink
	adj     [][]int             // per-peer incident link indices
	linkSet map[uint64]struct{} // unordered peer pairs with a link, for O(1) hasLink

	capMin, capMax float64 // link capacity range, for peers added later

	// Bounded per-source route cache: an LRU of at most routeCap full
	// Dijkstra tables (routeCap < 0 = unbounded), so steady-state memory is
	// O(routeCap·peers) no matter how many sources probe. Once the cache is
	// full, near destinations are answered by a truncated search over the
	// trunc scratch state instead of evicting a table — see Route.
	routeCap   int
	routeCache map[int]*routeSlot
	lruHead    *routeSlot // most recently used
	lruTail    *routeSlot // next eviction victim
	trunc      *truncRouteState

	// Frozen link CSR: peer p's incident links occupy [loff[p], loff[p+1])
	// in lto (the far endpoint), llink (the link index), and llat (the link
	// latency), packed in adj insertion order so routing relaxes in exactly
	// the order the slice-of-slices representation did.
	loff  []int32
	lto   []int32
	llink []int32
	llat  []float64
}

type routeTable struct {
	dist     []float64
	prevPeer []int
	prevLink []int
}

// routeSlot is one LRU entry: a full per-source routing table threaded on the
// recency list.
type routeSlot struct {
	src        int
	rt         routeTable
	prev, next *routeSlot // prev = more recent
}

// truncRouteState is the reusable scratch for the truncated-Dijkstra fast
// path: epoch-stamped arrays make per-call initialization O(touched) instead
// of O(peers), and the priority queue's backing array is recycled.
type truncRouteState struct {
	dist     []float64
	prevPeer []int32
	prevLink []int32
	stamp    []uint32
	epoch    uint32
	pq       distPQ
}

// DefaultRouteCacheSize is the route-cache bound applied when
// OverlayConfig.RouteCacheSize is zero. It exceeds the source count of every
// workload the figure pipeline runs, so bounding the cache changes neither
// behavior (routes are cache-independent by construction) nor performance on
// existing experiments; only deliberately huge sweeps engage eviction.
const DefaultRouteCacheSize = 512

// OverlayConfig controls BuildOverlay.
type OverlayConfig struct {
	NumPeers int
	Kind     OverlayKind
	Degree   int     // target links per peer (k for Mesh, m for power-law, avg for random)
	CapMin   float64 // overlay link capacity range, kbps
	CapMax   float64
	// Compact skips the O(peers²) pairwise latency matrix: mesh links are
	// found with truncated per-peer Dijkstra searches (stop once the k
	// nearest peers have settled), and Latency falls back to overlay-path
	// latency for unlinked pairs. This is the only mode that fits a
	// 10,000-peer overlay in a laptop-class memory budget; it supports
	// Kind == Mesh only and does not support AddPeer.
	Compact bool
	// RouteCacheSize bounds how many per-source routing tables Route may
	// retain (LRU eviction beyond it). Zero applies DefaultRouteCacheSize;
	// negative disables the bound. Routes themselves are independent of the
	// cache state, so any bound produces byte-identical results — only
	// memory and recomputation change.
	RouteCacheSize int
}

// BuildOverlay selects cfg.NumPeers distinct IP nodes from g as peers,
// derives pairwise peer latencies from IP shortest paths, and constructs
// overlay links per cfg.Kind.
func BuildOverlay(g *Graph, cfg OverlayConfig, rng *rand.Rand) *Overlay {
	if cfg.NumPeers > g.N() {
		panic(fmt.Sprintf("topology: %d peers exceed %d IP nodes", cfg.NumPeers, g.N()))
	}
	if cfg.Degree < 1 {
		cfg.Degree = 4
	}
	if cfg.CapMax <= 0 {
		cfg.CapMin, cfg.CapMax = 1000, 10000
	}
	routeCap := cfg.RouteCacheSize
	if routeCap == 0 {
		routeCap = DefaultRouteCacheSize
	}
	n := cfg.NumPeers
	o := &Overlay{
		peerIP:     rng.Perm(g.N())[:n],
		adj:        make([][]int, n),
		linkSet:    make(map[uint64]struct{}),
		capMin:     cfg.CapMin,
		capMax:     cfg.CapMax,
		routeCap:   routeCap,
		routeCache: make(map[int]*routeSlot),
	}
	if cfg.Compact {
		if cfg.Kind != Mesh {
			panic("topology: compact overlays support the mesh kind only")
		}
		o.buildCompactMesh(g, cfg, rng)
		return o
	}
	// Pairwise peer latency over IP shortest paths, computed in one batched
	// pass that reuses the Dijkstra buffers across sources.
	o.lat = g.PairDistances(o.peerIP)

	cap := func() float64 { return cfg.CapMin + rng.Float64()*(cfg.CapMax-cfg.CapMin) }
	addLink := func(u, v int) {
		if u == v || o.hasLink(u, v) {
			return
		}
		o.linkSet[pairKey(u, v)] = struct{}{}
		idx := len(o.links)
		c := cap()
		o.links = append(o.links, overlayLink{u: u, v: v, latency: o.lat[u][v], capacity: c, avail: c})
		o.adj[u] = append(o.adj[u], idx)
		o.adj[v] = append(o.adj[v], idx)
	}

	switch cfg.Kind {
	case Mesh:
		for u := 0; u < n; u++ {
			order := make([]int, 0, n-1)
			for v := 0; v < n; v++ {
				if v != u {
					order = append(order, v)
				}
			}
			sort.Slice(order, func(i, j int) bool { return o.lat[u][order[i]] < o.lat[u][order[j]] })
			for i := 0; i < cfg.Degree && i < len(order); i++ {
				addLink(u, order[i])
			}
		}
	case PowerLawOverlay:
		m := cfg.Degree
		if m >= n {
			m = n - 1
		}
		for u := 0; u <= m && u < n; u++ {
			for v := u + 1; v <= m && v < n; v++ {
				addLink(u, v)
			}
		}
		var targets []int
		for u := 0; u <= m && u < n; u++ {
			for range o.adj[u] {
				targets = append(targets, u)
			}
		}
		for u := m + 1; u < n; u++ {
			for _, v := range pickPreferential(targets, m, u, rng, nil) {
				addLink(u, v)
				targets = append(targets, u, v)
			}
		}
	case RandomOverlay:
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			addLink(perm[i-1], perm[i])
		}
		extra := n*cfg.Degree/2 - (n - 1)
		for i := 0; i < extra; i++ {
			addLink(rng.Intn(n), rng.Intn(n))
		}
	}
	return o
}

// buildCompactMesh wires each peer to its Degree nearest peers without ever
// materializing the pairwise latency matrix. One truncated Dijkstra per peer
// settles just the ball around its host until Degree foreign peers have been
// found; link latency is the settled IP-layer distance. Memory is O(peers +
// links + IP nodes) instead of O(peers²).
func (o *Overlay) buildCompactMesh(g *Graph, cfg OverlayConfig, rng *rand.Rand) {
	n := len(o.peerIP)
	peerOf := make([]int32, g.N())
	for i := range peerOf {
		peerOf[i] = -1
	}
	for p, ip := range o.peerIP {
		peerOf[ip] = int32(p)
	}
	isPeer := func(v int32) bool { return peerOf[v] >= 0 }
	var ts truncState
	for u := 0; u < n; u++ {
		for _, sp := range g.nearestPeers(o.peerIP[u], isPeer, cfg.Degree, &ts) {
			v := int(peerOf[sp.node])
			if u == v || o.hasLink(u, v) {
				continue
			}
			o.linkSet[pairKey(u, v)] = struct{}{}
			idx := len(o.links)
			c := cfg.CapMin + rng.Float64()*(cfg.CapMax-cfg.CapMin)
			o.links = append(o.links, overlayLink{u: u, v: v, latency: sp.dist, capacity: c, avail: c})
			o.adj[u] = append(o.adj[u], idx)
			o.adj[v] = append(o.adj[v], idx)
		}
	}
}

// Compact reports whether this overlay was built without the pairwise
// latency matrix.
func (o *Overlay) Compact() bool { return o.lat == nil }

func (o *Overlay) hasLink(u, v int) bool {
	_, ok := o.linkSet[pairKey(u, v)]
	return ok
}

// N returns the number of peers.
func (o *Overlay) N() int { return len(o.peerIP) }

// NumLinks returns the number of overlay links.
func (o *Overlay) NumLinks() int { return len(o.links) }

// PeerIP returns the IP node hosting peer p.
func (o *Overlay) PeerIP(p int) int { return o.peerIP[p] }

// Latency returns the one-way control-message latency between peers a and b
// in milliseconds (the IP-layer shortest path between their hosts). On a
// compact overlay the matrix does not exist: linked pairs answer from the
// link, anything else from the overlay-path latency (+Inf when disconnected).
func (o *Overlay) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	if o.lat != nil {
		return o.lat[a][b]
	}
	if p, ok := o.Route(a, b); ok {
		return p.Latency
	}
	return math.Inf(1)
}

// Degree returns the number of overlay links incident to peer p.
func (o *Overlay) Degree(p int) int { return len(o.adj[p]) }

// AddPeer extends a built overlay with one new peer hosted on IP node ip:
// pairwise latencies are derived from fresh IP shortest paths, the newcomer
// is connected to its `degree` latency-nearest peers (mesh-style), and the
// route cache is invalidated. It returns the new peer's index. This is the
// data-plane half of a dynamic peer arrival.
func (o *Overlay) AddPeer(g *Graph, ip, degree int, rng *rand.Rand) int {
	if o.lat == nil {
		panic("topology: AddPeer on a compact overlay")
	}
	dist := g.Dijkstra(ip)
	n := len(o.peerIP)
	row := make([]float64, n+1)
	for q, ipq := range o.peerIP {
		row[q] = dist[ipq]
		o.lat[q] = append(o.lat[q], dist[ipq])
	}
	o.peerIP = append(o.peerIP, ip)
	o.lat = append(o.lat, row)
	o.adj = append(o.adj, nil)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
	if degree < 1 {
		degree = 4
	}
	for i := 0; i < degree && i < len(order); i++ {
		v := order[i]
		if o.hasLink(n, v) {
			continue
		}
		o.linkSet[pairKey(n, v)] = struct{}{}
		idx := len(o.links)
		c := o.capMin + rng.Float64()*(o.capMax-o.capMin)
		o.links = append(o.links, overlayLink{u: n, v: v, latency: row[v], capacity: c, avail: c})
		o.adj[n] = append(o.adj[n], idx)
		o.adj[v] = append(o.adj[v], idx)
	}
	o.cacheReset()
	o.loff, o.lto, o.llink, o.llat = nil, nil, nil, nil
	return n
}

// cacheReset drops every cached routing table and the truncated-search
// scratch (its arrays are sized to the peer count, which may have changed).
func (o *Overlay) cacheReset() {
	o.routeCache = make(map[int]*routeSlot)
	o.lruHead, o.lruTail = nil, nil
	o.trunc = nil
}

// cacheGet returns src's cached table and marks it most recently used.
func (o *Overlay) cacheGet(src int) (routeTable, bool) {
	s, ok := o.routeCache[src]
	if !ok {
		return routeTable{}, false
	}
	if s != o.lruHead {
		// Unlink, then splice in at the head.
		s.prev.next = s.next
		if s.next != nil {
			s.next.prev = s.prev
		} else {
			o.lruTail = s.prev
		}
		s.prev = nil
		s.next = o.lruHead
		o.lruHead.prev = s
		o.lruHead = s
	}
	return s.rt, true
}

// cacheAdd inserts src's table at the head of the recency list, evicting the
// least recently used table when the bound is exceeded. Eviction follows only
// the (deterministic) access sequence, so same-seed runs evict identically.
func (o *Overlay) cacheAdd(src int, rt routeTable) {
	s := &routeSlot{src: src, rt: rt, next: o.lruHead}
	if o.lruHead != nil {
		o.lruHead.prev = s
	} else {
		o.lruTail = s
	}
	o.lruHead = s
	o.routeCache[src] = s
	if o.routeCap >= 0 && len(o.routeCache) > o.routeCap {
		victim := o.lruTail
		o.lruTail = victim.prev
		if o.lruTail != nil {
			o.lruTail.next = nil
		} else {
			o.lruHead = nil
		}
		delete(o.routeCache, victim.src)
	}
}

// freezeLinks packs the per-peer link lists into the frozen CSR arrays.
func (o *Overlay) freezeLinks() {
	n := o.N()
	o.loff = make([]int32, n+1)
	for p, idxs := range o.adj {
		o.loff[p+1] = o.loff[p] + int32(len(idxs))
	}
	half := o.loff[n]
	o.lto = make([]int32, half)
	o.llink = make([]int32, half)
	o.llat = make([]float64, half)
	for p, idxs := range o.adj {
		at := o.loff[p]
		for _, idx := range idxs {
			l := o.links[idx]
			to := l.u
			if to == p {
				to = l.v
			}
			o.lto[at] = int32(to)
			o.llink[at] = int32(idx)
			o.llat[at] = l.latency
			at++
		}
	}
}

// Route returns the shortest-latency overlay path from a to b, or ok=false
// if none exists. Per-source tables are cached in an LRU bounded by
// OverlayConfig.RouteCacheSize and invalidated only by AddPeer, since links
// otherwise never change. Once the cache is full, a near destination (one
// that settles within a small ball around the source) is answered by a
// truncated search without touching the cache; only far destinations pay a
// full Dijkstra and recycle an LRU slot. Because Dijkstra's relaxation order
// is deterministic and settled entries never change, every code path returns
// the identical Path — the cache bound affects memory and recomputation, not
// results, so same-seed traces stay byte-identical at any bound.
func (o *Overlay) Route(a, b int) (Path, bool) {
	if a == b {
		return Path{Peers: []int{a}, Latency: 0}, true
	}
	if rt, ok := o.cacheGet(a); ok {
		return o.pathFrom(rt, a, b)
	}
	if o.routeCap >= 0 && len(o.routeCache) >= o.routeCap {
		if p, ok, hit := o.routeNear(a, b); hit {
			return p, ok
		}
	}
	rt := o.dijkstra(a)
	o.cacheAdd(a, rt)
	return o.pathFrom(rt, a, b)
}

// pathFrom materializes the a→b path from a per-source table. Walk the
// predecessor chain once to size the path exactly, then fill backward: two
// right-sized allocations instead of append-grow + reverse. Route is the
// hottest call in probe forwarding, so this matters.
func (o *Overlay) pathFrom(rt routeTable, a, b int) (Path, bool) {
	if math.IsInf(rt.dist[b], 1) {
		return Path{}, false
	}
	hops := 0
	for at := b; at != a; at = rt.prevPeer[at] {
		hops++
	}
	peers := make([]int, hops+1)
	links := make([]int, hops)
	i := hops
	for at := b; at != a; at = rt.prevPeer[at] {
		peers[i] = at
		links[i-1] = rt.prevLink[at]
		i--
	}
	peers[0] = a
	return Path{Peers: peers, Links: links, Latency: rt.dist[b]}, true
}

// routeNear runs Dijkstra from a but stops as soon as b settles, giving up
// once the settled ball exceeds ~n/8 peers. hit reports whether the search
// reached a verdict: b settled (the path is exact — a settled node's
// distance and predecessor are final, and the relaxation order up to that
// point is identical to the full run's), or a's entire component settled
// without finding b (no route exists). hit=false means b lies outside the
// ball and the caller must fall back to a full Dijkstra. Nothing is cached;
// the epoch-stamped scratch keeps per-call cost O(ball), not O(peers).
func (o *Overlay) routeNear(a, b int) (Path, bool, bool) {
	if o.loff == nil {
		o.freezeLinks()
	}
	n := o.N()
	ts := o.trunc
	if ts == nil || len(ts.dist) < n {
		ts = &truncRouteState{
			dist:     make([]float64, n),
			prevPeer: make([]int32, n),
			prevLink: make([]int32, n),
			stamp:    make([]uint32, n),
		}
		o.trunc = ts
	}
	ts.epoch++
	if ts.epoch == 0 { // wrapped: stale stamps could alias, clear them
		for i := range ts.stamp {
			ts.stamp[i] = 0
		}
		ts.epoch = 1
	}
	touch := func(v int32) {
		if ts.stamp[v] != ts.epoch {
			ts.stamp[v] = ts.epoch
			ts.dist[v] = math.Inf(1)
			ts.prevPeer[v] = -1
			ts.prevLink[v] = -1
		}
	}
	limit := n / 8
	if limit < 32 {
		limit = 32
	}
	ts.pq.reset()
	touch(int32(a))
	ts.dist[a] = 0
	ts.pq.push(distItem{node: a, dist: 0})
	settled := 0
	for ts.pq.len() > 0 {
		it := ts.pq.pop()
		if it.dist > ts.dist[it.node] {
			continue
		}
		if it.node == b {
			hops := 0
			for at := b; at != a; at = int(ts.prevPeer[at]) {
				hops++
			}
			peers := make([]int, hops+1)
			links := make([]int, hops)
			i := hops
			for at := b; at != a; at = int(ts.prevPeer[at]) {
				peers[i] = at
				links[i-1] = int(ts.prevLink[at])
				i--
			}
			peers[0] = a
			return Path{Peers: peers, Links: links, Latency: ts.dist[b]}, true, true
		}
		settled++
		if settled >= limit {
			return Path{}, false, false
		}
		for i, end := o.loff[it.node], o.loff[it.node+1]; i < end; i++ {
			to := o.lto[i]
			touch(to)
			if nd := it.dist + o.llat[i]; nd < ts.dist[to] {
				ts.dist[to] = nd
				ts.prevPeer[to] = int32(it.node)
				ts.prevLink[to] = o.llink[i]
				ts.pq.push(distItem{node: int(to), dist: nd})
			}
		}
	}
	// The queue drained before the limit: a's entire component is settled
	// and b is not in it.
	return Path{}, false, true
}

func (o *Overlay) dijkstra(src int) routeTable {
	if o.loff == nil {
		o.freezeLinks()
	}
	n := o.N()
	rt := routeTable{
		dist:     make([]float64, n),
		prevPeer: make([]int, n),
		prevLink: make([]int, n),
	}
	for i := range rt.dist {
		rt.dist[i] = math.Inf(1)
		rt.prevPeer[i] = -1
		rt.prevLink[i] = -1
	}
	rt.dist[src] = 0
	var pq distPQ
	pq.push(distItem{node: src, dist: 0})
	for pq.len() > 0 {
		it := pq.pop()
		if it.dist > rt.dist[it.node] {
			continue
		}
		for i, end := o.loff[it.node], o.loff[it.node+1]; i < end; i++ {
			to := int(o.lto[i])
			if nd := it.dist + o.llat[i]; nd < rt.dist[to] {
				rt.dist[to] = nd
				rt.prevPeer[to] = it.node
				rt.prevLink[to] = int(o.llink[i])
				pq.push(distItem{node: to, dist: nd})
			}
		}
	}
	return rt
}

// AvailBandwidth returns the bottleneck available bandwidth along p in kbps.
// An empty path (same source and destination) has infinite bandwidth.
func (o *Overlay) AvailBandwidth(p Path) float64 {
	bw := math.Inf(1)
	for _, idx := range p.Links {
		if a := o.links[idx].avail; a < bw {
			bw = a
		}
	}
	return bw
}

// AllocBandwidth reserves bw kbps on every link of p. It either reserves on
// all links or none, returning whether the reservation succeeded.
func (o *Overlay) AllocBandwidth(p Path, bw float64) bool {
	if o.AvailBandwidth(p) < bw {
		return false
	}
	for _, idx := range p.Links {
		o.links[idx].avail -= bw
	}
	return true
}

// ReleaseBandwidth returns bw kbps to every link of p, clamping at capacity.
func (o *Overlay) ReleaseBandwidth(p Path, bw float64) {
	for _, idx := range p.Links {
		l := &o.links[idx]
		l.avail += bw
		if l.avail > l.capacity {
			l.avail = l.capacity
		}
	}
}

// LinkCapacity returns the total capacity of overlay link idx in kbps.
func (o *Overlay) LinkCapacity(idx int) float64 { return o.links[idx].capacity }

// WideAreaLatencies builds an n×n one-way latency matrix (milliseconds)
// shaped like a wide-area deployment across a few geographic clusters
// (the PlanetLab stand-in used by the live runtime): low intra-cluster
// latency, tens of milliseconds cross-continent, ~80–120 ms transatlantic.
func WideAreaLatencies(n int, rng *rand.Rand) [][]float64 {
	type cluster struct{ share float64 }
	clusters := []cluster{{0.4}, {0.35}, {0.25}} // US-West, US-East, Europe
	assign := make([]int, n)
	for i := range assign {
		r := rng.Float64()
		acc := 0.0
		for c, cl := range clusters {
			acc += cl.share
			if r < acc {
				assign[i] = c
				break
			}
		}
	}
	base := [3][3]float64{
		{5, 35, 90},
		{35, 5, 75},
		{90, 75, 8},
	}
	lat := make([][]float64, n)
	for i := range lat {
		lat[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b := base[assign[i]][assign[j]]
			l := b * (0.8 + 0.4*rng.Float64()) // ±20% jitter around the base
			lat[i][j] = l
			lat[j][i] = l
		}
	}
	return lat
}
