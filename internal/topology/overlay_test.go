package topology

import (
	"math"
	"math/rand"
	"testing"
)

func testOverlay(t *testing.T, kind OverlayKind) *Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := GeneratePowerLaw(400, 2, 2, 30, rng)
	return BuildOverlay(g, OverlayConfig{
		NumPeers: 60,
		Kind:     kind,
		Degree:   4,
		CapMin:   1000,
		CapMax:   5000,
	}, rng)
}

func TestBuildOverlayAllKinds(t *testing.T) {
	for _, kind := range []OverlayKind{Mesh, PowerLawOverlay, RandomOverlay} {
		t.Run(kind.String(), func(t *testing.T) {
			o := testOverlay(t, kind)
			if o.N() != 60 {
				t.Fatalf("N=%d", o.N())
			}
			if o.NumLinks() == 0 {
				t.Fatal("no overlay links")
			}
			// Every peer maps to a distinct IP node.
			seen := make(map[int]bool)
			for p := 0; p < o.N(); p++ {
				ip := o.PeerIP(p)
				if seen[ip] {
					t.Fatalf("IP node %d hosts two peers", ip)
				}
				seen[ip] = true
			}
		})
	}
}

func TestOverlayLatencySymmetricNonNegative(t *testing.T) {
	o := testOverlay(t, Mesh)
	for a := 0; a < o.N(); a++ {
		if o.Latency(a, a) != 0 {
			t.Fatalf("self latency nonzero for %d", a)
		}
		for b := a + 1; b < o.N(); b++ {
			l := o.Latency(a, b)
			if l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
				t.Fatalf("latency(%d,%d)=%v", a, b, l)
			}
			if math.Abs(l-o.Latency(b, a)) > 1e-9 {
				t.Fatalf("latency asymmetric between %d and %d", a, b)
			}
		}
	}
}

func TestOverlayRoute(t *testing.T) {
	o := testOverlay(t, Mesh)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(o.N()), rng.Intn(o.N())
		p, ok := o.Route(a, b)
		if !ok {
			t.Fatalf("no route %d->%d in connected mesh", a, b)
		}
		if p.Peers[0] != a || p.Peers[len(p.Peers)-1] != b {
			t.Fatalf("route endpoints wrong: %v", p.Peers)
		}
		if len(p.Links) != len(p.Peers)-1 {
			t.Fatalf("links/peers mismatch: %d links, %d peers", len(p.Links), len(p.Peers))
		}
		// Route over overlay links can never beat the direct IP shortest path.
		if a != b && p.Latency+1e-9 < o.Latency(a, b) {
			t.Fatalf("overlay route latency %v below IP shortest path %v", p.Latency, o.Latency(a, b))
		}
	}
}

func TestOverlayRouteSelf(t *testing.T) {
	o := testOverlay(t, Mesh)
	p, ok := o.Route(7, 7)
	if !ok || p.Latency != 0 || len(p.Links) != 0 {
		t.Fatalf("self route = %+v ok=%v", p, ok)
	}
}

func TestBandwidthAllocRelease(t *testing.T) {
	o := testOverlay(t, Mesh)
	p, ok := o.Route(0, o.N()-1)
	if !ok {
		t.Fatal("no route")
	}
	before := o.AvailBandwidth(p)
	if before < 1000 {
		t.Fatalf("bottleneck bandwidth %v below configured minimum", before)
	}
	if !o.AllocBandwidth(p, 500) {
		t.Fatal("allocation within capacity should succeed")
	}
	after := o.AvailBandwidth(p)
	if after > before-500+1e-9 {
		t.Fatalf("bandwidth not deducted: before=%v after=%v", before, after)
	}
	o.ReleaseBandwidth(p, 500)
	if math.Abs(o.AvailBandwidth(p)-before) > 1e-9 {
		t.Fatal("release did not restore bandwidth")
	}
}

func TestBandwidthAllocAllOrNothing(t *testing.T) {
	o := testOverlay(t, Mesh)
	p, ok := o.Route(0, o.N()-1)
	if !ok {
		t.Fatal("no route")
	}
	avail := o.AvailBandwidth(p)
	if o.AllocBandwidth(p, avail+1) {
		t.Fatal("over-allocation must fail")
	}
	if math.Abs(o.AvailBandwidth(p)-avail) > 1e-9 {
		t.Fatal("failed allocation must not change availability")
	}
}

func TestReleaseClampsAtCapacity(t *testing.T) {
	o := testOverlay(t, Mesh)
	p, _ := o.Route(0, 1)
	o.ReleaseBandwidth(p, 1e9)
	for _, idx := range p.Links {
		if o.AvailBandwidth(Path{Links: []int{idx}}) > o.LinkCapacity(idx)+1e-9 {
			t.Fatal("availability exceeded capacity after over-release")
		}
	}
}

func TestWideAreaLatencies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lat := WideAreaLatencies(102, rng)
	if len(lat) != 102 {
		t.Fatalf("len=%d", len(lat))
	}
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < 102; i++ {
		if lat[i][i] != 0 {
			t.Fatal("self latency nonzero")
		}
		for j := i + 1; j < 102; j++ {
			l := lat[i][j]
			if l != lat[j][i] {
				t.Fatal("asymmetric wide-area latency")
			}
			if l <= 0 {
				t.Fatalf("nonpositive latency %v", l)
			}
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
	}
	// There must be both near (intra-cluster) and far (transatlantic) pairs.
	if min > 15 {
		t.Fatalf("minimum latency %v too high for intra-cluster pairs", min)
	}
	if max < 60 {
		t.Fatalf("maximum latency %v too low for transatlantic pairs", max)
	}
}
