// Package topology generates and routes over the two-level network used by
// the SpiderNet experiments: a power-law IP-layer graph (a stand-in for the
// Inet-3.0 generator the paper uses) and a P2P service overlay whose peers
// are a subset of the IP nodes.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Edge is one directed half of an undirected IP-layer link.
type Edge struct {
	To      int
	Latency float64 // one-way propagation delay in milliseconds
}

// Graph is an undirected IP-layer graph with latency-weighted links.
type Graph struct {
	n   int
	adj [][]Edge
	m   int // number of undirected edges
}

// NewGraph returns an empty graph with n nodes and no links.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("topology: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts an undirected link between u and v with the given latency.
// Self-loops and duplicate edges are ignored.
func (g *Graph) AddEdge(u, v int, latency float64) {
	if u == v {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Latency: latency})
	g.adj[v] = append(g.adj[v], Edge{To: u, Latency: latency})
	g.m++
}

// HasEdge reports whether an undirected link between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// Degree returns the number of links incident to u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the adjacency list of u. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Dijkstra computes single-source shortest-path latencies from src.
// Unreachable nodes get +Inf.
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// IsConnected reports whether every node is reachable from node 0.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// DegreeHistogram returns a map from degree to node count, used to validate
// the power-law shape of generated graphs.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.Degree(u)]++
	}
	return h
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// GeneratePowerLaw builds a connected power-law graph with n nodes using
// degree-based preferential attachment (Barabási–Albert), the same family of
// degree-driven generators as Inet-3.0. Each new node attaches m links to
// existing nodes chosen with probability proportional to their degree. Link
// latencies are sampled uniformly from [minLat, maxLat) milliseconds.
func GeneratePowerLaw(n, m int, minLat, maxLat float64, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	g := NewGraph(n)
	lat := func() float64 { return minLat + rng.Float64()*(maxLat-minLat) }

	// Seed clique of m+1 nodes keeps the graph connected from the start.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(u, v, lat())
		}
	}
	// targets holds one entry per edge endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	var targets []int
	for u := 0; u <= m; u++ {
		for i := 0; i < g.Degree(u); i++ {
			targets = append(targets, u)
		}
	}
	for u := m + 1; u < n; u++ {
		for _, v := range pickPreferential(targets, m, u, rng) {
			g.AddEdge(u, v, lat())
			targets = append(targets, u, v)
		}
	}
	return g
}

// pickPreferential samples m distinct nodes (none equal to exclude) from
// targets, where each node appears once per incident edge endpoint, so the
// draw is degree-proportional. The result order is the draw order, keeping
// generation deterministic for a given rand stream.
func pickPreferential(targets []int, m, exclude int, rng *rand.Rand) []int {
	chosen := make([]int, 0, m)
	seen := make(map[int]bool, m)
	for len(chosen) < m {
		v := targets[rng.Intn(len(targets))]
		if v != exclude && !seen[v] {
			seen[v] = true
			chosen = append(chosen, v)
		}
	}
	return chosen
}

// GenerateRandom builds a connected Erdős–Rényi-style graph with n nodes and
// roughly avgDegree links per node. A random chain is inserted first to
// guarantee connectivity.
func GenerateRandom(n, avgDegree int, minLat, maxLat float64, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	lat := func() float64 { return minLat + rng.Float64()*(maxLat-minLat) }
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i-1], perm[i], lat())
	}
	extra := n*avgDegree/2 - (n - 1)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddEdge(u, v, lat())
	}
	return g
}
