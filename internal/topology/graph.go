// Package topology generates and routes over the two-level network used by
// the SpiderNet experiments: a power-law IP-layer graph (a stand-in for the
// Inet-3.0 generator the paper uses) and a P2P service overlay whose peers
// are a subset of the IP nodes.
//
// A Graph has two phases. During the mutable build phase edges accumulate in
// per-node adjacency lists with a hash-set dedup index. Freeze packs them
// into a compressed-sparse-row (CSR) form — one offsets array plus flat
// edge-target and edge-weight arrays, int32 node ids — and releases the
// build-phase structures. All query paths (Dijkstra, PairDistances,
// IsConnected, DegreeHistogram, routing) consume the CSR arrays with zero
// per-node allocation, which is what lets a 100,000-node graph build and
// sweep inside a laptop-class memory budget.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Edge is one directed half of an undirected IP-layer link.
type Edge struct {
	To      int
	Latency float64 // one-way propagation delay in milliseconds
}

// Graph is an undirected IP-layer graph with latency-weighted links.
// An edge-set index keyed on the node pair makes AddEdge/HasEdge O(1)
// during the build phase; Freeze converts to the packed CSR form.
type Graph struct {
	n int
	m int // number of undirected edges

	// Build phase (released by Freeze).
	adj   [][]Edge
	edges map[uint64]struct{}

	// Frozen CSR: node u's incident half-edges are to[off[u]:off[u+1]]
	// with weights w at the same indices, packed in insertion order so
	// relaxation order — and therefore every float fold — is identical to
	// the adjacency-list representation.
	off []int32
	to  []int32
	w   []float64
}

// pairKey packs an unordered node pair into one map key. Node indices are
// bounded well below 2^32 (the 100k sweep is three decimal orders under it).
func pairKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// NewGraph returns an empty graph with n nodes and no links.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("topology: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Edge, n), edges: make(map[uint64]struct{})}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Frozen reports whether the graph has been packed into CSR form.
func (g *Graph) Frozen() bool { return g.off != nil }

// AddEdge inserts an undirected link between u and v with the given latency.
// Self-loops and duplicate edges are ignored. Adding to a frozen graph
// panics: the CSR arrays are immutable by construction.
func (g *Graph) AddEdge(u, v int, latency float64) {
	if g.Frozen() {
		panic("topology: AddEdge on frozen graph")
	}
	if u == v {
		return
	}
	key := pairKey(u, v)
	if _, dup := g.edges[key]; dup {
		return
	}
	g.edges[key] = struct{}{}
	g.adj[u] = append(g.adj[u], Edge{To: v, Latency: latency})
	g.adj[v] = append(g.adj[v], Edge{To: u, Latency: latency})
	g.m++
}

// Freeze packs the adjacency lists into the CSR arrays and releases the
// build-phase structures (per-node slices and the edge-set index). It is
// idempotent; query methods freeze lazily, and the generators freeze before
// returning so a generated graph starts life compact.
func (g *Graph) Freeze() {
	if g.Frozen() {
		return
	}
	g.off = make([]int32, g.n+1)
	for u, es := range g.adj {
		g.off[u+1] = g.off[u] + int32(len(es))
	}
	half := g.off[g.n]
	g.to = make([]int32, half)
	g.w = make([]float64, half)
	for u, es := range g.adj {
		base := g.off[u]
		for i, e := range es {
			g.to[base+int32(i)] = int32(e.To)
			g.w[base+int32(i)] = e.Latency
		}
	}
	g.adj = nil
	g.edges = nil
}

// HasEdge reports whether an undirected link between u and v exists. On a
// frozen graph this scans the shorter of the two CSR rows (degrees are tiny
// in every generated topology).
func (g *Graph) HasEdge(u, v int) bool {
	if !g.Frozen() {
		_, ok := g.edges[pairKey(u, v)]
		return ok
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	for i, end := g.off[u], g.off[u+1]; i < end; i++ {
		if int(g.to[i]) == v {
			return true
		}
	}
	return false
}

// Degree returns the number of links incident to u.
func (g *Graph) Degree(u int) int {
	if g.Frozen() {
		return int(g.off[u+1] - g.off[u])
	}
	return len(g.adj[u])
}

// Neighbors returns the adjacency list of u. On an unfrozen graph the
// returned slice aliases internal state and must not be modified; on a
// frozen graph it is materialized from the CSR row (diagnostic/test use —
// hot paths iterate the CSR arrays directly).
func (g *Graph) Neighbors(u int) []Edge {
	if !g.Frozen() {
		return g.adj[u]
	}
	start, end := g.off[u], g.off[u+1]
	out := make([]Edge, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, Edge{To: int(g.to[i]), Latency: g.w[i]})
	}
	return out
}

// Dijkstra computes single-source shortest-path latencies from src.
// Unreachable nodes get +Inf.
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	var h nodeHeap
	g.dijkstraInto(src, dist, &h)
	return dist
}

// dijkstraInto runs Dijkstra from src into dist (len g.n), reusing h's
// backing arrays. The indexed heap supports decrease-key, so the queue never
// holds stale duplicates: exactly one pop per reachable node. The scan is a
// straight walk of the CSR arrays — no per-node allocation, no pointer
// chasing through per-node slices — which is what makes the overlay's
// ten-thousand-source batch fast.
func (g *Graph) dijkstraInto(src int, dist []float64, h *nodeHeap) {
	g.Freeze()
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h.init(g.n)
	h.update(dist, int32(src))
	for len(h.nodes) > 0 {
		u := h.pop(dist)
		du := dist[u]
		for i, end := g.off[u], g.off[u+1]; i < end; i++ {
			v := g.to[i]
			if nd := du + g.w[i]; nd < dist[v] {
				dist[v] = nd
				h.update(dist, v)
			}
		}
	}
}

// PairDistances computes the shortest-path latency between every pair of the
// given nodes in one batched pass: one Dijkstra per source, with the dist
// vector and heap storage reused across sources. Row i holds the distances
// from nodes[i] to every nodes[j]. This is the overlay builder's
// peer-latency pass; at the paper's scale (1,000 peers over 10,000 IP nodes)
// buffer reuse keeps the pass allocation-flat.
func (g *Graph) PairDistances(nodes []int) [][]float64 {
	out := make([][]float64, len(nodes))
	dist := make([]float64, g.n)
	var h nodeHeap
	for i, src := range nodes {
		g.dijkstraInto(src, dist, &h)
		row := make([]float64, len(nodes))
		for j, dst := range nodes {
			row[j] = dist[dst]
		}
		out[i] = row
	}
	return out
}

// settledPeer is one (node, distance) pair produced by NearestPeers.
type settledPeer struct {
	node int32
	dist float64
}

// truncState holds the reusable buffers of the truncated Dijkstra. The dist
// and pos arrays are initialized once and restored after every search by
// walking the touched list, so a search over a small ball costs O(ball), not
// O(n) — the difference between 10,000 cheap searches and 10,000 full-array
// resets on a 100,000-node graph.
type truncState struct {
	dist    []float64
	pos     []int32
	nodes   []int32
	touched []int32
	out     []settledPeer
}

func (s *truncState) init(n int) {
	if len(s.dist) != n {
		s.dist = make([]float64, n)
		s.pos = make([]int32, n)
		for i := range s.dist {
			s.dist[i] = math.Inf(1)
			s.pos[i] = -1
		}
	}
	s.nodes = s.nodes[:0]
	s.out = s.out[:0]
}

// nearestPeers runs Dijkstra from src until k nodes for which isPeer returns
// true (excluding src itself) have been settled, and appends them in settle
// order — ascending distance — to s.out. Settle order is the k-nearest-peer
// set: Dijkstra pops nodes in nondecreasing distance. The search touches
// only the ball around src, and s's buffers are restored before returning.
func (g *Graph) nearestPeers(src int, isPeer func(int32) bool, k int, s *truncState) []settledPeer {
	g.Freeze()
	s.init(g.n)
	h := nodeHeap{nodes: s.nodes, pos: s.pos}
	s.dist[src] = 0
	s.touched = append(s.touched[:0], int32(src))
	h.update(s.dist, int32(src))
	for len(h.nodes) > 0 && len(s.out) < k {
		u := h.pop(s.dist)
		if int(u) != src && isPeer(u) {
			s.out = append(s.out, settledPeer{node: u, dist: s.dist[u]})
			if len(s.out) == k {
				break
			}
		}
		du := s.dist[u]
		for i, end := g.off[u], g.off[u+1]; i < end; i++ {
			v := g.to[i]
			if nd := du + g.w[i]; nd < s.dist[v] {
				if math.IsInf(s.dist[v], 1) {
					s.touched = append(s.touched, v)
				}
				s.dist[v] = nd
				h.update(s.dist, v)
			}
		}
	}
	// Restore the touched entries (including any still sitting in the heap).
	for _, v := range s.touched {
		s.dist[v] = math.Inf(1)
		s.pos[v] = -1
	}
	s.nodes = h.nodes[:0]
	return s.out
}

// nodeHeap is an indexed binary min-heap of graph nodes keyed by their
// current tentative distance. pos tracks each node's heap slot so a
// relaxation does an in-place decrease-key (sift-up) instead of pushing a
// stale duplicate — the queue is bounded by the node count and every node is
// popped at most once.
type nodeHeap struct {
	nodes []int32
	pos   []int32 // node -> heap slot, -1 when absent
}

func (h *nodeHeap) init(n int) {
	if cap(h.pos) < n {
		h.pos = make([]int32, n)
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = -1
	}
	h.nodes = h.nodes[:0]
}

// update inserts v or restores heap order after v's key decreased.
func (h *nodeHeap) update(dist []float64, v int32) {
	i := h.pos[v]
	if i < 0 {
		i = int32(len(h.nodes))
		h.nodes = append(h.nodes, v)
		h.pos[v] = i
	}
	for i > 0 {
		p := (i - 1) / 2
		if dist[h.nodes[p]] <= dist[h.nodes[i]] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

// pop removes and returns the node with the smallest tentative distance.
func (h *nodeHeap) pop(dist []float64) int32 {
	top := h.nodes[0]
	h.pos[top] = -1
	n := len(h.nodes) - 1
	if n > 0 {
		h.nodes[0] = h.nodes[n]
		h.pos[h.nodes[0]] = 0
	}
	h.nodes = h.nodes[:n]
	i := int32(0)
	for {
		c := 2*i + 1
		if int(c) >= n {
			break
		}
		if int(c+1) < n && dist[h.nodes[c+1]] < dist[h.nodes[c]] {
			c++
		}
		if dist[h.nodes[i]] <= dist[h.nodes[c]] {
			break
		}
		h.swap(i, c)
		i = c
	}
	return top
}

func (h *nodeHeap) swap(i, j int32) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.pos[h.nodes[i]] = i
	h.pos[h.nodes[j]] = j
}

// IsConnected reports whether every node is reachable from node 0.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	g.Freeze()
	seen := make([]bool, g.n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, end := g.off[u], g.off[u+1]; i < end; i++ {
			if v := g.to[i]; !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// DegreeCount is one row of a degree histogram: Count nodes have exactly
// Degree incident links.
type DegreeCount struct {
	Degree int
	Count  int
}

// DegreeHistogram returns the degree distribution sorted by ascending
// degree. The sorted slice replaces the map this used to return: map
// iteration order leaked into summaries and made them nondeterministic.
func (g *Graph) DegreeHistogram() []DegreeCount {
	counts := make(map[int]int)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(u)]++
	}
	out := make([]DegreeCount, 0, len(counts))
	for d, c := range counts {
		out = append(out, DegreeCount{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

type distItem struct {
	node int
	dist float64
}

// distPQ is a concrete binary min-heap of distItems. It replaces
// container/heap, whose interface{}-typed Push boxes every item onto the
// garbage-collected heap — at one allocation per edge relaxation that
// dominated the topology construction profile.
type distPQ struct {
	items []distItem
}

func (pq *distPQ) len() int { return len(pq.items) }

func (pq *distPQ) reset() { pq.items = pq.items[:0] }

func (pq *distPQ) push(it distItem) {
	pq.items = append(pq.items, it)
	i := len(pq.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if pq.items[p].dist <= pq.items[i].dist {
			break
		}
		pq.items[p], pq.items[i] = pq.items[i], pq.items[p]
		i = p
	}
}

func (pq *distPQ) pop() distItem {
	top := pq.items[0]
	n := len(pq.items) - 1
	pq.items[0] = pq.items[n]
	pq.items = pq.items[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && pq.items[c+1].dist < pq.items[c].dist {
			c++
		}
		if pq.items[i].dist <= pq.items[c].dist {
			break
		}
		pq.items[i], pq.items[c] = pq.items[c], pq.items[i]
		i = c
	}
	return top
}

// GeneratePowerLaw builds a connected power-law graph with n nodes using
// degree-based preferential attachment (Barabási–Albert), the same family of
// degree-driven generators as Inet-3.0. Each new node attaches m links to
// existing nodes chosen with probability proportional to their degree. Link
// latencies are sampled uniformly from [minLat, maxLat) milliseconds. The
// returned graph is frozen.
func GeneratePowerLaw(n, m int, minLat, maxLat float64, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	g := NewGraph(n)
	lat := func() float64 { return minLat + rng.Float64()*(maxLat-minLat) }

	// Seed clique of m+1 nodes keeps the graph connected from the start.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(u, v, lat())
		}
	}
	// targets holds one entry per edge endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	targets := make([]int, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for u := 0; u <= m; u++ {
		for i := 0; i < g.Degree(u); i++ {
			targets = append(targets, u)
		}
	}
	scratch := make([]int, 0, m)
	for u := m + 1; u < n; u++ {
		for _, v := range pickPreferential(targets, m, u, rng, scratch) {
			g.AddEdge(u, v, lat())
			targets = append(targets, u, v)
		}
	}
	g.Freeze()
	return g
}

// pickPreferential samples m distinct nodes (none equal to exclude) from
// targets, where each node appears once per incident edge endpoint, so the
// draw is degree-proportional. The result order is the draw order, keeping
// generation deterministic for a given rand stream. Rejection sampling is
// bounded: once the miss budget is spent (a targets multiset saturated by
// the excluded node or already-chosen entries would otherwise spin forever)
// the remainder is filled by a deterministic scan. The returned slice aliases
// scratch when provided.
func pickPreferential(targets []int, m, exclude int, rng *rand.Rand, scratch []int) []int {
	chosen := scratch[:0]
	if chosen == nil {
		chosen = make([]int, 0, m)
	}
	picked := func(v int) bool {
		for _, c := range chosen {
			if c == v {
				return true
			}
		}
		return false
	}
	// Generous miss budget: outside degenerate inputs the loop behaves
	// exactly like unbounded rejection sampling, so the RNG stream — and
	// with it every generated topology — is unchanged in practice.
	misses, missBudget := 0, 16*len(targets)+64
	for len(chosen) < m && misses < missBudget {
		v := targets[rng.Intn(len(targets))]
		if v != exclude && !picked(v) {
			chosen = append(chosen, v)
		} else {
			misses++
		}
	}
	for _, v := range targets { // fallback scan; usually already satisfied
		if len(chosen) >= m {
			break
		}
		if v != exclude && !picked(v) {
			chosen = append(chosen, v)
		}
	}
	return chosen
}

// GenerateRandom builds a connected Erdős–Rényi-style graph with n nodes and
// roughly avgDegree links per node. A random chain is inserted first to
// guarantee connectivity. The returned graph is frozen.
func GenerateRandom(n, avgDegree int, minLat, maxLat float64, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	lat := func() float64 { return minLat + rng.Float64()*(maxLat-minLat) }
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i-1], perm[i], lat())
	}
	extra := n*avgDegree/2 - (n - 1)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddEdge(u, v, lat())
	}
	g.Freeze()
	return g
}
