package topology

import (
	"math/rand"
	"runtime"
	"testing"
)

// liveHeap forces a collection and returns the live heap in bytes.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestMemoryBudget100k is the committed memory budget for the 100k-node
// sweep: a 100,000-node IP graph plus a 10,000-peer compact mesh overlay
// (including one warmed route table) must hold under 64 MB of live heap.
// The measured figure is ~6 MB — the budget leaves headroom for allocator
// rounding and GC timing, not for regressions: the legacy representation's
// peer-latency matrix alone would be 800 MB at this scale, so any backslide
// toward it blows the gate immediately. Wired into scripts/ci.sh next to the
// coverage floor.
func TestMemoryBudget100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node build skipped in -short")
	}
	const budget = 64 << 20

	before := liveHeap()
	rng := rand.New(rand.NewSource(1))
	g := GeneratePowerLaw(100_000, 2, 2, 30, rng)
	ov := BuildOverlay(g, OverlayConfig{NumPeers: 10_000, Kind: Mesh, Degree: 4, Compact: true}, rng)
	if _, ok := ov.Route(0, ov.N()-1); !ok {
		t.Fatal("compact overlay is not connected")
	}
	after := liveHeap()

	live := after - before
	t.Logf("100k nodes / 10k peers: %d links, live heap %.1f MB (budget %d MB)",
		ov.NumLinks(), float64(live)/(1<<20), budget>>20)
	if live > budget {
		t.Fatalf("live heap %.1f MB exceeds the committed %d MB budget",
			float64(live)/(1<<20), budget>>20)
	}
	runtime.KeepAlive(g)
	runtime.KeepAlive(ov)
}
