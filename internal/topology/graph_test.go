package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphBasics(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 20)
	if g.M() != 2 {
		t.Fatalf("M=%d after two edges", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge should be visible from both ends")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("nonexistent edge reported")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1)=%d", g.Degree(1))
	}
}

func TestAddEdgeIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 1, 5)
	if g.M() != 0 {
		t.Fatal("self-loop should be ignored")
	}
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 0, 7)
	if g.M() != 1 {
		t.Fatal("duplicate edge should be ignored")
	}
}

func TestDijkstraSimplePath(t *testing.T) {
	// 0 -1ms- 1 -2ms- 2, plus a slow direct 0-2 link of 10ms.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 10)
	dist := g.Dijkstra(0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != 3 {
		t.Fatalf("dist=%v", dist)
	}
	if !math.IsInf(dist[3], 1) {
		t.Fatal("isolated node should be unreachable")
	}
}

func TestGeneratePowerLawConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GeneratePowerLaw(500, 2, 2, 30, rng)
	if g.N() != 500 {
		t.Fatalf("N=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("power-law graph must be connected")
	}
	// Every non-seed node attaches >= 2 links.
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) < 2 {
			t.Fatalf("node %d degree %d < 2", u, g.Degree(u))
		}
	}
}

func TestGeneratePowerLawSkewedDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GeneratePowerLaw(2000, 2, 2, 30, rng)
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(2*g.M()) / float64(g.N())
	// A power-law graph has hubs far above the mean degree; an Erdős–Rényi
	// graph of this size would have max degree within ~3x of the mean.
	if float64(maxDeg) < 8*avg {
		t.Fatalf("degree distribution not skewed: max=%d avg=%.1f", maxDeg, avg)
	}
}

func TestGenerateRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GenerateRandom(300, 4, 2, 30, rng)
	if !g.IsConnected() {
		t.Fatal("random graph with chain backbone must be connected")
	}
	if g.N() != 300 {
		t.Fatalf("N=%d", g.N())
	}
}

func TestDegreeHistogramSums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GeneratePowerLaw(200, 2, 2, 30, rng)
	h := g.DegreeHistogram()
	total := 0
	for _, c := range h {
		total += c.Count
	}
	if total != g.N() {
		t.Fatalf("histogram counts %d nodes, want %d", total, g.N())
	}
}

// TestDegreeHistogramDeterministic is the regression test for the old
// map-ordered output: the histogram must come back sorted ascending by
// degree, identically on every call, with no zero-count or duplicate rows.
func TestDegreeHistogramDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GeneratePowerLaw(500, 2, 2, 30, rng)
	h := g.DegreeHistogram()
	for i := 1; i < len(h); i++ {
		if h[i].Degree <= h[i-1].Degree {
			t.Fatalf("degrees not strictly ascending at %d: %v then %v", i, h[i-1], h[i])
		}
	}
	for _, c := range h {
		if c.Count <= 0 {
			t.Fatalf("zero-count row %+v", c)
		}
	}
	for trial := 0; trial < 3; trial++ {
		again := g.DegreeHistogram()
		if len(again) != len(h) {
			t.Fatalf("length changed across calls: %d vs %d", len(again), len(h))
		}
		for i := range h {
			if again[i] != h[i] {
				t.Fatalf("row %d changed across calls: %+v vs %+v", i, again[i], h[i])
			}
		}
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over direct
// edges: dist[v] <= dist[u] + w(u,v) for every edge (u,v).
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GeneratePowerLaw(100, 2, 1, 20, rng)
		dist := g.Dijkstra(rng.Intn(g.N()))
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				if dist[e.To] > dist[u]+e.Latency+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra is symmetric on undirected graphs — the distance from a
// to b equals the distance from b to a.
func TestDijkstraSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GeneratePowerLaw(150, 2, 1, 20, rng)
	for trial := 0; trial < 10; trial++ {
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		da := g.Dijkstra(a)
		db := g.Dijkstra(b)
		if math.Abs(da[b]-db[a]) > 1e-9 {
			t.Fatalf("asymmetric distance: %v vs %v", da[b], db[a])
		}
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	g1 := GeneratePowerLaw(200, 2, 2, 30, rand.New(rand.NewSource(9)))
	g2 := GeneratePowerLaw(200, 2, 2, 30, rand.New(rand.NewSource(9)))
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g1.M(), g2.M())
	}
	d1 := g1.Dijkstra(0)
	d2 := g2.Dijkstra(0)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed produced different distances at node %d", i)
		}
	}
}

// TestPickPreferentialSaturated drives the degenerate case that used to spin
// forever: a targets multiset saturated by the excluded node. The bounded
// rejection loop must terminate and the scan fallback must return whatever
// distinct non-excluded nodes exist.
func TestPickPreferentialSaturated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Only the excluded node in targets: nothing to pick, but must return.
	if got := pickPreferential([]int{7, 7, 7, 7}, 2, 7, rng, nil); len(got) != 0 {
		t.Fatalf("picked %v from a fully excluded multiset", got)
	}
	// One distinct eligible node, m=3: returns just that node.
	got := pickPreferential([]int{7, 7, 5, 7}, 3, 7, rng, nil)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v, want [5]", got)
	}
	// Two eligible nodes, m=2: both, no duplicates.
	got = pickPreferential([]int{1, 1, 1, 2, 3, 3}, 2, 1, rng, nil)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("got %v, want two distinct nodes", got)
	}
	for _, v := range got {
		if v == 1 {
			t.Fatalf("picked the excluded node: %v", got)
		}
	}
}

// TestTinyPowerLawTerminates exercises the whole generator on graphs small
// enough that every node is in everyone's exclusion shadow.
func TestTinyPowerLawTerminates(t *testing.T) {
	for n := 2; n < 8; n++ {
		for m := 1; m < 4; m++ {
			g := GeneratePowerLaw(n, m, 1, 5, rand.New(rand.NewSource(int64(n*10+m))))
			if !g.IsConnected() {
				t.Fatalf("n=%d m=%d: disconnected", n, m)
			}
		}
	}
}

// TestEdgeIndexConsistency checks the O(1) edge set agrees with the
// adjacency lists after randomized construction with duplicate attempts.
func TestEdgeIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraph(40)
	for i := 0; i < 300; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(40), 1+rng.Float64())
	}
	edges := 0
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if !g.HasEdge(u, e.To) || !g.HasEdge(e.To, u) {
				t.Fatalf("adjacency edge %d-%d missing from index", u, e.To)
			}
			edges++
		}
	}
	if edges != 2*g.M() {
		t.Fatalf("adjacency lists hold %d half-edges, M=%d", edges, g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.HasEdge(u, u) {
			t.Fatalf("self-loop at %d", u)
		}
	}
}

// TestPairDistancesMatchesDijkstra checks the batched buffer-reusing pass
// returns exactly what per-source Dijkstra returns.
func TestPairDistancesMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := GeneratePowerLaw(300, 2, 1, 25, rng)
	nodes := rng.Perm(g.N())[:50]
	got := g.PairDistances(nodes)
	for i, src := range nodes {
		want := g.Dijkstra(src)
		for j, dst := range nodes {
			if got[i][j] != want[dst] {
				t.Fatalf("PairDistances[%d][%d]=%v, Dijkstra=%v", i, j, got[i][j], want[dst])
			}
		}
	}
}

// BenchmarkGeneratePaperScale is the acceptance benchmark for the paper's
// dimensions: a 10,000-node power-law IP graph plus a 1,000-peer overlay
// (one Dijkstra per peer) must complete in seconds.
func BenchmarkGeneratePaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		g := GeneratePowerLaw(10000, 2, 2, 30, rng)
		ov := BuildOverlay(g, OverlayConfig{NumPeers: 1000, Degree: 4}, rng)
		if ov.N() != 1000 {
			b.Fatal("bad overlay")
		}
	}
}
