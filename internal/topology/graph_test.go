package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphBasics(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 20)
	if g.M() != 2 {
		t.Fatalf("M=%d after two edges", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge should be visible from both ends")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("nonexistent edge reported")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1)=%d", g.Degree(1))
	}
}

func TestAddEdgeIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 1, 5)
	if g.M() != 0 {
		t.Fatal("self-loop should be ignored")
	}
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 0, 7)
	if g.M() != 1 {
		t.Fatal("duplicate edge should be ignored")
	}
}

func TestDijkstraSimplePath(t *testing.T) {
	// 0 -1ms- 1 -2ms- 2, plus a slow direct 0-2 link of 10ms.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 10)
	dist := g.Dijkstra(0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != 3 {
		t.Fatalf("dist=%v", dist)
	}
	if !math.IsInf(dist[3], 1) {
		t.Fatal("isolated node should be unreachable")
	}
}

func TestGeneratePowerLawConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GeneratePowerLaw(500, 2, 2, 30, rng)
	if g.N() != 500 {
		t.Fatalf("N=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("power-law graph must be connected")
	}
	// Every non-seed node attaches >= 2 links.
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) < 2 {
			t.Fatalf("node %d degree %d < 2", u, g.Degree(u))
		}
	}
}

func TestGeneratePowerLawSkewedDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GeneratePowerLaw(2000, 2, 2, 30, rng)
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(2*g.M()) / float64(g.N())
	// A power-law graph has hubs far above the mean degree; an Erdős–Rényi
	// graph of this size would have max degree within ~3x of the mean.
	if float64(maxDeg) < 8*avg {
		t.Fatalf("degree distribution not skewed: max=%d avg=%.1f", maxDeg, avg)
	}
}

func TestGenerateRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GenerateRandom(300, 4, 2, 30, rng)
	if !g.IsConnected() {
		t.Fatal("random graph with chain backbone must be connected")
	}
	if g.N() != 300 {
		t.Fatalf("N=%d", g.N())
	}
}

func TestDegreeHistogramSums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GeneratePowerLaw(200, 2, 2, 30, rng)
	h := g.DegreeHistogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.N() {
		t.Fatalf("histogram counts %d nodes, want %d", total, g.N())
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over direct
// edges: dist[v] <= dist[u] + w(u,v) for every edge (u,v).
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GeneratePowerLaw(100, 2, 1, 20, rng)
		dist := g.Dijkstra(rng.Intn(g.N()))
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				if dist[e.To] > dist[u]+e.Latency+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra is symmetric on undirected graphs — the distance from a
// to b equals the distance from b to a.
func TestDijkstraSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GeneratePowerLaw(150, 2, 1, 20, rng)
	for trial := 0; trial < 10; trial++ {
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		da := g.Dijkstra(a)
		db := g.Dijkstra(b)
		if math.Abs(da[b]-db[a]) > 1e-9 {
			t.Fatalf("asymmetric distance: %v vs %v", da[b], db[a])
		}
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	g1 := GeneratePowerLaw(200, 2, 2, 30, rand.New(rand.NewSource(9)))
	g2 := GeneratePowerLaw(200, 2, 2, 30, rand.New(rand.NewSource(9)))
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g1.M(), g2.M())
	}
	d1 := g1.Dijkstra(0)
	d2 := g2.Dijkstra(0)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed produced different distances at node %d", i)
		}
	}
}
