// Package service models the concrete side of composition: service
// components hosted on peers (§2.2), composite service requests, and service
// graphs λ — assignments of function-graph nodes to components together with
// the QoS/resource state snapshots collected by composition probes. It also
// implements the cost aggregation function ψ (Eq. 1) used for load-balanced
// optimal composition selection (§4.3).
package service

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
)

// FormatAny is the wildcard media format: a component with InFormat
// FormatAny accepts any input, and with OutFormat FormatAny preserves its
// input format.
const FormatAny = 0

// Component is the static metadata of one service component: what function
// it provides, where it lives, its performance quality Qp, its resource
// requirement R, and its input/output quality formats (the Qin/Qout of the
// paper, reduced to a format tag). This is exactly what the decentralized
// service discovery stores in the DHT.
type Component struct {
	ID        string        // globally unique, e.g. "p12/upscale.0"
	Function  string        // provided function name
	Peer      p2p.NodeID    // hosting peer
	Qp        qos.Vector    // performance quality added per traversal (e.g. service delay)
	Res       qos.Resources // end-system resources consumed per session
	InFormat  int           // accepted input format (FormatAny = wildcard)
	OutFormat int           // produced output format (FormatAny = passthrough)
	FailProb  float64       // estimated failure probability of the hosting peer
}

// Compatible reports whether next can consume prev's output: the formats
// must match unless either side is a wildcard.
func Compatible(prev, next Component) bool {
	if prev.OutFormat == FormatAny || next.InFormat == FormatAny {
		return true
	}
	return prev.OutFormat == next.InFormat
}

// Request is a composite service request: the function graph, the user's
// QoS/resource requirements, endpoints, and the probing budget β that bounds
// BCP's overhead (§4.1).
type Request struct {
	ID        uint64
	FGraph    *fgraph.Graph
	QoSReq    qos.Vector    // multi-constrained QoS requirement Qreq
	Res       qos.Resources // per-component end-system resource requirement
	Bandwidth float64       // kbps required on every service link
	FailReq   float64       // required session failure probability F^req
	Source    p2p.NodeID    // application sender
	Dest      p2p.NodeID    // application receiver

	Budget      int   // probing budget β (number of probes)
	Quota       []int // per-function probing quota α; nil = replica-proportional default
	MaxPatterns int   // cap on commutation-induced patterns; 0 = default

	// Variants are alternative function graphs that also satisfy the user
	// (the paper's future-work "more expressive composition semantics such
	// as conditional branch", §8): BCP probes FGraph and every variant and
	// selects the best qualified graph across all of them. Each variant is
	// validated like FGraph. Quota must be nil when variants are used.
	Variants []*fgraph.Graph
}

// Validate checks structural sanity of the request.
func (r *Request) Validate() error {
	if r.FGraph == nil || r.FGraph.NumFunctions() == 0 {
		return fmt.Errorf("request %d: empty function graph", r.ID)
	}
	if r.Budget < 1 {
		return fmt.Errorf("request %d: probing budget %d < 1", r.ID, r.Budget)
	}
	if r.Quota != nil && len(r.Quota) != r.FGraph.NumFunctions() {
		return fmt.Errorf("request %d: quota length %d != %d functions",
			r.ID, len(r.Quota), r.FGraph.NumFunctions())
	}
	if len(r.Variants) > 0 && r.Quota != nil {
		return fmt.Errorf("request %d: per-function quotas are ambiguous across variants", r.ID)
	}
	for i, v := range r.Variants {
		if v == nil || v.NumFunctions() == 0 {
			return fmt.Errorf("request %d: variant %d is empty", r.ID, i)
		}
	}
	if !r.Res.NonNegative() || r.Bandwidth < 0 {
		return fmt.Errorf("request %d: negative resource requirement", r.ID)
	}
	return nil
}

// Weights parameterizes the cost aggregation function ψ: one weight per
// end-system resource type plus one for bandwidth (the n+1'th term of
// Eq. 1). Weights should sum to 1; Normalize enforces it.
type Weights struct {
	Res       [qos.NumResources]float64
	Bandwidth float64
}

// DefaultWeights returns uniform weights 1/(n+1) over the n end-system
// resource types and bandwidth.
func DefaultWeights() Weights {
	var w Weights
	u := 1.0 / float64(qos.NumResources+1)
	for i := range w.Res {
		w.Res[i] = u
	}
	w.Bandwidth = u
	return w
}

// Normalize scales the weights to sum to 1. All-zero weights become
// DefaultWeights.
func (w Weights) Normalize() Weights {
	sum := w.Bandwidth
	for _, x := range w.Res {
		sum += x
	}
	if sum <= 0 {
		return DefaultWeights()
	}
	for i := range w.Res {
		w.Res[i] /= sum
	}
	w.Bandwidth /= sum
	return w
}

// Snapshot is one probed hop: the chosen component and its hosting peer's
// resource availability at probe time.
type Snapshot struct {
	Comp  Component
	Avail qos.Resources // availability ra^vj recorded by the probe
	// Util is the hosting peer's scalar utilization (hard allocations over
	// capacity, in [0,1]) at probe time, the load figure the overload
	// control plane folds into selection.
	Util float64
}

// LinkSnapshot is one probed service link: the functions it connects
// (FromFn == -1 for the source ingress, ToFn == -1 for the destination
// egress) and the bottleneck bandwidth available on the underlying overlay
// path at probe time.
type LinkSnapshot struct {
	FromFn    int
	ToFn      int
	BandAvail float64 // ba^℘j, kbps
	Latency   float64 // overlay path latency, ms
}

// Graph is a service graph λ: one composition pattern with every function
// node mapped to a concrete component, plus the QoS and resource snapshots
// the probes collected along the way. Before selection it is a candidate;
// after selection it is the session's active (or backup) service graph.
type Graph struct {
	Pattern *fgraph.Graph
	Comps   map[int]Snapshot // function index -> probed assignment
	Links   []LinkSnapshot
	QoS     qos.Vector // accumulated end-to-end QoS (branch-wise max)

	// PatternIdx records which composition pattern this graph instantiates
	// (indices past the primary graph's patterns belong to request
	// variants, which selection treats as fallbacks).
	PatternIdx int

	// Req is the request this graph serves, attached at selection time so
	// that session setup, teardown, and failure recovery know the
	// per-component requirements without a side channel.
	Req *Request
}

// Key returns a canonical signature of the graph: its composition pattern
// plus the component assignment. Two graphs over different patterns (e.g.
// the two orders of a commutation link) are distinct even with identical
// assignments, because the execution order differs.
func (g *Graph) Key() string {
	idx := make([]int, 0, len(g.Comps))
	for i := range g.Comps {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var b strings.Builder
	if g.Pattern != nil {
		b.WriteString(g.Pattern.String())
		b.WriteByte('|')
	}
	for _, i := range idx {
		fmt.Fprintf(&b, "%d=%s;", i, g.Comps[i].Comp.ID)
	}
	return b.String()
}

// Components returns the assigned components in function-index order.
func (g *Graph) Components() []Component {
	idx := make([]int, 0, len(g.Comps))
	for i := range g.Comps {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]Component, len(idx))
	for k, i := range idx {
		out[k] = g.Comps[i].Comp
	}
	return out
}

// Contains reports whether the graph uses the component with the given ID.
func (g *Graph) Contains(componentID string) bool {
	for _, s := range g.Comps {
		if s.Comp.ID == componentID {
			return true
		}
	}
	return false
}

// ContainsPeer reports whether any assigned component is hosted on peer p.
func (g *Graph) ContainsPeer(p p2p.NodeID) bool {
	for _, s := range g.Comps {
		if s.Comp.Peer == p {
			return true
		}
	}
	return false
}

// Overlap counts the components g shares with o — the quantity the backup
// selection maximizes for fast switchover (§5.2).
func (g *Graph) Overlap(o *Graph) int {
	ids := make(map[string]bool, len(o.Comps))
	for _, s := range o.Comps {
		ids[s.Comp.ID] = true
	}
	n := 0
	for _, s := range g.Comps {
		if ids[s.Comp.ID] {
			n++
		}
	}
	return n
}

// FailProb estimates the service graph's failure probability under
// independent peer failures: 1 - Π(1 - p_i) over the distinct hosting peers.
func (g *Graph) FailProb() float64 {
	seen := make(map[p2p.NodeID]float64)
	peers := make([]p2p.NodeID, 0, len(g.Comps))
	for _, s := range g.Comps {
		if p, ok := seen[s.Comp.Peer]; !ok || s.Comp.FailProb > p {
			if !ok {
				peers = append(peers, s.Comp.Peer)
			}
			seen[s.Comp.Peer] = s.Comp.FailProb
		}
	}
	// Multiply in sorted peer order: float rounding depends on operation
	// order, and map iteration would make the product run-dependent.
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	alive := 1.0
	for _, p := range peers {
		alive *= 1 - seen[p]
	}
	return 1 - alive
}

// Qualified reports whether the graph satisfies the request: complete
// assignment, QoS within Qreq, per-component resources within the probed
// availability, and bandwidth within every probed link's availability.
func (g *Graph) Qualified(req *Request) bool {
	if len(g.Comps) != g.Pattern.NumFunctions() {
		return false
	}
	if !g.QoS.Satisfies(req.QoSReq) {
		return false
	}
	for _, s := range g.Comps {
		if !req.Res.Fits(s.Avail) {
			return false
		}
	}
	for _, l := range g.Links {
		if l.BandAvail < req.Bandwidth {
			return false
		}
	}
	return true
}

// Cost evaluates the cost aggregation function ψ of Eq. 1:
//
//	ψ(λ) = Σ_{sj∈λ} Σ_i w_i · r_i^{sj}/ra_i^{vj}  +  w_{n+1} · Σ_{ℓj∈λ} b_{ℓj}/ba_{℘j}
//
// Smaller ψ means the available resources exceed the requirement by a larger
// margin, so the minimum-ψ qualified graph achieves the best load balancing.
// Hops with zero availability yield +Inf.
func (g *Graph) Cost(w Weights, req *Request) float64 {
	w = w.Normalize()
	var cost float64
	// Sorted function order keeps the float accumulation identical across
	// runs (map iteration order would perturb the rounding).
	idx := make([]int, 0, len(g.Comps))
	for i := range g.Comps {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, fn := range idx {
		s := g.Comps[fn]
		for i := range s.Avail {
			if req.Res[i] == 0 {
				continue
			}
			if s.Avail[i] <= 0 {
				return math.Inf(1)
			}
			cost += w.Res[i] * req.Res[i] / s.Avail[i]
		}
	}
	if req.Bandwidth > 0 {
		for _, l := range g.Links {
			if l.BandAvail <= 0 {
				return math.Inf(1)
			}
			cost += w.Bandwidth * req.Bandwidth / l.BandAvail
		}
	}
	return cost
}

// String renders the assignment compactly, e.g. "f0→p3/scale.0 f1→p9/tick.1".
func (g *Graph) String() string {
	idx := make([]int, 0, len(g.Comps))
	for i := range g.Comps {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var b strings.Builder
	for k, i := range idx {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s→%s", g.Pattern.Function(i), g.Comps[i].Comp.ID)
	}
	return b.String()
}
