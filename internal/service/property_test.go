package service

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
)

// randomGraph builds a service graph over nf functions with component IDs
// drawn from a pool of size poolSize.
func randomGraph(rng *rand.Rand, nf, poolSize int) *Graph {
	names := make([]string, nf)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	g := &Graph{Pattern: fgraph.Linear(names...), Comps: map[int]Snapshot{}}
	// Component IDs are distinct within a graph (a component serves exactly
	// one function of a request; BCP's visited-set enforces it).
	ids := rng.Perm(poolSize)
	for i := 0; i < nf; i++ {
		id := ids[i]
		var avail qos.Resources
		avail[qos.CPU] = 1 + rng.Float64()*9
		avail[qos.Memory] = 10 + rng.Float64()*90
		g.Comps[i] = Snapshot{
			Comp: Component{
				ID:       fmt.Sprintf("c%d", id),
				Function: names[i],
				Peer:     p2p.NodeID(id),
				FailProb: rng.Float64() * 0.2,
			},
			Avail: avail,
		}
	}
	return g
}

// Property: Overlap is symmetric and bounded by both graph sizes, and a
// graph fully overlaps itself.
func TestOverlapProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 200; trial++ {
		a := randomGraph(rng, 2+rng.Intn(3), 6)
		b := randomGraph(rng, 2+rng.Intn(3), 6)
		if a.Overlap(b) != b.Overlap(a) {
			t.Fatalf("overlap asymmetric: %d vs %d", a.Overlap(b), b.Overlap(a))
		}
		if ov := a.Overlap(b); ov > len(a.Comps) || ov > len(b.Comps) {
			t.Fatalf("overlap %d exceeds graph sizes", ov)
		}
		// Self-overlap counts each distinct component once.
		distinct := map[string]bool{}
		for _, s := range a.Comps {
			distinct[s.Comp.ID] = true
		}
		if a.Overlap(a) != len(a.Comps) {
			t.Fatalf("self overlap %d != %d assignments", a.Overlap(a), len(a.Comps))
		}
	}
}

// Property: FailProb is within [0,1] and monotone — adding a peer with
// positive failure probability never lowers the graph's failure
// probability.
func TestFailProbProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		nf := 2 + rng.Intn(4)
		g := randomGraph(rng, nf, 100) // large pool: distinct peers
		f := g.FailProb()
		if f < 0 || f > 1 {
			t.Fatalf("FailProb=%v out of range", f)
		}
		// Extend with one more risky component on a fresh peer.
		bigger := randomGraph(rng, nf+1, 100)
		for i := 0; i < nf; i++ {
			bigger.Comps[i] = g.Comps[i]
		}
		bigger.Comps[nf] = Snapshot{Comp: Component{
			ID: "extra", Peer: p2p.NodeID(999), FailProb: 0.3,
		}}
		if bigger.FailProb() < f-1e-12 {
			t.Fatalf("adding a risky peer lowered FailProb: %v -> %v", f, bigger.FailProb())
		}
	}
}

// Property: Cost is monotone in availability — doubling every hop's
// availability never increases ψ.
func TestCostMonotoneInAvailability(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	w := DefaultWeights()
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 2+rng.Intn(3), 50)
		g.Links = []LinkSnapshot{{FromFn: -1, ToFn: 0, BandAvail: 100 + rng.Float64()*900}}
		var res qos.Resources
		res[qos.CPU] = 0.5
		res[qos.Memory] = 5
		req := &Request{FGraph: g.Pattern, Res: res, Bandwidth: 10, Budget: 1}
		base := g.Cost(w, req)

		richer := &Graph{Pattern: g.Pattern, Comps: map[int]Snapshot{}, Links: g.Links}
		for i, s := range g.Comps {
			s.Avail = s.Avail.Add(s.Avail)
			richer.Comps[i] = s
		}
		if richer.Cost(w, req) > base+1e-12 {
			t.Fatalf("doubling availability raised cost: %v -> %v", base, richer.Cost(w, req))
		}
	}
}

// Property (testing/quick): weight normalization always sums to 1 and
// preserves proportions.
func TestNormalizeProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		var w Weights
		w.Res[qos.CPU] = float64(a)
		w.Res[qos.Memory] = float64(b)
		w.Bandwidth = float64(c)
		n := w.Normalize()
		sum := n.Bandwidth
		for _, x := range n.Res {
			sum += x
		}
		if sum < 0.999999 || sum > 1.000001 {
			return false
		}
		// Proportion preservation when the input is non-degenerate.
		if a > 0 && c > 0 {
			want := float64(a) / float64(c)
			got := n.Res[qos.CPU] / n.Bandwidth
			if got/want < 0.999999 || got/want > 1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over assignments — graphs with different
// component IDs never share a key, and identical assignment+pattern always
// do.
func TestKeyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		a := randomGraph(rng, 3, 8)
		b := &Graph{Pattern: a.Pattern, Comps: map[int]Snapshot{}}
		same := true
		for i, s := range a.Comps {
			if rng.Intn(4) == 0 {
				s.Comp.ID = s.Comp.ID + "'"
				same = false
			}
			b.Comps[i] = s
		}
		if same != (a.Key() == b.Key()) {
			t.Fatalf("key mismatch: same=%v keys %q vs %q", same, a.Key(), b.Key())
		}
	}
}
