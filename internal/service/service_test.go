package service

import (
	"math"
	"testing"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
)

func res(cpu, mem float64) qos.Resources {
	var r qos.Resources
	r[qos.CPU] = cpu
	r[qos.Memory] = mem
	return r
}

func qvec(d float64) qos.Vector {
	var v qos.Vector
	v[qos.Delay] = d
	return v
}

func comp(id, fn string, peer int, fail float64) Component {
	return Component{ID: id, Function: fn, Peer: p2p.NodeID(peer), Res: res(1, 10), FailProb: fail}
}

// twoFnGraph builds a service graph over Linear("a","b") with the given
// availability at each hop.
func twoFnGraph(availA, availB qos.Resources) (*Graph, *Request) {
	fg := fgraph.Linear("a", "b")
	req := &Request{
		FGraph:    fg,
		QoSReq:    qvec(100),
		Res:       res(1, 10),
		Bandwidth: 100,
		Budget:    4,
	}
	g := &Graph{
		Pattern: fg,
		Comps: map[int]Snapshot{
			0: {Comp: comp("c0", "a", 1, 0.1), Avail: availA},
			1: {Comp: comp("c1", "b", 2, 0.2), Avail: availB},
		},
		Links: []LinkSnapshot{
			{FromFn: -1, ToFn: 0, BandAvail: 1000},
			{FromFn: 0, ToFn: 1, BandAvail: 1000},
			{FromFn: 1, ToFn: -1, BandAvail: 1000},
		},
		QoS: qvec(50),
	}
	return g, req
}

func TestCompatible(t *testing.T) {
	a := Component{OutFormat: 3}
	b := Component{InFormat: 3}
	c := Component{InFormat: 4}
	wild := Component{InFormat: FormatAny, OutFormat: FormatAny}
	if !Compatible(a, b) {
		t.Error("matching formats should be compatible")
	}
	if Compatible(a, c) {
		t.Error("mismatched formats should be incompatible")
	}
	if !Compatible(a, wild) || !Compatible(wild, c) {
		t.Error("wildcards should always be compatible")
	}
}

func TestRequestValidate(t *testing.T) {
	fg := fgraph.Linear("a", "b")
	good := &Request{FGraph: fg, Budget: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []*Request{
		{FGraph: nil, Budget: 4},
		{FGraph: fg, Budget: 0},
		{FGraph: fg, Budget: 4, Quota: []int{1}},
		{FGraph: fg, Budget: 4, Bandwidth: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{Bandwidth: 2}
	w.Res[qos.CPU] = 2
	n := w.Normalize()
	sum := n.Bandwidth
	for _, x := range n.Res {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// All-zero weights fall back to uniform.
	u := (Weights{}).Normalize()
	if u != DefaultWeights() {
		t.Fatal("zero weights should normalize to default")
	}
}

func TestGraphQualified(t *testing.T) {
	g, req := twoFnGraph(res(5, 50), res(5, 50))
	if !g.Qualified(req) {
		t.Fatal("graph should qualify")
	}
	// QoS violation.
	g.QoS = qvec(200)
	if g.Qualified(req) {
		t.Fatal("QoS-violating graph qualified")
	}
	g.QoS = qvec(50)
	// Resource violation at one hop.
	g.Comps[1] = Snapshot{Comp: g.Comps[1].Comp, Avail: res(0.5, 50)}
	if g.Qualified(req) {
		t.Fatal("resource-starved graph qualified")
	}
	g.Comps[1] = Snapshot{Comp: g.Comps[1].Comp, Avail: res(5, 50)}
	// Bandwidth violation on one link.
	g.Links[1].BandAvail = 50
	if g.Qualified(req) {
		t.Fatal("bandwidth-starved graph qualified")
	}
	g.Links[1].BandAvail = 1000
	// Incomplete assignment.
	delete(g.Comps, 0)
	if g.Qualified(req) {
		t.Fatal("incomplete graph qualified")
	}
}

func TestCostPrefersIdleHosts(t *testing.T) {
	// Same requirement, but the second graph's hosts are much more loaded.
	idle, req := twoFnGraph(res(10, 100), res(10, 100))
	busy, _ := twoFnGraph(res(1.2, 12), res(1.2, 12))
	w := DefaultWeights()
	ci, cb := idle.Cost(w, req), busy.Cost(w, req)
	if !(ci < cb) {
		t.Fatalf("idle cost %v should be below busy cost %v", ci, cb)
	}
}

func TestCostZeroAvailabilityInfinite(t *testing.T) {
	g, req := twoFnGraph(res(10, 100), res(0, 100))
	if c := g.Cost(DefaultWeights(), req); !math.IsInf(c, 1) {
		t.Fatalf("cost with zero availability = %v, want +Inf", c)
	}
	g2, req2 := twoFnGraph(res(10, 100), res(10, 100))
	g2.Links[0].BandAvail = 0
	if c := g2.Cost(DefaultWeights(), req2); !math.IsInf(c, 1) {
		t.Fatalf("cost with zero link bandwidth = %v, want +Inf", c)
	}
}

func TestCostBandwidthTerm(t *testing.T) {
	g, req := twoFnGraph(res(10, 100), res(10, 100))
	base := g.Cost(DefaultWeights(), req)
	g.Links[1].BandAvail = 120 // much tighter than 1000
	tight := g.Cost(DefaultWeights(), req)
	if !(tight > base) {
		t.Fatalf("tighter bandwidth should raise cost: %v vs %v", tight, base)
	}
}

func TestCostWeightCustomization(t *testing.T) {
	// CPU-heavy weighting must amplify a CPU-constrained hop more than a
	// memory-heavy weighting does.
	g, req := twoFnGraph(res(1.1, 100), res(10, 100))
	var wc, wm Weights
	wc.Res[qos.CPU] = 1
	wm.Res[qos.Memory] = 1
	if !(g.Cost(wc, req) > g.Cost(wm, req)) {
		t.Fatal("CPU weighting should dominate for CPU-constrained hop")
	}
}

func TestFailProb(t *testing.T) {
	g, _ := twoFnGraph(res(10, 100), res(10, 100))
	// Peers 1 and 2 with p=0.1 and p=0.2: 1 - 0.9*0.8 = 0.28.
	if f := g.FailProb(); math.Abs(f-0.28) > 1e-12 {
		t.Fatalf("FailProb=%v, want 0.28", f)
	}
	// Two components on the same peer count once.
	fg := fgraph.Linear("a", "b")
	g2 := &Graph{Pattern: fg, Comps: map[int]Snapshot{
		0: {Comp: comp("x", "a", 7, 0.1)},
		1: {Comp: comp("y", "b", 7, 0.1)},
	}}
	if f := g2.FailProb(); math.Abs(f-0.1) > 1e-12 {
		t.Fatalf("same-peer FailProb=%v, want 0.1", f)
	}
}

func TestOverlapAndContains(t *testing.T) {
	g1, _ := twoFnGraph(res(10, 100), res(10, 100))
	g2, _ := twoFnGraph(res(10, 100), res(10, 100))
	if g1.Overlap(g2) != 2 {
		t.Fatalf("identical graphs overlap=%d", g1.Overlap(g2))
	}
	g2.Comps[1] = Snapshot{Comp: comp("other", "b", 9, 0.1), Avail: res(10, 100)}
	if g1.Overlap(g2) != 1 {
		t.Fatalf("overlap=%d, want 1", g1.Overlap(g2))
	}
	if !g1.Contains("c0") || g1.Contains("other") {
		t.Fatal("Contains misreported")
	}
	if !g1.ContainsPeer(1) || g1.ContainsPeer(42) {
		t.Fatal("ContainsPeer misreported")
	}
}

func TestKeyDistinguishesAssignments(t *testing.T) {
	g1, _ := twoFnGraph(res(10, 100), res(10, 100))
	g2, _ := twoFnGraph(res(5, 5), res(5, 5)) // different snapshots, same comps
	if g1.Key() != g2.Key() {
		t.Fatal("Key should depend only on the assignment")
	}
	g2.Comps[1] = Snapshot{Comp: comp("other", "b", 9, 0.1)}
	if g1.Key() == g2.Key() {
		t.Fatal("different assignments share a Key")
	}
}

func TestComponentsSorted(t *testing.T) {
	g, _ := twoFnGraph(res(10, 100), res(10, 100))
	cs := g.Components()
	if len(cs) != 2 || cs[0].ID != "c0" || cs[1].ID != "c1" {
		t.Fatalf("Components=%v", cs)
	}
}

func TestGraphString(t *testing.T) {
	g, _ := twoFnGraph(res(10, 100), res(10, 100))
	if s := g.String(); s != "a→c0 b→c1" {
		t.Fatalf("String=%q", s)
	}
}
