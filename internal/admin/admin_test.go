package admin

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testData() (*obs.Registry, *obs.Metrics) {
	reg := obs.NewRegistry()
	c3 := reg.Node(3)
	c3.MsgsSent.Store(10)
	c3.BytesSent.Store(2048)
	c3.ProbesSent.Store(4)
	c5 := reg.Node(5)
	c5.MsgsSent.Store(7)
	c5.DHTHops.Store(2)
	met := obs.NewMetrics()
	met.SetupLatency.ObserveDuration(40 * time.Millisecond)
	met.SetupLatency.ObserveDuration(3 * time.Millisecond)
	met.ActiveSessions.Set(2)
	return reg, met
}

func get(t *testing.T, h http.Handler, path string) (string, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, rr.Code)
	}
	return rr.Body.String(), rr.Header().Get("Content-Type")
}

func TestMetricsExposition(t *testing.T) {
	reg, met := testData()
	h := Handler(reg, met)
	body, ct := get(t, h, "/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE spidernet_msgs_sent_total counter",
		"spidernet_msgs_sent_total 17",
		`spidernet_msgs_sent_total{node="3"} 10`,
		`spidernet_msgs_sent_total{node="5"} 7`,
		`spidernet_dht_hops_total{node="5"} 2`,
		"# TYPE spidernet_setup_latency_ms histogram",
		"spidernet_setup_latency_ms_count 2",
		"spidernet_setup_latency_ms_sum 43",
		`spidernet_setup_latency_ms_bucket{le="+Inf"} 2`,
		"# TYPE spidernet_active_sessions gauge",
		"spidernet_active_sessions 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "spidernet_setup_latency_ms_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
	if prev != 2 {
		t.Fatalf("final cumulative bucket=%d want 2", prev)
	}
}

func TestMetricsNilSections(t *testing.T) {
	body, _ := get(t, Handler(nil, nil), "/metrics")
	if body != "" {
		t.Fatalf("nil reg+met should render empty exposition, got %q", body)
	}
	reg, _ := testData()
	body, _ = get(t, Handler(reg, nil), "/metrics")
	if !strings.Contains(body, "spidernet_msgs_sent_total 17") ||
		strings.Contains(body, "histogram") {
		t.Fatalf("reg-only exposition wrong:\n%s", body)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg, met := testData()
	body, ct := get(t, Handler(reg, met), "/snapshot")
	if ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	for _, want := range []string{
		`"totals":{"msgs_sent":17`,
		`"3":{"msgs_sent":10`,
		`"metrics":{"histograms":[`,
		`"active_sessions":2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("snapshot missing %q:\n%s", want, body)
		}
	}
	// Deterministic rendering.
	again, _ := get(t, Handler(reg, met), "/snapshot")
	if body != again {
		t.Fatal("snapshot not deterministic")
	}
}

func TestHealthzAndPprof(t *testing.T) {
	h := Handler(nil, nil)
	body, _ := get(t, h, "/healthz")
	if body != "ok\n" {
		t.Fatalf("healthz=%q", body)
	}
	body, _ = get(t, h, "/debug/pprof/")
	if !strings.Contains(body, "profile") {
		t.Fatalf("pprof index:\n%s", body)
	}
}

func TestServeOverTCP(t *testing.T) {
	reg, met := testData()
	srv, err := Serve("127.0.0.1:0", reg, met)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "spidernet_setup_latency_ms_count 2") {
		t.Fatalf("live scrape missing histogram:\n%s", body)
	}
}
