// Package admin serves the live observability plane over HTTP: a hand-rolled
// Prometheus text exposition of the obs counters and histograms, a JSON
// snapshot, Go pprof profiling, and a health probe. It uses only the standard
// library — the exposition format is simple enough that pulling in a client
// library would cost more than writing the ~100 lines by hand.
//
// Endpoints:
//
//	/healthz        liveness probe ("ok")
//	/metrics        Prometheus text format (counters, histograms, gauges)
//	/snapshot       fixed-field-order JSON of the same data
//	/debug/pprof/*  standard Go profiling (heap, profile, trace, ...)
//
// The admin plane is strictly read-only: it snapshots atomic counters and
// mutex-guarded histograms while the runtime keeps moving them.
package admin

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// namespace prefixes every exported metric name.
const namespace = "spidernet_"

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an admin HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0"). reg and met may each be nil; the corresponding sections
// are simply absent from the exposition.
func Serve(addr string, reg *obs.Registry, met *obs.Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           Handler(reg, met),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the admin mux without binding a socket, for embedding and
// tests.
func Handler(reg *obs.Registry, met *obs.Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(renderMetrics(reg, met))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(renderSnapshot(reg, met))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// counterSpec maps one Counters field to its exported metric.
type counterSpec struct {
	name string
	help string
	get  func(obs.Counters) int64
}

var counterSpecs = []counterSpec{
	{"msgs_sent_total", "Messages put on the wire.", func(c obs.Counters) int64 { return c.MsgsSent }},
	{"bytes_sent_total", "Approximate wire bytes sent.", func(c obs.Counters) int64 { return c.BytesSent }},
	{"msgs_recv_total", "Messages delivered.", func(c obs.Counters) int64 { return c.MsgsRecv }},
	{"msgs_dropped_total", "Messages dropped by the network.", func(c obs.Counters) int64 { return c.MsgsDrop }},
	{"probes_sent_total", "BCP probes emitted (origin + forwards).", func(c obs.Counters) int64 { return c.ProbesSent }},
	{"probes_dropped_total", "BCP probes killed by QoS/resource/link checks.", func(c obs.Counters) int64 { return c.ProbesDropped }},
	{"probes_returned_total", "BCP probes that completed and reported.", func(c obs.Counters) int64 { return c.ProbesReturned }},
	{"probe_budget_spent_total", "Probing budget carried by emitted probes.", func(c obs.Counters) int64 { return c.BudgetSpent }},
	{"probe_retransmits_total", "Per-hop probe retransmits (same PID, no budget).", func(c obs.Counters) int64 { return c.ProbesRetx }},
	{"dht_hops_total", "DHT messages forwarded.", func(c obs.Counters) int64 { return c.DHTHops }},
	{"faults_injected_total", "Injected network faults on sent messages.", func(c obs.Counters) int64 { return c.Faults }},
}

// renderMetrics writes the Prometheus text exposition format (v0.0.4):
// HELP/TYPE headers, counter totals plus per-node breakdowns, histograms
// with cumulative le buckets and _sum/_count, and gauges.
func renderMetrics(reg *obs.Registry, met *obs.Metrics) []byte {
	b := make([]byte, 0, 4096)
	if reg != nil {
		nodes := reg.Snapshot()
		var tot obs.Counters
		for _, n := range nodes {
			tot.Add(n.Counters)
		}
		for _, spec := range counterSpecs {
			b = append(b, "# HELP "...)
			b = append(b, namespace...)
			b = append(b, spec.name...)
			b = append(b, ' ')
			b = append(b, spec.help...)
			b = append(b, '\n')
			b = append(b, "# TYPE "...)
			b = append(b, namespace...)
			b = append(b, spec.name...)
			b = append(b, " counter\n"...)
			b = append(b, namespace...)
			b = append(b, spec.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, spec.get(tot), 10)
			b = append(b, '\n')
			for _, n := range nodes {
				if v := spec.get(n.Counters); v != 0 {
					b = append(b, namespace...)
					b = append(b, spec.name...)
					b = append(b, `{node="`...)
					b = strconv.AppendInt(b, int64(n.ID), 10)
					b = append(b, `"} `...)
					b = strconv.AppendInt(b, v, 10)
					b = append(b, '\n')
				}
			}
		}
	}
	if met != nil {
		for _, h := range met.Histograms() {
			b = appendHistogram(b, h)
		}
		for _, g := range met.Gauges() {
			b = append(b, "# TYPE "...)
			b = append(b, namespace...)
			b = append(b, g.Name()...)
			b = append(b, " gauge\n"...)
			b = append(b, namespace...)
			b = append(b, g.Name()...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, g.Value(), 10)
			b = append(b, '\n')
		}
	}
	return b
}

// appendHistogram writes one histogram in Prometheus histogram syntax: the
// per-bucket counts are cumulative and end with le="+Inf".
func appendHistogram(b []byte, h *obs.Histogram) []byte {
	bounds, counts := h.Buckets()
	name := namespace + h.Name()
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, " histogram\n"...)
	var cum int64
	for i, c := range counts {
		cum += c
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		if i < len(bounds) {
			b = strconv.AppendFloat(b, bounds[i], 'g', -1, 64)
		} else {
			b = append(b, "+Inf"...)
		}
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendInt(b, h.Count(), 10)
	b = append(b, '\n')
	return b
}

// renderSnapshot writes the JSON snapshot: counter totals, per-node
// counters, and the metric set, in fixed field order.
func renderSnapshot(reg *obs.Registry, met *obs.Metrics) []byte {
	b := make([]byte, 0, 4096)
	b = append(b, '{')
	if reg != nil {
		nodes := reg.Snapshot()
		var tot obs.Counters
		for _, n := range nodes {
			tot.Add(n.Counters)
		}
		b = append(b, `"totals":`...)
		b = appendCounters(b, tot)
		b = append(b, `,"nodes":{`...)
		for i, n := range nodes {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '"')
			b = strconv.AppendInt(b, int64(n.ID), 10)
			b = append(b, `":`...)
			b = appendCounters(b, n.Counters)
		}
		b = append(b, '}')
	}
	if met != nil {
		if reg != nil {
			b = append(b, ',')
		}
		b = append(b, `"metrics":`...)
		b = met.AppendJSON(b)
	}
	b = append(b, '}', '\n')
	return b
}

func appendCounters(b []byte, c obs.Counters) []byte {
	b = append(b, `{"msgs_sent":`...)
	b = strconv.AppendInt(b, c.MsgsSent, 10)
	b = append(b, `,"bytes_sent":`...)
	b = strconv.AppendInt(b, c.BytesSent, 10)
	b = append(b, `,"msgs_recv":`...)
	b = strconv.AppendInt(b, c.MsgsRecv, 10)
	b = append(b, `,"msgs_dropped":`...)
	b = strconv.AppendInt(b, c.MsgsDrop, 10)
	b = append(b, `,"probes_sent":`...)
	b = strconv.AppendInt(b, c.ProbesSent, 10)
	b = append(b, `,"probes_dropped":`...)
	b = strconv.AppendInt(b, c.ProbesDropped, 10)
	b = append(b, `,"probes_returned":`...)
	b = strconv.AppendInt(b, c.ProbesReturned, 10)
	b = append(b, `,"budget_spent":`...)
	b = strconv.AppendInt(b, c.BudgetSpent, 10)
	b = append(b, `,"probes_retx":`...)
	b = strconv.AppendInt(b, c.ProbesRetx, 10)
	b = append(b, `,"dht_hops":`...)
	b = strconv.AppendInt(b, c.DHTHops, 10)
	b = append(b, `,"faults":`...)
	b = strconv.AppendInt(b, c.Faults, 10)
	b = append(b, '}')
	return b
}
