// Package fgraph models the abstract side of a composite service request:
// a directed acyclic graph of required service functions connected by
// dependency links, plus commutation links marking pairs of functions whose
// composition order may be exchanged (§2.1 of the paper).
//
// The commutation links induce a set of composition patterns — the first
// dimension of the paper's two-dimensional graph mapping problem (§2.4).
// Patterns enumerates them; Branches decomposes a (pattern) graph into the
// source→sink branch paths that individual composition probes traverse.
package fgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Graph is an immutable function graph. Build one with a Builder or Linear.
type Graph struct {
	fns     []string
	succ    [][]int
	pred    [][]int
	commute [][2]int
}

// Builder accumulates functions and links and validates them into a Graph.
type Builder struct {
	fns     []string
	deps    [][2]int
	commute [][2]int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddFunction appends a required function and returns its node index.
func (b *Builder) AddFunction(name string) int {
	b.fns = append(b.fns, name)
	return len(b.fns) - 1
}

// AddDependency records that the output of function from feeds function to.
func (b *Builder) AddDependency(from, to int) *Builder {
	b.deps = append(b.deps, [2]int{from, to})
	return b
}

// AddCommutation records that functions a and b may be composed in either
// order when they are adjacent in the dependency chain.
func (b *Builder) AddCommutation(a, c int) *Builder {
	b.commute = append(b.commute, [2]int{a, c})
	return b
}

// Build validates the accumulated structure and returns the Graph. It
// requires at least one function, in-range link endpoints, acyclicity, and
// weak connectivity.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.fns)
	if n == 0 {
		return nil, errors.New("fgraph: empty function graph")
	}
	g := &Graph{
		fns:  append([]string(nil), b.fns...),
		succ: make([][]int, n),
		pred: make([][]int, n),
	}
	for _, d := range b.deps {
		if d[0] < 0 || d[0] >= n || d[1] < 0 || d[1] >= n {
			return nil, fmt.Errorf("fgraph: dependency %v out of range", d)
		}
		if d[0] == d[1] {
			return nil, fmt.Errorf("fgraph: self dependency on %q", b.fns[d[0]])
		}
		if !containsInt(g.succ[d[0]], d[1]) {
			g.succ[d[0]] = append(g.succ[d[0]], d[1])
			g.pred[d[1]] = append(g.pred[d[1]], d[0])
		}
	}
	for _, c := range b.commute {
		if c[0] < 0 || c[0] >= n || c[1] < 0 || c[1] >= n || c[0] == c[1] {
			return nil, fmt.Errorf("fgraph: commutation %v invalid", c)
		}
		g.commute = append(g.commute, c)
	}
	for i := range g.succ {
		sort.Ints(g.succ[i])
		sort.Ints(g.pred[i])
	}
	if _, err := g.topoOrder(); err != nil {
		return nil, err
	}
	if !g.weaklyConnected() {
		return nil, errors.New("fgraph: function graph is not connected")
	}
	return g, nil
}

// Linear builds a chain F1 -> F2 -> ... -> Fk with no commutation links.
// It panics on an empty list (a programming error).
func Linear(fns ...string) *Graph {
	b := NewBuilder()
	for i, f := range fns {
		b.AddFunction(f)
		if i > 0 {
			b.AddDependency(i-1, i)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("fgraph.Linear: " + err.Error())
	}
	return g
}

// NumFunctions returns the number of function nodes.
func (g *Graph) NumFunctions() int { return len(g.fns) }

// Function returns the name of function node i.
func (g *Graph) Function(i int) string { return g.fns[i] }

// Functions returns a copy of all function names in node order.
func (g *Graph) Functions() []string { return append([]string(nil), g.fns...) }

// Successors returns the function nodes that depend on i's output.
// The returned slice must not be modified.
func (g *Graph) Successors(i int) []int { return g.succ[i] }

// Predecessors returns the function nodes whose output feeds i.
// The returned slice must not be modified.
func (g *Graph) Predecessors(i int) []int { return g.pred[i] }

// Sources returns the nodes with no predecessors (fed by the application
// sender).
func (g *Graph) Sources() []int {
	var s []int
	for i := range g.fns {
		if len(g.pred[i]) == 0 {
			s = append(s, i)
		}
	}
	return s
}

// Sinks returns the nodes with no successors (feeding the destination).
func (g *Graph) Sinks() []int {
	var s []int
	for i := range g.fns {
		if len(g.succ[i]) == 0 {
			s = append(s, i)
		}
	}
	return s
}

// Commutations returns the commutation pairs. The slice must not be
// modified.
func (g *Graph) Commutations() [][2]int { return g.commute }

// TopoOrder returns a topological order of the function nodes.
func (g *Graph) TopoOrder() []int {
	order, err := g.topoOrder()
	if err != nil {
		// Build guarantees acyclicity, so this is unreachable for graphs
		// constructed through the public API.
		panic(err)
	}
	return order
}

func (g *Graph) topoOrder() ([]int, error) {
	n := len(g.fns)
	indeg := make([]int, n)
	for i := range g.fns {
		indeg[i] = len(g.pred[i])
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("fgraph: dependency cycle")
	}
	return order, nil
}

func (g *Graph) weaklyConnected() bool {
	n := len(g.fns)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
		for _, v := range g.pred[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		fns:     append([]string(nil), g.fns...),
		succ:    make([][]int, len(g.succ)),
		pred:    make([][]int, len(g.pred)),
		commute: append([][2]int(nil), g.commute...),
	}
	for i := range g.succ {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	return c
}

// Equal reports whether two graphs have identical functions, dependencies,
// and commutation links.
func (g *Graph) Equal(o *Graph) bool { return g.signature() == o.signature() }

func (g *Graph) signature() string {
	var b strings.Builder
	for i, f := range g.fns {
		fmt.Fprintf(&b, "%d:%s;", i, f)
	}
	b.WriteByte('|')
	for i := range g.succ {
		for _, v := range g.succ[i] {
			fmt.Fprintf(&b, "%d>%d;", i, v)
		}
	}
	return b.String()
}

// String renders the graph as "F1->F2 F1->F3 ..." with node names.
func (g *Graph) String() string {
	var b strings.Builder
	for i := range g.succ {
		for _, v := range g.succ[i] {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s->%s", g.fns[i], g.fns[v])
		}
	}
	if b.Len() == 0 {
		// single node, no edges
		b.WriteString(g.fns[0])
	}
	return b.String()
}

// swappable reports whether nodes a and b form a chain segment a->b with
// out(a)={b} and in(b)={a}, which is the condition under which their order
// can be exchanged without touching the rest of the graph.
func (g *Graph) swappable(a, b int) bool {
	return len(g.succ[a]) == 1 && g.succ[a][0] == b && len(g.pred[b]) == 1 && g.pred[b][0] == a
}

// swapAdjacent rewires a->b into b->a in place: pred(a)→b, b→a, a→succ(b).
// It reports whether the swap applied (in either orientation).
func (g *Graph) swapAdjacent(a, b int) bool {
	if g.swappable(b, a) {
		a, b = b, a
	} else if !g.swappable(a, b) {
		return false
	}
	preds := append([]int(nil), g.pred[a]...)
	succs := append([]int(nil), g.succ[b]...)
	// Detach the segment.
	for _, p := range preds {
		g.succ[p] = removeInt(g.succ[p], a)
	}
	for _, s := range succs {
		g.pred[s] = removeInt(g.pred[s], b)
	}
	// Rewire as p -> b -> a -> s.
	g.pred[a] = []int{b}
	g.succ[a] = succs
	g.pred[b] = preds
	g.succ[b] = []int{a}
	for _, p := range preds {
		g.succ[p] = insertSorted(g.succ[p], b)
	}
	for _, s := range succs {
		g.pred[s] = insertSorted(g.pred[s], a)
	}
	return true
}

// Patterns enumerates the composition patterns reachable from g by applying
// commutation-link exchanges, including g itself, up to max graphs (max <= 0
// means unbounded). Exploration is breadth-first, so patterns requiring
// fewer exchanges come first.
func (g *Graph) Patterns(max int) []*Graph {
	seen := map[string]bool{g.signature(): true}
	patterns := []*Graph{g.Clone()}
	for at := 0; at < len(patterns); at++ {
		if max > 0 && len(patterns) >= max {
			break
		}
		cur := patterns[at]
		for _, c := range cur.commute {
			next := cur.Clone()
			if !next.swapAdjacent(c[0], c[1]) {
				continue
			}
			sig := next.signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			patterns = append(patterns, next)
			if max > 0 && len(patterns) >= max {
				break
			}
		}
	}
	return patterns
}

// Branches returns every source→sink dependency path, each as a slice of
// node indices. A probe traverses exactly one branch (§4.3); the destination
// merges branch probes back into complete service graphs. The number of
// branches is capped at maxBranches to bound work on pathological DAGs
// (maxBranches <= 0 means unbounded).
func (g *Graph) Branches(maxBranches int) [][]int {
	var out [][]int
	var path []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		path = append(path, u)
		defer func() { path = path[:len(path)-1] }()
		if len(g.succ[u]) == 0 {
			out = append(out, append([]int(nil), path...))
			return maxBranches <= 0 || len(out) < maxBranches
		}
		for _, v := range g.succ[u] {
			if !dfs(v) {
				return false
			}
		}
		return true
	}
	for _, s := range g.Sources() {
		if !dfs(s) {
			break
		}
	}
	return out
}

// SharedFunctions returns the node indices that occur in more than one
// branch — the functions on which branch probes must agree for their
// recordings to merge into one service graph.
func (g *Graph) SharedFunctions(maxBranches int) []int {
	count := make([]int, len(g.fns))
	for _, br := range g.Branches(maxBranches) {
		for _, f := range br {
			count[f]++
		}
	}
	var shared []int
	for i, c := range count {
		if c > 1 {
			shared = append(shared, i)
		}
	}
	return shared
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func removeInt(s []int, x int) []int {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}
