package fgraph

import (
	"bytes"
	"encoding/gob"
)

// wireGraph is the exported wire form of a Graph for gob transport between
// real networked nodes.
type wireGraph struct {
	Fns     []string
	Deps    [][2]int
	Commute [][2]int
}

// GobEncode implements gob.GobEncoder, so messages carrying function graphs
// (probes, requests, service graphs) can cross process boundaries.
func (g *Graph) GobEncode() ([]byte, error) {
	w := wireGraph{Fns: g.fns, Commute: g.commute}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			w.Deps = append(w.Deps, [2]int{u, v})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The decoded graph passes the same
// validation as Builder.Build, so a malformed peer cannot inject cyclic or
// disconnected graphs.
func (g *Graph) GobDecode(data []byte) error {
	var w wireGraph
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	b := NewBuilder()
	for _, f := range w.Fns {
		b.AddFunction(f)
	}
	for _, d := range w.Deps {
		b.AddDependency(d[0], d[1])
	}
	for _, c := range w.Commute {
		b.AddCommutation(c[0], c[1])
	}
	decoded, err := b.Build()
	if err != nil {
		return err
	}
	*g = *decoded
	return nil
}
