package fgraph

import (
	"math/rand"
	"testing"
)

// diamond builds F0 -> {F1, F2} -> F3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddFunction([]string{"src", "left", "right", "sink"}[i])
	}
	b.AddDependency(0, 1).AddDependency(0, 2).AddDependency(1, 3).AddDependency(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinearGraph(t *testing.T) {
	g := Linear("a", "b", "c")
	if g.NumFunctions() != 3 {
		t.Fatalf("n=%d", g.NumFunctions())
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sources=%v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("sinks=%v", got)
	}
	if got := g.Successors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("succ(0)=%v", got)
	}
	if got := g.Predecessors(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pred(2)=%v", got)
	}
	if g.Function(1) != "b" {
		t.Fatalf("Function(1)=%q", g.Function(1))
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder()
	b.AddFunction("a")
	b.AddFunction("b")
	b.AddDependency(0, 1).AddDependency(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty graph not rejected")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	b := NewBuilder()
	b.AddFunction("a")
	b.AddFunction("b")
	b.AddFunction("c")
	b.AddDependency(0, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected graph not rejected")
	}
}

func TestBuildRejectsBadLinks(t *testing.T) {
	b := NewBuilder()
	b.AddFunction("a")
	b.AddDependency(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range dependency not rejected")
	}
	b2 := NewBuilder()
	b2.AddFunction("a")
	b2.AddDependency(0, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("self dependency not rejected")
	}
	b3 := NewBuilder()
	b3.AddFunction("a")
	b3.AddFunction("b")
	b3.AddDependency(0, 1)
	b3.AddCommutation(0, 0)
	if _, err := b3.Build(); err == nil {
		t.Fatal("degenerate commutation not rejected")
	}
}

func TestDuplicateDependencyIgnored(t *testing.T) {
	b := NewBuilder()
	b.AddFunction("a")
	b.AddFunction("b")
	b.AddDependency(0, 1).AddDependency(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Successors(0)) != 1 {
		t.Fatal("duplicate dependency not deduplicated")
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	pos := make(map[int]int)
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < g.NumFunctions(); u++ {
		for _, v := range g.Successors(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("topo order violated: %d before %d in %v", v, u, order)
			}
		}
	}
}

func TestBranchesDiamond(t *testing.T) {
	g := diamond(t)
	br := g.Branches(0)
	if len(br) != 2 {
		t.Fatalf("branches=%v", br)
	}
	want := map[string]bool{"0-1-3": true, "0-2-3": true}
	for _, b := range br {
		key := ""
		for i, f := range b {
			if i > 0 {
				key += "-"
			}
			key += string(rune('0' + f))
		}
		if !want[key] {
			t.Fatalf("unexpected branch %v", b)
		}
		delete(want, key)
	}
}

func TestBranchesLinear(t *testing.T) {
	g := Linear("a", "b", "c")
	br := g.Branches(0)
	if len(br) != 1 || len(br[0]) != 3 {
		t.Fatalf("branches=%v", br)
	}
}

func TestBranchesCap(t *testing.T) {
	g := diamond(t)
	br := g.Branches(1)
	if len(br) != 1 {
		t.Fatalf("cap ignored: %v", br)
	}
}

func TestSharedFunctions(t *testing.T) {
	g := diamond(t)
	shared := g.SharedFunctions(0)
	if len(shared) != 2 || shared[0] != 0 || shared[1] != 3 {
		t.Fatalf("shared=%v, want [0 3]", shared)
	}
	if got := Linear("a", "b").SharedFunctions(0); got != nil {
		t.Fatalf("linear graph has shared functions: %v", got)
	}
}

func TestPatternsLinearWithOneCommutation(t *testing.T) {
	// a -> b -> c with b,c exchangeable: two patterns.
	b := NewBuilder()
	b.AddFunction("a")
	b.AddFunction("b")
	b.AddFunction("c")
	b.AddDependency(0, 1).AddDependency(1, 2)
	b.AddCommutation(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pats := g.Patterns(0)
	if len(pats) != 2 {
		t.Fatalf("patterns=%d, want 2", len(pats))
	}
	if !pats[0].Equal(g) {
		t.Fatal("first pattern must be the original graph")
	}
	// The swapped pattern is a -> c -> b.
	p := pats[1]
	if s := p.Successors(0); len(s) != 1 || s[0] != 2 {
		t.Fatalf("swapped succ(a)=%v", s)
	}
	if s := p.Successors(2); len(s) != 1 || s[0] != 1 {
		t.Fatalf("swapped succ(c)=%v", s)
	}
	if len(p.Successors(1)) != 0 {
		t.Fatalf("swapped succ(b)=%v", p.Successors(1))
	}
}

func TestPatternsTwoIndependentCommutations(t *testing.T) {
	// a->b->c->d->e with (b,c) and (d,e) exchangeable: 4 patterns.
	b := NewBuilder()
	for _, f := range []string{"a", "b", "c", "d", "e"} {
		b.AddFunction(f)
	}
	for i := 0; i < 4; i++ {
		b.AddDependency(i, i+1)
	}
	b.AddCommutation(1, 2).AddCommutation(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pats := g.Patterns(0)
	if len(pats) != 4 {
		t.Fatalf("patterns=%d, want 4", len(pats))
	}
	// All patterns distinct.
	for i := range pats {
		for j := i + 1; j < len(pats); j++ {
			if pats[i].Equal(pats[j]) {
				t.Fatalf("patterns %d and %d identical", i, j)
			}
		}
	}
}

func TestPatternsRespectMax(t *testing.T) {
	b := NewBuilder()
	for _, f := range []string{"a", "b", "c", "d", "e"} {
		b.AddFunction(f)
	}
	for i := 0; i < 4; i++ {
		b.AddDependency(i, i+1)
	}
	b.AddCommutation(1, 2).AddCommutation(3, 4)
	g, _ := b.Build()
	if got := g.Patterns(3); len(got) != 3 {
		t.Fatalf("max not respected: %d", len(got))
	}
}

func TestPatternsNonSwappablePairIgnored(t *testing.T) {
	// In the diamond, left and right are parallel, not adjacent, so a
	// commutation link between them produces no extra pattern.
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddFunction([]string{"src", "left", "right", "sink"}[i])
	}
	b.AddDependency(0, 1).AddDependency(0, 2).AddDependency(1, 3).AddDependency(2, 3)
	b.AddCommutation(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pats := g.Patterns(0); len(pats) != 1 {
		t.Fatalf("patterns=%d, want 1", len(pats))
	}
}

// Property: every pattern is a valid DAG over the same function multiset,
// and every branch of every pattern visits each function at most once.
func TestPatternsPreserveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		b := NewBuilder()
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			b.AddFunction(names[i])
		}
		for i := 0; i < n-1; i++ {
			b.AddDependency(i, i+1)
		}
		// Random commutation pairs on adjacent chain nodes.
		for k := 0; k < 1+rng.Intn(2); k++ {
			i := rng.Intn(n - 1)
			b.AddCommutation(i, i+1)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range g.Patterns(16) {
			order := p.TopoOrder() // panics on cycle
			if len(order) != n {
				t.Fatalf("pattern lost nodes: %v", order)
			}
			for _, br := range p.Branches(0) {
				seen := map[int]bool{}
				for _, f := range br {
					if seen[f] {
						t.Fatalf("branch revisits function %d: %v", f, br)
					}
					seen[f] = true
				}
			}
			// Same function multiset.
			for i := 0; i < n; i++ {
				if p.Function(i) != g.Function(i) {
					t.Fatal("pattern renamed a function")
				}
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	c.succ[0] = nil
	if len(g.Successors(0)) != 2 {
		t.Fatal("mutating clone affected original")
	}
}

func TestString(t *testing.T) {
	g := Linear("a", "b")
	if s := g.String(); s != "a->b" {
		t.Fatalf("String=%q", s)
	}
	single, err := func() (*Graph, error) {
		b := NewBuilder()
		b.AddFunction("solo")
		return b.Build()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if s := single.String(); s != "solo" {
		t.Fatalf("String=%q", s)
	}
}

func TestFunctionsCopy(t *testing.T) {
	g := Linear("a", "b")
	fs := g.Functions()
	fs[0] = "mutated"
	if g.Function(0) != "a" {
		t.Fatal("Functions returned a live reference")
	}
}
