package fgraph

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatal(err)
	}
	var out Graph
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestGobRoundTripLinear(t *testing.T) {
	g := Linear("a", "b", "c")
	got := roundTrip(t, g)
	if !got.Equal(g) {
		t.Fatalf("round trip changed graph: %s vs %s", got, g)
	}
}

func TestGobRoundTripDAGWithCommutation(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddFunction(string(rune('a' + i)))
	}
	b.AddDependency(0, 1).AddDependency(0, 2).AddDependency(1, 3).AddDependency(2, 3).AddDependency(3, 4)
	b.AddCommutation(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, g)
	if !got.Equal(g) {
		t.Fatal("round trip changed DAG")
	}
	if len(got.Commutations()) != 1 {
		t.Fatal("commutation links lost")
	}
	// The decoded graph is fully functional.
	if len(got.Patterns(0)) != len(g.Patterns(0)) {
		t.Fatal("patterns differ after round trip")
	}
	if len(got.Branches(0)) != len(g.Branches(0)) {
		t.Fatal("branches differ after round trip")
	}
}

// Property: any valid built graph survives a gob round trip intact.
func TestGobRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddFunction(string(rune('a' + i)))
		}
		for i := 0; i < n-1; i++ {
			b.AddDependency(i, i+1)
		}
		// Random extra forward edges keep it a DAG.
		for k := 0; k < rng.Intn(3); k++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			b.AddDependency(i, j)
		}
		if rng.Intn(2) == 0 && n >= 3 {
			i := rng.Intn(n - 1)
			b.AddCommutation(i, i+1)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if got := roundTrip(t, g); !got.Equal(g) {
			t.Fatalf("trial %d: round trip changed graph", trial)
		}
	}
}

func TestGobDecodeRejectsMalformed(t *testing.T) {
	// An adversarial wire form encoding a cyclic graph must be rejected by
	// the decode-time validation.
	w := wireGraph{
		Fns:  []string{"a", "b"},
		Deps: [][2]int{{0, 1}, {1, 0}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	var g Graph
	if err := g.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("cyclic wire graph accepted")
	}
}
