package federation

import "testing"

func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"domains=2",
		"domains=4,gateways=2",
		"domains=3,gateways=1,hold=10s,life=30s",
		"domains=8,hold=1m30s",
		"domains=1",
		"gateways=2",
		"domains=2,domains=3",
		"domains=2,hold=-5s",
		"bogus=1",
		"=,=,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		// Every accepted spec is internally valid and round-trips through
		// its canonical String form.
		if spec.Domains < 2 {
			t.Fatalf("accepted fewer than 2 domains: %+v", spec)
		}
		if spec.Gateways < 0 {
			t.Fatalf("accepted negative gateway count: %+v", spec)
		}
		if spec.Hold < 0 || spec.Life < 0 {
			t.Fatalf("accepted negative duration: %+v", spec)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", spec.String(), err)
		}
		if *back != *spec {
			t.Fatalf("round trip %+v -> %q -> %+v", spec, spec.String(), back)
		}
	})
}
