package federation

import (
	"repro/internal/bcp"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/service"
)

// prepareMsg asks a gateway to probe one per-domain segment locally and, on
// success, convert the winning soft-state reservation into a held one.
type prepareMsg struct {
	FedID uint64
	Seg   int
	SubID uint64
	Sub   *service.Request
	// Domain is the participant's domain, echoed for tracing.
	Domain int
}

// voteMsg is the participant's prepare outcome.
type voteMsg struct {
	FedID uint64
	Seg   int
	Ok    bool
}

// decideMsg carries the origin coordinator's decision for one segment.
type decideMsg struct {
	FedID  uint64
	Seg    int
	SubID  uint64
	Commit bool
}

// decidedMsg acknowledges that a commit decision was applied (Committed) or
// arrived after the hold had already expired (not Committed).
type decidedMsg struct {
	FedID     uint64
	Seg       int
	Committed bool
}

type holdRec struct {
	fedID uint64
	seg   int
}

// Agent is the participant side of the two-phase commit, hosted on every
// gateway peer. A prepare runs a local BCP composition for the segment's
// sub-request and registers the winning service graph as a held reservation
// in the gateway's engine; the decision promotes the hold into a committed
// session with a bounded life, or releases it. A hold that hears no decision
// within the hold window presumes abort and releases itself.
type Agent struct {
	host   p2p.Node
	eng    *bcp.Engine
	domain int
	cfg    Config

	holds     map[uint64]holdRec // subID -> held reservation
	committed map[uint64]bool    // subID tombstones for duplicate decides
	seen      map[uint64]bool    // subID dedup for duplicated prepares

	// Ledger counts this gateway's 2PC outcomes.
	Ledger Ledger
	// Trace, when non-nil, receives fed.prepare/commit/abort events.
	Trace obs.Tracer
	// Ctr, when non-nil, receives the per-node federation counters.
	Ctr *obs.NodeCounters
}

// NewAgent registers the participant protocol on a gateway peer.
func NewAgent(host p2p.Node, eng *bcp.Engine, domain int, cfg Config) *Agent {
	a := &Agent{
		host: host, eng: eng, domain: domain, cfg: cfg.withDefaults(),
		holds:     make(map[uint64]holdRec),
		committed: make(map[uint64]bool),
		seen:      make(map[uint64]bool),
	}
	host.Handle(MsgPrepare, a.onPrepare)
	host.Handle(MsgDecide, a.onDecide)
	return a
}

func (a *Agent) onPrepare(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(prepareMsg)
	if a.seen[m.SubID] {
		// Duplicated prepare (dup fault): the first copy's compose is in
		// flight or resolved; a second compose under the same sub-ID would
		// double-reserve.
		return
	}
	a.seen[m.SubID] = true
	origin := msg.From
	a.eng.Compose(m.Sub, func(res bcp.Result) {
		if !res.Ok {
			a.host.Send(p2p.Message{Type: MsgVote, To: origin, Size: 32,
				Payload: voteMsg{FedID: m.FedID, Seg: m.Seg, Ok: false}})
			return
		}
		sub := m.SubID
		a.eng.Hold(sub, res.Best, a.cfg.Hold, func() { a.expire(sub) })
		a.holds[sub] = holdRec{fedID: m.FedID, seg: m.Seg}
		a.Ledger.Prepares++
		if a.Ctr != nil {
			a.Ctr.FedPrepares.Add(1)
		}
		if a.Trace != nil {
			a.Trace.Emit(obs.FedPrepare(a.host.Now(), a.host.ID(), m.FedID, sub, a.domain))
		}
		a.host.Send(p2p.Message{Type: MsgVote, To: origin, Size: 32,
			Payload: voteMsg{FedID: m.FedID, Seg: m.Seg, Ok: true}})
	})
}

// expire is the presumed-abort path: the hold window elapsed with no
// decision, and the engine has already torn the reservation down.
func (a *Agent) expire(subID uint64) {
	rec, ok := a.holds[subID]
	if !ok {
		return
	}
	delete(a.holds, subID)
	a.Ledger.Expires++
	if a.Ctr != nil {
		a.Ctr.FedAborts.Add(1)
	}
	if a.Trace != nil {
		a.Trace.Emit(obs.FedAbort(a.host.Now(), a.host.ID(), rec.fedID, subID, a.domain, "expire"))
	}
}

func (a *Agent) onDecide(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(decideMsg)
	origin := msg.From
	if !m.Commit {
		if rec, ok := a.holds[m.SubID]; ok {
			a.eng.AbortHold(m.SubID)
			delete(a.holds, m.SubID)
			a.Ledger.Aborts++
			if a.Ctr != nil {
				a.Ctr.FedAborts.Add(1)
			}
			if a.Trace != nil {
				a.Trace.Emit(obs.FedAbort(a.host.Now(), a.host.ID(), rec.fedID, m.SubID, a.domain, "abort"))
			}
		}
		return
	}
	rec, ok := a.holds[m.SubID]
	if !ok {
		// Duplicate decide for an already-committed sub-session, or a decide
		// that lost the race against hold expiry. Re-acknowledging a
		// committed one keeps the origin's ack collection idempotent.
		a.host.Send(p2p.Message{Type: MsgDecided, To: origin, Size: 32,
			Payload: decidedMsg{FedID: m.FedID, Seg: m.Seg, Committed: a.committed[m.SubID]}})
		return
	}
	g := a.eng.Promote(m.SubID)
	delete(a.holds, m.SubID)
	a.committed[m.SubID] = true
	a.Ledger.Commits++
	if a.Ctr != nil {
		a.Ctr.FedCommits.Add(1)
	}
	if a.Trace != nil {
		a.Trace.Emit(obs.FedCommit(a.host.Now(), a.host.ID(), rec.fedID, m.SubID, a.domain))
	}
	sub := m.SubID
	a.host.After(a.cfg.Life, func() {
		delete(a.committed, sub)
		if g != nil {
			a.eng.Teardown(g)
		}
	})
	a.host.Send(p2p.Message{Type: MsgDecided, To: origin, Size: 32,
		Payload: decidedMsg{FedID: m.FedID, Seg: m.Seg, Committed: true}})
}

// Holds returns the number of reservations currently held awaiting a
// decision.
func (a *Agent) Holds() int { return len(a.holds) }

// Domain returns the agent's administrative domain.
func (a *Agent) Domain() int { return a.domain }
