package federation

import (
	"sort"
	"time"

	"repro/internal/bcp"
	"repro/internal/obs"
	"repro/internal/p2p"
)

// Protocol message types.
const (
	MsgAdvertise = "fed.advertise" // coordinator -> coordinator: domain function set
	MsgCompose   = "fed.compose"   // client -> domain coordinator: new request
	MsgResult    = "fed.result"    // coordinator -> client: final outcome
	MsgPrepare   = "fed.prepare"   // origin coordinator -> participant gateway
	MsgVote      = "fed.vote"      // participant -> origin: prepared / refused
	MsgDecide    = "fed.decide"    // origin -> participant: commit or abort
	MsgDecided   = "fed.decided"   // participant -> origin: decision applied
)

// Config tunes the federation protocol timers. The zero value of each field
// takes the documented default.
type Config struct {
	// Hold is how long a prepared (held) reservation waits for the commit
	// decision before presumed abort releases it (default 15s). It must
	// exceed the origin's VoteTimeout plus decision latency, or healthy
	// commits race the release.
	Hold time.Duration
	// VoteTimeout bounds the origin coordinator's wait for all votes
	// (default 12s; sub-compositions give up after bcp's GiveUpTimeout, so
	// this needs headroom above that).
	VoteTimeout time.Duration
	// AckTimeout bounds the origin's wait for commit acknowledgements
	// (default 5s). A commit not fully acknowledged in time counts as a
	// failed composition; already-committed segments still self-release at
	// end of life.
	AckTimeout time.Duration
	// Life is how long a committed cross-domain session holds its
	// reservations before the holding gateways tear it down (default 30s).
	// Committed sessions are bounded leases by construction.
	Life time.Duration
	// ClientTimeout bounds a client's wait for any outcome — the backstop
	// against a crashed or partitioned origin coordinator (default 25s).
	ClientTimeout time.Duration
}

// DefaultConfig returns the timer defaults.
func DefaultConfig() Config {
	return Config{
		Hold:          15 * time.Second,
		VoteTimeout:   12 * time.Second,
		AckTimeout:    5 * time.Second,
		Life:          30 * time.Second,
		ClientTimeout: 25 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.Hold == 0 {
		c.Hold = def.Hold
	}
	if c.VoteTimeout == 0 {
		c.VoteTimeout = def.VoteTimeout
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = def.AckTimeout
	}
	if c.Life == 0 {
		c.Life = def.Life
	}
	if c.ClientTimeout == 0 {
		c.ClientTimeout = def.ClientTimeout
	}
	return c
}

// Apply folds the spec's timer overrides into the config.
func (c Config) Apply(s *Spec) Config {
	if s.Hold != 0 {
		c.Hold = s.Hold
	}
	if s.Life != 0 {
		c.Life = s.Life
	}
	return c.withDefaults()
}

// CommitTTL is the per-holder backstop lifetime federated deployments set on
// every BCP hard allocation (bcp.Config.CommitTTL): long enough to outlive
// any legitimately held or committed session, so it only ever fires for
// reservations stranded by a crashed session owner.
func (c Config) CommitTTL() time.Duration {
	c = c.withDefaults()
	return c.Hold + c.Life + 10*time.Second
}

// Drain is how long after the last request arrival a simulation must run for
// every federated session to resolve: client give-up, hold expiry, committed
// session end of life, and the TTL backstop all fire within this window.
func (c Config) Drain() time.Duration {
	c = c.withDefaults()
	return c.ClientTimeout + c.CommitTTL() + 10*time.Second
}

// subIDBase namespaces sub-request IDs minted for per-domain segments above
// both workload request IDs (< 2^40) and the recovery package's reattempt
// namespace (>= 2^40, < 2^50): subID = subIDBase | fedID<<4 | segment.
const subIDBase = uint64(1) << 62

// maxSegments bounds the per-domain segments of one request so segment
// indices fit the sub-ID namespace.
const maxSegments = 15

// SubID returns the deterministic sub-request ID for segment seg of
// federated request fedID.
func SubID(fedID uint64, seg int) uint64 {
	return subIDBase | fedID<<4 | uint64(seg)
}

// Ledger counts one participant's two-phase-commit outcomes. Every prepare
// resolves exactly one way — commit, explicit abort, or timeout expiry — so
// after a full drain Prepares == Commits + Aborts + Expires.
type Ledger struct {
	Prepares int64 // sub-sessions converted to held reservations
	Commits  int64 // holds promoted to committed sessions
	Aborts   int64 // holds released by an explicit abort decision
	Expires  int64 // holds released by presumed-abort timeout
}

// Add accumulates o into l.
func (l *Ledger) Add(o Ledger) {
	l.Prepares += o.Prepares
	l.Commits += o.Commits
	l.Aborts += o.Aborts
	l.Expires += o.Expires
}

// Outstanding is the number of holds not yet resolved.
func (l Ledger) Outstanding() int64 { return l.Prepares - l.Commits - l.Aborts - l.Expires }

// Deployment is the wiring input for one federated cluster: per-gateway
// transport nodes and BCP engines, resolved by peer ID.
type Deployment struct {
	Plan *DomainPlan
	Cfg  Config
	// Host and Engine resolve a gateway peer's transport node and engine.
	Host   func(p2p.NodeID) p2p.Node
	Engine func(p2p.NodeID) *bcp.Engine
	// LocalFns lists each domain's provided functions (what its members'
	// components implement) — the coordinator's administrative knowledge of
	// its own domain, exchanged with the other coordinators at bootstrap.
	LocalFns [][]string
	// Trace/Obs mirror the cluster's observability wiring.
	Trace obs.Tracer
	Obs   *obs.Registry
}

// Federation bundles the control plane of one federated deployment.
type Federation struct {
	Plan   *DomainPlan
	Cfg    Config
	Coords []*Coordinator // one per domain
	Agents []*Agent       // every gateway, domain-major order
	agents map[p2p.NodeID]*Agent
	trace  obs.Tracer
}

// New builds the coordinators and gateway agents over an existing peer
// population. Call Bootstrap afterwards (and run the simulator until idle)
// to exchange the function advertisements.
func New(d Deployment) *Federation {
	cfg := d.Cfg.withDefaults()
	f := &Federation{Plan: d.Plan, Cfg: cfg, agents: make(map[p2p.NodeID]*Agent), trace: d.Trace}
	for dom := 0; dom < d.Plan.NumDomains; dom++ {
		for _, gw := range d.Plan.Gateways(dom) {
			a := NewAgent(d.Host(gw), d.Engine(gw), dom, cfg)
			a.Trace = d.Trace
			if d.Obs != nil {
				a.Ctr = d.Obs.Node(gw)
			}
			f.Agents = append(f.Agents, a)
			f.agents[gw] = a
		}
		fns := append([]string(nil), d.LocalFns[dom]...)
		sort.Strings(fns)
		co := NewCoordinator(d.Host(d.Plan.Coordinator(dom)), dom, d.Plan, cfg, fns)
		co.Trace = d.Trace
		f.Coords = append(f.Coords, co)
	}
	return f
}

// NewClient attaches a federation client to one peer, pointing at its
// domain's coordinator.
func (f *Federation) NewClient(host p2p.Node) *Client {
	dom := f.Plan.DomainOf(host.ID())
	cl := NewClient(host, f.Plan.Coordinator(dom), f.Cfg.ClientTimeout)
	cl.Trace = f.trace
	return cl
}

// Bootstrap exchanges the function advertisements between coordinators, in
// domain order. Run the simulator until idle afterwards so every remote
// table settles before requests arrive.
func (f *Federation) Bootstrap() {
	for _, co := range f.Coords {
		co.Advertise()
	}
}

// Agent returns the participant agent hosted on gateway gw, nil if gw is not
// a gateway.
func (f *Federation) Agent(gw p2p.NodeID) *Agent { return f.agents[gw] }

// DomainLedger sums the 2PC ledgers of domain d's gateways.
func (f *Federation) DomainLedger(d int) Ledger {
	var l Ledger
	for _, a := range f.Agents {
		if a.domain == d {
			l.Add(a.Ledger)
		}
	}
	return l
}

// TotalLedger sums every gateway's 2PC ledger.
func (f *Federation) TotalLedger() Ledger {
	var l Ledger
	for _, a := range f.Agents {
		l.Add(a.Ledger)
	}
	return l
}

// OutstandingHolds counts held reservations not yet promoted or released
// across all gateways — zero after a full drain.
func (f *Federation) OutstandingHolds() int {
	n := 0
	for _, a := range f.Agents {
		n += len(a.holds)
	}
	return n
}
