package federation

import (
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/service"
)

// Result is the outcome of a federated composition delivered to the client's
// callback.
type Result struct {
	ReqID uint64
	Ok    bool
	// Domains is the number of administrative domains the session spans
	// (1 for a composition served entirely within one domain, 0 on failure
	// before splitting).
	Domains int
	// CommitLatency is the origin coordinator's prepare-to-full-ack time on
	// success.
	CommitLatency time.Duration
	// SetupTime is the client's request-to-outcome time.
	SetupTime time.Duration
}

type clientCall struct {
	cb    func(Result)
	start time.Duration
	timer p2p.CancelFunc
}

// Client is a peer's entry point into the federation: it forwards
// compositions to its domain coordinator and delivers the outcome, with a
// give-up timeout as the backstop against a crashed or partitioned
// coordinator.
type Client struct {
	host    p2p.Node
	coord   p2p.NodeID
	timeout time.Duration
	pending map[uint64]*clientCall

	// Trace, when non-nil, receives the compose lifecycle events for
	// federated requests (sub-compositions are traced by the gateways' BCP
	// engines).
	Trace obs.Tracer
}

// NewClient registers the client protocol on one peer.
func NewClient(host p2p.Node, coord p2p.NodeID, timeout time.Duration) *Client {
	c := &Client{host: host, coord: coord, timeout: timeout,
		pending: make(map[uint64]*clientCall)}
	host.Handle(MsgResult, c.onResult)
	return c
}

// Compose submits req to the domain coordinator. cb is invoked exactly once,
// on this peer, with the outcome — a coordinator that never answers resolves
// as a failure after the client timeout.
func (c *Client) Compose(req *service.Request, cb func(Result)) {
	if err := req.Validate(); err != nil {
		cb(Result{ReqID: req.ID})
		return
	}
	if c.Trace != nil {
		c.Trace.Emit(obs.ComposeStart(c.host.Now(), c.host.ID(), req.ID,
			req.FGraph.NumFunctions(), req.Budget))
	}
	call := &clientCall{cb: cb, start: c.host.Now()}
	c.pending[req.ID] = call
	id := req.ID
	call.timer = c.host.After(c.timeout, func() {
		c.resolve(id, Result{ReqID: id})
	})
	c.host.Send(p2p.Message{Type: MsgCompose, To: c.coord, Size: 256,
		Payload: composeMsg{Req: req}})
}

func (c *Client) onResult(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(resultMsg)
	c.resolve(m.ReqID, Result{ReqID: m.ReqID, Ok: m.Ok, Domains: m.Domains,
		CommitLatency: m.CommitLat})
}

func (c *Client) resolve(id uint64, r Result) {
	call, ok := c.pending[id]
	if !ok {
		return
	}
	delete(c.pending, id)
	call.timer()
	r.SetupTime = c.host.Now() - call.start
	if c.Trace != nil {
		c.Trace.Emit(obs.ComposeDone(c.host.Now(), c.host.ID(), id, r.Ok, r.SetupTime))
	}
	call.cb(r)
}

// Pending returns the number of requests awaiting an outcome.
func (c *Client) Pending() int { return len(c.pending) }
