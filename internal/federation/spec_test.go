package federation

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"domains=2",
		"domains=4,gateways=2",
		"domains=3,gateways=1,hold=10s,life=30s",
		"domains=8,hold=1m30s",
	}
	for _, in := range cases {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got := s.String(); got != in {
			t.Errorf("ParseSpec(%q).String() = %q", in, got)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.String(), err)
		}
		if *again != *s {
			t.Errorf("round trip of %q changed the spec: %+v vs %+v", in, again, s)
		}
	}
}

func TestParseSpecOrderInsensitive(t *testing.T) {
	a, err := ParseSpec("gateways=2,domains=4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("domains=4,gateways=2")
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("key order changed the spec: %+v vs %+v", a, b)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"":                      "empty",
		"domains=1":             "at least 2",
		"domains=x":             "invalid",
		"domains=2,domains=3":   "twice",
		"gateways=0,domains=2":  "at least 1",
		"domains=2,hold=-5s":    "negative",
		"domains=2,bogus=1":     "want domains",
		"domains":               "key=value",
		"domains=2,life=potato": "invalid",
	}
	for in, want := range cases {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): expected error", in)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSpec(%q) error %q does not mention %q", in, err, want)
		}
	}
}

func TestPlanPartitionsPeers(t *testing.T) {
	s := &Spec{Domains: 3, Gateways: 2}
	p, err := s.Plan(20)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDomains != 3 || p.NumGateways != 2 {
		t.Fatalf("plan shape: %+v", p)
	}
	total := 0
	for d, members := range p.Members {
		total += len(members)
		if len(members) < 3 {
			t.Errorf("domain %d has %d members, want >= gateways+1", d, len(members))
		}
		for _, id := range members {
			if p.DomainOf(id) != d {
				t.Errorf("DomainOf(%d) = %d, want %d", id, p.DomainOf(id), d)
			}
		}
		if gw := p.Gateways(d); len(gw) != 2 || gw[0] != members[0] {
			t.Errorf("domain %d gateways %v", d, gw)
		}
		if p.Coordinator(d) != members[0] {
			t.Errorf("domain %d coordinator %d, want %d", d, p.Coordinator(d), members[0])
		}
	}
	if total != 20 {
		t.Errorf("members cover %d peers, want 20", total)
	}
	if p.DomainOf(-1) != -1 || p.DomainOf(99) != -1 {
		t.Error("DomainOf outside the peer set should be -1")
	}
}

func TestPlanTooFewPeers(t *testing.T) {
	s := &Spec{Domains: 4, Gateways: 2}
	if _, err := s.Plan(8); err == nil {
		t.Error("8 peers cannot host 4 domains of 2 gateways each")
	}
}

func TestCatalogForShards(t *testing.T) {
	s := &Spec{Domains: 3}
	p, err := s.Plan(9)
	if err != nil {
		t.Fatal(err)
	}
	catalog := []string{"a", "b", "c", "d", "e", "f", "g"}
	seen := make(map[string]int)
	for d := 0; d < 3; d++ {
		for _, fn := range p.CatalogFor(d, catalog) {
			seen[fn]++
		}
	}
	if len(seen) != len(catalog) {
		t.Errorf("shards cover %d of %d functions", len(seen), len(catalog))
	}
	for fn, n := range seen {
		if n != 1 {
			t.Errorf("function %s homed in %d domains", fn, n)
		}
	}
}

func TestDomainPartitionCutsDomain(t *testing.T) {
	s := &Spec{Domains: 2}
	p, err := s.Plan(10)
	if err != nil {
		t.Fatal(err)
	}
	part := p.DomainPartition(0, time.Second, 2*time.Second)
	if len(part.A)+len(part.B) != 10 {
		t.Errorf("partition covers %d peers, want 10", len(part.A)+len(part.B))
	}
	if part.From != time.Second || part.Until != 2*time.Second {
		t.Errorf("partition window %v..%v", part.From, part.Until)
	}
}

func TestSubIDNamespace(t *testing.T) {
	id := SubID(123, 7)
	if id < subIDBase {
		t.Errorf("SubID(123,7)=%d below namespace base", id)
	}
	if got := SubID(123, 7); got != id {
		t.Error("SubID not deterministic")
	}
	if SubID(123, 7) == SubID(123, 8) || SubID(123, 7) == SubID(124, 7) {
		t.Error("SubID collisions across segments/requests")
	}
}

func TestConfigDrainCoversTTL(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Drain() <= cfg.CommitTTL() {
		t.Errorf("Drain %v must exceed CommitTTL %v", cfg.Drain(), cfg.CommitTTL())
	}
	if cfg.CommitTTL() <= cfg.Hold+cfg.Life {
		t.Errorf("CommitTTL %v must exceed hold+life %v", cfg.CommitTTL(), cfg.Hold+cfg.Life)
	}
}
