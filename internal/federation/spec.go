// Package federation partitions a SpiderNet deployment into administrative
// domains — each with its own DHT keyspace shard and service registry — and
// composes requests whose function graphs span domains: the origin domain's
// coordinator splits the chain into per-domain subgraphs, each probed locally
// by a gateway peer of its domain, and commits the resulting distributed
// soft-state reservations with a presumed-abort two-phase commit.
//
// Roles: every domain designates its first Gateways members as gateway
// peers. Gateway peers bridge domains — they run the participant Agent that
// converts a locally probed sub-session into a held reservation (prepare)
// and promotes or releases it (commit/abort). The first gateway additionally
// hosts the domain Coordinator, which advertises the domain's function set
// to the other coordinators, splits and stitches cross-domain requests, and
// drives the two-phase commit for requests originating in its domain. Every
// peer carries a thin Client that forwards compositions to its coordinator.
//
// Fault tolerance is timeout-driven presumed abort: a held reservation that
// hears no decision self-releases after the hold window, a coordinator that
// collects no quorum of votes aborts, and committed sessions are bounded
// leases (they self-release at end of life, with a per-holder TTL backstop
// in BCP), so no reservation outlives its session even when a gateway or
// coordinator crashes mid-protocol.
package federation

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Spec is the compact command-line form of a federated deployment, as
// accepted by the -domains flag:
//
//	domains=4,gateways=2,hold=10s,life=30s
//
// Keys may appear in any order, each at most once. domains is the number of
// administrative domains (>= 2); gateways the gateway peers per domain
// (default 1); hold overrides the prepare-hold window and life the committed
// session lifetime (both default to the Config values). String renders the
// canonical form (fixed key order, zero-valued keys omitted), and Plan
// expands the spec into a DomainPlan over a peer count.
type Spec struct {
	Domains  int           // administrative domains (>= 2)
	Gateways int           // gateway peers per domain; 0 = default 1
	Hold     time.Duration // prepare-hold window override; 0 = Config default
	Life     time.Duration // committed session lifetime override; 0 = Config default
}

// ParseSpec parses the -domains grammar. The empty string is an error — "no
// federation" is expressed by not passing the flag at all.
func ParseSpec(s string) (*Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty domain spec (want e.g. %q)", "domains=4,gateways=2")
	}
	spec := &Spec{}
	seen := make(map[string]bool)
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("domain spec field %q: want key=value", field)
		}
		if seen[key] {
			return nil, fmt.Errorf("domain spec key %q given twice", key)
		}
		seen[key] = true
		switch key {
		case "domains", "gateways":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("domain spec %s=%q: %v", key, val, err)
			}
			if key == "domains" {
				if n < 2 {
					return nil, fmt.Errorf("domain spec domains=%d: want at least 2", n)
				}
				spec.Domains = n
			} else {
				if n < 1 {
					return nil, fmt.Errorf("domain spec gateways=%d: want at least 1", n)
				}
				spec.Gateways = n
			}
		case "hold", "life":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("domain spec %s=%q: %v", key, val, err)
			}
			if d < 0 {
				return nil, fmt.Errorf("domain spec %s=%v: negative", key, d)
			}
			if key == "hold" {
				spec.Hold = d
			} else {
				spec.Life = d
			}
		default:
			return nil, fmt.Errorf("domain spec key %q: want domains, gateways, hold, or life", key)
		}
	}
	if spec.Domains == 0 {
		return nil, fmt.Errorf("domain spec %q: missing required key domains", s)
	}
	return spec, nil
}

// String renders the canonical spec: fixed key order, zero-valued keys
// omitted. ParseSpec(s.String()) reproduces s for any spec with at least one
// non-zero field.
func (s *Spec) String() string {
	var parts []string
	if s.Domains != 0 {
		parts = append(parts, "domains="+strconv.Itoa(s.Domains))
	}
	if s.Gateways != 0 {
		parts = append(parts, "gateways="+strconv.Itoa(s.Gateways))
	}
	if s.Hold != 0 {
		parts = append(parts, "hold="+s.Hold.String())
	}
	if s.Life != 0 {
		parts = append(parts, "life="+s.Life.String())
	}
	return strings.Join(parts, ",")
}
