package federation

import (
	"math"
	"sort"
	"time"

	"repro/internal/fgraph"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// advertiseMsg announces one domain's provided function set to the other
// coordinators.
type advertiseMsg struct {
	Domain int
	Fns    []string
}

// composeMsg is a client's composition request to its domain coordinator.
type composeMsg struct {
	Req *service.Request
}

// resultMsg is the coordinator's final outcome back to the client.
type resultMsg struct {
	ReqID     uint64
	Ok        bool
	Domains   int
	CommitLat time.Duration
}

// segment is one per-domain subgraph of a split request.
type segment struct {
	domain int
	gw     p2p.NodeID
	sub    *service.Request
}

type fedState struct {
	fedID   uint64
	req     *service.Request
	client  p2p.NodeID
	segs    []segment
	domains int // distinct domains spanned

	votes     map[int]bool // segment -> vote
	acks      map[int]bool // segment -> committed ack
	decided   bool
	sentAt    time.Duration
	voteTimer p2p.CancelFunc
	ackTimer  p2p.CancelFunc
}

// Coordinator is one domain's federation control point. It advertises the
// domain's function set, splits requests originating in its domain into
// per-domain segments along the remote-availability table, and drives the
// two-phase commit over the segments' gateway agents.
type Coordinator struct {
	host   p2p.Node
	domain int
	plan   *DomainPlan
	cfg    Config

	localFns []string
	remote   map[string][]int // fn -> sorted providing domains

	pending map[uint64]*fedState
	aborted map[uint64]bool // recently aborted fedIDs, for straggler votes

	// Trace mirrors the cluster's tracer (coordinators themselves emit no
	// events today; clients and agents carry the observable lifecycle).
	Trace obs.Tracer
}

// NewCoordinator registers the coordinator protocol on domain d's
// coordinator peer. localFns is the domain's own provided function set.
func NewCoordinator(host p2p.Node, d int, plan *DomainPlan, cfg Config, localFns []string) *Coordinator {
	c := &Coordinator{
		host: host, domain: d, plan: plan, cfg: cfg.withDefaults(),
		localFns: localFns,
		remote:   make(map[string][]int),
		pending:  make(map[uint64]*fedState),
		aborted:  make(map[uint64]bool),
	}
	for _, fn := range localFns {
		c.remote[fn] = []int{d}
	}
	host.Handle(MsgAdvertise, c.onAdvertise)
	host.Handle(MsgCompose, c.onCompose)
	host.Handle(MsgVote, c.onVote)
	host.Handle(MsgDecided, c.onDecided)
	return c
}

// Advertise announces this domain's function set to every other coordinator.
func (c *Coordinator) Advertise() {
	for d := 0; d < c.plan.NumDomains; d++ {
		if d == c.domain {
			continue
		}
		c.host.Send(p2p.Message{Type: MsgAdvertise, To: c.plan.Coordinator(d),
			Size:    16 * len(c.localFns),
			Payload: advertiseMsg{Domain: c.domain, Fns: c.localFns}})
	}
}

func (c *Coordinator) onAdvertise(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(advertiseMsg)
	for _, fn := range m.Fns {
		doms := c.remote[fn]
		if !containsInt(doms, m.Domain) {
			doms = append(doms, m.Domain)
			sort.Ints(doms)
			c.remote[fn] = doms
		}
	}
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func (c *Coordinator) onCompose(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(composeMsg)
	req := m.Req
	if _, dup := c.pending[req.ID]; dup {
		// Duplicated compose (dup fault): the first copy's round is running.
		return
	}
	st := &fedState{
		fedID: req.ID, req: req, client: msg.From,
		votes: make(map[int]bool), acks: make(map[int]bool),
	}
	segs, ok := c.split(req)
	if !ok {
		c.finish(st, false)
		return
	}
	st.segs = segs
	seen := make(map[int]bool)
	for _, s := range segs {
		seen[s.domain] = true
	}
	st.domains = len(seen)
	c.pending[st.fedID] = st
	st.sentAt = c.host.Now()
	for i, s := range segs {
		c.host.Send(p2p.Message{Type: MsgPrepare, To: s.gw, Size: 256,
			Payload: prepareMsg{FedID: st.fedID, Seg: i, SubID: s.sub.ID,
				Sub: s.sub, Domain: s.domain}})
	}
	st.voteTimer = c.host.After(c.cfg.VoteTimeout, func() { c.decide(st, false) })
}

// split partitions the request's function graph into per-domain segments.
// Linear chains split at domain boundaries: each function prefers the
// previous function's domain, then the origin domain, then the
// lowest-numbered providing domain, and consecutive same-domain runs become
// one segment. Graphs with branches, commutations, variants, or quotas are
// not splittable and compose as a single segment in any one domain that
// provides every function (origin domain preferred).
func (c *Coordinator) split(req *service.Request) ([]segment, bool) {
	fns := req.FGraph.Functions()
	if !c.chain(req) {
		dom, ok := c.singleDomain(fns)
		if !ok {
			return nil, false
		}
		sub := c.subRequest(req, 0, dom, req.FGraph, len(fns), req.Dest)
		sub.Variants = req.Variants
		sub.Quota = req.Quota
		sub.MaxPatterns = req.MaxPatterns
		return []segment{{domain: dom, gw: sub.Source, sub: sub}}, true
	}

	// Assign each chain function a domain, in topological order.
	order := req.FGraph.TopoOrder()
	doms := make([]int, len(order))
	prev := -1
	for i, fn := range order {
		name := req.FGraph.Function(fn)
		providers := c.remote[name]
		if len(providers) == 0 {
			return nil, false
		}
		switch {
		case prev >= 0 && containsInt(providers, prev):
			doms[i] = prev
		case containsInt(providers, c.domain):
			doms[i] = c.domain
		default:
			doms[i] = providers[0]
		}
		prev = doms[i]
	}

	// Group consecutive same-domain runs into segments.
	type run struct {
		domain int
		fns    []string
	}
	var runs []run
	for i, fn := range order {
		name := req.FGraph.Function(fn)
		if len(runs) > 0 && runs[len(runs)-1].domain == doms[i] {
			runs[len(runs)-1].fns = append(runs[len(runs)-1].fns, name)
			continue
		}
		runs = append(runs, run{domain: doms[i], fns: []string{name}})
	}
	if len(runs) > maxSegments {
		return nil, false
	}

	segs := make([]segment, len(runs))
	for i, r := range runs {
		segs[i] = segment{domain: r.domain}
	}
	for i := len(runs) - 1; i >= 0; i-- {
		dest := req.Dest
		if i < len(runs)-1 {
			dest = segs[i+1].sub.Source
		}
		sub := c.subRequest(req, i, runs[i].domain, fgraph.Linear(runs[i].fns...), len(order), dest)
		segs[i].gw = sub.Source
		segs[i].sub = sub
	}
	return segs, true
}

// chain reports whether the request is a splittable linear chain.
func (c *Coordinator) chain(req *service.Request) bool {
	if len(req.Variants) > 0 || req.Quota != nil || len(req.FGraph.Commutations()) > 0 {
		return false
	}
	for i := 0; i < req.FGraph.NumFunctions(); i++ {
		if len(req.FGraph.Successors(i)) > 1 || len(req.FGraph.Predecessors(i)) > 1 {
			return false
		}
	}
	return true
}

// singleDomain finds one domain providing every listed function, preferring
// the origin domain.
func (c *Coordinator) singleDomain(fns []string) (int, bool) {
	cand := make(map[int]int) // domain -> provided count
	for _, fn := range fns {
		for _, d := range c.remote[fn] {
			cand[d]++
		}
	}
	if cand[c.domain] == len(fns) {
		return c.domain, true
	}
	best, ok := -1, false
	for d, n := range cand {
		if n == len(fns) && (!ok || d < best) {
			best, ok = d, true
		}
	}
	return best, ok
}

// subRequest builds segment seg's sub-request: sourced at the segment
// domain's ingress gateway, destined for the next segment's gateway (or the
// original destination), with the finite QoS requirements scaled by the
// segment's share of the chain and the probe budget split evenly.
func (c *Coordinator) subRequest(req *service.Request, seg, dom int, fg *fgraph.Graph,
	totalFns int, dest p2p.NodeID) *service.Request {
	gws := c.plan.Gateways(dom)
	gw := gws[int(req.ID%uint64(len(gws)))]
	frac := float64(fg.NumFunctions()) / float64(totalFns)
	q := qos.Unbounded()
	for i := range q {
		if !math.IsInf(req.QoSReq[i], 1) {
			q[i] = req.QoSReq[i] * frac
		}
	}
	budget := req.Budget
	if totalFns > fg.NumFunctions() {
		budget = req.Budget * fg.NumFunctions() / totalFns
	}
	if budget < 2 {
		budget = 2
	}
	return &service.Request{
		ID:        SubID(req.ID, seg),
		FGraph:    fg,
		QoSReq:    q,
		Res:       req.Res,
		Bandwidth: req.Bandwidth,
		FailReq:   req.FailReq,
		Source:    gw,
		Dest:      dest,
		Budget:    budget,
	}
}

func (c *Coordinator) onVote(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(voteMsg)
	st, ok := c.pending[m.FedID]
	if !ok || st.decided {
		if !ok && m.Ok && c.aborted[m.FedID] {
			// Straggler yes-vote after the abort decision: release the
			// participant's hold early rather than waiting out the window.
			c.host.Send(p2p.Message{Type: MsgDecide, To: msg.From, Size: 32,
				Payload: decideMsg{FedID: m.FedID, Seg: m.Seg,
					SubID: SubID(m.FedID, m.Seg), Commit: false}})
		}
		return
	}
	if _, dup := st.votes[m.Seg]; dup {
		return
	}
	st.votes[m.Seg] = m.Ok
	if !m.Ok {
		c.decide(st, false)
		return
	}
	if len(st.votes) == len(st.segs) {
		c.decide(st, true)
	}
}

func (c *Coordinator) decide(st *fedState, commit bool) {
	if st.decided {
		return
	}
	st.decided = true
	if st.voteTimer != nil {
		st.voteTimer()
	}
	if commit {
		for i, s := range st.segs {
			c.host.Send(p2p.Message{Type: MsgDecide, To: s.gw, Size: 32,
				Payload: decideMsg{FedID: st.fedID, Seg: i, SubID: s.sub.ID, Commit: true}})
		}
		st.ackTimer = c.host.After(c.cfg.AckTimeout, func() { c.finish(st, false) })
		return
	}
	// Abort: release only the segments that voted yes; the rest hold nothing
	// (refused) or will presume abort when their hold window expires.
	for i, s := range st.segs {
		if st.votes[i] {
			c.host.Send(p2p.Message{Type: MsgDecide, To: s.gw, Size: 32,
				Payload: decideMsg{FedID: st.fedID, Seg: i, SubID: s.sub.ID, Commit: false}})
		}
	}
	fid := st.fedID
	c.aborted[fid] = true
	c.host.After(c.cfg.Hold, func() { delete(c.aborted, fid) })
	c.finish(st, false)
}

func (c *Coordinator) onDecided(_ p2p.Node, msg p2p.Message) {
	m := msg.Payload.(decidedMsg)
	st, ok := c.pending[m.FedID]
	if !ok {
		return
	}
	if !m.Committed {
		// A segment's hold expired before the commit decision arrived. The
		// session cannot be established; segments that did commit are
		// bounded leases and self-release at end of life.
		c.finish(st, false)
		return
	}
	st.acks[m.Seg] = true
	if len(st.acks) == len(st.segs) {
		c.finish(st, true)
	}
}

func (c *Coordinator) finish(st *fedState, ok bool) {
	if st.voteTimer != nil {
		st.voteTimer()
	}
	if st.ackTimer != nil {
		st.ackTimer()
	}
	delete(c.pending, st.fedID)
	var lat time.Duration
	if ok {
		lat = c.host.Now() - st.sentAt
	}
	c.host.Send(p2p.Message{Type: MsgResult, To: st.client, Size: 48,
		Payload: resultMsg{ReqID: st.req.ID, Ok: ok, Domains: st.domains, CommitLat: lat}})
}

// Pending returns the number of in-flight federated compositions.
func (c *Coordinator) Pending() int { return len(c.pending) }
