package federation

import (
	"fmt"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

// DomainPlan is the materialized partition of a peer set into administrative
// domains: contiguous member blocks, the designated gateway peers of each
// domain (its first NumGateways members), and the domain coordinator (the
// first gateway). Cluster construction builds one DHT ring per domain over
// exactly these member sets, so each domain owns its keyspace shard.
type DomainPlan struct {
	NumDomains  int
	NumGateways int
	// Members lists each domain's peers, in ascending node-ID order.
	Members  [][]p2p.NodeID
	domainOf []int
}

// Plan expands the spec over a peer count: peers [0..n) are split into
// Domains contiguous blocks (remainders going to the lower-numbered
// domains), and each block's first Gateways peers become its gateways.
func (s *Spec) Plan(peers int) (*DomainPlan, error) {
	d := s.Domains
	g := s.Gateways
	if g == 0 {
		g = 1
	}
	if d < 2 {
		return nil, fmt.Errorf("federation: domains=%d: want at least 2", d)
	}
	if peers < d*(g+1) {
		return nil, fmt.Errorf("federation: %d peers cannot host %d domains of %d gateways each (+1 member)",
			peers, d, g)
	}
	p := &DomainPlan{NumDomains: d, NumGateways: g, domainOf: make([]int, peers)}
	base, rem := peers/d, peers%d
	next := 0
	for dom := 0; dom < d; dom++ {
		size := base
		if dom < rem {
			size++
		}
		members := make([]p2p.NodeID, size)
		for i := range members {
			members[i] = p2p.NodeID(next)
			p.domainOf[next] = dom
			next++
		}
		p.Members = append(p.Members, members)
	}
	return p, nil
}

// DomainOf returns the domain hosting peer id, -1 if the id is outside the
// planned peer set.
func (p *DomainPlan) DomainOf(id p2p.NodeID) int {
	if i := int(id); i >= 0 && i < len(p.domainOf) {
		return p.domainOf[i]
	}
	return -1
}

// Gateways returns domain d's gateway peers (its first NumGateways members).
func (p *DomainPlan) Gateways(d int) []p2p.NodeID {
	return p.Members[d][:p.NumGateways]
}

// Coordinator returns domain d's coordinator peer (its first gateway).
func (p *DomainPlan) Coordinator(d int) p2p.NodeID {
	return p.Members[d][0]
}

// DomainPartition builds a fault-plane partition cutting domain d off from
// every other domain over [from, until) — the "partition during the commit
// window" chaos scenario.
func (p *DomainPlan) DomainPartition(d int, from, until time.Duration) simnet.Partition {
	part := simnet.Partition{
		Name:  fmt.Sprintf("domain-%d", d),
		A:     append([]p2p.NodeID(nil), p.Members[d]...),
		From:  from,
		Until: until,
	}
	for dom, members := range p.Members {
		if dom != d {
			part.B = append(part.B, members...)
		}
	}
	return part
}

// CatalogFor returns the slice of the function catalogue homed in domain d:
// functions are assigned round-robin by index, so every function has exactly
// one home domain and every domain a disjoint shard of the catalogue. The
// catalogue must have at least one function per domain.
func (p *DomainPlan) CatalogFor(d int, catalog []string) []string {
	var out []string
	for i := d; i < len(catalog); i += p.NumDomains {
		out = append(out, catalog[i])
	}
	return out
}
