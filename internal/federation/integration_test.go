package federation_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/fgraph"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/simnet"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}

// fedCluster builds a federated cluster small enough for fast tests but with
// enough peers per domain that every catalogue function has replicas.
func fedCluster(seed int64, domains, gateways int, trace obs.Tracer, reg *obs.Registry) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Seed:    seed,
		IPNodes: 200,
		Peers:   16 * domains,
		Catalog: catalog(3 * domains),
		Domains: &federation.Spec{Domains: domains, Gateways: gateways,
			Hold: 10 * time.Second, Life: 10 * time.Second},
		Trace: trace,
		Obs:   reg,
	})
}

// fedRequest builds a composition over the given functions, originating at
// src. The QoS envelope is loose enough that probing succeeds whenever the
// functions are deployed and reachable.
func fedRequest(id uint64, src p2p.NodeID, fns ...string) *service.Request {
	q := qos.Unbounded()
	q[qos.Delay] = 20000
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	return &service.Request{
		ID: id, FGraph: fgraph.Linear(fns...), QoSReq: q, Res: res,
		Bandwidth: 10, FailReq: 0.05,
		Source: src, Dest: src, Budget: 24,
	}
}

// drain runs the cluster until every federated lease must have resolved.
func drain(c *cluster.Cluster, after time.Duration) {
	c.Sim.Run(c.Sim.Now() + after + c.Fed.Cfg.Drain())
}

// orphanCount scans alive peers for any reservation left after a drain.
func orphanCount(c *cluster.Cluster) int {
	n := 0
	for i, p := range c.Peers {
		if !c.Net.Alive(p2p.NodeID(i)) {
			continue
		}
		if p.Ledger.HardAllocated() != (qos.Resources{}) ||
			p.Ledger.SoftAllocated() != (qos.Resources{}) ||
			p.Engine.Held() > 0 {
			n++
		}
	}
	return n
}

// checkTrace asserts the obs invariants (including the 2PC lifecycle
// invariant) over the recorded trace.
func checkTrace(t *testing.T, mem *obs.MemSink) {
	t.Helper()
	for _, v := range obs.Check(mem.Events()) {
		t.Errorf("invariant: %s", v)
	}
}

func TestCrossDomainCommit(t *testing.T) {
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	c := fedCluster(21, 2, 1, mem, reg)

	// Catalogue homing is round-robin, so fn0 lives in domain 0 and fn1 in
	// domain 1: this chain must cross the boundary.
	var got federation.Result
	src := c.Plan().Members[0][1] // non-gateway member of domain 0
	c.Peers[int(src)].Fed.Compose(fedRequest(1, src, "fn0", "fn1"), func(r federation.Result) {
		got = r
	})
	drain(c, 0)

	if !got.Ok {
		t.Fatal("cross-domain composition failed on a healthy cluster")
	}
	if got.Domains != 2 {
		t.Fatalf("session spans %d domains, want 2", got.Domains)
	}
	if got.CommitLatency <= 0 {
		t.Fatalf("commit latency %v, want positive", got.CommitLatency)
	}
	if got.SetupTime <= 0 || got.SetupTime >= 25*time.Second {
		t.Fatalf("setup time %v outside (0, client timeout)", got.SetupTime)
	}

	led := c.Fed.TotalLedger()
	if led.Prepares != 2 || led.Commits != 2 {
		t.Fatalf("ledger %+v, want 2 prepares and 2 commits", led)
	}
	if out := led.Outstanding(); out != 0 {
		t.Fatalf("%d holds outstanding after drain", out)
	}
	if n := c.Fed.OutstandingHolds(); n != 0 {
		t.Fatalf("%d engine holds outstanding after drain", n)
	}
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d peers left holding reservations", n)
	}
	checkTrace(t, mem)
	for _, v := range obs.CheckTotals(mem.Events(), reg.Totals()) {
		t.Errorf("totals: %s", v)
	}
}

func TestSingleDomainStaysLocal(t *testing.T) {
	mem := &obs.MemSink{}
	c := fedCluster(22, 2, 1, mem, nil)

	// fn0 and fn2 both home in domain 0 (round-robin over 2 domains).
	var got federation.Result
	src := c.Plan().Members[0][2]
	c.Peers[int(src)].Fed.Compose(fedRequest(2, src, "fn0", "fn2"), func(r federation.Result) {
		got = r
	})
	drain(c, 0)

	if !got.Ok {
		t.Fatal("single-domain composition failed on a healthy cluster")
	}
	if got.Domains != 1 {
		t.Fatalf("session spans %d domains, want 1", got.Domains)
	}
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d peers left holding reservations", n)
	}
	checkTrace(t, mem)
}

func TestMissingFunctionFailsFast(t *testing.T) {
	mem := &obs.MemSink{}
	c := fedCluster(23, 2, 1, mem, nil)

	var got federation.Result
	var done bool
	src := c.Plan().Members[0][1]
	c.Peers[int(src)].Fed.Compose(fedRequest(3, src, "fn0", "nosuchfn"), func(r federation.Result) {
		got, done = r, true
	})
	c.Sim.Run(c.Sim.Now() + 5*time.Second)

	if !done {
		t.Fatal("no-provider request did not fail fast")
	}
	if got.Ok {
		t.Fatal("composition over a function nobody provides succeeded")
	}
	drain(c, 0)
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d peers left holding reservations", n)
	}
	if led := c.Fed.TotalLedger(); led.Prepares != 0 {
		t.Fatalf("failed split still prepared: %+v", led)
	}
	checkTrace(t, mem)
}

// TestGatewayCrashPresumedAbort crashes the remote domain's gateway while
// requests are in flight: every prepare it issued before dying is excused by
// its crash, every hold elsewhere resolves by presumed abort, and no alive
// peer is left holding anything.
func TestGatewayCrashPresumedAbort(t *testing.T) {
	mem := &obs.MemSink{}
	c := fedCluster(24, 2, 1, mem, nil)
	victim := c.Plan().Gateways(1)[0]

	results := 0
	for i := 0; i < 6; i++ {
		id := uint64(10 + i)
		src := c.Plan().Members[0][1+i%4]
		at := time.Duration(i) * 2 * time.Second
		c.Sim.Schedule(at, func() {
			c.Peers[int(src)].Fed.Compose(fedRequest(id, src, "fn0", "fn1"), func(federation.Result) {
				results++
			})
		})
	}
	c.Sim.Schedule(5*time.Second, func() { c.Net.Fail(victim) })
	drain(c, 12*time.Second)

	if results != 6 {
		t.Fatalf("%d of 6 requests resolved at the client", results)
	}
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d alive peers left holding reservations", n)
	}
	checkTrace(t, mem)
}

// TestPartitionDuringCommit cuts domain 0 off from the rest of the overlay
// across the commit window, then heals it: in-flight protocol rounds resolve
// by timeout on both sides and the drained cluster holds nothing.
func TestPartitionDuringCommit(t *testing.T) {
	mem := &obs.MemSink{}
	c := fedCluster(25, 2, 1, mem, nil)

	for i := 0; i < 6; i++ {
		id := uint64(30 + i)
		src := c.Plan().Members[0][1+i%4]
		at := time.Duration(i) * 2 * time.Second
		c.Sim.Schedule(at, func() {
			c.Peers[int(src)].Fed.Compose(fedRequest(id, src, "fn0", "fn1"), func(federation.Result) {})
		})
	}
	c.ApplyFaults(simnet.FaultPlan{Seed: 9, Partitions: []simnet.Partition{
		c.Plan().DomainPartition(0, 4*time.Second, 20*time.Second),
	}})
	drain(c, 20*time.Second)

	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d peers left holding reservations after heal", n)
	}
	if n := c.Fed.OutstandingHolds(); n != 0 {
		t.Fatalf("%d holds outstanding after heal", n)
	}
	checkTrace(t, mem)
}

// TestCoordinatorCrashPresumedAbort kills the origin coordinator mid-window.
// Clients fall back to their give-up timer; participant holds in the remote
// domain expire; nothing leaks.
func TestCoordinatorCrashPresumedAbort(t *testing.T) {
	mem := &obs.MemSink{}
	c := fedCluster(26, 2, 1, mem, nil)
	victim := c.Plan().Coordinator(0)

	results := 0
	for i := 0; i < 6; i++ {
		id := uint64(50 + i)
		src := c.Plan().Members[0][1+i%4]
		at := time.Duration(i) * 2 * time.Second
		c.Sim.Schedule(at, func() {
			c.Peers[int(src)].Fed.Compose(fedRequest(id, src, "fn0", "fn1"), func(federation.Result) {
				results++
			})
		})
	}
	c.Sim.Schedule(3*time.Second, func() { c.Net.Fail(victim) })
	drain(c, 12*time.Second)

	if results != 6 {
		t.Fatalf("%d of 6 requests resolved at the client (give-up timer must fire)", results)
	}
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d alive peers left holding reservations", n)
	}
	checkTrace(t, mem)
}

// TestLedgerMatchesTrace cross-checks the three federated telemetry planes on
// a healthy multi-request run: gateway ledgers, trace events, and registry
// counters must agree.
func TestLedgerMatchesTrace(t *testing.T) {
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	c := fedCluster(27, 3, 2, mem, reg)

	for i := 0; i < 8; i++ {
		id := uint64(70 + i)
		dom := i % 3
		src := c.Plan().Members[dom][2]
		fns := []string{catalog(9)[dom], catalog(9)[dom+3], catalog(9)[(dom+1)%3]}
		at := time.Duration(i) * 2 * time.Second
		c.Sim.Schedule(at, func() {
			c.Peers[int(src)].Fed.Compose(fedRequest(id, src, fns...), func(federation.Result) {})
		})
	}
	drain(c, 16*time.Second)

	var prep, commit, abort int64
	for _, ev := range mem.Events() {
		switch ev.Kind {
		case obs.KindFedPrepare:
			prep++
		case obs.KindFedCommit:
			commit++
		case obs.KindFedAbort:
			abort++
		}
	}
	led := c.Fed.TotalLedger()
	if led.Prepares != prep {
		t.Errorf("ledger prepares %d, trace has %d", led.Prepares, prep)
	}
	if led.Commits != commit {
		t.Errorf("ledger commits %d, trace has %d", led.Commits, commit)
	}
	if led.Aborts+led.Expires != abort {
		t.Errorf("ledger aborts+expires %d, trace has %d", led.Aborts+led.Expires, abort)
	}
	if led.Prepares == 0 {
		t.Fatal("workload drove no prepares")
	}
	if out := led.Outstanding(); out != 0 {
		t.Fatalf("%d holds outstanding after drain", out)
	}

	// Per-domain ledgers partition the total.
	var sum federation.Ledger
	for d := 0; d < 3; d++ {
		sum.Add(c.Fed.DomainLedger(d))
	}
	if sum != led {
		t.Errorf("domain ledgers %+v do not sum to total %+v", sum, led)
	}

	checkTrace(t, mem)
	for _, v := range obs.CheckTotals(mem.Events(), reg.Totals()) {
		t.Errorf("totals: %s", v)
	}
	if n := orphanCount(c); n != 0 {
		t.Fatalf("%d peers left holding reservations", n)
	}
}
