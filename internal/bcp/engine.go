// Package bcp implements SpiderNet's bounded composition probing protocol
// (§4 of the paper), the decentralized QoS-aware service composition used at
// session-setup time. A source spawns a budget-bounded number of probes that
// walk candidate service graphs hop by hop, soft-reserving resources and
// recording QoS/resource snapshots; the destination collects the probes,
// merges DAG branches, filters qualified service graphs against the user's
// requirements, picks the minimum-ψ graph for load balance, and confirms it
// with a reverse-path acknowledgement that hardens the reservations.
package bcp

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/service"
)

// Protocol message types.
const (
	MsgProbe    = "bcp.probe"
	MsgReport   = "bcp.report"
	MsgProbeAck = "bcp.probeack"
	MsgAck      = "bcp.ack"
	MsgChosen   = "bcp.chosen"
	MsgResult   = "bcp.result"
	MsgFail     = "bcp.fail"
	MsgTeardown = "bcp.teardown"
)

// Config tunes protocol timers and bounds. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// SoftTimeout is how long a probe's temporary resource reservation is
	// held before it self-cancels (§4.2 step 2.1).
	SoftTimeout time.Duration
	// CollectTimeout is the base duration the destination waits for probes
	// of one request before running optimal composition selection (§4.3).
	// The effective window grows by CollectPerHop for every function in the
	// request, since probes for deeper graphs spend longer in flight.
	CollectTimeout time.Duration
	// CollectPerHop extends the collection window per function node.
	CollectPerHop time.Duration
	// DiscoveryTimeout bounds each DHT lookup during the discovery phase.
	DiscoveryTimeout time.Duration
	// CacheTTL is how long a peer trusts a cached function→duplicates list.
	CacheTTL time.Duration
	// MaxPatterns caps the commutation-induced composition patterns
	// explored per request.
	MaxPatterns int
	// MaxBranches caps the DAG branch paths enumerated per pattern.
	MaxBranches int
	// MaxCandidates caps the merged candidate service graphs evaluated at
	// the destination.
	MaxCandidates int
	// MaxBackups caps the number of qualified backup graphs returned to the
	// source for proactive failure recovery.
	MaxBackups int
	// GiveUpTimeout bounds the sender's total wait for a composition
	// outcome; if every probe dies en route no destination collector ever
	// answers, and this timer converts silence into a failed Result.
	GiveUpTimeout time.Duration
	// ProbeAckTimeout, when positive, enables per-hop probe hardening for
	// lossy networks: each probe/report transmission is acknowledged by the
	// receiver, and an unacknowledged copy is retransmitted (same UID, no
	// new budget) after this delay. Zero (the default) disables hardening
	// entirely, preserving baseline traces byte for byte.
	ProbeAckTimeout time.Duration
	// ProbeRetries caps retransmits per transmission when hardening is on.
	ProbeRetries int
	// LoadAware folds each candidate peer's current utilization into the
	// composite next-hop metric and makes optimal composition selection
	// penalize graphs through loaded peers (the overload control plane).
	// Needs the engine's Load oracle wired; off by default, preserving
	// load-blind traces byte for byte.
	LoadAware bool
	// ShedThreshold, when positive, is the utilization at or above which a
	// peer sheds load: it declines probe soft-allocation (the probe dies
	// with reason "shed" instead of queueing) and peers that can see its
	// load prune it from next-hop candidate lists. Zero disables shedding.
	ShedThreshold float64
	// LoadModel, when its Base is positive, is the processing-delay model
	// the deployment runs under. Load-aware next-hop scoring uses it to
	// charge each candidate its predicted queueing delay in the same units
	// as path latency; with a zero model the scoring falls back to a flat
	// utilization weight.
	LoadModel qos.LoadModel
	// CommitTTL, when positive, bounds the life of every hard allocation
	// this peer registers: a commit or session-bandwidth admission not
	// released within the TTL frees itself. Federated deployments set it as
	// the backstop against session owners that crash after the reverse-path
	// ACK committed resources on this peer — nobody else knows the session
	// exists, so only a local lease can reclaim them. Zero (the default)
	// keeps hard allocations permanent until torn down.
	CommitTTL time.Duration
	// DisableCommutation turns off pattern exploration (ablation).
	DisableCommutation bool
	// RandomNextHop replaces the composite next-hop selection metric with a
	// uniformly random pick (ablation).
	RandomNextHop bool
	// DisableSoftReservation skips the temporary resource allocation at
	// probe time (ablation; exposes conflicting admissions).
	DisableSoftReservation bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		SoftTimeout:      4 * time.Second,
		CollectTimeout:   1200 * time.Millisecond,
		CollectPerHop:    400 * time.Millisecond,
		DiscoveryTimeout: 2 * time.Second,
		CacheTTL:         30 * time.Second,
		MaxPatterns:      4,
		MaxBranches:      8,
		MaxCandidates:    256,
		MaxBackups:       8,
		GiveUpTimeout:    10 * time.Second,
	}
}

// Oracle answers local questions about the data plane: the overlay path a
// service link would map onto, and bandwidth admission on it. It abstracts
// the peer's view of its overlay connections; the simulation backs it with
// internal/topology, the live runtime with its latency model.
type Oracle interface {
	// Path returns the overlay path latency (ms) and bottleneck available
	// bandwidth (kbps) between two peers, ok=false if disconnected.
	Path(a, b p2p.NodeID) (latencyMs, bandAvail float64, ok bool)
	// AllocBandwidth reserves kbps on the overlay path between a and b.
	AllocBandwidth(a, b p2p.NodeID, kbps float64) bool
	// ReleaseBandwidth returns kbps to the overlay path between a and b.
	ReleaseBandwidth(a, b p2p.NodeID, kbps float64)
}

// Result is delivered to the source's callback when composition finishes.
type Result struct {
	ReqID   uint64
	Ok      bool
	Best    *service.Graph   // established service graph (nil if !Ok)
	Backups []*service.Graph // other qualified graphs, best-first
	// Setup-time breakdown (Fig. 10): discovery, probing+selection, and
	// reverse-path session initialization.
	DiscoveryTime time.Duration
	ProbeTime     time.Duration
	SetupTime     time.Duration
	// Fine-grained phase partition of SetupTime for successful setups:
	// DiscoveryTime + ProbePhase + CollectPhase + CommitPhase == SetupTime.
	// ProbePhase runs from probe launch to the destination collecting its
	// last probe, CollectPhase is the destination's residual wait before
	// selection, CommitPhase is the reverse-path session commit back to the
	// source. All zero when the destination's timing never reached us.
	ProbePhase   time.Duration
	CollectPhase time.Duration
	CommitPhase  time.Duration
}

// Engine is one peer's BCP participant: it hosts components, processes
// probes, runs the destination collector when it is a request's receiver,
// and initiates composition when it is a sender.
type Engine struct {
	host   p2p.Node
	ledger *qos.Ledger
	reg    *registry.Registry
	oracle Oracle
	cfg    Config

	local []service.Component // components hosted on this peer

	collectors map[uint64]*collector
	pending    map[uint64]*composeState
	soft       map[softKey]*softHold
	cache      map[string]cacheEntry

	// Session-scoped allocation registries. Commits and bandwidth
	// admissions are idempotent per key, and releases free exactly what
	// this peer registered — so a switchover to an overlapping backup graph
	// keeps shared components running, and tearing down a partially set-up
	// graph never frees another session's resources.
	hard map[softKey]qos.Resources
	bws  map[allocKey]float64

	// held holds established service graphs whose session fate is pending an
	// external two-phase-commit decision (the federation layer's prepare
	// window). Each entry releases itself when its hold timer fires.
	held map[uint64]*heldSession

	// Weights for the ψ cost function used at selection time.
	Weights service.Weights
	// SelectByDelay switches optimal composition selection from the
	// load-balancing ψ objective to minimum end-to-end delay, the objective
	// of the paper's Figure 11 experiment.
	SelectByDelay bool
	// Trust, when non-nil, makes next-hop selection trust-aware (the
	// paper's future-work extension): candidates on peers scoring below
	// MinTrust are excluded and lower-trust peers are penalized in the
	// composite metric.
	Trust TrustOracle
	// MinTrust is the exclusion threshold used when Trust is set.
	MinTrust float64
	// Load, when non-nil, reports peers' current utilization for the
	// overload control plane: load-aware next-hop scoring (cfg.LoadAware)
	// and overloaded-candidate pruning (cfg.ShedThreshold). The simulation
	// backs it with the cluster's ledger view.
	Load LoadOracle
	// Trace, when non-nil, receives the probe-lifecycle and session-setup
	// events of every request this engine touches. Nil (the default)
	// disables tracing at the cost of one pointer check per site.
	Trace obs.Tracer
	// Ctr, when non-nil, accumulates this peer's probe/budget counters.
	Ctr *obs.NodeCounters
	// Met, when non-nil, observes composition latency and probe-shape
	// histograms (the online metrics plane). Same nil-guard convention as
	// Trace.
	Met *obs.Metrics

	// probeSeq numbers the probes this engine emits, for trace-checkable
	// probe identities.
	probeSeq uint64

	// Hardening state (touched only when cfg.ProbeAckTimeout > 0, except
	// doneReqs, which also guards against duplicated results): retransmit
	// timers keyed by in-flight message UID, duplicate-suppression sets for
	// received probe and report copies (two sets, because a leaf that is
	// also the destination sees the same UID as both), delivered requests,
	// and processed reverse-path ack positions.
	retx        map[uint64]*retxState
	seenProbes  seenSet[uint64]
	seenReports seenSet[uint64]
	doneReqs    seenSet[uint64]
	ackSeen     seenSet[ackKey]
}

// TrustOracle scores a peer's trustworthiness in [0,1]; 0.5 is neutral.
// Implemented by internal/trust.Manager.
type TrustOracle interface {
	Score(p p2p.NodeID) float64
}

// LoadOracle reports a peer's current scalar utilization in [0,1].
// Implemented by internal/cluster over the peers' ledgers; a live deployment
// would gossip the figures alongside discovery metadata.
//
// Util is hard allocations over capacity — the processing load that actually
// slows the peer down, which is what next-hop routing wants to predict.
// Committed additionally counts outstanding soft reservations — the figure
// the peer's own shedding decision uses, which is what candidate pruning
// wants to predict.
type LoadOracle interface {
	Util(p p2p.NodeID) float64
	Committed(p p2p.NodeID) float64
}

type softKey struct {
	reqID  uint64
	compID string
}

type allocKey struct {
	reqID uint64
	a, b  p2p.NodeID
}

type softHold struct {
	res    qos.Resources
	cancel p2p.CancelFunc
}

type cacheEntry struct {
	comps   []service.Component
	expires time.Duration
}

type composeState struct {
	req       *service.Request
	cb        func(Result)
	started   time.Duration
	discovery time.Duration
	probesOut time.Duration
	// Destination-side phase boundaries, learned from MsgChosen: when the
	// collector saw its last probe and when selection finished. The shared
	// virtual clock makes them directly comparable to this peer's timestamps.
	collectEnd time.Duration
	selectAt   time.Duration
	giveUp     p2p.CancelFunc
	// chosen is the graph the destination selected, learned from MsgChosen
	// in parallel with the reverse ACK. If the ACK chain dies on a failed
	// peer, the give-up path tears this graph down so the peers that did
	// commit release their allocations.
	chosen *service.Graph
}

// NewEngine creates the BCP engine for one peer and registers its message
// handlers. ledger tracks this peer's end-system resources; local lists the
// components it hosts (they must already be registered with reg by the
// caller).
func NewEngine(host p2p.Node, ledger *qos.Ledger, reg *registry.Registry, oracle Oracle, local []service.Component, cfg Config) *Engine {
	e := &Engine{
		host:       host,
		ledger:     ledger,
		reg:        reg,
		oracle:     oracle,
		cfg:        cfg,
		local:      local,
		collectors: make(map[uint64]*collector),
		pending:    make(map[uint64]*composeState),
		soft:       make(map[softKey]*softHold),
		cache:      make(map[string]cacheEntry),
		hard:       make(map[softKey]qos.Resources),
		bws:        make(map[allocKey]float64),
		held:       make(map[uint64]*heldSession),
		retx:       make(map[uint64]*retxState),
		Weights:    service.DefaultWeights(),
	}
	host.Handle(MsgProbe, e.onProbe)
	host.Handle(MsgReport, e.onReport)
	host.Handle(MsgProbeAck, e.onProbeAck)
	host.Handle(MsgAck, e.onAck)
	host.Handle(MsgChosen, e.onChosen)
	host.Handle(MsgResult, e.onResult)
	host.Handle(MsgFail, e.onFail)
	host.Handle(MsgTeardown, e.onTeardown)
	return e
}

// Host returns the underlying transport node.
func (e *Engine) Host() p2p.Node { return e.host }

// Ledger returns this peer's resource ledger.
func (e *Engine) Ledger() *qos.Ledger { return e.ledger }

// LocalComponents returns the components hosted on this peer.
func (e *Engine) LocalComponents() []service.Component { return e.local }

// LocalComponent finds a hosted component by ID, reporting whether this
// peer still hosts it.
func (e *Engine) LocalComponent(id string) (service.Component, bool) {
	return e.localComponent(id)
}

// localComponent finds a hosted component by ID.
func (e *Engine) localComponent(id string) (service.Component, bool) {
	for _, c := range e.local {
		if c.ID == id {
			return c, true
		}
	}
	return service.Component{}, false
}

// Compose initiates QoS-aware service composition for req from this peer
// (the application sender). cb fires exactly once with the outcome. The
// phases: (1) decentralized discovery of all required functions, (2) bounded
// composition probing, (3) destination-side optimal selection, (4)
// reverse-path session setup.
func (e *Engine) Compose(req *service.Request, cb func(Result)) {
	if e.Trace != nil || e.Met != nil {
		if e.Trace != nil {
			e.Trace.Emit(obs.ComposeStart(e.host.Now(), e.host.ID(), req.ID,
				req.FGraph.NumFunctions(), req.Budget))
		}
		inner := cb
		cb = func(res Result) {
			if e.Trace != nil {
				e.Trace.Emit(obs.ComposeDone(e.host.Now(), e.host.ID(), req.ID, res.Ok, res.SetupTime))
			}
			if e.Met != nil && res.Ok {
				e.Met.SetupLatency.ObserveDuration(res.SetupTime)
				e.Met.DiscoveryLatency.ObserveDuration(res.DiscoveryTime)
				e.Met.PhaseProbe.ObserveDuration(res.ProbePhase)
				e.Met.PhaseCollect.ObserveDuration(res.CollectPhase)
				e.Met.PhaseCommit.ObserveDuration(res.CommitPhase)
			}
			inner(res)
		}
	}
	if err := req.Validate(); err != nil {
		cb(Result{ReqID: req.ID, Ok: false})
		return
	}
	st := &composeState{req: req, cb: cb, started: e.host.Now()}
	e.pending[req.ID] = st
	st.giveUp = e.host.After(e.cfg.GiveUpTimeout, func() {
		if cur, ok := e.pending[req.ID]; ok && cur == st {
			delete(e.pending, req.ID)
			// Release whatever a broken ACK chain already committed.
			e.Teardown(st.chosen)
			cb(Result{
				ReqID:         req.ID,
				Ok:            false,
				DiscoveryTime: st.discovery,
				SetupTime:     e.host.Now() - st.started,
			})
		}
	})

	fns := req.FGraph.Functions()
	for _, v := range req.Variants {
		fns = append(fns, v.Functions()...)
	}
	e.discoverAllCached(fns, req.ID, func(table registry.Table, ok bool) {
		st.discovery = e.host.Now() - st.started
		if e.Trace != nil {
			e.Trace.Emit(obs.DiscDone(e.host.Now(), e.host.ID(), req.ID, ok, st.discovery))
		}
		if !ok {
			delete(e.pending, req.ID)
			st.giveUp()
			cb(Result{ReqID: req.ID, Ok: false, DiscoveryTime: st.discovery})
			return
		}
		e.launchProbes(st, table)
	})
}

// discoverAllCached resolves function duplicate lists through the local
// cache, falling back to DHT lookups attributed to span (the composition
// request the discovery serves).
func (e *Engine) discoverAllCached(fns []string, span uint64, cb func(registry.Table, bool)) {
	table := make(registry.Table, len(fns))
	var missing []string
	now := e.host.Now()
	for _, f := range fns {
		if ce, ok := e.cache[f]; ok && ce.expires > now {
			table[f] = ce.comps
		} else {
			missing = append(missing, f)
		}
	}
	if len(missing) == 0 {
		cb(table, true)
		return
	}
	e.reg.DiscoverAllSpan(missing, span, e.cfg.DiscoveryTimeout, func(t registry.Table, ok bool) {
		if !ok {
			cb(nil, false)
			return
		}
		for f, comps := range t {
			e.cache[f] = cacheEntry{comps: comps, expires: e.host.Now() + e.cfg.CacheTTL}
			table[f] = comps
		}
		cb(table, true)
	})
}

// primaryPatternCap returns the pattern cap used for the primary function
// graph (mirrors launchProbes so selection can tell primary candidates from
// variant fallbacks).
func (e *Engine) primaryPatternCap() int {
	if e.cfg.DisableCommutation {
		return 1
	}
	return e.cfg.MaxPatterns
}

// launchProbes splits the probing budget over composition patterns and
// source functions and emits the initial probes (§4.1 step 1).
func (e *Engine) launchProbes(st *composeState, table registry.Table) {
	req := st.req
	maxPat := e.cfg.MaxPatterns
	if e.cfg.DisableCommutation {
		maxPat = 1
	}
	// Composition patterns come from the primary function graph's
	// commutation links plus any alternative variants the request names
	// (conditional-branch semantics): all are probed, and selection picks
	// the best qualified graph across every shape.
	patterns := req.FGraph.Patterns(maxPat)
	for _, v := range req.Variants {
		patterns = append(patterns, v.Patterns(maxPat)...)
	}
	budgetPer := req.Budget / len(patterns)
	if budgetPer < 1 {
		budgetPer = 1
		patterns = patterns[:req.Budget] // fewer patterns than budget units
	}
	launched := false
	for pi, pat := range patterns {
		pr := Probe{
			ReqID:      req.ID,
			Req:        req,
			PatternIdx: pi,
			Pattern:    pat,
			Budget:     budgetPer,
		}
		if e.spawnNext(pr, pat.Sources(), service.Component{}, table) {
			launched = true
		}
	}
	st.probesOut = e.host.Now()
	if !launched {
		// Nothing to probe (e.g. no duplicates found for a source function):
		// fail fast.
		delete(e.pending, req.ID)
		st.giveUp()
		st.cb(Result{ReqID: req.ID, Ok: false, DiscoveryTime: st.discovery})
	}
}

// onChosen records which graph the destination is confirming, so the
// give-up path can release a partially committed session, plus the
// destination's phase boundaries for the setup-latency breakdown.
func (e *Engine) onChosen(_ p2p.Node, msg p2p.Message) {
	ch := msg.Payload.(chosenMsg)
	if st, ok := e.pending[ch.ReqID]; ok {
		st.chosen = ch.Graph
		st.collectEnd = ch.CollectEnd
		st.selectAt = ch.SelectAt
	}
}

type chosenMsg struct {
	ReqID uint64
	Graph *service.Graph
	// CollectEnd is when the destination collected the request's last probe;
	// SelectAt is when optimal composition selection completed.
	CollectEnd time.Duration
	SelectAt   time.Duration
}

// onResult delivers the final outcome to the waiting source callback.
func (e *Engine) onResult(_ p2p.Node, msg p2p.Message) {
	res := msg.Payload.(Result)
	st, ok := e.pending[res.ReqID]
	if !ok {
		// The sender already gave up (or never asked): a successfully set-up
		// session nobody is waiting for must be released. But a duplicated
		// copy of an already-delivered result must not tear the live
		// session down.
		if res.Ok && !e.doneReqs.contains(res.ReqID) {
			e.Teardown(res.Best)
		}
		return
	}
	e.doneReqs.seen(res.ReqID)
	delete(e.pending, res.ReqID)
	st.giveUp()
	res.DiscoveryTime = st.discovery
	res.ProbeTime = st.probesOut - st.started
	res.SetupTime = e.host.Now() - st.started
	// Phase partition: discovery ends at probe launch (same event context),
	// probing runs until the destination's last collected probe, collection
	// until selection, commit until now. Monotone clamping keeps the four
	// phases an exact non-negative partition of SetupTime even when a
	// boundary is missing (e.g. the destination's timing never arrived).
	if st.selectAt > 0 {
		t1 := st.started + st.discovery
		t2 := clampTS(st.collectEnd, t1, e.host.Now())
		t3 := clampTS(st.selectAt, t2, e.host.Now())
		res.ProbePhase = t2 - t1
		res.CollectPhase = t3 - t2
		res.CommitPhase = e.host.Now() - t3
	}
	if res.Ok {
		// Admit the ingress service links (sender → the components serving
		// the pattern's source functions). Best-effort: the stream degrades
		// rather than aborts if the sender's own uplink is saturated.
		for _, fn := range res.Best.Pattern.Sources() {
			if s, ok := res.Best.Comps[fn]; ok {
				e.AllocSessionBandwidth(st.req.ID, s.Comp.Peer, st.req.Bandwidth)
			}
		}
	}
	st.cb(res)
}

// onFail handles a mid-ACK commit failure: the source gives up and tears
// down whatever was committed.
func (e *Engine) onFail(_ p2p.Node, msg p2p.Message) {
	f := msg.Payload.(failMsg)
	st, ok := e.pending[f.ReqID]
	if !ok {
		return
	}
	delete(e.pending, f.ReqID)
	st.giveUp()
	e.Teardown(f.Graph)
	st.cb(Result{
		ReqID:         f.ReqID,
		Ok:            false,
		DiscoveryTime: st.discovery,
		ProbeTime:     st.probesOut - st.started,
		SetupTime:     e.host.Now() - st.started,
	})
}

type failMsg struct {
	ReqID uint64
	Graph *service.Graph
}

// teardownMsg releases one peer's registered allocations for graph Release,
// except those also needed by Keep (nil = release everything).
type teardownMsg struct {
	Release *service.Graph
	Keep    *service.Graph
}

// Teardown releases the session's hard resource and bandwidth reservations
// across all peers of the graph. The caller is typically the source, at
// session end or when abandoning a failed setup.
func (e *Engine) Teardown(g *service.Graph) { e.TeardownExcept(g, nil) }

// TeardownExcept releases old's allocations except those shared with keep —
// the switchover primitive of proactive failure recovery: components and
// links the backup graph reuses keep running.
func (e *Engine) TeardownExcept(old, keep *service.Graph) {
	if old == nil {
		return
	}
	e.releaseLocal(old, keep)
	// Notify peers in sorted function order: iterating the Comps map would
	// reorder the teardown sends between otherwise identical runs.
	sent := make(map[p2p.NodeID]bool)
	for _, fn := range sortedFns(old) {
		p := old.Comps[fn].Comp.Peer
		if p == e.host.ID() || sent[p] {
			continue
		}
		sent[p] = true
		e.host.Send(p2p.Message{
			Type: MsgTeardown, To: p, Size: 96,
			Payload: teardownMsg{Release: old, Keep: keep},
		})
	}
}

func (e *Engine) onTeardown(_ p2p.Node, msg p2p.Message) {
	tm := msg.Payload.(teardownMsg)
	e.releaseLocal(tm.Release, tm.Keep)
}

// CommitSession hardens this peer's allocation for one component of a
// session: a live soft reservation is committed, otherwise admission is
// attempted directly. The operation is idempotent per (request, component),
// so a backup graph sharing the component with the broken graph re-commits
// for free.
func (e *Engine) CommitSession(reqID uint64, compID string, res qos.Resources) bool {
	key := softKey{reqID: reqID, compID: compID}
	if _, ok := e.hard[key]; ok {
		return true
	}
	if h, ok := e.soft[key]; ok {
		delete(e.soft, key)
		h.cancel()
		e.ledger.Commit(res)
		e.hard[key] = res
		e.armCommitTTL(key)
		return true
	}
	// The soft reservation expired before the ACK arrived. A shedding peer
	// declines this late direct admission just like it declines probes:
	// without the gate, slow ACKs would push it past the threshold the
	// overload plane promised to hold.
	if e.cfg.ShedThreshold > 0 && e.ledger.CommittedUtilization() >= e.cfg.ShedThreshold {
		return false
	}
	if !e.ledger.CommitDirect(res) {
		return false
	}
	e.hard[key] = res
	e.armCommitTTL(key)
	return true
}

// AllocSessionBandwidth admits a session's bandwidth on the overlay path
// from this peer to b, idempotently per (request, endpoint pair).
func (e *Engine) AllocSessionBandwidth(reqID uint64, b p2p.NodeID, kbps float64) bool {
	key := allocKey{reqID: reqID, a: e.host.ID(), b: b}
	if _, ok := e.bws[key]; ok {
		return true
	}
	if !e.oracle.AllocBandwidth(e.host.ID(), b, kbps) {
		return false
	}
	e.bws[key] = kbps
	e.armBandwidthTTL(key)
	return true
}

// releaseLocal frees this peer's registered allocations for graph g, except
// those keep still needs. Only registered allocations are freed, so double
// teardowns and partially set-up graphs are safe.
func (e *Engine) releaseLocal(g, keep *service.Graph) {
	req := reqFromGraph(g)
	self := e.host.ID()
	for _, fn := range sortedFns(g) {
		s := g.Comps[fn]
		if s.Comp.Peer != self {
			continue
		}
		if keep != nil && keep.Contains(s.Comp.ID) {
			continue
		}
		key := softKey{reqID: req.ID, compID: s.Comp.ID}
		if res, ok := e.hard[key]; ok {
			e.ledger.Free(res)
			delete(e.hard, key)
		}
	}
	keepPairs := make(map[allocKey]bool)
	if keep != nil {
		for _, pair := range sessionPairs(keep, self) {
			keepPairs[pair] = true
		}
	}
	for _, pair := range sessionPairs(g, self) {
		if keepPairs[pair] {
			continue
		}
		if kbps, ok := e.bws[pair]; ok {
			e.oracle.ReleaseBandwidth(pair.a, pair.b, kbps)
			delete(e.bws, pair)
		}
	}
}

// sessionPairs lists the overlay endpoint pairs peer self allocates for
// graph g: outgoing service links of its hosted components, the egress link
// of sink components, and — when self is the sender — the ingress links.
func sessionPairs(g *service.Graph, self p2p.NodeID) []allocKey {
	req := reqFromGraph(g)
	var out []allocKey
	for _, fn := range sortedFns(g) {
		s := g.Comps[fn]
		if s.Comp.Peer != self {
			continue
		}
		succs := g.Pattern.Successors(fn)
		if len(succs) == 0 {
			out = append(out, allocKey{reqID: req.ID, a: self, b: req.Dest})
		}
		for _, succ := range succs {
			if next, ok := g.Comps[succ]; ok {
				out = append(out, allocKey{reqID: req.ID, a: self, b: next.Comp.Peer})
			}
		}
	}
	if self == req.Source {
		for _, fn := range g.Pattern.Sources() {
			if s, ok := g.Comps[fn]; ok {
				out = append(out, allocKey{reqID: req.ID, a: self, b: s.Comp.Peer})
			}
		}
	}
	return out
}

// sortedFns returns g's assigned function indices in ascending order, so
// resource release and teardown traffic is ordered identically across
// identically seeded runs (map iteration would not be — and even the
// float64 bandwidth arithmetic is sensitive to operation order).
func sortedFns(g *service.Graph) []int {
	fns := make([]int, 0, len(g.Comps))
	for fn := range g.Comps {
		fns = append(fns, fn)
	}
	sort.Ints(fns)
	return fns
}

// clampTS bounds a destination-reported timestamp into [lo, hi].
func clampTS(ts, lo, hi time.Duration) time.Duration {
	if ts < lo {
		return lo
	}
	if ts > hi {
		return hi
	}
	return ts
}

// reqFromGraph recovers the per-component requirement attached to the graph
// when it was selected (stored by the collector).
func reqFromGraph(g *service.Graph) *service.Request {
	if g.Req != nil {
		return g.Req
	}
	return &service.Request{}
}
