package bcp_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/media"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

func req3(c *cluster.Cluster, id uint64, budget int) *service.Request {
	fns := c.FunctionsByReplicas()
	fg := fgraph.Linear(fns[0], fns[1], fns[2])
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 5000
	return &service.Request{
		ID:        id,
		FGraph:    fg,
		QoSReq:    q,
		Res:       res,
		Bandwidth: 100,
		Source:    p2p.NodeID(0),
		Dest:      p2p.NodeID(1),
		Budget:    budget,
	}
}

// compose runs one composition to completion on the virtual clock.
func compose(c *cluster.Cluster, req *service.Request) bcp.Result {
	var out bcp.Result
	done := false
	c.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
		out = r
		done = true
	})
	c.Sim.Run(c.Sim.Now() + 60*time.Second)
	if !done {
		panic("composition never completed")
	}
	return out
}

func TestComposeLinearSuccess(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 7, Peers: 60, Catalog: catalog(8)})
	req := req3(c, 1, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	if res.Best == nil || len(res.Best.Comps) != 3 {
		t.Fatalf("best graph incomplete: %v", res.Best)
	}
	if !res.Best.QoS.Satisfies(req.QoSReq) {
		t.Fatalf("selected graph violates QoS: %v", res.Best.QoS)
	}
	// Functions assigned in order.
	for i := 0; i < 3; i++ {
		if res.Best.Comps[i].Comp.Function != req.FGraph.Function(i) {
			t.Fatalf("function %d assigned %q", i, res.Best.Comps[i].Comp.Function)
		}
	}
	// Resources are hard-committed on the chosen peers.
	for _, s := range res.Best.Comps {
		l := c.Peers[int(s.Comp.Peer)].Ledger
		if l.HardAllocated() == (qos.Resources{}) {
			t.Fatalf("peer %d has no hard allocation after setup", s.Comp.Peer)
		}
	}
	if res.SetupTime <= 0 || res.DiscoveryTime <= 0 {
		t.Fatalf("missing timing: %+v", res)
	}
	if res.DiscoveryTime > res.SetupTime {
		t.Fatal("discovery exceeds total setup time")
	}
}

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

func TestComposeImpossibleQoSFails(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 8, Peers: 50, Catalog: catalog(8)})
	req := req3(c, 2, 24)
	req.QoSReq[qos.Delay] = 0.001 // impossible
	res := compose(c, req)
	if res.Ok {
		t.Fatal("impossible QoS composed successfully")
	}
}

func TestComposeUnknownFunctionFailsFast(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 9, Peers: 40, Catalog: catalog(6)})
	req := req3(c, 3, 8)
	req.FGraph = fgraph.Linear("no-such-function")
	res := compose(c, req)
	if res.Ok {
		t.Fatal("unknown function composed")
	}
}

func TestComposeInvalidRequestRejected(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 10, Peers: 40, Catalog: catalog(6)})
	req := req3(c, 4, 0) // zero budget
	called := false
	c.Peers[0].Engine.Compose(req, func(r bcp.Result) {
		called = true
		if r.Ok {
			t.Error("invalid request accepted")
		}
	})
	if !called {
		t.Fatal("callback must fire synchronously for invalid requests")
	}
}

func TestBudgetControlsProbingOverhead(t *testing.T) {
	run := func(budget int) int64 {
		c := cluster.New(cluster.Options{Seed: 11, Peers: 60, Catalog: catalog(6)})
		compose(c, req3(c, 5, budget))
		return c.Net.Stats().ByType[bcp.MsgProbe]
	}
	small, large := run(4), run(40)
	if small == 0 || large == 0 {
		t.Fatalf("no probes recorded: small=%d large=%d", small, large)
	}
	if small >= large {
		t.Fatalf("budget did not bound probing: %d probes at β=4, %d at β=40", small, large)
	}
}

func TestComposeDAG(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 12, Peers: 70, Catalog: catalog(6)})
	fns := c.FunctionsByReplicas()
	b := fgraph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddFunction(fns[i])
	}
	b.AddDependency(0, 1).AddDependency(0, 2).AddDependency(1, 3).AddDependency(2, 3)
	fg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := req3(c, 6, 32)
	req.FGraph = fg
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("DAG composition failed")
	}
	if len(res.Best.Comps) != 4 {
		t.Fatalf("DAG graph has %d assignments, want 4", len(res.Best.Comps))
	}
	// The merged QoS must be at least the max over both branches' shared
	// endpoints, and links must cover all four edges plus ingress/egress.
	if len(res.Best.Links) < 5 {
		t.Fatalf("merged graph has %d links", len(res.Best.Links))
	}
}

func TestCommutationExploresMorePatterns(t *testing.T) {
	build := func(disable bool) (bcp.Result, int64) {
		cfg := bcp.DefaultConfig()
		cfg.DisableCommutation = disable
		c := cluster.New(cluster.Options{Seed: 13, Peers: 60, Catalog: catalog(5), BCP: cfg})
		fns := c.FunctionsByReplicas()
		b := fgraph.NewBuilder()
		for i := 0; i < 3; i++ {
			b.AddFunction(fns[i])
		}
		b.AddDependency(0, 1).AddDependency(1, 2)
		b.AddCommutation(1, 2)
		fg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		req := req3(c, 7, 32)
		req.FGraph = fg
		res := compose(c, req)
		return res, c.Net.Stats().ByType[bcp.MsgProbe]
	}
	resOn, probesOn := build(false)
	resOff, probesOff := build(true)
	if !resOn.Ok || !resOff.Ok {
		t.Fatalf("composition failed: on=%v off=%v", resOn.Ok, resOff.Ok)
	}
	// Commutation exploration must produce at least one graph using the
	// exchanged order among best+backups, or at minimum emit probes for the
	// second pattern (workloads vary); with it disabled, every returned
	// pattern must be the original order.
	for _, g := range append([]*service.Graph{resOff.Best}, resOff.Backups...) {
		if s := g.Pattern.Successors(0); len(s) != 1 || s[0] != 1 {
			t.Fatal("commutation disabled but a swapped pattern was returned")
		}
	}
	if probesOn <= probesOff/2 {
		t.Fatalf("pattern exploration emitted suspiciously few probes: on=%d off=%d", probesOn, probesOff)
	}
}

func TestSoftReservationPreventsConflictingAdmission(t *testing.T) {
	// A cluster where one function's only component sits on a peer with
	// capacity for exactly one session: of two concurrent requests, exactly
	// one must be admitted.
	var cap qos.Resources
	cap[qos.CPU] = 1
	cap[qos.Memory] = 10
	c := cluster.New(cluster.Options{
		Seed: 14, Peers: 30, Catalog: catalog(3),
		MinComps: 1, MaxComps: 1, Capacity: cap,
	})
	fns := c.FunctionsByReplicas()
	// Pick the function with the FEWEST replicas to maximize contention.
	rare := fns[len(fns)-1]
	fg := fgraph.Linear(rare)
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 5000

	mk := func(id uint64, src, dst int) *service.Request {
		return &service.Request{
			ID: id, FGraph: fg, QoSReq: q, Res: res, Bandwidth: 10,
			Source: p2p.NodeID(src), Dest: p2p.NodeID(dst), Budget: 8,
		}
	}
	okCount := 0
	done := 0
	rarePeers := map[p2p.NodeID]bool{}
	for _, comp := range c.ComponentsFor(rare) {
		rarePeers[comp.Peer] = true
	}
	// Choose senders that do not host the rare function themselves.
	var senders []int
	for i := range c.Peers {
		if !rarePeers[p2p.NodeID(i)] && len(senders) < 2 {
			senders = append(senders, i)
		}
	}
	if c.Replicas(rare) != 1 {
		t.Skipf("rare function has %d replicas; need 1", c.Replicas(rare))
	}
	for k, s := range senders {
		c.Peers[s].Engine.Compose(mk(uint64(100+k), s, (s+1)%30), func(r bcp.Result) {
			done++
			if r.Ok {
				okCount++
			}
		})
	}
	c.Sim.Run(c.Sim.Now() + 60*time.Second)
	if done != 2 {
		t.Fatalf("only %d compositions completed", done)
	}
	if okCount != 1 {
		t.Fatalf("admitted %d sessions onto capacity for 1", okCount)
	}
}

func TestTeardownReleasesEverything(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 15, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 8, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	c.Peers[int(req.Source)].Engine.Teardown(res.Best)
	c.Sim.Run(c.Sim.Now() + 10*time.Second)

	for i, p := range c.Peers {
		if got := p.Ledger.HardAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d still holds %v after teardown", i, got)
		}
		if got := p.Ledger.SoftAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d still soft-holds %v after teardown", i, got)
		}
	}
}

func TestSoftReservationsExpire(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 16, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 9, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	// Long after setup, only the committed session's hard allocations
	// remain; every probe-time soft reservation has expired.
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	for i, p := range c.Peers {
		if got := p.Ledger.SoftAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d leaks soft reservation %v", i, got)
		}
	}
}

func TestBackupsQualifiedAndDistinct(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 17, Peers: 80, Catalog: catalog(5)})
	req := req3(c, 10, 60)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	if len(res.Backups) == 0 {
		t.Fatal("no backups returned despite generous budget")
	}
	cfg := bcp.DefaultConfig()
	if len(res.Backups) > cfg.MaxBackups {
		t.Fatalf("%d backups exceed cap %d", len(res.Backups), cfg.MaxBackups)
	}
	seen := map[string]bool{res.Best.Key(): true}
	for _, b := range res.Backups {
		if !b.Qualified(req) {
			t.Fatal("unqualified backup returned")
		}
		if seen[b.Key()] {
			t.Fatal("duplicate backup graph")
		}
		seen[b.Key()] = true
	}
	// Best-first ordering by cost.
	w := service.DefaultWeights()
	prev := res.Best.Cost(w, req)
	for _, b := range res.Backups {
		cost := b.Cost(w, req)
		if cost+1e-9 < prev {
			t.Fatal("backups not sorted by cost")
		}
		prev = cost
	}
}

func TestComposeDeterministic(t *testing.T) {
	run := func() string {
		c := cluster.New(cluster.Options{Seed: 18, Peers: 60, Catalog: catalog(6)})
		res := compose(c, req3(c, 11, 24))
		if !res.Ok {
			return ""
		}
		return res.Best.Key()
	}
	k1, k2 := run(), run()
	if k1 == "" || k1 != k2 {
		t.Fatalf("composition not deterministic: %q vs %q", k1, k2)
	}
}

func TestSelectedGraphHasFiniteCost(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 19, Peers: 60, Catalog: catalog(6)})
	req := req3(c, 12, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	if cost := res.Best.Cost(service.DefaultWeights(), req); math.IsInf(cost, 1) || cost <= 0 {
		t.Fatalf("cost=%v", cost)
	}
}

func TestGiveUpTimeoutFiresWhenDestDead(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 20, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 13, 16)
	c.Net.Fail(req.Dest)
	res := compose(c, req)
	if res.Ok {
		t.Fatal("composed toward dead destination")
	}
}

// TestLossRequirementEnforced exercises the multiplicative-metric path: a
// loss-rate requirement below the components' combined loss must fail,
// while a generous one passes. Loss composes additively in log space
// (qos.LossToAdditive).
func TestLossRequirementEnforced(t *testing.T) {
	build := func() *cluster.Cluster {
		return cluster.New(cluster.Options{
			Seed: 21, Peers: 60, Catalog: catalog(6),
			QpLossMax: 0.02, // each component loses up to 2%
		})
	}
	c := build()
	req := req3(c, 1, 24)
	req.QoSReq[qos.Loss] = qos.LossToAdditive(0.5) // generous
	if res := compose(c, req); !res.Ok {
		t.Fatal("generous loss bound failed")
	} else {
		if got := qos.AdditiveToLoss(res.Best.QoS[qos.Loss]); got <= 0 || got >= 0.1 {
			t.Fatalf("accumulated loss %v implausible", got)
		}
	}

	c2 := build()
	req2 := req3(c2, 2, 24)
	req2.QoSReq[qos.Loss] = qos.LossToAdditive(1e-9) // unsatisfiable
	if res := compose(c2, req2); res.Ok {
		t.Fatal("unsatisfiable loss bound composed")
	}
}

// TestDataPlaneLatencyMatchesQoSEstimate streams frames through a composed
// session and compares the measured end-to-end data-plane latency against
// the QoS estimate the probes accumulated. For a linear graph over a static
// network they should agree closely: the estimate sums the same link
// latencies and component service delays the ADUs actually experience.
func TestDataPlaneLatencyMatchesQoSEstimate(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 22, Peers: 60, Catalog: catalog(6)})
	req := req3(c, 1, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	estimate := res.Best.QoS[qos.Delay] // ms

	var measured []float64
	dest := c.Peers[int(req.Dest)]
	dest.Media.OnDeliverADU(func(adu media.ADU, now time.Duration) {
		measured = append(measured, float64(adu.Latency(now))/float64(time.Millisecond))
	})
	src := c.Peers[int(req.Source)].Media
	for i := 0; i < 5; i++ {
		if err := src.SendFrame(res.Best, media.NewFrame(i, 320, 240)); err != nil {
			t.Fatal(err)
		}
	}
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	if len(measured) != 5 {
		t.Fatalf("delivered %d/5 frames", len(measured))
	}
	for _, m := range measured {
		// The estimate uses overlay-path latencies for service links while
		// ADUs travel direct peer-to-peer IP latencies, so the measurement
		// can be slightly below the estimate; it must never exceed it by
		// much, and must be within 30% overall.
		if m > estimate*1.05+1 || m < estimate*0.5 {
			t.Fatalf("measured %.1fms vs estimated %.1fms", m, estimate)
		}
	}
}
