package bcp_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fgraph"
)

// Tests for the alternative-variant composition semantics (the paper's §8
// future-work "more expressive composition semantics such as conditional
// branch"): a request names alternative function graphs and BCP picks the
// best qualified graph across all of them.

func TestVariantsComposeAcrossShapes(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 98, Peers: 70, Catalog: catalog(6)})
	fns := c.FunctionsByReplicas()
	req := req3(c, 1, 40)
	// Primary: 3-function chain. Variant: a cheaper 2-function chain using
	// a different middle function.
	req.FGraph = fgraph.Linear(fns[0], fns[1], fns[2])
	req.Variants = []*fgraph.Graph{fgraph.Linear(fns[0], fns[3])}
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("variant composition failed")
	}
	// Conditional-branch semantics: the primary shape wins when it
	// qualifies; the variant is only a fallback.
	if n := res.Best.Pattern.NumFunctions(); n != 3 {
		t.Fatalf("selected the variant (%d functions) although the primary qualifies", n)
	}
	// All candidates across best+backups are complete for their own shape.
	for _, g := range append(res.Backups, res.Best) {
		if len(g.Comps) != g.Pattern.NumFunctions() {
			t.Fatalf("incomplete candidate: %d/%d", len(g.Comps), g.Pattern.NumFunctions())
		}
	}
}

func TestVariantChosenWhenPrimaryInfeasible(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 99, Peers: 70, Catalog: catalog(6)})
	fns := c.FunctionsByReplicas()
	req := req3(c, 1, 40)
	// The primary graph names a function nobody provides; only the variant
	// can qualify.
	req.FGraph = fgraph.Linear(fns[0], "no-such-function")
	req.Variants = []*fgraph.Graph{fgraph.Linear(fns[0], fns[1])}
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed despite a feasible variant")
	}
	if res.Best.Pattern.Function(1) != fns[1] {
		t.Fatalf("selected the infeasible primary: %s", res.Best)
	}
}

func TestVariantsValidation(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 100, Peers: 40, Catalog: catalog(4)})
	req := req3(c, 1, 8)
	req.Variants = []*fgraph.Graph{nil}
	if err := req.Validate(); err == nil {
		t.Fatal("nil variant accepted")
	}
	req.Variants = []*fgraph.Graph{fgraph.Linear("x")}
	req.Quota = []int{1, 1, 1}
	if err := req.Validate(); err == nil {
		t.Fatal("quota + variants accepted")
	}
}
