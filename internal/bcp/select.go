package bcp

import (
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// collector gathers the probes of one request at the destination (§4.1
// step 3) until the collection timer fires.
type collector struct {
	req     *service.Request
	records []Probe
	done    bool
	// lastAt is when the most recent probe was collected — the boundary
	// between the probe fan-out and residual collection-wait phases in the
	// setup-latency breakdown reported back to the source.
	lastAt time.Duration
}

func (e *Engine) onReport(_ p2p.Node, msg p2p.Message) {
	if e.cfg.ProbeAckTimeout > 0 {
		// Same ack-then-dedup discipline as onProbe, on a separate seen-set:
		// when the final hop is the destination itself, the probe and its
		// report carry the same UID and must not suppress each other.
		if e.ackHop(msg, &e.seenReports) {
			return
		}
	}
	pr := msg.Payload.(Probe)
	col, ok := e.collectors[pr.ReqID]
	if !ok {
		col = &collector{req: pr.Req}
		e.collectors[pr.ReqID] = col
		reqID := pr.ReqID
		window := e.cfg.CollectTimeout +
			time.Duration(pr.Req.FGraph.NumFunctions())*e.cfg.CollectPerHop
		e.host.After(window, func() { e.finishCollect(reqID) })
	}
	if col.done {
		return // straggler after selection already ran
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.ProbeCollected(e.host.Now(), e.host.ID(), pr.ReqID,
			msg.From, len(pr.Visited), pr.UID))
	}
	col.lastAt = e.host.Now()
	col.records = append(col.records, pr)
}

// finishCollect runs optimal composition selection (§4.3): merge branch
// records into complete candidate service graphs, keep the qualified ones,
// and confirm the minimum-ψ graph over the reverse path.
func (e *Engine) finishCollect(reqID uint64) {
	col, ok := e.collectors[reqID]
	if !ok || col.done {
		return
	}
	col.done = true
	e.host.After(10*e.cfg.CollectTimeout, func() { delete(e.collectors, reqID) })

	req := col.req
	candidates := e.mergeRecords(req, col.records)

	qualified := candidates[:0]
	for _, c := range candidates {
		if c.Qualified(req) {
			qualified = append(qualified, c)
		}
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.SelectDone(e.host.Now(), e.host.ID(), reqID,
			len(candidates), len(qualified)))
	}
	if len(qualified) == 0 {
		e.host.Send(p2p.Message{
			Type: MsgResult, To: req.Source, Size: 64,
			Payload: Result{ReqID: reqID, Ok: false},
		})
		return
	}
	score := func(g *service.Graph) float64 {
		var s float64
		if e.SelectByDelay {
			s = g.QoS[qos.Delay]
		} else {
			s = g.Cost(e.Weights, req)
		}
		if e.cfg.LoadAware {
			// Overload control: probes recorded each hop's utilization, and
			// the hottest component bounds how slowly the session will run
			// under the load-inflated processing model. Scaling the score by
			// (1 + max utilization) steers selection toward cool graphs
			// without distorting the load-blind default (off: factor 1).
			s *= 1 + maxUtil(g)
		}
		return s
	}
	// Conditional-branch semantics: graphs instantiating the primary
	// function graph rank before variant fallbacks; within a tier, lowest
	// score wins. (ψ sums per component, so comparing costs across shapes
	// of different sizes would always favor the shortest variant.)
	primaryPatterns := len(req.FGraph.Patterns(e.primaryPatternCap()))
	tier := func(g *service.Graph) int {
		if g.PatternIdx < primaryPatterns {
			return 0
		}
		return 1
	}
	sort.SliceStable(qualified, func(i, j int) bool {
		ti, tj := tier(qualified[i]), tier(qualified[j])
		if ti != tj {
			return ti < tj
		}
		return score(qualified[i]) < score(qualified[j])
	})
	best := qualified[0]
	nb := len(qualified) - 1
	if nb > e.cfg.MaxBackups {
		nb = e.cfg.MaxBackups
	}
	backups := append([]*service.Graph(nil), qualified[1:1+nb]...)

	// Tell the sender which graph is being confirmed (in parallel with the
	// ACK), so a broken ACK chain can be rolled back from the sender side.
	// The phase boundaries ride along for the setup-latency breakdown.
	e.host.Send(p2p.Message{
		Type: MsgChosen, To: req.Source, Size: 96,
		Payload: chosenMsg{ReqID: reqID, Graph: best, CollectEnd: col.lastAt, SelectAt: e.host.Now()},
	})
	// Reverse-path session setup (§4.1 step 4): the ACK visits the chosen
	// components sink-first, hardening each soft reservation.
	order := reverseTopo(best)
	am := ackMsg{ReqID: reqID, Best: best, Backups: backups, Order: order, Pos: 0}
	e.host.Send(p2p.Message{
		Type: MsgAck, To: best.Comps[order[0]].Comp.Peer, Size: 96,
		Payload: am,
	})
}

// maxUtil returns the highest probe-recorded utilization across the graph's
// components, the load figure selection penalizes when LoadAware is on.
func maxUtil(g *service.Graph) float64 {
	var u float64
	for _, s := range g.Comps {
		if s.Util > u {
			u = s.Util
		}
	}
	return u
}

func reverseTopo(g *service.Graph) []int {
	topo := g.Pattern.TopoOrder()
	out := make([]int, len(topo))
	for i, fn := range topo {
		out[len(topo)-1-i] = fn
	}
	return out
}

// mergeRecords groups branch probes by composition pattern and merges
// agreeing branch records into complete candidate service graphs, bounded
// by MaxCandidates.
func (e *Engine) mergeRecords(req *service.Request, records []Probe) []*service.Graph {
	byPattern := make(map[int][]Probe)
	patterns := make(map[int]*Probe)
	for i, r := range records {
		byPattern[r.PatternIdx] = append(byPattern[r.PatternIdx], r)
		patterns[r.PatternIdx] = &records[i]
	}
	patIdx := make([]int, 0, len(byPattern))
	for pi := range byPattern {
		patIdx = append(patIdx, pi)
	}
	sort.Ints(patIdx)

	var out []*service.Graph
	seen := make(map[string]bool)
	for _, pi := range patIdx {
		pat := patterns[pi].Pattern
		branches := pat.Branches(e.cfg.MaxBranches)
		slots := make([][]Probe, len(branches))
		for _, r := range byPattern[pi] {
			if bi := branchIndex(branches, r); bi >= 0 {
				slots[bi] = append(slots[bi], r)
			}
		}
		complete := true
		for _, s := range slots {
			if len(s) == 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue // some branch got no surviving probe; pattern unusable
		}
		e.enumerateCombos(req, pi, slots, func(g *service.Graph) bool {
			if key := g.Key(); !seen[key] {
				seen[key] = true
				out = append(out, g)
			}
			return len(out) < e.cfg.MaxCandidates
		})
		if len(out) >= e.cfg.MaxCandidates {
			break
		}
	}
	return out
}

// branchIndex matches a record's visited function sequence to one of the
// pattern's branches.
func branchIndex(branches [][]int, r Probe) int {
	for bi, br := range branches {
		if len(br) != len(r.Visited) {
			continue
		}
		match := true
		for i, fn := range br {
			if r.Visited[i].Fn != fn {
				match = false
				break
			}
		}
		if match {
			return bi
		}
	}
	return -1
}

// enumerateCombos walks the cartesian product of per-branch records,
// merging combinations whose shared functions agree on the same component.
// emit returns false to stop enumeration.
func (e *Engine) enumerateCombos(req *service.Request, patternIdx int, slots [][]Probe, emit func(*service.Graph) bool) {
	idx := make([]int, len(slots))
	for {
		if g := mergeCombo(req, patternIdx, slots, idx); g != nil {
			if !emit(g) {
				return
			}
		}
		// Odometer increment.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(slots[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return
		}
	}
}

// mergeCombo merges one record per branch into a complete service graph, or
// returns nil if the records disagree on a shared function's component.
func mergeCombo(req *service.Request, patternIdx int, slots [][]Probe, idx []int) *service.Graph {
	g := &service.Graph{
		Pattern:    slots[0][idx[0]].Pattern,
		PatternIdx: patternIdx,
		Comps:      make(map[int]service.Snapshot),
		Req:        req,
	}
	type linkKey struct{ from, to int }
	links := make(map[linkKey]service.LinkSnapshot)
	for bi := range slots {
		r := slots[bi][idx[bi]]
		for _, h := range r.Visited {
			if prev, ok := g.Comps[h.Fn]; ok {
				if prev.Comp.ID != h.Snap.Comp.ID {
					return nil // branches disagree on a shared function
				}
				continue
			}
			g.Comps[h.Fn] = h.Snap
		}
		for _, l := range r.Links {
			k := linkKey{l.FromFn, l.ToFn}
			if _, ok := links[k]; !ok {
				links[k] = l
			}
		}
		g.QoS = g.QoS.Max(r.QoS)
	}
	g.Links = make([]service.LinkSnapshot, 0, len(links))
	for _, l := range links {
		g.Links = append(g.Links, l)
	}
	sort.Slice(g.Links, func(i, j int) bool {
		if g.Links[i].FromFn != g.Links[j].FromFn {
			return g.Links[i].FromFn < g.Links[j].FromFn
		}
		return g.Links[i].ToFn < g.Links[j].ToFn
	})
	return g
}

// ackMsg confirms the selected service graph along the reverse path,
// committing each peer's soft reservation into a session allocation and
// admitting bandwidth on outgoing service links.
type ackMsg struct {
	ReqID   uint64
	Best    *service.Graph
	Backups []*service.Graph
	Order   []int // reverse topological order of function indices
	Pos     int
}

func (e *Engine) onAck(_ p2p.Node, msg p2p.Message) {
	am := msg.Payload.(ackMsg)
	if e.cfg.ProbeAckTimeout > 0 && e.ackSeen.seen(ackKey{req: am.ReqID, pos: am.Pos}) {
		// A duplicated ack copy (dup fault) must not re-walk the reverse
		// path: the cascade would end in a duplicate MsgResult.
		return
	}
	fn := am.Order[am.Pos]
	snap := am.Best.Comps[fn]
	req := am.Best.Req

	fail := func(reason string) {
		if e.Trace != nil {
			e.Trace.Emit(obs.SessionReject(e.host.Now(), e.host.ID(), am.ReqID,
				snap.Comp.ID, reason))
		}
		e.host.Send(p2p.Message{
			Type: MsgFail, To: req.Source, Size: 64,
			Payload: failMsg{ReqID: am.ReqID, Graph: am.Best},
		})
	}

	if _, hosted := e.localComponent(snap.Comp.ID); !hosted {
		fail("vanished") // component vanished between probing and setup
		return
	}
	if !e.CommitSession(am.ReqID, snap.Comp.ID, req.Res) {
		fail("resources")
		return
	}
	// Outgoing service links: to each successor's component, or to the
	// receiving application for sink functions.
	succs := am.Best.Pattern.Successors(fn)
	if len(succs) == 0 {
		if !e.AllocSessionBandwidth(am.ReqID, req.Dest, req.Bandwidth) {
			fail("bandwidth")
			return
		}
	}
	for _, s := range succs {
		next, ok := am.Best.Comps[s]
		if !ok {
			fail("vanished")
			return
		}
		if !e.AllocSessionBandwidth(am.ReqID, next.Comp.Peer, req.Bandwidth) {
			fail("bandwidth")
			return
		}
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.SessionAdmit(e.host.Now(), e.host.ID(), am.ReqID, snap.Comp.ID))
	}

	am.Pos++
	if am.Pos < len(am.Order) {
		e.host.Send(p2p.Message{
			Type: MsgAck, To: am.Best.Comps[am.Order[am.Pos]].Comp.Peer, Size: 96,
			Payload: am,
		})
		return
	}
	// All components confirmed: tell the sender the session is up.
	e.host.Send(p2p.Message{
		Type: MsgResult, To: req.Source, Size: 128,
		Payload: Result{ReqID: am.ReqID, Ok: true, Best: am.Best, Backups: am.Backups},
	})
}

// BestDelay is a convenience for experiments: the end-to-end delay of a
// graph, +Inf for nil.
func BestDelay(g *service.Graph) float64 {
	if g == nil {
		return math.Inf(1)
	}
	return g.QoS[qos.Delay]
}
