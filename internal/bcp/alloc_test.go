package bcp_test

import (
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/workload"
)

// TestComposeAllocBudget is the probe-forwarding allocation regression gate:
// one full composition (probe fan-out across the overlay, forwarding at every
// hop, destination-side collection, reverse-path setup, teardown) must stay
// under an allocation budget well below the pre-optimization figure of ~3300
// objects. The committed BENCH_*.json baseline tracks the precise number;
// this test fails fast if a change regresses the hot path wholesale.
func TestComposeAllocBudget(t *testing.T) {
	catalog := []string{"fn0", "fn1", "fn2", "fn3", "fn4", "fn5", "fn6", "fn7", "fn8", "fn9"}
	c := cluster.New(cluster.Options{Seed: 75, IPNodes: 400, Peers: 60, Catalog: catalog})
	gen := workload.NewGenerator(workload.Config{
		Catalog: catalog, Peers: 60, MinFuncs: 3, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 300, DelayReqMax: 600,
	}, c.Rng)

	compose := func() {
		req := gen.Next()
		req.QoSReq[qos.Delay] = 5000
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			if res.Ok {
				eng.Teardown(res.Best)
			}
		})
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
	}
	// Warm route caches, DHT state, and the simulator freelist so the
	// measurement reflects the steady state the figures run in.
	for i := 0; i < 5; i++ {
		compose()
	}
	avg := testing.AllocsPerRun(50, compose)
	const budget = 2800 // pre-optimization: ~3300; current steady state: ~2300
	if avg > budget {
		t.Fatalf("one composition allocates %.0f objects, budget %d", avg, budget)
	}
}
