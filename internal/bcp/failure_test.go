package bcp_test

import (
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/p2p"
	"repro/internal/qos"
)

// Failure-injection tests: peers die at awkward points of the protocol and
// the system must fail cleanly — no hung callbacks, no leaked allocations.

// allLedgersClean asserts no LIVE peer holds hard or soft allocations. A
// crashed peer's ledger is process state that died with it (its timers are
// gone too); it reinitializes on recovery, so dead peers are exempt.
func allLedgersClean(t *testing.T, c *cluster.Cluster, context string) {
	t.Helper()
	for i, p := range c.Peers {
		if !c.Net.Alive(p2p.NodeID(i)) {
			continue
		}
		if got := p.Ledger.HardAllocated(); got != (qos.Resources{}) {
			t.Fatalf("%s: peer %d leaks hard allocation %v", context, i, got)
		}
		if got := p.Ledger.SoftAllocated(); got != (qos.Resources{}) {
			t.Fatalf("%s: peer %d leaks soft reservation %v", context, i, got)
		}
	}
}

func TestDestFailsMidCollection(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 90, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 1, 24)

	done := false
	var out bcp.Result
	c.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
		done = true
		out = r
	})
	// Kill the destination while probes are in flight, before its collector
	// fires.
	c.Sim.Schedule(500*time.Millisecond, func() { c.Net.Fail(req.Dest) })
	c.Sim.Run(c.Sim.Now() + 60*time.Second)

	if !done {
		t.Fatal("compose callback never fired (give-up timer broken)")
	}
	if out.Ok {
		t.Fatal("composition succeeded despite dead destination")
	}
	allLedgersClean(t, c, "dest failure")
}

func TestChosenPeerFailsBeforeAck(t *testing.T) {
	// Learn which peer the deterministic run selects for the FIRST function
	// (the last ACK hop, so sink+middle commit before the chain breaks).
	probe := cluster.New(cluster.Options{Seed: 91, Peers: 50, Catalog: catalog(6)})
	preq := req3(probe, 1, 24)
	var chosenFirst p2p.NodeID = p2p.NoNode
	probe.Peers[int(preq.Source)].Engine.Compose(preq, func(r bcp.Result) {
		if r.Ok {
			chosenFirst = r.Best.Comps[0].Comp.Peer
		}
	})
	probe.Sim.Run(probe.Sim.Now() + 60*time.Second)
	if chosenFirst == p2p.NoNode {
		t.Skip("baseline composition failed")
	}
	if chosenFirst == preq.Source || chosenFirst == preq.Dest {
		t.Skip("chosen peer is an endpoint; cannot fail it")
	}

	// Replay on a fresh identical cluster, killing that peer after the
	// probes have passed it but before the ACK reaches it.
	c := cluster.New(cluster.Options{Seed: 91, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 1, 24)
	done := false
	var out bcp.Result
	c.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
		done = true
		out = r
	})
	// The collection window is CollectTimeout + 3*CollectPerHop after the
	// first report (~0.7s in): kill just before selection finishes.
	c.Sim.Schedule(2*time.Second, func() { c.Net.Fail(chosenFirst) })
	c.Sim.Run(c.Sim.Now() + 120*time.Second)

	if !done {
		t.Fatal("compose callback never fired")
	}
	if out.Ok && out.Best.ContainsPeer(chosenFirst) {
		t.Fatal("result uses the failed peer")
	}
	// Whether the outcome was a clean failure (give-up rollback of the
	// partially committed graph) or a success on an alternative graph, no
	// allocation may leak once sessions are torn down.
	if out.Ok {
		c.Peers[int(req.Source)].Engine.Teardown(out.Best)
		c.Sim.Run(c.Sim.Now() + 10*time.Second)
	}
	allLedgersClean(t, c, "ack-path failure")
}

func TestAllComponentPeersFail(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 92, Peers: 40, Catalog: catalog(3)})
	req := req3(c, 1, 16)
	// Kill every replica of the first function before composing.
	for _, comp := range c.ComponentsFor(req.FGraph.Function(0)) {
		if comp.Peer != req.Source && comp.Peer != req.Dest {
			c.Net.Fail(comp.Peer)
		}
	}
	done := false
	c.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
		done = true
		if r.Ok {
			for _, s := range r.Best.Comps {
				if !c.Net.Alive(s.Comp.Peer) {
					t.Error("composed onto a dead peer")
				}
			}
			c.Peers[int(req.Source)].Engine.Teardown(r.Best)
		}
	})
	c.Sim.Run(c.Sim.Now() + 60*time.Second)
	if !done {
		t.Fatal("compose callback never fired")
	}
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	allLedgersClean(t, c, "replica wipeout")
}

func TestTeardownIdempotent(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 93, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 1, 24)
	res := compose(c, req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	eng := c.Peers[int(req.Source)].Engine
	eng.Teardown(res.Best)
	c.Sim.Run(c.Sim.Now() + 5*time.Second)
	eng.Teardown(res.Best) // double teardown must be a no-op
	eng.Teardown(nil)      // nil-safe
	c.Sim.Run(c.Sim.Now() + 5*time.Second)
	allLedgersClean(t, c, "double teardown")

	// Bandwidth fully restored too: a fresh identical composition succeeds.
	req2 := req3(c, 2, 24)
	res2 := compose(c, req2)
	if !res2.Ok {
		t.Fatal("recomposition after teardown failed")
	}
}

func TestSourceFailsAwaitingResult(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 94, Peers: 50, Catalog: catalog(6)})
	req := req3(c, 1, 24)
	fired := false
	c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) { fired = true })
	// The source dies before the result returns; its callback must never
	// fire (the process is gone), and nothing may wedge the simulation.
	c.Sim.Schedule(200*time.Millisecond, func() { c.Net.Fail(req.Source) })
	c.Sim.Run(c.Sim.Now() + 60*time.Second)
	if fired {
		t.Fatal("callback fired on a dead source")
	}
	// The committed session (if the ACK completed) is stranded — that is
	// the correct semantic for a dead *application*; its resources belong
	// to the dead sender's session and are reclaimed when the peers notice
	// via their own failure handling (outside BCP's scope). What must NOT
	// leak are soft reservations.
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	for i, p := range c.Peers {
		if !c.Net.Alive(p2p.NodeID(i)) {
			continue
		}
		if got := p.Ledger.SoftAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d leaks soft reservation %v", i, got)
		}
	}
}
