package bcp

import (
	"time"

	"repro/internal/p2p"
	"repro/internal/service"
)

// This file is the engine's held-session primitive: the bridge between a
// finished composition (reverse-path ACK done, resources hard-committed on
// every peer of the graph) and an external atomic-commitment protocol that
// has not yet decided the session's fate. The federation layer's two-phase
// commit holds each per-domain sub-session here during the prepare window
// and then either promotes it into a normal bounded-life session or releases
// it; a hold that outlives its window presumes abort and releases itself, so
// a crashed or partitioned coordinator can never leak the reservation.

// heldSession is one established graph awaiting an external decision.
type heldSession struct {
	g      *service.Graph
	cancel p2p.CancelFunc
}

// Hold registers an established service graph as a held reservation: if no
// Promote or AbortHold arrives within d, the engine tears the graph down
// across its peers and invokes onExpire. Holding again under the same key
// replaces the previous hold (its timer is cancelled, its graph released).
func (e *Engine) Hold(key uint64, g *service.Graph, d time.Duration, onExpire func()) {
	if prev, ok := e.held[key]; ok {
		prev.cancel()
		delete(e.held, key)
		e.Teardown(prev.g)
	}
	hs := &heldSession{g: g}
	hs.cancel = e.host.After(d, func() {
		if cur, ok := e.held[key]; ok && cur == hs {
			delete(e.held, key)
			e.Teardown(hs.g)
			if onExpire != nil {
				onExpire()
			}
		}
	})
	e.held[key] = hs
}

// Promote resolves a hold as committed: the expiry timer is cancelled and
// the graph returned to the caller, who now owns the session (and its
// eventual Teardown). Returns nil if the hold already expired or was
// aborted.
func (e *Engine) Promote(key uint64) *service.Graph {
	hs, ok := e.held[key]
	if !ok {
		return nil
	}
	hs.cancel()
	delete(e.held, key)
	return hs.g
}

// AbortHold resolves a hold as aborted: the expiry timer is cancelled and
// the graph torn down across its peers. Returns the released graph, nil if
// the hold already expired or was promoted.
func (e *Engine) AbortHold(key uint64) *service.Graph {
	hs, ok := e.held[key]
	if !ok {
		return nil
	}
	hs.cancel()
	delete(e.held, key)
	e.Teardown(hs.g)
	return hs.g
}

// Held returns the number of reservations currently held.
func (e *Engine) Held() int { return len(e.held) }

// armCommitTTL schedules the self-release backstop for one hard allocation
// when cfg.CommitTTL is set. Normal teardown deletes the map entry first,
// making the expiry a no-op.
func (e *Engine) armCommitTTL(key softKey) {
	if e.cfg.CommitTTL <= 0 {
		return
	}
	e.host.After(e.cfg.CommitTTL, func() {
		if res, ok := e.hard[key]; ok {
			e.ledger.Free(res)
			delete(e.hard, key)
		}
	})
}

// armBandwidthTTL is armCommitTTL for session bandwidth admissions.
func (e *Engine) armBandwidthTTL(key allocKey) {
	if e.cfg.CommitTTL <= 0 {
		return
	}
	e.host.After(e.cfg.CommitTTL, func() {
		if kbps, ok := e.bws[key]; ok {
			e.oracle.ReleaseBandwidth(key.a, key.b, kbps)
			delete(e.bws, key)
		}
	})
}
