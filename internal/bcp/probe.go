package bcp

import (
	"sort"
	"time"

	"repro/internal/fgraph"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/service"
)

// Probe is the composition probing message (§4.1 step 1). Each probe walks
// one branch of one composition pattern, accumulating per-hop QoS and
// resource snapshots.
type Probe struct {
	ReqID      uint64
	Req        *service.Request
	PatternIdx int
	Pattern    *fgraph.Graph
	Budget     int // remaining probing budget carried by this probe
	// UID identifies this probe instance uniquely across the run (emitting
	// node in the high bits, per-engine sequence in the low bits), so trace
	// checkers can account for every probe exactly. 0 only on the synthetic
	// pre-launch root, which is never put on the wire.
	UID uint64

	CurFn     int    // function index this probe is being sent to examine
	CurCompID string // chosen component for CurFn on the receiving peer

	Visited []Hop
	Links   []service.LinkSnapshot
	QoS     qos.Vector
}

// Hop is one probed (function, component, availability) record.
type Hop struct {
	Fn   int
	Snap service.Snapshot
}

const (
	probeBaseSize   = 128
	probePerHopSize = 64
)

func probeSize(p Probe) int { return probeBaseSize + probePerHopSize*len(p.Visited) }

// lastComp returns the most recently visited component (zero value at the
// source).
func (p *Probe) lastComp() service.Component {
	if len(p.Visited) == 0 {
		return service.Component{}
	}
	return p.Visited[len(p.Visited)-1].Snap.Comp
}

func (p *Probe) visitedComp(id string) bool {
	for _, h := range p.Visited {
		if h.Snap.Comp.ID == id {
			return true
		}
	}
	return false
}

func (p *Probe) prevFn() int {
	if len(p.Visited) == 0 {
		return -1
	}
	return p.Visited[len(p.Visited)-1].Fn
}

// onProbe is the per-hop probe processing of §4.2.
func (e *Engine) onProbe(_ p2p.Node, msg p2p.Message) {
	if e.cfg.ProbeAckTimeout > 0 {
		// Acknowledge every copy — the previous ack may itself have been
		// lost — then process each probe instance at most once.
		if e.ackHop(msg, &e.seenProbes) {
			return
		}
	}
	pr := msg.Payload.(Probe)
	req := pr.Req

	// The component the probe came to examine must still be hosted here
	// (discovery meta-data can be stale in a churning overlay).
	comp, ok := e.localComponent(pr.CurCompID)
	if !ok {
		e.dropProbe(&pr, "stale-component")
		return
	}

	util := e.ledger.Utilization()
	if e.Met != nil {
		e.Met.PeerLoad.Observe(util)
		e.Met.PeerLoadMax.SetMax(int64(util * 1000))
	}
	// Overload shedding: a peer past the threshold declines the probe
	// outright instead of queueing work it will serve too slowly. The probe
	// dies here with an accountable reason, so conservation still holds and
	// the source's remaining probes (on other duplicates) carry the request.
	// The threshold compares committed utilization (hard + soft) so that
	// concurrent compositions racing through the probe→confirm window see
	// each other's reservations.
	if e.cfg.ShedThreshold > 0 && e.ledger.CommittedUtilization() >= e.cfg.ShedThreshold {
		if e.Ctr != nil {
			e.Ctr.ProbesShed.Add(1)
		}
		e.dropProbe(&pr, "shed")
		return
	}

	// Step 2.1a: account the incoming service link and this component's
	// performance quality, then check the user's accumulated QoS bounds.
	lat, band, ok := e.oracle.Path(msg.From, e.host.ID())
	if !ok || band < req.Bandwidth {
		e.dropProbe(&pr, "ingress-link") // link cannot carry the stream
		return
	}
	var linkQoS qos.Vector
	linkQoS[qos.Delay] = lat
	pr.QoS = pr.QoS.Add(linkQoS).Add(comp.Qp)
	if !pr.QoS.Satisfies(req.QoSReq) {
		e.dropProbe(&pr, "qos") // requirements already violated
		return
	}

	// Step 2.1b: resource check and soft allocation, guarding against
	// conflicting admission by concurrent probes.
	if !e.holdSoft(pr.ReqID, comp.ID, req.Res) {
		e.dropProbe(&pr, "resources")
		return
	}

	// Step 2.4 (for this hop): record local QoS and resource states.
	pr.Links = append(pr.Links, service.LinkSnapshot{
		FromFn: pr.prevFn(), ToFn: pr.CurFn, BandAvail: band, Latency: lat,
	})
	pr.Visited = append(pr.Visited, Hop{
		Fn:   pr.CurFn,
		Snap: service.Snapshot{Comp: comp, Avail: e.ledger.AvailableHard(), Util: util},
	})

	succs := pr.Pattern.Successors(pr.CurFn)
	if len(succs) == 0 {
		// Branch complete: account the egress link and report to the
		// destination for optimal composition selection.
		elat, eband, ok := e.oracle.Path(e.host.ID(), req.Dest)
		if !ok || eband < req.Bandwidth {
			e.dropProbe(&pr, "egress-link")
			return
		}
		var egress qos.Vector
		egress[qos.Delay] = elat
		pr.QoS = pr.QoS.Add(egress)
		if !pr.QoS.Satisfies(req.QoSReq) {
			e.dropProbe(&pr, "qos")
			return
		}
		pr.Links = append(pr.Links, service.LinkSnapshot{
			FromFn: pr.CurFn, ToFn: -1, BandAvail: eband, Latency: elat,
		})
		if e.Ctr != nil {
			e.Ctr.ProbesReturned.Add(1)
		}
		if e.Trace != nil {
			e.Trace.Emit(obs.ProbeReturned(e.host.Now(), e.host.ID(), pr.ReqID,
				req.Dest, len(pr.Visited), probeSize(pr), pr.UID))
		}
		if e.Met != nil {
			e.Met.ProbeHops.Observe(float64(len(pr.Visited)))
		}
		e.sendReliable(p2p.Message{Type: MsgReport, To: req.Dest,
			Size: probeSize(pr), Payload: pr, UID: pr.UID}, pr.ReqID, pr.UID)
		return
	}

	// Steps 2.2–2.3: derive next-hop functions and select next-hop
	// components, after resolving their duplicate lists through this peer's
	// discovery cache.
	names := make([]string, len(succs))
	for i, s := range succs {
		names[i] = pr.Pattern.Function(s)
	}
	e.discoverAllCached(names, pr.ReqID, func(table registry.Table, ok bool) {
		if !ok {
			e.dropProbe(&pr, "discovery")
			return
		}
		if !e.spawnNext(pr, succs, comp, table) {
			// No eligible next hop anywhere: the probe dies here. Without
			// this record the probe would vanish from the accounting and
			// break the trace checker's conservation invariant.
			e.dropProbe(&pr, "no-candidate")
		}
	})
}

// dropProbe records a probe dying at this hop with a reason, for the
// overhead accounting and the trace.
func (e *Engine) dropProbe(pr *Probe, reason string) {
	if e.Ctr != nil {
		e.Ctr.ProbesDropped.Add(1)
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.ProbeDropped(e.host.Now(), e.host.ID(), pr.ReqID,
			pr.Pattern.Function(pr.CurFn), pr.CurCompID, reason, len(pr.Visited), pr.UID))
	}
}

// holdSoft makes (or re-confirms) the temporary resource reservation for one
// (request, component) pair. The reservation self-cancels after SoftTimeout
// unless an ACK commits it first.
func (e *Engine) holdSoft(reqID uint64, compID string, res qos.Resources) bool {
	if e.cfg.DisableSoftReservation {
		return res.Fits(e.ledger.Available())
	}
	key := softKey{reqID: reqID, compID: compID}
	if _, held := e.soft[key]; held {
		return true // a sibling probe of the same request already holds it
	}
	if !e.ledger.Reserve(res) {
		return false
	}
	h := &softHold{res: res}
	h.cancel = e.host.After(e.cfg.SoftTimeout, func() {
		if cur, ok := e.soft[key]; ok && cur == h {
			delete(e.soft, key)
			e.ledger.Release(res)
		}
	})
	e.soft[key] = h
	return true
}

// spawnNext implements steps 2.2–2.4: distribute the budget over next-hop
// functions by probing quota, pick the most promising duplicates for each,
// and emit new probes. It returns true if at least one probe was sent.
func (e *Engine) spawnNext(pr Probe, nextFns []int, prevComp service.Component, table registry.Table) bool {
	req := pr.Req
	// Probing quotas: explicit per-request quota, else replica-proportional.
	quota := func(fn int) int {
		if req.Quota != nil {
			if q := req.Quota[fn]; q > 0 {
				return q
			}
			return 1
		}
		z := len(table[pr.Pattern.Function(fn)])
		if z < 1 {
			z = 1
		}
		return z
	}
	totalQuota := 0
	for _, fn := range nextFns {
		totalQuota += quota(fn)
	}
	if totalQuota == 0 {
		return false
	}

	sent := false
	remaining := pr.Budget
	for i, fn := range nextFns {
		// Proportional split with a floor of 1 so every DAG branch stays
		// probed; the last function absorbs rounding remainder.
		var bk int
		if i == len(nextFns)-1 {
			bk = remaining
		} else {
			bk = pr.Budget * quota(fn) / totalQuota
			if bk < 1 {
				bk = 1
			}
			if bk > remaining {
				bk = remaining
			}
		}
		remaining -= bk
		if bk < 1 {
			bk = 1
		}

		cands := e.eligible(table[pr.Pattern.Function(fn)], prevComp, &pr)
		if len(cands) == 0 {
			continue
		}
		ik := min3(bk, quota(fn), len(cands))
		chosen := e.pickNextHop(cands, ik, req)
		newBudget := bk / ik
		if newBudget < 1 {
			newBudget = 1
		}
		for _, c := range chosen {
			np := pr
			np.Budget = newBudget
			np.CurFn = fn
			np.CurCompID = c.ID
			np.UID = e.nextProbeUID()
			// Visited/Links slices are shared by value-copy; appends in the
			// receiver re-slice safely only if capacity isn't shared. Force
			// copies to keep sibling probes independent.
			np.Visited = append([]Hop(nil), pr.Visited...)
			np.Links = append([]service.LinkSnapshot(nil), pr.Links...)
			if e.Ctr != nil {
				e.Ctr.ProbesSent.Add(1)
				e.Ctr.BudgetSpent.Add(int64(newBudget))
			}
			if e.Trace != nil {
				e.Trace.Emit(obs.ProbeSent(e.host.Now(), e.host.ID(), pr.ReqID,
					c.Peer, pr.Pattern.Function(fn), c.ID, newBudget, len(pr.Visited),
					np.UID, pr.UID))
			}
			if e.Met != nil {
				e.Met.ProbeBudget.Observe(float64(newBudget))
			}
			e.sendReliable(p2p.Message{Type: MsgProbe, To: c.Peer,
				Size: probeSize(np), Payload: np, UID: np.UID}, pr.ReqID, np.UID)
			sent = true
		}
	}
	return sent
}

// nextProbeUID mints a run-unique, per-seed-deterministic probe identity:
// the emitting node in the high bits, this engine's emission sequence in the
// low bits.
func (e *Engine) nextProbeUID() uint64 {
	e.probeSeq++
	return uint64(e.host.ID())<<32 | e.probeSeq
}

// eligible filters a duplicate list down to components this probe may visit
// next: format-compatible with the previous hop and not already visited.
func (e *Engine) eligible(cands []service.Component, prevComp service.Component, pr *Probe) []service.Component {
	out := make([]service.Component, 0, len(cands))
	for _, c := range cands {
		if prevComp.ID != "" && !service.Compatible(prevComp, c) {
			continue
		}
		if pr.visitedComp(c.ID) {
			continue
		}
		if e.Trust != nil && e.Trust.Score(c.Peer) < e.MinTrust {
			continue // secure composition: skip distrusted hosts
		}
		if e.Load != nil && e.cfg.ShedThreshold > 0 && e.Load.Committed(c.Peer) >= e.cfg.ShedThreshold {
			continue // overload shedding: the peer is declining new work
		}
		out = append(out, c)
	}
	return out
}

// pickNextHop selects the k most promising candidates using the composite
// local metric of step 2.3: network delay to the candidate, bandwidth
// headroom on the path, and the candidate peer's failure probability.
func (e *Engine) pickNextHop(cands []service.Component, k int, req *service.Request) []service.Component {
	if k >= len(cands) {
		return cands
	}
	if e.cfg.RandomNextHop {
		idx := e.host.Rand().Perm(len(cands))[:k]
		out := make([]service.Component, k)
		for i, j := range idx {
			out[i] = cands[j]
		}
		return out
	}
	type scored struct {
		c     service.Component
		score float64
	}
	ss := make([]scored, len(cands))
	for i, c := range cands {
		lat, band, ok := e.oracle.Path(e.host.ID(), c.Peer)
		score := c.FailProb * 20
		if !ok {
			score += 1e9
		} else {
			score += lat / 50
			if band <= 0 {
				score += 1e9
			} else if req.Bandwidth > 0 {
				score += req.Bandwidth / band
			}
		}
		if e.Trust != nil {
			score += (1 - e.Trust.Score(c.Peer)) * 5
		}
		if e.cfg.LoadAware && e.Load != nil {
			// Load-aware probing: a saturated peer serves this session (and
			// this very probe) at M/M/1-inflated latency. Charge each
			// candidate its predicted queueing delay in the same units as
			// path latency, so the trade is exactly "detour vs. queue": the
			// convex model barely perturbs routing at moderate load but
			// deflects probes hard off near-saturated peers.
			u := e.Load.Util(c.Peer)
			if e.cfg.LoadModel.Base > 0 {
				score += float64(e.cfg.LoadModel.Delay(u)) / float64(50*time.Millisecond)
			} else {
				score += u * 3
			}
		}
		ss[i] = scored{c: c, score: score}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score < ss[j].score
		}
		return ss[i].c.ID < ss[j].c.ID
	})
	out := make([]service.Component, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].c
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
