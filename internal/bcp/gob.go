package bcp

import (
	"encoding/gob"
	"sync"

	"repro/internal/service"
)

var gobOnce sync.Once

// RegisterGob registers BCP's message payload types (and the service-layer
// types they embed) with encoding/gob for real network transports. Safe to
// call multiple times.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.RegisterName("bcp.Probe", Probe{})
		gob.RegisterName("bcp.Result", Result{})
		gob.RegisterName("bcp.failMsg", failMsg{})
		gob.RegisterName("bcp.teardownMsg", teardownMsg{})
		gob.RegisterName("bcp.ackMsg", ackMsg{})
		gob.RegisterName("bcp.probeAckMsg", probeAckMsg{})
		gob.RegisterName("bcp.chosenMsg", chosenMsg{})
		gob.RegisterName("service.Component", service.Component{})
	})
}
