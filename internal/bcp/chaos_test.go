// Chaos tests: property-based checks that BCP composition survives a lossy,
// duplicating, reordering network. For every seed × loss level the engine
// must deliver exactly one callback per request (valid graph or clean
// failure), never hang the virtual clock, and leave a trace that satisfies
// the obs invariants — every probe copy accounted delivered or dropped.
package bcp_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func chaosCatalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}

func TestComposeUnderChaos(t *testing.T) {
	seeds := 17
	if testing.Short() {
		seeds = 5
	}
	for _, loss := range []float64{0, 0.05, 0.20} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				runChaosSeed(t, seed, loss)
			}
		})
	}
}

func runChaosSeed(t *testing.T, seed int64, loss float64) {
	t.Helper()
	const nPeers = 24
	const nReqs = 6
	cat := chaosCatalog(6)

	cfg := bcp.DefaultConfig()
	if loss > 0 {
		// Per-hop hardening: ack every probe hop, retransmit twice.
		cfg.ProbeAckTimeout = 300 * time.Millisecond
		cfg.ProbeRetries = 2
	}
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	c := cluster.New(cluster.Options{
		Seed: seed, IPNodes: 150, Peers: nPeers, Catalog: cat,
		BCP: cfg, Trace: mem, Obs: reg,
	})
	// Faults start after the registration warm-up so the DHT holds the full
	// catalogue; a fresh per-run fault seed decorrelates the loss pattern
	// from the workload.
	c.ApplyFaults(simnet.FaultPlan{
		Seed:    seed * 7919,
		Default: simnet.LinkFaults{Loss: loss, Dup: loss / 4, Jitter: 10 * time.Millisecond},
	})

	gen := workload.NewGenerator(workload.Config{
		Catalog: cat, Peers: nPeers, MinFuncs: 2, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
	}, c.Rng)
	callbacks := make(map[uint64]int)
	established := 0
	for i := 0; i < nReqs; i++ {
		req := gen.Next()
		c.Sim.Schedule(time.Duration(i)*2*time.Second, func() {
			c.Peers[int(req.Source)].Engine.Compose(req, func(res bcp.Result) {
				callbacks[req.ID]++
				if !res.Ok {
					return // clean failure is an acceptable outcome under loss
				}
				established++
				if res.Best == nil {
					t.Errorf("seed=%d loss=%g req=%d: Ok result with nil graph", seed, loss, req.ID)
					return
				}
				// The graph must instantiate every function of its pattern.
				for _, fn := range res.Best.Pattern.TopoOrder() {
					snap, ok := res.Best.Comps[fn]
					if !ok || snap.Comp.ID == "" {
						t.Errorf("seed=%d loss=%g req=%d: function %d uninstantiated", seed, loss, req.ID, fn)
					}
				}
			})
		})
	}
	// The virtual clock must drain: GiveUpTimeout bounds every composition,
	// so an idle scheduler with missing callbacks means a hung session.
	c.Sim.RunUntilIdle()

	for id, n := range callbacks {
		if n != 1 {
			t.Errorf("seed=%d loss=%g req=%d: %d callbacks, want exactly 1", seed, loss, id, n)
		}
	}
	if len(callbacks) != nReqs {
		t.Errorf("seed=%d loss=%g: %d of %d requests called back (hung composition)", seed, loss, len(callbacks), nReqs)
	}
	if loss == 0 && established == 0 {
		t.Errorf("seed=%d: no composition succeeded on a clean network", seed)
	}

	events := mem.Events()
	for _, v := range obs.Check(events) {
		t.Errorf("seed=%d loss=%g invariant: %s", seed, loss, v)
	}
	for _, v := range obs.CheckTotals(events, reg.Totals()) {
		t.Errorf("seed=%d loss=%g totals: %s", seed, loss, v)
	}
}

// TestHardeningOffKeepsBaselineTrace pins that the hardening knobs are
// strictly opt-in: a zero ProbeAckTimeout must not change a clean-network
// trace by a single byte relative to the default configuration.
func TestHardeningOffKeepsBaselineTrace(t *testing.T) {
	render := func(cfg bcp.Config) []obs.Event {
		mem := &obs.MemSink{}
		c := cluster.New(cluster.Options{
			Seed: 5, IPNodes: 150, Peers: 24, Catalog: chaosCatalog(6),
			BCP: cfg, Trace: mem,
		})
		gen := workload.NewGenerator(workload.Config{
			Catalog: chaosCatalog(6), Peers: 24, MinFuncs: 2, MaxFuncs: 3,
			Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
		}, c.Rng)
		for i := 0; i < 4; i++ {
			req := gen.Next()
			c.Sim.Schedule(time.Duration(i)*time.Second, func() {
				c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
			})
		}
		c.Sim.RunUntilIdle()
		return mem.Events()
	}
	base := render(bcp.DefaultConfig())
	again := render(bcp.DefaultConfig())
	if len(base) == 0 {
		t.Fatal("no events")
	}
	if fmt.Sprintf("%v", base) != fmt.Sprintf("%v", again) {
		t.Fatal("baseline trace not deterministic")
	}
}
