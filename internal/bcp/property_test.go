package bcp_test

import (
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
)

// TestProbeCountBoundedByBudget checks BCP's defining invariant: the number
// of probe messages a request emits is bounded by (roughly) the probing
// budget times the number of hop levels — the "bounded" in bounded
// composition probing. Each hop level spawns at most the budget it
// received, so the total is <= budget × functions.
func TestProbeCountBoundedByBudget(t *testing.T) {
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 64} {
		c := cluster.New(cluster.Options{Seed: 95, Peers: 60, Catalog: catalog(6)})
		req := req3(c, 1, budget)
		nf := req.FGraph.NumFunctions()
		c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
		c.Sim.Run(c.Sim.Now() + 60*time.Second)
		probes := c.Net.Stats().ByType[bcp.MsgProbe]
		bound := int64(budget * nf)
		if probes > bound {
			t.Fatalf("budget %d: %d probes exceed bound %d", budget, probes, bound)
		}
		if probes == 0 {
			t.Fatalf("budget %d: no probes at all", budget)
		}
	}
}

// TestBudgetMonotoneQuality verifies that raising the budget never makes
// the selected graph's cost worse on an otherwise idle, identical cluster.
func TestBudgetMonotoneQuality(t *testing.T) {
	cost := func(budget int) float64 {
		c := cluster.New(cluster.Options{Seed: 96, Peers: 80, Catalog: catalog(5)})
		req := req3(c, 1, budget)
		res := compose(c, req)
		if !res.Ok {
			return -1
		}
		return res.Best.Cost(c.Peers[0].Engine.Weights, req)
	}
	small := cost(2)
	large := cost(64)
	if small < 0 || large < 0 {
		t.Skip("composition failed at some budget")
	}
	// Allow small numerical slack: the large-budget selection must not be
	// meaningfully worse.
	if large > small*1.05 {
		t.Fatalf("cost degraded with budget: %.4f (β=2) -> %.4f (β=64)", small, large)
	}
}

// TestRepeatedComposeReleasesAllState runs many compose/teardown cycles and
// verifies nothing accumulates: ledgers empty and a final composition still
// succeeds with the same cost as the first.
func TestRepeatedComposeReleasesAllState(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 97, Peers: 60, Catalog: catalog(6)})
	var firstKey string
	for i := 0; i < 10; i++ {
		req := req3(c, uint64(i+1), 24)
		res := compose(c, req)
		if !res.Ok {
			t.Fatalf("round %d failed", i)
		}
		if i == 0 {
			firstKey = res.Best.Key()
		} else if res.Best.Key() != firstKey {
			t.Fatalf("round %d selected a different graph on an idle cluster", i)
		}
		c.Peers[int(req.Source)].Engine.Teardown(res.Best)
		c.Sim.Run(c.Sim.Now() + 10*time.Second)
	}
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	allLedgersClean(t, c, "repeated compose")
}
