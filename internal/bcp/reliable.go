package bcp

import (
	"repro/internal/obs"
	"repro/internal/p2p"
)

// Per-hop probe hardening (active when Config.ProbeAckTimeout > 0): probe
// and report transmissions are acknowledged hop-by-hop, and unacknowledged
// messages are retransmitted with the same UID — no new probe emission, no
// budget spend — up to ProbeRetries times. Receivers acknowledge every copy
// (the ack itself may have been lost) and suppress duplicate processing by
// UID. With hardening off (the default) none of this state is touched and
// baseline traces are byte-identical to pre-hardening runs.

// probeAckMsg acknowledges receipt of one probe or report copy by UID.
type probeAckMsg struct {
	UID uint64
}

const probeAckSize = 16

// retxState is one armed retransmit timer; the pointer identity guards
// against a stale timer firing after the entry was replaced.
type retxState struct {
	cancel p2p.CancelFunc
}

// sendReliable transmits msg and, when hardening is enabled, arms the
// ack-gated retransmit loop. reqID and pid annotate the retransmit trace
// events (pid is the probe identity the message carries, so the trace
// checker can count wire copies per probe).
func (e *Engine) sendReliable(msg p2p.Message, reqID, pid uint64) {
	e.host.Send(msg)
	if e.cfg.ProbeAckTimeout <= 0 || e.cfg.ProbeRetries <= 0 {
		return
	}
	e.armRetx(msg, reqID, pid, 1)
}

// armRetx schedules the try-th retransmit decision for msg. The entry
// stays keyed by msg.UID until the receiver's ack cancels it or the retry
// budget runs out — losing every copy is then the network's problem to
// account (net.drop / net.fault records), not a silent protocol leak.
func (e *Engine) armRetx(msg p2p.Message, reqID, pid uint64, try int) {
	uid := msg.UID
	st := &retxState{}
	st.cancel = e.host.After(e.cfg.ProbeAckTimeout, func() {
		if cur, ok := e.retx[uid]; !ok || cur != st {
			return
		}
		delete(e.retx, uid)
		if try > e.cfg.ProbeRetries {
			return
		}
		if e.Ctr != nil {
			e.Ctr.ProbesRetx.Add(1)
		}
		if e.Trace != nil {
			e.Trace.Emit(obs.ProbeRetx(e.host.Now(), e.host.ID(), reqID, msg.To,
				msg.Type, try, pid))
		}
		e.host.Send(msg)
		e.armRetx(msg, reqID, pid, try+1)
	})
	e.retx[uid] = st
}

// onProbeAck cancels the retransmit loop for an acknowledged copy.
func (e *Engine) onProbeAck(_ p2p.Node, msg p2p.Message) {
	ack := msg.Payload.(probeAckMsg)
	if st, ok := e.retx[ack.UID]; ok {
		st.cancel()
		delete(e.retx, ack.UID)
	}
}

// ackHop acknowledges one received probe/report copy back to its sender
// and reports whether this UID was already processed (duplicate copy).
// Only meaningful when hardening is on; callers gate on that.
func (e *Engine) ackHop(msg p2p.Message, set *seenSet[uint64]) (dup bool) {
	e.host.Send(p2p.Message{
		Type: MsgProbeAck, To: msg.From, Size: probeAckSize,
		Payload: probeAckMsg{UID: msg.UID},
	})
	return set.seen(msg.UID)
}

// ackKey identifies one position of one request's reverse-path ack chain,
// for duplicate-suppression of injected ack copies.
type ackKey struct {
	req uint64
	pos int
}

// seenCap bounds every duplicate-suppression set; old entries are evicted
// FIFO so long runs don't grow memory without bound. Duplicates arrive
// within a few network round-trips of the original, far inside the window.
const seenCap = 8192

// seenSet is a FIFO-capped membership set.
type seenSet[K comparable] struct {
	set   map[K]struct{}
	order []K
	head  int
}

// seen records k and reports whether it was already present.
func (s *seenSet[K]) seen(k K) bool {
	if _, ok := s.set[k]; ok {
		return true
	}
	if s.set == nil {
		s.set = make(map[K]struct{})
	}
	s.set[k] = struct{}{}
	s.order = append(s.order, k)
	if len(s.order)-s.head > seenCap {
		var zero K
		delete(s.set, s.order[s.head])
		s.order[s.head] = zero
		s.head++
		// Compact once the dead prefix dominates, keeping eviction O(1)
		// amortized.
		if s.head >= seenCap && s.head*2 >= len(s.order) {
			s.order = append(s.order[:0:0], s.order[s.head:]...)
			s.head = 0
		}
	}
	return false
}

// contains reports membership without recording k.
func (s *seenSet[K]) contains(k K) bool {
	_, ok := s.set[k]
	return ok
}
