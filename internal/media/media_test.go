package media

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/service"
	"repro/internal/simnet"
)

func TestTransforms(t *testing.T) {
	f := NewFrame(1, 640, 480)

	up, _ := ForFunction(FnUpScale)
	g := up.Apply(f)
	if g.Width != 1280 || g.Height != 960 {
		t.Fatalf("upscale: %v", g)
	}
	down, _ := ForFunction(FnDownScale)
	g = down.Apply(f)
	if g.Width != 320 || g.Height != 240 {
		t.Fatalf("downscale: %v", g)
	}
	sub, _ := ForFunction(FnSubImage)
	g = sub.Apply(f)
	if g.Width != 320 || g.Height != 240 || !g.Cropped {
		t.Fatalf("subimage: %v", g)
	}
	rq, _ := ForFunction(FnRequant)
	g = rq.Apply(rq.Apply(f))
	if g.Quant != 3 {
		t.Fatalf("requant: %v", g)
	}
	wt, _ := ForFunction(FnWeatherTicker)
	st, _ := ForFunction(FnStockTicker)
	g = st.Apply(wt.Apply(f))
	if len(g.Overlays) != 2 || g.Overlays[0] != "weather" || g.Overlays[1] != "stock" {
		t.Fatalf("tickers: %v", g.Overlays)
	}
	// Originals untouched (value semantics).
	if f.Quant != 1 || len(f.Overlays) != 0 {
		t.Fatal("transform mutated its input")
	}
}

func TestDownscaleFloorsAtOne(t *testing.T) {
	d, _ := ForFunction(FnDownScale)
	f := NewFrame(0, 1, 1)
	g := d.Apply(f)
	if g.Width != 1 || g.Height != 1 {
		t.Fatalf("floor: %v", g)
	}
}

func TestBytesShrinkWithQuantization(t *testing.T) {
	f := NewFrame(0, 640, 480)
	rq, _ := ForFunction(FnRequant)
	g := rq.Apply(f)
	if g.Bytes() >= f.Bytes() {
		t.Fatal("requantization did not shrink the frame")
	}
}

func TestForFunctionUnknown(t *testing.T) {
	if _, ok := ForFunction("no-such"); ok {
		t.Fatal("unknown function resolved")
	}
	for _, fn := range Functions() {
		if _, ok := ForFunction(fn); !ok {
			t.Fatalf("catalogue function %q unresolvable", fn)
		}
	}
}

// TestStreamEndToEnd pushes frames through a composed 3-component graph
// over the simulated network and checks every transform was applied in
// order at the destination.
func TestStreamEndToEnd(t *testing.T) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(2*time.Millisecond), rand.New(rand.NewSource(1)))

	fg := fgraph.Linear(FnDownScale, FnStockTicker, FnRequant)
	comps := map[int]service.Component{
		0: {ID: "p1/down", Function: FnDownScale, Peer: 1},
		1: {ID: "p2/stock", Function: FnStockTicker, Peer: 2},
		2: {ID: "p3/requant", Function: FnRequant, Peer: 3},
	}
	graph := &service.Graph{
		Pattern: fg,
		Comps:   map[int]service.Snapshot{},
		Req:     &service.Request{ID: 9, Source: 0, Dest: 4},
	}
	for fn, c := range comps {
		graph.Comps[fn] = service.Snapshot{Comp: c}
	}

	// Source (0), three component hosts (1..3), destination (4).
	hostComps := map[p2p.NodeID]service.Component{1: comps[0], 2: comps[1], 3: comps[2]}
	var src *Node
	var got []Frame
	for id := p2p.NodeID(0); id <= 4; id++ {
		id := id
		node := Attach(nw.AddNode(id), func(cid string) (service.Component, bool) {
			c, ok := hostComps[id]
			if ok && c.ID == cid {
				return c, true
			}
			return service.Component{}, false
		})
		if id == 0 {
			src = node
		}
		if id == 4 {
			node.OnDeliver(func(f Frame) { got = append(got, f) })
		}
	}

	for i := 0; i < 5; i++ {
		if err := src.SendFrame(graph, NewFrame(i, 640, 480)); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunUntilIdle()

	if len(got) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(got))
	}
	for i, f := range got {
		if f.Seq != i {
			t.Fatalf("frame order broken: %v", f)
		}
		if f.Width != 320 || f.Height != 240 {
			t.Fatalf("downscale not applied: %v", f)
		}
		if len(f.Overlays) != 1 || f.Overlays[0] != "stock" {
			t.Fatalf("ticker not applied: %v", f)
		}
		if f.Quant != 2 {
			t.Fatalf("requant not applied: %v", f)
		}
		want := []string{"p1/down", "p2/stock", "p3/requant"}
		if len(f.Trace) != 3 {
			t.Fatalf("trace=%v", f.Trace)
		}
		for j, id := range want {
			if f.Trace[j] != id {
				t.Fatalf("trace order: %v", f.Trace)
			}
		}
	}
}

func TestStreamDropsWhenComponentGone(t *testing.T) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(time.Millisecond), rand.New(rand.NewSource(2)))
	fg := fgraph.Linear(FnRequant)
	graph := &service.Graph{
		Pattern: fg,
		Comps: map[int]service.Snapshot{
			0: {Comp: service.Component{ID: "p1/rq", Function: FnRequant, Peer: 1}},
		},
		Req: &service.Request{ID: 1, Source: 0, Dest: 2},
	}
	src := Attach(nw.AddNode(0), func(string) (service.Component, bool) { return service.Component{}, false })
	Attach(nw.AddNode(1), func(string) (service.Component, bool) {
		return service.Component{}, false // component vanished
	})
	delivered := false
	dst := Attach(nw.AddNode(2), func(string) (service.Component, bool) { return service.Component{}, false })
	dst.OnDeliver(func(Frame) { delivered = true })

	if err := src.SendFrame(graph, NewFrame(0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	sim.RunUntilIdle()
	if delivered {
		t.Fatal("frame delivered through a missing component")
	}
}

func TestFrameString(t *testing.T) {
	f := NewFrame(3, 10, 10)
	if s := f.String(); s == "" {
		t.Fatal("empty String")
	}
}
