// Package media implements the six multimedia service components of the
// paper's prototype (§6.2) — weather ticker, stock ticker, video
// up-scaling, down-scaling, sub-image extraction, and re-quantification —
// over a synthetic video-frame format, plus the streaming data plane that
// pushes application data units hop by hop through a composed service
// graph.
package media

import (
	"fmt"
	"strings"
)

// Frame is a synthetic video application data unit flowing through a
// composed service session.
type Frame struct {
	Seq      int
	Width    int
	Height   int
	Quant    int      // quantization level; 1 is lossless, larger is coarser
	Overlays []string // embedded tickers, in application order
	Cropped  bool     // a sub-image was extracted
	// Trace records the component IDs that processed this frame, for
	// end-to-end verification.
	Trace []string
}

// NewFrame returns a fresh frame of the given dimensions at quantization 1.
func NewFrame(seq, width, height int) Frame {
	return Frame{Seq: seq, Width: width, Height: height, Quant: 1}
}

// Bytes approximates the encoded frame size: 3 bytes per pixel divided by
// the quantization level.
func (f Frame) Bytes() int {
	q := f.Quant
	if q < 1 {
		q = 1
	}
	return f.Width * f.Height * 3 / q
}

// String summarizes the frame for logs.
func (f Frame) String() string {
	return fmt.Sprintf("frame %d %dx%d q=%d overlays=[%s] cropped=%v",
		f.Seq, f.Width, f.Height, f.Quant, strings.Join(f.Overlays, ","), f.Cropped)
}

// Transform is one multimedia service function's data-plane behaviour.
type Transform interface {
	// Name is the service function name this transform implements.
	Name() string
	// Apply processes one input ADU into one output ADU (§2.2).
	Apply(f Frame) Frame
}

// The six prototype functions.
const (
	FnWeatherTicker = "weather-ticker"
	FnStockTicker   = "stock-ticker"
	FnUpScale       = "upscale"
	FnDownScale     = "downscale"
	FnSubImage      = "subimage"
	FnRequant       = "requant"
)

// Functions lists all six prototype function names.
func Functions() []string {
	return []string{
		FnWeatherTicker, FnStockTicker, FnUpScale,
		FnDownScale, FnSubImage, FnRequant,
	}
}

// ForFunction returns the transform implementing the named function.
func ForFunction(name string) (Transform, bool) {
	switch name {
	case FnWeatherTicker:
		return weatherTicker{}, true
	case FnStockTicker:
		return stockTicker{}, true
	case FnUpScale:
		return upScale{}, true
	case FnDownScale:
		return downScale{}, true
	case FnSubImage:
		return subImage{}, true
	case FnRequant:
		return requant{}, true
	default:
		return nil, false
	}
}

type weatherTicker struct{}

func (weatherTicker) Name() string { return FnWeatherTicker }
func (weatherTicker) Apply(f Frame) Frame {
	f.Overlays = append(append([]string(nil), f.Overlays...), "weather")
	return f
}

type stockTicker struct{}

func (stockTicker) Name() string { return FnStockTicker }
func (stockTicker) Apply(f Frame) Frame {
	f.Overlays = append(append([]string(nil), f.Overlays...), "stock")
	return f
}

// upScale doubles both dimensions.
type upScale struct{}

func (upScale) Name() string { return FnUpScale }
func (upScale) Apply(f Frame) Frame {
	f.Width *= 2
	f.Height *= 2
	return f
}

// downScale halves both dimensions (minimum 1x1).
type downScale struct{}

func (downScale) Name() string { return FnDownScale }
func (downScale) Apply(f Frame) Frame {
	f.Width = max1(f.Width / 2)
	f.Height = max1(f.Height / 2)
	return f
}

// subImage crops the centered half-size region.
type subImage struct{}

func (subImage) Name() string { return FnSubImage }
func (subImage) Apply(f Frame) Frame {
	f.Width = max1(f.Width / 2)
	f.Height = max1(f.Height / 2)
	f.Cropped = true
	return f
}

// requant coarsens quantization by one step.
type requant struct{}

func (requant) Name() string { return FnRequant }
func (requant) Apply(f Frame) Frame {
	f.Quant++
	return f
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
