package media

import (
	"encoding/gob"
	"sync"
)

var gobOnce sync.Once

// RegisterGob registers the streaming data plane's payload types with
// encoding/gob for real network transports. Safe to call multiple times.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.RegisterName("media.ADU", ADU{})
	})
}
