package media

import (
	"fmt"
	"time"

	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// MsgADU is the streaming data-plane message type.
const MsgADU = "media.adu"

// ADU carries one frame along a composed service graph: each hop applies
// its component's transform and forwards to the next component's peer; the
// last hop delivers to the receiving application.
type ADU struct {
	SessID uint64
	Graph  *service.Graph
	Order  []int // topological order of function indices
	Pos    int
	Frame  Frame
	Dest   p2p.NodeID
	// SentAt is the sender's clock when the frame entered the session; the
	// destination computes the end-to-end data-plane latency from it.
	SentAt time.Duration
}

// Node is a peer's streaming data-plane endpoint. Attach one to every peer
// that hosts components or terminates sessions.
type Node struct {
	host       p2p.Node
	lookup     func(id string) (service.Component, bool)
	deliver    func(Frame)
	deliverADU func(ADU, time.Duration)
}

// Attach registers the data-plane handler on host. lookup resolves locally
// hosted components (e.g. bcp.Engine.LocalComponent).
func Attach(host p2p.Node, lookup func(id string) (service.Component, bool)) *Node {
	n := &Node{host: host, lookup: lookup}
	host.Handle(MsgADU, n.onADU)
	return n
}

// OnDeliver sets the receiving application's frame callback (for session
// destinations).
func (n *Node) OnDeliver(fn func(Frame)) { n.deliver = fn }

// OnDeliverADU sets a callback receiving the full ADU plus the arrival time
// on the destination's clock, for data-plane latency measurements.
func (n *Node) OnDeliverADU(fn func(ADU, time.Duration)) { n.deliverADU = fn }

// SendFrame injects one frame into a composed session from the sending
// application. DAG graphs stream along the topological order, which
// serializes parallel branches — acceptable for the data-plane
// demonstration (each component still processes the ADU exactly once).
func (n *Node) SendFrame(g *service.Graph, f Frame) error {
	order := g.Pattern.TopoOrder()
	first, ok := g.Comps[order[0]]
	if !ok {
		return fmt.Errorf("media: graph has no component for function %d", order[0])
	}
	n.host.Send(p2p.Message{
		Type: MsgADU,
		To:   first.Comp.Peer,
		Size: 64 + f.Bytes()/64, // headers; payload itself is notional
		Payload: ADU{
			SessID: reqID(g), Graph: g, Order: order, Frame: f, Dest: destOf(g),
			SentAt: n.host.Now(),
		},
	})
	return nil
}

func reqID(g *service.Graph) uint64 {
	if g.Req != nil {
		return g.Req.ID
	}
	return 0
}

func destOf(g *service.Graph) p2p.NodeID {
	if g.Req != nil {
		return g.Req.Dest
	}
	return p2p.NoNode
}

func (n *Node) onADU(_ p2p.Node, msg p2p.Message) {
	adu := msg.Payload.(ADU)
	if adu.Pos >= len(adu.Order) {
		// Past the last component: this peer is the receiving application.
		if n.deliver != nil {
			n.deliver(adu.Frame)
		}
		if n.deliverADU != nil {
			n.deliverADU(adu, n.host.Now())
		}
		return
	}
	fn := adu.Order[adu.Pos]
	snap := adu.Graph.Comps[fn]
	comp, hosted := n.lookup(snap.Comp.ID)
	if !hosted {
		return // component gone mid-stream; recovery will switch graphs
	}
	if t, ok := ForFunction(comp.Function); ok {
		adu.Frame = t.Apply(adu.Frame)
	}
	adu.Frame.Trace = append(adu.Frame.Trace, comp.ID)
	adu.Pos++
	// The component's performance quality Qp models its per-ADU processing
	// time (§2.2: ADUs are taken from the input queue, processed, and sent
	// on); the frame leaves this hop after that service delay.
	processing := time.Duration(comp.Qp[qos.Delay] * float64(time.Millisecond))
	forward := func() {
		if adu.Pos < len(adu.Order) {
			next := adu.Graph.Comps[adu.Order[adu.Pos]].Comp.Peer
			n.host.Send(p2p.Message{Type: MsgADU, To: next, Size: msg.Size, Payload: adu})
			return
		}
		n.host.Send(p2p.Message{Type: MsgADU, To: adu.Dest, Size: msg.Size, Payload: adu})
	}
	if processing <= 0 {
		forward()
		return
	}
	n.host.After(processing, forward)
}

// Latency returns the end-to-end data-plane latency of a delivered ADU as
// observed on clock now (the receiving node's Now()).
func (a ADU) Latency(now time.Duration) time.Duration { return now - a.SentAt }
