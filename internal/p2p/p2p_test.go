package p2p_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

// newPair builds a two-node simulated network for contract exercises.
func newPair(t *testing.T) (*simnet.Sim, p2p.Node, p2p.Node, *simnet.Network) {
	t.Helper()
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(10*time.Millisecond), rand.New(rand.NewSource(1)))
	a := nw.AddNode(0)
	b := nw.AddNode(1)
	return sim, a, b, nw
}

func TestNoNodeIsInvalid(t *testing.T) {
	if p2p.NoNode >= 0 {
		t.Fatalf("NoNode = %d, must not collide with the dense non-negative ID space", p2p.NoNode)
	}
}

// TestSendFillsFromAndDelivers pins the Node.Send contract: the runtime
// stamps the sender's ID into From, delivery is asynchronous, and the
// payload arrives intact at the registered handler.
func TestSendFillsFromAndDelivers(t *testing.T) {
	sim, a, b, _ := newPair(t)
	var got []p2p.Message
	b.Handle("test.ping", func(n p2p.Node, msg p2p.Message) {
		if n.ID() != b.ID() {
			t.Errorf("handler node = %d, want %d", n.ID(), b.ID())
		}
		got = append(got, msg)
	})
	a.Send(p2p.Message{Type: "test.ping", To: b.ID(), Payload: "hello", UID: 42})
	if len(got) != 0 {
		t.Fatalf("delivery was synchronous; Send must only enqueue")
	}
	sim.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	m := got[0]
	if m.From != a.ID() {
		t.Errorf("From = %d, want sender %d", m.From, a.ID())
	}
	if m.Payload != "hello" || m.UID != 42 {
		t.Errorf("payload/UID corrupted in flight: %+v", m)
	}
}

// TestHandleReplacesRegistration pins "replacing any previous registration".
func TestHandleReplacesRegistration(t *testing.T) {
	sim, a, b, _ := newPair(t)
	var first, second int
	b.Handle("test.m", func(p2p.Node, p2p.Message) { first++ })
	b.Handle("test.m", func(p2p.Node, p2p.Message) { second++ })
	a.Send(p2p.Message{Type: "test.m", To: b.ID()})
	sim.RunUntilIdle()
	if first != 0 || second != 1 {
		t.Fatalf("old handler ran %d times, new %d; want 0 and 1", first, second)
	}
}

// TestAfterOrderingAndCancel pins the timer contract: timers fire on the
// node's clock in order, and CancelFunc stops an unfired timer but is a
// harmless no-op afterwards.
func TestAfterOrderingAndCancel(t *testing.T) {
	sim, a, _, _ := newPair(t)
	var fired []string
	a.After(20*time.Millisecond, func() { fired = append(fired, "late") })
	a.After(5*time.Millisecond, func() { fired = append(fired, "early") })
	cancel := a.After(10*time.Millisecond, func() { fired = append(fired, "cancelled") })
	cancel()
	cancel() // double-cancel must be a no-op
	sim.RunUntilIdle()
	if len(fired) != 2 || fired[0] != "early" || fired[1] != "late" {
		t.Fatalf("fired = %v, want [early late]", fired)
	}
	if sim.Now() < 20*time.Millisecond {
		t.Fatalf("clock did not advance past the last timer: %v", sim.Now())
	}
}

// TestClockAdvancesOnlyWithEvents pins Now(): virtual time moves with the
// event loop, not with wall time.
func TestClockAdvancesOnlyWithEvents(t *testing.T) {
	sim, a, _, _ := newPair(t)
	if a.Now() != 0 {
		t.Fatalf("fresh runtime clock = %v, want 0", a.Now())
	}
	a.After(time.Second, func() {})
	sim.RunUntilIdle()
	if a.Now() != time.Second {
		t.Fatalf("clock = %v after a 1s timer, want exactly 1s", a.Now())
	}
}

// TestSendToFailedPeerIsDropped pins the delivery clause: messages to failed
// peers vanish silently, and recovery restores delivery.
func TestSendToFailedPeerIsDropped(t *testing.T) {
	sim, a, b, nw := newPair(t)
	delivered := 0
	b.Handle("test.m", func(p2p.Node, p2p.Message) { delivered++ })

	nw.Fail(b.ID())
	if b.Alive() {
		t.Fatalf("failed node still Alive()")
	}
	a.Send(p2p.Message{Type: "test.m", To: b.ID()})
	sim.RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("message delivered to a failed peer")
	}

	nw.Recover(b.ID())
	if !b.Alive() {
		t.Fatalf("recovered node not Alive()")
	}
	a.Send(p2p.Message{Type: "test.m", To: b.ID()})
	sim.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered %d after recovery, want 1", delivered)
	}
}

// TestRandIsSeededStream pins Rand(): the runtime exposes one deterministic
// stream, so two identically seeded runtimes draw identical values.
func TestRandIsSeededStream(t *testing.T) {
	draw := func() []int64 {
		sim := simnet.NewSim()
		nw := simnet.NewNetwork(sim, simnet.ConstantLatency(0), rand.New(rand.NewSource(7)))
		n := nw.AddNode(0)
		out := make([]int64, 8)
		for i := range out {
			out[i] = n.Rand().Int63()
		}
		return out
	}
	x, y := draw(), draw()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("draw %d differs across identically seeded runtimes: %d vs %d", i, x[i], y[i])
		}
	}
}
