// Package p2p defines the transport-agnostic node abstraction all SpiderNet
// protocol code (DHT, service discovery, BCP, failure recovery) is written
// against. Two runtimes implement it: internal/simnet (deterministic
// discrete-event simulation on a virtual clock) and internal/livenet
// (goroutine-per-peer execution on the real clock with injected wide-area
// latencies).
package p2p

import (
	"math/rand"
	"time"
)

// NodeID identifies a peer within a runtime. IDs are small dense integers
// (the peer's index in the overlay); the DHT layer maintains its own
// 128-bit identifier space on top.
type NodeID int

// NoNode is the zero-like invalid node ID.
const NoNode NodeID = -1

// Message is the envelope exchanged between peers. Payload holds a
// protocol-specific struct; within one process no serialization is needed,
// and the live TCP driver registers payload types with encoding/gob.
type Message struct {
	Type    string // handler key, e.g. "bcp.probe"
	From    NodeID
	To      NodeID
	Size    int // approximate wire size in bytes, for overhead accounting
	Payload any
	// UID optionally identifies this message instance across the run (0 if
	// the protocol does not track identity). Transports stamp it onto drop
	// and fault-injection trace events, so per-copy accounting — e.g. the
	// probe-conservation invariant under loss, duplication, and retransmit —
	// can match every wire-level casualty to the protocol unit it carried.
	UID uint64
}

// Handler processes one received message on the destination node.
// Handlers run single-threaded per node in both runtimes.
type Handler func(n Node, msg Message)

// CancelFunc cancels a pending timer. Calling it after the timer fired is a
// no-op.
type CancelFunc func()

// Node is a peer's view of the runtime: identity, clock, messaging, timers,
// and randomness. Protocol packages register handlers at startup and then
// communicate exclusively through Send/After.
type Node interface {
	// ID returns this peer's identifier.
	ID() NodeID
	// Now returns elapsed time on the runtime's clock (virtual in
	// simulation, monotonic-real in the live runtime).
	Now() time.Duration
	// Send transmits msg to msg.To. The runtime fills in msg.From.
	// Delivery is asynchronous and takes the modeled network latency;
	// messages to failed peers are silently dropped, as in a real network.
	Send(msg Message)
	// After schedules fn on this node after d. The returned CancelFunc
	// stops a timer that has not yet fired. Timers die with the node.
	After(d time.Duration, fn func()) CancelFunc
	// Rand returns the runtime's random source. In simulation it is the
	// single seeded stream that makes runs reproducible.
	Rand() *rand.Rand
	// Handle registers the handler for a message type, replacing any
	// previous registration.
	Handle(msgType string, h Handler)
	// Alive reports whether the peer is currently up.
	Alive() bool
}
