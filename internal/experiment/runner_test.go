package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestParallelMatchesSerial is the determinism contract of the parallel
// runner: the same configuration run serially and with 8 workers must
// produce identical figure points AND byte-identical traces. Cells emit into
// private buffers that are replayed in cell-index order, which is exactly
// the serial emission order.
func TestParallelMatchesSerial(t *testing.T) {
	runFig8 := func(parallel int) (Fig8Result, []byte) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		cfg := tinyFig8()
		cfg.Trace = sink
		cfg.Parallel = parallel
		res := Fig8(cfg)
		sink.Flush()
		return res, buf.Bytes()
	}
	serialRes, serialTrace := runFig8(1)
	parRes, parTrace := runFig8(8)

	if !reflect.DeepEqual(serialRes.Points, parRes.Points) {
		t.Fatalf("Fig8 points diverge:\nserial:   %+v\nparallel: %+v", serialRes.Points, parRes.Points)
	}
	if len(serialTrace) == 0 {
		t.Fatal("serial run produced an empty trace; the comparison is vacuous")
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Fatalf("Fig8 traces diverge: serial %d bytes, parallel %d bytes", len(serialTrace), len(parTrace))
	}

	runFig11 := func(parallel int) (Fig11Result, []byte) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		cfg := DefaultFig11Config()
		cfg.IPNodes = 500
		cfg.Peers = 60
		cfg.Budgets = []int{4, 40, 200}
		cfg.Requests = 5
		cfg.Trace = sink
		cfg.Parallel = parallel
		res := Fig11(cfg)
		sink.Flush()
		return res, buf.Bytes()
	}
	serial11, serialTrace11 := runFig11(1)
	par11, parTrace11 := runFig11(8)
	if !reflect.DeepEqual(serial11.Points, par11.Points) {
		t.Fatalf("Fig11 points diverge:\nserial:   %+v\nparallel: %+v", serial11.Points, par11.Points)
	}
	if !bytes.Equal(serialTrace11, parTrace11) {
		t.Fatalf("Fig11 traces diverge: serial %d bytes, parallel %d bytes", len(serialTrace11), len(parTrace11))
	}
}

// TestRunCellsCoversAllCells checks the worker pool executes every cell
// exactly once and replays buffered events in cell order.
func TestRunCellsCoversAllCells(t *testing.T) {
	const n = 37
	counts := make([]int, n)
	sink := &obs.MemSink{}
	runCells(n, 4, sink, func(i int, tracer obs.Tracer) {
		counts[i]++
		tracer.Emit(obs.Event{Kind: "cell", Hops: i})
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
	evs := sink.Events()
	if len(evs) != n {
		t.Fatalf("replayed %d events, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Hops != i {
			t.Fatalf("event %d replayed out of cell order (got cell %d)", i, ev.Hops)
		}
	}
}
