package experiment

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// federateTestConfig shrinks DefaultFederateConfig to a quick 2×1×3 sweep
// that still exercises a crash and a partition scenario.
func federateTestConfig() FederateConfig {
	cfg := DefaultFederateConfig()
	cfg.Peers = 48
	cfg.IPNodes = 300
	cfg.Requests = 16
	cfg.Domains = []int{2, 3}
	cfg.Gateways = []int{1}
	cfg.Scenarios = []string{"none", "partition", "gwcrash"}
	cfg.Window = 12 * time.Second
	cfg.Hold = 8 * time.Second
	cfg.Life = 8 * time.Second
	return cfg
}

// TestFederateHealthyCellsSucceed pins the headline acceptance claims: with
// no faults injected, cross-domain compositions succeed, the sweep actually
// contains cross-domain work, commits happen, and — in every cell, faulted or
// not — no reservation is orphaned.
func TestFederateHealthyCellsSucceed(t *testing.T) {
	res := Federate(federateTestConfig())
	if len(res.Points) != 6 {
		t.Fatalf("sweep produced %d cells, want 6", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Orphans != 0 {
			t.Errorf("cell %d/%d/%s: %d orphaned reservations", p.Domains, p.Gateways, p.Scenario, p.Orphans)
		}
		if p.Prepares != p.Commits+p.Aborts {
			t.Errorf("cell %d/%d/%s: ledger does not balance: %d prepares, %d commits, %d aborts",
				p.Domains, p.Gateways, p.Scenario, p.Prepares, p.Commits, p.Aborts)
		}
		if p.Scenario != "none" {
			continue
		}
		if p.XDomainShare == 0 {
			t.Errorf("cell %d/%d/none: workload never crossed domains", p.Domains, p.Gateways)
		}
		if p.XDomainSuccess < 0.5 {
			t.Errorf("cell %d/%d/none: cross-domain success %.2f, want >= 0.5", p.Domains, p.Gateways, p.XDomainSuccess)
		}
		if p.Commits == 0 {
			t.Errorf("cell %d/%d/none: no commits on a healthy cluster", p.Domains, p.Gateways)
		}
		if p.CommitP50 <= 0 {
			t.Errorf("cell %d/%d/none: commit p50 %.2f ms, want positive", p.Domains, p.Gateways, p.CommitP50)
		}
	}
	// Trace invariants hold in every scenario (crash scenarios rely on the
	// net.down excusal). Checked one cell at a time: cells replay the same
	// request IDs, so a sweep-wide trace would alias sub-sessions.
	for _, sc := range federateTestConfig().Scenarios {
		cfg := federateTestConfig()
		cfg.Domains, cfg.Gateways, cfg.Scenarios = []int{2}, []int{1}, []string{sc}
		sink := &obs.MemSink{}
		cfg.Trace = sink
		Federate(cfg)
		for _, v := range obs.Check(sink.Events()) {
			t.Errorf("scenario %s invariant: %s", sc, v)
		}
	}
}

// TestFederateDeterministicAcrossWorkers runs the identical sweep serially
// and with several workers: points, table, and trace must be byte-identical.
func TestFederateDeterministicAcrossWorkers(t *testing.T) {
	cfg := federateTestConfig()
	run := func(parallel int) (FederateResult, []obs.Event) {
		c := cfg
		c.Parallel = parallel
		sink := &obs.MemSink{}
		c.Trace = sink
		return Federate(c), sink.Events()
	}
	serial, serialEv := run(1)
	for _, workers := range []int{2, 4} {
		par, parEv := run(workers)
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Errorf("parallel=%d points differ:\nserial %+v\npar    %+v", workers, serial.Points, par.Points)
		}
		if serial.Table.String() != par.Table.String() {
			t.Errorf("parallel=%d table differs:\n%s\nvs\n%s", workers, serial.Table, par.Table)
		}
		if !reflect.DeepEqual(serialEv, parEv) {
			t.Errorf("parallel=%d trace differs: %d vs %d events", workers, len(serialEv), len(parEv))
		}
	}
}
