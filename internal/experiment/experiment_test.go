package experiment

import (
	"strings"
	"testing"
	"time"
)

// Shape tests: the reproduced figures must exhibit the qualitative
// relationships the paper reports, at reduced scale so the suite stays
// fast. Absolute values are not checked (our substrate is a simulator, not
// the authors' testbed).

func tinyFig8() Fig8Config {
	c := DefaultFig8Config()
	c.IPNodes = 400
	c.Peers = 60
	c.Functions = 12
	c.Workloads = []int{2, 8}
	c.TimeUnits = 10
	return c
}

func TestFig8Shape(t *testing.T) {
	res := Fig8(tinyFig8())
	if len(res.Points) != 2 {
		t.Fatalf("points=%d", len(res.Points))
	}
	for _, p := range res.Points {
		// Ordering: optimal >= probing variants (within tolerance), and the
		// QoS-aware schemes beat the oblivious ones decisively.
		if p.Optimal < p.Probing20-0.15 {
			t.Errorf("workload %d: optimal %.2f below probing-0.2 %.2f", p.Workload, p.Optimal, p.Probing20)
		}
		if p.Probing20 < p.Probing10-0.1 {
			t.Errorf("workload %d: probing-0.2 %.2f well below probing-0.1 %.2f", p.Workload, p.Probing20, p.Probing10)
		}
		if p.Probing10 <= p.Random {
			t.Errorf("workload %d: probing-0.1 %.2f not above random %.2f", p.Workload, p.Probing10, p.Random)
		}
		if p.Optimal == 0 {
			t.Errorf("workload %d: optimal found nothing", p.Workload)
		}
	}
	// Success decreases (or at least does not grow) as workload rises.
	lo, hi := res.Points[0], res.Points[1]
	if hi.Optimal > lo.Optimal+0.05 {
		t.Errorf("optimal success grew with workload: %.2f -> %.2f", lo.Optimal, hi.Optimal)
	}
	if !strings.Contains(res.Table.String(), "probing-0.2") {
		t.Error("table missing series")
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.IPNodes = 400
	cfg.Peers = 60
	cfg.Functions = 10
	cfg.Sessions = 12
	cfg.TimeUnits = 20
	res := Fig9(cfg)
	if len(res.Points) != 20 {
		t.Fatalf("points=%d", len(res.Points))
	}
	totalWithout, totalWith := 0, 0
	for _, p := range res.Points {
		totalWithout += p.WithoutRecovery
		totalWith += p.WithRecovery
	}
	if totalWithout == 0 {
		t.Fatal("churn produced no failures in the unprotected population")
	}
	// Proactive recovery must eliminate the large majority of failures.
	if float64(totalWith) > 0.4*float64(totalWithout) {
		t.Fatalf("recovery ineffective: %d unrecovered vs %d without recovery", totalWith, totalWithout)
	}
	// Failures were actually repaired, not just undetected.
	if res.Switchovers+res.Reactives == 0 {
		t.Fatal("no recoveries recorded")
	}
	// A small number of backups suffices (the paper reports ≈2.74).
	if res.AvgBackups <= 0 || res.AvgBackups > 5 {
		t.Fatalf("AvgBackups=%v out of plausible range", res.AvgBackups)
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Hosts = 60
	cfg.Speedup = 100
	cfg.RequestsPerSize = 6
	res := Fig10(cfg)
	if len(res.Points) != 5 {
		t.Fatalf("points=%d", len(res.Points))
	}
	okSizes := 0
	for _, p := range res.Points {
		if p.Succeeded == 0 {
			continue
		}
		okSizes++
		if p.Total <= 0 || p.Discovery <= 0 {
			t.Fatalf("funcs=%d: non-positive times %+v", p.Funcs, p)
		}
		if p.Discovery >= p.Total {
			t.Fatalf("funcs=%d: discovery %v exceeds total %v", p.Funcs, p.Discovery, p.Total)
		}
		// Setup completes within seconds of protocol time, like the paper.
		if p.Total > 30*time.Second {
			t.Fatalf("funcs=%d: setup %v implausibly slow", p.Funcs, p.Total)
		}
	}
	if okSizes < 3 {
		t.Fatalf("only %d function sizes composed successfully", okSizes)
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.IPNodes = 500
	cfg.Peers = 60
	cfg.Budgets = []int{4, 60, 400}
	cfg.Requests = 8
	res := Fig11(cfg)
	if len(res.Points) != 3 {
		t.Fatalf("points=%d", len(res.Points))
	}
	small, mid, large := res.Points[0], res.Points[1], res.Points[2]
	if small.SpiderNet == 0 || large.SpiderNet == 0 || large.Optimal == 0 {
		t.Fatalf("missing series: %+v", res.Points)
	}
	// Delay improves (weakly) with budget.
	if large.SpiderNet > small.SpiderNet+1 {
		t.Fatalf("delay grew with budget: %.0f -> %.0f", small.SpiderNet, large.SpiderNet)
	}
	// With a large budget SpiderNet approaches optimal (within 30%) and
	// beats random clearly.
	if large.SpiderNet > large.Optimal*1.3 {
		t.Fatalf("large budget %.0fms far from optimal %.0fms", large.SpiderNet, large.Optimal)
	}
	if large.SpiderNet >= large.Random {
		t.Fatalf("spidernet %.0f not better than random %.0f", large.SpiderNet, large.Random)
	}
	if mid.Optimal <= 0 {
		t.Fatal("optimal series empty at mid budget")
	}
	// The exhaustive probe count matches replicas^funcs scale.
	if large.OptimalProbes < 100 {
		t.Fatalf("optimal probe count %d implausibly low", large.OptimalProbes)
	}
}

func TestOverheadShape(t *testing.T) {
	cfg := DefaultOverheadConfig()
	cfg.IPNodes = 400
	cfg.Peers = 80
	cfg.Functions = 12
	cfg.Requests = 30
	res := Overhead(cfg)
	if res.SpiderNetMessages == 0 {
		t.Fatal("no BCP messages recorded")
	}
	if res.CentralizedMessages == 0 {
		t.Fatal("no centralized messages computed")
	}
	// The paper claims >= one order of magnitude; at our scale we require a
	// clear multiple.
	if res.Ratio < 2 {
		t.Fatalf("centralized/spidernet ratio %.2f too small", res.Ratio)
	}
}
