package experiment

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/workload"
)

// StressScenario names one adversarial traffic shape of the stress sweep.
type StressScenario struct {
	Name string // short row label ("flash", "churnstorm", ...)
	Spec string // workload.ParseScenario grammar
}

// StressConfig parameterizes the adversarial-workload sweep: every scenario
// (Zipf popularity, diurnal load, flash crowd, churn storm) is replayed
// through SpiderNet's BCP and through the credible global-view baselines on
// identically seeded clusters, so the per-cell differences are attributable
// to the algorithm alone.
type StressConfig struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Scenarios lists the stress shapes swept; each spec must parse under
	// workload.ParseScenario (Stress panics otherwise — the sweep is
	// config-driven, not user-input-driven).
	Scenarios []StressScenario
	// PerUnit is the baseline offered load (requests per time unit) before
	// the scenario's rate curve scales it.
	PerUnit int
	// TimeUnits is the run length; TimeUnit its simulated duration.
	TimeUnits int
	TimeUnit  time.Duration
	// SessionLife is how long an admitted session holds its resources.
	SessionLife time.Duration
	// MinFuncs/MaxFuncs bound the function count per request.
	MinFuncs, MaxFuncs int
	// Capacity is the per-peer resource capacity (tight, so heavy-tailed
	// popularity actually concentrates contention on the popular replicas).
	Capacity qos.Resources
	// DelayReqMin/Max bound the sampled end-to-end delay requirement (ms).
	DelayReqMin, DelayReqMax float64
	// Budget is SpiderNet's probing budget per request.
	Budget int
	// Model/Shed configure the load plane: both SpiderNet and the baselines
	// run on clusters paying utilization-driven processing delay; SpiderNet
	// additionally folds utilization into selection and sheds past Shed.
	Model qos.LoadModel
	Shed  float64
	// RecoverAfter is how many time units a churn-storm victim stays down.
	RecoverAfter int
	// Trace, when non-nil, receives every cell's trace (byte-identical at
	// any Parallel).
	Trace obs.Tracer
	// Parallel is the worker count for the scenario × algorithm cells.
	Parallel int
}

// DefaultStressConfig returns the laptop-scale sweep: four scenarios
// (heavy tail, diurnal, flash crowd, churn storm) over a 100-peer cluster.
func DefaultStressConfig() StressConfig {
	var cap qos.Resources
	cap[qos.CPU] = 8
	cap[qos.Memory] = 80
	return StressConfig{
		Seed:      1,
		IPNodes:   1000,
		Peers:     100,
		Functions: 24,
		Scenarios: []StressScenario{
			{Name: "zipf", Spec: "zipf=1.1"},
			{Name: "diurnal", Spec: "zipf=1.1,diurnal=8s@0.6"},
			{Name: "flash", Spec: "zipf=1.1,flash=fn0:8@4s+4s"},
			{Name: "churnstorm", Spec: "zipf=1.1,churn=0.04@4s+4s,seed=7"},
		},
		PerUnit:      8,
		TimeUnits:    12,
		TimeUnit:     time.Second,
		SessionLife:  10 * time.Second,
		MinFuncs:     2,
		MaxFuncs:     3,
		Capacity:     cap,
		DelayReqMin:  150,
		DelayReqMax:  400,
		Budget:       6,
		Model:        qos.LoadModel{Base: 20 * time.Millisecond, Cap: 0.95},
		Shed:         0.8,
		RecoverAfter: 3,
	}
}

// StressPoint is one (scenario, algorithm) cell of the sweep.
type StressPoint struct {
	Scenario string // scenario name
	Spec     string // canonical scenario spec
	Alg      string
	// Offered counts the requests actually issued (dead-source arrivals
	// during churn are skipped identically for every algorithm).
	Offered int
	// Success is the composition success ratio over offered requests.
	Success float64
	// SetupP50/P99 are setup-latency percentiles in ms over successful
	// compositions. The global-view baselines select instantaneously, so
	// only the spidernet rows have non-zero setup.
	SetupP50, SetupP99 float64
	// UtilMax is the highest per-peer peak utilization seen in the run.
	UtilMax float64
	// Shed counts probes declined by overload shedding (spidernet only).
	Shed int64
}

// StressResult is the full sweep.
type StressResult struct {
	Points []StressPoint
	Table  *metrics.Table
}

// Algorithms swept by Stress, in cell order.
const (
	stressSpiderNet = iota
	stressGreedy
	stressRandom
	stressBacktracking
	stressCommunity
	numStressAlgs
)

// stressAlgName maps the cell index to its row label.
func stressAlgName(alg int) string {
	switch alg {
	case stressSpiderNet:
		return "spidernet"
	case stressGreedy:
		return "greedy"
	case stressRandom:
		return "random"
	case stressBacktracking:
		return "backtracking"
	case stressCommunity:
		return "community"
	}
	return fmt.Sprintf("alg%d", alg)
}

// Stress sweeps every configured scenario over SpiderNet and the baseline
// algorithms. Each cell replays the identical request and churn schedule on
// a fresh identically seeded cluster; cells are independent, so the sweep
// is byte-identical at any Parallel worker count.
func Stress(cfg StressConfig) StressResult {
	scns := make([]*workload.Scenario, len(cfg.Scenarios))
	for i, s := range cfg.Scenarios {
		scn, err := workload.ParseScenario(s.Spec)
		if err != nil {
			panic(fmt.Sprintf("experiment: stress scenario %q: %v", s.Name, err))
		}
		scns[i] = scn
	}
	points := make([]StressPoint, len(cfg.Scenarios)*numStressAlgs)
	runCells(len(points), cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		si, alg := i/numStressAlgs, i%numStressAlgs
		points[i] = stressRun(cfg, cfg.Scenarios[si].Name, scns[si], alg, tracer)
	})

	var out StressResult
	out.Points = points
	t := metrics.NewTable("Stress: adversarial workloads × composition algorithms",
		"scenario", "alg", "offered", "success", "setup p50 ms", "setup p99 ms",
		"util max", "shed")
	for _, p := range points {
		t.AddRow(p.Scenario, p.Alg, p.Offered, p.Success, p.SetupP50, p.SetupP99,
			p.UtilMax, p.Shed)
	}
	out.Table = t
	return out
}

// stressRun replays one scenario through one algorithm. The request
// schedule (arrival times, request contents) and the churn-storm schedule
// are pure functions of (cfg, scenario), never of the algorithm, so every
// algorithm faces exactly the same adversity.
func stressRun(cfg StressConfig, name string, scn *workload.Scenario, alg int, tracer obs.Tracer) StressPoint {
	bcpCfg := bcp.DefaultConfig()
	bcpCfg.SoftTimeout = 2500 * time.Millisecond
	load := cluster.LoadOptions{Model: cfg.Model}
	if alg == stressSpiderNet {
		load.Aware = true
		load.Shed = cfg.Shed
	}
	counters := obs.NewRegistry()
	c := cluster.New(cluster.Options{
		Seed:     cfg.Seed,
		IPNodes:  cfg.IPNodes,
		Peers:    cfg.Peers,
		Catalog:  fnCatalog(cfg.Functions),
		Capacity: cfg.Capacity,
		BCP:      bcpCfg,
		Load:     &load,
		Trace:    tracer,
		Obs:      counters,
	})
	w := c.World()
	gen := workload.NewGenerator(workload.Config{
		Catalog:     fnCatalog(cfg.Functions),
		Peers:       cfg.Peers,
		MinFuncs:    cfg.MinFuncs,
		MaxFuncs:    cfg.MaxFuncs,
		DelayReqMin: cfg.DelayReqMin,
		DelayReqMax: cfg.DelayReqMax,
		Scenario:    scn,
	}, newRng(cfg.Seed+100))

	catalog := fnCatalog(cfg.Functions)
	var offered int
	var ratio metrics.Ratio
	var setup metrics.Sample
	arrivalRng := newRng(cfg.Seed + 200)
	for unit := 0; unit < cfg.TimeUnits; unit++ {
		unitStart := time.Duration(unit) * cfg.TimeUnit
		// The scenario's rate curve (diurnal sine, flash surge) scales the
		// offered load, evaluated at the unit boundary so the count is a
		// deterministic function of the scenario alone.
		n := int(float64(cfg.PerUnit)*scn.RateMult(unitStart, catalog) + 0.5)
		for k := 0; k < n; k++ {
			at := unitStart + time.Duration(arrivalRng.Float64()*float64(cfg.TimeUnit))
			req := gen.NextAt(at)
			req.Budget = cfg.Budget
			c.Sim.Schedule(at-c.Sim.Now(), func() {
				// Dead sources cannot issue requests; the skip depends only
				// on the churn schedule, so it is identical across algorithms.
				if !c.Net.Alive(req.Source) {
					return
				}
				offered++
				stressRequest(cfg, c, w, req, alg, &ratio, &setup)
			})
		}
	}

	// Churn storm: during the scenario's churn window, ChurnRate of the
	// peers fails at every unit boundary and returns RecoverAfter units
	// later. The victim stream is seeded from the scenario seed, isolated
	// from the workload and cluster streams.
	if scn.ChurnRate > 0 {
		churnRng := newRng(cfg.Seed + 400 + scn.Seed)
		for unit := 0; unit < cfg.TimeUnits; unit++ {
			unitStart := time.Duration(unit) * cfg.TimeUnit
			if !scn.ChurnActive(unitStart) {
				continue
			}
			c.Sim.Schedule(unitStart-c.Sim.Now(), func() {
				n := int(scn.ChurnRate * float64(cfg.Peers))
				if n < 1 {
					n = 1
				}
				perm := churnRng.Perm(cfg.Peers)
				for i, failed := 0, 0; i < cfg.Peers && failed < n; i++ {
					id := pid(perm[i])
					if !c.Net.Alive(id) {
						continue
					}
					c.Net.Fail(id)
					failed++
					c.Sim.Schedule(time.Duration(cfg.RecoverAfter)*cfg.TimeUnit, func() {
						c.Net.Recover(id)
					})
				}
			})
		}
	}

	// Track each peer's peak utilization (the hotspot figure heavy tails
	// and flash crowds are designed to produce).
	peak := make([]float64, len(c.Peers))
	horizon := time.Duration(cfg.TimeUnits)*cfg.TimeUnit + cfg.SessionLife
	for at := time.Duration(0); at <= horizon; at += cfg.TimeUnit / 2 {
		c.Sim.Schedule(at, func() {
			for i, p := range c.Peers {
				if u := p.Ledger.Utilization(); u > peak[i] {
					peak[i] = u
				}
			}
		})
	}

	c.Sim.Run(horizon + 30*time.Second)

	var util metrics.Sample
	for _, u := range peak {
		util.Add(u)
	}
	return StressPoint{
		Scenario: name,
		Spec:     scn.String(),
		Alg:      stressAlgName(alg),
		Offered:  offered,
		Success:  ratio.Value(),
		SetupP50: setup.Percentile(50),
		SetupP99: setup.Percentile(99),
		UtilMax:  util.Max(),
		Shed:     counters.Totals().ProbesShed,
	}
}

// stressRequest issues one request through the cell's algorithm. SpiderNet
// composes through BCP (paying discovery, probing, and setup latency); the
// baselines select instantaneously from the global view and admit through
// the same ledgers.
func stressRequest(cfg StressConfig, c *cluster.Cluster, w baselines.World, req *service.Request, alg int, ratio *metrics.Ratio, setup *metrics.Sample) {
	if alg == stressSpiderNet {
		start := c.Sim.Now()
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			ratio.Add(res.Ok)
			if res.Ok {
				setup.AddDuration(c.Sim.Now() - start)
				c.Sim.Schedule(cfg.SessionLife, func() { eng.Teardown(res.Best) })
			}
		})
		return
	}
	var g *service.Graph
	var ok bool
	switch alg {
	case stressGreedy:
		g, ok = baselines.Greedy(w, req)
	case stressRandom:
		g, ok = baselines.Random(w, req, c.Rng.Intn)
	case stressBacktracking:
		g, _, ok = baselines.Backtracking(w, req, service.DefaultWeights(), baselines.BacktrackOptions{})
	case stressCommunity:
		g, ok = baselines.Community(w, req, baselines.DefaultCommunities)
	}
	success := ok && g.Qualified(req) && baselines.Admit(w, g)
	ratio.Add(success)
	if success {
		c.Sim.Schedule(cfg.SessionLife, func() { baselines.Release(w, g) })
	}
}
