package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// stressBySA indexes the sweep's points by (scenario, alg).
func stressBySA(r StressResult) map[string]map[string]StressPoint {
	out := make(map[string]map[string]StressPoint)
	for _, p := range r.Points {
		if out[p.Scenario] == nil {
			out[p.Scenario] = make(map[string]StressPoint)
		}
		out[p.Scenario][p.Alg] = p
	}
	return out
}

// TestStressGates enforces the acceptance criteria of the adversarial
// sweep: under every scenario SpiderNet's success ratio is at least each
// strawman's (random, greedy), and its setup-latency p99 stays bounded even
// under the flash crowd and the churn storm.
func TestStressGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res := Stress(DefaultStressConfig())
	t.Logf("\n%s", res.Table.String())
	pts := stressBySA(res)
	if len(pts) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(pts))
	}
	for name, byAlg := range pts {
		if len(byAlg) != numStressAlgs {
			t.Fatalf("scenario %s: got %d algorithms, want %d", name, len(byAlg), numStressAlgs)
		}
		sn := byAlg["spidernet"]
		if sn.Offered == 0 {
			t.Fatalf("scenario %s: no requests offered", name)
		}
		for _, strawman := range []string{"random", "greedy"} {
			if sn.Success < byAlg[strawman].Success {
				t.Errorf("scenario %s: spidernet success %.3f below %s %.3f",
					name, sn.Success, strawman, byAlg[strawman].Success)
			}
		}
		if sn.Success == 0 {
			t.Errorf("scenario %s: spidernet composed nothing", name)
		}
	}
	// The latency gate: p99 setup under adversity stays within the probing
	// SLA — one collect window (~2.5 s soft timeout) plus the reverse ACK
	// and queueing, with headroom but no room for retry storms or a second
	// collect round.
	for _, name := range []string{"flash", "churnstorm"} {
		p99 := pts[name]["spidernet"].SetupP99
		if p99 <= 0 || p99 > 4000 {
			t.Errorf("scenario %s: spidernet setup p99 %.1f ms outside (0, 4000]", name, p99)
		}
	}
	// The flash crowd must actually surge offered load above the flat
	// scenarios' schedule, or the stress is fake.
	if pts["flash"]["spidernet"].Offered <= pts["zipf"]["spidernet"].Offered {
		t.Errorf("flash crowd offered %d requests, base zipf %d — no surge",
			pts["flash"]["spidernet"].Offered, pts["zipf"]["spidernet"].Offered)
	}
	// The churn storm must kill peers: some arrivals lose their source and
	// are skipped, so fewer requests are offered than under the flat tail.
	if pts["churnstorm"]["spidernet"].Offered >= pts["zipf"]["spidernet"].Offered {
		t.Errorf("churn storm offered %d requests, base zipf %d — nobody died",
			pts["churnstorm"]["spidernet"].Offered, pts["zipf"]["spidernet"].Offered)
	}
	// Shedding is the load-aware plane's pressure valve; the heavy-tailed
	// scenarios are built to trip it on the spidernet cells only.
	shed := int64(0)
	for name, byAlg := range pts {
		shed += byAlg["spidernet"].Shed
		for alg, p := range byAlg {
			if alg != "spidernet" && p.Shed != 0 {
				t.Errorf("scenario %s: %s shed %d probes; only spidernet sheds", name, alg, p.Shed)
			}
		}
	}
	if shed == 0 {
		t.Error("no scenario tripped overload shedding; the sweep is not stressing the load plane")
	}
}

// TestStressWorkerDeterminism: the sweep's rendered table and its event
// trace are byte-identical at 1 and 8 workers, and across reruns.
func TestStressWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep runs twice")
	}
	run := func(parallel int) (string, []obs.Event) {
		sink := &obs.MemSink{}
		cfg := DefaultStressConfig()
		cfg.Trace = sink
		cfg.Parallel = parallel
		res := Stress(cfg)
		return res.Table.String(), sink.Events()
	}
	tbl1, tr1 := run(1)
	tbl8, tr8 := run(8)
	if tbl1 != tbl8 {
		t.Fatalf("tables differ between 1 and 8 workers:\n%s\n---\n%s", tbl1, tbl8)
	}
	if !reflect.DeepEqual(tr1, tr8) {
		t.Fatalf("traces differ between 1 and 8 workers (%d vs %d events)", len(tr1), len(tr8))
	}
	if len(tr1) == 0 || !strings.Contains(tbl1, "spidernet") {
		t.Fatal("degenerate run: empty trace or table")
	}
}
