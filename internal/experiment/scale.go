package experiment

import (
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/workload"
)

// ScaleConfig parameterizes the offered-load scale experiment: the same
// session schedule is replayed at increasing arrival rates against two
// deployments that both pay utilization-driven processing delay, one with
// load-blind and one with load-aware composition (§6-style sweep for the
// overload control plane).
type ScaleConfig struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Loads lists the offered-load levels (sessions per time unit, x axis).
	Loads []int
	// TimeUnits is the number of workload time units simulated per level.
	TimeUnits int
	// TimeUnit is the simulated duration of one workload time unit.
	TimeUnit time.Duration
	// SessionLife is how long an admitted session holds its resources.
	SessionLife time.Duration
	// MinFuncs/MaxFuncs bound the function count per request.
	MinFuncs, MaxFuncs int
	// Capacity is the per-peer resource capacity (tightened so contention
	// materializes inside the sweep).
	Capacity qos.Resources
	// DelayReqMin/Max bound the sampled end-to-end delay requirement (ms).
	DelayReqMin, DelayReqMax float64
	// Budget is the probing budget per request.
	Budget int
	// Model is the utilization-driven processing-delay model applied to both
	// variants (zero Base would disable the inflation and make the variants
	// indistinguishable).
	Model qos.LoadModel
	// Shed is the overload-shedding threshold the load-aware variant uses.
	Shed float64
	// Trace/Counters, when non-nil, are wired into every cluster.
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is the worker count for the (load, variant) cells; <= 1 runs
	// them serially. Results and traces are byte-identical at any count.
	Parallel int
}

// DefaultScaleConfig returns the laptop-scale configuration.
func DefaultScaleConfig() ScaleConfig {
	// Capacity is loose enough that admission rarely binds: the sweep probes
	// the processing-load regime, where hotspot queueing delay — not
	// resource exhaustion — is what separates the variants.
	var cap qos.Resources
	cap[qos.CPU] = 12
	cap[qos.Memory] = 120
	return ScaleConfig{
		Seed:        1,
		IPNodes:     1000,
		Peers:       100,
		Functions:   24,
		Loads:       []int{4, 8, 16, 24},
		TimeUnits:   12,
		TimeUnit:    time.Second,
		SessionLife: 10 * time.Second,
		MinFuncs:    2,
		MaxFuncs:    3,
		Capacity:    cap,
		DelayReqMin: 150,
		DelayReqMax: 400,
		Budget:      6,
		Model:       qos.LoadModel{Base: 20 * time.Millisecond, Cap: 0.95},
		Shed:        0.8,
	}
}

// PaperScaleConfig uses the paper's overlay dimensions (§6.1): a 10,000-node
// IP network, 1,000 peers, 200 functions. Expect a long run.
func PaperScaleConfig() ScaleConfig {
	c := DefaultScaleConfig()
	c.IPNodes = 10000
	c.Peers = 1000
	c.Functions = 200
	c.Loads = []int{50, 100, 200, 400}
	c.TimeUnits = 30
	return c
}

// ScalePoint is one (offered load, variant) cell: composition success ratio,
// setup-latency percentiles over successful sessions, and the spread of
// per-peer peak utilization (the hotspot CDF).
type ScalePoint struct {
	Load    int
	Aware   bool
	Success float64
	// SetupP50/P99 are setup-latency percentiles in ms over successful
	// compositions (failures would only measure the collect timeout).
	SetupP50, SetupP99 float64
	// UtilP50/P90/Max summarize the distribution of each peer's peak
	// utilization over the run.
	UtilP50, UtilP90, UtilMax float64
}

// ScaleResult is the full sweep.
type ScaleResult struct {
	Points []ScalePoint
	Table  *metrics.Table
}

// variants simulated by Scale.
const (
	scaleBlind = iota
	scaleAware
	numScaleVariants
)

// Scale sweeps offered load over the load-blind and load-aware variants.
// Both variants pay the same utilization-driven processing delay; only the
// aware one folds utilization into next-hop choice and graph selection and
// sheds probes past the threshold, so any difference in the hotspot spread
// and latency tail is attributable to the overload control plane.
func Scale(cfg ScaleConfig) ScaleResult {
	points := make([]ScalePoint, len(cfg.Loads)*numScaleVariants)
	runCells(len(points), cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		points[i] = scaleRun(cfg, cfg.Loads[i/numScaleVariants], i%numScaleVariants == scaleAware, tracer)
	})

	var out ScaleResult
	out.Points = points
	t := metrics.NewTable("Scale: offered load sweep, load-blind vs. load-aware composition",
		"load", "variant", "success", "setup p50 ms", "setup p99 ms",
		"util p50", "util p90", "util max")
	for _, p := range points {
		variant := "blind"
		if p.Aware {
			variant = "aware"
		}
		t.AddRow(p.Load, variant, p.Success, p.SetupP50, p.SetupP99,
			p.UtilP50, p.UtilP90, p.UtilMax)
	}
	out.Table = t
	return out
}

// scaleRun replays one offered-load level through one variant. tracer is the
// cell's trace destination (a private buffer under the parallel runner).
func scaleRun(cfg ScaleConfig, perUnit int, aware bool, tracer obs.Tracer) ScalePoint {
	// Short soft holds: losing-path reservations release only by expiry, and
	// holds that linger inflate committed utilization and make the shedding
	// plane refuse work the peer could serve. Late ACKs whose reservation
	// expired fall back to the shed-gated direct admission.
	bcpCfg := bcp.DefaultConfig()
	bcpCfg.SoftTimeout = 2500 * time.Millisecond
	load := cluster.LoadOptions{Model: cfg.Model}
	if aware {
		load.Aware = true
		load.Shed = cfg.Shed
	}
	c := cluster.New(cluster.Options{
		Seed:     cfg.Seed,
		IPNodes:  cfg.IPNodes,
		Peers:    cfg.Peers,
		Catalog:  fnCatalog(cfg.Functions),
		Capacity: cfg.Capacity,
		BCP:      bcpCfg,
		Load:     &load,
		Trace:    tracer,
		Obs:      cfg.Counters,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog:     fnCatalog(cfg.Functions),
		Peers:       cfg.Peers,
		MinFuncs:    cfg.MinFuncs,
		MaxFuncs:    cfg.MaxFuncs,
		DelayReqMin: cfg.DelayReqMin,
		DelayReqMax: cfg.DelayReqMax,
	}, newRng(cfg.Seed+100))

	var ratio metrics.Ratio
	var setup metrics.Sample
	arrivalRng := newRng(cfg.Seed + 200)
	for unit := 0; unit < cfg.TimeUnits; unit++ {
		for k := 0; k < perUnit; k++ {
			req := gen.Next()
			req.Budget = cfg.Budget
			at := time.Duration(unit)*cfg.TimeUnit +
				time.Duration(arrivalRng.Float64()*float64(cfg.TimeUnit))
			c.Sim.Schedule(at-c.Sim.Now(), func() {
				start := c.Sim.Now()
				eng := c.Peers[int(req.Source)].Engine
				eng.Compose(req, func(res bcp.Result) {
					ratio.Add(res.Ok)
					if res.Ok {
						setup.AddDuration(c.Sim.Now() - start)
						c.Sim.Schedule(cfg.SessionLife, func() { eng.Teardown(res.Best) })
					}
				})
			})
		}
	}

	// Sample every peer's utilization twice per time unit across arrivals
	// plus the session drain, keeping each peer's peak (the hotspot figure).
	peak := make([]float64, len(c.Peers))
	horizon := time.Duration(cfg.TimeUnits)*cfg.TimeUnit + cfg.SessionLife
	for at := time.Duration(0); at <= horizon; at += cfg.TimeUnit / 2 {
		c.Sim.Schedule(at, func() {
			for i, p := range c.Peers {
				if u := p.Ledger.Utilization(); u > peak[i] {
					peak[i] = u
				}
			}
		})
	}

	c.Sim.Run(horizon + 30*time.Second)

	var util metrics.Sample
	for _, u := range peak {
		util.Add(u)
	}
	return ScalePoint{
		Load:     perUnit,
		Aware:    aware,
		Success:  ratio.Value(),
		SetupP50: setup.Percentile(50),
		SetupP99: setup.Percentile(99),
		UtilP50:  util.Percentile(50),
		UtilP90:  util.Percentile(90),
		UtilMax:  util.Max(),
	}
}
