package experiment

import (
	"fmt"
	"time"

	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Scale1mConfig parameterizes the million-node capacity sweep — the sweep the
// sub-quadratic core exists for. It stretches three structures at once: the
// frozen-CSR IP topology to 10^6 nodes, the compact overlay to 10^5 peers
// under a deliberately tiny route-cache bound (so the LRU + truncated-search
// path is what's being measured, not an unbounded table collection), and the
// sorted-ring discovery plane to 10^5 DHT peers. As with Scale100k, the
// wall-clock and heap columns are machine-dependent while the structural
// columns (links, simulated route latency/hops, lookup successes) are
// seed-deterministic at any worker count.
type Scale1mConfig struct {
	Seed int64
	// Topo is the (IP nodes, overlay peers) grid, built with frozen CSR +
	// compact overlays.
	Topo []Scale1mTopo
	// RouteCacheK bounds the overlay route cache in every topo cell. It is
	// set far below RouteSources so the sweep continuously evicts — the
	// steady-state memory of the route plane is K tables regardless of how
	// many sources probe.
	RouteCacheK int
	// RouteSources / RoutesPerSource size the route sweep per topo cell.
	RouteSources, RoutesPerSource int
	// DiscoveryPeers is the DHT population for the discovery cells.
	DiscoveryPeers int
	// Shards lists the keyspace shard counts swept by the discovery cells.
	// Since the sorted-ring builder made construction O(n·log n), sharding
	// is no longer how build work is kept feasible — the sweep keeps it to
	// bound per-ring leaf/table state and to exercise cross-ring homing at
	// scale.
	Shards []int
	// Functions / ProvidersPerFn / Lookups size the discovery workload.
	Functions, ProvidersPerFn, Lookups int
	// Trace is wired through the parallel runner for symmetry with the other
	// figures; the sweep itself emits no protocol events.
	Trace obs.Tracer
	// Parallel is the worker count for the cells; <= 1 runs them serially.
	Parallel int
}

// Scale1mTopo is one (IP nodes, overlay peers) grid point.
type Scale1mTopo struct {
	IPNodes, Peers int
}

// DefaultScale1mConfig is the headline sweep: up to 1,000,000 IP nodes and
// 100,000 overlay peers — 100x the paper's §6.1 dimensions — plus a
// 100,000-peer discovery plane at shard counts {16, 64}.
func DefaultScale1mConfig() Scale1mConfig {
	return Scale1mConfig{
		Seed: 1,
		Topo: []Scale1mTopo{
			{IPNodes: 300000, Peers: 30000},
			{IPNodes: 1000000, Peers: 100000},
		},
		RouteCacheK:     8,
		RouteSources:    64,
		RoutesPerSource: 4,
		DiscoveryPeers:  100000,
		Shards:          []int{16, 64},
		Functions:       300,
		ProvidersPerFn:  3,
		Lookups:         300,
	}
}

// Scale1mSliceConfig is the CI-sized cell of the same sweep: one topology
// point and one discovery point, small enough for a test gate but large
// enough that the route cache evicts (RouteSources > RouteCacheK) and the
// discovery plane spans many rings. The scale1m gate in scripts/ci.sh runs
// it through TestScale1mSlice* with a build-time ceiling and a live-heap
// budget.
func Scale1mSliceConfig() Scale1mConfig {
	return Scale1mConfig{
		Seed:            1,
		Topo:            []Scale1mTopo{{IPNodes: 100000, Peers: 10000}},
		RouteCacheK:     8,
		RouteSources:    32,
		RoutesPerSource: 4,
		DiscoveryPeers:  10000,
		Shards:          []int{16},
		Functions:       120,
		ProvidersPerFn:  3,
		Lookups:         200,
	}
}

// Scale1mTopoPoint is one topology cell's result.
type Scale1mTopoPoint struct {
	IPNodes, Peers int
	Links          int
	GenMS          float64 // wall-clock: power-law generation + CSR freeze
	OverlayMS      float64 // wall-clock: compact overlay build
	RouteMS        float64 // wall-clock: whole route sweep, evictions included
	HeapMB         float64 // live-heap delta across graph + overlay build
	RouteAvgMS     float64 // simulated ms, deterministic
	RouteAvgHops   float64 // deterministic
	RouteOK        int     // deterministic
}

// Scale1mDiscPoint is one discovery cell's result.
type Scale1mDiscPoint struct {
	Peers, Shards int
	BuildMS       float64 // wall-clock: S sorted-ring builds, O(n·log n) total
	HeapMB        float64 // live-heap delta across node creation + ring build
	RegisterMS    float64 // wall-clock: puts + simulated delivery
	LookupMS      float64 // wall-clock: gets + simulated delivery
	LookupOK      int     // deterministic
	AvgHops       float64 // deterministic
}

// Scale1mResult is the full sweep.
type Scale1mResult struct {
	Topo      []Scale1mTopoPoint
	Discovery []Scale1mDiscPoint
	TopoTable *metrics.Table
	DiscTable *metrics.Table
}

// Scale1m runs the capacity sweep: topology grid points first, then the
// sharded-discovery grid, all as independent cells under the parallel runner.
func Scale1m(cfg Scale1mConfig) Scale1mResult {
	nt := len(cfg.Topo)
	topo := make([]Scale1mTopoPoint, nt)
	disc := make([]Scale1mDiscPoint, len(cfg.Shards))
	runCells(nt+len(cfg.Shards), cfg.Parallel, cfg.Trace, func(i int, _ obs.Tracer) {
		if i < nt {
			topo[i] = scale1mTopo(cfg, cfg.Topo[i])
		} else {
			disc[i-nt] = scale1mDiscovery(cfg, cfg.Shards[i-nt])
		}
	})

	out := Scale1mResult{Topo: topo, Discovery: disc}
	tt := metrics.NewTable(
		fmt.Sprintf("Scale1m: topology grid (compact overlay, route cache K=%d)", cfg.RouteCacheK),
		"ip nodes", "peers", "links", "gen ms", "overlay ms", "sweep ms", "heap MB", "route ms", "route hops", "routes ok")
	for _, p := range topo {
		tt.AddRow(p.IPNodes, p.Peers, p.Links, p.GenMS, p.OverlayMS, p.RouteMS, p.HeapMB, p.RouteAvgMS, p.RouteAvgHops, p.RouteOK)
	}
	out.TopoTable = tt
	dt := metrics.NewTable(fmt.Sprintf("Scale1m: sharded discovery, %d DHT peers (sorted-ring build)", cfg.DiscoveryPeers),
		"shards", "build ms", "heap MB", "register ms", "lookup ms", "lookups ok", "avg hops")
	for _, p := range disc {
		dt.AddRow(p.Shards, p.BuildMS, p.HeapMB, p.RegisterMS, p.LookupMS, p.LookupOK, p.AvgHops)
	}
	out.DiscTable = dt
	return out
}

// heapDeltaMB returns the live-heap growth since before, clamped at zero:
// when a sibling cell's garbage is collected between the two measurements the
// delta can go negative, which would wrap the unsigned subtraction into a
// figure that fails every budget.
func heapDeltaMB(before uint64) float64 {
	after := liveHeapBytes()
	if after < before {
		return 0
	}
	return float64(after-before) / (1 << 20)
}

// scale1mTopo builds one grid point and sweeps routes over it with the
// bounded cache. RouteSources deliberately exceeds RouteCacheK, so the sweep
// spends most of its time in the post-eviction regime: near destinations on
// the truncated fast path, far ones paying a full Dijkstra into a recycled
// LRU slot.
func scale1mTopo(cfg Scale1mConfig, pt Scale1mTopo) Scale1mTopoPoint {
	rng := newRng(cfg.Seed + int64(pt.IPNodes))
	heapBefore := liveHeapBytes()

	start := time.Now()
	g := topology.GeneratePowerLaw(pt.IPNodes, 2, 2, 30, rng)
	genMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	ov := topology.BuildOverlay(g, topology.OverlayConfig{
		NumPeers: pt.Peers, Degree: 4, Compact: true,
		RouteCacheSize: cfg.RouteCacheK,
	}, rng)
	overlayMS := float64(time.Since(start).Microseconds()) / 1000
	heapMB := heapDeltaMB(heapBefore)

	var lat, hops metrics.Sample
	okCount := 0
	start = time.Now()
	for s := 0; s < cfg.RouteSources; s++ {
		src := rng.Intn(pt.Peers)
		for k := 0; k < cfg.RoutesPerSource; k++ {
			dst := rng.Intn(pt.Peers)
			if path, ok := ov.Route(src, dst); ok {
				okCount++
				lat.Add(path.Latency)
				hops.Add(float64(len(path.Peers) - 1))
			}
		}
	}
	routeMS := float64(time.Since(start).Microseconds()) / 1000
	return Scale1mTopoPoint{
		IPNodes:      pt.IPNodes,
		Peers:        pt.Peers,
		Links:        ov.NumLinks(),
		GenMS:        genMS,
		OverlayMS:    overlayMS,
		RouteMS:      routeMS,
		HeapMB:       heapMB,
		RouteAvgMS:   lat.Mean(),
		RouteAvgHops: hops.Mean(),
		RouteOK:      okCount,
	}
}

// scale1mDiscovery is the discovery cell at 10^5 peers: the shard plan
// partitions the population into independent rings, each built with the
// sorted-ring constructor, then a registration + lookup workload runs with
// key-hash homing exactly as in Scale100k. The success count and hop totals
// must not depend on the shard count — only the build and messaging cost do.
func scale1mDiscovery(cfg Scale1mConfig, shards int) Scale1mDiscPoint {
	netRng := newRng(cfg.Seed + 9000)
	pickRng := newRng(cfg.Seed + 9001)
	n := cfg.DiscoveryPeers

	heapBefore := liveHeapBytes()
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), netRng)
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
	}
	plan := registry.NewShardPlan(n, shards)

	start := time.Now()
	for s := 0; s < plan.NumShards; s++ {
		ring := make([]*dht.Node, len(plan.Members[s]))
		for j, id := range plan.Members[s] {
			ring[j] = nodes[int(id)]
		}
		dht.Build(ring)
	}
	buildMS := float64(time.Since(start).Microseconds()) / 1000
	heapMB := heapDeltaMB(heapBefore)

	start = time.Now()
	for f := 0; f < cfg.Functions; f++ {
		key := registry.FunctionKey(fmt.Sprintf("fn%d", f))
		home := plan.Home(key)
		for p := 0; p < cfg.ProvidersPerFn; p++ {
			src := pickRng.Intn(n)
			item := fmt.Sprintf("p%d/fn%d", src, f)
			if plan.ShardOfPeer(p2p.NodeID(src)) == home {
				nodes[src].Put(key, item, 96)
			} else {
				nodes[src].PutVia(plan.Entries(key)[0], key, item, 96)
			}
		}
	}
	sim.RunUntilIdle()
	registerMS := float64(time.Since(start).Microseconds()) / 1000

	okCount := 0
	var hops metrics.Sample
	start = time.Now()
	for l := 0; l < cfg.Lookups; l++ {
		key := registry.FunctionKey(fmt.Sprintf("fn%d", pickRng.Intn(cfg.Functions)))
		src := pickRng.Intn(n)
		collect := func(items []any, h int, ok bool) {
			if ok && len(items) > 0 {
				okCount++
				hops.Add(float64(h))
			}
		}
		if plan.ShardOfPeer(p2p.NodeID(src)) == plan.Home(key) {
			nodes[src].Get(key, time.Second, collect)
		} else {
			nodes[src].GetVia(plan.Entries(key), key, 0, time.Second, collect)
		}
	}
	sim.RunUntilIdle()
	lookupMS := float64(time.Since(start).Microseconds()) / 1000

	return Scale1mDiscPoint{
		Peers:      n,
		Shards:     plan.NumShards,
		BuildMS:    buildMS,
		HeapMB:     heapMB,
		RegisterMS: registerMS,
		LookupMS:   lookupMS,
		LookupOK:   okCount,
		AvgHops:    hops.Mean(),
	}
}
