package experiment

import (
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/recovery"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Fig9Config parameterizes the failure-frequency-under-churn experiment.
type Fig9Config struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Sessions is the population of long-lived streaming sessions kept
	// alive for the whole run (dead ones are replaced).
	Sessions int
	// TimeUnits is the run length in churn time units (the paper plots 60
	// minutes).
	TimeUnits int
	// TimeUnit is the simulated duration of one churn unit (1 minute in the
	// paper).
	TimeUnit time.Duration
	// ChurnFrac is the fraction of peers failing per time unit (1% in the
	// paper).
	ChurnFrac float64
	// RecoverAfter is how many time units a failed peer stays down.
	RecoverAfter int
	// Budget is the probing budget for session (re-)composition.
	Budget int
	// Faults, when non-nil, layers wire faults (loss/dup/jitter/partition)
	// on top of the churn in both runs, with the protocol hardening knobs
	// (probe retransmits, missed-pong hysteresis) switched on.
	Faults *simnet.FaultSpec
	// Trace/Counters, when non-nil, are wired into both runs' clusters.
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is the worker count for the two recovery-variant cells;
	// <= 1 runs them serially. Results and traces are byte-identical at any
	// worker count.
	Parallel int
}

// DefaultFig9Config returns the laptop-scale configuration.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Seed:         1,
		IPNodes:      1200,
		Peers:        120,
		Functions:    20,
		Sessions:     30,
		TimeUnits:    60,
		TimeUnit:     time.Minute,
		ChurnFrac:    0.01,
		RecoverAfter: 3,
		Budget:       40,
	}
}

// PaperFig9Config uses the paper's network dimensions.
func PaperFig9Config() Fig9Config {
	c := DefaultFig9Config()
	c.IPNodes = 10000
	c.Peers = 1000
	c.Functions = 200
	c.Sessions = 150
	return c
}

// Fig9Point is one time unit of Figure 9: the number of unrecovered session
// failures with and without proactive recovery.
type Fig9Point struct {
	Minute          int
	WithoutRecovery int
	WithRecovery    int
}

// Fig9Result is the full figure plus the recovery statistics the paper
// quotes in its discussion (average ≈2.74 backups per session; proactive
// recovery repairs almost all failures).
type Fig9Result struct {
	Points []Fig9Point
	Table  *metrics.Table

	AvgBackups       float64 // with proactive recovery
	Switchovers      int
	Reactives        int
	DeadWithRecovery int
	DeadWithout      int
}

// Fig9 reproduces Figure 9: failure frequency over time in a dynamic P2P
// network where ChurnFrac of the peers fail every time unit, comparing a
// session population protected by proactive failure recovery against an
// unprotected one.
func Fig9(cfg Fig9Config) Fig9Result {
	// Two cells: the protected population and the unprotected one. Each
	// builds its own cluster from the same seed.
	recCfgs := make([]recovery.Config, 2)
	recCfgs[0] = recovery.DefaultConfig()
	recCfgs[1] = recovery.DefaultConfig()
	recCfgs[1].Proactive = false
	recCfgs[1].Reactive = false

	tls := make([]*metrics.Timeline, 2)
	stats := make([]fig9Stats, 2)
	runCells(2, cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		tls[i], stats[i] = fig9Run(cfg, recCfgs[i], tracer)
	})
	withTL, withStats := tls[0], stats[0]
	withoutTL, withoutStats := tls[1], stats[1]

	horizon := time.Duration(cfg.TimeUnits) * cfg.TimeUnit
	wo := withoutTL.Counts(horizon)
	wi := withTL.Counts(horizon)

	var out Fig9Result
	for i := 0; i < cfg.TimeUnits; i++ {
		out.Points = append(out.Points, Fig9Point{
			Minute:          i,
			WithoutRecovery: wo[i],
			WithRecovery:    wi[i],
		})
	}
	out.AvgBackups = withStats.avgBackups
	out.Switchovers = withStats.switchovers
	out.Reactives = withStats.reactives
	out.DeadWithRecovery = withStats.dead
	out.DeadWithout = withoutStats.dead

	t := metrics.NewTable("Figure 9: failure frequency in a dynamic P2P network (1% churn/unit)",
		"minute", "without-recovery", "with-proactive-recovery")
	for _, p := range out.Points {
		t.AddRow(p.Minute, p.WithoutRecovery, p.WithRecovery)
	}
	out.Table = t
	return out
}

type fig9Stats struct {
	avgBackups  float64
	switchovers int
	reactives   int
	dead        int
}

// fig9Run simulates one protected (or unprotected) session population under
// churn and returns the timeline of unrecovered failures.
func fig9Run(cfg Fig9Config, recCfg recovery.Config, tracer obs.Tracer) (*metrics.Timeline, fig9Stats) {
	bcpCfg := bcp.DefaultConfig()
	if cfg.Faults != nil {
		bcpCfg.ProbeAckTimeout = 300 * time.Millisecond
		bcpCfg.ProbeRetries = 2
		recCfg.MissedPongs = 3
	}
	c := cluster.New(cluster.Options{
		Seed:     cfg.Seed,
		IPNodes:  cfg.IPNodes,
		Peers:    cfg.Peers,
		Catalog:  fnCatalog(cfg.Functions),
		BCP:      bcpCfg,
		Recovery: &recCfg,
		Trace:    tracer,
		Obs:      cfg.Counters,
	})
	if cfg.Faults != nil {
		ids := make([]p2p.NodeID, cfg.Peers)
		for i := range ids {
			ids[i] = pid(i)
		}
		c.ApplyFaults(cfg.Faults.Plan(ids))
	}
	gen := workload.NewGenerator(workload.Config{
		Catalog:  fnCatalog(cfg.Functions),
		Peers:    cfg.Peers,
		MinFuncs: 2,
		MaxFuncs: 3,
		Budget:   cfg.Budget,
		// Generous QoS (Figure 9 studies failures, not admission) but a
		// tight failure bound: long-lived streaming sessions in a network
		// churning 1% per minute demand failure resilience, which drives
		// the backup count γ of Eq. 2 to the paper's ≈2-3 per session.
		DelayReqMin: 4000,
		DelayReqMax: 8000,
		FailReq:     0.02,
	}, newRng(cfg.Seed+300))

	tl := metrics.NewTimeline(cfg.TimeUnit)
	live := 0

	// establish keeps composing until one session sticks (or attempts run
	// out); used for the initial population and for replacements.
	var establish func(attempts int)
	establish = func(attempts int) {
		if attempts <= 0 {
			return
		}
		req := gen.Next()
		if !c.Net.Alive(req.Source) || !c.Net.Alive(req.Dest) {
			establish(attempts - 1)
			return
		}
		p := c.Peers[int(req.Source)]
		p.Engine.Compose(req, func(res bcp.Result) {
			if !res.Ok {
				establish(attempts - 1)
				return
			}
			p.Recovery.Establish(req, res)
			live++
		})
	}
	for i := 0; i < cfg.Sessions; i++ {
		establish(3)
	}
	// Let the initial population settle before churn starts.
	c.Sim.Run(30 * time.Second)

	churnRng := newRng(cfg.Seed + 400)
	for unit := 0; unit < cfg.TimeUnits; unit++ {
		unit := unit
		at := 30*time.Second + time.Duration(unit)*cfg.TimeUnit
		c.Sim.Schedule(at-c.Sim.Now(), func() {
			// Fail ChurnFrac of the peers; schedule their return.
			n := int(cfg.ChurnFrac * float64(cfg.Peers))
			if n < 1 {
				n = 1
			}
			perm := churnRng.Perm(cfg.Peers)
			for i, failed := 0, 0; i < cfg.Peers && failed < n; i++ {
				id := perm[i]
				if !c.Net.Alive(pid(id)) {
					continue
				}
				c.Net.Fail(pid(id))
				failed++
				c.Sim.Schedule(time.Duration(cfg.RecoverAfter)*cfg.TimeUnit, func() {
					c.Net.Recover(pid(id))
				})
			}
			// Replace sessions that died in earlier units to keep the
			// population size steady.
			deadTotal := 0
			for _, p := range c.Peers {
				if p.Recovery != nil {
					deadTotal += p.Recovery.Stats().Dead
				}
			}
			for i := live - deadTotal; i < cfg.Sessions; i++ {
				establish(2)
			}
		})
	}
	c.Sim.Run(30*time.Second + time.Duration(cfg.TimeUnits)*cfg.TimeUnit + 30*time.Second)

	// Aggregate events: every EventDead is an unrecovered failure.
	var st fig9Stats
	var backupSum float64
	var backupSamples int
	for _, p := range c.Peers {
		if p.Recovery == nil {
			continue
		}
		s := p.Recovery.Stats()
		st.switchovers += s.Switchovers
		st.reactives += s.Reactives
		st.dead += s.Dead
		backupSum += float64(s.BackupSum)
		backupSamples += s.BackupSamples
		for _, ev := range p.Recovery.Events() {
			if ev.Kind == recovery.EventDead && ev.Time >= 30*time.Second {
				tl.Add(ev.Time - 30*time.Second)
			}
		}
	}
	if backupSamples > 0 {
		st.avgBackups = backupSum / float64(backupSamples)
	}
	return tl, st
}

func pid(i int) p2p.NodeID { return p2p.NodeID(i) }
