package experiment

import "testing"

// scale100kTestConfig shrinks the capacity sweep to seconds while keeping
// every structural property the full run relies on: multiple grid points,
// compact overlays, and a sharded discovery plane with a shard-count sweep.
func scale100kTestConfig() Scale100kConfig {
	cfg := DefaultScale100kConfig()
	cfg.Topo = []Scale100kTopo{
		{IPNodes: 400, Peers: 60},
		{IPNodes: 800, Peers: 120},
	}
	cfg.RouteSources = 16
	cfg.RoutesPerSource = 2
	cfg.DiscoveryPeers = 240
	cfg.Shards = []int{1, 4, 16}
	cfg.Functions = 24
	cfg.ProvidersPerFn = 2
	cfg.Lookups = 60
	return cfg
}

// TestScale100kStructuralColumnsDeterministic pins the seed-determinism of
// everything the sweep reports that is not wall-clock: link counts, simulated
// route latency and hops, and the discovery success/hop columns.
func TestScale100kStructuralColumnsDeterministic(t *testing.T) {
	a := Scale100k(scale100kTestConfig())
	b := Scale100k(scale100kTestConfig())
	for i := range a.Topo {
		x, y := a.Topo[i], b.Topo[i]
		if x.Links != y.Links || x.RouteAvgMS != y.RouteAvgMS || x.RouteAvgHops != y.RouteAvgHops {
			t.Errorf("topo point %d structural columns differ: %+v vs %+v", i, x, y)
		}
		if x.Links == 0 {
			t.Errorf("topo point %d built no overlay links", i)
		}
	}
	for i := range a.Discovery {
		x, y := a.Discovery[i], b.Discovery[i]
		if x.LookupOK != y.LookupOK || x.AvgHops != y.AvgHops {
			t.Errorf("discovery point %d structural columns differ: %+v vs %+v", i, x, y)
		}
	}
}

// TestScale100kLookupsShardInvariant: key-hash homing means the shard count
// must not change what discovery finds — every shard count in the sweep
// resolves the same number of lookups, and all of them.
func TestScale100kLookupsShardInvariant(t *testing.T) {
	cfg := scale100kTestConfig()
	res := Scale100k(cfg)
	if len(res.Discovery) != len(cfg.Shards) {
		t.Fatalf("expected %d discovery points, got %d", len(cfg.Shards), len(res.Discovery))
	}
	for _, p := range res.Discovery {
		if p.LookupOK != cfg.Lookups {
			t.Errorf("shards=%d resolved %d of %d lookups", p.Shards, p.LookupOK, cfg.Lookups)
		}
	}
}
