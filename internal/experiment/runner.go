package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Parallelism resolves a -parallel flag value: n >= 1 is taken literally,
// anything else means "one worker per CPU" (runtime.GOMAXPROCS(0)).
func Parallelism(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes n independent experiment cells with up to parallel
// workers. Every figure decomposes into cells — one (workload, algorithm) or
// (budget) or (recovery-variant) combination — that each build their own
// identically seeded cluster, Sim, and RNG streams, so cells never share
// mutable state and any execution order yields the same per-cell results.
//
// Determinism of the trace is preserved by buffering: when a shared tracer is
// configured, each cell emits into a private in-memory sink, and after all
// cells finish the buffers are replayed into the shared tracer in cell-index
// order. That is exactly the order a serial run emits in (cell i's events are
// contiguous and precede cell i+1's), so N-worker output is byte-identical to
// serial. With parallel <= 1 the cells run inline, in order, emitting
// straight into the shared tracer — today's behavior.
//
// run receives the cell index and the tracer that cell must hand its cluster
// (nil when tracing is off).
func runCells(n, parallel int, shared obs.Tracer, run func(i int, tracer obs.Tracer)) {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			run(i, shared)
		}
		return
	}
	tracers := make([]obs.Tracer, n)
	var sinks []*obs.MemSink
	if shared != nil {
		sinks = make([]*obs.MemSink, n)
		for i := range sinks {
			sinks[i] = &obs.MemSink{}
			tracers[i] = sinks[i]
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, tracers[i])
			}
		}()
	}
	wg.Wait()
	for _, s := range sinks {
		for _, ev := range s.Events() {
			shared.Emit(ev)
		}
	}
}
