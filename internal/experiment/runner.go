package experiment

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Parallelism resolves a -parallel flag value: n >= 1 is taken literally,
// anything else means "one worker per CPU" (runtime.GOMAXPROCS(0)).
func Parallelism(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes n independent experiment cells with up to parallel
// workers. Every figure decomposes into cells — one (workload, algorithm) or
// (budget) or (recovery-variant) combination — that each build their own
// identically seeded cluster, Sim, and RNG streams, so cells never share
// mutable state and any execution order yields the same per-cell results.
//
// Determinism of the trace is preserved by spilling: when a shared tracer is
// configured, each cell emits into a private temp-file JSONL spill, and after
// all cells finish the spills are streamed back into the shared tracer in
// cell-index order through obs.StreamTrace. That is exactly the order a
// serial run emits in (cell i's events are contiguous and precede cell
// i+1's), so N-worker output is byte-identical to serial — the JSONL encoding
// carries only integer and string fields in fixed order, so a decode/re-emit
// round trip reproduces the original bytes. Unlike the old whole-cell memory
// buffers, spill memory is O(1) per in-flight cell regardless of trace size,
// which is what lets the 100k sweep's discovery cells trace at full fidelity.
// A cell whose spill file cannot be created falls back to an in-memory
// buffer. With parallel <= 1 the cells run inline, in order, emitting
// straight into the shared tracer — today's behavior.
//
// run receives the cell index and the tracer that cell must hand its cluster
// (nil when tracing is off).
func runCells(n, parallel int, shared obs.Tracer, run func(i int, tracer obs.Tracer)) {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			run(i, shared)
		}
		return
	}
	tracers := make([]obs.Tracer, n)
	var spills []*cellSpill
	if shared != nil {
		spills = make([]*cellSpill, n)
		for i := range spills {
			spills[i] = newCellSpill()
			tracers[i] = spills[i].tracer()
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, tracers[i])
			}
		}()
	}
	wg.Wait()
	for _, sp := range spills {
		sp.replay(shared)
	}
}

// cellSpill is one cell's private trace destination: a temp JSONL file, or an
// in-memory buffer when the file could not be created.
type cellSpill struct {
	file *obs.TraceFile
	path string
	mem  *obs.MemSink
}

func newCellSpill() *cellSpill {
	f, err := os.CreateTemp("", "spidercell-*.jsonl")
	if err != nil {
		return &cellSpill{mem: &obs.MemSink{}}
	}
	path := f.Name()
	f.Close()
	tf, err := obs.CreateTrace(path)
	if err != nil {
		os.Remove(path)
		return &cellSpill{mem: &obs.MemSink{}}
	}
	return &cellSpill{file: tf, path: path}
}

func (sp *cellSpill) tracer() obs.Tracer {
	if sp.mem != nil {
		return sp.mem
	}
	return sp.file
}

// replay streams this cell's events into shared in emission order and
// discards the spill. A spill that cannot be read back would silently break
// the byte-identical determinism contract, so I/O failures are loud.
func (sp *cellSpill) replay(shared obs.Tracer) {
	if sp.mem != nil {
		for _, ev := range sp.mem.Events() {
			shared.Emit(ev)
		}
		return
	}
	if err := sp.file.Close(); err != nil {
		panic(fmt.Sprintf("experiment: closing cell trace spill: %v", err))
	}
	err := obs.StreamTrace(sp.path, func(ev obs.Event) error {
		shared.Emit(ev)
		return nil
	})
	os.Remove(sp.path)
	if err != nil {
		panic(fmt.Sprintf("experiment: replaying cell trace spill: %v", err))
	}
}
