package experiment

import (
	"fmt"
	"time"

	"repro/internal/bcp"
	"repro/internal/fgraph"
	"repro/internal/livenet"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// Fig10Config parameterizes the wide-area session-setup-time experiment,
// which runs on the live goroutine runtime (the PlanetLab stand-in) rather
// than the discrete-event simulator.
type Fig10Config struct {
	Seed  int64
	Hosts int // 102 in the paper
	// Speedup compresses wide-area latencies and protocol timers; reported
	// times are scaled back to protocol time. 1 = real time.
	Speedup float64
	// RequestsPerSize is how many compositions are averaged per function
	// count (the paper uses 500+ across all sizes).
	RequestsPerSize int
	// MinFuncs/MaxFuncs bound the x axis (2..6 in the paper).
	MinFuncs, MaxFuncs int
	// Budget is the probing budget per request.
	Budget int
	// Loss, when positive, injects uniform message loss on the live wire
	// and switches on BCP's per-hop probe retransmits.
	Loss float64
}

// DefaultFig10Config returns a configuration that finishes in a few wall
// seconds by compressing time 50x.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Seed:            1,
		Hosts:           102,
		Speedup:         50,
		RequestsPerSize: 12,
		MinFuncs:        2,
		MaxFuncs:        6,
		Budget:          20,
	}
}

// PaperFig10Config runs 102 hosts in real time with 100 requests per size
// (≥500 total, like the paper).
func PaperFig10Config() Fig10Config {
	c := DefaultFig10Config()
	c.Speedup = 1
	c.RequestsPerSize = 100
	return c
}

// Fig10Point is one x-position of Figure 10: the average session setup time
// and its breakdown for requests with Funcs functions.
type Fig10Point struct {
	Funcs       int
	Discovery   time.Duration // decentralized service discovery
	Composition time.Duration // probing + selection + reverse-path init
	Total       time.Duration
	Succeeded   int
	Attempted   int
}

// Fig10Result is the full figure.
type Fig10Result struct {
	Points []Fig10Point
	Table  *metrics.Table
}

// Fig10 reproduces Figure 10: average service session setup time in the
// wide-area live runtime versus the number of composed functions. Requests
// draw distinct functions from the six-function media catalogue deployed
// one-component-per-host, exactly like the paper's prototype (§6.2).
func Fig10(cfg Fig10Config) Fig10Result {
	tbOpts := livenet.TestbedOptions{
		Hosts:   cfg.Hosts,
		Seed:    cfg.Seed,
		Speedup: cfg.Speedup,
		Loss:    cfg.Loss,
	}
	if cfg.Loss > 0 {
		// Timer values are protocol time; the live runtime compresses them
		// by the speedup like every other timer.
		tbOpts.BCP = bcp.DefaultConfig()
		tbOpts.BCP.ProbeAckTimeout = 300 * time.Millisecond
		tbOpts.BCP.ProbeRetries = 2
	}
	tb := livenet.NewTestbed(tbOpts)
	defer tb.Close()

	rng := newRng(cfg.Seed + 500)
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	nextID := uint64(0)

	var out Fig10Result
	for nf := cfg.MinFuncs; nf <= cfg.MaxFuncs; nf++ {
		var disc, comp, total metrics.Sample
		succeeded, attempted := 0, 0
		for r := 0; r < cfg.RequestsPerSize; r++ {
			fns := pickMediaFunctions(tb, nf, rng)
			if fns == nil {
				continue
			}
			src := p2p.NodeID(rng.Intn(cfg.Hosts))
			dst := p2p.NodeID(rng.Intn(cfg.Hosts))
			for dst == src {
				dst = p2p.NodeID(rng.Intn(cfg.Hosts))
			}
			q := qos.Unbounded()
			q[qos.Delay] = 20000
			nextID++
			req := &service.Request{
				ID: nextID, FGraph: fgraph.Linear(fns...), QoSReq: q, Res: res,
				Bandwidth: 50, Source: src, Dest: dst, Budget: cfg.Budget,
			}
			attempted++
			result := tb.Compose(req)
			if !result.Ok {
				continue
			}
			succeeded++
			d := tb.Net.Unscale(result.DiscoveryTime)
			t := tb.Net.Unscale(result.SetupTime)
			disc.AddDuration(d)
			comp.AddDuration(t - d)
			total.AddDuration(t)
			// Free the session so later requests see an idle testbed.
			tb.Net.Exec(src, func() {
				tb.Peers[int(src)].Engine.Teardown(result.Best)
			})
		}
		out.Points = append(out.Points, Fig10Point{
			Funcs:       nf,
			Discovery:   msToDur(disc.Mean()),
			Composition: msToDur(comp.Mean()),
			Total:       msToDur(total.Mean()),
			Succeeded:   succeeded,
			Attempted:   attempted,
		})
	}
	t := metrics.NewTable("Figure 10: average session setup time in wide-area live runtime",
		"functions", "discovery", "composition+init", "total", "succeeded/attempted")
	for _, p := range out.Points {
		t.AddRow(p.Funcs, p.Discovery, p.Composition, p.Total,
			fmt.Sprintf("%d/%d", p.Succeeded, p.Attempted))
	}
	out.Table = t
	return out
}

// pickMediaFunctions draws nf distinct functions that actually have
// replicas on the testbed; nil if impossible.
func pickMediaFunctions(tb *livenet.Testbed, nf int, rng interface{ Perm(int) []int }) []string {
	var avail []string
	for _, f := range livenet.MediaFunctions {
		if tb.Replicas(f) > 0 {
			avail = append(avail, f)
		}
	}
	if len(avail) < nf {
		return nil
	}
	idx := rng.Perm(len(avail))[:nf]
	out := make([]string, nf)
	for i, j := range idx {
		out[i] = avail[j]
	}
	return out
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
