package experiment

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// FederateConfig parameterizes the federation sweep: domain count × gateway
// density × fault scenario, with every cell replaying the same request
// schedule through the two-phase cross-domain commit and then draining until
// every reservation must have resolved.
type FederateConfig struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Requests is the number of compositions injected per cell.
	Requests int
	// Window is the arrival window; requests land uniformly inside it.
	Window time.Duration
	// MinFuncs/MaxFuncs bound the function count per request.
	MinFuncs, MaxFuncs int
	// Budget is the probing budget per request (split across segments).
	Budget int
	// Hold/Life override the federation prepare-hold window and committed
	// session lifetime (zero = federation defaults).
	Hold, Life time.Duration
	// Domains and Gateways are the swept axes.
	Domains  []int
	Gateways []int
	// Scenarios lists the per-cell fault scenarios: "none", "loss=<p>" (any
	// fault-spec string), "partition" (domain 0 cut off during the commit
	// window), "gwcrash" (the last domain's last gateway fails mid-window),
	// "coordcrash" (domain 1's coordinator fails mid-window).
	Scenarios []string
	// Trace/Counters, when non-nil, are wired into every cluster.
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is the worker count for the cells; <= 1 runs them serially.
	// Results and traces are byte-identical at any count.
	Parallel int
}

// DefaultFederateConfig returns the laptop-scale configuration: 20 cells.
func DefaultFederateConfig() FederateConfig {
	return FederateConfig{
		Seed:      1,
		IPNodes:   600,
		Peers:     72,
		Functions: 18,
		Requests:  40,
		Window:    20 * time.Second,
		MinFuncs:  2,
		MaxFuncs:  4,
		Budget:    8,
		Hold:      15 * time.Second,
		Life:      15 * time.Second,
		Domains:   []int{2, 4},
		Gateways:  []int{1, 2},
		Scenarios: []string{"none", "loss=0.1", "partition", "gwcrash", "coordcrash"},
	}
}

// PaperFederateConfig scales the sweep up toward the paper's overlay
// dimensions. Expect a long run.
func PaperFederateConfig() FederateConfig {
	c := DefaultFederateConfig()
	c.IPNodes = 2000
	c.Peers = 240
	c.Functions = 48
	c.Requests = 200
	c.Window = 60 * time.Second
	c.Domains = []int{2, 4, 8}
	return c
}

// FederatePoint is one (domains, gateways, scenario) cell.
type FederatePoint struct {
	Domains  int
	Gateways int
	Scenario string
	// XDomainShare is the fraction of injected requests whose function set
	// spans more than one domain (ground truth from the catalogue homing).
	XDomainShare float64
	// Success is the overall composition success ratio; XDomainSuccess the
	// ratio over the cross-domain subset.
	Success        float64
	XDomainSuccess float64
	// CommitP50/P99 are prepare-to-full-ack latency percentiles in ms over
	// successful cross-domain sessions.
	CommitP50, CommitP99 float64
	// Prepares/Commits/Aborts aggregate the gateways' 2PC ledgers (Aborts
	// includes presumed-abort expiries).
	Prepares, Commits, Aborts int64
	// Orphans counts live peers left holding any reservation after the
	// drain — the atomic-commit acceptance figure, which must be zero.
	Orphans int
}

// FederateResult is the full sweep.
type FederateResult struct {
	Points []FederatePoint
	Table  *metrics.Table
}

// Federate sweeps domain count × gateway density × fault scenario over the
// federated deployment. Every cell drains long enough that client give-up,
// hold expiry, committed-session end of life, and the commit-TTL backstop
// have all fired, so any reservation still held afterwards is a real leak.
func Federate(cfg FederateConfig) FederateResult {
	type cellKey struct {
		d, g int
		sc   string
	}
	var cells []cellKey
	for _, d := range cfg.Domains {
		for _, g := range cfg.Gateways {
			for _, sc := range cfg.Scenarios {
				cells = append(cells, cellKey{d, g, sc})
			}
		}
	}
	points := make([]FederatePoint, len(cells))
	runCells(len(points), cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		points[i] = federateRun(cfg, cells[i].d, cells[i].g, cells[i].sc, tracer)
	})

	var out FederateResult
	out.Points = points
	t := metrics.NewTable("Federate: cross-domain composition with atomic session commit",
		"domains", "gateways", "scenario", "xd share", "success", "xd success",
		"commit p50 ms", "commit p99 ms", "prepares", "commits", "aborts", "orphans")
	for _, p := range points {
		t.AddRow(p.Domains, p.Gateways, p.Scenario, p.XDomainShare, p.Success,
			p.XDomainSuccess, p.CommitP50, p.CommitP99, p.Prepares, p.Commits,
			p.Aborts, p.Orphans)
	}
	out.Table = t
	return out
}

// federateRun replays one cell. tracer is the cell's trace destination (a
// private buffer under the parallel runner).
func federateRun(cfg FederateConfig, domains, gateways int, scenario string, tracer obs.Tracer) FederatePoint {
	catalog := fnCatalog(cfg.Functions)
	spec := &federation.Spec{Domains: domains, Gateways: gateways,
		Hold: cfg.Hold, Life: cfg.Life}
	c := cluster.New(cluster.Options{
		Seed:    cfg.Seed,
		IPNodes: cfg.IPNodes,
		Peers:   cfg.Peers,
		Catalog: catalog,
		Domains: spec,
		Trace:   tracer,
		Obs:     cfg.Counters,
	})
	plan := c.Plan()

	// Catalogue homing is round-robin by index, so a request's domain span
	// is known at injection time — the denominator of the cross-domain
	// success ratio.
	gen := workload.NewGenerator(workload.Config{
		Catalog:  catalog,
		Peers:    cfg.Peers,
		MinFuncs: cfg.MinFuncs,
		MaxFuncs: cfg.MaxFuncs,
		Budget:   cfg.Budget,
	}, newRng(cfg.Seed+100))

	switch {
	case scenario == "partition":
		// Cut domain 0 off from every other domain across the middle of the
		// arrival window — prepares and commit decisions in flight when the
		// partition lands must resolve by presumed abort, and reservations
		// must drain after the heal.
		c.ApplyFaults(simnet.FaultPlan{Seed: 3, Partitions: []simnet.Partition{
			plan.DomainPartition(0, cfg.Window/4, 3*cfg.Window/4),
		}})
	case scenario == "gwcrash":
		gws := plan.Gateways(domains - 1)
		victim := gws[len(gws)-1]
		c.Sim.Schedule(cfg.Window/3, func() { c.Net.Fail(victim) })
	case scenario == "coordcrash":
		victim := plan.Coordinator(1)
		c.Sim.Schedule(cfg.Window/3, func() { c.Net.Fail(victim) })
	case scenario != "none":
		fs, err := simnet.ParseFaultSpec(scenario)
		if err != nil {
			panic("experiment: federate scenario " + scenario + ": " + err.Error())
		}
		peers := make([]p2p.NodeID, cfg.Peers)
		for i := range peers {
			peers[i] = p2p.NodeID(i)
		}
		c.ApplyFaults(fs.Plan(peers))
	}

	var ratio, xdRatio, xdShare metrics.Ratio
	var commitLat metrics.Sample
	arrivalRng := newRng(cfg.Seed + 200)
	for k := 0; k < cfg.Requests; k++ {
		req := gen.Next()
		xd := spansDomains(req.FGraph.Functions(), catalog, domains)
		xdShare.Add(xd)
		at := time.Duration(arrivalRng.Float64() * float64(cfg.Window))
		c.Sim.Schedule(at-c.Sim.Now(), func() {
			// A source that crashed before its request fires cannot compose;
			// count the loss rather than run protocol code on a dead node.
			if !c.Net.Alive(req.Source) {
				ratio.Add(false)
				if xd {
					xdRatio.Add(false)
				}
				return
			}
			c.Peers[int(req.Source)].Fed.Compose(req, func(res federation.Result) {
				ratio.Add(res.Ok)
				if xd {
					xdRatio.Add(res.Ok)
				}
				if res.Ok && res.Domains > 1 {
					commitLat.AddDuration(res.CommitLatency)
				}
			})
		})
	}

	c.Sim.Run(cfg.Window + c.Fed.Cfg.Drain())

	ledger := c.Fed.TotalLedger()
	orphans := 0
	for i, p := range c.Peers {
		if !c.Net.Alive(p2p.NodeID(i)) {
			continue
		}
		if p.Ledger.HardAllocated() != (qos.Resources{}) ||
			p.Ledger.SoftAllocated() != (qos.Resources{}) ||
			p.Engine.Held() > 0 {
			orphans++
		}
	}

	return FederatePoint{
		Domains:        domains,
		Gateways:       gateways,
		Scenario:       scenario,
		XDomainShare:   xdShare.Value(),
		Success:        ratio.Value(),
		XDomainSuccess: xdRatio.Value(),
		CommitP50:      commitLat.Percentile(50),
		CommitP99:      commitLat.Percentile(99),
		Prepares:       ledger.Prepares,
		Commits:        ledger.Commits,
		Aborts:         ledger.Aborts + ledger.Expires,
		Orphans:        orphans,
	}
}

// spansDomains reports whether a function set crosses domain boundaries
// under the cluster's round-robin catalogue homing (catalog[i] lives in
// domain i mod domains) — ground truth for the cross-domain denominator,
// known at injection time.
func spansDomains(fns []string, catalog []string, domains int) bool {
	homeOf := make(map[string]int, len(catalog))
	for i, fn := range catalog {
		homeOf[fn] = i % domains
	}
	seen := -1
	for _, fn := range fns {
		d := homeOf[fn]
		if seen >= 0 && d != seen {
			return true
		}
		seen = d
	}
	return false
}
