package experiment

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Scale100kConfig parameterizes the single-machine capacity sweep: how far
// the frozen-CSR topology core and the sharded discovery plane stretch before
// memory or wall-clock becomes the binding constraint. Unlike the protocol
// figures this sweep reports real resource cost, so its wall-clock and heap
// columns are machine-dependent; the structural columns (links, simulated
// route latency, hops, lookup successes) are seed-deterministic.
type Scale100kConfig struct {
	Seed int64
	// Topo is the (IP nodes, overlay peers) grid. Every point builds the IP
	// graph with the frozen CSR representation and the overlay in compact
	// mode (no peer-pair latency matrix), then runs a route sweep.
	Topo []Scale100kTopo
	// RouteSources / RoutesPerSource size the route sweep. Each distinct
	// source pays one full Dijkstra (then caches), so RouteSources bounds the
	// route-cache footprint at large peer counts.
	RouteSources, RoutesPerSource int
	// DiscoveryPeers is the DHT population for the discovery cells.
	DiscoveryPeers int
	// Shards lists the keyspace shard counts swept by the discovery cells.
	// With the O(n·log n) sorted-ring build, shard count no longer moves
	// construction cost much; the sweep keeps it to show that per-ring state
	// shrinks by ~S while lookups for foreign keys pay only the cross-ring
	// entry hop.
	Shards []int
	// Functions / ProvidersPerFn / Lookups size the discovery workload.
	Functions, ProvidersPerFn, Lookups int
	// Trace, when non-nil, is wired through the parallel runner (the sweep
	// itself emits no protocol events; the hook exists for symmetry with the
	// other figures).
	Trace obs.Tracer
	// Parallel is the worker count for the cells; <= 1 runs them serially.
	Parallel int
}

// Scale100kTopo is one (IP nodes, overlay peers) grid point.
type Scale100kTopo struct {
	IPNodes, Peers int
}

// DefaultScale100kConfig is the headline sweep: up to 100,000 IP nodes and
// 10,000 overlay peers — 10x the paper's §6.1 dimensions — plus a 10,000-peer
// discovery plane at shard counts {1, 4, 16}.
func DefaultScale100kConfig() Scale100kConfig {
	return Scale100kConfig{
		Seed: 1,
		Topo: []Scale100kTopo{
			{IPNodes: 10000, Peers: 1000},
			{IPNodes: 30000, Peers: 3000},
			{IPNodes: 100000, Peers: 10000},
		},
		RouteSources:    64,
		RoutesPerSource: 4,
		DiscoveryPeers:  10000,
		Shards:          []int{1, 4, 16},
		Functions:       200,
		ProvidersPerFn:  3,
		Lookups:         200,
	}
}

// Scale100kTopoPoint is one topology cell's result.
type Scale100kTopoPoint struct {
	IPNodes, Peers int
	Links          int
	GenMS          float64 // wall-clock: power-law generation + CSR freeze
	OverlayMS      float64 // wall-clock: compact overlay build
	HeapMB         float64 // live-heap delta across graph + overlay build
	RouteAvgMS     float64 // simulated ms, deterministic
	RouteAvgHops   float64 // deterministic
}

// Scale100kDiscPoint is one discovery cell's result.
type Scale100kDiscPoint struct {
	Peers, Shards int
	BuildMS       float64 // wall-clock: S sorted-ring O(n·log n) builds
	RegisterMS    float64 // wall-clock: puts + simulated delivery
	LookupMS      float64 // wall-clock: gets + simulated delivery
	LookupOK      int     // deterministic
	AvgHops       float64 // deterministic
}

// Scale100kResult is the full sweep.
type Scale100kResult struct {
	Topo      []Scale100kTopoPoint
	Discovery []Scale100kDiscPoint
	TopoTable *metrics.Table
	DiscTable *metrics.Table
}

// Scale100k runs the capacity sweep: topology grid points first, then the
// sharded-discovery grid, all as independent cells under the parallel runner.
func Scale100k(cfg Scale100kConfig) Scale100kResult {
	nt := len(cfg.Topo)
	topo := make([]Scale100kTopoPoint, nt)
	disc := make([]Scale100kDiscPoint, len(cfg.Shards))
	runCells(nt+len(cfg.Shards), cfg.Parallel, cfg.Trace, func(i int, _ obs.Tracer) {
		if i < nt {
			topo[i] = scale100kTopo(cfg, cfg.Topo[i])
		} else {
			disc[i-nt] = scale100kDiscovery(cfg, cfg.Shards[i-nt])
		}
	})

	out := Scale100kResult{Topo: topo, Discovery: disc}
	tt := metrics.NewTable("Scale100k: frozen-CSR topology grid (compact overlay, no latency matrix)",
		"ip nodes", "peers", "links", "gen ms", "overlay ms", "heap MB", "route ms", "route hops")
	for _, p := range topo {
		tt.AddRow(p.IPNodes, p.Peers, p.Links, p.GenMS, p.OverlayMS, p.HeapMB, p.RouteAvgMS, p.RouteAvgHops)
	}
	out.TopoTable = tt
	dt := metrics.NewTable(fmt.Sprintf("Scale100k: sharded discovery, %d DHT peers", cfg.DiscoveryPeers),
		"shards", "build ms", "register ms", "lookup ms", "lookups ok", "avg hops")
	for _, p := range disc {
		dt.AddRow(p.Shards, p.BuildMS, p.RegisterMS, p.LookupMS, p.LookupOK, p.AvgHops)
	}
	out.DiscTable = dt
	return out
}

func liveHeapBytes() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// scale100kTopo builds one grid point and sweeps routes over it. The overlay
// is built in compact mode: the O(peers^2) latency matrix alone would cost
// ~800 MB at 10,000 peers, an order of magnitude over the whole-cell budget.
func scale100kTopo(cfg Scale100kConfig, pt Scale100kTopo) Scale100kTopoPoint {
	rng := newRng(cfg.Seed + int64(pt.IPNodes))
	heapBefore := liveHeapBytes()

	start := time.Now()
	g := topology.GeneratePowerLaw(pt.IPNodes, 2, 2, 30, rng)
	genMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	ov := topology.BuildOverlay(g, topology.OverlayConfig{
		NumPeers: pt.Peers, Degree: 4, Compact: true,
	}, rng)
	overlayMS := float64(time.Since(start).Microseconds()) / 1000
	heapMB := float64(liveHeapBytes()-heapBefore) / (1 << 20)

	var lat, hops metrics.Sample
	for s := 0; s < cfg.RouteSources; s++ {
		src := rng.Intn(pt.Peers)
		for k := 0; k < cfg.RoutesPerSource; k++ {
			dst := rng.Intn(pt.Peers)
			if path, ok := ov.Route(src, dst); ok {
				lat.Add(path.Latency)
				hops.Add(float64(len(path.Peers) - 1))
			}
		}
	}
	return Scale100kTopoPoint{
		IPNodes:      pt.IPNodes,
		Peers:        pt.Peers,
		Links:        ov.NumLinks(),
		GenMS:        genMS,
		OverlayMS:    overlayMS,
		HeapMB:       heapMB,
		RouteAvgMS:   lat.Mean(),
		RouteAvgHops: hops.Mean(),
	}
}

// scale100kDiscovery builds cfg.DiscoveryPeers DHT nodes partitioned into
// `shards` independent rings by the registry's shard plan, registers a
// function catalog with the plan's key-hash homing (local put on the home
// ring, PutVia through an entry member otherwise), then sweeps lookups from
// random peers. The success count and hop totals must not depend on the
// shard count — only the build and messaging cost do.
func scale100kDiscovery(cfg Scale100kConfig, shards int) Scale100kDiscPoint {
	netRng := newRng(cfg.Seed + 9000)
	pickRng := newRng(cfg.Seed + 9001)
	n := cfg.DiscoveryPeers

	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), netRng)
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
	}
	plan := registry.NewShardPlan(n, shards)

	start := time.Now()
	for s := 0; s < plan.NumShards; s++ {
		ring := make([]*dht.Node, len(plan.Members[s]))
		for j, id := range plan.Members[s] {
			ring[j] = nodes[int(id)]
		}
		dht.Build(ring)
	}
	buildMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	for f := 0; f < cfg.Functions; f++ {
		key := registry.FunctionKey(fmt.Sprintf("fn%d", f))
		home := plan.Home(key)
		for p := 0; p < cfg.ProvidersPerFn; p++ {
			src := pickRng.Intn(n)
			item := fmt.Sprintf("p%d/fn%d", src, f)
			if plan.ShardOfPeer(p2p.NodeID(src)) == home {
				nodes[src].Put(key, item, 96)
			} else {
				nodes[src].PutVia(plan.Entries(key)[0], key, item, 96)
			}
		}
	}
	sim.RunUntilIdle()
	registerMS := float64(time.Since(start).Microseconds()) / 1000

	okCount := 0
	var hops metrics.Sample
	start = time.Now()
	for l := 0; l < cfg.Lookups; l++ {
		key := registry.FunctionKey(fmt.Sprintf("fn%d", pickRng.Intn(cfg.Functions)))
		src := pickRng.Intn(n)
		collect := func(items []any, h int, ok bool) {
			if ok && len(items) > 0 {
				okCount++
				hops.Add(float64(h))
			}
		}
		if plan.ShardOfPeer(p2p.NodeID(src)) == plan.Home(key) {
			nodes[src].Get(key, time.Second, collect)
		} else {
			nodes[src].GetVia(plan.Entries(key), key, 0, time.Second, collect)
		}
	}
	sim.RunUntilIdle()
	lookupMS := float64(time.Since(start).Microseconds()) / 1000

	return Scale100kDiscPoint{
		Peers:      n,
		Shards:     plan.NumShards,
		BuildMS:    buildMS,
		RegisterMS: registerMS,
		LookupMS:   lookupMS,
		LookupOK:   okCount,
		AvgHops:    hops.Mean(),
	}
}
