package experiment

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/service"
)

// Fig11Config parameterizes the delay-vs-probing-budget experiment (§6.2):
// three-function requests on a deployment with one media component per peer
// (average replication ≈ peers/6 ≈ 17 for 102 peers, so the optimal
// algorithm needs ≈17³ = 4913 probes).
type Fig11Config struct {
	Seed    int64
	IPNodes int
	Peers   int
	// Budgets is the x axis (number of probes allowed per request).
	Budgets []int
	// Requests is how many compositions are averaged per budget.
	Requests int
	// Funcs is the number of functions per request (3 in the paper).
	Funcs int
	// Trace/Counters, when non-nil, are wired into every per-budget cluster.
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is the worker count for the per-budget cells; <= 1 runs them
	// serially. Results and traces are byte-identical at any worker count.
	Parallel int
}

// DefaultFig11Config mirrors the paper's prototype dimensions: 102 peers,
// six media functions, one component per peer.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		Seed:     1,
		IPNodes:  1000,
		Peers:    102,
		Budgets:  []int{10, 50, 100, 200, 300, 400, 500, 1000},
		Requests: 15,
		Funcs:    3,
	}
}

// PaperFig11Config increases the averaging to 100 requests per budget.
func PaperFig11Config() Fig11Config {
	c := DefaultFig11Config()
	c.Requests = 100
	return c
}

// Fig11Point is one budget level: the average end-to-end delay of the
// service graphs each approach discovers.
type Fig11Point struct {
	Budget    int
	Random    float64 // ms
	SpiderNet float64 // ms
	Optimal   float64 // ms
	// OptimalProbes is the exhaustive probe count (≈4913 in the paper),
	// constant across budgets; reported for the overhead comparison.
	OptimalProbes int
}

// Fig11Result is the full figure.
type Fig11Result struct {
	Points []Fig11Point
	Table  *metrics.Table
}

// Fig11 reproduces Figure 11: average service delay of the composition
// found by the random algorithm, SpiderNet under a growing probing budget,
// and the optimal (exhaustive) algorithm. All approaches minimize
// end-to-end delay, the paper's objective for this experiment.
func Fig11(cfg Fig11Config) Fig11Result {
	// One cell per probing budget; each builds its own identically seeded
	// deployment.
	points := make([]Fig11Point, len(cfg.Budgets))
	runCells(len(points), cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		points[i] = fig11Point(cfg, cfg.Budgets[i], tracer)
	})

	var out Fig11Result
	out.Points = points
	t := metrics.NewTable("Figure 11: average delay (ms) vs. probing budget — 3 functions",
		"budget", "random", "spidernet", "optimal", "optimal-probes")
	for _, p := range out.Points {
		t.AddRow(p.Budget, p.Random, p.SpiderNet, p.Optimal, p.OptimalProbes)
	}
	out.Table = t
	return out
}

func fig11Point(cfg Fig11Config, budget int, tracer obs.Tracer) Fig11Point {
	// Fresh, identically seeded deployment per budget level: one media
	// component per peer, generous capacity (the experiment studies delay,
	// not admission).
	c := cluster.New(cluster.Options{
		Seed:     cfg.Seed,
		IPNodes:  cfg.IPNodes,
		Peers:    cfg.Peers,
		Catalog:  mediaCatalog(),
		MinComps: 1,
		MaxComps: 1,
		Trace:    tracer,
		Obs:      cfg.Counters,
	})
	for _, p := range c.Peers {
		p.Engine.SelectByDelay = true
	}
	w := c.World()
	rng := newRng(cfg.Seed + 600)

	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	q := qos.Unbounded()
	q[qos.Delay] = 1e7 // effectively unconstrained: the objective is min delay

	var randomD, spiderD, optimalD metrics.Sample
	optProbes := 0
	nextID := uint64(0)
	for r := 0; r < cfg.Requests; r++ {
		fns := c.FunctionsByReplicas()
		if len(fns) < cfg.Funcs {
			break
		}
		idx := rng.Perm(len(fns))[:cfg.Funcs]
		names := make([]string, cfg.Funcs)
		for i, j := range idx {
			names[i] = fns[j]
		}
		src := p2p.NodeID(rng.Intn(cfg.Peers))
		dst := p2p.NodeID(rng.Intn(cfg.Peers))
		for dst == src {
			dst = p2p.NodeID(rng.Intn(cfg.Peers))
		}
		nextID++
		req := &service.Request{
			ID: nextID, FGraph: fgraph.Linear(names...), QoSReq: q, Res: res,
			Bandwidth: 10, Source: src, Dest: dst, Budget: budget,
		}

		// Random baseline.
		if g, ok := baselines.Random(w, req, rng.Intn); ok {
			randomD.Add(g.QoS[qos.Delay])
		}
		// Optimal baseline (exhaustive, min delay).
		opt := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinDelay)
		if opt.Best != nil {
			optimalD.Add(opt.Best.QoS[qos.Delay])
		}
		if n := baselines.OptimalProbeCount(w, req); n > optProbes {
			optProbes = n
		}
		// SpiderNet under the bounded budget; the session is torn down
		// immediately so every request sees an idle deployment.
		eng := c.Peers[int(src)].Engine
		var done bool
		eng.Compose(req, func(resu bcp.Result) {
			done = true
			if resu.Ok {
				spiderD.Add(resu.Best.QoS[qos.Delay])
				eng.Teardown(resu.Best)
			}
		})
		c.Sim.Run(c.Sim.Now() + 60*time.Second)
		_ = done
	}
	return Fig11Point{
		Budget:        budget,
		Random:        randomD.Mean(),
		SpiderNet:     spiderD.Mean(),
		Optimal:       optimalD.Mean(),
		OptimalProbes: optProbes,
	}
}

// mediaCatalog returns the six prototype media function names.
func mediaCatalog() []string {
	return []string{
		"weather-ticker", "stock-ticker", "upscale", "downscale",
		"subimage", "requant",
	}
}
