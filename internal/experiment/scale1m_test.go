package experiment

import (
	"fmt"
	"testing"
)

// scale1mQuickConfig shrinks the sweep to unit-test size while keeping the
// structural properties the full run relies on: a route cache that evicts
// (sources > K), multiple shard counts, and cross-ring homing.
func scale1mQuickConfig() Scale1mConfig {
	cfg := DefaultScale1mConfig()
	cfg.Topo = []Scale1mTopo{{IPNodes: 500, Peers: 80}}
	cfg.RouteCacheK = 4
	cfg.RouteSources = 16
	cfg.RoutesPerSource = 2
	cfg.DiscoveryPeers = 320
	cfg.Shards = []int{1, 8}
	cfg.Functions = 24
	cfg.ProvidersPerFn = 2
	cfg.Lookups = 60
	return cfg
}

// structuralString renders everything a Scale1m result reports that is not
// wall-clock or heap, for byte-exact comparison across runs and worker
// counts.
func structuralString(r Scale1mResult) string {
	s := ""
	for _, p := range r.Topo {
		s += fmt.Sprintf("topo %d/%d links=%d lat=%.9f hops=%.9f ok=%d\n",
			p.IPNodes, p.Peers, p.Links, p.RouteAvgMS, p.RouteAvgHops, p.RouteOK)
	}
	for _, p := range r.Discovery {
		s += fmt.Sprintf("disc %d/%d ok=%d hops=%.9f\n", p.Peers, p.Shards, p.LookupOK, p.AvgHops)
	}
	return s
}

// TestScale1mStructuralColumnsDeterministic pins seed-determinism of the
// structural columns across reruns and worker counts (the acceptance bar for
// the full sweep, checked here at unit-test size).
func TestScale1mStructuralColumnsDeterministic(t *testing.T) {
	cfg := scale1mQuickConfig()
	a := Scale1m(cfg)
	cfg = scale1mQuickConfig()
	cfg.Parallel = 8
	b := Scale1m(cfg)
	if structuralString(a) != structuralString(b) {
		t.Fatalf("structural columns differ between 1 and 8 workers:\n%s\nvs\n%s",
			structuralString(a), structuralString(b))
	}
	for _, p := range a.Discovery {
		if p.LookupOK != cfg.Lookups {
			t.Errorf("shards=%d resolved %d of %d lookups", p.Shards, p.LookupOK, cfg.Lookups)
		}
	}
	for _, p := range a.Topo {
		if p.Links == 0 || p.RouteOK == 0 {
			t.Errorf("topo %d/%d: links=%d routesOK=%d", p.IPNodes, p.Peers, p.Links, p.RouteOK)
		}
	}
}

// TestScale1mSliceBudget is the CI capacity gate: the slice cell (100k IP
// nodes / 10k peers topology, 10k-peer discovery plane) must finish under
// generous wall-clock ceilings and a live-heap budget, with every lookup
// resolving. A wall-clock blowout here means superlinear construction crept
// back in (the precise 50× bound is TestBuildSpeedup's job); a heap blowout
// means a dense structure returned — the per-peer latency matrix, eager
// routing tables, or an unbounded route cache.
func TestScale1mSliceBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity slice")
	}
	cfg := Scale1mSliceConfig()
	res := Scale1m(cfg)

	tp := res.Topo[0]
	if tp.GenMS+tp.OverlayMS > 120_000 {
		t.Errorf("topology build took %.0f ms, ceiling 120000", tp.GenMS+tp.OverlayMS)
	}
	if tp.HeapMB > 64 {
		t.Errorf("topology cell live heap %.1f MB, budget 64", tp.HeapMB)
	}
	if tp.RouteOK == 0 {
		t.Error("route sweep resolved no routes")
	}

	dp := res.Discovery[0]
	if dp.BuildMS > 60_000 {
		t.Errorf("ring build took %.0f ms, ceiling 60000", dp.BuildMS)
	}
	if dp.HeapMB > 192 {
		t.Errorf("discovery cell live heap %.1f MB, budget 192", dp.HeapMB)
	}
	if dp.LookupOK != cfg.Lookups {
		t.Errorf("resolved %d of %d lookups", dp.LookupOK, cfg.Lookups)
	}
}

// TestScale1mSliceDeterministic reruns the slice and requires byte-identical
// structural columns — the rerun half of the CI gate.
func TestScale1mSliceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity slice")
	}
	a := Scale1m(Scale1mSliceConfig())
	cfg := Scale1mSliceConfig()
	cfg.Parallel = 8
	b := Scale1m(cfg)
	if structuralString(a) != structuralString(b) {
		t.Fatalf("slice not deterministic across reruns/worker counts:\n%s\nvs\n%s",
			structuralString(a), structuralString(b))
	}
}
