package experiment

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// scaleTestConfig is DefaultScaleConfig shrunk just enough to keep the test
// quick while preserving the processing-load regime the sweep targets.
func scaleTestConfig() ScaleConfig {
	cfg := DefaultScaleConfig()
	cfg.Loads = []int{4, 24}
	return cfg
}

// TestScaleLoadAwareWinsUnderHeavyTraffic pins the experiment's headline
// claim: at the highest offered load, the load-aware variant achieves a
// strictly lower per-peer peak utilization (the hotspot), a strictly lower
// p99 setup latency, and no worse success ratio than the load-blind one.
func TestScaleLoadAwareWinsUnderHeavyTraffic(t *testing.T) {
	res := Scale(scaleTestConfig())
	var blind, aware *ScalePoint
	top := 0
	for _, p := range res.Points {
		if p.Load > top {
			top = p.Load
		}
	}
	for i := range res.Points {
		p := &res.Points[i]
		if p.Load != top {
			continue
		}
		if p.Aware {
			aware = p
		} else {
			blind = p
		}
	}
	if blind == nil || aware == nil {
		t.Fatalf("missing variants at top load %d: %+v", top, res.Points)
	}
	t.Logf("top load %d: blind=%+v aware=%+v", top, *blind, *aware)
	if aware.UtilMax >= blind.UtilMax {
		t.Errorf("aware util max %.3f, want < blind %.3f", aware.UtilMax, blind.UtilMax)
	}
	if aware.SetupP99 >= blind.SetupP99 {
		t.Errorf("aware setup p99 %.3f ms, want < blind %.3f ms", aware.SetupP99, blind.SetupP99)
	}
	if aware.Success < blind.Success {
		t.Errorf("aware success %.3f, want >= blind %.3f", aware.Success, blind.Success)
	}
}

// TestScaleShedsOnlyWhenAware checks the control plane stays opt-in: the
// blind cells run the same delay model yet never shed a probe.
func TestScaleShedsOnlyWhenAware(t *testing.T) {
	cfg := scaleTestConfig()
	cfg.Counters = obs.NewRegistry()
	res := Scale(cfg)
	tot := cfg.Counters.Totals()
	if tot.ProbesShed == 0 {
		t.Errorf("no probes shed across the sweep; shedding plane inert (points %+v)", res.Points)
	}

	blindOnly := scaleTestConfig()
	blindOnly.Shed = 0
	blindOnly.Counters = obs.NewRegistry()
	Scale(blindOnly)
	if n := blindOnly.Counters.Totals().ProbesShed; n != 0 {
		t.Errorf("shed threshold 0 still shed %d probes", n)
	}
}

// TestScaleDeterministicAcrossWorkers runs the identical sweep serially and
// with several workers: points, rendered table, and the emitted trace must
// be byte-identical.
func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	cfg := scaleTestConfig()
	run := func(parallel int) (ScaleResult, []obs.Event) {
		c := cfg
		c.Parallel = parallel
		sink := &obs.MemSink{}
		c.Trace = sink
		return Scale(c), sink.Events()
	}
	serial, serialEv := run(1)
	for _, workers := range []int{2, 4} {
		par, parEv := run(workers)
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Errorf("parallel=%d points differ:\nserial %+v\npar    %+v", workers, serial.Points, par.Points)
		}
		if serial.Table.String() != par.Table.String() {
			t.Errorf("parallel=%d table differs:\n%s\nvs\n%s", workers, serial.Table, par.Table)
		}
		if !reflect.DeepEqual(serialEv, parEv) {
			t.Errorf("parallel=%d trace differs: %d vs %d events", workers, len(serialEv), len(parEv))
		}
	}
}
