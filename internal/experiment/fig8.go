// Package experiment reproduces every figure of the paper's evaluation
// (§6): Figure 8 (success ratio vs. workload), Figure 9 (failure frequency
// under churn), Figure 10 (wide-area session setup time), Figure 11 (service
// delay vs. probing budget), and the centralized-vs-BCP overhead comparison.
// Each Fig* function returns structured points plus a rendered table whose
// rows mirror the series the paper plots. Default configurations are scaled
// to run on a laptop in seconds; the Paper* variants use the paper's own
// dimensions (10,000-node IP network, 1,000 peers, 200 functions, ...).
package experiment

import (
	"time"

	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/workload"
)

// Fig8Config parameterizes the success-ratio-vs-workload experiment.
type Fig8Config struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Workloads lists the requests-per-time-unit levels (the x axis).
	Workloads []int
	// TimeUnits is the number of workload time units simulated per level.
	TimeUnits int
	// TimeUnit is the simulated duration of one workload time unit.
	TimeUnit time.Duration
	// SessionLife is how long an admitted session holds its resources.
	SessionLife time.Duration
	// MinFuncs/MaxFuncs bound the function count per request.
	MinFuncs, MaxFuncs int
	// Capacity is the per-peer resource capacity (tightened vs. the cluster
	// default so contention actually materializes at high workload).
	Capacity qos.Resources
	// DelayReq bounds the sampled end-to-end delay requirement (ms).
	DelayReqMin, DelayReqMax float64
	// Trace/Counters, when non-nil, are wired into every cluster this
	// experiment builds (all algorithms and workload levels share them).
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is the worker count for the (workload, algorithm) cells;
	// <= 1 runs them serially. Results and traces are byte-identical at any
	// worker count.
	Parallel int
}

// DefaultFig8Config returns the laptop-scale configuration.
func DefaultFig8Config() Fig8Config {
	var cap qos.Resources
	cap[qos.CPU] = 8
	cap[qos.Memory] = 80
	return Fig8Config{
		Seed:        1,
		IPNodes:     1200,
		Peers:       120,
		Functions:   30,
		Workloads:   []int{2, 4, 6, 8, 10},
		TimeUnits:   20,
		TimeUnit:    time.Second,
		SessionLife: 15 * time.Second,
		MinFuncs:    2,
		MaxFuncs:    3,
		Capacity:    cap,
		DelayReqMin: 150,
		DelayReqMax: 400,
	}
}

// PaperFig8Config returns the paper's dimensions (§6.1): a 10,000-node IP
// network, 1,000 peers, 200 functions, workloads 50–250 requests per time
// unit. Expect a long run.
func PaperFig8Config() Fig8Config {
	c := DefaultFig8Config()
	c.IPNodes = 10000
	c.Peers = 1000
	c.Functions = 200
	c.Workloads = []int{50, 100, 150, 200, 250}
	c.TimeUnits = 50 // the paper runs 2000 time units; the ratio is what matters
	return c
}

// Fig8Point is one x-position of Figure 8: the success ratio each algorithm
// achieved at one workload level.
type Fig8Point struct {
	Workload  int
	Optimal   float64
	Probing20 float64 // BCP with 20% of the optimal probe count
	Probing10 float64 // BCP with 10% of the optimal probe count
	Random    float64
	Static    float64
}

// Fig8Result is the full figure.
type Fig8Result struct {
	Points []Fig8Point
	Table  *metrics.Table
}

// algorithms simulated by Fig8.
const (
	algOptimal = iota
	algProbing20
	algProbing10
	algRandom
	algStatic
	numAlgs
)

// Fig8 reproduces Figure 8: composition success ratio under increasing
// workload for the optimal (unbounded flooding), probing-0.2, probing-0.1,
// random, and static algorithms. Each algorithm replays the identical
// request schedule on a fresh identically seeded cluster.
func Fig8(cfg Fig8Config) Fig8Result {
	// One cell per (workload, algorithm) pair; each builds its own cluster
	// from the same seed, so cells are independent and order-free.
	ratios := make([]float64, len(cfg.Workloads)*numAlgs)
	runCells(len(ratios), cfg.Parallel, cfg.Trace, func(i int, tracer obs.Tracer) {
		ratios[i] = fig8Run(cfg, cfg.Workloads[i/numAlgs], i%numAlgs, tracer)
	})

	var out Fig8Result
	for wi, w := range cfg.Workloads {
		var p Fig8Point
		p.Workload = w
		for alg := 0; alg < numAlgs; alg++ {
			ratio := ratios[wi*numAlgs+alg]
			switch alg {
			case algOptimal:
				p.Optimal = ratio
			case algProbing20:
				p.Probing20 = ratio
			case algProbing10:
				p.Probing10 = ratio
			case algRandom:
				p.Random = ratio
			case algStatic:
				p.Static = ratio
			}
		}
		out.Points = append(out.Points, p)
	}
	t := metrics.NewTable("Figure 8: QoS success ratio vs. workload (requests/time unit)",
		"workload", "optimal", "probing-0.2", "probing-0.1", "random", "static")
	for _, p := range out.Points {
		t.AddRow(p.Workload, p.Optimal, p.Probing20, p.Probing10, p.Random, p.Static)
	}
	out.Table = t
	return out
}

// fig8Run replays one workload level through one algorithm and returns its
// success ratio. tracer is the cell's trace destination (a private buffer
// under the parallel runner, the shared sink when serial, nil when off).
func fig8Run(cfg Fig8Config, perUnit int, alg int, tracer obs.Tracer) float64 {
	bcpCfg := bcp.DefaultConfig()
	// Soft reservations need to outlive probe collection plus the reverse
	// ACK, but nothing more: longer holds make concurrent requests starve
	// each other at high workload.
	bcpCfg.SoftTimeout = 2500 * time.Millisecond
	c := cluster.New(cluster.Options{
		Seed:     cfg.Seed,
		IPNodes:  cfg.IPNodes,
		Peers:    cfg.Peers,
		Catalog:  fnCatalog(cfg.Functions),
		Capacity: cfg.Capacity,
		BCP:      bcpCfg,
		Trace:    tracer,
		Obs:      cfg.Counters,
	})
	w := c.World()
	gen := workload.NewGenerator(workload.Config{
		Catalog:     fnCatalog(cfg.Functions),
		Peers:       cfg.Peers,
		MinFuncs:    cfg.MinFuncs,
		MaxFuncs:    cfg.MaxFuncs,
		DelayReqMin: cfg.DelayReqMin,
		DelayReqMax: cfg.DelayReqMax,
	}, newRng(cfg.Seed+100))

	var ratio metrics.Ratio
	arrivalRng := newRng(cfg.Seed + 200)
	for unit := 0; unit < cfg.TimeUnits; unit++ {
		for k := 0; k < perUnit; k++ {
			req := gen.Next()
			at := time.Duration(unit)*cfg.TimeUnit +
				time.Duration(arrivalRng.Float64()*float64(cfg.TimeUnit))
			c.Sim.Schedule(at-c.Sim.Now(), func() {
				fig8Request(cfg, c, w, req, alg, &ratio)
			})
		}
	}
	// Drain: run past the last arrival plus composition and session time.
	c.Sim.Run(time.Duration(cfg.TimeUnits)*cfg.TimeUnit + cfg.SessionLife + 30*time.Second)
	return ratio.Value()
}

func fig8Request(cfg Fig8Config, c *cluster.Cluster, w baselines.World, req *service.Request, alg int, ratio *metrics.Ratio) {
	switch alg {
	case algOptimal, algRandom, algStatic:
		var g *service.Graph
		var ok bool
		switch alg {
		case algOptimal:
			res := baselines.Optimal(w, req, service.DefaultWeights(), baselines.MinCost)
			g, ok = res.Best, res.Best != nil
		case algRandom:
			g, ok = baselines.Random(w, req, c.Rng.Intn)
		case algStatic:
			g, ok = baselines.Static(w, req)
		}
		success := ok && g.Qualified(req) && baselines.Admit(w, g)
		ratio.Add(success)
		if success {
			c.Sim.Schedule(cfg.SessionLife, func() { baselines.Release(w, g) })
		}
	case algProbing20, algProbing10:
		frac := 0.2
		if alg == algProbing10 {
			frac = 0.1
		}
		budget := int(frac * float64(baselines.OptimalProbeCount(w, req)))
		if budget < 1 {
			budget = 1
		}
		req.Budget = budget
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			ratio.Add(res.Ok)
			if res.Ok {
				c.Sim.Schedule(cfg.SessionLife, func() { eng.Teardown(res.Best) })
			}
		})
	}
}

// fnCatalog names n synthetic functions fn0..fn{n-1}.
func fnCatalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}

// newRng returns a seeded random stream independent of the cluster's.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
