package experiment

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/workload"
)

// OverheadConfig parameterizes the BCP-vs-centralized overhead comparison
// behind the paper's claim that SpiderNet needs "more than one order of
// magnitude less overhead" than a global-view scheme (§6.1).
type OverheadConfig struct {
	Seed      int64
	IPNodes   int
	Peers     int
	Functions int
	// Requests is the composition workload over the measurement window.
	Requests int
	// Window is the measurement duration.
	Window time.Duration
	// UpdatePeriod is how often every peer refreshes its state at the
	// centralized coordinator (global views go stale quickly in a dynamic
	// P2P network, so short periods are required for comparable accuracy).
	UpdatePeriod time.Duration
	// Budget is BCP's probing budget per request.
	Budget int
	// Trace/Counters, when non-nil, are wired into the measured cluster.
	Trace    obs.Tracer
	Counters *obs.Registry
	// Parallel is accepted for interface uniformity with the other
	// experiments; the overhead comparison is a single cell, so it never
	// spawns workers.
	Parallel int
}

// DefaultOverheadConfig returns the laptop-scale configuration.
func DefaultOverheadConfig() OverheadConfig {
	return OverheadConfig{
		Seed:         1,
		IPNodes:      1200,
		Peers:        120,
		Functions:    30,
		Requests:     60,
		Window:       2 * time.Minute,
		UpdatePeriod: 10 * time.Second,
		Budget:       20,
	}
}

// PaperOverheadConfig uses the paper's network dimensions.
func PaperOverheadConfig() OverheadConfig {
	c := DefaultOverheadConfig()
	c.IPNodes = 10000
	c.Peers = 1000
	c.Functions = 200
	c.Requests = 200
	return c
}

// OverheadResult compares message overheads.
type OverheadResult struct {
	// SpiderNetMessages counts every control message BCP-based composition
	// sent during the window (probes, discovery lookups, ACKs, results).
	SpiderNetMessages int64
	// CentralizedMessages counts the global-view scheme's cost over the
	// same window: periodic state updates from every peer plus one
	// request/response pair per composition.
	CentralizedMessages int64
	Ratio               float64
	Table               *metrics.Table
}

// Overhead measures SpiderNet's total control-message count for a
// composition workload and compares it against the centralized scheme's
// periodic global state maintenance over the same window.
func Overhead(cfg OverheadConfig) OverheadResult {
	c := cluster.New(cluster.Options{
		Seed:    cfg.Seed,
		IPNodes: cfg.IPNodes,
		Peers:   cfg.Peers,
		Catalog: fnCatalog(cfg.Functions),
		Trace:   cfg.Trace,
		Obs:     cfg.Counters,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog:     fnCatalog(cfg.Functions),
		Peers:       cfg.Peers,
		MinFuncs:    2,
		MaxFuncs:    3,
		Budget:      cfg.Budget,
		DelayReqMin: 2000,
		DelayReqMax: 5000,
	}, newRng(cfg.Seed+700))

	arrivalRng := newRng(cfg.Seed + 800)
	for i := 0; i < cfg.Requests; i++ {
		req := gen.Next()
		at := time.Duration(arrivalRng.Float64() * float64(cfg.Window))
		c.Sim.Schedule(at, func() {
			eng := c.Peers[int(req.Source)].Engine
			eng.Compose(req, func(res bcp.Result) {
				if res.Ok {
					// Long-lived sessions: hold through the window.
					c.Sim.Schedule(cfg.Window, func() { eng.Teardown(res.Best) })
				}
			})
		})
	}
	c.Sim.Run(cfg.Window + 30*time.Second)

	spider := c.Net.Stats().MessagesSent
	periods := int64(cfg.Window / cfg.UpdatePeriod)
	central := periods*int64(baselines.CentralizedOverheadPerPeriod(cfg.Peers)) +
		2*int64(cfg.Requests)

	ratio := 0.0
	if spider > 0 {
		ratio = float64(central) / float64(spider)
	}
	t := metrics.NewTable("Overhead: centralized global-view maintenance vs. BCP probing",
		"scheme", "messages", "requests", "window")
	t.AddRow("spidernet (BCP)", spider, cfg.Requests, cfg.Window)
	t.AddRow("centralized", central, cfg.Requests, cfg.Window)
	t.AddRow("ratio (centralized/spidernet)", ratio, "", "")
	return OverheadResult{
		SpiderNetMessages:   spider,
		CentralizedMessages: central,
		Ratio:               ratio,
		Table:               t,
	}
}
