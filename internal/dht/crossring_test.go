package dht

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

// twoRings builds two independent DHT rings sharing one transport network:
// nodes 0..na-1 form ring A, nodes na..na+nb-1 form ring B. Neither ring's
// tables reference the other, which is exactly the sharded-keyspace shape.
func twoRings(t *testing.T, na, nb int) (*simnet.Network, []*Node, []*Node) {
	t.Helper()
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), rand.New(rand.NewSource(1)))
	mk := func(lo, n int) []*Node {
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			host := nw.AddNode(p2p.NodeID(lo + i))
			nodes[i] = New(host, nw.Alive)
		}
		Build(nodes)
		return nodes
	}
	a := mk(0, na)
	b := mk(na, nb)
	return nw, a, b
}

// TestPutViaGetViaCrossRing stores from a ring-A node into ring B through an
// entry member and reads it back the same way: the item must land on ring B's
// root for the key and the response must return directly to the requester.
func TestPutViaGetViaCrossRing(t *testing.T) {
	nw, a, b := twoRings(t, 30, 40)
	key := Key("fn:transcode")
	entry := b[7].Addr()

	a[3].PutVia(entry, key, "meta", 96)
	nw.Sim().RunUntilIdle()

	// The item lives somewhere in ring B, nowhere in ring A.
	inA, inB := 0, 0
	for _, n := range a {
		inA += n.StoredUnder(key)
	}
	for _, n := range b {
		inB += n.StoredUnder(key)
	}
	if inA != 0 {
		t.Fatalf("cross-ring put leaked %d copies into the origin ring", inA)
	}
	if inB == 0 {
		t.Fatal("cross-ring put never reached the home ring")
	}

	var got []any
	ok := false
	a[11].GetVia([]p2p.NodeID{entry}, key, 0, time.Second, func(items []any, _ int, o bool) {
		got, ok = items, o
	})
	nw.Sim().RunUntilIdle()
	if !ok || len(got) != 1 || got[0] != "meta" {
		t.Fatalf("cross-ring get: ok=%v items=%v", ok, got)
	}
}

// TestGetViaRetriesAlternateEntry kills the primary entry member after the
// put: the first attempt is swallowed, and the timeout retry must enter the
// home ring through the alternate entry instead of rerouting locally (which
// would deliver at a wrong-ring root and fabricate an empty result).
func TestGetViaRetriesAlternateEntry(t *testing.T) {
	nw, a, b := twoRings(t, 20, 30)
	key := Key("fn:filter")
	primary, alt := b[2].Addr(), b[17].Addr()

	a[0].PutVia(alt, key, "meta", 96)
	nw.Sim().RunUntilIdle()

	nw.Fail(primary)
	var got []any
	done, ok := false, false
	a[5].GetVia([]p2p.NodeID{primary, alt}, key, 0, 200*time.Millisecond, func(items []any, _ int, o bool) {
		got, ok, done = items, o, true
	})
	nw.Sim().RunUntilIdle()
	if !done {
		t.Fatal("callback never fired")
	}
	if !ok || len(got) != 1 {
		t.Fatalf("retry through alternate entry failed: ok=%v items=%v", ok, got)
	}
}

// TestGetViaSelfEntryDegradesToLocalRouting: when the entry is the caller
// itself (the key is homed on the caller's own ring), GetVia must behave
// exactly like an in-ring lookup.
func TestGetViaSelfEntryDegradesToLocalRouting(t *testing.T) {
	nw, a, _ := twoRings(t, 25, 5)
	key := Key("fn:encode")
	a[8].Put(key, "meta", 96)
	nw.Sim().RunUntilIdle()

	ok := false
	var got []any
	a[8].GetVia([]p2p.NodeID{a[8].Addr()}, key, 0, time.Second, func(items []any, _ int, o bool) {
		got, ok = items, o
	})
	nw.Sim().RunUntilIdle()
	if !ok || len(got) != 1 {
		t.Fatalf("self-entry GetVia: ok=%v items=%v", ok, got)
	}
}
