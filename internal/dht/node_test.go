package dht

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

// ring builds n DHT nodes over a simulated network with static tables.
func ring(t *testing.T, n int) (*simnet.Network, []*Node) {
	t.Helper()
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), rand.New(rand.NewSource(1)))
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		host := nw.AddNode(p2p.NodeID(i))
		nodes[i] = New(host, nw.Alive)
	}
	Build(nodes)
	return nw, nodes
}

func TestPutGetRoundTrip(t *testing.T) {
	nw, nodes := ring(t, 50)
	key := Key("transcode")
	nodes[3].Put(key, "component-meta", 128)
	nw.Sim().RunUntilIdle()

	var got []any
	ok := false
	nodes[42].Get(key, time.Second, func(items []any, hops int, o bool) {
		got, ok = items, o
	})
	nw.Sim().RunUntilIdle()
	if !ok {
		t.Fatal("get failed")
	}
	if len(got) != 1 || got[0] != "component-meta" {
		t.Fatalf("got=%v", got)
	}
}

func TestAllNodesAgreeOnRoot(t *testing.T) {
	nw, nodes := ring(t, 80)
	key := Key("some-function")
	// Puts from several nodes must all land on the same root, so a get
	// sees every item.
	for i := 0; i < 5; i++ {
		nodes[i*7].Put(key, i, 64)
	}
	nw.Sim().RunUntilIdle()
	var got []any
	nodes[79].Get(key, time.Second, func(items []any, _ int, ok bool) {
		if ok {
			got = items
		}
	})
	nw.Sim().RunUntilIdle()
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5 (puts landed on different roots)", len(got))
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	nw, nodes := ring(t, 200)
	totalHops, count := 0, 0
	for i := 0; i < 30; i++ {
		key := Key(string(rune('a' + i)))
		nodes[0].Put(key, i, 64)
	}
	nw.Sim().RunUntilIdle()
	for i := 0; i < 30; i++ {
		key := Key(string(rune('a' + i)))
		nodes[(i*13)%200].Get(key, time.Second, func(_ []any, hops int, ok bool) {
			if ok {
				totalHops += hops
				count++
			}
		})
	}
	nw.Sim().RunUntilIdle()
	if count != 30 {
		t.Fatalf("only %d/30 lookups succeeded", count)
	}
	avg := float64(totalHops) / float64(count)
	// log16(200) ≈ 1.9; allow generous slack but reject linear scans.
	if avg > 6 {
		t.Fatalf("average hops %.1f too high for prefix routing", avg)
	}
}

func TestGetMissingKeyReturnsEmpty(t *testing.T) {
	nw, nodes := ring(t, 30)
	called := false
	nodes[0].Get(Key("nothing-here"), time.Second, func(items []any, _ int, ok bool) {
		called = true
		if !ok {
			t.Error("lookup of missing key should succeed with empty result")
		}
		if len(items) != 0 {
			t.Errorf("items=%v", items)
		}
	})
	nw.Sim().RunUntilIdle()
	if !called {
		t.Fatal("callback never fired")
	}
}

func TestReplicationSurvivesRootFailure(t *testing.T) {
	nw, nodes := ring(t, 60)
	key := Key("resilient-fn")
	nodes[0].Put(key, "meta", 64)
	nw.Sim().RunUntilIdle()

	// Find and kill the root (the node holding the primary copy plus the
	// closest ID).
	root := -1
	for i, n := range nodes {
		if n.StoredUnder(key) > 0 && (root == -1 || Closer(key, n.Self(), nodes[root].Self())) {
			root = i
		}
	}
	if root == -1 {
		t.Fatal("no node stored the item")
	}
	nw.Fail(p2p.NodeID(root))

	got := false
	var items []any
	nodes[(root+1)%60].Get(key, time.Second, func(it []any, _ int, ok bool) {
		got, items = ok, it
	})
	nw.Sim().RunUntilIdle()
	if !got {
		t.Fatal("lookup failed after root death")
	}
	if len(items) != 1 || items[0] != "meta" {
		t.Fatalf("replica lookup items=%v", items)
	}
}

func TestGetTimeoutWhenIsolated(t *testing.T) {
	nw, nodes := ring(t, 20)
	key := Key("fn")
	nodes[5].Put(key, "x", 64)
	nw.Sim().RunUntilIdle()
	// Kill everyone except node 0 — no root or replica remains reachable,
	// and the liveness oracle steers routing to deliver locally, where the
	// item is absent... unless node 0 happens to hold a replica. Force the
	// stronger case: requester also drops all state by querying a fresh key
	// whose root is dead.
	for i := 1; i < 20; i++ {
		nw.Fail(p2p.NodeID(i))
	}
	done := false
	nodes[0].Get(key, 50*time.Millisecond, func(items []any, _ int, ok bool) {
		done = true
		// Either it resolves locally with no items (ok, empty) or times
		// out; both mean "not found" to the registry layer.
		if ok && len(items) > 0 && nodes[0].StoredUnder(key) == 0 {
			t.Error("impossible: items returned with no live replica")
		}
	})
	nw.Sim().RunUntilIdle()
	if !done {
		t.Fatal("callback never fired")
	}
}

func TestDynamicJoin(t *testing.T) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), rand.New(rand.NewSource(2)))
	var nodes []*Node
	for i := 0; i < 10; i++ {
		nodes = append(nodes, New(nw.AddNode(p2p.NodeID(i)), nw.Alive))
	}
	Build(nodes)

	// A new node joins through node 0.
	joiner := New(nw.AddNode(p2p.NodeID(10)), nw.Alive)
	joiner.Join(0)
	nw.Sim().RunUntilIdle()

	if joiner.NumLeaves() == 0 {
		t.Fatal("joiner learned no neighbors")
	}
	// The joiner can store and the ring can read it back, and vice versa.
	key := Key("joined-fn")
	joiner.Put(key, "late", 64)
	nw.Sim().RunUntilIdle()
	ok := false
	nodes[7].Get(key, time.Second, func(items []any, _ int, o bool) {
		ok = o && len(items) == 1 && items[0] == "late"
	})
	nw.Sim().RunUntilIdle()
	if !ok {
		t.Fatal("ring could not read item stored by joiner")
	}
}

func TestJoinersAreRoutableAsRoots(t *testing.T) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(time.Millisecond), rand.New(rand.NewSource(3)))
	seed := New(nw.AddNode(0), nw.Alive)
	nodes := []*Node{seed}
	// Grow the ring one join at a time.
	for i := 1; i < 25; i++ {
		n := New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
		n.Join(p2p.NodeID((i - 1) / 2))
		nw.Sim().RunUntilIdle()
		nodes = append(nodes, n)
	}
	// Every node can resolve keys stored by every other node.
	fails := 0
	for i := 0; i < 10; i++ {
		key := Key(string(rune('A' + i)))
		nodes[i].Put(key, i, 32)
		nw.Sim().RunUntilIdle()
		ok := false
		nodes[24-i].Get(key, time.Second, func(items []any, _ int, o bool) {
			ok = o && len(items) >= 1
		})
		nw.Sim().RunUntilIdle()
		if !ok {
			fails++
		}
	}
	if fails > 0 {
		t.Fatalf("%d/10 lookups failed in incrementally joined ring", fails)
	}
}

func TestOverheadAccounted(t *testing.T) {
	nw, nodes := ring(t, 40)
	nw.ResetStats()
	nodes[0].Put(Key("fn"), "x", 64)
	nw.Sim().RunUntilIdle()
	st := nw.Stats()
	if st.MessagesSent == 0 || st.BytesSent == 0 {
		t.Fatalf("no overhead recorded: %+v", st)
	}
	if st.ByType[MsgReplica] == 0 {
		t.Fatal("replication messages missing")
	}
}

func TestLeafSetBounded(t *testing.T) {
	_, nodes := ring(t, 100)
	for i, n := range nodes {
		if n.NumLeaves() > LeafSize {
			t.Fatalf("node %d leaf set %d exceeds %d", i, n.NumLeaves(), LeafSize)
		}
		if n.NumLeaves() == 0 {
			t.Fatalf("node %d has empty leaf set", i)
		}
	}
}

func TestRoutingDeterministic(t *testing.T) {
	run := func() int {
		nw, nodes := ring(t, 64)
		hops := -1
		nodes[10].Put(Key("det"), "x", 64)
		nw.Sim().RunUntilIdle()
		nodes[20].Get(Key("det"), time.Second, func(_ []any, h int, ok bool) {
			if ok {
				hops = h
			}
		})
		nw.Sim().RunUntilIdle()
		return hops
	}
	h1, h2 := run(), run()
	if h1 == -1 || h1 != h2 {
		t.Fatalf("routing not deterministic: %d vs %d", h1, h2)
	}
}

func TestDistanceMonotonicRouting(t *testing.T) {
	// The next hop chosen by any node is strictly closer to the key,
	// guaranteeing termination.
	_, nodes := ring(t, 120)
	key := Key("monotone")
	for _, n := range nodes {
		next := n.nextHop(key)
		if next.Addr == p2p.NoNode {
			continue
		}
		selfP := n.Self().CommonPrefix(key)
		nextP := next.ID.CommonPrefix(key)
		longer := nextP > selfP
		sameButCloser := nextP >= selfP && Closer(key, next.ID, n.Self())
		if !longer && !sameButCloser {
			t.Fatalf("node %v forwarded without routing progress", n.Addr())
		}
	}
	// Exactly one node considers itself root.
	roots := 0
	for _, n := range nodes {
		if n.nextHop(key).Addr == p2p.NoNode {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots for one key, want 1", roots)
	}
}

func TestMathSanity(t *testing.T) {
	// Guard against accidental floating-point use in ID space: distances
	// must be exact.
	a, b := Key("p"), Key("q")
	if math.MaxInt8 < 0 { // keep math import honest
		t.Skip()
	}
	if Dist(a, b) != Dist(b, a) {
		t.Fatal("distance asymmetric")
	}
}
