// Package dht implements the Pastry-style distributed hash table SpiderNet's
// decentralized service discovery is built on (§3 of the paper): a 128-bit
// circular identifier space, hex-digit prefix routing tables, and leaf sets.
// Routing, storage, and joins are message-driven over the p2p transport, so
// every lookup pays realistic per-hop latencies in both runtimes.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/p2p"
)

// IDBytes is the identifier width in bytes (128 bits, as in Pastry).
const IDBytes = 16

// NumDigits is the identifier width in base-16 digits.
const NumDigits = IDBytes * 2

// ID is a 128-bit identifier in the circular Pastry key space,
// big-endian.
type ID [IDBytes]byte

// Key hashes an arbitrary string (e.g. a service function name) into the
// identifier space with SHA-1 truncated to 128 bits, the scheme Pastry's
// applications used.
func Key(s string) ID {
	sum := sha1.Sum([]byte(s))
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// FromNode derives a peer's DHT identifier from its transport ID.
func FromNode(n p2p.NodeID) ID {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(int64(n)))
	return Key("node:" + hex.EncodeToString(buf[:]))
}

// Digit returns the i'th base-16 digit of the identifier, most significant
// first.
func (id ID) Digit(i int) int {
	b := id[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// CommonPrefix returns the number of leading base-16 digits id shares
// with o.
func (id ID) CommonPrefix(o ID) int {
	for i := 0; i < NumDigits; i++ {
		if id.Digit(i) != o.Digit(i) {
			return i
		}
	}
	return NumDigits
}

// Cmp compares identifiers as big-endian unsigned integers, returning
// -1, 0, or 1.
func (id ID) Cmp(o ID) int {
	for i := 0; i < IDBytes; i++ {
		switch {
		case id[i] < o[i]:
			return -1
		case id[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Less reports id < o as unsigned integers.
func (id ID) Less(o ID) bool { return id.Cmp(o) < 0 }

// sub returns id - o modulo 2^128.
func sub(a, b ID) ID {
	var r ID
	var borrow uint16
	for i := IDBytes - 1; i >= 0; i-- {
		d := uint16(a[i]) - uint16(b[i]) - borrow
		r[i] = byte(d)
		borrow = (d >> 15) & 1
	}
	return r
}

// Dist returns the circular distance min(a-b, b-a) mod 2^128.
func Dist(a, b ID) ID {
	d1 := sub(a, b)
	d2 := sub(b, a)
	if d1.Less(d2) {
		return d1
	}
	return d2
}

// Closer reports whether a is strictly closer to key than b in circular
// distance, breaking ties toward the numerically smaller identifier so the
// "numerically closest node" is unique.
func Closer(key, a, b ID) bool {
	da, db := Dist(a, key), Dist(b, key)
	if c := da.Cmp(db); c != 0 {
		return c < 0
	}
	return a.Less(b)
}

// String renders the identifier as 32 hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short renders the first 8 hex digits, for logs.
func (id ID) Short() string { return fmt.Sprintf("%x", id[:4]) }
