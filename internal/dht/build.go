package dht

import (
	"sort"

	"repro/internal/p2p"
)

// Build wires a set of freshly created nodes into a consistent ring from
// global knowledge, the static construction experiments use instead of serial
// joins. It produces bit-identical leaf sets and routing tables to the legacy
// all-pairs construction (kept as BuildLegacy for the differential harness)
// in O(n·log n) instead of O(n²):
//
//   - Entries are sorted once by identifier. Because circular distance is
//     monotone along each direction of the sorted ring, a node's LeafSize
//     closest neighbors are always among its LeafSize predecessors and
//     LeafSize successors in sorted order, so each leaf set is selected from
//     a 2·LeafSize window instead of all n entries.
//   - Routing-table rows are filled by recursively partitioning the sorted
//     entries into per-prefix digit buckets. Two nodes share exactly the
//     prefix at which their buckets diverge, and the legacy builder's
//     first-write-wins AddEntry semantics reduce to "the entry with the
//     smallest nodes-slice index in each sibling bucket", which one scan per
//     bucket computes for all of the bucket's nodes at once.
//
// Build assumes the nodes are fresh (no prior entries) and all alive, which
// is how every call site uses it: static construction happens before any
// traffic or failure injection. Dynamic membership still goes through
// Join/AddEntry.
func Build(nodes []*Node) {
	n := len(nodes)
	if n < 2 {
		return
	}
	entries := make([]Entry, n)
	for i, nd := range nodes {
		entries[i] = nd.self
	}
	// Sort positions by identifier; ties (duplicate IDs) keep nodes-slice
	// order so the construction below reproduces the legacy insertion order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if c := entries[ia].ID.Cmp(entries[ib].ID); c != 0 {
			return c < 0
		}
		return ia < ib
	})
	pos := make([]int32, n) // pos[i] = sorted position of nodes[i]
	for p, i := range order {
		pos[i] = int32(p)
	}
	buildLeaves(nodes, entries, order, pos)
	fillTables(nodes, entries, order, 0, n, 0)
}

// BuildLegacy is the original O(n²) all-pairs construction: every node learns
// every other node's entry through AddEntry, which keeps only the relevant
// leaf and table slots. It is retained as the reference implementation for
// the differential tests and benchmarks that certify Build's equivalence.
func BuildLegacy(nodes []*Node) {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddEntry(b.self)
			}
		}
	}
}

type leafCand struct {
	dist ID
	idx  int32
}

// buildLeaves fills every node's leaf set from its 2·LeafSize sorted-ring
// neighbors. Distances to self are precomputed once per candidate: sorting 32
// candidates with live Dist calls in the comparator would dominate the whole
// build at 100k nodes.
func buildLeaves(nodes []*Node, entries []Entry, order, pos []int32) {
	n := len(nodes)
	cands := make([]leafCand, 0, 2*LeafSize)
	for i, nd := range nodes {
		self := entries[i].ID
		cands = cands[:0]
		if n-1 <= 2*LeafSize {
			for _, j := range order {
				if int(j) != i {
					cands = append(cands, leafCand{Dist(entries[j].ID, self), j})
				}
			}
		} else {
			p := int(pos[i])
			for k := 1; k <= LeafSize; k++ {
				jp := order[(p-k+n)%n]
				js := order[(p+k)%n]
				cands = append(cands,
					leafCand{Dist(entries[jp].ID, self), jp},
					leafCand{Dist(entries[js].ID, self), js})
			}
		}
		// Order by the same total order the legacy leaf insertion used:
		// circular distance, then numeric identifier, then (for duplicate
		// identifiers) nodes-slice insertion order.
		sort.Slice(cands, func(a, b int) bool {
			ca, cb := cands[a], cands[b]
			if c := ca.dist.Cmp(cb.dist); c != 0 {
				return c < 0
			}
			if c := entries[ca.idx].ID.Cmp(entries[cb.idx].ID); c != 0 {
				return c < 0
			}
			return ca.idx < cb.idx
		})
		k := LeafSize
		if k > len(cands) {
			k = len(cands)
		}
		nd.leaves = make([]Entry, k)
		for t := 0; t < k; t++ {
			nd.leaves[t] = entries[cands[t].idx]
		}
	}
}

// fillTables populates routing-table row `depth` for every node in the
// ID-sorted range order[lo:hi], which by induction shares its first `depth`
// digits. Within the range the digit at `depth` is non-decreasing (higher
// digits are equal, so the sort ordered by this digit first), so the digit
// buckets are contiguous and one scan finds both their bounds and each
// bucket's minimum nodes-slice index — the entry the legacy first-write-wins
// AddEntry would have left in the slot.
func fillTables(nodes []*Node, entries []Entry, order []int32, lo, hi, depth int) {
	if hi-lo < 2 || depth >= NumDigits {
		return
	}
	var bounds [17]int
	var minIdx [16]int32
	for d := range minIdx {
		minIdx[d] = -1
	}
	b := lo
	for d := 0; d < 16; d++ {
		bounds[d] = b
		for b < hi && entries[order[b]].ID.Digit(depth) == d {
			if minIdx[d] == -1 || order[b] < minIdx[d] {
				minIdx[d] = order[b]
			}
			b++
		}
	}
	bounds[16] = hi
	for d := 0; d < 16; d++ {
		if bounds[d+1] == bounds[d] {
			continue
		}
		// Every node in bucket d shares exactly `depth` digits with every
		// node in each sibling bucket d2, so its row[depth][d2] slot gets the
		// sibling bucket's minimum-index entry. The row is only allocated
		// when a sibling bucket exists, matching the lazy allocation the
		// incremental AddEntry path performs.
		for j := bounds[d]; j < bounds[d+1]; j++ {
			nd := nodes[order[j]]
			var row *tableRow
			for d2 := 0; d2 < 16; d2++ {
				if d2 == d || minIdx[d2] == -1 {
					continue
				}
				if row == nil {
					row = nd.tableRow(depth)
				}
				row[d2] = entries[minIdx[d2]]
			}
		}
		if bounds[d+1]-bounds[d] >= 2 {
			fillTables(nodes, entries, order, bounds[d], bounds[d+1], depth+1)
		}
	}
}

// tableSlot reads one routing-table slot without allocating the row: empty
// slots (including wholly unallocated rows) read as Addr == NoNode. The
// differential tests use it to compare tables structurally.
func (n *Node) tableSlot(row, col int) Entry {
	if n.rows == nil || n.rows[row] == nil {
		return Entry{Addr: p2p.NoNode}
	}
	return n.rows[row][col]
}
