package dht

import (
	"encoding/gob"
	"sync"
)

var gobOnce sync.Once

// RegisterGob registers the DHT's message payload types with encoding/gob
// so they can cross real network transports. Safe to call multiple times.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.RegisterName("dht.RouteMsg", RouteMsg{})
		gob.RegisterName("dht.GetResp", GetResp{})
		gob.RegisterName("dht.StateMsg", StateMsg{})
		gob.RegisterName("dht.AnnounceMsg", AnnounceMsg{})
		gob.RegisterName("dht.ReplicaMsg", ReplicaMsg{})
	})
}
