package dht

import (
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
)

// Protocol message types.
const (
	MsgRoute    = "dht.route"
	MsgGetResp  = "dht.get.resp"
	MsgState    = "dht.state"
	MsgAnnounce = "dht.announce"
	MsgReplica  = "dht.replica"
)

const (
	// LeafSize is the number of numerically closest neighbors each node
	// tracks.
	LeafSize = 16
	// Replicas is how many leaf-set neighbors receive a copy of each stored
	// item, so lookups survive root failures.
	Replicas = 4
	// routeSize approximates the wire size of a routed message header.
	routeSize = 64
)

// Entry pairs a DHT identifier with the transport address of the node that
// owns it.
type Entry struct {
	ID   ID
	Addr p2p.NodeID
}

// RouteMsg is the envelope routed greedily toward Key. Exactly one of Put,
// Get, Join is set. Span carries the composition-request ID the lookup is
// serving (0 for maintenance traffic) so every hop's trace event can be
// attributed to the request's span tree.
type RouteMsg struct {
	Key  ID
	Hops int
	Span uint64
	Put  *PutPayload
	Get  *GetPayload
	Join *JoinPayload
}

// PutPayload stores one item under the routed key.
type PutPayload struct {
	Item any
	Size int
}

// GetPayload asks the key's root to return all items stored under the key.
type GetPayload struct {
	ReqID  uint64
	Origin p2p.NodeID
}

// JoinPayload introduces a new node; the key's root replies with its state.
type JoinPayload struct {
	New Entry
}

// GetResp returns the stored items directly to the requester.
type GetResp struct {
	ReqID uint64
	Items []any
	Hops  int
}

// StateMsg transfers a set of known entries (root → joiner).
type StateMsg struct {
	Entries []Entry
}

// AnnounceMsg advertises a (possibly new) node to a peer.
type AnnounceMsg struct {
	Who Entry
}

// ReplicaMsg pushes a stored item to a leaf-set neighbor for fault
// tolerance.
type ReplicaMsg struct {
	Key  ID
	Item any
	Size int
}

// Node is one DHT participant bound to a transport node. All methods must be
// called from the host's event context (handler or timer), which both
// runtimes guarantee.
type Node struct {
	host  p2p.Node
	self  Entry
	alive func(p2p.NodeID) bool

	leaves []Entry     // sorted by circular distance to self, <= LeafSize
	rows   []*tableRow // routing table rows; nil slice/row slots are empty

	store   map[ID][]any // allocated on first stored item
	nextReq uint64
	pending map[uint64]*getReq // allocated on first in-flight lookup

	// Trace receives routing events when non-nil; Ctr accumulates hop
	// counters; Met observes lookup-latency histograms. All are optional
	// and set by the wiring layer.
	Trace obs.Tracer
	Ctr   *obs.NodeCounters
	Met   *obs.Metrics
}

type getReq struct {
	key      ID
	span     uint64 // composition request the lookup serves, for trace spans
	cb       func(items []any, hops int, ok bool)
	cancel   p2p.CancelFunc
	retried  bool
	timeout  time.Duration
	started  time.Duration // host clock at Get, for the lookup histogram
	firstHop p2p.NodeID    // route used first; the retry avoids it
	via      []p2p.NodeID  // cross-ring entry candidates (GetVia); nil for in-ring gets
}

// tableRow is one routing-table row: the known entry (if any) for each next
// digit. Empty slots have Addr == p2p.NoNode. Rows are allocated lazily on
// first use: with random identifiers only the first ~log16(n) rows ever hold
// an entry, so the eager [NumDigits][16]Entry array this replaces (12 KB per
// node) wasted three orders of magnitude of routing-table space — the
// difference between a 100,000-peer discovery plane fitting in a few hundred
// MB and it needing over a gigabyte.
type tableRow [16]Entry

// New creates a DHT node on host. alive is the liveness oracle standing in
// for Pastry's neighbor keepalives: routing skips entries it reports dead.
// A nil alive treats every peer as up.
//
// All per-node collections (routing rows, the item store, the pending-lookup
// map) are allocated on first use, so a freshly built node that never stores
// or looks anything up costs little more than its leaf set.
func New(host p2p.Node, alive func(p2p.NodeID) bool) *Node {
	if alive == nil {
		alive = func(p2p.NodeID) bool { return true }
	}
	n := &Node{
		host:  host,
		self:  Entry{ID: FromNode(host.ID()), Addr: host.ID()},
		alive: alive,
	}
	host.Handle(MsgRoute, n.onRoute)
	host.Handle(MsgGetResp, n.onGetResp)
	host.Handle(MsgState, n.onState)
	host.Handle(MsgAnnounce, n.onAnnounce)
	host.Handle(MsgReplica, n.onReplica)
	return n
}

// Self returns this node's DHT identifier.
func (n *Node) Self() ID { return n.self.ID }

// Addr returns this node's transport address.
func (n *Node) Addr() p2p.NodeID { return n.self.Addr }

// NumLeaves returns the current leaf-set size (for tests and diagnostics).
func (n *Node) NumLeaves() int { return len(n.leaves) }

// StoredUnder returns how many items this node stores under key (including
// replicas).
func (n *Node) StoredUnder(key ID) int { return len(n.store[key]) }

// tableRow returns the routing-table row for the given prefix length,
// allocating it (and the row index) on first use. Fresh slots read as empty
// (Addr == p2p.NoNode).
func (n *Node) tableRow(row int) *tableRow {
	if n.rows == nil {
		n.rows = make([]*tableRow, NumDigits)
	}
	r := n.rows[row]
	if r == nil {
		r = new(tableRow)
		for i := range r {
			r[i].Addr = p2p.NoNode
		}
		n.rows[row] = r
	}
	return r
}

// AddEntry incorporates a known (id, addr) pair into the leaf set and
// routing table. It is the primitive the dynamic join/announce paths and the
// legacy all-pairs build use; the sorted-ring Build writes the same slots
// directly.
func (n *Node) AddEntry(e Entry) {
	if e.Addr == n.self.Addr {
		return
	}
	// Routing table slot by common prefix and next digit.
	row := n.self.ID.CommonPrefix(e.ID)
	if row < NumDigits {
		col := e.ID.Digit(row)
		slot := &n.tableRow(row)[col]
		if slot.Addr == p2p.NoNode || !n.alive(slot.Addr) {
			*slot = e
		}
	}
	// Leaf set: insert, dedup, keep the LeafSize closest.
	for _, l := range n.leaves {
		if l.Addr == e.Addr {
			return
		}
	}
	n.leaves = append(n.leaves, e)
	self := n.self.ID
	sortEntries(n.leaves, func(a, b Entry) bool { return Closer(self, a.ID, b.ID) })
	if len(n.leaves) > LeafSize {
		n.leaves = n.leaves[:LeafSize]
	}
}

func sortEntries(s []Entry, less func(a, b Entry) bool) {
	// Insertion sort: leaf sets are tiny and mostly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// knownEntries yields every live entry this node can route through. The
// visit order (leaves, then table rows by ascending prefix length and digit)
// matches the eager-array representation exactly, so routing decisions — and
// with them every trace — are unchanged by the lazy rows.
func (n *Node) knownEntries(visit func(Entry)) {
	for _, e := range n.leaves {
		if n.alive(e.Addr) {
			visit(e)
		}
	}
	for _, r := range n.rows {
		if r == nil {
			continue
		}
		for col := range r {
			e := r[col]
			if e.Addr != p2p.NoNode && n.alive(e.Addr) {
				visit(e)
			}
		}
	}
}

// nextHop picks the Pastry forwarding target for key: prefer entries with a
// strictly longer shared prefix than self (longest prefix, then closest);
// otherwise any entry strictly closer to the key than self. A zero-value
// return (Addr == NoNode) means self is the root.
func (n *Node) nextHop(key ID) Entry { return n.nextHopExcluding(key, p2p.NoNode) }

// nextHopExcluding is nextHop with one transport address struck from the
// candidate set — the lookup-retry path uses it to route around a first
// hop that swallowed the previous attempt (e.g. across a partition the
// liveness oracle cannot see). avoid == NoNode excludes nothing.
func (n *Node) nextHopExcluding(key ID, avoid p2p.NodeID) Entry {
	selfPrefix := n.self.ID.CommonPrefix(key)
	best := Entry{Addr: p2p.NoNode}
	bestPrefix := -1
	n.knownEntries(func(e Entry) {
		if e.Addr == avoid {
			return
		}
		p := e.ID.CommonPrefix(key)
		if p <= selfPrefix {
			return
		}
		if p > bestPrefix || (p == bestPrefix && Closer(key, e.ID, best.ID)) {
			best, bestPrefix = e, p
		}
	})
	if best.Addr != p2p.NoNode {
		return best
	}
	// Fallback (Pastry's rare case): an entry whose shared prefix is at
	// least as long as self's AND which is strictly closer to the key.
	// Requiring both keeps (prefix, distance) lexicographically monotone
	// along the route, which guarantees termination.
	n.knownEntries(func(e Entry) {
		if e.Addr == avoid {
			return
		}
		if e.ID.CommonPrefix(key) >= selfPrefix && Closer(key, e.ID, n.self.ID) {
			if best.Addr == p2p.NoNode || Closer(key, e.ID, best.ID) {
				best = e
			}
		}
	})
	return best
}

func (n *Node) forwardOrDeliver(rm RouteMsg) {
	n.routeVia(rm, n.nextHop(rm.Key))
}

// routeVia forwards rm through next, or delivers it locally when next is
// empty (this node is the root). It returns the hop used, NoNode on local
// delivery.
func (n *Node) routeVia(rm RouteMsg, next Entry) p2p.NodeID {
	if next.Addr == p2p.NoNode {
		if n.Trace != nil {
			n.Trace.Emit(obs.DHTDeliver(n.host.Now(), n.self.Addr, rm.Span, rm.Hops, payloadKind(rm)))
		}
		n.deliver(rm)
		return p2p.NoNode
	}
	rm.Hops++
	if n.Ctr != nil {
		n.Ctr.DHTHops.Add(1)
	}
	if n.Trace != nil {
		n.Trace.Emit(obs.DHTHop(n.host.Now(), n.self.Addr, next.Addr, rm.Span, rm.Hops, payloadKind(rm)))
	}
	n.host.Send(p2p.Message{Type: MsgRoute, To: next.Addr, Size: routeSize + payloadSize(rm), Payload: rm})
	return next.Addr
}

func payloadSize(rm RouteMsg) int {
	switch {
	case rm.Put != nil:
		return rm.Put.Size
	case rm.Get != nil:
		return 16
	case rm.Join != nil:
		return 24
	}
	return 0
}

func payloadKind(rm RouteMsg) string {
	switch {
	case rm.Put != nil:
		return "put"
	case rm.Get != nil:
		return "get"
	case rm.Join != nil:
		return "join"
	}
	return "?"
}

func (n *Node) onRoute(_ p2p.Node, msg p2p.Message) {
	rm := msg.Payload.(RouteMsg)
	n.forwardOrDeliver(rm)
}

// deliver handles a routed message for which this node is the root.
func (n *Node) deliver(rm RouteMsg) {
	switch {
	case rm.Put != nil:
		if n.store == nil {
			n.store = make(map[ID][]any)
		}
		n.store[rm.Key] = append(n.store[rm.Key], rm.Put.Item)
		n.replicate(rm.Key, rm.Put.Item, rm.Put.Size)
	case rm.Get != nil:
		items := append([]any(nil), n.store[rm.Key]...)
		n.host.Send(p2p.Message{
			Type: MsgGetResp, To: rm.Get.Origin,
			Size:    routeSize + 96*len(items),
			Payload: GetResp{ReqID: rm.Get.ReqID, Items: items, Hops: rm.Hops},
		})
	case rm.Join != nil:
		// Send the root's view (self, leaves, table) to the joiner, then
		// adopt it.
		entries := []Entry{n.self}
		n.knownEntries(func(e Entry) { entries = append(entries, e) })
		n.host.Send(p2p.Message{
			Type: MsgState, To: rm.Join.New.Addr,
			Size:    routeSize + 24*len(entries),
			Payload: StateMsg{Entries: entries},
		})
		n.AddEntry(rm.Join.New)
	}
}

func (n *Node) replicate(key ID, item any, size int) {
	sent := 0
	for _, e := range n.leaves {
		if sent >= Replicas {
			break
		}
		if !n.alive(e.Addr) {
			continue
		}
		n.host.Send(p2p.Message{
			Type: MsgReplica, To: e.Addr,
			Size:    routeSize + size,
			Payload: ReplicaMsg{Key: key, Item: item, Size: size},
		})
		sent++
	}
}

func (n *Node) onReplica(_ p2p.Node, msg p2p.Message) {
	rm := msg.Payload.(ReplicaMsg)
	for _, it := range n.store[rm.Key] {
		if it == rm.Item {
			return // idempotent for comparable items
		}
	}
	if n.store == nil {
		n.store = make(map[ID][]any)
	}
	n.store[rm.Key] = append(n.store[rm.Key], rm.Item)
}

func (n *Node) onState(_ p2p.Node, msg p2p.Message) {
	sm := msg.Payload.(StateMsg)
	for _, e := range sm.Entries {
		n.AddEntry(e)
	}
	// Announce ourselves to everyone we just learned about so their state
	// reflects the new membership.
	for _, e := range sm.Entries {
		if e.Addr == n.self.Addr {
			continue
		}
		n.host.Send(p2p.Message{
			Type: MsgAnnounce, To: e.Addr,
			Size:    routeSize + 24,
			Payload: AnnounceMsg{Who: n.self},
		})
	}
}

func (n *Node) onAnnounce(_ p2p.Node, msg p2p.Message) {
	n.AddEntry(msg.Payload.(AnnounceMsg).Who)
}

// Join bootstraps this node into the ring through any existing member: a
// join request routes to the root of the joiner's own identifier, whose
// state seeds the joiner's tables.
func (n *Node) Join(bootstrap p2p.NodeID) {
	n.host.Send(p2p.Message{
		Type: MsgRoute, To: bootstrap,
		Size:    routeSize + 24,
		Payload: RouteMsg{Key: n.self.ID, Join: &JoinPayload{New: n.self}},
	})
}

// Put stores item under key on the key's root (plus replicas). size is the
// approximate serialized size for overhead accounting.
func (n *Node) Put(key ID, item any, size int) {
	n.forwardOrDeliver(RouteMsg{Key: key, Put: &PutPayload{Item: item, Size: size}})
}

// PutVia stores item under key in a ring this node is not a member of, by
// handing the routed put to entry — a member of the key's home ring — which
// then routes it greedily as usual. Sharded discovery uses this to home
// registrations: this node's own tables know nothing about the foreign ring,
// so local prefix routing would terminate at the wrong root. entry == self
// degrades to a plain Put.
func (n *Node) PutVia(entry p2p.NodeID, key ID, item any, size int) {
	rm := RouteMsg{Key: key, Put: &PutPayload{Item: item, Size: size}}
	if entry == n.self.Addr {
		n.forwardOrDeliver(rm)
		return
	}
	n.routeVia(rm, Entry{ID: FromNode(entry), Addr: entry})
}

// Get fetches all items stored under key. cb fires exactly once: with the
// items and hop count on success, or ok=false after two timeouts. The call
// is asynchronous; cb runs on this node's event context.
func (n *Node) Get(key ID, timeout time.Duration, cb func(items []any, hops int, ok bool)) {
	n.GetSpan(key, 0, timeout, cb)
}

// GetSpan is Get with the composition-request ID the lookup serves attached;
// every routing and timeout event it emits carries span, so trace span trees
// can claim the lookup as a child of the request.
func (n *Node) GetSpan(key ID, span uint64, timeout time.Duration, cb func(items []any, hops int, ok bool)) {
	n.nextReq++
	id := n.nextReq
	req := &getReq{key: key, span: span, cb: cb, timeout: timeout, started: n.host.Now()}
	if n.pending == nil {
		n.pending = make(map[uint64]*getReq)
	}
	n.pending[id] = req
	req.cancel = n.host.After(timeout, func() { n.getTimeout(id) })
	req.firstHop = n.sendGet(id, key, span, p2p.NoNode)
}

// GetVia fetches all items stored under key from a ring this node is not a
// member of. entries lists deterministic entry members of the key's home
// ring: the first attempt enters through entries[0]; a timeout retries
// through the first alternate entry. The retry must target another entry
// member, never fall back to local prefix routing — this node's tables would
// route within its own ring and deliver at a wrong-ring root, fabricating an
// empty result. The root's response returns directly to this node (the
// transport is shared across rings). entries[i] == self degrades to in-ring
// routing for that attempt.
func (n *Node) GetVia(entries []p2p.NodeID, key ID, span uint64, timeout time.Duration, cb func(items []any, hops int, ok bool)) {
	if len(entries) == 0 {
		n.GetSpan(key, span, timeout, cb)
		return
	}
	n.nextReq++
	id := n.nextReq
	req := &getReq{key: key, span: span, cb: cb, timeout: timeout, started: n.host.Now(), via: entries}
	if n.pending == nil {
		n.pending = make(map[uint64]*getReq)
	}
	n.pending[id] = req
	req.cancel = n.host.After(timeout, func() { n.getTimeout(id) })
	req.firstHop = n.sendGetVia(id, key, span, entries[0])
}

// sendGetVia routes a get into the key's home ring through entry, returning
// the hop used.
func (n *Node) sendGetVia(reqID uint64, key ID, span uint64, entry p2p.NodeID) p2p.NodeID {
	rm := RouteMsg{Key: key, Span: span, Get: &GetPayload{ReqID: reqID, Origin: n.self.Addr}}
	if entry == n.self.Addr {
		return n.routeVia(rm, n.nextHop(key))
	}
	return n.routeVia(rm, Entry{ID: FromNode(entry), Addr: entry})
}

// sendGet routes a get toward key's root, avoiding one first hop (NoNode =
// unconstrained), and returns the hop actually used. When exclusion leaves
// no viable route the unexcluded route is used after all: forcing local
// delivery at a non-root node would fabricate an empty result.
func (n *Node) sendGet(reqID uint64, key ID, span uint64, avoid p2p.NodeID) p2p.NodeID {
	next := n.nextHopExcluding(key, avoid)
	if next.Addr == p2p.NoNode && avoid != p2p.NoNode {
		next = n.nextHop(key)
	}
	return n.routeVia(RouteMsg{Key: key, Span: span, Get: &GetPayload{ReqID: reqID, Origin: n.self.Addr}}, next)
}

func (n *Node) getTimeout(id uint64) {
	req, ok := n.pending[id]
	if !ok {
		return
	}
	if !req.retried {
		req.retried = true
		if n.Trace != nil {
			n.Trace.Emit(obs.DHTGetTimeout(n.host.Now(), n.self.Addr, req.span, true))
		}
		req.cancel = n.host.After(req.timeout, func() { n.getTimeout(id) })
		if len(req.via) > 0 {
			// Cross-ring retry: enter the home ring through an alternate
			// entry member. Local rerouting is not an option here — see
			// GetVia.
			alt := req.via[0]
			for _, e := range req.via {
				if e != req.firstHop {
					alt = e
					break
				}
			}
			n.sendGetVia(id, req.key, req.span, alt)
			return
		}
		// Retry via a different routing-table entry: the first hop may be
		// unreachable (partitioned, overloaded) without being seen as dead.
		n.sendGet(id, req.key, req.span, req.firstHop)
		return
	}
	delete(n.pending, id)
	if n.Trace != nil {
		n.Trace.Emit(obs.DHTGetTimeout(n.host.Now(), n.self.Addr, req.span, false))
	}
	req.cb(nil, 0, false)
}

func (n *Node) onGetResp(_ p2p.Node, msg p2p.Message) {
	gr := msg.Payload.(GetResp)
	req, ok := n.pending[gr.ReqID]
	if !ok {
		return // late duplicate after timeout
	}
	delete(n.pending, gr.ReqID)
	req.cancel()
	if n.Met != nil {
		n.Met.DHTLookup.ObserveDuration(n.host.Now() - req.started)
	}
	req.cb(gr.Items, gr.Hops, true)
}
