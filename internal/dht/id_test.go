package dht

import (
	"testing"
	"testing/quick"

	"repro/internal/p2p"
)

func TestKeyDeterministic(t *testing.T) {
	if Key("upscale") != Key("upscale") {
		t.Fatal("Key not deterministic")
	}
	if Key("upscale") == Key("downscale") {
		t.Fatal("distinct names collided")
	}
}

func TestFromNodeDistinct(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := FromNode(p2p.NodeID(i))
		if seen[id] {
			t.Fatalf("node %d collided", i)
		}
		seen[id] = true
	}
}

func TestDigit(t *testing.T) {
	var id ID
	id[0] = 0xab
	id[1] = 0xcd
	if id.Digit(0) != 0xa || id.Digit(1) != 0xb || id.Digit(2) != 0xc || id.Digit(3) != 0xd {
		t.Fatalf("digits=%x %x %x %x", id.Digit(0), id.Digit(1), id.Digit(2), id.Digit(3))
	}
}

func TestCommonPrefix(t *testing.T) {
	a := Key("x")
	if a.CommonPrefix(a) != NumDigits {
		t.Fatal("self prefix should be full width")
	}
	var b, c ID
	b[0], b[1] = 0x12, 0x34
	c[0], c[1] = 0x12, 0x35
	if got := b.CommonPrefix(c); got != 3 {
		t.Fatalf("prefix=%d, want 3", got)
	}
	c[0] = 0x13
	if got := b.CommonPrefix(c); got != 1 {
		t.Fatalf("prefix=%d, want 1", got)
	}
}

func TestCmpAndLess(t *testing.T) {
	var a, b ID
	b[IDBytes-1] = 1
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less wrong")
	}
}

func TestSubWrapAround(t *testing.T) {
	var zero, one ID
	one[IDBytes-1] = 1
	d := sub(zero, one) // -1 mod 2^128 = all 0xff
	for _, b := range d {
		if b != 0xff {
			t.Fatalf("wraparound sub = %v", d)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(a, b [IDBytes]byte) bool {
		x, y := ID(a), ID(b)
		return Dist(x, y) == Dist(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistZeroIffEqual(t *testing.T) {
	a := Key("a")
	if Dist(a, a) != (ID{}) {
		t.Fatal("self distance nonzero")
	}
	if Dist(a, Key("b")) == (ID{}) {
		t.Fatal("distinct ids at zero distance")
	}
}

func TestCloserTotalOrderAroundKey(t *testing.T) {
	key := Key("k")
	a, b := Key("a"), Key("b")
	if Closer(key, a, b) == Closer(key, b, a) {
		t.Fatal("Closer must order distinct ids strictly")
	}
	if Closer(key, a, a) {
		t.Fatal("id is not closer than itself")
	}
}

func TestStringForms(t *testing.T) {
	id := Key("x")
	if len(id.String()) != 32 {
		t.Fatalf("String length %d", len(id.String()))
	}
	if len(id.Short()) != 8 {
		t.Fatalf("Short length %d", len(id.Short()))
	}
}
