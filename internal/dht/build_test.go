package dht

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

// buildHost is a minimal transport stub for construction-only tests: Build
// never sends, schedules, or randomizes, so only ID and Handle matter. Using
// it keeps the differential and speedup tests free of simulator overhead.
type buildHost struct{ id p2p.NodeID }

func (h *buildHost) ID() p2p.NodeID                             { return h.id }
func (h *buildHost) Now() time.Duration                         { return 0 }
func (h *buildHost) Send(p2p.Message)                           {}
func (h *buildHost) After(time.Duration, func()) p2p.CancelFunc { return func() {} }
func (h *buildHost) Rand() *rand.Rand                           { return nil }
func (h *buildHost) Handle(string, p2p.Handler)                 {}
func (h *buildHost) Alive() bool                                { return true }

// freshNodes creates construction-only nodes for the given transport IDs.
func freshNodes(ids []p2p.NodeID) []*Node {
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		nodes[i] = New(&buildHost{id: id}, nil)
	}
	return nodes
}

// idSet derives n transport IDs from a seed: sequential for even seeds,
// sparse-random (the cluster and sharding layers hand dht non-contiguous
// NodeIDs) for odd ones.
func idSet(n int, seed int64) []p2p.NodeID {
	ids := make([]p2p.NodeID, n)
	if seed%2 == 0 {
		for i := range ids {
			ids[i] = p2p.NodeID(int(seed)*1000 + i)
		}
		return ids
	}
	rng := rand.New(rand.NewSource(seed))
	used := make(map[p2p.NodeID]bool, n)
	for i := range ids {
		for {
			id := p2p.NodeID(rng.Intn(1 << 30))
			if !used[id] {
				used[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

// diffRings fails the test when the sorted-ring construction and the legacy
// all-pairs construction disagree on any leaf set or routing-table slot.
func diffRings(t testing.TB, ids []p2p.NodeID) {
	t.Helper()
	fast := freshNodes(ids)
	slow := freshNodes(ids)
	Build(fast)
	BuildLegacy(slow)
	for i := range fast {
		f, s := fast[i], slow[i]
		if len(f.leaves) != len(s.leaves) {
			t.Fatalf("node %d: leaf count %d != legacy %d", i, len(f.leaves), len(s.leaves))
		}
		for j := range f.leaves {
			if f.leaves[j] != s.leaves[j] {
				t.Fatalf("node %d leaf %d: %+v != legacy %+v", i, j, f.leaves[j], s.leaves[j])
			}
		}
		for row := 0; row < NumDigits; row++ {
			for col := 0; col < 16; col++ {
				if got, want := f.tableSlot(row, col), s.tableSlot(row, col); got != want {
					t.Fatalf("node %d table[%d][%d]: %+v != legacy %+v", i, row, col, got, want)
				}
			}
		}
	}
}

func TestBuildMatchesLegacy(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 16, 17, 33, 64, 200, 500} {
		for seed := int64(0); seed < 4; seed++ {
			diffRings(t, idSet(n, seed))
		}
	}
}

// FuzzDiffBuild is the fuzzing face of the same differential property: any
// (size, seed) pair must produce identical rings under both constructions.
func FuzzDiffBuild(f *testing.F) {
	f.Add(uint16(2), int64(1))
	f.Add(uint16(17), int64(3))
	f.Add(uint16(40), int64(0))
	f.Add(uint16(150), int64(7))
	f.Fuzz(func(t *testing.T, n uint16, seed int64) {
		size := int(n % 300)
		diffRings(t, idSet(size, seed))
	})
}

// TestBuildPutGetMatchesLegacy runs the same Put/Get workload over two
// simulated rings — one built each way — and requires identical results,
// including hop counts: the strongest observable signal that routing state is
// bit-identical.
func TestBuildPutGetMatchesLegacy(t *testing.T) {
	type result struct {
		items []any
		hops  int
		ok    bool
	}
	run := func(build func([]*Node)) []result {
		sim := simnet.NewSim()
		nw := simnet.NewNetwork(sim, simnet.ConstantLatency(5*time.Millisecond), rand.New(rand.NewSource(1)))
		nodes := make([]*Node, 120)
		for i := range nodes {
			nodes[i] = New(nw.AddNode(p2p.NodeID(i*7+3)), nw.Alive)
		}
		build(nodes)
		rng := rand.New(rand.NewSource(42))
		keys := make([]ID, 40)
		for i := range keys {
			keys[i] = Key(string(rune('A' + rng.Intn(60))))
			nodes[rng.Intn(len(nodes))].Put(keys[i], i, 64)
		}
		sim.RunUntilIdle()
		results := make([]result, len(keys))
		for i, key := range keys {
			i := i
			nodes[rng.Intn(len(nodes))].Get(key, time.Second, func(items []any, hops int, ok bool) {
				results[i] = result{items: items, hops: hops, ok: ok}
			})
		}
		sim.RunUntilIdle()
		return results
	}
	fast := run(Build)
	slow := run(BuildLegacy)
	for i := range fast {
		f, s := fast[i], slow[i]
		if f.ok != s.ok || f.hops != s.hops || len(f.items) != len(s.items) {
			t.Fatalf("lookup %d: (ok=%v hops=%d n=%d) != legacy (ok=%v hops=%d n=%d)",
				i, f.ok, f.hops, len(f.items), s.ok, s.hops, len(s.items))
		}
		for j := range f.items {
			if f.items[j] != s.items[j] {
				t.Fatalf("lookup %d item %d: %v != legacy %v", i, j, f.items[j], s.items[j])
			}
		}
	}
}

// TestBuildSpeedup asserts the sorted-ring construction beats the all-pairs
// builder by the ISSUE's 50× floor. Measured at 1k nodes, where the legacy
// build is still fast enough to time; the gap only widens with n (the
// benchmarks extrapolate to 100k).
func TestBuildSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ids := idSet(1000, 1)
	fast := freshNodes(ids)
	slow := freshNodes(ids)

	start := time.Now()
	Build(fast)
	fastDur := time.Since(start)

	start = time.Now()
	BuildLegacy(slow)
	slowDur := time.Since(start)

	t.Logf("build=%v legacy=%v ratio=%.0fx", fastDur, slowDur, float64(slowDur)/float64(fastDur))
	if slowDur < 50*fastDur {
		t.Fatalf("Build only %.1fx faster than BuildLegacy (want >= 50x): %v vs %v",
			float64(slowDur)/float64(fastDur), fastDur, slowDur)
	}
}
