package dht

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/simnet"
)

func TestNextHopExcludingSkipsAvoidedEntry(t *testing.T) {
	_, nodes := ring(t, 40)
	for i := 0; i < 10; i++ {
		key := Key(fmt.Sprintf("k%d", i))
		for _, n := range nodes {
			first := n.nextHop(key)
			if first.Addr == p2p.NoNode {
				continue // local delivery: nothing to exclude
			}
			alt := n.nextHopExcluding(key, first.Addr)
			if alt.Addr == first.Addr {
				t.Fatalf("node %v key %d: excluded hop %d returned again", n.self.Addr, i, first.Addr)
			}
		}
	}
}

// TestGetRetriesViaAlternateRoute black-holes the exact link a lookup takes
// first (the node stays alive, so the liveness oracle cannot help) and
// requires the timeout retry to reach the root through a different
// routing-table entry.
func TestGetRetriesViaAlternateRoute(t *testing.T) {
	nw, nodes := ring(t, 60)
	key := Key("retry-fn")
	nodes[7].Put(key, "meta", 64)
	nw.Sim().RunUntilIdle()

	// Pick a requester that (a) forwards rather than delivering locally and
	// (b) has an alternate entry once the first hop is excluded.
	reqIdx := -1
	var h1 p2p.NodeID
	for i := range nodes {
		first := nodes[i].nextHop(key)
		if first.Addr == p2p.NoNode {
			continue
		}
		if alt := nodes[i].nextHopExcluding(key, first.Addr); alt.Addr == p2p.NoNode {
			continue
		}
		reqIdx, h1 = i, first.Addr
		break
	}
	if reqIdx == -1 {
		t.Fatal("no requester with an alternate route found")
	}

	nw.SetFaults(simnet.FaultPlan{
		Seed:  1,
		Links: map[[2]p2p.NodeID]simnet.LinkFaults{{p2p.NodeID(reqIdx), h1}: {Loss: 1}},
	})

	var items []any
	ok, called := false, false
	nodes[reqIdx].Get(key, 200*time.Millisecond, func(it []any, _ int, o bool) {
		called, ok, items = true, o, it
	})
	nw.Sim().RunUntilIdle()
	if !called {
		t.Fatal("callback never fired")
	}
	if !ok {
		t.Fatal("lookup failed: retry did not avoid the black-holed first hop")
	}
	if len(items) != 1 || items[0] != "meta" {
		t.Fatalf("items=%v", items)
	}
	if nw.Stats().Faulted == 0 {
		t.Fatal("fault link never exercised: test routed elsewhere")
	}
}
