// Package obs is SpiderNet's observability subsystem: a structured,
// allocation-conscious event tracer plus a per-node counter registry.
//
// Timestamps are taken from the hosting runtime's clock (the virtual clock
// in simulation), never from wall time, so traces are bit-for-bit
// reproducible per seed. Tracing is opt-in: every producer holds a Tracer
// that is nil by default, and every emission site guards with a nil check,
// so the disabled path costs one pointer comparison and zero allocations.
//
// The event taxonomy covers the whole stack:
//
//	compose.start / compose.done        BCP composition lifecycle (source)
//	disc.done                           discovery phase boundary (source)
//	probe.sent / probe.forwarded        probe lifecycle (§4.2)
//	probe.dropped / probe.returned
//	probe.collected / select.done       destination-side collection (§4.3)
//	session.admit / session.reject      reverse-path session setup
//	session.establish                   recovery manager adopts a session
//	dht.hop / dht.deliver               DHT routing
//	dht.get.retry / dht.get.fail        lookup timeouts
//	rec.probe / rec.failure             failure monitoring (§5)
//	rec.switchover / rec.reactive / rec.dead
//	net.drop                            message to a dead or unknown peer
//	net.fault                           injected loss/dup/jitter/partition
//	net.down / net.up                   node crash / recovery
//	probe.retransmit                    per-hop probe retransmit (same PID)
//	fed.prepare / fed.commit / fed.abort  federation two-phase commit
package obs

import (
	"encoding/json"
	"time"

	"repro/internal/p2p"
)

// Event kinds. Producers use the typed constructors below; consumers switch
// on these constants.
const (
	KindComposeStart   = "compose.start"
	KindComposeDone    = "compose.done"
	KindDiscDone       = "disc.done"
	KindProbeSent      = "probe.sent"
	KindProbeForwarded = "probe.forwarded"
	KindProbeDropped   = "probe.dropped"
	KindProbeReturned  = "probe.returned"
	KindProbeCollected = "probe.collected"
	KindSelectDone     = "select.done"
	KindSessionAdmit   = "session.admit"
	KindSessionReject  = "session.reject"
	KindSessionEstab   = "session.establish"
	KindDHTHop         = "dht.hop"
	KindDHTDeliver     = "dht.deliver"
	KindDHTGetRetry    = "dht.get.retry"
	KindDHTGetFail     = "dht.get.fail"
	KindRecProbe       = "rec.probe"
	KindRecFailure     = "rec.failure"
	KindRecSwitchover  = "rec.switchover"
	KindRecReactive    = "rec.reactive"
	KindRecDead        = "rec.dead"
	KindNetDrop        = "net.drop"
	KindNetFault       = "net.fault"
	KindNetDown        = "net.down"
	KindNetUp          = "net.up"
	KindProbeRetx      = "probe.retransmit"
	KindFedPrepare     = "fed.prepare"
	KindFedCommit      = "fed.commit"
	KindFedAbort       = "fed.abort"
)

// Fault kinds carried in a net.fault event's Note field.
const (
	FaultLoss      = "loss"
	FaultDup       = "dup"
	FaultJitter    = "jitter"
	FaultPartition = "partition"
)

// Event is one structured trace record. The zero value of every optional
// field (Req, Fn, Comp, Hops, Budget, Bytes, Dur, Note) is omitted on the
// wire; Peer is optional with NoNode as its absent value.
type Event struct {
	// TS is the virtual-clock timestamp (nanoseconds since simulation
	// start). Deterministic per seed.
	TS   time.Duration `json:"ts"`
	Kind string        `json:"kind"`
	// Node is the peer that emitted the event.
	Node p2p.NodeID `json:"node"`
	// Req is the request/session identifier the event belongs to.
	Req uint64 `json:"req,omitempty"`
	// PID identifies one probe instance (unique per run, deterministic per
	// seed); PPID is the probe it was split from, 0 at the origin. Probe
	// lifecycle events carry them so a trace checker can account for every
	// probe exactly.
	PID  uint64 `json:"pid,omitempty"`
	PPID uint64 `json:"ppid,omitempty"`
	// Peer is the other endpoint (next hop, probe target, ...), NoNode if
	// not applicable.
	Peer p2p.NodeID `json:"peer,omitempty"`
	// Fn is the service function involved, Comp the component ID.
	Fn   string `json:"fn,omitempty"`
	Comp string `json:"comp,omitempty"`
	// Hops counts routing or probe hops so far.
	Hops int `json:"hops,omitempty"`
	// Budget is the probing budget carried or the backup count maintained.
	Budget int `json:"budget,omitempty"`
	// Bytes is the approximate wire size involved.
	Bytes int `json:"bytes,omitempty"`
	// Dur is a measured duration (e.g. recovery time).
	Dur time.Duration `json:"dur,omitempty"`
	// Dom is the administrative domain a federation event belongs to,
	// offset by one so domain 0 survives omitempty (Domain()/WithDomain
	// handle the bias).
	Dom int `json:"dom,omitempty"`
	// Note carries a short reason or free-form detail.
	Note string `json:"note,omitempty"`
}

// Domain returns the administrative domain the event carries, -1 if none.
func (e *Event) Domain() int { return e.Dom - 1 }

// WithDomain returns a copy of the event tagged with domain d.
func (e Event) WithDomain(d int) Event {
	e.Dom = d + 1
	return e
}

// UnmarshalJSON decodes an event, defaulting the optional Peer field to
// NoNode rather than node 0.
func (e *Event) UnmarshalJSON(b []byte) error {
	type alias Event
	a := alias{Peer: p2p.NoNode}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*e = Event(a)
	return nil
}

// Tracer receives events. Implementations: JSONLSink (buffered JSONL
// writer), MemSink (in-memory, for tests and summaries). A nil Tracer means
// tracing is disabled; producers must guard emissions with a nil check, the
// no-op fast path.
type Tracer interface {
	Emit(Event)
}

// Typed event constructors. They only build the Event value; the caller
// guards with `if tracer != nil` so the disabled path does no work.

// ComposeStart records a source starting composition for req.
func ComposeStart(ts time.Duration, node p2p.NodeID, req uint64, funcs, budget int) Event {
	return Event{TS: ts, Kind: KindComposeStart, Node: node, Req: req, Peer: p2p.NoNode,
		Hops: funcs, Budget: budget}
}

// ComposeDone records the composition outcome arriving at the source.
func ComposeDone(ts time.Duration, node p2p.NodeID, req uint64, ok bool, setup time.Duration) Event {
	note := "ok"
	if !ok {
		note = "fail"
	}
	return Event{TS: ts, Kind: KindComposeDone, Node: node, Req: req, Peer: p2p.NoNode,
		Dur: setup, Note: note}
}

// DiscDone records the decentralized-discovery phase of a request resolving
// at the source: every function's duplicate list is in hand (ok) or a lookup
// timed out for good (fail). It is the explicit discovery→probing span
// boundary — without it a cache-served discovery leaves no trace record at
// all and the phase boundary must be guessed from the first probe emission.
func DiscDone(ts time.Duration, node p2p.NodeID, req uint64, ok bool, took time.Duration) Event {
	note := "ok"
	if !ok {
		note = "fail"
	}
	return Event{TS: ts, Kind: KindDiscDone, Node: node, Req: req, Peer: p2p.NoNode,
		Dur: took, Note: note}
}

// ProbeSent records a probe leaving its source toward component comp on
// peer to. ProbeForwarded is the same shape for intermediate hops. pid is
// the new probe's identity, ppid the probe it was split from (0 at the
// origin).
func ProbeSent(ts time.Duration, node p2p.NodeID, req uint64, to p2p.NodeID, fn, comp string, budget, hops int, pid, ppid uint64) Event {
	kind := KindProbeSent
	if hops > 0 {
		kind = KindProbeForwarded
	}
	return Event{TS: ts, Kind: kind, Node: node, Req: req, PID: pid, PPID: ppid, Peer: to,
		Fn: fn, Comp: comp, Budget: budget, Hops: hops}
}

// ProbeDropped records a probe dying at node with a reason
// ("stale-component", "ingress-link", "qos", "resources", "egress-link",
// "discovery", "no-candidate").
func ProbeDropped(ts time.Duration, node p2p.NodeID, req uint64, fn, comp, reason string, hops int, pid uint64) Event {
	return Event{TS: ts, Kind: KindProbeDropped, Node: node, Req: req, PID: pid, Peer: p2p.NoNode,
		Fn: fn, Comp: comp, Hops: hops, Note: reason}
}

// ProbeReturned records a completed probe reporting to the destination.
func ProbeReturned(ts time.Duration, node p2p.NodeID, req uint64, dest p2p.NodeID, hops, bytes int, pid uint64) Event {
	return Event{TS: ts, Kind: KindProbeReturned, Node: node, Req: req, PID: pid, Peer: dest,
		Hops: hops, Bytes: bytes}
}

// ProbeCollected records the destination receiving one probe report. pid is
// the reporting probe's identity, so span builders can link the collection
// back through the probe's PID/PPID lineage to its origin.
func ProbeCollected(ts time.Duration, node p2p.NodeID, req uint64, from p2p.NodeID, hops int, pid uint64) Event {
	return Event{TS: ts, Kind: KindProbeCollected, Node: node, Req: req, Peer: from, Hops: hops, PID: pid}
}

// SelectDone records destination-side optimal composition selection.
func SelectDone(ts time.Duration, node p2p.NodeID, req uint64, candidates, qualified int) Event {
	note := "ok"
	if qualified == 0 {
		note = "unqualified"
	}
	return Event{TS: ts, Kind: KindSelectDone, Node: node, Req: req, Peer: p2p.NoNode,
		Hops: candidates, Budget: qualified, Note: note}
}

// SessionAdmit records one peer hardening its reservation for a session.
func SessionAdmit(ts time.Duration, node p2p.NodeID, req uint64, comp string) Event {
	return Event{TS: ts, Kind: KindSessionAdmit, Node: node, Req: req, Peer: p2p.NoNode, Comp: comp}
}

// SessionReject records a peer refusing a session commit with a reason
// ("vanished", "resources", "bandwidth").
func SessionReject(ts time.Duration, node p2p.NodeID, req uint64, comp, reason string) Event {
	return Event{TS: ts, Kind: KindSessionReject, Node: node, Req: req, Peer: p2p.NoNode,
		Comp: comp, Note: reason}
}

// SessionEstablish records the recovery manager adopting a composed session
// with backups maintained backup graphs.
func SessionEstablish(ts time.Duration, node p2p.NodeID, req uint64, backups int) Event {
	return Event{TS: ts, Kind: KindSessionEstab, Node: node, Req: req, Peer: p2p.NoNode, Budget: backups}
}

// DHTHop records a routed DHT message being forwarded to next. req is the
// composition request the routed message serves, 0 for maintenance traffic
// (puts, joins) — lookups launched by a request's discovery phase carry its
// ID so span builders can attribute DHT time per request.
func DHTHop(ts time.Duration, node, next p2p.NodeID, req uint64, hops int, what string) Event {
	return Event{TS: ts, Kind: KindDHTHop, Node: node, Req: req, Peer: next, Hops: hops, Note: what}
}

// DHTDeliver records a routed DHT message reaching its root. req as in
// DHTHop.
func DHTDeliver(ts time.Duration, node p2p.NodeID, req uint64, hops int, what string) Event {
	return Event{TS: ts, Kind: KindDHTDeliver, Node: node, Req: req, Peer: p2p.NoNode, Hops: hops, Note: what}
}

// DHTGetTimeout records a lookup timing out; retry says whether it is being
// retried or has failed for good. req as in DHTHop.
func DHTGetTimeout(ts time.Duration, node p2p.NodeID, req uint64, retry bool) Event {
	kind := KindDHTGetFail
	if retry {
		kind = KindDHTGetRetry
	}
	return Event{TS: ts, Kind: kind, Node: node, Req: req, Peer: p2p.NoNode}
}

// RecProbe records a low-rate maintenance probe launched for a session.
func RecProbe(ts time.Duration, node p2p.NodeID, sess uint64, first p2p.NodeID) Event {
	return Event{TS: ts, Kind: KindRecProbe, Node: node, Req: sess, Peer: first}
}

// RecFailure records the sender detecting a broken active graph.
func RecFailure(ts time.Duration, node p2p.NodeID, sess uint64) Event {
	return Event{TS: ts, Kind: KindRecFailure, Node: node, Req: sess, Peer: p2p.NoNode}
}

// RecOutcome records a recovery ending: kind is KindRecSwitchover,
// KindRecReactive, or KindRecDead, dur how long the session was broken.
func RecOutcome(ts time.Duration, node p2p.NodeID, sess uint64, kind string, dur time.Duration) Event {
	return Event{TS: ts, Kind: kind, Node: node, Req: sess, Peer: p2p.NoNode, Dur: dur}
}

// NetDrop records the network dropping a message to a dead or unknown peer.
// uid is the message's protocol identity (a probe's PID), 0 if untracked, so
// the trace checker can attribute the casualty per protocol unit.
func NetDrop(ts time.Duration, from, to p2p.NodeID, msgType string, bytes int, uid uint64) Event {
	return Event{TS: ts, Kind: KindNetDrop, Node: from, Peer: to, Bytes: bytes, Note: msgType, PID: uid}
}

// NetFault records the fault-injection plane acting on a message: kind is one
// of the Fault* constants (Note), msgType the affected message type (Comp),
// uid its protocol identity (PID, 0 if untracked). Loss and partition faults
// kill the message; dup schedules an extra delivery; jitter delays one.
func NetFault(ts time.Duration, from, to p2p.NodeID, kind, msgType string, bytes int, uid uint64) Event {
	return Event{TS: ts, Kind: KindNetFault, Node: from, Peer: to, Bytes: bytes,
		Note: kind, Comp: msgType, PID: uid}
}

// NodeDown records a peer crashing (fault injection or scripted failure).
// Trace checkers use it to excuse protocol exchanges the dead peer can no
// longer finish.
func NodeDown(ts time.Duration, node p2p.NodeID) Event {
	return Event{TS: ts, Kind: KindNetDown, Node: node, Peer: p2p.NoNode}
}

// NodeUp records a crashed peer coming back.
func NodeUp(ts time.Duration, node p2p.NodeID) Event {
	return Event{TS: ts, Kind: KindNetUp, Node: node, Peer: p2p.NoNode}
}

// FedPrepare records a gateway converting a probed sub-session into a held
// reservation: fed is the federated request, sub the per-domain sub-session
// identity (carried in PID), dom the participant's domain.
func FedPrepare(ts time.Duration, node p2p.NodeID, fed, sub uint64, dom int) Event {
	return Event{TS: ts, Kind: KindFedPrepare, Node: node, Req: fed, PID: sub,
		Peer: p2p.NoNode}.WithDomain(dom)
}

// FedCommit records a held reservation being promoted into a committed
// session.
func FedCommit(ts time.Duration, node p2p.NodeID, fed, sub uint64, dom int) Event {
	return Event{TS: ts, Kind: KindFedCommit, Node: node, Req: fed, PID: sub,
		Peer: p2p.NoNode}.WithDomain(dom)
}

// FedAbort records a held reservation being released: reason "abort" for an
// explicit coordinator decision, "expire" for the presumed-abort timeout.
func FedAbort(ts time.Duration, node p2p.NodeID, fed, sub uint64, dom int, reason string) Event {
	return Event{TS: ts, Kind: KindFedAbort, Node: node, Req: fed, PID: sub,
		Peer: p2p.NoNode, Note: reason}.WithDomain(dom)
}

// ProbeRetx records a per-hop retransmit of an unacknowledged probe-carrying
// message: the same PID goes back on the wire toward to, without a fresh
// probe.sent record (the copy is identical) and without spending budget.
// msgType (Comp) says which leg was retransmitted (bcp.probe or bcp.report).
func ProbeRetx(ts time.Duration, node p2p.NodeID, req uint64, to p2p.NodeID, msgType string, try int, pid uint64) Event {
	return Event{TS: ts, Kind: KindProbeRetx, Node: node, Req: req, Peer: to,
		Comp: msgType, Hops: try, PID: pid}
}
