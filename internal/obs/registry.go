package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/p2p"
)

// NodeCounters is one peer's monotonically increasing overhead counters.
// Producers cache the pointer once (at wiring time) and bump fields with
// Add(1). The fields are atomic so the admin endpoint (and any other
// observer) can snapshot counters while the live runtimes are moving them
// from many goroutines; in the single-threaded simulator the atomic add is
// uncontended and costs a few nanoseconds on runs that opted into counters.
type NodeCounters struct {
	MsgsSent  atomic.Int64 // messages this node put on the wire
	BytesSent atomic.Int64 // approximate wire bytes sent
	MsgsRecv  atomic.Int64 // messages delivered to this node
	MsgsDrop  atomic.Int64 // messages this node sent that were dropped

	ProbesSent     atomic.Int64 // BCP probes emitted (origin + forwards)
	ProbesDropped  atomic.Int64 // probes this node killed (QoS/resources/links)
	ProbesReturned atomic.Int64 // completed probes reported to a destination
	BudgetSpent    atomic.Int64 // probing budget carried by emitted probes
	ProbesRetx     atomic.Int64 // per-hop probe retransmits (same PID, no budget)
	ProbesShed     atomic.Int64 // probes declined by overload shedding (util over threshold)

	DHTHops atomic.Int64 // DHT messages this node forwarded

	Faults atomic.Int64 // injected network faults on messages this node sent

	FedPrepares atomic.Int64 // federation holds this gateway prepared
	FedCommits  atomic.Int64 // holds promoted to committed sessions
	FedAborts   atomic.Int64 // holds released (explicit abort or expiry)
}

// Snapshot reads every counter once and returns a plain copyable value.
func (c *NodeCounters) Snapshot() Counters {
	return Counters{
		MsgsSent:       c.MsgsSent.Load(),
		BytesSent:      c.BytesSent.Load(),
		MsgsRecv:       c.MsgsRecv.Load(),
		MsgsDrop:       c.MsgsDrop.Load(),
		ProbesSent:     c.ProbesSent.Load(),
		ProbesDropped:  c.ProbesDropped.Load(),
		ProbesReturned: c.ProbesReturned.Load(),
		BudgetSpent:    c.BudgetSpent.Load(),
		ProbesRetx:     c.ProbesRetx.Load(),
		ProbesShed:     c.ProbesShed.Load(),
		DHTHops:        c.DHTHops.Load(),
		Faults:         c.Faults.Load(),
		FedPrepares:    c.FedPrepares.Load(),
		FedCommits:     c.FedCommits.Load(),
		FedAborts:      c.FedAborts.Load(),
	}
}

// Counters is a plain snapshot of a NodeCounters block (or a sum of them).
// NodeCounters itself must not be copied — its atomic fields pin it in
// place — so aggregation and rendering work on this value type.
type Counters struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	MsgsDrop  int64

	ProbesSent     int64
	ProbesDropped  int64
	ProbesReturned int64
	BudgetSpent    int64
	ProbesRetx     int64
	ProbesShed     int64

	DHTHops int64

	Faults int64

	FedPrepares int64
	FedCommits  int64
	FedAborts   int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.MsgsSent += o.MsgsSent
	c.BytesSent += o.BytesSent
	c.MsgsRecv += o.MsgsRecv
	c.MsgsDrop += o.MsgsDrop
	c.ProbesSent += o.ProbesSent
	c.ProbesDropped += o.ProbesDropped
	c.ProbesReturned += o.ProbesReturned
	c.BudgetSpent += o.BudgetSpent
	c.ProbesRetx += o.ProbesRetx
	c.ProbesShed += o.ProbesShed
	c.DHTHops += o.DHTHops
	c.Faults += o.Faults
	c.FedPrepares += o.FedPrepares
	c.FedCommits += o.FedCommits
	c.FedAborts += o.FedAborts
}

// Registry hands out per-node counter blocks and rolls them up into the
// metrics tables the experiment harness prints. The map is guarded for the
// concurrent live runtime; simulation wiring resolves each node's block
// exactly once.
type Registry struct {
	mu    sync.Mutex
	nodes map[p2p.NodeID]*NodeCounters
}

// NewRegistry creates an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{nodes: make(map[p2p.NodeID]*NodeCounters)}
}

// Node returns id's counter block, creating it on first use. Callers keep
// the pointer; later calls return the same block.
func (r *Registry) Node(id p2p.NodeID) *NodeCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.nodes[id]
	if !ok {
		c = &NodeCounters{}
		r.nodes[id] = c
	}
	return c
}

// NumNodes returns how many nodes have counter blocks.
func (r *Registry) NumNodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Totals sums a snapshot of every node's counters.
func (r *Registry) Totals() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t Counters
	for _, c := range r.nodes {
		t.Add(c.Snapshot())
	}
	return t
}

// NodeSnapshot pairs a node ID with a point-in-time counter snapshot.
type NodeSnapshot struct {
	ID p2p.NodeID
	Counters
}

// Snapshot returns every node's counters, sorted by node ID, so renderers
// (the admin endpoint, JSON dumps) are deterministic.
func (r *Registry) Snapshot() []NodeSnapshot {
	r.mu.Lock()
	out := make([]NodeSnapshot, 0, len(r.nodes))
	for id, c := range r.nodes {
		out = append(out, NodeSnapshot{ID: id, Counters: c.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Table rolls the registry up into a rendered metrics table: one row per
// counter, summed over all nodes.
func (r *Registry) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "counter", "total")
	tot := r.Totals()
	t.AddRow("messages sent", tot.MsgsSent)
	t.AddRow("bytes sent", tot.BytesSent)
	t.AddRow("messages delivered", tot.MsgsRecv)
	t.AddRow("messages dropped", tot.MsgsDrop)
	t.AddRow("probes sent", tot.ProbesSent)
	t.AddRow("probes dropped", tot.ProbesDropped)
	t.AddRow("probes returned", tot.ProbesReturned)
	t.AddRow("probe budget spent", tot.BudgetSpent)
	t.AddRow("probe retransmits", tot.ProbesRetx)
	t.AddRow("probes shed", tot.ProbesShed)
	t.AddRow("dht hops", tot.DHTHops)
	t.AddRow("faults injected", tot.Faults)
	if tot.FedPrepares != 0 || tot.FedCommits != 0 || tot.FedAborts != 0 {
		t.AddRow("fed prepares", tot.FedPrepares)
		t.AddRow("fed commits", tot.FedCommits)
		t.AddRow("fed aborts", tot.FedAborts)
	}
	return t
}

// PerNodeTable lists the top busiest nodes by messages sent (all of them if
// top <= 0), for spotting hot spots. Rows are ordered by traffic, ties by
// node ID, so the table is deterministic.
func (r *Registry) PerNodeTable(title string, top int) *metrics.Table {
	r.mu.Lock()
	type row struct {
		id p2p.NodeID
		c  Counters
	}
	rows := make([]row, 0, len(r.nodes))
	for id, c := range r.nodes {
		rows = append(rows, row{id, c.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c.MsgsSent != rows[j].c.MsgsSent {
			return rows[i].c.MsgsSent > rows[j].c.MsgsSent
		}
		return rows[i].id < rows[j].id
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	t := metrics.NewTable(title, "node", "msgs", "bytes", "recv", "probes", "dropped", "returned", "dht-hops")
	for _, r := range rows {
		t.AddRow(int(r.id), r.c.MsgsSent, r.c.BytesSent, r.c.MsgsRecv,
			r.c.ProbesSent, r.c.ProbesDropped, r.c.ProbesReturned, r.c.DHTHops)
	}
	return t
}
