package obs

import (
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/p2p"
)

// NodeCounters is one peer's monotonically increasing overhead counters.
// Producers cache the pointer once (at wiring time) and bump plain fields:
// each node's protocol code is single-threaded in both runtimes, so no
// atomics are needed on the hot path. Read them only after the run (or from
// the owning node's event context).
type NodeCounters struct {
	MsgsSent  int64 // messages this node put on the wire
	BytesSent int64 // approximate wire bytes sent
	MsgsRecv  int64 // messages delivered to this node
	MsgsDrop  int64 // messages this node sent that were dropped

	ProbesSent     int64 // BCP probes emitted (origin + forwards)
	ProbesDropped  int64 // probes this node killed (QoS/resources/links)
	ProbesReturned int64 // completed probes reported to a destination
	BudgetSpent    int64 // probing budget carried by emitted probes

	DHTHops int64 // DHT messages this node forwarded
}

// add accumulates o into c.
func (c *NodeCounters) add(o *NodeCounters) {
	c.MsgsSent += o.MsgsSent
	c.BytesSent += o.BytesSent
	c.MsgsRecv += o.MsgsRecv
	c.MsgsDrop += o.MsgsDrop
	c.ProbesSent += o.ProbesSent
	c.ProbesDropped += o.ProbesDropped
	c.ProbesReturned += o.ProbesReturned
	c.BudgetSpent += o.BudgetSpent
	c.DHTHops += o.DHTHops
}

// Registry hands out per-node counter blocks and rolls them up into the
// metrics tables the experiment harness prints. The map is guarded for the
// concurrent live runtime; simulation wiring resolves each node's block
// exactly once.
type Registry struct {
	mu    sync.Mutex
	nodes map[p2p.NodeID]*NodeCounters
}

// NewRegistry creates an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{nodes: make(map[p2p.NodeID]*NodeCounters)}
}

// Node returns id's counter block, creating it on first use. Callers keep
// the pointer; later calls return the same block.
func (r *Registry) Node(id p2p.NodeID) *NodeCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.nodes[id]
	if !ok {
		c = &NodeCounters{}
		r.nodes[id] = c
	}
	return c
}

// NumNodes returns how many nodes have counter blocks.
func (r *Registry) NumNodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Totals sums every node's counters.
func (r *Registry) Totals() NodeCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t NodeCounters
	for _, c := range r.nodes {
		t.add(c)
	}
	return t
}

// Table rolls the registry up into a rendered metrics table: one row per
// counter, summed over all nodes.
func (r *Registry) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "counter", "total")
	tot := r.Totals()
	t.AddRow("messages sent", tot.MsgsSent)
	t.AddRow("bytes sent", tot.BytesSent)
	t.AddRow("messages delivered", tot.MsgsRecv)
	t.AddRow("messages dropped", tot.MsgsDrop)
	t.AddRow("probes sent", tot.ProbesSent)
	t.AddRow("probes dropped", tot.ProbesDropped)
	t.AddRow("probes returned", tot.ProbesReturned)
	t.AddRow("probe budget spent", tot.BudgetSpent)
	t.AddRow("dht hops", tot.DHTHops)
	return t
}

// PerNodeTable lists the top busiest nodes by messages sent (all of them if
// top <= 0), for spotting hot spots. Rows are ordered by traffic, ties by
// node ID, so the table is deterministic.
func (r *Registry) PerNodeTable(title string, top int) *metrics.Table {
	r.mu.Lock()
	type row struct {
		id p2p.NodeID
		c  NodeCounters
	}
	rows := make([]row, 0, len(r.nodes))
	for id, c := range r.nodes {
		rows = append(rows, row{id, *c})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c.MsgsSent != rows[j].c.MsgsSent {
			return rows[i].c.MsgsSent > rows[j].c.MsgsSent
		}
		return rows[i].id < rows[j].id
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	t := metrics.NewTable(title, "node", "msgs", "bytes", "recv", "probes", "dropped", "returned", "dht-hops")
	for _, r := range rows {
		t.AddRow(int(r.id), r.c.MsgsSent, r.c.BytesSent, r.c.MsgsRecv,
			r.c.ProbesSent, r.c.ProbesDropped, r.c.ProbesReturned, r.c.DHTHops)
	}
	return t
}
