package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/p2p"
)

// JSONLSink writes events as one JSON object per line through a buffered
// writer. Marshalling is hand-rolled (strconv appends into a reused scratch
// buffer), so a steady-state emission allocates nothing. Field order is
// fixed, so traces from identical runs are byte-identical.
//
// The sink is safe for concurrent use (the live runtime emits from many
// goroutines); under the single-threaded simulator the mutex is uncontended.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	n   int64
}

// NewJSONLSink wraps w in a buffered JSONL event writer. Call Flush before
// closing the underlying file.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Emit writes one event line.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	s.buf = appendEvent(s.buf[:0], ev)
	s.w.Write(s.buf)
	s.n++
	s.mu.Unlock()
}

// Count returns how many events have been emitted.
func (s *JSONLSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// appendEvent appends the fixed-order JSON encoding of ev plus a newline.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, int64(ev.TS), 10)
	b = append(b, `,"kind":`...)
	b = appendString(b, ev.Kind)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(ev.Node), 10)
	if ev.Req != 0 {
		b = append(b, `,"req":`...)
		b = strconv.AppendUint(b, ev.Req, 10)
	}
	if ev.PID != 0 {
		b = append(b, `,"pid":`...)
		b = strconv.AppendUint(b, ev.PID, 10)
	}
	if ev.PPID != 0 {
		b = append(b, `,"ppid":`...)
		b = strconv.AppendUint(b, ev.PPID, 10)
	}
	if ev.Peer != p2p.NoNode {
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(ev.Peer), 10)
	}
	if ev.Fn != "" {
		b = append(b, `,"fn":`...)
		b = appendString(b, ev.Fn)
	}
	if ev.Comp != "" {
		b = append(b, `,"comp":`...)
		b = appendString(b, ev.Comp)
	}
	if ev.Hops != 0 {
		b = append(b, `,"hops":`...)
		b = strconv.AppendInt(b, int64(ev.Hops), 10)
	}
	if ev.Budget != 0 {
		b = append(b, `,"budget":`...)
		b = strconv.AppendInt(b, int64(ev.Budget), 10)
	}
	if ev.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, int64(ev.Bytes), 10)
	}
	if ev.Dur != 0 {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, int64(ev.Dur), 10)
	}
	if ev.Dom != 0 {
		b = append(b, `,"dom":`...)
		b = strconv.AppendInt(b, int64(ev.Dom), 10)
	}
	if ev.Note != "" {
		b = append(b, `,"note":`...)
		b = appendString(b, ev.Note)
	}
	b = append(b, '}', '\n')
	return b
}

// appendString appends a JSON string. Event strings (kinds, component IDs,
// reasons) are plain ASCII; anything needing escapes takes the slow path.
func appendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// MemSink collects events in memory, for tests and in-process summaries.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *MemSink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns the number of collected events.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// MultiTracer fans one event out to several sinks (e.g. a file trace and an
// in-memory summary at once).
type MultiTracer []Tracer

// Emit forwards to every sink.
func (m MultiTracer) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// ScanTrace decodes a JSONL trace one event at a time, calling fn for each —
// the streaming path every trace consumer should prefer: memory stays
// O(longest line) regardless of trace size, so multi-gigabyte sweep traces
// scan without buffering. fn returning an error stops the scan and returns
// that error.
func ScanTrace(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := ev.UnmarshalJSON(raw); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadTrace parses a JSONL trace back into a buffered event slice. Prefer
// ScanTrace for anything that might see a large trace.
func ReadTrace(r io.Reader) ([]Event, error) {
	var out []Event
	err := ScanTrace(r, func(ev Event) error {
		out = append(out, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
