package obs

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// TraceFile is a JSONL trace sink backed by a file, optionally gzipped.
// Close flushes every layer and reports the first error — trace writers must
// surface flush failures in their exit code rather than truncate silently.
type TraceFile struct {
	*JSONLSink
	gz *gzip.Writer
	f  *os.File
}

// CreateTrace creates (truncates) a trace file at path. A ".gz" suffix
// selects transparent gzip compression; the JSONL content is identical
// either way, so seeded traces stay byte-comparable after decompression.
func CreateTrace(path string) (*TraceFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tf := &TraceFile{f: f}
	if strings.HasSuffix(path, ".gz") {
		tf.gz = gzip.NewWriter(f)
		tf.JSONLSink = NewJSONLSink(tf.gz)
	} else {
		tf.JSONLSink = NewJSONLSink(f)
	}
	return tf, nil
}

// Close flushes the sink, the gzip layer (if any), and the file, returning
// the first error encountered.
func (t *TraceFile) Close() error {
	err := t.Flush()
	if t.gz != nil {
		if e := t.gz.Close(); err == nil {
			err = e
		}
	}
	if e := t.f.Close(); err == nil {
		err = e
	}
	return err
}

// OpenTrace opens a trace file for reading, transparently decompressing
// gzip regardless of file name (detected by the 0x1f 0x8b magic bytes, so
// renamed or piped-through files still read correctly).
func OpenTrace(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &traceReader{r: zr, closers: []io.Closer{zr, f}}, nil
	}
	return &traceReader{r: br, closers: []io.Closer{f}}, nil
}

// LoadTrace reads all events from a (possibly gzipped) trace file. Prefer
// StreamTrace for consumers that can fold events as they arrive.
func LoadTrace(path string) ([]Event, error) {
	rc, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return ReadTrace(rc)
}

// StreamTrace decodes a (possibly gzipped) trace file one event at a time,
// calling fn for each — the constant-memory path for multi-GB sweep traces.
func StreamTrace(path string, fn func(Event) error) error {
	rc, err := OpenTrace(path)
	if err != nil {
		return err
	}
	defer rc.Close()
	return ScanTrace(rc, fn)
}

type traceReader struct {
	r       io.Reader
	closers []io.Closer
}

func (t *traceReader) Read(p []byte) (int, error) { return t.r.Read(p) }

func (t *traceReader) Close() error {
	var err error
	for _, c := range t.closers {
		if e := c.Close(); err == nil {
			err = e
		}
	}
	return err
}
