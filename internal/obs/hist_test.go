package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBounds(t *testing.T) {
	exp := ExpBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i, b := range exp {
		if b != want[i] {
			t.Fatalf("ExpBounds=%v want %v", exp, want)
		}
	}
	lin := LinearBounds(1, 1, 3)
	if lin[0] != 1 || lin[1] != 2 || lin[2] != 3 {
		t.Fatalf("LinearBounds=%v", lin)
	}
	for _, bad := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bad)
				}
			}()
			NewHistogram("bad", "x", bad)
		}()
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("lat", "ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count=%d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("Sum=%v", h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("Min=%v Max=%v", h.Min(), h.Max())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets: %v %v", bounds, counts)
	}
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 overflows.
	wantCounts := []int64{2, 1, 1, 1}
	for i, c := range counts {
		if c != wantCounts[i] {
			t.Fatalf("counts=%v want %v", counts, wantCounts)
		}
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatal("ObserveDuration did not record")
	}
	_, counts = h.Buckets()
	if counts[2] != 2 {
		t.Fatalf("20ms should land in le=100: %v", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", "x", []float64{10, 20, 30, 40, 50})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i % 50))
	}
	if q := h.Quantile(0); q != h.Min() {
		t.Fatalf("q0=%v min=%v", q, h.Min())
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("q1=%v max=%v", q, h.Max())
	}
	med := h.Quantile(0.5)
	if med < 10 || med > 40 {
		t.Fatalf("median=%v out of plausible range", med)
	}
	if p90 := h.Quantile(0.9); p90 < med {
		t.Fatalf("p90=%v below median %v", p90, med)
	}
	// Deterministic: same buckets, same estimate.
	if h.Quantile(0.5) != med {
		t.Fatal("quantile not deterministic")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("m", "x", []float64{1, 2, 4})
	b := NewHistogram("m", "x", []float64{1, 2, 4})
	a.Observe(1)
	a.Observe(3)
	b.Observe(0.5)
	b.Observe(8)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 4 || a.Min() != 0.5 || a.Max() != 8 {
		t.Fatalf("merged: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	if a.Sum() != 12.5 {
		t.Fatalf("merged sum=%v", a.Sum())
	}
	c := NewHistogram("m", "x", []float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("bound mismatch accepted")
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge accepted")
	}
}

func TestHistogramJSONDeterministic(t *testing.T) {
	build := func() *Histogram {
		h := NewHistogram("j", "ms", ExpBounds(1, 2, 8))
		for i := 0; i < 200; i++ { // top bound is 128, so 129..199 overflow
			h.Observe(float64(i))
		}
		return h
	}
	a := string(build().AppendJSON(nil))
	if b := string(build().AppendJSON(nil)); a != b {
		t.Fatalf("identical histograms encoded differently:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, `"name":"j"`) || !strings.Contains(a, `"le":"inf"`) {
		t.Fatalf("encoding: %s", a)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge("sessions")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 || g.Name() != "sessions" {
		t.Fatalf("gauge=%d name=%s", g.Value(), g.Name())
	}
}

func TestMetricsTableAndJSON(t *testing.T) {
	m := NewMetrics()
	m.SetupLatency.ObserveDuration(40 * time.Millisecond)
	m.ProbeHops.Observe(3)
	m.ActiveSessions.Set(2)
	tbl := m.Table("metrics").String()
	if !strings.Contains(tbl, "setup_latency_ms") || !strings.Contains(tbl, "probe_hops") {
		t.Fatalf("table:\n%s", tbl)
	}
	if strings.Contains(tbl, "dht_lookup_ms") {
		t.Fatalf("empty histograms should be omitted:\n%s", tbl)
	}
	js := string(m.AppendJSON(nil))
	if !strings.Contains(js, `"active_sessions":2`) {
		t.Fatalf("json: %s", js)
	}
}
