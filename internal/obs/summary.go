package obs

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// ReqSummary is the per-request breakdown the trace-summary reporter
// produces: where one composition's latency and overhead went.
type ReqSummary struct {
	Req  uint64
	Ok   bool
	Done bool // a compose.done event was seen

	Start   time.Duration // compose.start timestamp
	Latency time.Duration // compose.start -> compose.done

	ProbesSent     int // probe.sent + probe.forwarded
	ProbesDropped  int
	ProbesRetx     int // probe.retransmit (same PID back on the wire)
	ProbesReturned int
	Collected      int
	Candidates     int // from select.done
	Qualified      int
	Admits         int
	Rejects        int
	Bytes          int64 // probe bytes reported to the destination

	// Federation 2PC activity keyed to this request (fed.* events carry the
	// federated request ID in Req).
	FedPrepares int
	FedCommits  int
	FedAborts   int
}

// Summary aggregates a whole trace: per-kind counts plus per-request
// breakdowns.
type Summary struct {
	Events int
	Kinds  map[string]int
	Reqs   []ReqSummary // sorted by request ID

	// NetDowns / NetUps count node crash and recovery records; they carry no
	// request ID, so they aggregate globally rather than per request.
	NetDowns int
	NetUps   int

	// Span is the virtual time covered by the trace.
	Span time.Duration
}

// Summarizer folds a trace into a Summary one event at a time — the
// streaming counterpart of Summarize, for traces too large to buffer.
type Summarizer struct {
	s     Summary
	byReq map[uint64]*ReqSummary
}

// NewSummarizer creates an empty streaming summarizer.
func NewSummarizer() *Summarizer {
	return &Summarizer{
		s:     Summary{Kinds: make(map[string]int)},
		byReq: make(map[uint64]*ReqSummary),
	}
}

func (z *Summarizer) get(id uint64) *ReqSummary {
	rs, ok := z.byReq[id]
	if !ok {
		rs = &ReqSummary{Req: id}
		z.byReq[id] = rs
	}
	return rs
}

// Add folds one event into the summary.
func (z *Summarizer) Add(ev Event) {
	z.s.Events++
	z.s.Kinds[ev.Kind]++
	if ev.TS > z.s.Span {
		z.s.Span = ev.TS
	}
	switch ev.Kind {
	case KindNetDown:
		z.s.NetDowns++
	case KindNetUp:
		z.s.NetUps++
	}
	if ev.Req == 0 {
		return
	}
	rs := z.get(ev.Req)
	switch ev.Kind {
	case KindComposeStart:
		rs.Start = ev.TS
	case KindComposeDone:
		rs.Done = true
		rs.Ok = ev.Note == "ok"
		rs.Latency = ev.TS - rs.Start
	case KindProbeSent, KindProbeForwarded:
		rs.ProbesSent++
	case KindProbeDropped:
		rs.ProbesDropped++
	case KindProbeRetx:
		rs.ProbesRetx++
	case KindProbeReturned:
		rs.ProbesReturned++
		rs.Bytes += int64(ev.Bytes)
	case KindProbeCollected:
		rs.Collected++
	case KindSelectDone:
		rs.Candidates = ev.Hops
		rs.Qualified = ev.Budget
	case KindSessionAdmit:
		rs.Admits++
	case KindSessionReject:
		rs.Rejects++
	case KindFedPrepare:
		rs.FedPrepares++
	case KindFedCommit:
		rs.FedCommits++
	case KindFedAbort:
		rs.FedAborts++
	}
}

// Summary finalizes and returns the aggregate view. The summarizer may keep
// accepting events afterwards; each call re-finalizes.
func (z *Summarizer) Summary() *Summary {
	s := z.s
	s.Reqs = make([]ReqSummary, 0, len(z.byReq))
	for _, rs := range z.byReq {
		s.Reqs = append(s.Reqs, *rs)
	}
	sort.Slice(s.Reqs, func(i, j int) bool { return s.Reqs[i].Req < s.Reqs[j].Req })
	return &s
}

// Summarize folds a buffered trace into per-request latency/overhead
// breakdowns. Events with Req == 0 (DHT maintenance, network drops, node
// crash/recovery) only contribute to the kind counts and global tallies.
func Summarize(events []Event) *Summary {
	z := NewSummarizer()
	for _, ev := range events {
		z.Add(ev)
	}
	return z.Summary()
}

// Succeeded counts requests whose composition completed ok.
func (s *Summary) Succeeded() int {
	n := 0
	for _, r := range s.Reqs {
		if r.Done && r.Ok {
			n++
		}
	}
	return n
}

// Table renders the aggregate view: event volume, request outcomes, and
// mean probe overhead per request.
func (s *Summary) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "value")
	t.AddRow("events", s.Events)
	t.AddRow("trace span", s.Span)
	var done, ok int
	var lat metrics.Sample
	var probes, dropped, retx, returned int
	var prepares, commits, aborts int
	for _, r := range s.Reqs {
		if r.Done {
			done++
			if r.Ok {
				ok++
				lat.AddDuration(r.Latency)
			}
		}
		probes += r.ProbesSent
		dropped += r.ProbesDropped
		retx += r.ProbesRetx
		returned += r.ProbesReturned
		prepares += r.FedPrepares
		commits += r.FedCommits
		aborts += r.FedAborts
	}
	t.AddRow("requests traced", len(s.Reqs))
	t.AddRow("compositions completed", done)
	t.AddRow("compositions ok", ok)
	if lat.N() > 0 {
		t.AddRow("mean setup latency", time.Duration(lat.Mean()*float64(time.Millisecond)))
		t.AddRow("p95 setup latency", time.Duration(lat.Percentile(95)*float64(time.Millisecond)))
	}
	t.AddRow("probes sent", probes)
	t.AddRow("probes dropped", dropped)
	t.AddRow("probes returned", returned)
	if retx > 0 {
		t.AddRow("probe retransmits", retx)
	}
	if prepares > 0 || commits > 0 || aborts > 0 {
		t.AddRow("fed prepares", prepares)
		t.AddRow("fed commits", commits)
		t.AddRow("fed aborts", aborts)
	}
	if s.NetDowns > 0 || s.NetUps > 0 {
		t.AddRow("nodes crashed", s.NetDowns)
		t.AddRow("nodes recovered", s.NetUps)
	}
	if n := len(s.Reqs); n > 0 {
		t.AddRow("probes/request", float64(probes)/float64(n))
	}
	kinds := make([]string, 0, len(s.Kinds))
	for k := range s.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.AddRow("events."+k, s.Kinds[k])
	}
	return t
}

// RequestTable renders the per-request breakdown, one row per traced
// request.
func (s *Summary) RequestTable(title string) *metrics.Table {
	fed := false
	for _, r := range s.Reqs {
		if r.FedPrepares > 0 || r.FedCommits > 0 || r.FedAborts > 0 {
			fed = true
			break
		}
	}
	cols := []string{"req", "ok", "latency", "probes", "dropped", "retx", "returned", "candidates", "qualified", "admits"}
	if fed {
		cols = append(cols, "prep", "commit", "abort")
	}
	t := metrics.NewTable(title, cols...)
	for _, r := range s.Reqs {
		status := "pending"
		if r.Done {
			if r.Ok {
				status = "ok"
			} else {
				status = "fail"
			}
		}
		row := []any{r.Req, status, r.Latency, r.ProbesSent, r.ProbesDropped, r.ProbesRetx,
			r.ProbesReturned, r.Candidates, r.Qualified, r.Admits}
		if fed {
			row = append(row, r.FedPrepares, r.FedCommits, r.FedAborts)
		}
		t.AddRow(row...)
	}
	return t
}
