package obs

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// ReqSummary is the per-request breakdown the trace-summary reporter
// produces: where one composition's latency and overhead went.
type ReqSummary struct {
	Req  uint64
	Ok   bool
	Done bool // a compose.done event was seen

	Start   time.Duration // compose.start timestamp
	Latency time.Duration // compose.start -> compose.done

	ProbesSent     int // probe.sent + probe.forwarded
	ProbesDropped  int
	ProbesReturned int
	Collected      int
	Candidates     int // from select.done
	Qualified      int
	Admits         int
	Rejects        int
	Bytes          int64 // probe bytes reported to the destination
}

// Summary aggregates a whole trace: per-kind counts plus per-request
// breakdowns.
type Summary struct {
	Events int
	Kinds  map[string]int
	Reqs   []ReqSummary // sorted by request ID

	// Span is the virtual time covered by the trace.
	Span time.Duration
}

// Summarize folds a trace into per-request latency/overhead breakdowns.
// Events with Req == 0 (DHT maintenance, network drops) only contribute to
// the kind counts.
func Summarize(events []Event) *Summary {
	s := &Summary{Kinds: make(map[string]int)}
	byReq := make(map[uint64]*ReqSummary)
	get := func(id uint64) *ReqSummary {
		rs, ok := byReq[id]
		if !ok {
			rs = &ReqSummary{Req: id}
			byReq[id] = rs
		}
		return rs
	}
	for _, ev := range events {
		s.Events++
		s.Kinds[ev.Kind]++
		if ev.TS > s.Span {
			s.Span = ev.TS
		}
		if ev.Req == 0 {
			continue
		}
		rs := get(ev.Req)
		switch ev.Kind {
		case KindComposeStart:
			rs.Start = ev.TS
		case KindComposeDone:
			rs.Done = true
			rs.Ok = ev.Note == "ok"
			rs.Latency = ev.TS - rs.Start
		case KindProbeSent, KindProbeForwarded:
			rs.ProbesSent++
		case KindProbeDropped:
			rs.ProbesDropped++
		case KindProbeReturned:
			rs.ProbesReturned++
			rs.Bytes += int64(ev.Bytes)
		case KindProbeCollected:
			rs.Collected++
		case KindSelectDone:
			rs.Candidates = ev.Hops
			rs.Qualified = ev.Budget
		case KindSessionAdmit:
			rs.Admits++
		case KindSessionReject:
			rs.Rejects++
		}
	}
	s.Reqs = make([]ReqSummary, 0, len(byReq))
	for _, rs := range byReq {
		s.Reqs = append(s.Reqs, *rs)
	}
	sort.Slice(s.Reqs, func(i, j int) bool { return s.Reqs[i].Req < s.Reqs[j].Req })
	return s
}

// Succeeded counts requests whose composition completed ok.
func (s *Summary) Succeeded() int {
	n := 0
	for _, r := range s.Reqs {
		if r.Done && r.Ok {
			n++
		}
	}
	return n
}

// Table renders the aggregate view: event volume, request outcomes, and
// mean probe overhead per request.
func (s *Summary) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "value")
	t.AddRow("events", s.Events)
	t.AddRow("trace span", s.Span)
	var done, ok int
	var lat metrics.Sample
	var probes, dropped, returned int
	for _, r := range s.Reqs {
		if r.Done {
			done++
			if r.Ok {
				ok++
				lat.AddDuration(r.Latency)
			}
		}
		probes += r.ProbesSent
		dropped += r.ProbesDropped
		returned += r.ProbesReturned
	}
	t.AddRow("requests traced", len(s.Reqs))
	t.AddRow("compositions completed", done)
	t.AddRow("compositions ok", ok)
	if lat.N() > 0 {
		t.AddRow("mean setup latency", time.Duration(lat.Mean()*float64(time.Millisecond)))
		t.AddRow("p95 setup latency", time.Duration(lat.Percentile(95)*float64(time.Millisecond)))
	}
	t.AddRow("probes sent", probes)
	t.AddRow("probes dropped", dropped)
	t.AddRow("probes returned", returned)
	if n := len(s.Reqs); n > 0 {
		t.AddRow("probes/request", float64(probes)/float64(n))
	}
	kinds := make([]string, 0, len(s.Kinds))
	for k := range s.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.AddRow("events."+k, s.Kinds[k])
	}
	return t
}

// RequestTable renders the per-request breakdown, one row per traced
// request.
func (s *Summary) RequestTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "req", "ok", "latency", "probes", "dropped", "returned", "candidates", "qualified", "admits")
	for _, r := range s.Reqs {
		status := "pending"
		if r.Done {
			if r.Ok {
				status = "ok"
			} else {
				status = "fail"
			}
		}
		t.AddRow(r.Req, status, r.Latency, r.ProbesSent, r.ProbesDropped,
			r.ProbesReturned, r.Candidates, r.Qualified, r.Admits)
	}
	return t
}
