package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Histogram is a fixed-boundary bucket histogram: observations are folded
// into bucket counts at Observe time, so memory is O(buckets) regardless of
// traffic volume — unlike metrics.Sample, which retains every observation.
// Boundaries are fixed at construction (log buckets for latencies and byte
// sizes, linear for small integer quantities), which makes two histograms
// from identically seeded runs identical and makes Merge exact.
//
// The histogram is safe for concurrent use: the live runtimes observe from
// many goroutines and the admin endpoint snapshots while traffic flows. The
// simulator's single-threaded loop pays only an uncontended mutex, and all
// of it only on runs that opted into metrics (the wiring is nil-guarded).
type Histogram struct {
	name   string
	unit   string
	bounds []float64 // ascending upper bounds; a final +Inf bucket is implicit

	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is the +Inf overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given metric name (Prometheus
// style, e.g. "setup_latency_ms"), unit label, and ascending bucket upper
// bounds. Panics on empty or non-ascending bounds: boundaries are part of
// the metric's identity and a typo must not ship.
func NewHistogram(name, unit string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " has no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds not ascending")
		}
	}
	return &Histogram{
		name:   name,
		unit:   unit,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExpBounds returns n exponential bucket bounds: start, start*factor, ...
func ExpBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds returns n linear bucket bounds: start, start+step, ...
func LinearBounds(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Unit returns the unit label.
func (h *Histogram) Unit() string { return h.unit }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds, the unit every
// latency histogram in the metrics plane uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 for an empty histogram).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 for an empty histogram).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Buckets returns copies of the bucket upper bounds and counts. The last
// count is the +Inf overflow bucket, so len(counts) == len(bounds)+1.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...)
}

// Quantile estimates the q'th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank, clamped to the
// observed min/max. The estimate is deterministic: it depends only on the
// bucket counts, never on observation order.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo < h.min {
			lo = h.min
		}
		if hi < lo {
			hi = lo
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.max
}

// Merge folds o's buckets into h. The histograms must share identical
// boundaries (same metric identity); anything else is an error.
func (h *Histogram) Merge(o *Histogram) error {
	if h == o {
		return fmt.Errorf("obs: cannot merge histogram %s into itself", h.name)
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merge %s/%s: bucket count mismatch", h.name, o.name)
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: merge %s/%s: bounds differ at %d", h.name, o.name, i)
		}
	}
	o.mu.Lock()
	counts := append([]int64(nil), o.counts...)
	count, sum, min, max := o.count, o.sum, o.min, o.max
	o.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if count > 0 {
		if h.count == 0 || min < h.min {
			h.min = min
		}
		if h.count == 0 || max > h.max {
			h.max = max
		}
	}
	h.count += count
	h.sum += sum
	return nil
}

// AppendJSON appends the histogram's fixed-field-order JSON encoding:
//
//	{"name":..,"unit":..,"count":..,"sum":..,"min":..,"max":..,
//	 "buckets":[{"le":..,"n":..},...]}
//
// Only non-empty buckets are listed; the final bucket's "le" is "inf" for
// the overflow bucket. Field order and float formatting are fixed, so
// identical histograms encode byte-identically.
func (h *Histogram) AppendJSON(b []byte) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	b = append(b, `{"name":"`...)
	b = append(b, h.name...)
	b = append(b, `","unit":"`...)
	b = append(b, h.unit...)
	b = append(b, `","count":`...)
	b = strconv.AppendInt(b, h.count, 10)
	b = append(b, `,"sum":`...)
	b = appendFloat(b, h.sum)
	b = append(b, `,"min":`...)
	b = appendFloat(b, h.min)
	b = append(b, `,"max":`...)
	b = appendFloat(b, h.max)
	b = append(b, `,"buckets":[`...)
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"le":`...)
		if i < len(h.bounds) {
			b = appendFloat(b, h.bounds[i])
		} else {
			b = append(b, `"inf"`...)
		}
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, c, 10)
		b = append(b, '}')
	}
	b = append(b, ']', '}')
	return b
}

// MarshalJSON implements json.Marshaler via AppendJSON.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return h.AppendJSON(nil), nil
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Gauge is a named instantaneous value (e.g. active sessions). Atomic, so
// the live runtimes may move it from any goroutine while the admin endpoint
// reads it.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge creates a gauge with a Prometheus-style metric name.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v exceeds the current value (a running
// high-water mark). Safe under concurrent observers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Metrics is the online metrics plane: the standard distribution metrics
// every runtime wires into its hot paths. All fields are always non-nil on
// a Metrics built by NewMetrics; producers hold a possibly-nil *Metrics and
// guard each observation site with one pointer check, mirroring the Tracer
// convention.
type Metrics struct {
	// SetupLatency is the end-to-end session setup time of successful
	// compositions (compose.start -> compose.done ok), in milliseconds —
	// the distribution behind the paper's Figure 10.
	SetupLatency *Histogram
	// DiscoveryLatency is the decentralized discovery phase duration of
	// every composition, in milliseconds — the first of the four setup
	// phases (discovery → probe → collect → commit).
	DiscoveryLatency *Histogram
	// PhaseProbe is the probe fan-out phase of each successful composition:
	// first probe emission to the destination's last collected report, in
	// milliseconds.
	PhaseProbe *Histogram
	// PhaseCollect is the destination's residual collection window: last
	// collected report to optimal-selection completion, in milliseconds.
	PhaseCollect *Histogram
	// PhaseCommit is the reverse-path session commit phase: selection done
	// to the source receiving the established session, in milliseconds.
	PhaseCommit *Histogram
	// ProbeHops is the hop count of each probe that completed its branch
	// and reported to the destination.
	ProbeHops *Histogram
	// ProbeBudget is the probing budget carried by each emitted probe —
	// the per-probe overhead knob of §4.2.
	ProbeBudget *Histogram
	// DHTLookup is the latency of each successful DHT Get, in milliseconds.
	DHTLookup *Histogram
	// Switchover is the session-broken-to-repaired duration of each
	// proactive switchover recovery, in milliseconds (§5).
	Switchover *Histogram
	// WireBytes is the approximate wire size of every message sent, in
	// bytes.
	WireBytes *Histogram
	// PeerLoad is the utilization (in [0,1]) each peer observed on itself
	// while handling a probe — the load distribution the overload control
	// plane acts on.
	PeerLoad *Histogram
	// ActiveSessions counts sessions currently owned by recovery managers.
	ActiveSessions *Gauge
	// PeerLoadMax is the highest per-peer utilization seen anywhere, in
	// permille (0..1000), a high-water mark for spotting hotspots.
	PeerLoadMax *Gauge
}

// NewMetrics builds the standard metric set with its canonical boundaries.
func NewMetrics() *Metrics {
	latency := ExpBounds(0.5, 2, 18) // 0.5ms .. ~65.5s
	return &Metrics{
		SetupLatency:     NewHistogram("setup_latency_ms", "ms", latency),
		DiscoveryLatency: NewHistogram("discovery_latency_ms", "ms", latency),
		PhaseProbe:       NewHistogram("phase_probe_ms", "ms", latency),
		PhaseCollect:     NewHistogram("phase_collect_ms", "ms", latency),
		PhaseCommit:      NewHistogram("phase_commit_ms", "ms", latency),
		ProbeHops:        NewHistogram("probe_hops", "hops", LinearBounds(1, 1, 16)),
		ProbeBudget:      NewHistogram("probe_budget", "units", LinearBounds(1, 1, 16)),
		DHTLookup:        NewHistogram("dht_lookup_ms", "ms", latency),
		Switchover:       NewHistogram("recovery_switchover_ms", "ms", latency),
		WireBytes:        NewHistogram("wire_bytes", "bytes", ExpBounds(32, 2, 16)), // 32B .. 1MiB
		PeerLoad:         NewHistogram("peer_load", "util", LinearBounds(0.05, 0.05, 20)),
		ActiveSessions:   NewGauge("active_sessions"),
		PeerLoadMax:      NewGauge("peer_load_max_permille"),
	}
}

// Histograms lists every histogram in fixed declaration order, for
// deterministic rendering.
func (m *Metrics) Histograms() []*Histogram {
	return []*Histogram{
		m.SetupLatency, m.DiscoveryLatency, m.PhaseProbe, m.PhaseCollect,
		m.PhaseCommit, m.ProbeHops, m.ProbeBudget,
		m.DHTLookup, m.Switchover, m.WireBytes, m.PeerLoad,
	}
}

// PhaseHistograms lists the per-phase setup-latency histograms in phase
// order: discovery, probe fan-out, collection tail, reverse-path commit.
// Their per-request sum is the setup latency of SetupLatency.
func (m *Metrics) PhaseHistograms() []*Histogram {
	return []*Histogram{m.DiscoveryLatency, m.PhaseProbe, m.PhaseCollect, m.PhaseCommit}
}

// PhaseTable renders the per-phase latency breakdown of successful session
// setups: one row per phase with count, mean, and tail quantiles.
func (m *Metrics) PhaseTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "phase", "count", "mean", "p50", "p90", "p99", "max")
	names := []string{"discovery", "probe", "collect", "commit"}
	for i, h := range m.PhaseHistograms() {
		t.AddRow(names[i], h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
	}
	return t
}

// Gauges lists every gauge in fixed declaration order.
func (m *Metrics) Gauges() []*Gauge {
	return []*Gauge{m.ActiveSessions, m.PeerLoadMax}
}

// Table renders the non-empty histograms as a quantile summary table.
func (m *Metrics) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "unit", "count", "mean", "p50", "p90", "p99", "max")
	for _, h := range m.Histograms() {
		if h.Count() == 0 {
			continue
		}
		t.AddRow(h.Name(), h.Unit(), h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
	}
	return t
}

// AppendJSON appends the fixed-order JSON encoding of the whole metric set.
func (m *Metrics) AppendJSON(b []byte) []byte {
	b = append(b, `{"histograms":[`...)
	for i, h := range m.Histograms() {
		if i > 0 {
			b = append(b, ',')
		}
		b = h.AppendJSON(b)
	}
	b = append(b, `],"gauges":{`...)
	for i, g := range m.Gauges() {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, g.Name()...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, g.Value(), 10)
	}
	b = append(b, '}', '}')
	return b
}

// MarshalJSON implements json.Marshaler via AppendJSON.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return m.AppendJSON(nil), nil
}
