package obs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/p2p"
)

// Violation is one broken trace invariant: a stable machine-checkable name
// plus a human-readable detail. An empty violation list is the correctness
// gate's passing verdict.
type Violation struct {
	Name   string
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// Violation names reported by Check/CheckTotals.
const (
	VioProbeMissingPID   = "probe-missing-pid"
	VioProbeDuplicatePID = "probe-duplicate-pid"
	VioProbeUnknownPID   = "probe-unknown-pid"
	VioProbeDoubleTerm   = "probe-double-termination"
	VioProbeConservation = "probe-conservation"
	VioBudgetExceeded    = "budget-exceeded"
	VioEstabWithoutAdmit = "establish-without-admit"
	VioDoneWithoutStart  = "done-without-start"
	VioDoneBeforeStart   = "done-before-start"
	VioMultipleDone      = "multiple-done"
	VioCounterMismatch   = "counter-mismatch"

	VioFedDoublePrepare  = "fed-double-prepare"
	VioFedDoubleResolve  = "fed-double-resolve"
	VioFedResolveNoPrep  = "fed-resolve-without-prepare"
	VioFedUnresolved     = "fed-unresolved-prepare"
	VioFedDomainMismatch = "fed-domain-mismatch"
)

// Check replays a trace and verifies protocol invariants that must hold on
// any complete run, regardless of seed, workload, or churn:
//
//   - every emitted probe (probe.sent / probe.forwarded) carries a unique
//     PID and resolves exactly one way: it dies with a probe.dropped
//     record, completes with a probe.returned record, or is consumed by
//     splitting into child probes (emissions carrying its PID as their
//     PPID). Wire-copy accounting is exact per PID: a probe has
//     1 + retransmits + injected duplications copies on the wire, and a
//     probe that resolves no way at all must have lost every copy to the
//     network (net.drop of a bcp.probe message, or an injected loss or
//     partition net.fault) — while a resolved probe must have had at least
//     one surviving copy. Nothing may leak silently;
//   - a child probe's budget never exceeds its parent's (the split of
//     §4.2 only divides), and origin probes never exceed the request budget
//     announced in compose.start;
//   - a session establishes only after at least one peer admitted it
//     (session.admit at or before session.establish);
//   - compose.done happens at most once per request, after its
//     compose.start;
//   - the federation two-phase commit leaks nothing: every fed.prepare
//     (keyed by its sub-session PID) is resolved by exactly one fed.commit
//     or fed.abort — including the presumed-abort expiry, which traces as
//     fed.abort with note "expire" — at the same node and domain, at or
//     after the prepare. The only excused unresolved prepare is one whose
//     holding gateway crashed (a net.down record at or after the prepare):
//     a dead peer cannot emit its own release.
//
// Traces cut off mid-run (a simulator duration expiring with probes in
// flight) can legitimately fail the conservation check; the seeded CI runs
// are sized so all probing settles before the cutoff.
func Check(events []Event) []Violation {
	c := NewChecker()
	for _, ev := range events {
		c.Add(ev)
	}
	return c.Finish()
}

type emission struct {
	req    uint64
	ppid   uint64
	budget int
}

// Checker is the streaming form of Check: feed events with Add as they are
// decoded, then call Finish for the verdict. Working state is O(protocol
// units), not O(events), so multi-GB traces check in bounded memory.
type Checker struct {
	vs []Violation

	emitted  map[uint64]emission
	terms    map[uint64]int
	children map[uint64]int // pid -> child emissions split from it
	starts   map[uint64]Event
	dones    []Event
	admitMin map[uint64]time.Duration
	estabs   []Event
	// Per-PID wire-copy accounting: a probe starts with one copy at
	// emission; retransmits and injected duplications add copies; net.drop
	// and lethal net.fault records (loss, partition) consume them.
	extraCopies map[uint64]int
	wireDrops   map[uint64]int
	strayPIDs   []uint64 // drop/retx/fault records naming unemitted pids
	// Federation 2PC lifecycle, keyed by sub-session PID.
	fedPrep         map[uint64]Event
	fedPrepCount    map[uint64]int
	fedResolve      map[uint64]Event
	fedResolveCount map[uint64]int
	downs           map[p2p.NodeID][]time.Duration
}

// NewChecker creates an empty streaming invariant checker.
func NewChecker() *Checker {
	return &Checker{
		emitted:         make(map[uint64]emission),
		terms:           make(map[uint64]int),
		children:        make(map[uint64]int),
		starts:          make(map[uint64]Event),
		admitMin:        make(map[uint64]time.Duration),
		extraCopies:     make(map[uint64]int),
		wireDrops:       make(map[uint64]int),
		fedPrep:         make(map[uint64]Event),
		fedPrepCount:    make(map[uint64]int),
		fedResolve:      make(map[uint64]Event),
		fedResolveCount: make(map[uint64]int),
		downs:           make(map[p2p.NodeID][]time.Duration),
	}
}

// Add folds one event into the checker's state.
func (c *Checker) Add(ev Event) {
	switch ev.Kind {
	case KindFedPrepare:
		if c.fedPrepCount[ev.PID] == 0 {
			c.fedPrep[ev.PID] = ev
		}
		c.fedPrepCount[ev.PID]++
	case KindFedCommit, KindFedAbort:
		if c.fedResolveCount[ev.PID] == 0 {
			c.fedResolve[ev.PID] = ev
		}
		c.fedResolveCount[ev.PID]++
	case KindNetDown:
		c.downs[ev.Node] = append(c.downs[ev.Node], ev.TS)
	}
	switch ev.Kind {
	case KindProbeSent, KindProbeForwarded:
		if ev.PID == 0 {
			c.vs = append(c.vs, Violation{VioProbeMissingPID,
				fmt.Sprintf("%s at t=%v node=%d req=%d has no pid", ev.Kind, ev.TS, ev.Node, ev.Req)})
			return
		}
		if _, dup := c.emitted[ev.PID]; dup {
			c.vs = append(c.vs, Violation{VioProbeDuplicatePID,
				fmt.Sprintf("pid=%d emitted twice (req=%d)", ev.PID, ev.Req)})
			return
		}
		c.emitted[ev.PID] = emission{req: ev.Req, ppid: ev.PPID, budget: ev.Budget}
		if ev.PPID != 0 {
			c.children[ev.PPID]++
		}
	case KindProbeDropped, KindProbeReturned:
		if ev.PID == 0 {
			c.vs = append(c.vs, Violation{VioProbeMissingPID,
				fmt.Sprintf("%s at t=%v node=%d req=%d has no pid", ev.Kind, ev.TS, ev.Node, ev.Req)})
			return
		}
		c.terms[ev.PID]++
	case KindComposeStart:
		if _, seen := c.starts[ev.Req]; !seen {
			c.starts[ev.Req] = ev
		}
	case KindComposeDone:
		c.dones = append(c.dones, ev)
	case KindSessionAdmit:
		if t, ok := c.admitMin[ev.Req]; !ok || ev.TS < t {
			c.admitMin[ev.Req] = ev.TS
		}
	case KindSessionEstab:
		c.estabs = append(c.estabs, ev)
	case KindNetDrop:
		if ev.Note == "bcp.probe" {
			if ev.PID == 0 {
				c.vs = append(c.vs, Violation{VioProbeMissingPID,
					fmt.Sprintf("net.drop of bcp.probe at t=%v %d->%d has no pid", ev.TS, ev.Node, ev.Peer)})
				return
			}
			c.wireDrops[ev.PID]++
			c.strayPIDs = append(c.strayPIDs, ev.PID)
		}
	case KindNetFault:
		if ev.Comp != "bcp.probe" {
			return
		}
		if ev.PID == 0 {
			c.vs = append(c.vs, Violation{VioProbeMissingPID,
				fmt.Sprintf("net.fault(%s) of bcp.probe at t=%v %d->%d has no pid", ev.Note, ev.TS, ev.Node, ev.Peer)})
			return
		}
		switch ev.Note {
		case FaultLoss, FaultPartition:
			c.wireDrops[ev.PID]++
		case FaultDup:
			c.extraCopies[ev.PID]++
		}
		c.strayPIDs = append(c.strayPIDs, ev.PID)
	case KindProbeRetx:
		if ev.Comp != "bcp.probe" {
			return
		}
		if ev.PID == 0 {
			c.vs = append(c.vs, Violation{VioProbeMissingPID,
				fmt.Sprintf("probe.retransmit at t=%v node=%d req=%d has no pid", ev.TS, ev.Node, ev.Req)})
			return
		}
		c.extraCopies[ev.PID]++
		c.strayPIDs = append(c.strayPIDs, ev.PID)
	}
}

// Finish runs the whole-trace accounting over the accumulated state and
// returns every violation found, including those reported during Add.
func (c *Checker) Finish() []Violation {
	vs := c.vs
	emitted, terms, children := c.emitted, c.terms, c.children
	starts, dones, admitMin, estabs := c.starts, c.dones, c.admitMin, c.estabs
	extraCopies, wireDrops, strayPIDs := c.extraCopies, c.wireDrops, c.strayPIDs
	fedPrep, fedPrepCount := c.fedPrep, c.fedPrepCount
	fedResolve, fedResolveCount := c.fedResolve, c.fedResolveCount
	downs := c.downs

	// Probe accounting, in pid order for deterministic reports.
	pids := make([]uint64, 0, len(emitted))
	for pid := range emitted {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		em := emitted[pid]
		copies := 1 + extraCopies[pid]
		drops := wireDrops[pid]
		switch n := terms[pid]; {
		case n == 0:
			if children[pid] == 0 && drops != copies {
				// Exact conservation: an unaccounted probe must have lost
				// every wire copy — no more, no fewer.
				vs = append(vs, Violation{VioProbeConservation,
					fmt.Sprintf("pid=%d (req=%d) unresolved but %d of %d wire copies dropped", pid, em.req, drops, copies)})
			}
		case n > 1:
			vs = append(vs, Violation{VioProbeDoubleTerm,
				fmt.Sprintf("pid=%d (req=%d) terminated %d times", pid, em.req, n)})
		}
		if (terms[pid] > 0 || children[pid] > 0) && drops >= copies {
			// The probe made progress, so at least one copy must have
			// survived the wire.
			vs = append(vs, Violation{VioProbeConservation,
				fmt.Sprintf("pid=%d (req=%d) resolved but all %d wire copies dropped (%d drops)", pid, em.req, copies, drops)})
		}
		if em.ppid != 0 {
			parent, ok := emitted[em.ppid]
			if !ok {
				vs = append(vs, Violation{VioProbeUnknownPID,
					fmt.Sprintf("pid=%d (req=%d) split from unknown parent pid=%d", pid, em.req, em.ppid)})
			} else if em.budget > parent.budget {
				vs = append(vs, Violation{VioBudgetExceeded,
					fmt.Sprintf("pid=%d budget=%d exceeds parent pid=%d budget=%d (req=%d)",
						pid, em.budget, em.ppid, parent.budget, em.req)})
			}
		} else if st, ok := starts[em.req]; ok && st.Budget > 0 && em.budget > st.Budget {
			vs = append(vs, Violation{VioBudgetExceeded,
				fmt.Sprintf("origin pid=%d budget=%d exceeds request budget=%d (req=%d)",
					pid, em.budget, st.Budget, em.req)})
		}
	}
	// Terminations of probes that were never emitted.
	tpids := make([]uint64, 0, len(terms))
	for pid := range terms {
		if _, ok := emitted[pid]; !ok {
			tpids = append(tpids, pid)
		}
	}
	sort.Slice(tpids, func(i, j int) bool { return tpids[i] < tpids[j] })
	for _, pid := range tpids {
		vs = append(vs, Violation{VioProbeUnknownPID,
			fmt.Sprintf("pid=%d terminated but never emitted", pid)})
	}
	// Wire records (drops, faults, retransmits) naming probes that were
	// never emitted — deduplicated, in pid order.
	sort.Slice(strayPIDs, func(i, j int) bool { return strayPIDs[i] < strayPIDs[j] })
	var lastStray uint64
	for _, pid := range strayPIDs {
		if _, ok := emitted[pid]; ok || pid == lastStray {
			continue
		}
		lastStray = pid
		vs = append(vs, Violation{VioProbeUnknownPID,
			fmt.Sprintf("pid=%d has wire drop/fault/retransmit records but was never emitted", pid)})
	}

	// Composition lifecycle.
	doneSeen := make(map[uint64]bool)
	for _, ev := range dones {
		st, ok := starts[ev.Req]
		switch {
		case !ok:
			vs = append(vs, Violation{VioDoneWithoutStart,
				fmt.Sprintf("compose.done req=%d at t=%v without compose.start", ev.Req, ev.TS)})
		case ev.TS < st.TS:
			vs = append(vs, Violation{VioDoneBeforeStart,
				fmt.Sprintf("compose.done req=%d at t=%v precedes compose.start at t=%v", ev.Req, ev.TS, st.TS)})
		}
		if doneSeen[ev.Req] {
			vs = append(vs, Violation{VioMultipleDone,
				fmt.Sprintf("compose.done req=%d emitted more than once", ev.Req)})
		}
		doneSeen[ev.Req] = true
	}

	// Federation 2PC lifecycle, in sub-session PID order.
	fedPIDs := make([]uint64, 0, len(fedPrep)+len(fedResolve))
	for pid := range fedPrep {
		fedPIDs = append(fedPIDs, pid)
	}
	for pid := range fedResolve {
		if _, ok := fedPrep[pid]; !ok {
			fedPIDs = append(fedPIDs, pid)
		}
	}
	sort.Slice(fedPIDs, func(i, j int) bool { return fedPIDs[i] < fedPIDs[j] })
	for _, pid := range fedPIDs {
		prep, prepared := fedPrep[pid]
		res, resolved := fedResolve[pid]
		if n := fedPrepCount[pid]; n > 1 {
			vs = append(vs, Violation{VioFedDoublePrepare,
				fmt.Sprintf("sub=%d (fed=%d) prepared %d times", pid, prep.Req, n)})
		}
		if n := fedResolveCount[pid]; n > 1 {
			vs = append(vs, Violation{VioFedDoubleResolve,
				fmt.Sprintf("sub=%d (fed=%d) resolved %d times", pid, res.Req, n)})
		}
		switch {
		case resolved && !prepared:
			vs = append(vs, Violation{VioFedResolveNoPrep,
				fmt.Sprintf("%s sub=%d (fed=%d) at t=%v without fed.prepare", res.Kind, pid, res.Req, res.TS)})
		case resolved && res.TS < prep.TS:
			vs = append(vs, Violation{VioFedResolveNoPrep,
				fmt.Sprintf("%s sub=%d at t=%v precedes fed.prepare at t=%v", res.Kind, pid, res.TS, prep.TS)})
		case resolved && (res.Node != prep.Node || res.Dom != prep.Dom):
			vs = append(vs, Violation{VioFedDomainMismatch,
				fmt.Sprintf("sub=%d prepared at node=%d dom=%d but resolved at node=%d dom=%d",
					pid, prep.Node, prep.Domain(), res.Node, res.Domain())})
		case !resolved:
			// A prepare may go unresolved only if its holding gateway
			// crashed after preparing — a dead peer cannot emit the release.
			crashed := false
			for _, t := range downs[prep.Node] {
				if t >= prep.TS {
					crashed = true
					break
				}
			}
			if !crashed {
				vs = append(vs, Violation{VioFedUnresolved,
					fmt.Sprintf("fed.prepare sub=%d (fed=%d) at t=%v node=%d never committed, aborted, or expired",
						pid, prep.Req, prep.TS, prep.Node)})
			}
		}
	}

	// Sessions admit before they establish.
	for _, ev := range estabs {
		t, ok := admitMin[ev.Req]
		if !ok {
			vs = append(vs, Violation{VioEstabWithoutAdmit,
				fmt.Sprintf("session.establish req=%d at t=%v with no session.admit", ev.Req, ev.TS)})
		} else if t > ev.TS {
			vs = append(vs, Violation{VioEstabWithoutAdmit,
				fmt.Sprintf("session.establish req=%d at t=%v precedes first session.admit at t=%v", ev.Req, ev.TS, t)})
		}
	}

	return vs
}

// CheckTotals verifies that registry counter totals match the event counts
// derivable from the same run's trace — the cross-consistency gate between
// the two telemetry paths. Only counters whose producers are mirrored by a
// trace emission are compared (message/byte counters have no per-event
// trace records and are skipped).
func CheckTotals(events []Event, tot Counters) []Violation {
	var sent, dropped, returned, budget, retx, dhtHops, netDrops, faults int64
	var fedPrepares, fedCommits, fedAborts int64
	for _, ev := range events {
		switch ev.Kind {
		case KindProbeSent, KindProbeForwarded:
			sent++
			budget += int64(ev.Budget)
		case KindProbeDropped:
			dropped++
		case KindProbeReturned:
			returned++
		case KindProbeRetx:
			retx++
		case KindDHTHop:
			dhtHops++
		case KindNetDrop:
			netDrops++
		case KindNetFault:
			faults++
		case KindFedPrepare:
			fedPrepares++
		case KindFedCommit:
			fedCommits++
		case KindFedAbort:
			fedAborts++
		}
	}
	var vs []Violation
	mismatch := func(what string, reg, trace int64) {
		if reg != trace {
			vs = append(vs, Violation{VioCounterMismatch,
				fmt.Sprintf("%s: registry=%d trace=%d", what, reg, trace)})
		}
	}
	mismatch("probes sent", tot.ProbesSent, sent)
	mismatch("probes dropped", tot.ProbesDropped, dropped)
	mismatch("probes returned", tot.ProbesReturned, returned)
	mismatch("probe budget spent", tot.BudgetSpent, budget)
	mismatch("probe retransmits", tot.ProbesRetx, retx)
	mismatch("dht hops", tot.DHTHops, dhtHops)
	mismatch("messages dropped", tot.MsgsDrop, netDrops)
	mismatch("faults injected", tot.Faults, faults)
	mismatch("fed prepares", tot.FedPrepares, fedPrepares)
	mismatch("fed commits", tot.FedCommits, fedCommits)
	mismatch("fed aborts", tot.FedAborts, fedAborts)
	return vs
}
