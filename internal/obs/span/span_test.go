package span

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
)

const goldenTrace = "../../../testdata/golden_trace.jsonl.gz"

func buildGolden(t *testing.T) *Forest {
	t.Helper()
	b := NewBuilder()
	if err := obs.StreamTrace(goldenTrace, func(ev obs.Event) error {
		b.Add(ev)
		return nil
	}); err != nil {
		t.Fatalf("stream golden trace: %v", err)
	}
	return b.Build()
}

func TestGoldenTreeShape(t *testing.T) {
	f := buildGolden(t)
	if len(f.Trees) == 0 {
		t.Fatal("no trees built from golden trace")
	}
	if len(f.Orphans) != 0 {
		t.Fatalf("golden trace produced orphans: %+v", f.Orphans)
	}
	for _, tr := range f.Trees {
		if !tr.Done {
			t.Errorf("req %d never completed in golden trace", tr.Req)
		}
		if tr.Root == nil || tr.Root.Kind != "compose" {
			t.Fatalf("req %d root is not a compose span", tr.Req)
		}
		if tr.Root.Dur() != tr.Wall {
			t.Errorf("req %d root span %v != wall %v", tr.Req, tr.Root.Dur(), tr.Wall)
		}
		kinds := map[string]int{}
		tr.Root.Walk(func(sp *Span, depth int) {
			kinds[sp.Kind]++
			if sp.End < sp.Start {
				t.Errorf("req %d span %q ends before it starts", tr.Req, sp.Name)
			}
			if sp.Start < tr.Root.Start || sp.End > tr.Root.End {
				t.Errorf("req %d span %q [%v,%v] escapes root [%v,%v]",
					tr.Req, sp.Name, sp.Start, sp.End, tr.Root.Start, tr.Root.End)
			}
		})
		if kinds["discovery"] != 1 {
			t.Errorf("req %d: %d discovery spans", tr.Req, kinds["discovery"])
		}
		if tr.Ok {
			if kinds["probe"] == 0 {
				t.Errorf("req %d succeeded without probe spans", tr.Req)
			}
			if kinds["collect"] != 1 || kinds["commit"] != 1 {
				t.Errorf("req %d: collect=%d commit=%d spans", tr.Req, kinds["collect"], kinds["commit"])
			}
			if kinds["admit"] == 0 {
				t.Errorf("req %d succeeded without admissions", tr.Req)
			}
		}
	}
}

func TestGoldenPhasesPartitionWall(t *testing.T) {
	f := buildGolden(t)
	okTrees := 0
	f.All(func(tr *Tree) {
		p := tr.Phases
		if p.Total() != tr.Wall {
			t.Errorf("req %d phases sum %v != wall %v", tr.Req, p.Total(), tr.Wall)
		}
		if p.Named() > tr.Wall {
			t.Errorf("req %d named phases %v exceed wall %v", tr.Req, p.Named(), tr.Wall)
		}
		for _, d := range []time.Duration{p.Discovery, p.Probe, p.Collect, p.Commit, p.Wait} {
			if d < 0 {
				t.Errorf("req %d has a negative phase: %+v", tr.Req, p)
			}
		}
		if tr.Ok {
			okTrees++
			// The acceptance bar: ≥95% of every successful setup's latency is
			// attributed to a named phase (the partition makes it exactly 100%).
			if p.Attribution() < 0.95 {
				t.Errorf("req %d attribution %.2f < 0.95 (%+v)", tr.Req, p.Attribution(), p)
			}
		}
	})
	if okTrees == 0 {
		t.Fatal("golden trace has no successful setups to check attribution on")
	}
}

func TestGoldenCriticalPathEndsAtTerminal(t *testing.T) {
	f := buildGolden(t)
	f.All(func(tr *Tree) {
		if len(tr.Critical) < 2 {
			t.Fatalf("req %d critical path too short: %+v", tr.Req, tr.Critical)
		}
		first, last := tr.Critical[0], tr.Critical[len(tr.Critical)-1]
		if first.What != "compose.start" {
			t.Errorf("req %d critical path starts at %q", tr.Req, first.What)
		}
		if !strings.HasPrefix(last.What, "compose.done") {
			t.Errorf("req %d critical path ends at %q, not the terminal event", tr.Req, last.What)
		}
		var gaps time.Duration
		for i, st := range tr.Critical {
			if i > 0 && st.TS < tr.Critical[i-1].TS {
				t.Errorf("req %d critical path goes back in time at step %d", tr.Req, i)
			}
			gaps += st.Gap
		}
		if gaps != last.TS-first.TS {
			t.Errorf("req %d gaps sum %v != span %v", tr.Req, gaps, last.TS-first.TS)
		}
		if tr.Done && last.TS-first.TS != tr.Wall {
			t.Errorf("req %d critical path covers %v, wall is %v", tr.Req, last.TS-first.TS, tr.Wall)
		}
	})
}

func TestGoldenReportsDeterministic(t *testing.T) {
	render := func() string {
		f := buildGolden(t)
		var b strings.Builder
		b.WriteString(Summary(f, "summary").String())
		b.WriteString(PhaseTable(f, "phases").String())
		b.WriteString(SlowTable(f, 5, "slow").String())
		for _, tr := range f.Slowest(3) {
			b.WriteString(Waterfall(tr))
			b.WriteString(Critical(tr))
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("identical traces rendered different reports")
	}
}

func TestOrphansReportedNotDropped(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	b := NewBuilder()
	b.Add(obs.ComposeStart(0, 3, 42, 2, 10))
	// Malformed lineage: forwarded probe whose parent was never emitted.
	b.Add(obs.ProbeSent(ms(1), 7, 42, 9, "fn2", "p9/fn2.1", 5, 1, 102, 999))
	// Termination of a probe that never existed.
	b.Add(obs.ProbeReturned(ms(2), 9, 42, 1, 2, 256, 555))
	// Collection referencing an unknown probe.
	b.Add(obs.ProbeCollected(ms(3), 1, 42, 9, 2, 777))
	// Request with activity but no compose.start.
	b.Add(obs.SelectDone(ms(4), 1, 99, 3, 1))
	b.Add(obs.ComposeDone(ms(5), 3, 42, false, ms(5)))
	f := b.Build()

	wantReasons := []string{
		"probe split from unknown parent",
		"termination of unknown probe",
		"collected unknown probe",
		"request without compose.start",
	}
	for _, want := range wantReasons {
		found := false
		for _, o := range f.Orphans {
			if o.Reason == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("orphan reason %q not reported; got %+v", want, f.Orphans)
		}
	}
	// Orphaned events still appear in the trees instead of vanishing.
	tr := f.Tree(42)
	if tr == nil {
		t.Fatal("tree 42 missing")
	}
	probes := 0
	tr.Root.Walk(func(sp *Span, _ int) {
		if sp.Kind == "probe" {
			probes++
		}
	})
	if probes == 0 {
		t.Error("orphan-lineage probes dropped from the tree")
	}
	if f.Tree(99) == nil {
		t.Error("start-less request dropped from the forest")
	}
}

func TestFederationLinking(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sub := func(seg int) uint64 { return uint64(1)<<62 | 9<<4 | uint64(seg) }
	b := NewBuilder()
	// Federated parent request 9 with two sub-compositions that each ran BCP.
	// Events are added in timestamp order, the way every trace is written —
	// the builder treats a clock regression as a new run's boundary.
	b.Add(obs.ComposeStart(0, 2, 9, 3, 20))
	each := func(fn func(seg, node int, id uint64)) {
		for seg := 0; seg < 2; seg++ {
			fn(seg, 4+7*seg, sub(seg))
		}
	}
	each(func(seg, node int, id uint64) { b.Add(obs.ComposeStart(ms(1), obsNode(node), id, 2, 10)) })
	each(func(seg, node int, id uint64) {
		b.Add(obs.ProbeSent(ms(2), obsNode(node), id, obsNode(node+1), "f", "c", 5, 0, id*10+1, 0))
	})
	each(func(seg, node int, id uint64) {
		b.Add(obs.ProbeReturned(ms(3), obsNode(node+1), id, obsNode(node+2), 1, 64, id*10+1))
	})
	each(func(seg, node int, id uint64) {
		b.Add(obs.ProbeCollected(ms(4), obsNode(node+2), id, obsNode(node+1), 1, id*10+1))
	})
	each(func(seg, node int, id uint64) { b.Add(obs.SelectDone(ms(5), obsNode(node+2), id, 1, 1)) })
	each(func(seg, node int, id uint64) {
		b.Add(obs.ComposeDone(ms(6+seg), obsNode(node), id, true, ms(6+seg)))
	})
	each(func(seg, node int, id uint64) { b.Add(obs.FedPrepare(ms(7+seg), obsNode(node), 9, id, seg)) })
	b.Add(obs.FedCommit(ms(10), 4, 9, sub(0), 0))
	b.Add(obs.FedCommit(ms(11), 11, 9, sub(1), 1))
	b.Add(obs.ComposeDone(ms(12), 2, 9, true, ms(12)))
	f := b.Build()

	if len(f.Trees) != 1 {
		t.Fatalf("want 1 top-level tree (subs claimed), got %d", len(f.Trees))
	}
	parent := f.Trees[0]
	if parent.Req != 9 || len(parent.Subs) != 2 {
		t.Fatalf("parent=%d subs=%d", parent.Req, len(parent.Subs))
	}
	if f.Tree(sub(1)) == nil {
		t.Fatal("sub tree not findable through the forest")
	}
	if p := parent.Phases; p.Total() != parent.Wall || p.Attribution() < 0.95 {
		t.Errorf("federated parent phases %+v (wall %v)", p, parent.Wall)
	}
	last := parent.Critical[len(parent.Critical)-1]
	if !strings.HasPrefix(last.What, "compose.done") {
		t.Errorf("federated critical path ends at %q", last.What)
	}
	hasSeg := false
	for _, st := range parent.Critical {
		if strings.HasPrefix(st.What, "[seg ") {
			hasSeg = true
		}
	}
	if !hasSeg {
		t.Errorf("federated critical path never descends into the slowest segment: %+v", parent.Critical)
	}
	two := 0
	parent.Root.Walk(func(sp *Span, _ int) {
		if sp.Kind == "sub" {
			two++
		}
	})
	if two != 2 {
		t.Errorf("2PC span has %d sub children", two)
	}
}

func TestStreamingMatchesBuffered(t *testing.T) {
	evs, err := obs.LoadTrace(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	buffered := NewBuilder()
	for _, ev := range evs {
		buffered.Add(ev)
	}
	a := Summary(buffered.Build(), "s").String() + PhaseTable(buffered.Build(), "p").String()
	f := buildGolden(t)
	b := Summary(f, "s").String() + PhaseTable(f, "p").String()
	if a != b {
		t.Fatalf("streaming and buffered builds disagree:\n%s\n---\n%s", a, b)
	}
}

func TestRunBoundariesScopeIDs(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	b := NewBuilder()
	// Two concatenated runs (sweep cells) reusing the same request and probe
	// IDs; the clock regression at the boundary separates them.
	for run := 0; run < 2; run++ {
		b.Add(obs.ComposeStart(ms(1), 3, 7, 2, 10))
		b.Add(obs.ProbeSent(ms(2), 3, 7, 4, "f", "c", 5, 0, 11, 0))
		b.Add(obs.ProbeReturned(ms(3), 4, 7, 3, 1, 64, 11))
		b.Add(obs.ProbeCollected(ms(4), 5, 7, 4, 1, 11))
		b.Add(obs.SelectDone(ms(5), 5, 7, 1, 1))
		b.Add(obs.ComposeDone(ms(6), 3, 7, true, ms(5)))
	}
	f := b.Build()
	if f.Runs != 2 {
		t.Fatalf("runs = %d, want 2", f.Runs)
	}
	if len(f.Orphans) != 0 {
		t.Fatalf("ID reuse across runs misread as duplicates: %+v", f.Orphans)
	}
	if len(f.Trees) != 2 {
		t.Fatalf("want one tree per run, got %d", len(f.Trees))
	}
	for _, tr := range f.Trees {
		if tr.Req != 7 || !tr.Ok || tr.Phases.Attribution() != 1 {
			t.Errorf("run tree %+v not fully rebuilt", tr)
		}
	}
}

func obsNode(n int) p2p.NodeID { return p2p.NodeID(n) }
