package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Summary renders the forest-level rollup: tree counts, outcomes, orphans,
// and where the aggregate setup time went.
func Summary(f *Forest, title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "value")
	var trees, done, ok, subs int
	var tot PhaseTotals
	f.All(func(tr *Tree) {
		trees++
		if len(tr.Subs) > 0 {
			subs += len(tr.Subs)
		}
		if tr.Done {
			done++
			if tr.Ok {
				ok++
			}
		}
		tot.add(tr.Phases)
	})
	t.AddRow("events", f.Events)
	if f.Runs > 1 {
		t.AddRow("runs (sweep cells)", f.Runs)
	}
	t.AddRow("requests", trees)
	t.AddRow("completed", done)
	t.AddRow("ok", ok)
	if subs > 0 {
		t.AddRow("federated segments", subs)
	}
	t.AddRow("orphan events", len(f.Orphans))
	if f.WireDrops > 0 {
		t.AddRow("unattributed wire drops", f.WireDrops)
	}
	t.AddRow("total setup time", tot.Total())
	t.AddRow("  discovery", tot.Discovery)
	t.AddRow("  probe fan-out", tot.Probe)
	t.AddRow("  collect+select", tot.Collect)
	t.AddRow("  session commit", tot.Commit)
	t.AddRow("  unattributed wait", tot.Wait)
	t.AddRow("attribution", pct(tot.Attribution()))
	return t
}

// PhaseTotals aggregates phase partitions over many requests.
type PhaseTotals struct {
	Discovery, Probe, Collect, Commit, Wait time.Duration
	Reqs                                    int
}

func (p *PhaseTotals) add(q Phases) {
	p.Discovery += q.Discovery
	p.Probe += q.Probe
	p.Collect += q.Collect
	p.Commit += q.Commit
	p.Wait += q.Wait
	p.Reqs++
}

// Named returns the aggregate time claimed by named phases.
func (p PhaseTotals) Named() time.Duration {
	return p.Discovery + p.Probe + p.Collect + p.Commit
}

// Total returns the aggregate wall time.
func (p PhaseTotals) Total() time.Duration { return p.Named() + p.Wait }

// Attribution is the fraction of aggregate wall time in named phases.
func (p PhaseTotals) Attribution() float64 {
	if p.Total() == 0 {
		return 1
	}
	return float64(p.Named()) / float64(p.Total())
}

// Totals aggregates every tree's phase partition (including federated
// segments).
func (f *Forest) Totals() PhaseTotals {
	var tot PhaseTotals
	f.All(func(tr *Tree) { tot.add(tr.Phases) })
	return tot
}

// PhaseTable renders the per-phase latency breakdown across the forest: one
// row per phase with total, mean, and share of the aggregate setup time.
func PhaseTable(f *Forest, title string) *metrics.Table {
	tot := f.Totals()
	t := metrics.NewTable(title, "phase", "total", "mean/req", "share")
	total := tot.Total()
	row := func(name string, d time.Duration) {
		mean := time.Duration(0)
		if tot.Reqs > 0 {
			mean = d / time.Duration(tot.Reqs)
		}
		share := 0.0
		if total > 0 {
			share = float64(d) / float64(total)
		}
		t.AddRow(name, d, mean, pct(share))
	}
	row("discovery", tot.Discovery)
	row("probe fan-out", tot.Probe)
	row("collect+select", tot.Collect)
	row("session commit", tot.Commit)
	row("unattributed wait", tot.Wait)
	t.AddRow("requests", tot.Reqs, "", "")
	t.AddRow("attribution", pct(tot.Attribution()), "", "")
	return t
}

// Slowest returns the k top-level trees with the largest wall time, slowest
// first; ties break toward the smaller request ID. k <= 0 returns all.
func (f *Forest) Slowest(k int) []*Tree {
	out := append([]*Tree(nil), f.Trees...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Req < out[j].Req
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SlowTable renders the top-k slowest requests with their phase breakdowns.
func SlowTable(f *Forest, k int, title string) *metrics.Table {
	t := metrics.NewTable(title, "req", "status", "wall",
		"disc", "probe", "collect", "commit", "wait", "attr")
	for _, tr := range f.Slowest(k) {
		status := "pending"
		if tr.Done {
			if tr.Ok {
				status = "ok"
			} else {
				status = "fail"
			}
		}
		p := tr.Phases
		t.AddRow(tr.Req, status, tr.Wall, p.Discovery, p.Probe, p.Collect, p.Commit,
			p.Wait, pct(p.Attribution()))
	}
	return t
}

// waterfallWidth is the bar width of waterfall renderings, in cells.
const waterfallWidth = 48

// Waterfall renders one tree as an indented span waterfall: each line is a
// span with a bar positioned proportionally inside the request's wall time.
func Waterfall(t *Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req %d  wall %s  ", t.Req, t.Wall)
	switch {
	case !t.Done:
		b.WriteString("(incomplete)")
	case t.Ok:
		b.WriteString("(ok)")
	default:
		b.WriteString("(fail)")
	}
	b.WriteByte('\n')
	t0, wall := t.Root.Start, t.Wall
	t.Root.Walk(func(sp *Span, depth int) {
		name := strings.Repeat("  ", depth) + sp.Name
		if len(name) > 34 {
			name = name[:31] + "..."
		}
		fmt.Fprintf(&b, "%-34s |%s| %8s +%-8s", name, bar(sp, t0, wall), fmtDur(sp.Start-t0), fmtDur(sp.Dur()))
		if sp.Note != "" {
			b.WriteString("  " + sp.Note)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// bar renders a span's position inside [t0, t0+wall] as a fixed-width strip.
func bar(sp *Span, t0 time.Duration, wall time.Duration) string {
	cells := make([]byte, waterfallWidth)
	for i := range cells {
		cells[i] = ' '
	}
	if wall <= 0 {
		cells[0] = '#'
		return string(cells)
	}
	pos := func(ts time.Duration) int {
		p := int(int64(ts-t0) * int64(waterfallWidth) / int64(wall))
		if p < 0 {
			p = 0
		}
		if p > waterfallWidth-1 {
			p = waterfallWidth - 1
		}
		return p
	}
	lo, hi := pos(sp.Start), pos(sp.End)
	for i := lo; i <= hi; i++ {
		cells[i] = '='
	}
	cells[lo] = '#'
	cells[hi] = '#'
	return string(cells)
}

// Critical renders a tree's critical path, one step per line with the gap
// each hop contributed.
func Critical(t *Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req %d  critical path (%d steps, wall %s)\n", t.Req, len(t.Critical), t.Wall)
	for _, st := range t.Critical {
		node := "n?"
		if st.Node >= 0 {
			node = fmt.Sprintf("n%d", st.Node)
		}
		fmt.Fprintf(&b, "  %10s  +%-10s %-5s %s\n", fmtDur(st.TS), fmtDur(st.Gap), node, st.What)
	}
	return b.String()
}

// OrphanTable renders the unattributable events so malformed traces are
// debuggable rather than silently tidied.
func OrphanTable(f *Forest, title string) *metrics.Table {
	t := metrics.NewTable(title, "ts", "kind", "node", "req", "pid", "reason")
	for _, o := range f.Orphans {
		t.AddRow(o.Ev.TS, o.Ev.Kind, o.Ev.Node, o.Ev.Req, o.Ev.PID, o.Reason)
	}
	return t
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// fmtDur renders durations compactly with a stable unit (fractional
// milliseconds), so report columns align and diffs stay readable.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
