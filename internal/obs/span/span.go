// Package span reconstructs causal span trees from obs traces: one tree per
// composition request, with child spans for decentralized discovery (DHT
// hop/deliver lineage), probe fan-out (PID/PPID parent-child links, including
// retransmits and wire casualties), destination-side collection and
// selection, reverse-path session commit, federation two-phase commit
// (prepare→commit/abort keyed by fed/sub IDs), and recovery switchover.
//
// From the trees it derives the per-phase latency breakdown of every setup
// (discovery → probe → collect → commit, an exact partition of the wall
// time), the critical path through each request (the chain of events whose
// delays sum to the setup latency), and deterministic reports: all outputs
// depend only on the trace contents, with explicit tie-breaks, so identically
// seeded runs render byte-identical reports — CI diffs them.
//
// The builder is streaming: Add folds one event at a time with per-request
// state only, so multi-gigabyte traces build without buffering the event
// slice. Events that cannot be attributed — probes with unknown parents,
// collections of never-emitted probes, requests missing their compose.start —
// are reported as Orphans rather than silently dropped.
package span

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
)

// Span is one node in a request's causal tree: a named interval on one peer,
// with children ordered by (Start, insertion).
type Span struct {
	// Kind groups spans for reporting: "compose", "discovery", "dht",
	// "probing", "probe", "collect", "commit", "admit", "reject", "2pc",
	// "sub", "recovery", "establish".
	Kind string
	// Name is the human-readable label shown in waterfalls.
	Name string
	// Node is the peer the span is anchored on (the emitter of its events).
	Node p2p.NodeID
	// Start and End bound the span on the shared virtual clock. Point events
	// have Start == End.
	Start, End time.Duration
	// Events counts trace records folded into this span (excluding children).
	Events int
	// Note carries the outcome or detail ("returned", "dropped(qos)", ...).
	Note string
	// Children are the causally nested spans, ordered deterministically.
	Children []*Span
}

// Dur returns the span's length.
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// Walk visits the span and its descendants depth-first, pre-order.
func (s *Span) Walk(fn func(sp *Span, depth int)) { s.walk(fn, 0) }

func (s *Span) walk(fn func(*Span, int), depth int) {
	fn(s, depth)
	for _, c := range s.Children {
		c.walk(fn, depth+1)
	}
}

// Phases is the per-request latency partition. Discovery + Probe + Collect +
// Commit + Wait always equals the request's wall time: the four named phases
// are bounded by explicit trace events (disc.done, the last probe.collected,
// select.done, compose.done) and Wait absorbs whatever interval has no
// boundary to claim it (e.g. a failed setup waiting out its give-up timer).
type Phases struct {
	Discovery time.Duration // compose.start → disc.done
	Probe     time.Duration // disc.done → last probe.collected
	Collect   time.Duration // last probe.collected → select.done
	Commit    time.Duration // select.done → compose.done
	Wait      time.Duration // unattributed remainder
}

// Named returns the time attributed to the four named phases.
func (p Phases) Named() time.Duration { return p.Discovery + p.Probe + p.Collect + p.Commit }

// Total returns the wall time the partition covers.
func (p Phases) Total() time.Duration { return p.Named() + p.Wait }

// Attribution returns the fraction of wall time claimed by named phases,
// in [0,1]; 1 for a zero-length request.
func (p Phases) Attribution() float64 {
	if p.Total() == 0 {
		return 1
	}
	return float64(p.Named()) / float64(p.Total())
}

// Step is one hop of a request's critical path: the event chain whose gaps
// sum to the setup latency. Gap is the time since the previous step.
type Step struct {
	TS   time.Duration
	Node p2p.NodeID
	What string
	Gap  time.Duration
}

// Tree is the reconstructed causal view of one request.
type Tree struct {
	Req  uint64
	Ok   bool // compose.done reported ok
	Done bool // a compose.done was seen
	// Root is the compose span; Wall its length.
	Root *Span
	Wall time.Duration
	// Phases partitions Wall; Critical is the event chain ending at the
	// request's terminal event (compose.done, or the last event seen when
	// the trace is truncated).
	Phases   Phases
	Critical []Step
	// Subs are federated sub-compositions claimed by this request's 2PC
	// (their trees nest here instead of appearing at the top level).
	Subs []*Tree
}

// Orphan is an event the builder could not attribute to a well-formed tree.
type Orphan struct {
	Ev     obs.Event
	Reason string
}

// Forest is the result of building a whole trace.
type Forest struct {
	// Trees holds the top-level request trees, grouped by run and sorted by
	// request ID within each run; federated sub-compositions hang off their
	// parent's Subs. Sweep traces (spiderbench) concatenate many independent
	// cells into one file — a virtual-clock regression marks each boundary —
	// so request and probe IDs are scoped per run, never across runs.
	Trees []*Tree
	// Runs counts the independent runs the trace concatenates (1 for a plain
	// spidersim trace, one per cell for an experiment sweep).
	Runs int
	// Orphans lists unattributable events, in trace order.
	Orphans []Orphan
	// Events is the total number of events folded in; WireDrops counts
	// net.drop/net.fault records that referenced no known probe (non-probe
	// protocol units — reports, pings — whose identity the builder does not
	// track).
	Events    int
	WireDrops int
}

// Tree finds a request's tree, descending into federated subs. Nil if the
// trace never saw the request.
func (f *Forest) Tree(req uint64) *Tree {
	var find func(ts []*Tree) *Tree
	find = func(ts []*Tree) *Tree {
		for _, t := range ts {
			if t.Req == req {
				return t
			}
			if sub := find(t.Subs); sub != nil {
				return sub
			}
		}
		return nil
	}
	return find(f.Trees)
}

// All visits every tree including federated subs, parents before children,
// in request-ID order at each level.
func (f *Forest) All(fn func(*Tree)) {
	var walk func(ts []*Tree)
	walk = func(ts []*Tree) {
		for _, t := range ts {
			fn(t)
			walk(t.Subs)
		}
	}
	walk(f.Trees)
}

// Builder folds a trace into per-request span state one event at a time.
// A timestamp regression (the virtual clock starting over) closes the
// current run and opens a fresh one: request IDs and probe UIDs restart per
// run in concatenated sweep traces, so linkage state never leaks across the
// boundary.
type Builder struct {
	reqs     map[uint64]*reqState
	pidReq   map[uint64]uint64 // probe identity → owning request, this run
	archived []map[uint64]*reqState
	lastTS   time.Duration
	orphans  []Orphan
	events   int
	wire     int
}

type probeInfo struct {
	emit    obs.Event // probe.sent / probe.forwarded
	hasEmit bool
	term    obs.Event // probe.dropped / probe.returned
	hasTerm bool
	retx    int
	wire    int // net.drop / killing net.fault records for this pid
}

type fedSub struct {
	prep, res       obs.Event
	hasPrep, hasRes bool
}

type reqState struct {
	req                               uint64
	start, discDone, selectDone, done obs.Event
	hasStart, hasDisc                 bool
	hasSelect, hasDone                bool
	last                              time.Duration // latest event timestamp

	collected []obs.Event
	probes    map[uint64]*probeInfo
	pids      []uint64 // emission/first-reference order
	dht       []obs.Event
	commits   []obs.Event // session.admit / session.reject, trace order
	estabs    []obs.Event
	rec       []obs.Event
	fed       map[uint64]*fedSub
	fedSubs   []uint64 // first-reference order
}

// NewBuilder creates an empty streaming span builder.
func NewBuilder() *Builder {
	return &Builder{reqs: make(map[uint64]*reqState), pidReq: make(map[uint64]uint64)}
}

func (b *Builder) state(req uint64) *reqState {
	rs, ok := b.reqs[req]
	if !ok {
		rs = &reqState{req: req, probes: make(map[uint64]*probeInfo), fed: make(map[uint64]*fedSub)}
		b.reqs[req] = rs
	}
	return rs
}

func (rs *reqState) probe(pid uint64) *probeInfo {
	pi, ok := rs.probes[pid]
	if !ok {
		pi = &probeInfo{}
		rs.probes[pid] = pi
		rs.pids = append(rs.pids, pid)
	}
	return pi
}

func (b *Builder) orphan(ev obs.Event, reason string) {
	b.orphans = append(b.orphans, Orphan{Ev: ev, Reason: reason})
}

// Add folds one event. Events are expected in trace (timestamp) order, the
// order every sink writes them in; a timestamp going backward means a new
// run started (sweep traces concatenate cells).
func (b *Builder) Add(ev obs.Event) {
	b.events++
	if ev.TS < b.lastTS {
		b.archived = append(b.archived, b.reqs)
		b.reqs = make(map[uint64]*reqState)
		b.pidReq = make(map[uint64]uint64)
	}
	b.lastTS = ev.TS
	switch ev.Kind {
	case obs.KindNetDrop, obs.KindNetFault:
		// Wire records carry the casualty's protocol identity but no request;
		// probes resolve through the global pid index, everything else (report
		// legs, recovery pings, maintenance) is counted but not attributed.
		if ev.Kind == obs.KindNetFault && ev.Note != obs.FaultLoss && ev.Note != obs.FaultPartition {
			return // dup/jitter faults kill nothing
		}
		if req, ok := b.pidReq[ev.PID]; ev.PID != 0 && ok {
			rs := b.reqs[req]
			rs.probe(ev.PID).wire++
			rs.note(ev.TS)
		} else {
			b.wire++
		}
		return
	case obs.KindNetDown, obs.KindNetUp:
		return // liveness records are global; the summary counts them
	}
	if ev.Req == 0 {
		if ev.Kind == obs.KindDHTHop || ev.Kind == obs.KindDHTDeliver {
			return // maintenance routing (puts, joins) belongs to no request
		}
		b.orphan(ev, "event without request ID")
		return
	}
	rs := b.state(ev.Req)
	rs.note(ev.TS)
	switch ev.Kind {
	case obs.KindComposeStart:
		rs.start, rs.hasStart = ev, true
	case obs.KindDiscDone:
		rs.discDone, rs.hasDisc = ev, true
	case obs.KindSelectDone:
		rs.selectDone, rs.hasSelect = ev, true
	case obs.KindComposeDone:
		rs.done, rs.hasDone = ev, true
	case obs.KindProbeSent, obs.KindProbeForwarded:
		pi := rs.probe(ev.PID)
		if pi.hasEmit {
			b.orphan(ev, "duplicate probe emission")
			return
		}
		pi.emit, pi.hasEmit = ev, true
		b.pidReq[ev.PID] = ev.Req
		if ev.PPID != 0 {
			if _, ok := rs.probes[ev.PPID]; !ok {
				b.orphan(ev, "probe split from unknown parent")
			}
		}
	case obs.KindProbeDropped, obs.KindProbeReturned:
		pi := rs.probe(ev.PID)
		if !pi.hasEmit {
			b.orphan(ev, "termination of unknown probe")
		}
		pi.term, pi.hasTerm = ev, true
	case obs.KindProbeRetx:
		if pi, ok := rs.probes[ev.PID]; ok {
			pi.retx++
		} else {
			b.orphan(ev, "retransmit of unknown probe")
		}
	case obs.KindProbeCollected:
		if ev.PID != 0 {
			if _, ok := rs.probes[ev.PID]; !ok {
				b.orphan(ev, "collected unknown probe")
			}
		}
		rs.collected = append(rs.collected, ev)
	case obs.KindDHTHop, obs.KindDHTDeliver, obs.KindDHTGetRetry, obs.KindDHTGetFail:
		rs.dht = append(rs.dht, ev)
	case obs.KindSessionAdmit, obs.KindSessionReject:
		rs.commits = append(rs.commits, ev)
	case obs.KindSessionEstab:
		rs.estabs = append(rs.estabs, ev)
	case obs.KindRecProbe, obs.KindRecFailure, obs.KindRecSwitchover, obs.KindRecReactive, obs.KindRecDead:
		rs.rec = append(rs.rec, ev)
	case obs.KindFedPrepare:
		fs := rs.fedState(ev.PID)
		fs.prep, fs.hasPrep = ev, true
	case obs.KindFedCommit, obs.KindFedAbort:
		fs := rs.fedState(ev.PID)
		if !fs.hasPrep {
			b.orphan(ev, "2PC resolve without prepare")
		}
		fs.res, fs.hasRes = ev, true
	default:
		b.orphan(ev, "unknown event kind")
	}
}

func (rs *reqState) note(ts time.Duration) {
	if ts > rs.last {
		rs.last = ts
	}
}

func (rs *reqState) fedState(sub uint64) *fedSub {
	fs, ok := rs.fed[sub]
	if !ok {
		fs = &fedSub{}
		rs.fed[sub] = fs
		rs.fedSubs = append(rs.fedSubs, sub)
	}
	return fs
}

// Build assembles the forest from everything added so far. It is
// non-destructive: the builder keeps accepting events and Build can run
// again. Output is fully deterministic in the input events.
func (b *Builder) Build() *Forest {
	f := &Forest{Events: b.events, WireDrops: b.wire}
	f.Orphans = append(f.Orphans, b.orphans...)
	for _, run := range b.archived {
		buildRun(f, run)
		f.Runs++
	}
	buildRun(f, b.reqs)
	f.Runs++
	return f
}

// buildRun assembles one run's trees (request and probe IDs are scoped to a
// run) and appends its unclaimed roots to the forest.
func buildRun(f *Forest, reqs map[uint64]*reqState) {
	ids := make([]uint64, 0, len(reqs))
	for id := range reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	trees := make(map[uint64]*Tree, len(ids))
	for _, id := range ids {
		rs := reqs[id]
		if !rs.hasStart {
			f.Orphans = append(f.Orphans, Orphan{
				Ev:     obs.Event{TS: rs.last, Kind: "(request)", Node: p2p.NoNode, Req: rs.req, Peer: p2p.NoNode},
				Reason: "request without compose.start",
			})
		}
		trees[id] = buildTree(rs)
	}

	// Federation linkage: a tree whose 2PC names sub-session IDs that exist
	// as requests of their own claims those trees as nested segments.
	claimed := make(map[uint64]bool)
	for _, id := range ids {
		rs := reqs[id]
		if len(rs.fedSubs) == 0 {
			continue
		}
		parent := trees[id]
		for _, sub := range rs.fedSubs {
			if st, ok := trees[sub]; ok && sub != id && !claimed[sub] {
				claimed[sub] = true
				parent.Subs = append(parent.Subs, st)
				parent.Root.Children = append(parent.Root.Children, st.Root)
			}
		}
		sortSpans(parent.Root.Children)
		fedCritical(parent, rs)
	}
	for _, id := range ids {
		if !claimed[id] {
			f.Trees = append(f.Trees, trees[id])
		}
	}
}

// clamp bounds ts into [lo, hi].
func clamp(ts, lo, hi time.Duration) time.Duration {
	if ts < lo {
		return lo
	}
	if ts > hi {
		return hi
	}
	return ts
}

func sortSpans(s []*Span) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
}

// buildTree assembles one request's span tree, phase partition, and critical
// path from its accumulated state.
func buildTree(rs *reqState) *Tree {
	t := &Tree{Req: rs.req, Done: rs.hasDone}
	t0 := rs.start.TS
	if !rs.hasStart {
		t0 = firstTS(rs)
	}
	t4 := rs.last
	if rs.hasDone {
		t4 = rs.done.TS
		t.Ok = rs.done.Note == "ok"
	}
	if t4 < t0 {
		t4 = t0
	}
	t.Wall = t4 - t0

	rootNote := "incomplete"
	if rs.hasDone {
		rootNote = rs.done.Note
	}
	root := &Span{Kind: "compose", Name: fmt.Sprintf("compose req=%d", rs.req),
		Node: rs.start.Node, Start: t0, End: t4, Events: 1, Note: rootNote}
	t.Root = root

	// Phase boundaries (clamped monotone into [t0, t4]).
	t1 := t0
	if rs.hasDisc {
		t1 = clamp(rs.discDone.TS, t0, t4)
	} else if len(rs.pids) > 0 {
		// Pre-disc.done traces: fall back to the first probe emission.
		if pi := rs.probes[rs.pids[0]]; pi.hasEmit {
			t1 = clamp(pi.emit.TS, t0, t4)
		}
	}
	lastCollect, haveCollect := lastCollected(rs)
	t2 := clamp(lastCollect, t1, t4)
	t3 := t2
	if rs.hasSelect {
		t3 = clamp(rs.selectDone.TS, t2, t4)
	}

	// Discovery span, with the request's DHT traffic split at the phase
	// boundary: lookups launched by intermediate probe hops (cache misses
	// mid-fan-out) land in the probing span instead.
	disc := &Span{Kind: "discovery", Name: "discovery", Node: rs.start.Node, Start: t0, End: t1}
	if rs.hasDisc {
		disc.Events = 1
		disc.Note = rs.discDone.Note
	}
	var discDHT, probeDHT []obs.Event
	for _, ev := range rs.dht {
		if ev.TS <= t1 {
			discDHT = append(discDHT, ev)
		} else {
			probeDHT = append(probeDHT, ev)
		}
	}
	if sp := dhtSpan(discDHT); sp != nil {
		disc.Children = append(disc.Children, sp)
	}
	root.Children = append(root.Children, disc)

	// Probe fan-out span with the PID/PPID lineage nested beneath it.
	probing := &Span{Kind: "probing", Name: "probe fan-out", Node: rs.start.Node, Start: t1, End: t2}
	if !haveCollect {
		probing.End = t4
	}
	if sp := dhtSpan(probeDHT); sp != nil {
		probing.Children = append(probing.Children, sp)
	}
	collectTS := make(map[uint64]time.Duration, len(rs.collected))
	for _, ev := range rs.collected {
		if ev.PID != 0 {
			collectTS[ev.PID] = ev.TS
		}
	}
	spans := make(map[uint64]*Span, len(rs.pids))
	for _, pid := range rs.pids {
		spans[pid] = probeSpan(pid, rs.probes[pid], collectTS)
	}
	splits := make(map[uint64]int, len(rs.pids))
	for _, pid := range rs.pids {
		pi := rs.probes[pid]
		if pi.hasEmit && pi.emit.PPID != 0 {
			if parent, ok := spans[pi.emit.PPID]; ok {
				parent.Children = append(parent.Children, spans[pid])
				splits[pi.emit.PPID]++
				// The parent lived until it split at the child's emission.
				if spans[pid].Start > parent.End {
					parent.End = spans[pid].Start
				}
				continue
			}
		}
		probing.Children = append(probing.Children, spans[pid])
	}
	for pid, n := range splits {
		if sp := spans[pid]; sp.Note == "live" {
			sp.Note = fmt.Sprintf("split ×%d", n)
		}
	}
	for _, pid := range rs.pids {
		sortSpans(spans[pid].Children)
	}
	sortSpans(probing.Children)
	if len(rs.pids) > 0 || haveCollect {
		root.Children = append(root.Children, probing)
	}

	// Residual collection window and destination selection.
	if rs.hasSelect {
		note := fmt.Sprintf("%d collected; %d candidates, %d qualified",
			len(rs.collected), rs.selectDone.Hops, rs.selectDone.Budget)
		if rs.selectDone.Note != "ok" {
			note += ", " + rs.selectDone.Note
		}
		root.Children = append(root.Children, &Span{Kind: "collect", Name: "collect+select",
			Node: rs.selectDone.Node, Start: t2, End: t3, Events: 1 + len(rs.collected), Note: note})
	}

	// Reverse-path session commit with per-peer admissions.
	if rs.hasSelect || len(rs.commits) > 0 {
		commit := &Span{Kind: "commit", Name: "session commit", Node: rs.start.Node, Start: t3, End: t4}
		for _, ev := range rs.commits {
			kind, name := "admit", "admit "+ev.Comp
			if ev.Kind == obs.KindSessionReject {
				kind, name = "reject", "reject "+ev.Comp+" ("+ev.Note+")"
			}
			commit.Children = append(commit.Children, &Span{Kind: kind, Name: name,
				Node: ev.Node, Start: ev.TS, End: ev.TS, Events: 1})
		}
		root.Children = append(root.Children, commit)
	}

	// Federation 2PC: one child per sub-session, prepare → commit/abort.
	if len(rs.fedSubs) > 0 {
		root.Children = append(root.Children, fedSpan(rs, t4))
	}

	// Recovery activity on the established session.
	if sp := recSpan(rs); sp != nil {
		root.Children = append(root.Children, sp)
	}
	for _, ev := range rs.estabs {
		root.Children = append(root.Children, &Span{Kind: "establish",
			Name: fmt.Sprintf("session adopted (%d backups)", ev.Budget),
			Node: ev.Node, Start: ev.TS, End: ev.TS, Events: 1})
	}
	sortSpans(root.Children)

	// Phase partition. Federated parents (no probing of their own) partition
	// over segment prepare / decision instead.
	if len(rs.pids) == 0 && len(rs.fedSubs) > 0 {
		t.Phases = fedPhases(rs, t0, t4)
	} else {
		t.Phases.Discovery = t1 - t0
		if rs.hasSelect {
			t.Phases.Probe = t2 - t1
			t.Phases.Collect = t3 - t2
			t.Phases.Commit = t4 - t3
		} else if haveCollect {
			t.Phases.Probe = t2 - t1
			t.Phases.Wait = t4 - t2
		} else {
			t.Phases.Wait = t4 - t1
		}
	}

	t.Critical = criticalPath(rs, t0, t4)
	return t
}

func firstTS(rs *reqState) time.Duration {
	first := rs.last
	check := func(ts time.Duration) {
		if ts < first {
			first = ts
		}
	}
	for _, pid := range rs.pids {
		if rs.probes[pid].hasEmit {
			check(rs.probes[pid].emit.TS)
		}
	}
	for _, ev := range rs.dht {
		check(ev.TS)
	}
	for _, sub := range rs.fedSubs {
		if rs.fed[sub].hasPrep {
			check(rs.fed[sub].prep.TS)
		}
	}
	return first
}

// lastCollected returns the timestamp of the destination's last collected
// probe, reporting whether any probe was collected at all.
func lastCollected(rs *reqState) (time.Duration, bool) {
	var ts time.Duration
	for _, ev := range rs.collected {
		if ev.TS > ts {
			ts = ev.TS
		}
	}
	return ts, len(rs.collected) > 0
}

func dhtSpan(evs []obs.Event) *Span {
	if len(evs) == 0 {
		return nil
	}
	var hops, delivered, retries int
	sp := &Span{Kind: "dht", Node: evs[0].Node, Start: evs[0].TS, End: evs[0].TS, Events: len(evs)}
	for _, ev := range evs {
		if ev.TS < sp.Start {
			sp.Start = ev.TS
		}
		if ev.TS > sp.End {
			sp.End = ev.TS
		}
		switch ev.Kind {
		case obs.KindDHTHop:
			hops++
		case obs.KindDHTDeliver:
			delivered++
		case obs.KindDHTGetRetry, obs.KindDHTGetFail:
			retries++
		}
	}
	sp.Name = fmt.Sprintf("dht lookups (%d hops, %d delivered)", hops, delivered)
	if retries > 0 {
		sp.Note = fmt.Sprintf("%d timeouts", retries)
	}
	return sp
}

func probeSpan(pid uint64, pi *probeInfo, collectTS map[uint64]time.Duration) *Span {
	sp := &Span{Kind: "probe", Name: fmt.Sprintf("probe %d", pid), Events: 1}
	if pi.hasEmit {
		sp.Node = pi.emit.Node
		sp.Start, sp.End = pi.emit.TS, pi.emit.TS
		if pi.emit.Comp != "" {
			sp.Name = "probe " + pi.emit.Comp
		}
	}
	note := "live"
	switch {
	case pi.hasTerm && pi.term.Kind == obs.KindProbeReturned:
		note = "returned"
		sp.End = pi.term.TS
	case pi.hasTerm:
		note = "dropped(" + pi.term.Note + ")"
		sp.End = pi.term.TS
	case pi.wire > 0:
		note = "lost"
	}
	if ts, ok := collectTS[pid]; ok && ts > sp.End {
		sp.End = ts
		note += ", collected"
	}
	if pi.retx > 0 {
		note += fmt.Sprintf(", %d retx", pi.retx)
	}
	sp.Note = note
	sp.Events += pi.retx + pi.wire
	if pi.hasTerm {
		sp.Events++
	}
	return sp
}

func fedSpan(rs *reqState, t4 time.Duration) *Span {
	sp := &Span{Kind: "2pc", Name: "federation 2PC", Node: rs.start.Node}
	first := true
	for _, sub := range rs.fedSubs {
		fs := rs.fed[sub]
		c := &Span{Kind: "sub", Events: 1}
		if fs.hasPrep {
			c.Node = fs.prep.Node
			c.Start = fs.prep.TS
			c.Name = fmt.Sprintf("sub=%d dom=%d", sub, fs.prep.Domain())
		} else {
			c.Node = fs.res.Node
			c.Start = fs.res.TS
			c.Name = fmt.Sprintf("sub=%d dom=%d", sub, fs.res.Domain())
		}
		c.End = c.Start
		switch {
		case fs.hasRes && fs.res.Kind == obs.KindFedCommit:
			c.Note = "committed"
			c.End = fs.res.TS
			c.Events++
		case fs.hasRes:
			c.Note = "aborted(" + fs.res.Note + ")"
			c.End = fs.res.TS
			c.Events++
		default:
			c.Note = "unresolved"
			c.End = t4
		}
		if first || c.Start < sp.Start {
			sp.Start = c.Start
		}
		if first || c.End > sp.End {
			sp.End = c.End
		}
		first = false
		sp.Children = append(sp.Children, c)
	}
	sortSpans(sp.Children)
	return sp
}

func recSpan(rs *reqState) *Span {
	if len(rs.rec) == 0 {
		return nil
	}
	pings := 0
	sp := &Span{Kind: "recovery", Name: "recovery", Node: rs.rec[0].Node,
		Start: rs.rec[0].TS, End: rs.rec[0].TS, Events: len(rs.rec)}
	for _, ev := range rs.rec {
		if ev.TS > sp.End {
			sp.End = ev.TS
		}
		switch ev.Kind {
		case obs.KindRecProbe:
			pings++
		case obs.KindRecFailure:
			sp.Children = append(sp.Children, &Span{Kind: "recovery", Name: "failure detected",
				Node: ev.Node, Start: ev.TS, End: ev.TS, Events: 1})
		case obs.KindRecSwitchover, obs.KindRecReactive, obs.KindRecDead:
			sp.Children = append(sp.Children, &Span{Kind: "recovery",
				Name: ev.Kind, Note: fmt.Sprintf("broken %s", ev.Dur),
				Node: ev.Node, Start: ev.TS, End: ev.TS, Events: 1})
		}
	}
	sp.Note = fmt.Sprintf("%d keepalives", pings)
	sortSpans(sp.Children)
	return sp
}

// fedPhases partitions a federated parent request: segment composition +
// prepare up to the last prepare, then decision + commit fan-out.
func fedPhases(rs *reqState, t0, t4 time.Duration) Phases {
	var lastPrep time.Duration
	prepared := false
	for _, sub := range rs.fedSubs {
		if fs := rs.fed[sub]; fs.hasPrep {
			prepared = true
			if fs.prep.TS > lastPrep {
				lastPrep = fs.prep.TS
			}
		}
	}
	if !prepared {
		return Phases{Wait: t4 - t0}
	}
	lastPrep = clamp(lastPrep, t0, t4)
	return Phases{Probe: lastPrep - t0, Commit: t4 - lastPrep}
}

// criticalPath walks the request backward from its terminal event to
// compose.start: done ← session-commit chain ← select.done ← last collected
// probe ← its PID/PPID lineage to the origin ← disc.done ← compose.start.
// Ties (equal collection timestamps) break toward the smaller PID, so the
// path is deterministic in the trace contents.
func criticalPath(rs *reqState, t0, t4 time.Duration) []Step {
	var steps []Step
	add := func(ts time.Duration, node p2p.NodeID, what string) {
		steps = append(steps, Step{TS: ts, Node: node, What: what})
	}
	if rs.hasStart {
		add(t0, rs.start.Node, "compose.start")
	}
	if rs.hasDisc {
		add(rs.discDone.TS, rs.discDone.Node, "disc.done ("+rs.discDone.Note+")")
	}

	// The probe whose collection completed the candidate set last.
	var lastEv obs.Event
	haveLast := false
	for _, ev := range rs.collected {
		if !haveLast || ev.TS > lastEv.TS || (ev.TS == lastEv.TS && ev.PID < lastEv.PID) {
			lastEv, haveLast = ev, true
		}
	}
	if haveLast && lastEv.PID != 0 {
		// Lineage chain origin → leaf, bounded against PPID cycles.
		var chain []uint64
		for pid, hops := lastEv.PID, 0; pid != 0 && hops <= len(rs.pids); hops++ {
			pi, ok := rs.probes[pid]
			if !ok || !pi.hasEmit {
				break
			}
			chain = append(chain, pid)
			pid = pi.emit.PPID
		}
		for i := len(chain) - 1; i >= 0; i-- {
			pi := rs.probes[chain[i]]
			what := "probe"
			if pi.emit.Comp != "" {
				what = "probe " + pi.emit.Comp
			}
			add(pi.emit.TS, pi.emit.Node, fmt.Sprintf("%s → n%d", what, pi.emit.Peer))
		}
		if pi, ok := rs.probes[lastEv.PID]; ok && pi.hasTerm && pi.term.Kind == obs.KindProbeReturned {
			add(pi.term.TS, pi.term.Node, fmt.Sprintf("report → n%d", pi.term.Peer))
		}
	}
	if haveLast {
		add(lastEv.TS, lastEv.Node, "probe.collected (last)")
	}
	if rs.hasSelect {
		add(rs.selectDone.TS, rs.selectDone.Node, fmt.Sprintf("select.done (%d qualified)", rs.selectDone.Budget))
		for _, ev := range rs.commits {
			if ev.TS < rs.selectDone.TS || (rs.hasDone && ev.TS > rs.done.TS) {
				continue // admission for an earlier attempt or late backup work
			}
			if ev.Kind == obs.KindSessionAdmit {
				add(ev.TS, ev.Node, "admit "+ev.Comp)
			} else {
				add(ev.TS, ev.Node, "reject "+ev.Comp+" ("+ev.Note+")")
			}
		}
	}
	if rs.hasDone {
		add(t4, rs.done.Node, "compose.done ("+rs.done.Note+")")
	} else {
		add(rs.last, p2p.NoNode, "(trace ends; no compose.done)")
	}
	finishSteps(steps)
	return steps
}

// fedCritical replaces a federated parent's critical path once its segments
// are linked: the slowest-preparing segment's own critical path, then the
// 2PC prepare/decision chain, ending at the parent's compose.done.
func fedCritical(t *Tree, rs *reqState) {
	var lastSub uint64
	var lastPrep obs.Event
	have := false
	for _, sub := range rs.fedSubs {
		fs := rs.fed[sub]
		if !fs.hasPrep {
			continue
		}
		if !have || fs.prep.TS > lastPrep.TS || (fs.prep.TS == lastPrep.TS && sub < lastSub) {
			lastSub, lastPrep, have = sub, fs.prep, true
		}
	}
	if !have {
		return
	}
	var steps []Step
	if rs.hasStart {
		steps = append(steps, Step{TS: rs.start.TS, Node: rs.start.Node, What: "compose.start"})
	}
	for _, sub := range t.Subs {
		if sub.Req == lastSub {
			for _, st := range sub.Critical {
				st.What = fmt.Sprintf("[seg %d] %s", lastSub, st.What)
				st.Gap = 0
				steps = append(steps, st)
			}
		}
	}
	steps = append(steps, Step{TS: lastPrep.TS, Node: lastPrep.Node,
		What: fmt.Sprintf("fed.prepare sub=%d dom=%d (last)", lastSub, lastPrep.Domain())})
	var lastRes obs.Event
	haveRes := false
	for _, sub := range rs.fedSubs {
		if fs := rs.fed[sub]; fs.hasRes {
			if !haveRes || fs.res.TS > lastRes.TS {
				lastRes, haveRes = fs.res, true
			}
		}
	}
	if haveRes {
		steps = append(steps, Step{TS: lastRes.TS, Node: lastRes.Node, What: lastRes.Kind + " (last)"})
	}
	if rs.hasDone {
		steps = append(steps, Step{TS: rs.done.TS, Node: rs.done.Node, What: "compose.done (" + rs.done.Note + ")"})
	}
	finishSteps(steps)
	t.Critical = steps
}

// finishSteps sorts steps by time (stable, preserving causal insertion order
// on ties) and fills in the inter-step gaps.
func finishSteps(steps []Step) {
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].TS < steps[j].TS })
	for i := range steps {
		if i > 0 {
			steps[i].Gap = steps[i].TS - steps[i-1].TS
		}
	}
}
