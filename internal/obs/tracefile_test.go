package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeTraceFile(t *testing.T, path string, evs []Event) {
	t.Helper()
	tf, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		tf.Emit(ev)
	}
	if tf.Count() != int64(len(evs)) {
		t.Fatalf("Count=%d want %d", tf.Count(), len(evs))
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := sampleEvents()
	for _, name := range []string{"plain.jsonl", "packed.jsonl.gz"} {
		path := filepath.Join(dir, name)
		writeTraceFile(t, path, evs)
		got, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(evs) {
			t.Fatalf("%s: read %d events, wrote %d", name, len(got), len(evs))
		}
		for i := range evs {
			if got[i] != evs[i] {
				t.Fatalf("%s: event %d changed: wrote %+v read %+v", name, i, evs[i], got[i])
			}
		}
	}
}

func TestTraceFileGzipActuallyCompresses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl.gz")
	writeTraceFile(t, path, sampleEvents())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("no gzip magic: % x", raw[:2])
	}
	if bytes.Contains(raw, []byte(`"kind"`)) {
		t.Fatal("gz file contains plaintext JSON")
	}
}

// OpenTrace must sniff gzip by content, not file name: a compressed trace
// renamed without the .gz suffix still reads.
func TestOpenTraceSniffsRenamedGzip(t *testing.T) {
	dir := t.TempDir()
	gz := filepath.Join(dir, "t.jsonl.gz")
	writeTraceFile(t, gz, sampleEvents())
	renamed := filepath.Join(dir, "renamed.jsonl")
	if err := os.Rename(gz, renamed); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sampleEvents()) {
		t.Fatalf("read %d events", len(got))
	}
}

func TestOpenTraceMissingFile(t *testing.T) {
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}
