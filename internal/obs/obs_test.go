package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/p2p"
)

func sampleEvents() []Event {
	return []Event{
		ComposeStart(0, 3, 42, 3, 20),
		ProbeSent(time.Millisecond, 3, 42, 7, "fn1", "p7/fn1.0", 10, 0, 101, 0),
		ProbeSent(2*time.Millisecond, 7, 42, 9, "fn2", "p9/fn2.1", 5, 1, 102, 101),
		ProbeDropped(3*time.Millisecond, 9, 42, "fn2", "p9/fn2.1", "qos", 2, 102),
		ProbeReturned(4*time.Millisecond, 9, 42, 1, 2, 256, 103),
		ProbeCollected(5*time.Millisecond, 1, 42, 9, 2, 103),
		SelectDone(6*time.Millisecond, 1, 42, 4, 2),
		SessionAdmit(7*time.Millisecond, 9, 42, "p9/fn2.1"),
		ComposeDone(8*time.Millisecond, 3, 42, true, 8*time.Millisecond),
		DHTHop(9*time.Millisecond, 2, 5, 42, 1, "get"),
		DHTDeliver(10*time.Millisecond, 5, 42, 2, "get"),
		FedPrepare(10500*time.Microsecond, 5, 42, uint64(1)<<62|42<<4, 1),
		NetDrop(11*time.Millisecond, 3, 8, "bcp.probe", 128, 102),
		RecOutcome(12*time.Millisecond, 3, 42, KindRecSwitchover, 300*time.Millisecond),
		{TS: 13 * time.Millisecond, Kind: "weird", Node: 0, Peer: p2p.NoNode,
			Note: `needs "escaping" \ and ünïcode`},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, ev := range evs {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != int64(len(evs)) {
		t.Fatalf("Count=%d want %d", sink.Count(), len(evs))
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, wrote %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d changed in round trip:\n  wrote %+v\n  read  %+v", i, evs[i], got[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		for _, ev := range sampleEvents() {
			sink.Emit(ev)
		}
		sink.Flush()
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("identical event streams rendered differently")
	}
	if strings.Count(a, "\n") != len(sampleEvents()) {
		t.Fatalf("expected one line per event:\n%s", a)
	}
}

func TestJSONLOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Event{TS: time.Second, Kind: KindDHTDeliver, Node: 4, Peer: p2p.NoNode})
	sink.Flush()
	line := strings.TrimSpace(buf.String())
	want := `{"ts":1000000000,"kind":"dht.deliver","node":4}`
	if line != want {
		t.Fatalf("line=%s want %s", line, want)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"ts\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestMemSinkAndMultiTracer(t *testing.T) {
	var a, b MemSink
	multi := MultiTracer{&a, &b}
	for _, ev := range sampleEvents() {
		multi.Emit(ev)
	}
	if a.Len() != len(sampleEvents()) || b.Len() != a.Len() {
		t.Fatalf("fan-out lost events: %d / %d", a.Len(), b.Len())
	}
	evs := a.Events()
	evs[0].Kind = "mutated"
	if a.Events()[0].Kind == "mutated" {
		t.Fatal("Events() must return a copy")
	}
}

func TestRegistryRollup(t *testing.T) {
	r := NewRegistry()
	c3 := r.Node(3)
	c3.MsgsSent.Store(10)
	c3.BytesSent.Store(1000)
	c3.ProbesSent.Store(4)
	c5 := r.Node(5)
	c5.MsgsSent.Store(7)
	c5.DHTHops.Store(2)
	if r.Node(3) != c3 {
		t.Fatal("Node must return a stable pointer")
	}
	tot := r.Totals()
	if tot.MsgsSent != 17 || tot.BytesSent != 1000 || tot.ProbesSent != 4 || tot.DHTHops != 2 {
		t.Fatalf("totals=%+v", tot)
	}
	tbl := r.Table("t").String()
	if !strings.Contains(tbl, "messages sent") || !strings.Contains(tbl, "17") {
		t.Fatalf("rollup table missing totals:\n%s", tbl)
	}
	per := r.PerNodeTable("p", 1).String()
	if !strings.Contains(per, "3") || strings.Contains(per, "\n5") {
		t.Fatalf("per-node table should keep only the busiest node:\n%s", per)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != len(sampleEvents()) {
		t.Fatalf("Events=%d", s.Events)
	}
	if len(s.Reqs) != 1 {
		t.Fatalf("requests=%d want 1", len(s.Reqs))
	}
	r := s.Reqs[0]
	if r.Req != 42 || !r.Done || !r.Ok {
		t.Fatalf("req summary=%+v", r)
	}
	if r.Latency != 8*time.Millisecond {
		t.Fatalf("latency=%v", r.Latency)
	}
	if r.ProbesSent != 2 || r.ProbesDropped != 1 || r.ProbesReturned != 1 {
		t.Fatalf("probe counts=%+v", r)
	}
	if r.Candidates != 4 || r.Qualified != 2 || r.Admits != 1 {
		t.Fatalf("selection counts=%+v", r)
	}
	if s.Succeeded() != 1 {
		t.Fatalf("Succeeded=%d", s.Succeeded())
	}
	agg := s.Table("agg").String()
	if !strings.Contains(agg, "compositions ok") || !strings.Contains(agg, "events.probe.sent") {
		t.Fatalf("aggregate table:\n%s", agg)
	}
	per := s.RequestTable("per").String()
	if !strings.Contains(per, "42") || !strings.Contains(per, "ok") {
		t.Fatalf("request table:\n%s", per)
	}
}

// BenchmarkJSONLEmit guards the allocation-conscious claim: steady-state
// emission into a JSONL sink should not allocate.
func BenchmarkJSONLEmit(b *testing.B) {
	sink := NewJSONLSink(discard{})
	ev := ProbeSent(time.Millisecond, 3, 42, 7, "fn1", "p7/fn1.0", 10, 2, 12345, 12344)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Emit(ev)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
