package obs

import (
	"testing"
	"time"
)

// cleanTrace is a minimal invariant-respecting trace: a composition with
// two root probes — one is consumed by splitting into two children (one
// child dies on a QoS check, the other is lost on the wire, matched by a
// net.drop record), the other root completes and returns.
func cleanTrace() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		ComposeStart(0, 3, 42, 3, 20),
		ProbeSent(ms(1), 3, 42, 7, "fn1", "p7/fn1.0", 10, 0, 101, 0),
		ProbeSent(ms(1), 3, 42, 6, "fn1", "p6/fn1.2", 10, 0, 104, 0),
		ProbeSent(ms(2), 7, 42, 9, "fn2", "p9/fn2.1", 5, 1, 102, 101),
		ProbeSent(ms(2), 7, 42, 8, "fn2", "p8/fn2.0", 5, 1, 103, 101),
		NetDrop(ms(3), 7, 8, "bcp.probe", 192, 103),
		ProbeDropped(ms(4), 9, 42, "fn2", "p9/fn2.1", "qos", 2, 102),
		ProbeReturned(ms(5), 6, 42, 1, 1, 256, 104),
		SessionAdmit(ms(6), 9, 42, "p9/fn2.1"),
		SessionEstablish(ms(7), 3, 42, 2),
		ComposeDone(ms(8), 3, 42, true, ms(8)),
		DHTHop(ms(9), 2, 5, 0, 1, "get"),
	}
}

func hasViolation(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Name == name {
			return true
		}
	}
	return false
}

func TestCheckCleanTrace(t *testing.T) {
	if vs := Check(cleanTrace()); len(vs) != 0 {
		t.Fatalf("clean trace flagged: %v", vs)
	}
}

func TestCheckNamedViolations(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		corrupt func([]Event) []Event
		want    string
	}{
		{"leaked probe", func(evs []Event) []Event {
			// Remove the child's drop record: pid 102 never terminates and
			// no extra wire drop accounts for it.
			out := evs[:0:0]
			for _, ev := range evs {
				if ev.Kind == KindProbeDropped && ev.PID == 102 {
					continue
				}
				out = append(out, ev)
			}
			return out
		}, VioProbeConservation},
		{"budget grows on split", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].PID == 102 && out[i].Kind == KindProbeForwarded {
					out[i].Budget = 15 // parent only carried 10
				}
			}
			return out
		}, VioBudgetExceeded},
		{"origin exceeds request budget", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].PID == 101 && out[i].Kind == KindProbeSent {
					out[i].Budget = 25 // request announced 20
				}
			}
			return out
		}, VioBudgetExceeded},
		{"establish without admit", func(evs []Event) []Event {
			out := evs[:0:0]
			for _, ev := range evs {
				if ev.Kind == KindSessionAdmit {
					continue
				}
				out = append(out, ev)
			}
			return out
		}, VioEstabWithoutAdmit},
		{"establish before admit", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].Kind == KindSessionEstab {
					out[i].TS = ms(1)
				}
			}
			return out
		}, VioEstabWithoutAdmit},
		{"done without start", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...), ComposeDone(ms(9), 4, 77, false, 0))
		}, VioDoneWithoutStart},
		{"done before start", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].Kind == KindComposeStart {
					out[i].TS = ms(10)
				}
			}
			return out
		}, VioDoneBeforeStart},
		{"double done", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...), ComposeDone(ms(9), 3, 42, true, ms(9)))
		}, VioMultipleDone},
		{"double termination", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...), ProbeReturned(ms(9), 6, 42, 1, 1, 256, 104))
		}, VioProbeDoubleTerm},
		{"termination of unknown probe", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...), ProbeReturned(ms(9), 9, 42, 1, 2, 256, 999))
		}, VioProbeUnknownPID},
		{"split from unknown parent", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].PID == 102 && out[i].Kind == KindProbeForwarded {
					out[i].PPID = 888
				}
			}
			return out
		}, VioProbeUnknownPID},
		{"emission without pid", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			for i := range out {
				if out[i].PID == 101 && out[i].Kind == KindProbeSent {
					out[i].PID = 0
				}
			}
			return out
		}, VioProbeMissingPID},
		{"duplicate pid", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...),
				ProbeSent(ms(9), 3, 42, 7, "fn1", "p7/fn1.0", 10, 0, 101, 0))
		}, VioProbeDuplicatePID},
	}
	for _, tc := range cases {
		vs := Check(tc.corrupt(cleanTrace()))
		if !hasViolation(vs, tc.want) {
			t.Errorf("%s: want violation %q, got %v", tc.name, tc.want, vs)
		}
	}
}

// faultTrace exercises per-copy conservation under injected faults and
// retransmits: pid 201 is duplicated and loses one copy but returns; pid
// 202 loses its only copy to injected loss; pid 203 is retransmitted and
// both copies die on the wire.
func faultTrace() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		ComposeStart(0, 3, 43, 3, 20),
		ProbeSent(ms(1), 3, 43, 7, "fn1", "p7/fn1.0", 6, 0, 201, 0),
		NetFault(ms(1), 3, 7, FaultDup, "bcp.probe", 128, 201),
		NetDrop(ms(2), 3, 7, "bcp.probe", 128, 201),
		ProbeSent(ms(1), 3, 43, 8, "fn1", "p8/fn1.1", 6, 0, 202, 0),
		NetFault(ms(1), 3, 8, FaultLoss, "bcp.probe", 128, 202),
		ProbeSent(ms(1), 3, 43, 9, "fn1", "p9/fn1.2", 6, 0, 203, 0),
		ProbeRetx(ms(3), 3, 43, 9, "bcp.probe", 1, 203),
		NetFault(ms(1), 3, 9, FaultPartition, "bcp.probe", 128, 203),
		NetFault(ms(3), 3, 9, FaultPartition, "bcp.probe", 128, 203),
		ProbeReturned(ms(5), 7, 43, 1, 1, 256, 201),
		SessionAdmit(ms(6), 7, 43, "p7/fn1.0"),
		SessionEstablish(ms(7), 3, 43, 1),
		ComposeDone(ms(8), 3, 43, true, ms(8)),
	}
}

func TestCheckFaultTrace(t *testing.T) {
	if vs := Check(faultTrace()); len(vs) != 0 {
		t.Fatalf("fault trace flagged: %v", vs)
	}
}

func TestCheckFaultViolations(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		corrupt func([]Event) []Event
		want    string
	}{
		{"resolved probe with every copy dropped", func(evs []Event) []Event {
			// pid 201 returned, yet both its copies (original + dup) died.
			return append(append([]Event(nil), evs...),
				NetDrop(ms(4), 3, 7, "bcp.probe", 128, 201))
		}, VioProbeConservation},
		{"unresolved probe with surviving copy", func(evs []Event) []Event {
			// Drop pid 202's loss record: its only copy survived, so the
			// missing termination is a silent leak.
			out := evs[:0:0]
			for _, ev := range evs {
				if ev.Kind == KindNetFault && ev.PID == 202 {
					continue
				}
				out = append(out, ev)
			}
			return out
		}, VioProbeConservation},
		{"unresolved probe with live retransmit copy", func(evs []Event) []Event {
			// Drop one of pid 203's partition kills: one of its two copies
			// survived and must have resolved somewhere.
			out := append([]Event(nil), evs...)
			for i, ev := range out {
				if ev.Kind == KindNetFault && ev.PID == 203 {
					return append(out[:i], out[i+1:]...)
				}
			}
			return out
		}, VioProbeConservation},
		{"retransmit of unknown probe", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...),
				ProbeRetx(ms(9), 3, 43, 9, "bcp.probe", 1, 999))
		}, VioProbeUnknownPID},
		{"fault on unknown probe", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...),
				NetFault(ms(9), 3, 9, FaultLoss, "bcp.probe", 128, 998))
		}, VioProbeUnknownPID},
		{"fault without pid", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...),
				NetFault(ms(9), 3, 9, FaultLoss, "bcp.probe", 128, 0))
		}, VioProbeMissingPID},
		{"retransmit without pid", func(evs []Event) []Event {
			return append(append([]Event(nil), evs...),
				ProbeRetx(ms(9), 3, 43, 9, "bcp.probe", 1, 0))
		}, VioProbeMissingPID},
	}
	for _, tc := range cases {
		vs := Check(tc.corrupt(faultTrace()))
		if !hasViolation(vs, tc.want) {
			t.Errorf("%s: want violation %q, got %v", tc.name, tc.want, vs)
		}
	}
}

func TestCheckIgnoresNonProbeWireRecords(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	evs := append(faultTrace(),
		// Report-leg retransmits and faults on other message types carry
		// their own UIDs but must not enter probe-copy accounting.
		ProbeRetx(ms(9), 7, 43, 3, "bcp.report", 1, 777),
		NetFault(ms(9), 5, 6, FaultLoss, "recovery.ping", 64, 0),
		NetDrop(ms(9), 5, 6, "recovery.ping", 64, 0),
	)
	if vs := Check(evs); len(vs) != 0 {
		t.Fatalf("non-probe wire records flagged: %v", vs)
	}
}

func TestCheckTotals(t *testing.T) {
	evs := cleanTrace()
	good := Counters{
		ProbesSent:     4,
		ProbesDropped:  1,
		ProbesReturned: 1,
		BudgetSpent:    30, // 10 + 10 + 5 + 5
		DHTHops:        1,
		MsgsDrop:       1,
		// Not trace-derivable; arbitrary values must not trip the check.
		MsgsSent: 123, BytesSent: 456, MsgsRecv: 99,
	}
	if vs := CheckTotals(evs, good); len(vs) != 0 {
		t.Fatalf("consistent totals flagged: %v", vs)
	}
	bad := good
	bad.ProbesSent = 7
	bad.BudgetSpent = 1
	vs := CheckTotals(evs, bad)
	if !hasViolation(vs, VioCounterMismatch) || len(vs) != 2 {
		t.Fatalf("want 2 counter mismatches, got %v", vs)
	}
}

func TestCheckTotalsFaults(t *testing.T) {
	evs := faultTrace()
	good := Counters{
		ProbesSent:     3,
		ProbesReturned: 1,
		BudgetSpent:    18, // 6 + 6 + 6
		ProbesRetx:     1,
		MsgsDrop:       1,
		Faults:         4, // dup + loss + 2 partition kills
	}
	if vs := CheckTotals(evs, good); len(vs) != 0 {
		t.Fatalf("consistent fault totals flagged: %v", vs)
	}
	bad := good
	bad.ProbesRetx = 0
	bad.Faults = 9
	vs := CheckTotals(evs, bad)
	if !hasViolation(vs, VioCounterMismatch) || len(vs) != 2 {
		t.Fatalf("want 2 counter mismatches, got %v", vs)
	}
}

// fedTrace is a minimal clean 2PC trace: request 9 prepares on two domains;
// one segment commits, the other aborts (mixed outcomes are legal per
// segment — the lifecycle invariant is per-prepare, not per-request).
func fedTrace() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sub := func(seg int) uint64 { return uint64(1)<<62 | 9<<4 | uint64(seg) }
	return []Event{
		FedPrepare(ms(1), 4, 9, sub(0), 0),
		FedPrepare(ms(2), 11, 9, sub(1), 1),
		FedCommit(ms(5), 4, 9, sub(0), 0),
		FedAbort(ms(6), 11, 9, sub(1), 1, "expire"),
	}
}

func TestCheckFedLifecycle(t *testing.T) {
	if vs := Check(fedTrace()); len(vs) != 0 {
		t.Fatalf("clean 2PC trace flagged: %v", vs)
	}
}

func TestCheckFedViolations(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sub := func(seg int) uint64 { return uint64(1)<<62 | 9<<4 | uint64(seg) }
	cases := []struct {
		name    string
		corrupt func([]Event) []Event
		want    string
	}{
		{"unresolved prepare", func(evs []Event) []Event {
			// Drop the abort: sub(1) never resolves and its holder stays up.
			return evs[:3]
		}, VioFedUnresolved},
		{"double prepare", func(evs []Event) []Event {
			return append(evs, FedPrepare(ms(3), 4, 9, sub(0), 0))
		}, VioFedDoublePrepare},
		{"double resolve", func(evs []Event) []Event {
			return append(evs, FedAbort(ms(7), 4, 9, sub(0), 0, "abort"))
		}, VioFedDoubleResolve},
		{"resolve without prepare", func(evs []Event) []Event {
			return append(evs, FedCommit(ms(7), 4, 9, sub(2), 0))
		}, VioFedResolveNoPrep},
		{"resolve before prepare", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			out[2].TS = 0 // commit stamped before its prepare
			return out
		}, VioFedResolveNoPrep},
		{"domain mismatch", func(evs []Event) []Event {
			out := append([]Event(nil), evs...)
			out[2] = FedCommit(ms(5), 4, 9, sub(0), 1) // prepared in domain 0
			return out
		}, VioFedDomainMismatch},
	}
	for _, tc := range cases {
		vs := Check(tc.corrupt(fedTrace()))
		if !hasViolation(vs, tc.want) {
			t.Errorf("%s: want %s, got %v", tc.name, tc.want, vs)
		}
	}
}

// TestCheckFedCrashExcusal: a prepare left unresolved because its holder
// crashed is excused — the dead gateway cannot emit its own release, and the
// BCP commit TTL reclaims the resources out of band.
func TestCheckFedCrashExcusal(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sub := uint64(1)<<62 | 9<<4
	evs := []Event{
		FedPrepare(ms(1), 4, 9, sub, 0),
		NodeDown(ms(3), 4),
	}
	if vs := Check(evs); len(vs) != 0 {
		t.Fatalf("crash-excused prepare flagged: %v", vs)
	}
	// A crash BEFORE the prepare excuses nothing (the node was up when it
	// prepared, so it had every chance to resolve).
	early := []Event{
		NodeDown(0, 4),
		FedPrepare(ms(1), 4, 9, sub, 0),
	}
	if vs := Check(early); !hasViolation(vs, VioFedUnresolved) {
		t.Fatalf("pre-prepare crash excused the prepare: %v", vs)
	}
}

func TestCheckTotalsFed(t *testing.T) {
	evs := fedTrace()
	good := Counters{FedPrepares: 2, FedCommits: 1, FedAborts: 1}
	if vs := CheckTotals(evs, good); len(vs) != 0 {
		t.Fatalf("consistent fed totals flagged: %v", vs)
	}
	bad := good
	bad.FedCommits = 5
	if vs := CheckTotals(evs, bad); !hasViolation(vs, VioCounterMismatch) {
		t.Fatalf("fed counter drift not flagged: %v", vs)
	}
}
