package cluster_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// TestPartitionHealSoak runs sessions through a scheduled network partition
// and its heal: while the halves are cut, senders must detect broken graphs
// and recover (switchover or reactive) or die cleanly — never wedge; after
// the heal, cross-partition discovery must work again and no session may be
// left untracked.
func TestPartitionHealSoak(t *testing.T) {
	const nPeers = 30
	cat := catalog(6)
	bcfg := bcp.DefaultConfig()
	bcfg.ProbeAckTimeout = 300 * time.Millisecond
	bcfg.ProbeRetries = 2
	rc := recovery.DefaultConfig()
	rc.MissedPongs = 3
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	c := cluster.New(cluster.Options{
		Seed: 21, IPNodes: 200, Peers: nPeers, Catalog: cat,
		BCP: bcfg, Recovery: &rc, Trace: mem, Obs: reg,
	})

	peers := make([]p2p.NodeID, nPeers)
	for i := range peers {
		peers[i] = p2p.NodeID(i)
	}
	// 20s partition starting at t=30s (sessions are up by then), plus a
	// little ambient loss so the MissedPongs hysteresis is exercised too.
	spec := simnet.FaultSpec{
		Loss: 0.02, Jitter: 5 * time.Millisecond,
		PartDur: 20 * time.Second, PartAt: 30 * time.Second, Seed: 99,
	}
	c.ApplyFaults(spec.Plan(peers))
	healAt := c.Sim.Now() + 50*time.Second

	gen := workload.NewGenerator(workload.Config{
		Catalog: cat, Peers: nPeers, MinFuncs: 2, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
	}, c.Rng)
	established := 0
	for i := 0; i < 10; i++ {
		req := gen.Next()
		c.Sim.Schedule(time.Duration(i)*time.Second, func() {
			p := c.Peers[int(req.Source)]
			p.Engine.Compose(req, func(res bcp.Result) {
				if res.Ok {
					established++
					p.Recovery.Establish(req, res)
				}
			})
		})
	}

	// Soak well past the heal so recoveries and re-probing settle.
	c.Sim.Run(healAt + 60*time.Second)
	if established == 0 {
		t.Fatal("no session established before the partition")
	}

	detected, dead, switched, reactives, alive := 0, 0, 0, 0, 0
	for _, p := range c.Peers {
		st := p.Recovery.Stats()
		detected += st.FailuresDetected
		dead += st.Dead
		switched += st.Switchovers
		reactives += st.Reactives
		alive += p.Recovery.Sessions()
	}
	if detected == 0 {
		t.Error("partition broke no session: soak exercised nothing")
	}
	// Conservation: every established session is either still alive or died
	// through the recorded kill path — none may silently vanish or wedge.
	if alive+dead != established {
		t.Errorf("sessions: %d alive + %d dead != %d established", alive, dead, established)
	}
	t.Logf("established=%d detected=%d switchovers=%d reactives=%d dead=%d alive=%d",
		established, detected, switched, reactives, dead, alive)

	// After the heal, cross-half discovery works again: every function is
	// findable from both sides of the former partition.
	checkDiscovery(t, c, cat)

	// The trace must stay internally consistent through partition chaos.
	for _, v := range obs.Check(mem.Events()) {
		t.Errorf("invariant: %s", v)
	}
	for _, v := range obs.CheckTotals(mem.Events(), reg.Totals()) {
		t.Errorf("totals: %s", v)
	}
}

func checkDiscovery(t *testing.T, c *cluster.Cluster, cat []string) {
	t.Helper()
	for _, src := range []int{0, len(c.Peers) - 1} {
		for _, fn := range cat {
			fn := fn
			ok := false
			c.Peers[src].Registry.Discover(fn, 2*time.Second, func(_ []service.Component, _ int, got bool) {
				ok = got
			})
			c.Sim.RunUntilIdle()
			if !ok {
				t.Errorf("post-heal discovery of %s from peer %d failed: DHT did not re-converge", fn, src)
			}
		}
	}
}

// TestFaultTraceDeterministic pins the fault plane's determinism contract:
// identical seeds and fault plans yield byte-identical traces, and the fault
// RNG is isolated — plans whose rates are all zero produce the same trace
// regardless of their fault seed.
func TestFaultTraceDeterministic(t *testing.T) {
	render := func(plan simnet.FaultPlan) []byte {
		mem := &obs.MemSink{}
		c := cluster.New(cluster.Options{
			Seed: 31, IPNodes: 150, Peers: 24, Catalog: catalog(6), Trace: mem,
		})
		c.ApplyFaults(plan)
		gen := workload.NewGenerator(workload.Config{
			Catalog: catalog(6), Peers: 24, MinFuncs: 2, MaxFuncs: 3,
			Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
		}, c.Rng)
		for i := 0; i < 6; i++ {
			req := gen.Next()
			c.Sim.Schedule(time.Duration(i)*time.Second, func() {
				c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
			})
		}
		c.Sim.RunUntilIdle()
		b, err := json.Marshal(mem.Events())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	lossy := simnet.FaultPlan{Seed: 5, Default: simnet.LinkFaults{Loss: 0.1, Dup: 0.05, Jitter: 8 * time.Millisecond}}
	a, b := render(lossy), render(lossy)
	if string(a) != string(b) {
		t.Error("same seed + same fault plan rendered different traces")
	}

	// Zero-rate plans draw nothing from the fault RNG, so the fault seed
	// must not leak into the schedule.
	zeroA := render(simnet.FaultPlan{Seed: 1, Default: simnet.LinkFaults{}})
	zeroB := render(simnet.FaultPlan{Seed: 2, Default: simnet.LinkFaults{}})
	clean := render(simnet.FaultPlan{})
	if string(zeroA) != string(zeroB) || string(zeroA) != string(clean) {
		t.Error("zero-rate fault plan perturbed the trace (fault RNG not isolated)")
	}

	// And a different fault seed over non-zero rates is allowed to change
	// the trace — if it never does, the seed is dead configuration.
	other := render(simnet.FaultPlan{Seed: 6, Default: simnet.LinkFaults{Loss: 0.1, Dup: 0.05, Jitter: 8 * time.Millisecond}})
	if string(a) == string(other) {
		t.Error("changing the fault seed changed nothing under 10% loss")
	}
}
