package cluster_test

import (
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// TestObsTraceCounterConsistency runs a seeded full-stack workload (with a
// burst of peer failures to exercise wire drops and recovery) with every
// telemetry plane attached, then cross-checks the three against each other:
// the trace must satisfy the protocol invariants, the registry totals must
// equal the trace-derived counts, and the histograms must have observed
// exactly as many values as the counters say happened.
func TestObsTraceCounterConsistency(t *testing.T) {
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	met := obs.NewMetrics()
	rc := recovery.DefaultConfig()
	c := cluster.New(cluster.Options{
		Seed: 11, IPNodes: 400, Peers: 60, Catalog: catalog(8),
		Recovery: &rc, Trace: mem, Obs: reg, Metrics: met,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog: catalog(8), Peers: 60, MinFuncs: 2, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
	}, c.Rng)
	// Requests finish well before the failure burst: a composition launched
	// from an already-failed peer would put probes in the trace that no
	// delivery or drop ever resolves.
	for i := 0; i < 25; i++ {
		req := gen.Next()
		c.Sim.Schedule(time.Duration(i)*2*time.Second, func() {
			p := c.Peers[int(req.Source)]
			p.Engine.Compose(req, func(res bcp.Result) {
				if res.Ok {
					p.Recovery.Establish(req, res)
				}
			})
		})
	}
	c.Sim.Schedule(80*time.Second, func() {
		for _, id := range c.FailFraction(0.05) {
			id := id
			c.Sim.Schedule(60*time.Second, func() { c.Net.Recover(id) })
		}
	})
	c.Sim.Run(5 * time.Minute)

	events := mem.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	for _, v := range obs.Check(events) {
		t.Errorf("invariant: %s", v)
	}
	tot := reg.Totals()
	for _, v := range obs.CheckTotals(events, tot) {
		t.Errorf("totals: %s", v)
	}

	// Histograms against counters: one observation per counted occurrence.
	if n := met.ProbeBudget.Count(); n != tot.ProbesSent {
		t.Errorf("ProbeBudget observed %d, counters say %d probes sent", n, tot.ProbesSent)
	}
	if n := met.ProbeHops.Count(); n != tot.ProbesReturned {
		t.Errorf("ProbeHops observed %d, counters say %d probes returned", n, tot.ProbesReturned)
	}
	if n := met.WireBytes.Count(); n != tot.MsgsSent {
		t.Errorf("WireBytes observed %d, counters say %d messages sent", n, tot.MsgsSent)
	}
	if s := int64(met.WireBytes.Sum()); s != tot.BytesSent {
		t.Errorf("WireBytes sum %d, counters say %d bytes sent", s, tot.BytesSent)
	}
	if b := int64(met.ProbeBudget.Sum()); b != tot.BudgetSpent {
		t.Errorf("ProbeBudget sum %d, counters say %d budget spent", b, tot.BudgetSpent)
	}

	// Setup latency is observed exactly once per successful composition
	// (including reactive re-compositions, which emit their own
	// compose.done).
	okDone := int64(0)
	for _, ev := range events {
		if ev.Kind == obs.KindComposeDone && ev.Note == "ok" {
			okDone++
		}
	}
	if okDone == 0 {
		t.Fatal("workload produced no successful composition")
	}
	if n := met.SetupLatency.Count(); n != okDone {
		t.Errorf("SetupLatency observed %d, trace has %d ok compositions", n, okDone)
	}
	if n := met.DiscoveryLatency.Count(); n != okDone {
		t.Errorf("DiscoveryLatency observed %d, trace has %d ok compositions", n, okDone)
	}
}

// TestObsTraceDeterministic renders the same seeded workload twice and
// requires byte-identical JSONL traces — the determinism contract the CI
// gate enforces on full spidersim runs.
func TestObsTraceDeterministic(t *testing.T) {
	render := func() string {
		var buf memWriter
		sink := obs.NewJSONLSink(&buf)
		rc := recovery.DefaultConfig()
		c := cluster.New(cluster.Options{
			Seed: 12, IPNodes: 300, Peers: 40, Catalog: catalog(6),
			Recovery: &rc, Trace: sink,
		})
		gen := workload.NewGenerator(workload.Config{
			Catalog: catalog(6), Peers: 40, MinFuncs: 2, MaxFuncs: 3,
			Budget: 10, DelayReqMin: 500, DelayReqMax: 2000,
		}, c.Rng)
		for i := 0; i < 10; i++ {
			req := gen.Next()
			c.Sim.Schedule(time.Duration(i)*2*time.Second, func() {
				c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
			})
		}
		c.Sim.Run(2 * time.Minute)
		sink.Flush()
		return string(buf)
	}
	a, b := render(), render()
	if a == "" {
		t.Fatal("empty trace")
	}
	if a != b {
		t.Fatal("same seed rendered different traces")
	}
}

type memWriter []byte

func (m *memWriter) Write(p []byte) (int, error) {
	*m = append(*m, p...)
	return len(p), nil
}
