package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/service"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn%d", i)
	}
	return out
}

func TestClusterDefaults(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 5})
	if len(c.Peers) != 60 {
		t.Fatalf("peers=%d", len(c.Peers))
	}
	// Every peer hosts at least one registered component.
	for i, p := range c.Peers {
		if len(p.Components) == 0 {
			t.Fatalf("peer %d hosts nothing", i)
		}
		for _, comp := range p.Components {
			if comp.Peer != p2p.NodeID(i) {
				t.Fatalf("component %s claims wrong peer", comp.ID)
			}
		}
	}
	// Registrations are discoverable.
	fns := c.FunctionsByReplicas()
	if len(fns) == 0 {
		t.Fatal("no functions deployed")
	}
	found := false
	c.Peers[0].Registry.Discover(fns[0], time.Second, func(comps []service.Component, _ int, ok bool) {
		found = ok && len(comps) == c.Replicas(fns[0])
	})
	c.Sim.RunUntilIdle()
	if !found {
		t.Fatal("discovery returned fewer components than deployed")
	}
}

func TestClusterDeterministicAcrossBuilds(t *testing.T) {
	a := cluster.New(cluster.Options{Seed: 6, Peers: 40})
	b := cluster.New(cluster.Options{Seed: 6, Peers: 40})
	for i := range a.Peers {
		if len(a.Peers[i].Components) != len(b.Peers[i].Components) {
			t.Fatalf("peer %d component counts differ", i)
		}
		for k := range a.Peers[i].Components {
			if a.Peers[i].Components[k].ID != b.Peers[i].Components[k].ID {
				t.Fatalf("peer %d component %d differs", i, k)
			}
		}
	}
}

// TestTrustAwareChurnIntegration runs the whole stack together: sessions
// with proactive recovery under repeated failures of one specific peer;
// the trust layer learns and later compositions exclude that peer.
func TestTrustAwareChurnIntegration(t *testing.T) {
	rc := recovery.DefaultConfig()
	c := cluster.New(cluster.Options{
		Seed: 7, Peers: 70, Catalog: catalog(4),
		Recovery: &rc, TrustAware: true, MinTrust: 0.25,
	})
	fns := c.FunctionsByReplicas()
	q := qos.Unbounded()
	q[qos.Delay] = 8000
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	src := 0
	mk := func(id uint64) *service.Request {
		return &service.Request{
			ID: id, FGraph: fgraph.Linear(fns[0], fns[1]), QoSReq: q, Res: res,
			Bandwidth: 10, FailReq: 0.02,
			Source: p2p.NodeID(src), Dest: 1, Budget: 40,
		}
	}

	// Establish a session; find a component peer, repeatedly crash it and
	// bring it back so the session keeps recovering away from it.
	var flaky p2p.NodeID = p2p.NoNode
	sp := c.Peers[src]
	sp.Engine.Compose(mk(1), func(r bcp.Result) {
		if !r.Ok {
			t.Fatal("composition failed")
		}
		sp.Recovery.Establish(mk(1), r)
		for _, s := range r.Best.Comps {
			if s.Comp.Peer != 0 && s.Comp.Peer != 1 {
				flaky = s.Comp.Peer
				break
			}
		}
	})
	c.Sim.Run(c.Sim.Now() + 30*time.Second)
	if flaky == p2p.NoNode {
		t.Skip("no component peer to make flaky")
	}
	for round := 0; round < 4; round++ {
		c.Net.Fail(flaky)
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
		c.Net.Recover(flaky)
		c.Sim.Run(c.Sim.Now() + 10*time.Second)
	}

	if sp.Trust.Score(flaky) >= 0.5 {
		t.Fatalf("trust score for flaky peer = %v, want below neutral", sp.Trust.Score(flaky))
	}
	if st := sp.Recovery.Stats(); st.FailuresDetected == 0 {
		t.Fatal("recovery never engaged")
	}
}

func TestFailFraction(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 8, Peers: 50})
	failed := c.FailFraction(0.2)
	if len(failed) != 10 {
		t.Fatalf("failed %d peers, want 10", len(failed))
	}
	for _, id := range failed {
		if c.Net.Alive(id) {
			t.Fatal("failed peer reported alive")
		}
	}
}

func TestWorldAdapterConsistency(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 9, Peers: 40})
	w := c.World()
	fns := c.FunctionsByReplicas()
	if got := len(w.ComponentsFor(fns[0])); got != c.Replicas(fns[0]) {
		t.Fatalf("world sees %d replicas, cluster %d", got, c.Replicas(fns[0]))
	}
	if !w.Alive(0) {
		t.Fatal("world liveness wrong")
	}
	var req qos.Resources
	req[qos.CPU] = 1
	if !w.Commit(3, req) {
		t.Fatal("commit failed on idle peer")
	}
	if c.Peers[3].Ledger.HardAllocated() == (qos.Resources{}) {
		t.Fatal("world commit did not reach the ledger")
	}
	w.Free(3, req)
	if c.Peers[3].Ledger.HardAllocated() != (qos.Resources{}) {
		t.Fatal("world free did not reach the ledger")
	}
}

// TestDynamicPeerArrival joins a brand-new peer into a running deployment
// and verifies it becomes discoverable and composable.
func TestDynamicPeerArrival(t *testing.T) {
	c := cluster.New(cluster.Options{Seed: 10, Peers: 40, Catalog: catalog(4)})
	before := len(c.Peers)

	// The newcomer provides a function nobody else offers.
	newcomer := c.Join([]string{"exotic"}, 0)
	c.Sim.Run(c.Sim.Now() + 30*time.Second)

	if len(c.Peers) != before+1 {
		t.Fatalf("peer count %d, want %d", len(c.Peers), before+1)
	}
	if newcomer.DHT.NumLeaves() == 0 {
		t.Fatal("newcomer never joined the DHT")
	}
	// Discoverable from an old peer.
	found := false
	c.Peers[3].Registry.Discover("exotic", 2*time.Second, func(comps []service.Component, _ int, ok bool) {
		found = ok && len(comps) == 1
	})
	c.Sim.Run(c.Sim.Now() + 10*time.Second)
	if !found {
		t.Fatal("newcomer's service not discoverable")
	}
	// Composable: a request spanning an old function and the newcomer's.
	fns := c.FunctionsByReplicas()
	q := qos.Unbounded()
	q[qos.Delay] = 8000
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	req := &service.Request{
		ID: 77, FGraph: fgraph.Linear(fns[0], "exotic"), QoSReq: q, Res: res,
		Bandwidth: 10, Source: 1, Dest: 2, Budget: 16,
	}
	okc := false
	c.Peers[1].Engine.Compose(req, func(r bcp.Result) {
		okc = r.Ok
		if r.Ok {
			if !r.Best.ContainsPeer(newcomer.Node.ID()) {
				t.Error("composition did not use the only exotic provider")
			}
			c.Peers[1].Engine.Teardown(r.Best)
		}
	})
	c.Sim.Run(c.Sim.Now() + 60*time.Second)
	if !okc {
		t.Fatal("composition through the newcomer failed")
	}
}
