// Package cluster wires the full SpiderNet stack together over the
// simulation runtime: an IP-layer topology, a P2P service overlay, one DHT
// node + discovery registry + BCP engine per peer, and a population of
// service components. Tests and experiments build clusters instead of
// repeating this plumbing.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/bcp"
	"repro/internal/dht"
	"repro/internal/federation"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/trust"
)

// Options configures a simulated SpiderNet deployment. Zero fields take the
// defaults documented on each field.
type Options struct {
	Seed     int64 // RNG seed (default 1)
	IPNodes  int   // IP-layer nodes (default 400)
	Peers    int   // overlay peers (default 60)
	Degree   int   // overlay degree (default 4)
	Kind     topology.OverlayKind
	Catalog  []string      // function catalogue (default fn0..fn19)
	MinComps int           // components per peer, inclusive range (default 1)
	MaxComps int           // (default 3)
	Capacity qos.Resources // per-peer capacity (default cpu=20, mem=200)
	// QpDelayMin/Max bound each component's service delay in ms
	// (default 5..30).
	QpDelayMin, QpDelayMax float64
	// QpLossMax bounds each component's data loss rate (default 0.004).
	QpLossMax float64
	// FailProbMax bounds per-peer failure probability (default 0.05).
	FailProbMax float64
	// BCP configures every peer's composition engine.
	BCP bcp.Config
	// Load, when non-nil, enables the overload control plane: every peer's
	// probe handling and session traffic is slowed by the utilization-driven
	// processing-delay model, and (per the option fields) BCP becomes
	// load-aware and sheds work past a utilization threshold.
	Load *LoadOptions
	// DynamicJoin grows the DHT with serial joins instead of the static
	// global-knowledge build.
	DynamicJoin bool
	// Shards, when > 1, splits the unfederated deployment's DHT keyspace
	// across that many independent rings (registry.ShardPlan): registry and
	// discovery state is O(services per shard), and each ring's membership
	// state is bounded by the shard size instead of the peer count (the
	// sorted-ring build is O(n·log n) either way). Key homing is by
	// hash, so lookup results are identical at any shard count. Mutually
	// exclusive with Domains (federation already shards per domain) and with
	// DynamicJoin. 0 or 1 builds the single flat ring, byte-identical to
	// pre-sharding clusters.
	Shards int
	// Domains, when non-nil, federates the deployment: peers are partitioned
	// into administrative domains per the spec, each domain gets its own DHT
	// ring (keyspace shard) and a disjoint shard of the function catalogue,
	// gateway peers run the two-phase-commit agents, and every peer gets a
	// federation client (Peer.Fed) for cross-domain composition. Nil (the
	// default) builds the flat single-overlay deployment, byte-identical to
	// clusters built before federation existed.
	Domains *federation.Spec
	// Federation overrides the federation protocol timers (the spec's
	// hold/life keys still win). Zero fields take federation defaults.
	Federation federation.Config
	// Recovery, when non-nil, attaches a failure-recovery manager to every
	// peer.
	Recovery *recovery.Config
	// TrustAware attaches a trust manager to every peer, wires it into BCP
	// next-hop selection (threshold MinTrust) and, when recovery is on,
	// into session-outcome reporting.
	TrustAware bool
	// MinTrust is the exclusion threshold for TrustAware (default 0.2).
	MinTrust float64
	// Trace, when non-nil, receives structured events from every layer
	// (network, DHT, BCP, recovery). Deterministic per seed.
	Trace obs.Tracer
	// Obs, when non-nil, accumulates per-node counters across all layers.
	Obs *obs.Registry
	// Metrics, when non-nil, observes the online histograms (setup latency,
	// probe hops/budget, DHT lookups, switchover duration, wire bytes).
	Metrics *obs.Metrics
}

// LoadOptions configures the overload control plane on a deployment.
type LoadOptions struct {
	// Model is the per-peer processing-delay model: messages to a peer are
	// delayed by Model.Delay(utilization) on top of the link latency. A zero
	// Base disables the inflation; qos.DefaultLoadModel() is the standard.
	Model qos.LoadModel
	// Aware turns on load-aware next-hop selection and the selection-time
	// load penalty (bcp.Config.LoadAware) on every engine.
	Aware bool
	// Shed is the overload-shedding utilization threshold
	// (bcp.Config.ShedThreshold); zero disables shedding.
	Shed float64
}

// Peer bundles one overlay node's protocol stack.
type Peer struct {
	Node       p2p.Node
	Ledger     *qos.Ledger
	DHT        *dht.Node
	Registry   *registry.Registry
	Engine     *bcp.Engine
	Recovery   *recovery.Manager
	Trust      *trust.Manager
	Media      *media.Node
	Components []service.Component
	FailProb   float64
	// Fed is the peer's federation client (nil unless Options.Domains set).
	Fed *federation.Client
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Sim     *simnet.Sim
	Net     *simnet.Network
	IP      *topology.Graph
	Overlay *topology.Overlay
	Peers   []*Peer
	Rng     *rand.Rand
	// Fed is the federation control plane (nil unless Options.Domains set).
	Fed  *federation.Federation
	opts Options
}

// Plan returns the domain plan of a federated cluster, nil otherwise.
func (c *Cluster) Plan() *federation.DomainPlan {
	if c.Fed == nil {
		return nil
	}
	return c.Fed.Plan
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Seed == 0 {
		v.Seed = 1
	}
	if v.IPNodes == 0 {
		v.IPNodes = 400
	}
	if v.Peers == 0 {
		v.Peers = 60
	}
	if v.Degree == 0 {
		v.Degree = 4
	}
	if v.Catalog == nil {
		for i := 0; i < 20; i++ {
			v.Catalog = append(v.Catalog, fmt.Sprintf("fn%d", i))
		}
	}
	if v.MinComps == 0 {
		v.MinComps = 1
	}
	if v.MaxComps == 0 {
		v.MaxComps = 3
	}
	if v.Capacity == (qos.Resources{}) {
		v.Capacity[qos.CPU] = 20
		v.Capacity[qos.Memory] = 200
	}
	if v.QpDelayMax == 0 {
		v.QpDelayMin, v.QpDelayMax = 5, 30
	}
	if v.QpLossMax == 0 {
		v.QpLossMax = 0.004
	}
	if v.FailProbMax == 0 {
		v.FailProbMax = 0.05
	}
	if v.BCP == (bcp.Config{}) {
		v.BCP = bcp.DefaultConfig()
	}
	return v
}

// New builds the deployment: topology, overlay, per-peer stacks, component
// placement, and service registration (the simulator is run until the
// registrations settle).
func New(opts Options) *Cluster {
	o := opts.withDefaults()
	// Federated deployments shard the catalogue and DHT per domain, and arm
	// the BCP commit-TTL backstop before any engine is built. The nil-Domains
	// path must stay byte-identical to pre-federation clusters, so every
	// federation branch below is gated on plan != nil.
	var plan *federation.DomainPlan
	var fcfg federation.Config
	if o.Domains != nil {
		var err error
		plan, err = o.Domains.Plan(o.Peers)
		if err != nil {
			panic("cluster: " + err.Error())
		}
		if len(o.Catalog) < plan.NumDomains {
			panic(fmt.Sprintf("cluster: catalogue of %d functions cannot shard across %d domains",
				len(o.Catalog), plan.NumDomains))
		}
		fcfg = o.Federation.Apply(o.Domains)
		o.BCP.CommitTTL = fcfg.CommitTTL()
	}
	var splan *registry.ShardPlan
	if o.Shards > 1 {
		if o.Domains != nil {
			panic("cluster: Shards and Domains are mutually exclusive (federation shards per domain)")
		}
		if o.DynamicJoin {
			panic("cluster: Shards does not support DynamicJoin")
		}
		splan = registry.NewShardPlan(o.Peers, o.Shards)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	sim := simnet.NewSim()
	ip := topology.GeneratePowerLaw(o.IPNodes, 2, 2, 30, rng)
	ov := topology.BuildOverlay(ip, topology.OverlayConfig{
		NumPeers: o.Peers,
		Kind:     o.Kind,
		Degree:   o.Degree,
		CapMin:   2000,
		CapMax:   10000,
	}, rng)
	latency := func(from, to p2p.NodeID) time.Duration {
		return time.Duration(ov.Latency(int(from), int(to)) * float64(time.Millisecond))
	}
	net := simnet.NewNetwork(sim, latency, rng)
	if o.Trace != nil || o.Obs != nil || o.Metrics != nil {
		net.SetObs(o.Trace, o.Obs, o.Metrics)
	}

	c := &Cluster{Sim: sim, Net: net, IP: ip, Overlay: ov, Rng: rng, opts: o}
	oracle := &overlayOracle{ov: ov}

	if o.Load != nil {
		o.BCP.LoadAware = o.Load.Aware
		o.BCP.ShedThreshold = o.Load.Shed
		o.BCP.LoadModel = o.Load.Model
		c.opts = o // engines built below and by Join share the load-enabled config
		if o.Load.Model.Base > 0 {
			model := o.Load.Model
			net.SetProcDelay(func(to p2p.NodeID, msgType string) time.Duration {
				// Every message the peer processes queues behind its service
				// sessions (the peer is one M/M/1 server): probe handling,
				// DHT lookups routed through it, ACKs, media — all inflate
				// with its utilization.
				if i := int(to); i >= 0 && i < len(c.Peers) {
					return model.Delay(c.Peers[i].Ledger.Utilization())
				}
				return 0
			})
		}
	}

	dhtNodes := make([]*dht.Node, o.Peers)
	for i := 0; i < o.Peers; i++ {
		host := net.AddNode(p2p.NodeID(i))
		ledger := qos.NewLedger(o.Capacity)
		dn := dht.New(host, net.Alive)
		var reg *registry.Registry
		if splan != nil {
			reg = registry.NewSharded(dn, splan)
		} else {
			reg = registry.New(dn)
		}
		failProb := rng.Float64() * o.FailProbMax

		// A federated peer draws its components from its domain's catalogue
		// shard, so every function is provided by exactly one domain.
		catalog := o.Catalog
		if plan != nil {
			catalog = plan.CatalogFor(plan.DomainOf(p2p.NodeID(i)), o.Catalog)
		}
		ncomps := o.MinComps + rng.Intn(o.MaxComps-o.MinComps+1)
		comps := make([]service.Component, 0, ncomps)
		used := make(map[string]bool)
		for k := 0; k < ncomps; k++ {
			fn := catalog[rng.Intn(len(catalog))]
			if used[fn] {
				continue // a peer provides each function at most once
			}
			used[fn] = true
			var qp qos.Vector
			qp[qos.Delay] = o.QpDelayMin + rng.Float64()*(o.QpDelayMax-o.QpDelayMin)
			qp[qos.Loss] = qos.LossToAdditive(rng.Float64() * o.QpLossMax)
			var res qos.Resources
			res[qos.CPU] = 1
			res[qos.Memory] = 10
			comps = append(comps, service.Component{
				ID:       fmt.Sprintf("p%d/%s.%d", i, fn, k),
				Function: fn,
				Peer:     p2p.NodeID(i),
				Qp:       qp,
				Res:      res,
				FailProb: failProb,
			})
		}
		eng := bcp.NewEngine(host, ledger, reg, oracle, comps, o.BCP)
		if o.Load != nil {
			eng.Load = loadOracle{c}
		}
		eng.Trace = o.Trace
		dn.Trace = o.Trace
		eng.Met = o.Metrics
		dn.Met = o.Metrics
		if o.Obs != nil {
			eng.Ctr = o.Obs.Node(host.ID())
			dn.Ctr = eng.Ctr
		}
		var rec *recovery.Manager
		if o.Recovery != nil {
			rec = recovery.NewManager(eng, *o.Recovery)
			rec.Trace = o.Trace
			rec.Met = o.Metrics
		}
		var tm *trust.Manager
		if o.TrustAware {
			tm = trust.NewManager(host, dn, trust.DefaultConfig())
			eng.Trust = tm
			minTrust := o.MinTrust
			if minTrust == 0 {
				minTrust = 0.2
			}
			eng.MinTrust = minTrust
			if rec != nil {
				rec.Trust = tm
			}
		}
		med := media.Attach(host, eng.LocalComponent)
		c.Peers = append(c.Peers, &Peer{
			Node: host, Ledger: ledger, DHT: dn, Registry: reg,
			Engine: eng, Recovery: rec, Trust: tm, Media: med, Components: comps, FailProb: failProb,
		})
		dhtNodes[i] = dn
	}

	switch {
	case plan != nil && o.DynamicJoin:
		// Serial joins bootstrap within the domain, so each domain grows its
		// own ring.
		for _, members := range plan.Members {
			for i := 1; i < len(members); i++ {
				dhtNodes[members[i]].Join(members[rng.Intn(i)])
				sim.RunUntilIdle()
			}
		}
	case plan != nil:
		// One DHT ring per domain: the member subsets never reference each
		// other, so every domain owns a disjoint keyspace shard and service
		// registrations stay within their domain.
		for _, members := range plan.Members {
			ring := make([]*dht.Node, len(members))
			for i, id := range members {
				ring[i] = dhtNodes[id]
			}
			dht.Build(ring)
		}
	case o.DynamicJoin:
		for i := 1; i < o.Peers; i++ {
			dhtNodes[i].Join(p2p.NodeID(rng.Intn(i)))
			sim.RunUntilIdle()
		}
	case splan != nil:
		// One DHT ring per keyspace shard: each ring's members only ever
		// learn each other. The sorted-ring build is O(n·log n), so running
		// it S times over rings of size peers/S costs about the same as one
		// flat build — sharding here buys bounded per-ring state and local
		// maintenance traffic, not construction time.
		for _, members := range splan.Members {
			ring := make([]*dht.Node, len(members))
			for i, id := range members {
				ring[i] = dhtNodes[id]
			}
			dht.Build(ring)
		}
	default:
		dht.Build(dhtNodes)
	}

	// Register every component and let the puts settle.
	for _, p := range c.Peers {
		for _, comp := range p.Components {
			p.Registry.Register(comp)
		}
	}
	sim.RunUntilIdle()

	if plan != nil {
		// The federation control plane goes up after discovery has settled:
		// coordinators and gateway agents on each domain's designated peers,
		// a client on every peer, and one advertisement round so each
		// coordinator knows every domain's function set.
		localFns := make([][]string, plan.NumDomains)
		for d, members := range plan.Members {
			seen := make(map[string]bool)
			for _, id := range members {
				for _, comp := range c.Peers[id].Components {
					if !seen[comp.Function] {
						seen[comp.Function] = true
						localFns[d] = append(localFns[d], comp.Function)
					}
				}
			}
		}
		c.Fed = federation.New(federation.Deployment{
			Plan:     plan,
			Cfg:      fcfg,
			Host:     func(id p2p.NodeID) p2p.Node { return c.Peers[id].Node },
			Engine:   func(id p2p.NodeID) *bcp.Engine { return c.Peers[id].Engine },
			LocalFns: localFns,
			Trace:    o.Trace,
			Obs:      o.Obs,
		})
		for _, p := range c.Peers {
			p.Fed = c.Fed.NewClient(p.Node)
		}
		c.Fed.Bootstrap()
		sim.RunUntilIdle()
	}
	net.ResetStats()
	return c
}

// Join adds a brand-new peer to a running deployment: it picks an unused IP
// node as its host, joins the DHT through a live bootstrap peer, registers
// the given components, and becomes fully composable once the join traffic
// settles (run the simulator). This models the paper's dynamic peer
// arrivals. The overlay data plane maps the newcomer onto its bootstrap's
// routes.
func (c *Cluster) Join(components []string, bootstrap p2p.NodeID) *Peer {
	id := p2p.NodeID(len(c.Peers))
	// Host the newcomer on an IP node no existing peer occupies.
	used := make(map[int]bool, len(c.Peers))
	for p := 0; p < c.Overlay.N(); p++ {
		used[c.Overlay.PeerIP(p)] = true
	}
	ip := c.Rng.Intn(c.IP.N())
	for used[ip] {
		ip = c.Rng.Intn(c.IP.N())
	}
	c.Overlay.AddPeer(c.IP, ip, 4, c.Rng)
	host := c.Net.AddNode(id)
	ledger := qos.NewLedger(c.opts.Capacity)
	dn := dht.New(host, c.Net.Alive)
	reg := registry.New(dn)

	comps := make([]service.Component, 0, len(components))
	for k, fn := range components {
		var qp qos.Vector
		qp[qos.Delay] = c.opts.QpDelayMin + c.Rng.Float64()*(c.opts.QpDelayMax-c.opts.QpDelayMin)
		qp[qos.Loss] = qos.LossToAdditive(c.Rng.Float64() * c.opts.QpLossMax)
		var res qos.Resources
		res[qos.CPU] = 1
		res[qos.Memory] = 10
		comps = append(comps, service.Component{
			ID:       fmt.Sprintf("p%d/%s.%d", int(id), fn, k),
			Function: fn,
			Peer:     id,
			Qp:       qp,
			Res:      res,
		})
	}
	eng := bcp.NewEngine(host, ledger, reg, c.Oracle(), comps, c.opts.BCP)
	if c.opts.Load != nil {
		eng.Load = loadOracle{c}
	}
	eng.Trace = c.opts.Trace
	dn.Trace = c.opts.Trace
	eng.Met = c.opts.Metrics
	dn.Met = c.opts.Metrics
	if c.opts.Obs != nil {
		eng.Ctr = c.opts.Obs.Node(host.ID())
		dn.Ctr = eng.Ctr
	}
	var rec *recovery.Manager
	if c.opts.Recovery != nil {
		rec = recovery.NewManager(eng, *c.opts.Recovery)
		rec.Trace = c.opts.Trace
		rec.Met = c.opts.Metrics
	}
	med := media.Attach(host, eng.LocalComponent)
	p := &Peer{
		Node: host, Ledger: ledger, DHT: dn, Registry: reg,
		Engine: eng, Recovery: rec, Media: med, Components: comps,
	}
	c.Peers = append(c.Peers, p)

	dn.Join(bootstrap)
	// Register services once the join has seeded the routing state; on the
	// virtual clock one second is ample.
	host.After(time.Second, func() {
		for _, comp := range comps {
			reg.Register(comp)
		}
	})
	return p
}

// Replicas returns how many components provide fn across live peers.
func (c *Cluster) Replicas(fn string) int {
	n := 0
	for _, p := range c.Peers {
		for _, comp := range p.Components {
			if comp.Function == fn {
				n++
			}
		}
	}
	return n
}

// ComponentsFor returns every component providing fn, live or not.
func (c *Cluster) ComponentsFor(fn string) []service.Component {
	var out []service.Component
	for _, p := range c.Peers {
		for _, comp := range p.Components {
			if comp.Function == fn {
				out = append(out, comp)
			}
		}
	}
	return out
}

// FunctionsByReplicas returns the provided functions sorted by replica
// count descending — convenient for building requests that are actually
// satisfiable.
func (c *Cluster) FunctionsByReplicas() []string {
	type fc struct {
		fn string
		n  int
	}
	var fcs []fc
	for _, fn := range c.opts.Catalog {
		if n := c.Replicas(fn); n > 0 {
			fcs = append(fcs, fc{fn, n})
		}
	}
	for i := 1; i < len(fcs); i++ {
		for j := i; j > 0 && fcs[j].n > fcs[j-1].n; j-- {
			fcs[j], fcs[j-1] = fcs[j-1], fcs[j]
		}
	}
	out := make([]string, len(fcs))
	for i, f := range fcs {
		out[i] = f.fn
	}
	return out
}

// Oracle returns the data-plane oracle shared by all engines.
func (c *Cluster) Oracle() bcp.Oracle { return &overlayOracle{ov: c.Overlay} }

// ApplyFaults installs a fault plan on the cluster's network. Partition
// windows in the plan are interpreted relative to "now" (the plan's From/Until
// are offsets from the moment of the call), so a plan built once can be
// applied after the registration warm-up without adjusting for settle time.
func (c *Cluster) ApplyFaults(plan simnet.FaultPlan) {
	c.Net.SetFaults(plan.Shift(c.Sim.Now()))
}

// FailFraction fails the given fraction of peers uniformly at random and
// returns their IDs.
func (c *Cluster) FailFraction(frac float64) []p2p.NodeID {
	n := int(frac * float64(len(c.Peers)))
	perm := c.Rng.Perm(len(c.Peers))
	var failed []p2p.NodeID
	for i := 0; i < n; i++ {
		id := p2p.NodeID(perm[i])
		if c.Net.Alive(id) {
			c.Net.Fail(id)
			failed = append(failed, id)
		}
	}
	return failed
}

// loadOracle exposes every peer's ledger utilization to BCP's load-aware
// selection: hard utilization for routing (it drives processing delay),
// committed utilization for shed prediction. Unknown peers read as idle.
type loadOracle struct{ c *Cluster }

func (lo loadOracle) Util(p p2p.NodeID) float64 {
	if i := int(p); i >= 0 && i < len(lo.c.Peers) {
		return lo.c.Peers[i].Ledger.Utilization()
	}
	return 0
}

func (lo loadOracle) Committed(p p2p.NodeID) float64 {
	if i := int(p); i >= 0 && i < len(lo.c.Peers) {
		return lo.c.Peers[i].Ledger.CommittedUtilization()
	}
	return 0
}

// overlayOracle adapts topology.Overlay to the bcp.Oracle interface.
type overlayOracle struct {
	ov *topology.Overlay
}

func (o *overlayOracle) Path(a, b p2p.NodeID) (float64, float64, bool) {
	p, ok := o.ov.Route(int(a), int(b))
	if !ok {
		return 0, 0, false
	}
	return p.Latency, o.ov.AvailBandwidth(p), true
}

func (o *overlayOracle) AllocBandwidth(a, b p2p.NodeID, kbps float64) bool {
	p, ok := o.ov.Route(int(a), int(b))
	if !ok {
		return false
	}
	return o.ov.AllocBandwidth(p, kbps)
}

func (o *overlayOracle) ReleaseBandwidth(a, b p2p.NodeID, kbps float64) {
	if p, ok := o.ov.Route(int(a), int(b)); ok {
		o.ov.ReleaseBandwidth(p, kbps)
	}
}

// World returns the baselines' omniscient view over this cluster: global
// component listings, liveness, ledgers, and the data plane.
func (c *Cluster) World() baselines.World { return &world{c: c} }

type world struct{ c *Cluster }

func (w *world) ComponentsFor(fn string) []service.Component { return w.c.ComponentsFor(fn) }
func (w *world) Alive(p p2p.NodeID) bool                     { return w.c.Net.Alive(p) }

func (w *world) Avail(p p2p.NodeID) qos.Resources {
	return w.c.Peers[int(p)].Ledger.AvailableHard()
}

func (w *world) Path(a, b p2p.NodeID) (float64, float64, bool) {
	pth, ok := w.c.Overlay.Route(int(a), int(b))
	if !ok {
		return 0, 0, false
	}
	return pth.Latency, w.c.Overlay.AvailBandwidth(pth), true
}

func (w *world) Commit(p p2p.NodeID, res qos.Resources) bool {
	return w.c.Peers[int(p)].Ledger.CommitDirect(res)
}

func (w *world) Free(p p2p.NodeID, res qos.Resources) {
	w.c.Peers[int(p)].Ledger.Free(res)
}

func (w *world) AllocBandwidth(a, b p2p.NodeID, kbps float64) bool {
	pth, ok := w.c.Overlay.Route(int(a), int(b))
	if !ok {
		return false
	}
	return w.c.Overlay.AllocBandwidth(pth, kbps)
}

func (w *world) ReleaseBandwidth(a, b p2p.NodeID, kbps float64) {
	if pth, ok := w.c.Overlay.Route(int(a), int(b)); ok {
		w.c.Overlay.ReleaseBandwidth(pth, kbps)
	}
}

func (w *world) Peers() []p2p.NodeID {
	ids := make([]p2p.NodeID, len(w.c.Peers))
	for i := range ids {
		ids[i] = p2p.NodeID(i)
	}
	return ids
}
