package cluster_test

import (
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/media"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/workload"
)

// TestSoak runs the whole system for 30 simulated minutes under combined
// stress — session workload, periodic churn, dynamic peer arrivals, and
// data-plane streaming — and checks global invariants at the end: every
// session is either alive on live peers or accounted for as dead, no live
// peer leaks resources after teardown, and the deterministic simulator
// never wedges.
func TestSoak(t *testing.T) {
	rc := recovery.DefaultConfig()
	c := cluster.New(cluster.Options{
		Seed: 60, IPNodes: 600, Peers: 80,
		Catalog:  []string{"downscale", "requant", "stock-ticker", "upscale", "subimage"},
		Recovery: &rc, TrustAware: true,
	})
	gen := workload.NewGenerator(workload.Config{
		Catalog: c.FunctionsByReplicas(), Peers: 80,
		MinFuncs: 2, MaxFuncs: 3, Budget: 30,
		DelayReqMin: 3000, DelayReqMax: 8000, FailReq: 0.03,
	}, c.Rng)

	const wantSessions = 20
	var reqs []*workloadRequest
	established := 0
	framesOut, framesIn := 0, 0

	establish := func() {
		req := gen.Next()
		p := c.Peers[int(req.Source)]
		if !c.Net.Alive(req.Source) || !c.Net.Alive(req.Dest) {
			return
		}
		p.Engine.Compose(req, func(r bcp.Result) {
			if !r.Ok {
				return
			}
			p.Recovery.Establish(req, r)
			established++
			reqs = append(reqs, &workloadRequest{req: req})
			// The receiver counts frames for the whole soak.
			c.Peers[int(req.Dest)].Media.OnDeliver(func(media.Frame) { framesIn++ })
		})
	}
	for i := 0; i < wantSessions; i++ {
		establish()
	}
	c.Sim.Run(30 * time.Second)

	horizon := 30 * time.Minute
	for minute := time.Duration(1); minute <= horizon/time.Minute*time.Minute; minute += time.Minute {
		minute := minute
		c.Sim.Schedule(30*time.Second+minute-c.Sim.Now(), func() {
			// Churn: 2% fail, recover two minutes later.
			for _, id := range c.FailFraction(0.02) {
				id := id
				c.Sim.Schedule(2*time.Minute, func() { c.Net.Recover(id) })
			}
			// Occasionally a new peer arrives.
			if int(minute/time.Minute)%7 == 0 {
				for b := 0; b < 80; b++ {
					if c.Net.Alive(p2p.NodeID(b)) {
						c.Join([]string{"requant"}, p2p.NodeID(b))
						break
					}
				}
			}
			// Stream a frame through every live session.
			for _, s := range reqs {
				req := s.req
				if !c.Net.Alive(req.Source) {
					continue
				}
				mgr := c.Peers[int(req.Source)].Recovery
				if sess := mgr.Session(req.ID); sess != nil {
					framesOut++
					c.Peers[int(req.Source)].Media.SendFrame(sess.Active, media.NewFrame(framesOut, 320, 240))
				}
			}
			// Keep the population topped up.
			live := 0
			for _, s := range reqs {
				if c.Net.Alive(s.req.Source) && c.Peers[int(s.req.Source)].Recovery.Session(s.req.ID) != nil {
					live++
				}
			}
			for i := live; i < wantSessions; i++ {
				establish()
			}
		})
	}
	c.Sim.Run(30*time.Second + horizon + 5*time.Minute)

	if established < wantSessions {
		t.Fatalf("only %d sessions ever established", established)
	}
	if framesOut == 0 || framesIn == 0 {
		t.Fatalf("streaming dead: out=%d in=%d", framesOut, framesIn)
	}
	// Most injected frames arrive (sessions break mid-flight occasionally).
	if float64(framesIn) < 0.6*float64(framesOut) {
		t.Fatalf("frame delivery too lossy: %d/%d", framesIn, framesOut)
	}

	// After closing every surviving session and letting timers expire, no
	// LIVE peer may hold any allocation.
	for _, s := range reqs {
		if c.Net.Alive(s.req.Source) {
			c.Peers[int(s.req.Source)].Recovery.Close(s.req.ID)
		}
	}
	c.Sim.Run(c.Sim.Now() + 2*time.Minute)
	for i, p := range c.Peers {
		if !c.Net.Alive(p2p.NodeID(i)) {
			continue
		}
		if got := p.Ledger.SoftAllocated(); got != (qos.Resources{}) {
			t.Fatalf("peer %d leaks soft %v after soak", i, got)
		}
	}
	// Recovery did real work during the soak.
	totalSwitch, totalDead := 0, 0
	for _, p := range c.Peers {
		if p.Recovery != nil {
			st := p.Recovery.Stats()
			totalSwitch += st.Switchovers + st.Reactives
			totalDead += st.Dead
		}
	}
	if totalSwitch == 0 {
		t.Fatal("churn caused no recoveries in 30 minutes")
	}
	t.Logf("soak: %d sessions established, %d recoveries, %d dead, frames %d/%d",
		established, totalSwitch, totalDead, framesIn, framesOut)
}

type workloadRequest struct {
	req *service.Request
}
