package cluster_test

import (
	"encoding/json"
	"sort"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// TestShardedLookupIdenticalProviders is the sharding correctness contract:
// keys are homed by hash, so the provider list a discovery returns must be
// identical — same components, same order after sorting by ID — at every
// shard count. Shard counts {1, 4, 16} over the same seed must agree
// function-for-function.
func TestShardedLookupIdenticalProviders(t *testing.T) {
	cat := catalog(10)
	providers := func(shards int) map[string][]string {
		c := cluster.New(cluster.Options{
			Seed: 17, IPNodes: 300, Peers: 48, Catalog: cat, Shards: shards,
		})
		out := make(map[string][]string)
		for _, src := range []int{0, 23, 47} {
			for _, fn := range cat {
				fn := fn
				var ids []string
				ok := false
				c.Peers[src].Registry.Discover(fn, 2*time.Second, func(comps []service.Component, _ int, got bool) {
					ok = got
					for _, comp := range comps {
						ids = append(ids, comp.ID)
					}
				})
				c.Sim.RunUntilIdle()
				if !ok {
					t.Fatalf("shards=%d: discovery of %s from peer %d failed", shards, fn, src)
				}
				sort.Strings(ids)
				if prev, seen := out[fn]; seen {
					if len(prev) != len(ids) {
						t.Fatalf("shards=%d: %s provider count differs across sources: %v vs %v", shards, fn, prev, ids)
					}
					for i := range prev {
						if prev[i] != ids[i] {
							t.Fatalf("shards=%d: %s providers differ across sources", shards, fn)
						}
					}
				}
				out[fn] = ids
			}
		}
		return out
	}

	base := providers(1)
	for _, s := range []int{4, 16} {
		got := providers(s)
		for fn, want := range base {
			have := got[fn]
			if len(have) != len(want) {
				t.Fatalf("shards=%d: %s has %d providers, shards=1 has %d", s, fn, len(have), len(want))
			}
			for i := range want {
				if have[i] != want[i] {
					t.Fatalf("shards=%d: %s provider %d is %s, shards=1 says %s", s, fn, i, have[i], want[i])
				}
			}
		}
	}
}

// TestShardOneByteIdenticalToUnsharded: Shards=1 builds one ring and homes
// every key on it, so the message schedule — and therefore the trace — must
// be byte-identical to a cluster built before sharding existed.
func TestShardOneByteIdenticalToUnsharded(t *testing.T) {
	render := func(shards int) []byte {
		mem := &obs.MemSink{}
		c := cluster.New(cluster.Options{
			Seed: 29, IPNodes: 150, Peers: 24, Catalog: catalog(6), Trace: mem, Shards: shards,
		})
		gen := workload.NewGenerator(workload.Config{
			Catalog: catalog(6), Peers: 24, MinFuncs: 2, MaxFuncs: 3,
			Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
		}, c.Rng)
		for i := 0; i < 6; i++ {
			req := gen.Next()
			c.Sim.Schedule(time.Duration(i)*time.Second, func() {
				c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
			})
		}
		c.Sim.RunUntilIdle()
		b, err := json.Marshal(mem.Events())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(render(0)) != string(render(1)) {
		t.Fatal("Shards=1 trace differs from the unsharded cluster")
	}
}

// TestShardedChaosInvariants is the in-package version of the CI sharding
// chaos gate: 20% loss plus duplication and jitter over a 16-shard
// deployment, a compose workload on top, and the full trace invariant suite
// (probe conservation, lookup lifecycle, counter cross-checks) must hold.
func TestShardedChaosInvariants(t *testing.T) {
	cat := catalog(8)
	mem := &obs.MemSink{}
	reg := obs.NewRegistry()
	// Fault-hardened BCP config, as spidersim arms it whenever faults are on:
	// without per-hop probe acks the dup/loss mix legitimately double-
	// terminates probes, sharded or not.
	bcfg := bcp.DefaultConfig()
	bcfg.ProbeAckTimeout = 300 * time.Millisecond
	bcfg.ProbeRetries = 2
	c := cluster.New(cluster.Options{
		Seed: 13, IPNodes: 250, Peers: 64, Catalog: cat, Shards: 16,
		BCP: bcfg, Trace: mem, Obs: reg,
	})
	c.ApplyFaults(simnet.FaultPlan{Seed: 3, Default: simnet.LinkFaults{Loss: 0.2, Dup: 0.05, Jitter: 10 * time.Millisecond}})

	gen := workload.NewGenerator(workload.Config{
		Catalog: cat, Peers: 64, MinFuncs: 2, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
	}, c.Rng)
	done, okCount := 0, 0
	for i := 0; i < 30; i++ {
		req := gen.Next()
		c.Sim.Schedule(time.Duration(i)*500*time.Millisecond, func() {
			c.Peers[int(req.Source)].Engine.Compose(req, func(res bcp.Result) {
				done++
				if res.Ok {
					okCount++
				}
			})
		})
	}
	c.Sim.RunUntilIdle()
	if done != 30 {
		t.Fatalf("hung compositions under sharded chaos: %d of 30 resolved", done)
	}
	if okCount == 0 {
		t.Fatal("no composition succeeded — workload exercised nothing")
	}
	for _, v := range obs.Check(mem.Events()) {
		t.Errorf("invariant: %s", v)
	}
	for _, v := range obs.CheckTotals(mem.Events(), reg.Totals()) {
		t.Errorf("totals: %s", v)
	}
	t.Logf("sharded chaos: %d/30 compositions succeeded under 20%% loss", okCount)
}

// TestShardedTraceDeterministic: the sharded path must keep the repo's
// same-seed byte-identical trace contract, faults included.
func TestShardedTraceDeterministic(t *testing.T) {
	render := func() []byte {
		mem := &obs.MemSink{}
		c := cluster.New(cluster.Options{
			Seed: 11, IPNodes: 150, Peers: 32, Catalog: catalog(6), Shards: 4, Trace: mem,
		})
		c.ApplyFaults(simnet.FaultPlan{Seed: 5, Default: simnet.LinkFaults{Loss: 0.1, Jitter: 5 * time.Millisecond}})
		gen := workload.NewGenerator(workload.Config{
			Catalog: catalog(6), Peers: 32, MinFuncs: 2, MaxFuncs: 3,
			Budget: 12, DelayReqMin: 500, DelayReqMax: 2000,
		}, c.Rng)
		for i := 0; i < 8; i++ {
			req := gen.Next()
			c.Sim.Schedule(time.Duration(i)*time.Second, func() {
				c.Peers[int(req.Source)].Engine.Compose(req, func(bcp.Result) {})
			})
		}
		c.Sim.RunUntilIdle()
		b, err := json.Marshal(mem.Events())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(render()) != string(render()) {
		t.Fatal("sharded cluster trace not deterministic")
	}
}
