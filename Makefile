GO ?= go

.PHONY: all build test vet race ci bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci runs the full verification gate: vet + build + race-enabled tests.
ci:
	sh scripts/ci.sh

# bench writes BENCH_<timestamp>.json with the microbenchmark suite.
bench:
	$(GO) run ./cmd/spiderbench -bench

clean:
	rm -f BENCH_*.json
