// Videostream: the paper's customizable video streaming application (§6.2)
// on the live goroutine runtime. A wide-area deployment of 102 hosts — each
// providing one of the six multimedia components — composes a pipeline with
// an exchangeable composition order (color-style operations commute with
// scaling), then streams video frames through the composed service graph
// and prints the transformations each frame accumulated.
package main

import (
	"fmt"
	"time"

	spidernet "repro"
)

func main() {
	// Speedup 20 compresses wide-area latencies so the demo finishes in a
	// couple of wall seconds; reported times are scaled back.
	live := spidernet.NewLive(spidernet.LiveOptions{Hosts: 102, Seed: 7, Speedup: 20})
	defer live.Close()

	for _, f := range spidernet.MediaFunctions() {
		fmt.Printf("%-15s %d replicas\n", f, live.Replicas(f))
	}

	// downscale -> stock-ticker -> requant, where the ticker embedding and
	// the re-quantification may be exchanged (a commutation link): BCP
	// explores both composition patterns and keeps the better one.
	b := spidernet.NewRequest().
		MaxDelay(10*time.Second).
		Bandwidth(300).
		Budget(24).
		Between(0, 1)
	down := b.Function("downscale")
	tick := b.Function("stock-ticker")
	rq := b.Function("requant")
	b.Depends(down, tick).Depends(tick, rq).Commutes(tick, rq)
	req := b.MustBuild()

	res := live.Compose(req)
	if !res.Ok {
		fmt.Println("composition failed")
		return
	}
	fmt.Printf("\ncomposed: %s\n", res.Best)
	fmt.Printf("setup took %v (discovery %v)\n",
		live.Unscale(res.SetupTime), live.Unscale(res.DiscoveryTime))

	frames := live.Stream(res.Best, 24, 1280, 720, 30*time.Second)
	fmt.Printf("\nstreamed %d frames end to end; last frame:\n", len(frames))
	if len(frames) > 0 {
		last := frames[len(frames)-1]
		fmt.Printf("  %s\n  path: %v\n", last, last.Trace)
	}
	live.Teardown(res.Best)
}
