// Quickstart: build a simulated SpiderNet overlay, compose a three-function
// service with the bounded composition probing protocol, inspect the
// selected service graph and its backups, and release the session.
package main

import (
	"fmt"
	"time"

	spidernet "repro"
)

func main() {
	// A 60-peer service overlay over a 400-node power-law IP network. Each
	// peer hosts 1–3 components drawn from the default 20-function
	// catalogue and registers them in the decentralized discovery substrate
	// (a Pastry-style DHT).
	net := spidernet.NewSim(spidernet.SimOptions{Seed: 42, Peers: 60})

	// The three most-replicated functions are guaranteed composable.
	fns := net.Functions()[:3]
	fmt.Printf("composing %v (replicas: %d, %d, %d)\n",
		fns, net.Replicas(fns[0]), net.Replicas(fns[1]), net.Replicas(fns[2]))

	req := spidernet.NewRequest().
		Functions(fns...).               // linear function graph F1 -> F2 -> F3
		MaxDelay(1500*time.Millisecond). // end-to-end QoS requirement
		Bandwidth(100).                  // kbps on every service link
		Resources(1, 10).                // per-component CPU / memory
		Budget(24).                      // probing budget β: at most 24 probes
		Between(0, 1).                   // sender peer 0, receiver peer 1
		MustBuild()

	res := net.Compose(req)
	if !res.Ok {
		fmt.Println("no qualified service graph found")
		return
	}

	fmt.Printf("\nselected service graph (min-ψ load balance):\n  %s\n", res.Best)
	fmt.Printf("end-to-end QoS: %s\n", res.Best.QoS)
	fmt.Printf("estimated failure probability: %.4f\n", res.Best.FailProb())
	fmt.Printf("setup: discovery=%v probing+selection+init=%v total=%v\n",
		res.DiscoveryTime, res.SetupTime-res.DiscoveryTime, res.SetupTime)

	fmt.Printf("\n%d backup graphs available for failure recovery:\n", len(res.Backups))
	for i, b := range res.Backups {
		fmt.Printf("  #%d overlap=%d  %s\n", i+1, b.Overlap(res.Best), b)
	}

	net.Teardown(res.Best)
	fmt.Println("\nsession released")
}
