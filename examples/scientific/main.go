// Scientific: the collaborative scientific computation scenario from the
// paper's introduction — geographically distributed labs share data
// analysis tools as service components, and an experiment composes them
// into a DAG pipeline: an ingest stage fans out to two parallel analysis
// branches whose results a merge stage joins.
//
// The example also shows the load-balancing effect of the ψ cost function:
// after several sessions are admitted, new compositions route around the
// loaded peers.
package main

import (
	"fmt"
	"time"

	spidernet "repro"
)

func main() {
	catalog := []string{"ingest", "spectral", "statistics", "merge", "visualize"}
	net := spidernet.NewSim(spidernet.SimOptions{
		Seed:    23,
		Peers:   90,
		Catalog: catalog,
	})
	for _, f := range catalog {
		fmt.Printf("%-11s %d replicas\n", f, net.Replicas(f))
	}

	build := func() *spidernet.Request {
		// ingest -> {spectral, statistics} -> merge : a diamond DAG. Each
		// composition probe walks one branch; the destination merges branch
		// recordings that agree on the shared ingest/merge components.
		b := spidernet.NewRequest().
			MaxDelay(3*time.Second).
			Bandwidth(80).
			Resources(2, 20).
			Budget(32).
			Between(2, 3)
		ing := b.Function("ingest")
		spec := b.Function("spectral")
		stat := b.Function("statistics")
		mrg := b.Function("merge")
		b.Depends(ing, spec).Depends(ing, stat).Depends(spec, mrg).Depends(stat, mrg)
		return b.MustBuild()
	}

	// Admit a batch of experiment pipelines and watch load spread.
	usage := map[spidernet.PeerID]int{}
	admitted := 0
	for i := 0; i < 8; i++ {
		res := net.Compose(build())
		if !res.Ok {
			fmt.Printf("pipeline %d: no qualified composition\n", i)
			continue
		}
		admitted++
		for _, c := range res.Best.Components() {
			usage[c.Peer]++
		}
		fmt.Printf("pipeline %d: %s  (delay %.0fms)\n", i, res.Best, res.Best.QoS[0])
	}

	// With min-ψ selection the sessions spread across peers instead of
	// piling on one host.
	maxLoad := 0
	for _, n := range usage {
		if n > maxLoad {
			maxLoad = n
		}
	}
	fmt.Printf("\n%d pipelines admitted across %d distinct peers (max components on one peer: %d)\n",
		admitted, len(usage), maxLoad)
}
