// Adaptive: alternative-variant composition (the paper's §8 future-work
// "conditional branch" semantics, implemented as request variants). A
// receiver asks for an HD pipeline — 4K upscaling plus a stock ticker —
// but names an SD fallback (downscale + requantize) that also satisfies
// it. BCP probes both shapes under one budget; when the HD chain cannot
// qualify (nobody provides the 4K function), the SD variant is composed
// instead.
package main

import (
	"fmt"
	"time"

	spidernet "repro"
)

func main() {
	net := spidernet.NewSim(spidernet.SimOptions{
		Seed:    31,
		Peers:   80,
		Catalog: spidernet.MediaFunctions(),
	})

	compose := func(label string, req *spidernet.Request) {
		res := net.Compose(req)
		if !res.Ok {
			fmt.Printf("%s: no qualified composition\n", label)
			return
		}
		fmt.Printf("%s: composed %d-function graph: %s (delay %.0fms)\n",
			label, res.Best.Pattern.NumFunctions(), res.Best, res.Best.QoS[0])
		net.Teardown(res.Best)
	}

	// Both shapes feasible: the primary (HD) wins whenever it qualifies.
	compose("both feasible", spidernet.NewRequest().
		Functions("upscale", "stock-ticker").
		Alternative("downscale", "requant").
		MaxDelay(2*time.Second).
		Budget(32).
		Between(0, 1).
		MustBuild())

	// The primary names a function nobody in this overlay provides: only
	// the SD fallback can be built.
	compose("HD infeasible", spidernet.NewRequest().
		Functions("upscale-4k", "stock-ticker").
		Alternative("downscale", "requant").
		MaxDelay(2*time.Second).
		Budget(32).
		Between(0, 1).
		MustBuild())
}
