// Failover: proactive failure recovery (§5) under churn. A long-lived
// streaming session is established with backup service graphs; peers
// hosting its components are then killed one by one, and the session
// repairs itself by switching to overlapping backups — falling back to a
// reactive re-composition only when the backups are exhausted.
package main

import (
	"fmt"
	"time"

	spidernet "repro"
)

func main() {
	net := spidernet.NewSim(spidernet.SimOptions{
		Seed:     11,
		Peers:    100,
		Recovery: true, // attach the proactive failure recovery manager
	})
	fns := net.Functions()[:3]

	req := spidernet.NewRequest().
		Functions(fns...).
		MaxDelay(5*time.Second).
		FailureBound(0.02). // tight F^req -> more backups via Eq. 2
		Budget(60).         // generous budget -> rich backup pool
		Between(0, 1).
		MustBuild()

	res := net.Compose(req)
	if !res.Ok {
		fmt.Println("composition failed")
		return
	}
	if err := net.Establish(req, res); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("session up: %s\n", res.Best)
	fmt.Printf("qualified backups found by BCP: %d\n\n", len(res.Backups))

	// Kill component peers of the CURRENT graph, one per round.
	for round := 1; round <= 4; round++ {
		g := net.ActiveGraph(req.Source, req.ID)
		if g == nil {
			fmt.Printf("round %d: session is dead\n", round)
			break
		}
		victim := spidernet.PeerID(-1)
		for _, c := range g.Components() {
			if c.Peer != req.Source && c.Peer != req.Dest {
				victim = c.Peer
				break
			}
		}
		if victim == -1 {
			break
		}
		fmt.Printf("round %d: killing peer %d (hosts a component of the active graph)\n", round, victim)
		net.FailPeer(victim)
		net.RunFor(30 * time.Second) // detection + switchover happen here

		if g2 := net.ActiveGraph(req.Source, req.ID); g2 != nil {
			fmt.Printf("  recovered -> %s\n", g2)
		}
	}

	st := net.RecoveryStatsFor(req.Source)
	fmt.Printf("\nrecovery summary: detected=%d switchovers=%d reactive=%d unrecovered=%d\n",
		st.FailuresDetected, st.Switchovers, st.Reactives, st.Dead)
	for _, ev := range net.RecoveryEventsFor(req.Source) {
		fmt.Printf("  t=%-8v %-11s recovery-time=%v\n",
			ev.Time.Round(time.Millisecond), ev.Kind, ev.RecoveryTime.Round(time.Millisecond))
	}
}
