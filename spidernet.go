// Package spidernet is the public API of this reproduction of "SpiderNet:
// An Integrated Peer-to-Peer Service Composition Framework" (Gu, Nahrstedt,
// Yu — HPDC 2004).
//
// SpiderNet composes distributed application services out of service
// components hosted on P2P overlay peers. A composite service request names
// the required functions (a DAG with dependency and commutation links) and
// the user's QoS/resource requirements; the framework finds a qualified
// mapping onto concrete components with the bounded composition probing
// (BCP) protocol, sets the session up, and keeps it alive through peer
// churn with proactive failure recovery.
//
// Two runtimes execute the identical protocol stack:
//
//   - NewSim: a deterministic discrete-event simulation (virtual clock) —
//     use it for experiments and tests.
//   - NewLive: one goroutine per peer with injected wide-area latencies —
//     the paper's PlanetLab-prototype stand-in.
//
// Quick start:
//
//	net := spidernet.NewSim(spidernet.SimOptions{Peers: 60})
//	req := spidernet.NewRequest().
//		Functions("fn0", "fn1", "fn2").
//		MaxDelay(800 * time.Millisecond).
//		Bandwidth(100).
//		Budget(20).
//		Between(0, 1).
//		Build()
//	res := net.Compose(req)
//	if res.Ok {
//		fmt.Println("composed:", res.Best)
//	}
package spidernet

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/fgraph"
	"repro/internal/livenet"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Re-exported core types. The facade keeps examples and downstream users on
// one import path while the implementation lives in internal packages.
type (
	// Request is a composite service request.
	Request = service.Request
	// Graph is a composed service graph λ.
	Graph = service.Graph
	// Component is one service component's metadata.
	Component = service.Component
	// Result is a composition outcome.
	Result = bcp.Result
	// Frame is a synthetic media application data unit.
	Frame = media.Frame
	// PeerID identifies an overlay peer.
	PeerID = p2p.NodeID
	// FunctionGraph is the abstract function DAG of a request.
	FunctionGraph = fgraph.Graph
	// RecoveryEvent records one failure-recovery outcome.
	RecoveryEvent = recovery.Event
	// RecoveryStats aggregates recovery counters.
	RecoveryStats = recovery.Stats
	// Tracer receives structured protocol events (see internal/obs).
	Tracer = obs.Tracer
	// TraceEvent is one structured protocol event.
	TraceEvent = obs.Event
	// CounterRegistry collects per-node overhead counters.
	CounterRegistry = obs.Registry
	// Metrics is the online histogram/gauge metric set.
	Metrics = obs.Metrics
)

// NewCounterRegistry creates an empty per-node counter registry to attach
// via SimOptions.Counters or LiveOptions.Counters.
func NewCounterRegistry() *CounterRegistry { return obs.NewRegistry() }

// NewMetrics creates the standard histogram/gauge metric set to attach via
// SimOptions.Metrics or LiveOptions.Metrics.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// MediaFunctions lists the six multimedia functions of the paper's
// prototype, available in every deployment that uses the media catalogue.
func MediaFunctions() []string { return media.Functions() }

// SimOptions configures a simulated deployment.
type SimOptions struct {
	Seed     int64    // default 1
	IPNodes  int      // IP-layer nodes under the overlay (default 400)
	Peers    int      // overlay peers (default 60)
	Catalog  []string // function catalogue (default fn0..fn19; use MediaFunctions() for the media set)
	Recovery bool     // attach proactive failure recovery to every peer

	Trace    Tracer           // optional structured event sink
	Counters *CounterRegistry // optional per-node overhead counters
	Metrics  *Metrics         // optional histogram/gauge metric set
}

// Sim is a simulated SpiderNet deployment on a virtual clock.
type Sim struct {
	c *cluster.Cluster
}

// NewSim builds a simulated deployment: power-law IP topology, overlay,
// DHT + discovery + BCP on every peer, components placed and registered.
func NewSim(opts SimOptions) *Sim {
	var rec *recovery.Config
	if opts.Recovery {
		rc := recovery.DefaultConfig()
		rec = &rc
	}
	return &Sim{c: cluster.New(cluster.Options{
		Seed:     opts.Seed,
		IPNodes:  opts.IPNodes,
		Peers:    opts.Peers,
		Catalog:  opts.Catalog,
		Recovery: rec,
		Trace:    opts.Trace,
		Obs:      opts.Counters,
		Metrics:  opts.Metrics,
	})}
}

// Peers returns the number of overlay peers.
func (s *Sim) Peers() int { return len(s.c.Peers) }

// Functions returns the deployed functions sorted by replica count
// (descending), so Functions()[:3] is always composable.
func (s *Sim) Functions() []string { return s.c.FunctionsByReplicas() }

// Replicas returns how many components provide fn.
func (s *Sim) Replicas(fn string) int { return s.c.Replicas(fn) }

// Components returns every deployed component providing fn.
func (s *Sim) Components(fn string) []Component { return s.c.ComponentsFor(fn) }

// Compose runs one composite service request to completion on the virtual
// clock and returns the outcome.
func (s *Sim) Compose(req *Request) Result {
	var out Result
	done := false
	s.c.Peers[int(req.Source)].Engine.Compose(req, func(r bcp.Result) {
		out = r
		done = true
	})
	s.c.Sim.Run(s.c.Sim.Now() + 120*time.Second)
	if !done {
		return Result{ReqID: req.ID, Ok: false}
	}
	return out
}

// Establish registers a composed session with the sender's proactive
// failure recovery manager (SimOptions.Recovery must be enabled).
func (s *Sim) Establish(req *Request, res Result) error {
	mgr := s.c.Peers[int(req.Source)].Recovery
	if mgr == nil {
		return fmt.Errorf("spidernet: deployment built without Recovery")
	}
	mgr.Establish(req, res)
	return nil
}

// RecoveryStatsFor returns the recovery counters of a sender peer.
func (s *Sim) RecoveryStatsFor(peer PeerID) RecoveryStats {
	if mgr := s.c.Peers[int(peer)].Recovery; mgr != nil {
		return mgr.Stats()
	}
	return RecoveryStats{}
}

// RecoveryEventsFor returns the recovery events recorded at a sender peer.
func (s *Sim) RecoveryEventsFor(peer PeerID) []RecoveryEvent {
	if mgr := s.c.Peers[int(peer)].Recovery; mgr != nil {
		return mgr.Events()
	}
	return nil
}

// ActiveGraph returns the session's current active graph at its sender, or
// nil if the session is gone.
func (s *Sim) ActiveGraph(source PeerID, sessID uint64) *Graph {
	mgr := s.c.Peers[int(source)].Recovery
	if mgr == nil {
		return nil
	}
	if sess := mgr.Session(sessID); sess != nil {
		return sess.Active
	}
	return nil
}

// Stream pushes n frames from the session's sender through the composed
// graph's components and returns the frames observed by the receiving
// application, in arrival order.
func (s *Sim) Stream(g *Graph, n int, width, height int) []Frame {
	var got []Frame
	dest := g.Req.Dest
	s.c.Peers[int(dest)].Media.OnDeliver(func(f Frame) { got = append(got, f) })
	src := s.c.Peers[int(g.Req.Source)].Media
	for i := 0; i < n; i++ {
		if err := src.SendFrame(g, media.NewFrame(i, width, height)); err != nil {
			break
		}
	}
	s.c.Sim.Run(s.c.Sim.Now() + 30*time.Second)
	return got
}

// FailPeer crashes a peer (components vanish, messages drop).
func (s *Sim) FailPeer(p PeerID) { s.c.Net.Fail(p) }

// RecoverPeer brings a failed peer back up.
func (s *Sim) RecoverPeer(p PeerID) { s.c.Net.Recover(p) }

// RunFor advances the virtual clock by d, processing all protocol activity
// (maintenance probes, recoveries, timers).
func (s *Sim) RunFor(d time.Duration) { s.c.Sim.Run(s.c.Sim.Now() + d) }

// MessagesSent returns the total control messages sent so far.
func (s *Sim) MessagesSent() int64 { return s.c.Net.Stats().MessagesSent }

// Teardown releases a composed session's resources.
func (s *Sim) Teardown(g *Graph) {
	if g != nil && g.Req != nil {
		s.c.Peers[int(g.Req.Source)].Engine.Teardown(g)
	}
}

// LiveOptions configures a live goroutine-per-peer deployment.
type LiveOptions struct {
	Hosts   int     // default 102
	Seed    int64   // default 1
	Speedup float64 // compress wide-area latencies/timers; default 1 (real time)

	Trace    Tracer           // optional structured event sink (live traces are not byte-reproducible)
	Counters *CounterRegistry // optional per-node overhead counters
	Metrics  *Metrics         // optional histogram/gauge metric set
}

// Live is a live wide-area deployment (the PlanetLab stand-in). Close it
// when done.
type Live struct {
	tb *livenet.Testbed
}

// NewLive starts a live deployment with one media component per host.
func NewLive(opts LiveOptions) *Live {
	return &Live{tb: livenet.NewTestbed(livenet.TestbedOptions{
		Hosts:   opts.Hosts,
		Seed:    opts.Seed,
		Speedup: opts.Speedup,
		Trace:   opts.Trace,
		Obs:     opts.Counters,
		Metrics: opts.Metrics,
	})}
}

// Compose runs one composition and blocks until the outcome arrives.
func (l *Live) Compose(req *Request) Result { return l.tb.Compose(req) }

// Unscale converts a Result duration to protocol time under the speedup.
func (l *Live) Unscale(d time.Duration) time.Duration { return l.tb.Net.Unscale(d) }

// Replicas counts components providing fn.
func (l *Live) Replicas(fn string) int { return l.tb.Replicas(fn) }

// Stream pushes n frames through a composed session and returns the frames
// delivered to the receiving application within the timeout.
func (l *Live) Stream(g *Graph, n, width, height int, timeout time.Duration) []Frame {
	got := make(chan Frame, n)
	dest := g.Req.Dest
	l.tb.Net.Exec(dest, func() {
		l.tb.Peers[int(dest)].Media.OnDeliver(func(f Frame) {
			select {
			case got <- f:
			default:
			}
		})
	})
	src := g.Req.Source
	l.tb.Net.Exec(src, func() {
		for i := 0; i < n; i++ {
			l.tb.Peers[int(src)].Media.SendFrame(g, media.NewFrame(i, width, height))
		}
	})
	var out []Frame
	deadline := time.After(l.tb.Net.Scale(timeout))
	for len(out) < n {
		select {
		case f := <-got:
			out = append(out, f)
		case <-deadline:
			return out
		}
	}
	return out
}

// Teardown releases a composed session's resources.
func (l *Live) Teardown(g *Graph) {
	if g != nil && g.Req != nil {
		src := g.Req.Source
		l.tb.Net.Exec(src, func() { l.tb.Peers[int(src)].Engine.Teardown(g) })
	}
}

// Close stops the deployment's goroutines.
func (l *Live) Close() { l.tb.Close() }

// ParseSpec reads a composite-service request from its QoSTalk-inspired XML
// form (see internal/spec for the dialect). Bind Source, Dest, and ID on
// the returned request before composing.
func ParseSpec(r io.Reader) (*Request, error) { return spec.Parse(r) }

// RenderSpec serializes a request into the XML dialect.
func RenderSpec(name string, req *Request) ([]byte, error) { return spec.Render(name, req) }

// WideAreaLatencies exposes the latency model used by live deployments
// (exported for experiment harnesses): an n×n one-way millisecond matrix
// shaped like a US/EU PlanetLab slice.
func WideAreaLatencies(hosts int, seed int64) [][]float64 {
	return topology.WideAreaLatencies(hosts, rand.New(rand.NewSource(seed)))
}
