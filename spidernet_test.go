package spidernet

import (
	"strings"
	"testing"
	"time"
)

func simWithMedia(t *testing.T, seed int64, recover bool) *Sim {
	t.Helper()
	return NewSim(SimOptions{
		Seed:     seed,
		Peers:    80,
		Catalog:  MediaFunctions(),
		Recovery: recover,
	})
}

func TestFacadeComposeAndStream(t *testing.T) {
	net := simWithMedia(t, 3, false)
	fns := net.Functions()
	if len(fns) < 3 {
		t.Fatal("not enough functions deployed")
	}
	req := NewRequest().
		Functions("downscale", "stock-ticker", "requant").
		MaxDelay(5*time.Second).
		Bandwidth(50).
		Budget(24).
		Between(0, 1).
		MustBuild()
	res := net.Compose(req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	frames := net.Stream(res.Best, 10, 640, 480)
	if len(frames) != 10 {
		t.Fatalf("streamed %d/10 frames", len(frames))
	}
	f := frames[9]
	if f.Width != 320 || f.Quant != 2 || len(f.Overlays) != 1 {
		t.Fatalf("transforms not applied: %v", f)
	}
	net.Teardown(res.Best)
}

func TestFacadeRecoveryFlow(t *testing.T) {
	net := simWithMedia(t, 4, true)
	req := NewRequest().
		Functions("upscale", "requant").
		MaxDelay(10*time.Second).
		Budget(40).
		Between(0, 1).
		MustBuild()
	res := net.Compose(req)
	if !res.Ok {
		t.Fatal("composition failed")
	}
	if err := net.Establish(req, res); err != nil {
		t.Fatal(err)
	}
	// Kill a component peer and let recovery repair the session.
	var victim PeerID = -1
	for _, s := range res.Best.Comps {
		if s.Comp.Peer != req.Source && s.Comp.Peer != req.Dest {
			victim = s.Comp.Peer
			break
		}
	}
	if victim == -1 {
		t.Skip("no failable peer")
	}
	net.FailPeer(victim)
	net.RunFor(60 * time.Second)

	st := net.RecoveryStatsFor(req.Source)
	if st.FailuresDetected == 0 {
		t.Fatal("failure undetected")
	}
	g := net.ActiveGraph(req.Source, req.ID)
	if g == nil {
		t.Fatal("session not recovered")
	}
	if g.ContainsPeer(victim) {
		t.Fatal("recovered graph still uses dead peer")
	}
	if len(net.RecoveryEventsFor(req.Source)) == 0 {
		t.Fatal("no recovery events recorded")
	}
}

func TestRequestBuilderValidation(t *testing.T) {
	if _, err := NewRequest().Build(); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := NewRequest().Functions("a").Budget(0).Build(); err == nil {
		t.Fatal("zero budget accepted")
	}
	// DAG wiring.
	b := NewRequest().MaxDelay(time.Second).Between(0, 1)
	src := b.Function("ingest")
	l := b.Function("left")
	r := b.Function("right")
	sink := b.Function("merge")
	b.Depends(src, l).Depends(src, r).Depends(l, sink).Depends(r, sink)
	req, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(req.FGraph.Branches(0)); got != 2 {
		t.Fatalf("branches=%d", got)
	}
	// Cycles rejected.
	c := NewRequest()
	x := c.Function("x")
	y := c.Function("y")
	c.Depends(x, y).Depends(y, x)
	if _, err := c.Build(); err == nil {
		t.Fatal("cyclic request accepted")
	}
}

func TestRequestBuilderDefaultsAndIDs(t *testing.T) {
	r1 := NewRequest().Functions("a", "b").MustBuild()
	r2 := NewRequest().Functions("a", "b").MustBuild()
	if r1.ID == r2.ID {
		t.Fatal("request IDs not unique")
	}
	if r1.Bandwidth != 100 || r1.Budget != 16 {
		t.Fatalf("defaults wrong: %+v", r1)
	}
	// Loss requirement is transformed to additive form.
	r3 := NewRequest().Functions("a").MaxLoss(0.1).MustBuild()
	if r3.QoSReq[1] <= 0 || r3.QoSReq[1] > 1 {
		t.Fatalf("loss requirement not additive: %v", r3.QoSReq)
	}
	// Commutation via builder.
	b := NewRequest()
	a := b.Function("a")
	c := b.Function("b")
	d := b.Function("c")
	b.Depends(a, c).Depends(c, d).Commutes(c, d)
	req := b.MustBuild()
	if len(req.FGraph.Patterns(0)) != 2 {
		t.Fatal("commutation did not create a second pattern")
	}
}

func TestLiveFacade(t *testing.T) {
	live := NewLive(LiveOptions{Hosts: 30, Seed: 7, Speedup: 100})
	defer live.Close()
	var fns []string
	for _, f := range MediaFunctions() {
		if live.Replicas(f) > 0 {
			fns = append(fns, f)
		}
		if len(fns) == 2 {
			break
		}
	}
	if len(fns) < 2 {
		t.Skip("too few functions in small live testbed")
	}
	req := NewRequest().
		Functions(fns...).
		MaxDelay(30*time.Second).
		Budget(10).
		Between(0, 1).
		MustBuild()
	res := live.Compose(req)
	if !res.Ok {
		t.Fatal("live composition failed")
	}
	frames := live.Stream(res.Best, 5, 320, 240, 20*time.Second)
	if len(frames) == 0 {
		t.Fatal("no frames delivered")
	}
	live.Teardown(res.Best)
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	xml := `<composite name="t">
  <function id="a" name="downscale"/>
  <function id="b" name="requant"/>
  <dependency from="a" to="b"/>
  <qos delayMs="4000"/>
  <resources cpu="1" memoryMB="10" bandwidthKbps="40"/>
  <probing budget="20"/>
</composite>`
	req, err := ParseSpec(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	req.ID, req.Source, req.Dest = 501, 0, 1

	net := simWithMedia(t, 12, false)
	res := net.Compose(req)
	if !res.Ok {
		t.Fatal("spec-driven composition failed")
	}
	net.Teardown(res.Best)

	out, err := RenderSpec("t", req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(strings.NewReader(string(out)))
	if err != nil {
		t.Fatal(err)
	}
	if !back.FGraph.Equal(req.FGraph) {
		t.Fatal("spec round trip changed the function graph")
	}
}

func TestFacadeAlternativeFallback(t *testing.T) {
	net := simWithMedia(t, 13, false)
	// Primary names a function nobody provides; the alternative carries it.
	req := NewRequest().
		Functions("upscale", "nonexistent-function").
		Alternative("downscale", "requant").
		MaxDelay(5*time.Second).
		Budget(24).
		Between(0, 1).
		MustBuild()
	res := net.Compose(req)
	if !res.Ok {
		t.Fatal("alternative fallback failed")
	}
	if res.Best.Pattern.Function(0) != "downscale" {
		t.Fatalf("expected the alternative shape, got %s", res.Best)
	}
	net.Teardown(res.Best)
}
