package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bcp"
	"repro/internal/cluster"
	"repro/internal/dht"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BenchResult is one machine-readable microbenchmark record.
type BenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchFile is the BENCH_<timestamp>.json schema.
type BenchFile struct {
	Timestamp string        `json:"timestamp"`
	GoVersion string        `json:"go_version,omitempty"`
	Results   []BenchResult `json:"results"`
}

// runBench executes the microbenchmark suite via testing.Benchmark and
// writes BENCH_<timestamp>.json into dir ("." by default).
func runBench(dir string) error {
	// Fail on a bad output directory before spending a minute benchmarking.
	if st, err := os.Stat(dir); err != nil {
		return err
	} else if !st.IsDir() {
		return fmt.Errorf("%s is not a directory", dir)
	}
	type bench struct {
		op string
		fn func(b *testing.B)
	}
	benches := []bench{
		{"bcp/compose", benchCompose},
		{"dht/lookup", benchDHTLookup},
		{"dht/buildring1k", benchBuildRing(1000)},
		{"dht/buildring10k", benchBuildRing(10000)},
		{"dht/buildring100k", benchBuildRing(100000)},
		{"dht/buildlegacy1k", benchBuildLegacy1k},
		{"overlay/route", benchOverlayRoute},
		{"overlay/routeevict", benchRouteCacheEvict},
		{"service/cost", benchCost},
		{"sim/dispatch", benchSimDispatch},
		{"topology/generate", benchTopologyGenerate},
		{"topology/generate100k", benchTopologyGenerate100k},
		{"registry/shardlookup", benchShardLookup},
		{"obs/jsonl-emit", benchObsEmit},
		{"obs/emit-disabled", benchObsDisabled},
	}
	out := BenchFile{Timestamp: time.Now().UTC().Format("20060102T150405Z")}
	for _, bb := range benches {
		fmt.Fprintf(os.Stderr, "bench %-18s ", bb.op)
		r := testing.Benchmark(bb.fn)
		fmt.Fprintf(os.Stderr, "%12d ns/op %8d allocs/op\n", r.NsPerOp(), r.AllocsPerOp())
		out.Results = append(out.Results, BenchResult{
			Op:          bb.op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	name := filepath.Join(dir, "BENCH_"+out.Timestamp+".json")
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", name)
	return nil
}

func benchCompose(b *testing.B) {
	catalog := make([]string, 10)
	for i := range catalog {
		catalog[i] = fmt.Sprintf("fn%d", i)
	}
	c := cluster.New(cluster.Options{Seed: 75, IPNodes: 400, Peers: 60, Catalog: catalog})
	gen := workload.NewGenerator(workload.Config{
		Catalog: catalog, Peers: 60, MinFuncs: 3, MaxFuncs: 3,
		Budget: 12, DelayReqMin: 300, DelayReqMax: 600,
	}, c.Rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := gen.Next()
		req.QoSReq[qos.Delay] = 5000
		eng := c.Peers[int(req.Source)].Engine
		eng.Compose(req, func(res bcp.Result) {
			if res.Ok {
				eng.Teardown(res.Best)
			}
		})
		c.Sim.Run(c.Sim.Now() + 30*time.Second)
	}
}

func benchDHTLookup(b *testing.B) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(time.Millisecond),
		rand.New(rand.NewSource(76)))
	nodes := make([]*dht.Node, 200)
	for i := range nodes {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
	}
	dht.Build(nodes)
	nodes[0].Put(dht.Key("bench"), "x", 64)
	sim.RunUntilIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%200].Get(dht.Key("bench"), time.Second, func([]any, int, bool) {})
		sim.RunUntilIdle()
	}
}

// benchHost is a construction-only transport stub: dht.Build never sends or
// schedules, so ring-construction benchmarks skip the simulator entirely.
type benchHost struct{ id p2p.NodeID }

func (h *benchHost) ID() p2p.NodeID                             { return h.id }
func (h *benchHost) Now() time.Duration                         { return 0 }
func (h *benchHost) Send(p2p.Message)                           {}
func (h *benchHost) After(time.Duration, func()) p2p.CancelFunc { return func() {} }
func (h *benchHost) Rand() *rand.Rand                           { return nil }
func (h *benchHost) Handle(string, p2p.Handler)                 {}
func (h *benchHost) Alive() bool                                { return true }

func freshRing(n int) []*dht.Node {
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i] = dht.New(&benchHost{id: p2p.NodeID(i)}, nil)
	}
	return nodes
}

// benchBuildRing measures the sorted-ring static construction (BuildRing in
// the ISSUE's terms) at the given size. Node creation is excluded from the
// timer: the op is construction, not SHA-1 identifier derivation.
func benchBuildRing(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			nodes := freshRing(n)
			b.StartTimer()
			dht.Build(nodes)
		}
	}
}

// benchBuildLegacy1k is the all-pairs reference builder at 1k nodes, kept in
// the suite so the committed baselines document the gap the sorted-ring
// construction closes (≥50× at this size, growing linearly with n).
func benchBuildLegacy1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nodes := freshRing(1000)
		b.StartTimer()
		dht.BuildLegacy(nodes)
	}
}

func benchOverlayRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	g := topology.GeneratePowerLaw(2000, 2, 2, 30, rng)
	ov := topology.BuildOverlay(g, topology.OverlayConfig{NumPeers: 300, Degree: 4}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ov.Route(i%300, (i*7+1)%300); !ok {
			b.Fatal("no route")
		}
	}
}

// benchRouteCacheEvict measures Route in the post-eviction regime: the
// cache bound is far below the rotating source count, so every call is a
// cache miss served either by the truncated near-destination search or by a
// full Dijkstra recycled into an LRU slot.
func benchRouteCacheEvict(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	g := topology.GeneratePowerLaw(2000, 2, 2, 30, rng)
	ov := topology.BuildOverlay(g, topology.OverlayConfig{
		NumPeers: 300, Degree: 4, RouteCacheSize: 8,
	}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ov.Route(i%300, (i*7+1)%300); !ok {
			b.Fatal("no route")
		}
	}
}

func benchCost(b *testing.B) {
	var avail qos.Resources
	avail[qos.CPU] = 10
	avail[qos.Memory] = 100
	g := &service.Graph{Comps: map[int]service.Snapshot{}}
	for i := 0; i < 3; i++ {
		g.Comps[i] = service.Snapshot{
			Comp:  service.Component{ID: fmt.Sprintf("c%d", i), Peer: p2p.NodeID(i)},
			Avail: avail,
		}
		g.Links = append(g.Links, service.LinkSnapshot{FromFn: i - 1, ToFn: i, BandAvail: 1000})
	}
	var res qos.Resources
	res[qos.CPU] = 1
	res[qos.Memory] = 10
	req := &service.Request{Res: res, Bandwidth: 100, Budget: 1}
	w := service.DefaultWeights()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := g.Cost(w, req); c <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// benchSimDispatch measures the steady-state Schedule→fire cycle of the
// event queue with a warm freelist (the hot loop of every simulated figure).
func benchSimDispatch(b *testing.B) {
	sim := simnet.NewSim()
	fn := func() {}
	for i := 0; i < 64; i++ {
		sim.Schedule(0, fn)
	}
	sim.RunUntilIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Microsecond, fn)
		sim.Step()
	}
}

// benchTopologyGenerate measures power-law IP network generation plus
// overlay construction (edge-set index, batched peer-pair Dijkstra) at a
// quarter of the paper's scale so the suite stays quick.
func benchTopologyGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(78))
		g := topology.GeneratePowerLaw(2500, 2, 2, 30, rng)
		topology.BuildOverlay(g, topology.OverlayConfig{NumPeers: 250, Degree: 4}, rng)
	}
}

// benchTopologyGenerate100k is the headline capacity number: a 100,000-node
// power-law IP network frozen into the CSR representation plus a 10,000-peer
// compact-mode overlay (no peer-pair latency matrix) per iteration.
func benchTopologyGenerate100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(79))
		g := topology.GeneratePowerLaw(100000, 2, 2, 30, rng)
		topology.BuildOverlay(g, topology.OverlayConfig{
			NumPeers: 10000, Degree: 4, Compact: true,
		}, rng)
	}
}

// benchShardLookup measures a cross-ring discovery round trip: a GetVia from
// a peer whose shard does not home the key, entering the home ring through a
// plan entry member — the per-lookup tax the sharded keyspace pays in
// exchange for the ~S-times-cheaper ring construction.
func benchShardLookup(b *testing.B) {
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, simnet.ConstantLatency(time.Millisecond),
		rand.New(rand.NewSource(80)))
	const peers = 512
	plan := registry.NewShardPlan(peers, 8)
	nodes := make([]*dht.Node, peers)
	for i := range nodes {
		nodes[i] = dht.New(nw.AddNode(p2p.NodeID(i)), nw.Alive)
	}
	for s := 0; s < plan.NumShards; s++ {
		ring := make([]*dht.Node, len(plan.Members[s]))
		for j, id := range plan.Members[s] {
			ring[j] = nodes[int(id)]
		}
		dht.Build(ring)
	}
	key := registry.FunctionKey("bench")
	home := plan.Home(key)
	entries := plan.Entries(key)
	nodes[plan.Members[home][0]].Put(key, "x", 64)
	sim.RunUntilIdle()
	// A fixed foreign source: first member of the shard after the home one.
	src := nodes[plan.Members[(home+1)%plan.NumShards][0]]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.GetVia(entries, key, 0, time.Second, func([]any, int, bool) {})
		sim.RunUntilIdle()
	}
}

func benchObsEmit(b *testing.B) {
	sink := obs.NewJSONLSink(discardWriter{})
	ev := obs.ProbeSent(time.Millisecond, 3, 42, 7, "fn1", "p7/fn1.0", 10, 2, 12345, 12344)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Emit(ev)
	}
}

// benchObsDisabled measures the disabled-tracer fast path: the nil check
// plus event construction that instrumented call sites skip entirely.
func benchObsDisabled(b *testing.B) {
	var trace obs.Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trace != nil {
			trace.Emit(obs.ProbeSent(time.Millisecond, 3, 42, 7, "fn1", "p7/fn1.0", 10, 2, 12345, 12344))
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
