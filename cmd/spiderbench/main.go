// Command spiderbench regenerates the figures of the SpiderNet paper's
// evaluation (§6). Each figure prints as an aligned table with the same
// series the paper plots.
//
// Usage:
//
//	spiderbench -fig 8            # Figure 8 at laptop scale
//	spiderbench -fig 9 -paper     # Figure 9 at the paper's dimensions
//	spiderbench -fig 10           # wide-area setup time (live runtime)
//	spiderbench -fig 11           # delay vs probing budget
//	spiderbench -fig scale        # offered-load sweep, load-blind vs load-aware
//	spiderbench -fig stress       # adversarial workloads x composition algorithms
//	spiderbench -fig overhead     # BCP vs centralized overhead
//	spiderbench -fig federate     # cross-domain 2PC sweep, domains x gateways x faults
//	spiderbench -fig scale100k    # 100k-node/10k-peer capacity sweep (not part of "all")
//	spiderbench -fig scale1m      # 1M-node/100k-peer capacity sweep (not part of "all")
//	spiderbench -fig all
//	spiderbench -bench            # microbenchmarks -> BENCH_<timestamp>.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/simnet"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11, scale, stress, overhead, federate, scale100k, scale1m, all")
	paper := flag.Bool("paper", false, "use the paper's full dimensions (slow)")
	seed := flag.Int64("seed", 1, "simulation seed")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	bench := flag.Bool("bench", false, "run the microbenchmark suite and write BENCH_<timestamp>.json")
	benchDir := flag.String("benchdir", ".", "directory for the BENCH_<timestamp>.json output")
	traceFile := flag.String("trace", "", "write a deterministic JSONL event trace of the simulated figures to this file")
	stats := flag.Bool("stats", false, "print per-layer counter tables after the figures")
	faults := flag.String("faults", "", "fault spec layered onto figures 9 and 10, e.g. loss=0.05,jitter=20ms,partition=10s@30s")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for the independent cells of the simulated figures; 1 = serial. Output is byte-identical at any value")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var fspec *simnet.FaultSpec
	if *faults != "" {
		var err error
		fspec, err = simnet.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
	}

	if *bench {
		if err := runBench(*benchDir); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Figure 10 runs on the live TCP runtime, outside the virtual clock, so
	// the deterministic tracer is wired only into the simulated figures
	// (8, 9, 11, overhead).
	var (
		trace   obs.Tracer
		tf      *obs.TraceFile
		reg     *obs.Registry
		tracers obs.MultiTracer
	)
	if *traceFile != "" {
		var err error
		tf, err = obs.CreateTrace(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		tracers = append(tracers, tf)
	}
	if *stats {
		reg = obs.NewRegistry()
	}
	switch len(tracers) {
	case 0:
	case 1:
		trace = tracers[0]
	default:
		trace = tracers
	}

	writeCSV := func(name string, t *metrics.Table) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		}
	}

	run := func(name string, fn func()) {
		fmt.Fprintf(os.Stderr, "== %s (started %s)\n", name, time.Now().Format(time.Kitchen))
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "== %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false

	if want("8") {
		ran = true
		run("Figure 8", func() {
			cfg := experiment.DefaultFig8Config()
			if *paper {
				cfg = experiment.PaperFig8Config()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Parallel = *parallel
			res := experiment.Fig8(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("fig8", res.Table)
		})
	}
	if want("9") {
		ran = true
		run("Figure 9", func() {
			cfg := experiment.DefaultFig9Config()
			if *paper {
				cfg = experiment.PaperFig9Config()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Faults = fspec
			cfg.Parallel = *parallel
			res := experiment.Fig9(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("fig9", res.Table)
			fmt.Printf("avg backups/session: %.2f  switchovers: %d  reactive: %d  unrecovered(with): %d  unrecovered(without): %d\n",
				res.AvgBackups, res.Switchovers, res.Reactives, res.DeadWithRecovery, res.DeadWithout)
		})
	}
	if want("10") {
		ran = true
		run("Figure 10", func() {
			cfg := experiment.DefaultFig10Config()
			if *paper {
				cfg = experiment.PaperFig10Config()
			}
			cfg.Seed = *seed
			if fspec != nil {
				cfg.Loss = fspec.Loss // live wire supports uniform loss only
			}
			res := experiment.Fig10(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("fig10", res.Table)
		})
	}
	if want("11") {
		ran = true
		run("Figure 11", func() {
			cfg := experiment.DefaultFig11Config()
			if *paper {
				cfg = experiment.PaperFig11Config()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Parallel = *parallel
			res := experiment.Fig11(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("fig11", res.Table)
		})
	}
	if want("scale") {
		ran = true
		run("Scale (offered load sweep)", func() {
			cfg := experiment.DefaultScaleConfig()
			if *paper {
				cfg = experiment.PaperScaleConfig()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Parallel = *parallel
			res := experiment.Scale(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("scale", res.Table)
		})
	}
	if want("stress") {
		ran = true
		run("Stress (adversarial workload sweep)", func() {
			cfg := experiment.DefaultStressConfig()
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Parallel = *parallel
			res := experiment.Stress(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("stress", res.Table)
		})
	}
	if want("overhead") {
		ran = true
		run("Overhead comparison", func() {
			cfg := experiment.DefaultOverheadConfig()
			if *paper {
				cfg = experiment.PaperOverheadConfig()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Parallel = *parallel
			res := experiment.Overhead(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("overhead", res.Table)
		})
	}
	if want("federate") {
		ran = true
		run("Federate (cross-domain 2PC sweep)", func() {
			cfg := experiment.DefaultFederateConfig()
			if *paper {
				cfg = experiment.PaperFederateConfig()
			}
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Counters = reg
			cfg.Parallel = *parallel
			res := experiment.Federate(cfg)
			res.Table.Render(os.Stdout)
			writeCSV("federate", res.Table)
		})
	}
	// The 100k capacity sweep is explicit-only: it measures machine-dependent
	// wall-clock and heap cost, so folding it into "all" would make the
	// default run's duration depend on the host rather than the paper.
	if *fig == "scale100k" {
		ran = true
		run("Scale100k (capacity sweep)", func() {
			cfg := experiment.DefaultScale100kConfig()
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Parallel = *parallel
			res := experiment.Scale100k(cfg)
			res.TopoTable.Render(os.Stdout)
			res.DiscTable.Render(os.Stdout)
			writeCSV("scale100k_topo", res.TopoTable)
			writeCSV("scale100k_disc", res.DiscTable)
		})
	}
	// The million-node sweep is likewise explicit-only, and is the headline
	// capacity run: 1M IP nodes, a 100k-peer compact overlay under a bounded
	// route cache, and a 100k-peer sorted-ring discovery plane.
	if *fig == "scale1m" {
		ran = true
		run("Scale1m (capacity sweep)", func() {
			cfg := experiment.DefaultScale1mConfig()
			cfg.Seed = *seed
			cfg.Trace = trace
			cfg.Parallel = *parallel
			res := experiment.Scale1m(cfg)
			res.TopoTable.Render(os.Stdout)
			res.DiscTable.Render(os.Stdout)
			writeCSV("scale1m_topo", res.TopoTable)
			writeCSV("scale1m_disc", res.DiscTable)
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q; want 8, 9, 10, 11, scale, stress, overhead, federate, scale100k, scale1m, or all\n", *fig)
		os.Exit(2)
	}
	if tf != nil {
		n := tf.Count()
		if err := tf.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", n, *traceFile)
	}
	if reg != nil {
		reg.Table("per-layer counters (all nodes)").Render(os.Stdout)
		reg.PerNodeTable("busiest nodes", 10).Render(os.Stdout)
	}
	// With both -trace and -stats set, rebuild the span forest from the trace
	// just written and report where the setup time went.
	if tf != nil && reg != nil {
		b := span.NewBuilder()
		if err := obs.StreamTrace(*traceFile, func(ev obs.Event) error {
			b.Add(ev)
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		span.PhaseTable(b.Build(), "setup-latency phases (from trace)").Render(os.Stdout)
	}
}
